(* Architecture-exploration scenario: sweep channel segmentation schemes
   and watch the wirability/delay trade-off the paper's introduction
   describes ("Small segment sizes are desirable for wirability ...
   However, this tends to increase the number of antifuses on each
   signal path, which is detrimental for timing").

     dune exec examples/segmentation_explorer.exe -- [circuit] [tracks] *)

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cse" in
  let tracks = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 24 in
  Printf.printf "sweeping segmentation schemes on %s at %d tracks/channel...\n\n%!" circuit
    tracks;
  let rows =
    Spr_experiments.Seg_ablation.run ~effort:Spr_experiments.Profiles.Quick ~circuit ~tracks ()
  in
  print_string (Spr_experiments.Seg_ablation.render rows);
  print_newline ();
  (* Narrate the trade-off that the numbers show. *)
  let find scheme =
    List.find_opt
      (fun r -> r.Spr_experiments.Seg_ablation.scheme = scheme)
      rows
  in
  match find (Spr_arch.Segmentation.Uniform 3), find Spr_arch.Segmentation.Full with
  | Some short, Some full ->
    let open Spr_experiments.Seg_ablation in
    Printf.printf
      "short segments (uniform:3): %d unrouted nets, %.1f ns — wirable but antifuse-heavy\n"
      short.sim_unrouted short.sim_delay_ns;
    Printf.printf
      "full-length segments:       %d unrouted nets, %.1f ns — fast nets, poor packing\n"
      full.sim_unrouted full.sim_delay_ns;
    Printf.printf
      "the mixed actel-like scheme sits between the extremes, which is why real parts mix \
       segment lengths\n"
  | _, _ -> ()
