(* Quickstart: build a small circuit, size a fabric for it, run the
   simultaneous place-and-route tool, and inspect the result.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A circuit. Normally this comes from Blif.parse_file or the
     synthetic generator; here we assemble a tiny pipeline by hand to
     show the netlist builder API. *)
  let open Spr_netlist in
  let b = Netlist.Builder.create () in
  let pi name = Netlist.Builder.add_cell b ~name ~kind:Cell_kind.Input ~n_inputs:0 in
  let comb name n = Netlist.Builder.add_cell b ~name ~kind:Cell_kind.Comb ~n_inputs:n in
  let a = pi "a" and c = pi "c" in
  let g1 = comb "g1" 2 in
  let g2 = comb "g2" 2 in
  let ff = Netlist.Builder.add_cell b ~name:"state" ~kind:Cell_kind.Seq ~n_inputs:1 in
  let po = Netlist.Builder.add_cell b ~name:"out" ~kind:Cell_kind.Output ~n_inputs:1 in
  let net name driver = Netlist.Builder.add_net b ~name ~driver in
  let na = net "a" a and nc = net "c" c in
  let n1 = net "g1" g1 and n2 = net "g2" g2 in
  let nf = net "state" ff in
  Netlist.Builder.add_sink b ~net:na ~cell:g1 ~pin:0;
  Netlist.Builder.add_sink b ~net:nc ~cell:g1 ~pin:1;
  Netlist.Builder.add_sink b ~net:n1 ~cell:g2 ~pin:0;
  Netlist.Builder.add_sink b ~net:nf ~cell:g2 ~pin:1;
  Netlist.Builder.add_sink b ~net:n2 ~cell:ff ~pin:0;
  Netlist.Builder.add_sink b ~net:n1 ~cell:po ~pin:0;
  let nl = Netlist.Builder.finish_exn b in
  Format.printf "circuit: %a@." Netlist.pp_summary nl;

  (* 2. A fabric: explicit here; Arch.size_for picks one automatically. *)
  let arch = Spr_arch.Arch.create ~rows:3 ~cols:6 ~tracks:8 () in
  Format.printf "fabric:  %a@." Spr_arch.Arch.pp arch;

  (* 3. Simultaneous place and route. *)
  let result = Spr_core.Tool.run_exn arch nl in
  let open Spr_core.Tool in
  Format.printf "fully routed: %b (G=%d, D=%d)@." result.fully_routed result.g result.d;
  Format.printf "critical path delay: %.2f ns@." result.critical_delay;

  (* 4. Inspect the layout: cell positions and the critical path. *)
  List.iter
    (fun cell ->
      let slot = Spr_layout.Placement.slot_of result.place cell.Netlist.id in
      Format.printf "  %-6s -> row %d, col %d@." cell.Netlist.cell_name
        slot.Spr_layout.Placement.row slot.Spr_layout.Placement.col)
    (Array.to_list (Netlist.cells nl));
  let path = Spr_timing.Sta.critical_path result.sta in
  Format.printf "critical path: %s@."
    (String.concat " -> "
       (List.map (fun c -> (Netlist.cell nl c).Netlist.cell_name) path));

  (* 5. Inspect one routed net: its spine and channel segments. *)
  let net0 = 2 (* the g1 net: three sinks *) in
  (match Spr_route.Route_state.global_route result.route net0 with
  | Some vr ->
    Format.printf "net g1 feedthrough: column %d, vertical track %d@."
      vr.Spr_route.Route_state.v_col vr.Spr_route.Route_state.v_vtrack
  | None -> Format.printf "net g1 needs no feedthrough@.");
  List.iter
    (fun (ch, hr) ->
      Format.printf "net g1 in channel %d: track %d, segments %d..%d@." ch
        hr.Spr_route.Route_state.h_track hr.Spr_route.Route_state.h_slo
        hr.Spr_route.Route_state.h_shi)
    (Spr_route.Route_state.h_routes result.route net0)
