(* Device-fitting scenario: how narrow a channel can each flow live
   with? This is the paper's Table 2 workload on one circuit — the
   motivation from the introduction: "failure to pack a single design
   onto the smallest feasible FPGA carries a substantial cost penalty".

     dune exec examples/track_minimization.exe -- [circuit]

   circuit defaults to "bw" (the paper's biggest wirability win: 15 vs
   10 tracks). *)

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "bw" in
  let spec =
    match Spr_netlist.Circuits.find circuit with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown circuit %s\n" circuit;
      exit 1
  in
  Printf.printf "minimizing tracks/channel for %s (%d cells)...\n%!" circuit
    spec.Spr_netlist.Circuits.spec_cells;
  let row = Spr_experiments.Wirability_table.run_circuit ~effort:Spr_experiments.Profiles.Quick spec in
  Printf.printf "sequential P&R minimum: %d tracks/channel\n"
    row.Spr_experiments.Wirability_table.seq_min_tracks;
  Printf.printf "simultaneous P&R minimum: %d tracks/channel\n"
    row.Spr_experiments.Wirability_table.sim_min_tracks;
  Printf.printf "track reduction: %.0f%% (paper reports 20-33%% across the suite)\n"
    row.Spr_experiments.Wirability_table.reduction_pct
