(* ECO flow: run the simultaneous tool once, checkpoint the layout,
   render it, then apply incremental edits — the maintenance workload of
   a production layout tool built on the same transactional machinery as
   the annealer.

     dune exec examples/eco_flow.exe -- [circuit] *)

module Tool = Spr_core.Tool
module Eco = Spr_core.Eco
module Cp = Spr_core.Checkpoint
module P = Spr_layout.Placement

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cse" in
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let arch = Spr_arch.Arch.size_for ~tracks:30 nl in
  Printf.printf "initial layout of %s...\n%!" circuit;
  let r = Tool.run_exn arch nl in
  Printf.printf "routed=%b  critical=%.2f ns\n" r.Tool.fully_routed r.Tool.critical_delay;

  (* checkpoint to disk and restore, proving the layout round-trips *)
  let ckpt = Filename.temp_file "spr_eco" ".ckpt" in
  Cp.save r.Tool.route ckpt;
  (match Cp.load nl ckpt with
  | Ok restored ->
    Printf.printf "checkpoint round-trip ok (%s, %d bytes)\n" ckpt
      (String.length (Cp.to_string restored))
  | Error e -> Printf.printf "checkpoint failed: %s\n" e);
  Sys.remove ckpt;

  (* render the die with the critical path highlighted *)
  let hot = Spr_render.Die_plot.critical_nets r.Tool.sta r.Tool.route in
  Spr_render.Die_plot.save_svg ~highlight:hot r.Tool.route "eco_layout.svg";
  Printf.printf "die plot written to eco_layout.svg (critical path in red)\n";

  (* incremental edits: try swapping pairs of cells on the critical
     path with their neighbours, keeping only improvements *)
  let eco = Eco.of_result r in
  let path = Spr_timing.Sta.critical_path r.Tool.sta in
  let tried = ref 0 and kept = ref 0 in
  List.iter
    (fun cell ->
      if (not (Spr_netlist.Cell_kind.is_io (Spr_netlist.Netlist.cell nl cell).Spr_netlist.Netlist.kind))
         && !tried < 8
      then begin
        incr tried;
        let slot = P.slot_of r.Tool.place cell in
        let dest = { slot with P.col = min (arch.Spr_arch.Arch.cols - 1) (slot.P.col + 1) } in
        match Eco.move_cell eco ~cell ~dest with
        | Error _ -> ()
        | Ok delta ->
          let better =
            delta.Eco.unrouted_after <= delta.Eco.unrouted_before
            && delta.Eco.delay_after_ns < delta.Eco.delay_before_ns
          in
          Printf.printf "  move cell %d: %.2f -> %.2f ns, %d nets rerouted -> %s\n" cell
            delta.Eco.delay_before_ns delta.Eco.delay_after_ns
            (List.length delta.Eco.rerouted_nets)
            (if better then "keep" else "undo");
          if better then begin
            Eco.commit eco;
            incr kept
          end
          else Eco.rollback eco
      end)
    path;
  Printf.printf "ECO pass: %d edits tried, %d kept; final critical %.2f ns, %d unrouted\n"
    !tried !kept (Eco.critical_delay eco) (Eco.unrouted eco)
