examples/segmentation_explorer.ml: Array List Printf Spr_arch Spr_experiments Sys
