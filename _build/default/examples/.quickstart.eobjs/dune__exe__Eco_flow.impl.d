examples/eco_flow.ml: Array Filename List Printf Spr_arch Spr_core Spr_layout Spr_netlist Spr_render Spr_timing String Sys
