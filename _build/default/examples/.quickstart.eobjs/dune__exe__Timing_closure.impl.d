examples/timing_closure.ml: Array Format List Printf Spr_arch Spr_core Spr_netlist Spr_seq Spr_timing String Sys
