examples/multi_chip.ml: Array Format Printf Spr_anneal Spr_arch Spr_core Spr_netlist Spr_partition Spr_util Sys
