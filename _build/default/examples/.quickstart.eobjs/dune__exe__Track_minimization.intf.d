examples/track_minimization.mli:
