examples/segmentation_explorer.mli:
