examples/quickstart.ml: Array Cell_kind Format List Netlist Spr_arch Spr_core Spr_layout Spr_netlist Spr_route Spr_timing String
