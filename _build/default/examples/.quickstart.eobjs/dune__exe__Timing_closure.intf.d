examples/timing_closure.mli:
