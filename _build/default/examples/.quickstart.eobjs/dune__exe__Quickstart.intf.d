examples/quickstart.mli:
