examples/multi_chip.mli:
