examples/track_minimization.ml: Array Printf Spr_experiments Spr_netlist Sys
