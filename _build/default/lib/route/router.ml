type config = {
  spine_margin : int;
  spine_candidates : int;
  antifuse_weight : float;
  retry_cap : int;
  criticality : (int -> float) option;
}

let default_config =
  {
    spine_margin = 2;
    spine_candidates = 24;
    antifuse_weight = 3.0;
    retry_cap = 64;
    criticality = None;
  }

(* Queue ordering: (criticality, estimated length) descending, net id as
   the deterministic tie-break. *)
let sort_queue config keyed =
  match config.criticality with
  | None ->
    List.sort (fun ((a : int), na) (b, nb) -> compare (b, nb) (a, na)) keyed
  | Some crit ->
    let scored = List.map (fun (len, net) -> (crit net, len, net)) keyed in
    List.map
      (fun (_, len, net) -> (len, net))
      (List.sort (fun (ca, la, na) (cb, lb, nb) -> compare (cb, lb, nb) (ca, la, na)) scored)

let rip_up_cell st j cell =
  let nl = Route_state.netlist st in
  let nets = Spr_netlist.Netlist.nets_of_cell nl cell in
  List.iter (fun net -> Route_state.rip_up st j net) nets;
  nets

let take n xs =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n xs

let reroute ?(config = default_config) st j =
  let place = Route_state.place st in
  (* Global phase: longest nets first (paper: U_G "is sorted based on the
     estimated length of its contents ... giving priority to the longer
     unroutable nets"). *)
  let ug = Route_state.u_g st in
  let keyed =
    List.map (fun net -> (Spr_layout.Placement.half_perimeter place net, net)) ug
  in
  let keyed = List.filter (fun (_, net) -> Route_state.global_attempt_pending st net) keyed in
  let sorted = sort_queue config keyed in
  let changed = ref [] in
  List.iter
    (fun (_, net) ->
      if
        Global_router.attempt ~margin:config.spine_margin
          ~max_candidates:config.spine_candidates st j net
      then
        changed := net :: !changed
      else Route_state.note_global_failure st net)
    (take config.retry_cap sorted);
  (* Detailed phase: each channel's queue, longest span first. *)
  let arch = Route_state.arch st in
  for channel = 0 to arch.Spr_arch.Arch.n_channels - 1 do
    let queued = Route_state.u_d st channel in
    let keyed =
      List.filter_map
        (fun net ->
          if not (Route_state.detail_attempt_pending st net ~channel) then None
          else
            match List.assoc_opt channel (Route_state.h_demands st net) with
            | Some span -> Some (Spr_util.Interval.length span, net)
            | None -> None)
        queued
    in
    let sorted = sort_queue config keyed in
    List.iter
      (fun (_, net) ->
        if Detail_router.attempt ~antifuse_weight:config.antifuse_weight st j ~net ~channel
        then changed := net :: !changed
        else Route_state.note_detail_failure st net ~channel)
      (take config.retry_cap sorted)
  done;
  List.sort_uniq compare !changed

let route_all ?(config = default_config) ?(passes = 3) st =
  let config = { config with retry_cap = max_int } in
  let j = Spr_util.Journal.create () in
  let rec loop p =
    if p > 0 && not (Route_state.fully_routed st) then begin
      ignore (reroute ~config st j : int list);
      loop (p - 1)
    end
  in
  loop passes;
  Spr_util.Journal.commit j
