module I = Spr_util.Interval
module Rs = Route_state

type channel_util = {
  cu_channel : int;
  cu_used_len : int;
  cu_total_len : int;
  cu_used_segments : int;
  cu_total_segments : int;
}

type t = {
  routed_nets : int;
  unrouted_nets : int;
  horizontal_wirelength : int;
  vertical_wirelength : int;
  horizontal_antifuses : int;
  vertical_antifuses : int;
  cross_antifuses : int;
  channels : channel_util list;
  vertical_used : int;
  vertical_total : int;
}

let collect st =
  let arch = Rs.arch st in
  let place = Rs.place st in
  let nl = Rs.netlist st in
  let open Spr_arch in
  let h_wire = ref 0 and v_wire = ref 0 in
  let h_fuse = ref 0 and v_fuse = ref 0 and x_fuse = ref 0 in
  let routed = ref 0 in
  for net = 0 to Spr_netlist.Netlist.n_nets nl - 1 do
    if Rs.is_fully_routed st net then begin
      incr routed;
      let hroutes = Rs.h_routes st net in
      List.iter
        (fun (ch, (hr : Rs.hroute)) ->
          let segs = Arch.hsegments arch ~channel:ch ~track:hr.Rs.h_track in
          for s = hr.Rs.h_slo to hr.Rs.h_shi do
            h_wire := !h_wire + I.length segs.(s)
          done;
          h_fuse := !h_fuse + (hr.Rs.h_shi - hr.Rs.h_slo))
        hroutes;
      (match Rs.global_route st net with
      | None -> ()
      | Some vr ->
        let segs = Arch.vsegments arch ~col:vr.Rs.v_col ~vtrack:vr.Rs.v_vtrack in
        for s = vr.Rs.v_slo to vr.Rs.v_shi do
          v_wire := !v_wire + I.length segs.(s)
        done;
        v_fuse := !v_fuse + (vr.Rs.v_shi - vr.Rs.v_slo);
        (* one spine tap per channel the net routes in *)
        x_fuse := !x_fuse + List.length hroutes);
      (* one cross antifuse per pin tap *)
      x_fuse := !x_fuse + List.length (Spr_layout.Placement.net_pin_positions place net)
    end
  done;
  let channels =
    List.init arch.Arch.n_channels (fun ch ->
        let used_len = ref 0 and total_len = ref 0 in
        let used_segs = ref 0 and total_segs = ref 0 in
        for track = 0 to arch.Arch.tracks - 1 do
          let segs = Arch.hsegments arch ~channel:ch ~track in
          Array.iteri
            (fun s seg ->
              incr total_segs;
              total_len := !total_len + I.length seg;
              if Rs.hseg_owner st ~channel:ch ~track ~seg:s <> -1 then begin
                incr used_segs;
                used_len := !used_len + I.length seg
              end)
            segs
        done;
        {
          cu_channel = ch;
          cu_used_len = !used_len;
          cu_total_len = !total_len;
          cu_used_segments = !used_segs;
          cu_total_segments = !total_segs;
        })
  in
  let v_used = ref 0 and v_total = ref 0 in
  for col = 0 to arch.Arch.cols - 1 do
    for vt = 0 to arch.Arch.vtracks - 1 do
      let segs = Arch.vsegments arch ~col ~vtrack:vt in
      Array.iteri
        (fun s _ ->
          incr v_total;
          if Rs.vseg_owner st ~col ~vtrack:vt ~seg:s <> -1 then incr v_used)
        segs
    done
  done;
  {
    routed_nets = !routed;
    unrouted_nets = Rs.d_count st;
    horizontal_wirelength = !h_wire;
    vertical_wirelength = !v_wire;
    horizontal_antifuses = !h_fuse;
    vertical_antifuses = !v_fuse;
    cross_antifuses = !x_fuse;
    channels;
    vertical_used = !v_used;
    vertical_total = !v_total;
  }

let total_antifuses t = t.horizontal_antifuses + t.vertical_antifuses + t.cross_antifuses

let pp ppf t =
  Format.fprintf ppf "routed %d nets (%d unrouted)@." t.routed_nets t.unrouted_nets;
  Format.fprintf ppf "wirelength: %d col-units horizontal, %d channel-units vertical@."
    t.horizontal_wirelength t.vertical_wirelength;
  Format.fprintf ppf "antifuses: %d horizontal + %d vertical + %d cross = %d@."
    t.horizontal_antifuses t.vertical_antifuses t.cross_antifuses (total_antifuses t);
  Format.fprintf ppf "vertical segments used: %d/%d@." t.vertical_used t.vertical_total;
  List.iter
    (fun cu ->
      Format.fprintf ppf "channel %2d: %4d/%4d col-units (%.0f%%), %d/%d segments@."
        cu.cu_channel cu.cu_used_len cu.cu_total_len
        (100.0 *. float_of_int cu.cu_used_len /. float_of_int (max 1 cu.cu_total_len))
        cu.cu_used_segments cu.cu_total_segments)
    t.channels
