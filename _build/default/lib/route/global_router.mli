(** Incremental global routing heuristic (paper §3.3).

    Global routing for row-based FPGAs assigns feedthrough (vertical
    spine) resources to nets that span channels. The heuristic is
    deliberately simple and fast: take the free stack of vertical
    segments closest to the center of the net's column bounding box.
    Robustness comes not from one exhaustive search but from the many
    re-attempts the annealer makes in ever more compliant placements. *)

val attempt :
  ?margin:int -> ?max_candidates:int -> Route_state.t -> Spr_util.Journal.t -> int -> bool
(** [attempt st j net] tries to give [net] (which must be in U{_G}) a
    global route; on success the route is claimed through
    {!Route_state.claim_global} and [true] is returned. [margin]
    (default 2) lets the spine sit slightly outside the pin bounding
    box; at most [max_candidates] (default 24) columns are probed,
    nearest the bounding-box center first. *)
