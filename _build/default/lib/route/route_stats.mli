(** Post-layout routing statistics: actual (not estimated) wirelength,
    programmed antifuse counts, and resource utilization.

    These are the physical quantities behind the paper's concerns —
    antifuses on a path cost delay (§1), track supply bounds wirability
    (§2.1) — measured over the claimed segments of the current state. *)

type channel_util = {
  cu_channel : int;
  cu_used_len : int;  (** Claimed segment length, column units. *)
  cu_total_len : int;  (** tracks x cols. *)
  cu_used_segments : int;
  cu_total_segments : int;
}

type t = {
  routed_nets : int;
  unrouted_nets : int;
  horizontal_wirelength : int;
      (** Total claimed horizontal segment length (column units) — the
          constructive wirelength the cost function never needed to
          estimate. *)
  vertical_wirelength : int;  (** Claimed vertical length, channel units. *)
  horizontal_antifuses : int;
      (** Programmed joints between adjacent claimed segments. *)
  vertical_antifuses : int;
  cross_antifuses : int;
      (** Pin taps plus spine-to-channel taps. *)
  channels : channel_util list;
  vertical_used : int;  (** Claimed vertical segments. *)
  vertical_total : int;
}

val collect : Route_state.t -> t

val total_antifuses : t -> int

val pp : Format.formatter -> t -> unit
