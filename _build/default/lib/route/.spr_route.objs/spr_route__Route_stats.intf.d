lib/route/route_stats.mli: Format Route_state
