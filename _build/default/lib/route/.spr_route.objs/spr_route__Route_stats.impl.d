lib/route/route_stats.ml: Arch Array Format List Route_state Spr_arch Spr_layout Spr_netlist Spr_util
