lib/route/detail_router.mli: Route_state Spr_util
