lib/route/router.mli: Route_state Spr_util
