lib/route/global_router.mli: Route_state Spr_util
