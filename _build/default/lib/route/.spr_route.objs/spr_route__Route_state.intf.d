lib/route/route_state.mli: Spr_arch Spr_layout Spr_netlist Spr_util
