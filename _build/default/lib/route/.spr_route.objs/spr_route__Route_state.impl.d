lib/route/route_state.ml: Arch Array Buffer Hashtbl List Option Printf Spr_arch Spr_layout Spr_netlist Spr_util
