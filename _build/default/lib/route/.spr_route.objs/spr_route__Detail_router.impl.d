lib/route/detail_router.ml: Array List Route_state Spr_arch Spr_util
