lib/route/router.ml: Detail_router Global_router List Route_state Spr_arch Spr_layout Spr_netlist Spr_util
