lib/route/global_router.ml: List Route_state Spr_arch Spr_layout Spr_util
