(** Seeded synthetic netlist generator.

    Produces random mapped circuits with the gross statistics of the
    MCNC benchmarks used in the paper (Tables 1 and 2): a given total cell
    count, small primary-I/O and flip-flop fractions, fanin 1-4 with mean
    near 2.7, locality-biased connectivity (a cell mostly consumes
    recently created signals, giving realistic path depth), flip-flop
    feedback loops, and no combinational cycles. Equal parameters and
    seeds produce identical netlists. *)

type params = {
  n_cells : int;  (** Total cells including I/O pads. *)
  pi_frac : float;  (** Fraction of cells that are primary inputs. *)
  po_frac : float;  (** Fraction that are primary outputs. *)
  seq_frac : float;  (** Fraction that are flip-flops. *)
  max_fanin : int;  (** Upper bound on combinational fanin (>= 1). *)
  locality : float;  (** Probability a fanin comes from the recent window. *)
  window : int;  (** Size of the recent-signal window. *)
  feedback : float;  (** Probability a flip-flop output feeds back. *)
}

val default : n_cells:int -> params
(** MCNC-like defaults: 8% inputs, 6% outputs, 8% flip-flops, max fanin 4,
    locality 0.65 over a window of 24, feedback 0.5. *)

val generate : ?name:string -> params -> seed:int -> Netlist.t
(** Raises [Invalid_argument] if the parameters are infeasible
    (e.g. [n_cells] too small to hold two inputs and one output). *)
