type params = {
  n_cells : int;
  pi_frac : float;
  po_frac : float;
  seq_frac : float;
  max_fanin : int;
  locality : float;
  window : int;
  feedback : float;
}

let default ~n_cells =
  {
    n_cells;
    pi_frac = 0.08;
    po_frac = 0.06;
    seq_frac = 0.08;
    max_fanin = 4;
    locality = 0.65;
    window = 24;
    feedback = 0.5;
  }

(* Intermediate cell record; fanin lists stay mutable until the netlist
   is frozen so that dangling outputs can be wired up in a post-pass. *)
type proto = {
  p_name : string;
  p_kind : Cell_kind.t;
  mutable p_fanins : int list;  (* driver proto indices, reversed *)
}

let frac_count total frac lo = max lo (int_of_float (Float.round (float_of_int total *. frac)))

(* Fanin count distribution for combinational cells: mean ~2.7 when
   max_fanin = 4, matching LUT/multiplexer-module mapped circuits. *)
let draw_fanin rng max_fanin =
  let r = Spr_util.Rng.float rng 1.0 in
  let k = if r < 0.12 then 1 else if r < 0.42 then 2 else if r < 0.78 then 3 else 4 in
  min k max_fanin

let generate ?name:_ params ~seed =
  let rng = Spr_util.Rng.create seed in
  let n = params.n_cells in
  let n_pi = frac_count n params.pi_frac 2 in
  let n_po = frac_count n params.po_frac 1 in
  let n_seq = frac_count n params.seq_frac 0 in
  let n_comb = n - n_pi - n_po - n_seq in
  if n_comb < 1 then invalid_arg "Generator.generate: n_cells too small for the I/O fractions";
  if params.max_fanin < 1 then invalid_arg "Generator.generate: max_fanin must be >= 1";
  let protos = Array.make n { p_name = ""; p_kind = Cell_kind.Comb; p_fanins = [] } in
  let n_protos = ref 0 in
  let add_proto name kind fanins =
    let idx = !n_protos in
    protos.(idx) <- { p_name = name; p_kind = kind; p_fanins = fanins };
    incr n_protos;
    idx
  in
  (* Pool of signal-producing cells, in creation order. *)
  let avail = Array.make n 0 in
  let n_avail = ref 0 in
  let push_avail i =
    avail.(!n_avail) <- i;
    incr n_avail
  in
  for i = 0 to n_pi - 1 do
    push_avail (add_proto (Printf.sprintf "pi%d" i) Cell_kind.Input [])
  done;
  (* Locality-biased driver choice: mostly recent signals, occasionally
     any earlier signal, so paths deepen rather than staying flat. *)
  let pick_driver () =
    let m = !n_avail in
    if Spr_util.Rng.float rng 1.0 < params.locality && m > params.window then
      avail.(m - 1 - Spr_util.Rng.int rng params.window)
    else avail.(Spr_util.Rng.int rng m)
  in
  let pick_distinct k =
    let rec loop acc tries remaining =
      if remaining = 0 || tries > 20 then acc
      else begin
        let d = pick_driver () in
        if List.mem d acc then loop acc (tries + 1) remaining
        else loop (d :: acc) tries (remaining - 1)
      end
    in
    loop [] 0 k
  in
  (* Interleave combinational cells and flip-flops in a random order. *)
  let body = Array.make (n_comb + n_seq) Cell_kind.Comb in
  for i = n_comb to n_comb + n_seq - 1 do
    body.(i) <- Cell_kind.Seq
  done;
  Spr_util.Rng.shuffle_in_place rng body;
  Array.iteri
    (fun i kind ->
      let fanins =
        match kind with
        | Cell_kind.Seq -> pick_distinct 1
        | Cell_kind.Comb -> pick_distinct (draw_fanin rng params.max_fanin)
        | Cell_kind.Input | Cell_kind.Output -> assert false
      in
      let prefix = match kind with Cell_kind.Seq -> "ff" | _ -> "g" in
      push_avail (add_proto (Printf.sprintf "%s%d" prefix i) kind fanins))
    body;
  (* Primary outputs drain unused signals first. *)
  let fanout = Array.make n 0 in
  for i = 0 to !n_protos - 1 do
    List.iter (fun d -> fanout.(d) <- fanout.(d) + 1) protos.(i).p_fanins
  done;
  let unused = ref [] in
  for i = !n_protos - 1 downto 0 do
    if fanout.(i) = 0 && Cell_kind.has_output protos.(i).p_kind then unused := i :: !unused
  done;
  let unused = Array.of_list !unused in
  Spr_util.Rng.shuffle_in_place rng unused;
  for i = 0 to n_po - 1 do
    let d =
      if i < Array.length unused then unused.(i) else avail.(Spr_util.Rng.int rng !n_avail)
    in
    ignore (add_proto (Printf.sprintf "po%d" i) Cell_kind.Output [ d ]);
    fanout.(d) <- fanout.(d) + 1
  done;
  let total = !n_protos in
  (* Remaining dangling outputs become extra fanins of later cells
     (keeping the creation order acyclic for combinational signals);
     flip-flop outputs may feed any combinational cell since loops through
     a latch are legal. *)
  let comb_cells_from lo =
    let acc = ref [] in
    for j = total - 1 downto lo do
      if Cell_kind.equal protos.(j).p_kind Cell_kind.Comb then acc := j :: !acc
    done;
    !acc
  in
  for i = 0 to total - 1 do
    let p = protos.(i) in
    if fanout.(i) = 0 && Cell_kind.has_output p.p_kind then begin
      let lo = match p.p_kind with Cell_kind.Seq -> 0 | _ -> i + 1 in
      let candidates =
        List.filter
          (fun j ->
            j <> i
            && List.length protos.(j).p_fanins < params.max_fanin
            && not (List.mem i protos.(j).p_fanins))
          (comb_cells_from lo)
      in
      match candidates with
      | [] -> ()  (* genuinely dangling; the net simply has no sinks *)
      | cs ->
        let j = Spr_util.Rng.pick_list rng cs in
        protos.(j).p_fanins <- i :: protos.(j).p_fanins;
        fanout.(i) <- fanout.(i) + 1
    end
  done;
  (* Flip-flop feedback: route some FF outputs back into earlier logic. *)
  for i = 0 to total - 1 do
    let p = protos.(i) in
    if Cell_kind.equal p.p_kind Cell_kind.Seq && Spr_util.Rng.float rng 1.0 < params.feedback
    then begin
      let candidates =
        List.filter
          (fun j ->
            j <> i
            && List.length protos.(j).p_fanins < params.max_fanin
            && not (List.mem i protos.(j).p_fanins))
          (comb_cells_from 0)
      in
      match candidates with
      | [] -> ()
      | cs ->
        let j = Spr_util.Rng.pick_list rng cs in
        protos.(j).p_fanins <- i :: protos.(j).p_fanins;
        fanout.(i) <- fanout.(i) + 1
    end
  done;
  (* Freeze into a validated netlist. *)
  let b = Netlist.Builder.create () in
  let ids =
    Array.init total (fun i ->
        let p = protos.(i) in
        Netlist.Builder.add_cell b ~name:p.p_name ~kind:p.p_kind
          ~n_inputs:(List.length p.p_fanins))
  in
  let net_of = Array.make total (-1) in
  for i = 0 to total - 1 do
    if Cell_kind.has_output protos.(i).p_kind then
      net_of.(i) <- Netlist.Builder.add_net b ~name:("n_" ^ protos.(i).p_name) ~driver:ids.(i)
  done;
  for i = 0 to total - 1 do
    List.iteri
      (fun pin d -> Netlist.Builder.add_sink b ~net:net_of.(d) ~cell:ids.(i) ~pin)
      (List.rev protos.(i).p_fanins)
  done;
  Netlist.Builder.finish_exn b
