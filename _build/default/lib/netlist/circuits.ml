type spec = {
  spec_name : string;
  spec_cells : int;
  spec_seed : int;
}

let table_specs =
  [
    { spec_name = "s1"; spec_cells = 181; spec_seed = 0x511 };
    { spec_name = "cse"; spec_cells = 156; spec_seed = 0xC5E };
    { spec_name = "ex1"; spec_cells = 227; spec_seed = 0xE11 };
    { spec_name = "bw"; spec_cells = 158; spec_seed = 0xB10 };
    { spec_name = "s1a"; spec_cells = 163; spec_seed = 0x51A };
  ]

let big529 = { spec_name = "big529"; spec_cells = 529; spec_seed = 0x529 }

let all = table_specs @ [ big529 ]

let find name = List.find_opt (fun s -> s.spec_name = name) all

let make spec =
  let params = Generator.default ~n_cells:spec.spec_cells in
  Generator.generate ~name:spec.spec_name params ~seed:spec.spec_seed

let make_by_name name =
  match find name with
  | Some spec -> make spec
  | None -> raise Not_found
