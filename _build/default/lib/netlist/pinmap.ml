type side = Top | Bottom

type t = side array

let side_equal a b =
  match a, b with
  | Top, Top | Bottom, Bottom -> true
  | (Top | Bottom), _ -> false

let side_to_string = function Top -> "top" | Bottom -> "bottom"

let equal a b = Array.length a = Array.length b && Array.for_all2 side_equal a b

let copy = Array.copy

let palette ~n_pins =
  assert (n_pins >= 0);
  if n_pins = 0 then [| [||] |]
  else begin
    let candidates =
      [ Array.make n_pins Bottom;
        Array.make n_pins Top;
        Array.init n_pins (fun i -> if i mod 2 = 0 then Bottom else Top);
        Array.init n_pins (fun i -> if i mod 2 = 0 then Top else Bottom) ]
    in
    let distinct =
      List.fold_left
        (fun acc pm -> if List.exists (equal pm) acc then acc else pm :: acc)
        [] candidates
    in
    Array.of_list (List.rev distinct)
  end
