(** Combinational levelization (paper §3.5).

    Boundary elements — primary inputs, sequential cells, and constant
    (zero-input) combinational cells — have level 0. Every other cell's
    level is one more than the maximum level over its input-net drivers,
    where a driver that is itself a boundary element contributes level 0.
    Levels depend only on connectivity, never on placement, so they are
    computed once per netlist. *)

type t = {
  levels : int array;  (** Per cell id. *)
  order : int array;  (** All cell ids sorted by non-decreasing level. *)
  max_level : int;
}

val run : Netlist.t -> (t, string) result
(** [Error] describes a combinational cycle (a loop not broken by any
    sequential cell), listing the cells involved. *)

val run_exn : Netlist.t -> t
