lib/netlist/netlist.ml: Array Cell_kind Format List Printf
