lib/netlist/circuits.mli: Netlist
