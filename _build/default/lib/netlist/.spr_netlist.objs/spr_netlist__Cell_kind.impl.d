lib/netlist/cell_kind.ml:
