lib/netlist/circuits.ml: Generator List
