lib/netlist/pinmap.ml: Array List
