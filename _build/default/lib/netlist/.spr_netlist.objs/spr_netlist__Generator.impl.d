lib/netlist/generator.ml: Array Cell_kind Float List Netlist Printf Spr_util
