lib/netlist/netlist_stats.ml: Array Format Hashtbl Levelize List Netlist Option
