lib/netlist/pinmap.mli:
