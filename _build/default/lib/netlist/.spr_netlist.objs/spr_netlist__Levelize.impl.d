lib/netlist/levelize.ml: Array Cell_kind List Netlist Printf Queue String
