lib/netlist/blif.ml: Array Buffer Cell_kind Hashtbl List Netlist Printf String
