type cell = {
  id : int;
  cell_name : string;
  kind : Cell_kind.t;
  n_inputs : int;
}

type net = {
  net_id : int;
  net_name : string;
  driver : int;
  sinks : (int * int) array;
}

type t = {
  cells_arr : cell array;
  nets_arr : net array;
  out_net_arr : int array;  (* -1 when the cell drives nothing *)
  in_net_arr : int array array;  (* per cell, per input pin *)
}

module Builder = struct
  type pending_net = {
    p_name : string;
    p_driver : int;
    mutable p_sinks : (int * int) list;  (* reversed *)
  }

  type t = {
    mutable b_cells : cell list;  (* reversed *)
    mutable b_n_cells : int;
    mutable b_nets : pending_net list;  (* reversed *)
    mutable b_n_nets : int;
  }

  let create () = { b_cells = []; b_n_cells = 0; b_nets = []; b_n_nets = 0 }

  let add_cell b ~name ~kind ~n_inputs =
    assert (n_inputs >= 0);
    let id = b.b_n_cells in
    b.b_cells <- { id; cell_name = name; kind; n_inputs } :: b.b_cells;
    b.b_n_cells <- id + 1;
    id

  let add_net b ~name ~driver =
    let id = b.b_n_nets in
    b.b_nets <- { p_name = name; p_driver = driver; p_sinks = [] } :: b.b_nets;
    b.b_n_nets <- id + 1;
    id

  let add_sink b ~net ~cell ~pin =
    (* Pending nets are stored most-recent-first. *)
    let idx = b.b_n_nets - 1 - net in
    if idx < 0 || net < 0 then invalid_arg "Netlist.Builder.add_sink: bad net id";
    let p = List.nth b.b_nets idx in
    p.p_sinks <- (cell, pin) :: p.p_sinks

  let finish b =
    let cells_arr = Array.of_list (List.rev b.b_cells) in
    let n_cells = Array.length cells_arr in
    let pending = List.rev b.b_nets in
    let out_net_arr = Array.make n_cells (-1) in
    let in_net_arr = Array.map (fun c -> Array.make c.n_inputs (-1)) cells_arr in
    let error = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
    let nets_arr =
      Array.of_list
        (List.mapi
           (fun net_id p ->
             (if p.p_driver < 0 || p.p_driver >= n_cells then
                fail "net %s: driver cell %d out of range" p.p_name p.p_driver
              else begin
                let d = cells_arr.(p.p_driver) in
                if not (Cell_kind.has_output d.kind) then
                  fail "net %s: driver %s has no output" p.p_name d.cell_name
                else if out_net_arr.(p.p_driver) <> -1 then
                  fail "cell %s drives more than one net" d.cell_name
                else out_net_arr.(p.p_driver) <- net_id
              end);
             let sinks = Array.of_list (List.rev p.p_sinks) in
             Array.iter
               (fun (c, pin) ->
                 if c < 0 || c >= n_cells then fail "net %s: sink cell %d out of range" p.p_name c
                 else if pin < 0 || pin >= cells_arr.(c).n_inputs then
                   fail "net %s: pin %d out of range on cell %s" p.p_name pin
                     cells_arr.(c).cell_name
                 else if in_net_arr.(c).(pin) <> -1 then
                   fail "cell %s input pin %d connected twice" cells_arr.(c).cell_name pin
                 else in_net_arr.(c).(pin) <- net_id)
               sinks;
             { net_id; net_name = p.p_name; driver = p.p_driver; sinks })
           pending)
    in
    Array.iter
      (fun c ->
        Array.iteri
          (fun pin n ->
            if n = -1 then fail "cell %s input pin %d unconnected" c.cell_name pin)
          in_net_arr.(c.id))
      cells_arr;
    match !error with
    | Some msg -> Error msg
    | None -> Ok { cells_arr; nets_arr; out_net_arr; in_net_arr }

  let finish_exn b =
    match finish b with
    | Ok t -> t
    | Error msg -> invalid_arg ("Netlist.Builder.finish: " ^ msg)
end

let n_cells t = Array.length t.cells_arr

let n_nets t = Array.length t.nets_arr

let cell t i = t.cells_arr.(i)

let net t i = t.nets_arr.(i)

let cells t = t.cells_arr

let nets t = t.nets_arr

let out_net t i =
  let n = t.out_net_arr.(i) in
  if n = -1 then None else Some n

let in_net t c pin = t.in_net_arr.(c).(pin)

let in_nets t c = t.in_net_arr.(c)

let n_pins t c =
  let cl = t.cells_arr.(c) in
  cl.n_inputs + (if Cell_kind.has_output cl.kind then 1 else 0)

let nets_of_cell t c =
  let ins = Array.to_list t.in_net_arr.(c) in
  let all = match out_net t c with Some n -> n :: ins | None -> ins in
  List.sort_uniq compare all

let fanout_cells t c =
  match out_net t c with
  | None -> []
  | Some n ->
    let sinks = t.nets_arr.(n).sinks in
    List.sort_uniq compare (Array.to_list (Array.map fst sinks))

type counts = {
  n_input : int;
  n_output : int;
  n_comb : int;
  n_seq : int;
  total_pins : int;
}

let counts t =
  Array.fold_left
    (fun acc c ->
      let acc =
        match c.kind with
        | Cell_kind.Input -> { acc with n_input = acc.n_input + 1 }
        | Cell_kind.Output -> { acc with n_output = acc.n_output + 1 }
        | Cell_kind.Comb -> { acc with n_comb = acc.n_comb + 1 }
        | Cell_kind.Seq -> { acc with n_seq = acc.n_seq + 1 }
      in
      { acc with total_pins = acc.total_pins + n_pins t c.id })
    { n_input = 0; n_output = 0; n_comb = 0; n_seq = 0; total_pins = 0 }
    t.cells_arr

let pp_summary ppf t =
  let c = counts t in
  Format.fprintf ppf "%d cells (%d in, %d out, %d comb, %d seq), %d nets, %d pins"
    (n_cells t) c.n_input c.n_output c.n_comb c.n_seq (n_nets t) c.total_pins
