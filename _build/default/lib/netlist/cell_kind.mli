(** Kinds of FPGA logic-block-sized cells produced by technology mapping
    (the "i", "c", ... blocks of the paper's Figure 1). *)

type t =
  | Input  (** Primary-input pad: no input pins, one output pin. *)
  | Output  (** Primary-output pad: one input pin, no output pin. *)
  | Comb  (** Combinational logic module. *)
  | Seq  (** Sequential module (flip-flop); a timing boundary. *)

val equal : t -> t -> bool

val to_string : t -> string

val is_io : t -> bool
(** [Input] and [Output] cells; these are restricted to perimeter slots. *)

val is_timing_source : t -> bool
(** Cells whose output starts a combinational path: [Input] and [Seq]. *)

val is_timing_sink : t -> bool
(** Cells whose input ends a combinational path: [Output] and [Seq]. *)

val has_output : t -> bool
(** Every kind except [Output] drives a net. *)
