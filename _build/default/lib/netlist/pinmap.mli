(** Cell pin assignments.

    A row-based FPGA logic module can realize the same function under
    several different assignments of logical pins to physical pin
    positions; the paper calls these {i pinmaps} and makes pinmap
    reassignment an annealing move. In this fabric model a physical pin
    position is a side: the channel above ([Top]) or below ([Bottom]) the
    cell's row, at the cell's column.

    Pin indexing convention (shared with {!Netlist}): a cell with [k]
    input pins uses pin indices [0 .. k-1] for inputs and, when it has an
    output, pin index [k] for the output. *)

type side = Top | Bottom

type t = side array
(** One side per pin, indexed by pin index. *)

val side_equal : side -> side -> bool

val side_to_string : side -> string

val palette : n_pins:int -> t array
(** Compile-time palette of legal pinmaps for a cell with [n_pins] pins
    (paper §3.2: "a manageable palette of pinmap alternatives").
    Always non-empty; entry 0 is the default (all pins [Bottom]). The
    palette contains up to four distinct alternatives: all-bottom,
    all-top, and the two alternating assignments. Duplicates that arise
    for small [n_pins] are removed. *)

val copy : t -> t

val equal : t -> t -> bool
