(** Structural statistics of a netlist: logic depth, fanin/fanout
    distributions, net terminal counts.

    Two uses: validating that the synthetic generator produces circuits
    with mapped-MCNC-like structure (the substitution argument of
    DESIGN.md §2), and sizing intuition for users bringing their own
    BLIF circuits. *)

type histogram = (int * int) list
(** [(value, count)] pairs, sorted by value. *)

type t = {
  n_cells : int;
  n_nets : int;
  logic_depth : int;  (** Maximum combinational level. *)
  depth_histogram : histogram;  (** Cells per level. *)
  avg_fanin : float;  (** Over cells with inputs. *)
  fanout_histogram : histogram;  (** Nets per sink count. *)
  avg_fanout : float;  (** Sinks per net, over driven nets. *)
  max_fanout : int;
  avg_net_terminals : float;  (** Pins per net (driver + sinks). *)
}

val collect : Netlist.t -> (t, string) result
(** Fails only when the netlist has a combinational cycle. *)

val collect_exn : Netlist.t -> t

val pp : Format.formatter -> t -> unit
