(** Immutable mapped netlist: FPGA logic-block-sized cells connected by
    multi-terminal nets.

    Pin indexing convention: a cell with [k] input pins uses pin indices
    [0 .. k-1] for its inputs; when the cell kind has an output
    ({!Cell_kind.has_output}), the output uses pin index [k]. *)

type cell = {
  id : int;
  cell_name : string;
  kind : Cell_kind.t;
  n_inputs : int;
}

type net = {
  net_id : int;
  net_name : string;
  driver : int;  (** Driving cell id. *)
  sinks : (int * int) array;  (** [(cell id, input pin index)] pairs. *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type netlist := t

  type t

  val create : unit -> t

  val add_cell : t -> name:string -> kind:Cell_kind.t -> n_inputs:int -> int
  (** Returns the new cell's id. Ids are dense, starting at 0. *)

  val add_net : t -> name:string -> driver:int -> int
  (** Returns the new net's id. The driver must have an output and must
      not already drive another net (checked at {!finish}). *)

  val add_sink : t -> net:int -> cell:int -> pin:int -> unit

  val finish : t -> (netlist, string) result
  (** Validates and freezes. Errors on: an input pin left unconnected or
      connected twice, a net driven by a cell without an output, a cell
      driving more than one net, or an out-of-range pin index. Nets with
      zero sinks are permitted (they need no routing). *)

  val finish_exn : t -> netlist
end

(** {1 Accessors} *)

val n_cells : t -> int

val n_nets : t -> int

val cell : t -> int -> cell

val net : t -> int -> net

val cells : t -> cell array

val nets : t -> net array

val out_net : t -> int -> int option
(** Net driven by the cell, if any. *)

val in_net : t -> int -> int -> int
(** [in_net t cell pin] is the net feeding input [pin] of [cell]. *)

val in_nets : t -> int -> int array
(** All input nets of a cell, indexed by input pin. *)

val n_pins : t -> int -> int
(** Total pin count of a cell: inputs plus output when present. *)

val nets_of_cell : t -> int -> int list
(** Every net touching the cell (its input nets and its output net),
    without duplicates. *)

val fanout_cells : t -> int -> int list
(** Distinct sink cells of the net driven by the given cell ([] when the
    cell drives nothing). *)

(** {1 Statistics} *)

type counts = {
  n_input : int;
  n_output : int;
  n_comb : int;
  n_seq : int;
  total_pins : int;
}

val counts : t -> counts

val pp_summary : Format.formatter -> t -> unit
