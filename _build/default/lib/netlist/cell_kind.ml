type t = Input | Output | Comb | Seq

let equal a b =
  match a, b with
  | Input, Input | Output, Output | Comb, Comb | Seq, Seq -> true
  | (Input | Output | Comb | Seq), _ -> false

let to_string = function
  | Input -> "input"
  | Output -> "output"
  | Comb -> "comb"
  | Seq -> "seq"

let is_io = function Input | Output -> true | Comb | Seq -> false

let is_timing_source = function Input | Seq -> true | Output | Comb -> false

let is_timing_sink = function Output | Seq -> true | Input | Comb -> false

let has_output = function Output -> false | Input | Comb | Seq -> true
