type histogram = (int * int) list

type t = {
  n_cells : int;
  n_nets : int;
  logic_depth : int;
  depth_histogram : histogram;
  avg_fanin : float;
  fanout_histogram : histogram;
  avg_fanout : float;
  max_fanout : int;
  avg_net_terminals : float;
}

let histogram_of values =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    values;
  List.sort compare (Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [])

let collect nl =
  match Levelize.run nl with
  | Error e -> Error e
  | Ok lev ->
    let n_cells = Netlist.n_cells nl in
    let n_nets = Netlist.n_nets nl in
    let levels = Array.to_list lev.Levelize.levels in
    let fanin_total = ref 0 and fanin_cells = ref 0 in
    Array.iter
      (fun c ->
        if c.Netlist.n_inputs > 0 then begin
          fanin_total := !fanin_total + c.Netlist.n_inputs;
          incr fanin_cells
        end)
      (Netlist.cells nl);
    let fanouts =
      List.map
        (fun net -> Array.length net.Netlist.sinks)
        (Array.to_list (Netlist.nets nl))
    in
    let driven = List.filter (fun f -> f > 0) fanouts in
    let sum = List.fold_left ( + ) 0 in
    Ok
      {
        n_cells;
        n_nets;
        logic_depth = lev.Levelize.max_level;
        depth_histogram = histogram_of levels;
        avg_fanin =
          (if !fanin_cells = 0 then 0.0
           else float_of_int !fanin_total /. float_of_int !fanin_cells);
        fanout_histogram = histogram_of fanouts;
        avg_fanout =
          (if driven = [] then 0.0
           else float_of_int (sum driven) /. float_of_int (List.length driven));
        max_fanout = List.fold_left max 0 fanouts;
        avg_net_terminals =
          (if n_nets = 0 then 0.0
           else float_of_int (sum fanouts + n_nets) /. float_of_int n_nets);
      }

let collect_exn nl =
  match collect nl with
  | Ok t -> t
  | Error e -> invalid_arg ("Netlist_stats.collect: " ^ e)

let pp ppf t =
  Format.fprintf ppf "%d cells, %d nets, logic depth %d@." t.n_cells t.n_nets t.logic_depth;
  Format.fprintf ppf "avg fanin %.2f, avg fanout %.2f (max %d), avg net terminals %.2f@."
    t.avg_fanin t.avg_fanout t.max_fanout t.avg_net_terminals;
  Format.fprintf ppf "cells per level:";
  List.iter (fun (lvl, n) -> Format.fprintf ppf " %d:%d" lvl n) t.depth_histogram;
  Format.fprintf ppf "@.fanout distribution:";
  List.iter (fun (f, n) -> Format.fprintf ppf " %d:%d" f n) t.fanout_histogram;
  Format.fprintf ppf "@."
