(** Named benchmark circuits.

    The paper evaluates on five MCNC benchmarks (s1, cse, ex1, bw, s1a)
    plus one larger 529-cell design (Figure 7). The original mapped
    netlists are not redistributable, so each preset is a seeded synthetic
    circuit with the same total cell count and MCNC-like statistics (see
    {!Generator} and DESIGN.md §2). A real netlist in BLIF form can be
    substituted via {!Blif.parse_file}. *)

type spec = {
  spec_name : string;
  spec_cells : int;  (** Paper-reported cell count. *)
  spec_seed : int;
}

val all : spec list
(** [s1 (181), cse (156), ex1 (227), bw (158), s1a (163), big529 (529)]. *)

val table_specs : spec list
(** The five circuits of Tables 1 and 2 (everything except [big529]). *)

val big529 : spec

val find : string -> spec option

val make : spec -> Netlist.t

val make_by_name : string -> Netlist.t
(** Raises [Not_found] for unknown names. *)
