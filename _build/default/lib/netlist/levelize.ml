type t = {
  levels : int array;
  order : int array;
  max_level : int;
}

(* A cell is a combinational source when paths cannot extend backward
   through it: primary inputs, flip-flops, and constant generators. *)
let is_source nl c =
  let cell = Netlist.cell nl c in
  Cell_kind.is_timing_source cell.Netlist.kind || cell.Netlist.n_inputs = 0

let distinct_in_nets nl c =
  List.sort_uniq compare (Array.to_list (Netlist.in_nets nl c))

(* Kahn's algorithm over the combinational subgraph. The in-degree of a
   non-source cell counts its distinct input nets driven by non-source
   cells; popping a non-source cell releases exactly one such dependency
   per distinct fanout cell, since a cell drives at most one net. *)
let run nl =
  let n = Netlist.n_cells nl in
  let levels = Array.make n 0 in
  let indeg = Array.make n 0 in
  let driver_of net = (Netlist.net nl net).Netlist.driver in
  for c = 0 to n - 1 do
    if not (is_source nl c) then
      List.iter
        (fun net -> if not (is_source nl (driver_of net)) then indeg.(c) <- indeg.(c) + 1)
        (distinct_in_nets nl c)
  done;
  let queue = Queue.create () in
  for c = 0 to n - 1 do
    if is_source nl c then Queue.add c queue
    else if indeg.(c) = 0 then begin
      levels.(c) <- 1;
      Queue.add c queue
    end
  done;
  let n_done = ref 0 in
  let order_rev = ref [] in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    incr n_done;
    order_rev := c :: !order_rev;
    if not (is_source nl c) then
      List.iter
        (fun f ->
          if not (is_source nl f) then begin
            indeg.(f) <- indeg.(f) - 1;
            if indeg.(f) = 0 then begin
              let lvl =
                List.fold_left
                  (fun acc net ->
                    let d = driver_of net in
                    max acc (if is_source nl d then 0 else levels.(d)))
                  0
                  (distinct_in_nets nl f)
              in
              levels.(f) <- lvl + 1;
              Queue.add f queue
            end
          end)
        (Netlist.fanout_cells nl c)
  done;
  if !n_done < n then begin
    let seen = Array.make n false in
    List.iter (fun c -> seen.(c) <- true) !order_rev;
    let stuck = ref [] in
    for c = n - 1 downto 0 do
      if not seen.(c) then stuck := (Netlist.cell nl c).Netlist.cell_name :: !stuck
    done;
    Error
      (Printf.sprintf "combinational cycle involving cells: %s"
         (String.concat ", " !stuck))
  end
  else begin
    let order = Array.of_list (List.rev !order_rev) in
    Array.sort (fun a b -> compare levels.(a) levels.(b)) order;
    let max_level = Array.fold_left max 0 levels in
    Ok { levels; order; max_level }
  end

let run_exn nl =
  match run nl with
  | Ok r -> r
  | Error msg -> invalid_arg ("Levelize.run: " ^ msg)
