(** Die plots of a placed-and-routed layout — the artifact of the
    paper's Figure 7 ("Output of example with 529 cells").

    Two renderers:

    - {!to_svg}: a full plot with logic-module rows, channel tracks and
      their segmentation, vertical feedthroughs, every routed net's
      claimed segments (colored per net), pin taps, and an optional
      highlighted net set (e.g. the critical path's nets).

    - {!to_ascii}: a compact terminal view — the cell map (one character
      per slot by kind) plus per-channel track-utilization bars. *)

val to_svg :
  ?highlight:int list ->
  ?show_free_segments:bool ->
  Spr_route.Route_state.t ->
  Svg.t
(** [highlight] nets are drawn thick and red; [show_free_segments]
    (default true) draws unclaimed segments in light gray so the
    segmentation is visible. *)

val save_svg :
  ?highlight:int list -> ?show_free_segments:bool -> Spr_route.Route_state.t -> string -> unit

val to_ascii : Spr_route.Route_state.t -> string

val critical_nets : Spr_timing.Sta.t -> Spr_route.Route_state.t -> int list
(** The nets along the current critical path, for [highlight]. *)
