lib/render/die_plot.ml: Array Buffer List Printf Spr_arch Spr_layout Spr_netlist Spr_route Spr_timing Spr_util String Svg
