lib/render/die_plot.mli: Spr_route Spr_timing Svg
