lib/render/svg.ml: Buffer Printf String
