lib/render/svg.mli:
