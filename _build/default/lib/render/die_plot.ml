module Rs = Spr_route.Route_state
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module I = Spr_util.Interval

(* Geometry: SVG y grows downward, so the fabric is stacked from the top
   channel (index rows) down to channel 0, with logic rows interleaved. *)
type geom = {
  margin : float;
  col_w : float;
  row_h : float;
  track_pitch : float;
  chan_pad : float;
  chan_h : float;
  rows : int;
}

let geom_of arch =
  let track_pitch = 2.0 in
  let chan_pad = 3.0 in
  {
    margin = 24.0;
    col_w = 14.0;
    row_h = 10.0;
    track_pitch;
    chan_pad;
    chan_h = (float_of_int arch.Arch.tracks *. track_pitch) +. (2.0 *. chan_pad);
    rows = arch.Arch.rows;
  }

let x_of g col = g.margin +. (float_of_int col *. g.col_w)

(* Top edge of channel k (channel k lies below row k). *)
let y_channel_top g k =
  g.margin +. (float_of_int (g.rows - k) *. (g.chan_h +. g.row_h))

let y_row_top g r = y_channel_top g (r + 1) +. g.chan_h

let y_track g k t = y_channel_top g k +. g.chan_pad +. (float_of_int t *. g.track_pitch)

let die_width g cols = (2.0 *. g.margin) +. (float_of_int cols *. g.col_w)

let die_height g = (2.0 *. g.margin) +. (float_of_int (g.rows + 1) *. (g.chan_h +. g.row_h))

(* Distinguishable net colors from a hash of the net id. *)
let net_color net =
  let hues = [| 210; 120; 30; 270; 0; 180; 330; 60; 240; 150 |] in
  let h = hues.(net mod Array.length hues) in
  let l = 30 + (net * 7 mod 25) in
  Printf.sprintf "hsl(%d,65%%,%d%%)" h l

let kind_fill = function
  | Spr_netlist.Cell_kind.Input -> "#9ecae1"
  | Spr_netlist.Cell_kind.Output -> "#fdae6b"
  | Spr_netlist.Cell_kind.Comb -> "#c7e9c0"
  | Spr_netlist.Cell_kind.Seq -> "#bcbddc"

let to_svg ?(highlight = []) ?(show_free_segments = true) st =
  let arch = Rs.arch st in
  let place = Rs.place st in
  let nl = Rs.netlist st in
  let g = geom_of arch in
  let svg = Svg.create ~width:(die_width g arch.Arch.cols) ~height:(die_height g) in
  Svg.comment svg
    (Printf.sprintf "die plot: %dx%d fabric, %d channels x %d tracks" arch.Arch.rows
       arch.Arch.cols arch.Arch.n_channels arch.Arch.tracks);
  (* channel backgrounds *)
  for k = 0 to arch.Arch.n_channels - 1 do
    Svg.rect svg ~x:(x_of g 0) ~y:(y_channel_top g k)
      ~w:(float_of_int arch.Arch.cols *. g.col_w)
      ~h:g.chan_h ~fill:"#f7f7f7" ()
  done;
  (* free segments: light gray dashes showing the segmentation *)
  if show_free_segments then
    for k = 0 to arch.Arch.n_channels - 1 do
      for t = 0 to arch.Arch.tracks - 1 do
        let segs = Arch.hsegments arch ~channel:k ~track:t in
        Array.iteri
          (fun s seg ->
            if Rs.hseg_owner st ~channel:k ~track:t ~seg:s = -1 then begin
              let y = y_track g k t in
              Svg.line svg
                ~x1:(x_of g seg.I.lo +. 1.0)
                ~y1:y
                ~x2:(x_of g seg.I.hi +. g.col_w -. 1.0)
                ~y2:y ~stroke:"#dddddd" ~stroke_width:0.7 ()
            end)
          segs
      done
    done;
  (* logic modules *)
  Array.iter
    (fun cell ->
      let slot = P.slot_of place cell.Nl.id in
      Svg.rect svg
        ~x:(x_of g slot.P.col +. 1.0)
        ~y:(y_row_top g slot.P.row +. 1.0)
        ~w:(g.col_w -. 2.0) ~h:(g.row_h -. 2.0) ~rx:1.0 ~stroke:"#888888" ~stroke_width:0.4
        ~fill:(kind_fill cell.Nl.kind) ())
    (Nl.cells nl);
  (* routed nets *)
  let draw_net net =
    let hot = List.mem net highlight in
    let stroke = if hot then "#d62728" else net_color net in
    let width = if hot then 2.2 else 1.1 in
    (* horizontal claimed runs *)
    List.iter
      (fun (ch, (hr : Rs.hroute)) ->
        let segs = Arch.hsegments arch ~channel:ch ~track:hr.Rs.h_track in
        let y = y_track g ch hr.Rs.h_track in
        for s = hr.Rs.h_slo to hr.Rs.h_shi do
          Svg.line svg
            ~x1:(x_of g segs.(s).I.lo +. 1.0)
            ~y1:y
            ~x2:(x_of g segs.(s).I.hi +. g.col_w -. 1.0)
            ~y2:y ~stroke ~stroke_width:width ();
          (* horizontal antifuse between consecutive claimed segments *)
          if s > hr.Rs.h_slo then
            Svg.circle svg ~cx:(x_of g segs.(s).I.lo +. 0.5) ~cy:y ~r:1.2 ~fill:stroke ()
        done)
      (Rs.h_routes st net);
    (* vertical spine *)
    (match Rs.global_route st net with
    | None -> ()
    | Some vr ->
      let x = x_of g vr.Rs.v_col +. (g.col_w /. 2.0) in
      let y1 = y_channel_top g vr.Rs.v_span.I.hi +. g.chan_pad in
      let y2 = y_channel_top g vr.Rs.v_span.I.lo +. g.chan_h -. g.chan_pad in
      Svg.line svg ~x1:x ~y1 ~x2:x ~y2 ~stroke ~stroke_width:width ~opacity:0.85 ());
    (* pin taps *)
    List.iter
      (fun (ch, col) ->
        match List.assoc_opt ch (Rs.h_routes st net) with
        | None -> ()
        | Some hr ->
          let y = y_track g ch hr.Rs.h_track in
          let x = x_of g col +. (g.col_w /. 2.0) in
          Svg.circle svg ~cx:x ~cy:y ~r:(if hot then 1.6 else 1.0) ~fill:stroke ())
      (P.net_pin_positions place net)
  in
  for net = 0 to Nl.n_nets nl - 1 do
    if not (List.mem net highlight) then draw_net net
  done;
  (* highlighted nets last so they sit on top *)
  List.iter (fun net -> if net >= 0 && net < Nl.n_nets nl then draw_net net) highlight;
  (* frame and caption *)
  Svg.rect svg ~x:(g.margin /. 2.0) ~y:(g.margin /. 2.0)
    ~w:(die_width g arch.Arch.cols -. g.margin)
    ~h:(die_height g -. g.margin)
    ~stroke:"#444444" ~stroke_width:1.0 ();
  Svg.text svg ~x:(g.margin /. 2.0)
    ~y:(die_height g -. 4.0)
    ~size:9.0
    (Printf.sprintf "%d cells, %d/%d nets routed" (Nl.n_cells nl)
       (Rs.n_routable st - Rs.d_count st)
       (Rs.n_routable st));
  svg

let save_svg ?highlight ?show_free_segments st path =
  Svg.save (to_svg ?highlight ?show_free_segments st) path

let to_ascii st =
  let arch = Rs.arch st in
  let place = Rs.place st in
  let nl = Rs.netlist st in
  let buf = Buffer.create 1024 in
  let kind_char = function
    | Spr_netlist.Cell_kind.Input -> 'i'
    | Spr_netlist.Cell_kind.Output -> 'o'
    | Spr_netlist.Cell_kind.Comb -> 'c'
    | Spr_netlist.Cell_kind.Seq -> 's'
  in
  (* channel utilization: claimed segment length / total *)
  let channel_util k =
    let used = ref 0 and total = ref 0 in
    for t = 0 to arch.Arch.tracks - 1 do
      let segs = Arch.hsegments arch ~channel:k ~track:t in
      Array.iteri
        (fun s seg ->
          total := !total + I.length seg;
          if Rs.hseg_owner st ~channel:k ~track:t ~seg:s <> -1 then
            used := !used + I.length seg)
        segs
    done;
    if !total = 0 then 0.0 else float_of_int !used /. float_of_int !total
  in
  let bar frac =
    let n = int_of_float (frac *. 20.0 +. 0.5) in
    String.make n '#' ^ String.make (20 - n) '.'
  in
  for row = arch.Arch.rows - 1 downto -1 do
    (* the channel above this row position *)
    let k = row + 1 in
    if k <= arch.Arch.rows then begin
      let u = channel_util k in
      Buffer.add_string buf (Printf.sprintf "ch%-2d [%s] %3.0f%%\n" k (bar u) (100.0 *. u))
    end;
    if row >= 0 then begin
      Buffer.add_string buf "      ";
      for col = 0 to arch.Arch.cols - 1 do
        let ch =
          match P.cell_at place { P.row; col } with
          | None -> '.'
          | Some c -> kind_char (Nl.cell nl c).Nl.kind
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.add_string buf
    (Printf.sprintf "%d cells; %d/%d nets routed (G=%d D=%d)\n" (Nl.n_cells nl)
       (Rs.n_routable st - Rs.d_count st)
       (Rs.n_routable st) (Rs.g_count st) (Rs.d_count st));
  Buffer.contents buf

let critical_nets sta st =
  let nl = Rs.netlist st in
  let path = Spr_timing.Sta.critical_path sta in
  let rec nets_along = function
    | a :: (b :: _ as rest) -> (
      (* the net from a to b is a's output net *)
      match Nl.out_net nl a with
      | Some net when List.mem b (Nl.fanout_cells nl a) -> net :: nets_along rest
      | Some _ | None -> nets_along rest)
    | [ _ ] | [] -> []
  in
  List.sort_uniq compare (nets_along path)
