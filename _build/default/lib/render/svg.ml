type t = {
  width : float;
  height : float;
  buf : Buffer.t;
}

let create ~width ~height =
  let buf = Buffer.create 4096 in
  { width; height; buf }

let addf t fmt = Printf.ksprintf (Buffer.add_string t.buf) fmt

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rect t ~x ~y ~w ~h ?(rx = 0.0) ?(stroke = "none") ?(stroke_width = 1.0) ?(fill = "none")
    ?(opacity = 1.0) () =
  addf t
    "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" rx=\"%.2f\" stroke=\"%s\" \
     stroke-width=\"%.2f\" fill=\"%s\" opacity=\"%.2f\"/>\n"
    x y w h rx stroke stroke_width fill opacity

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "black") ?(stroke_width = 1.0) ?(opacity = 1.0) () =
  addf t
    "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" \
     stroke-width=\"%.2f\" opacity=\"%.2f\"/>\n"
    x1 y1 x2 y2 stroke stroke_width opacity

let circle t ~cx ~cy ~r ?(stroke = "none") ?(fill = "black") () =
  addf t "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" stroke=\"%s\" fill=\"%s\"/>\n" cx cy r
    stroke fill

let text t ~x ~y ?(size = 10.0) ?(fill = "black") ?(anchor = "start") s =
  addf t
    "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" font-family=\"monospace\" fill=\"%s\" \
     text-anchor=\"%s\">%s</text>\n"
    x y size fill anchor (escape s)

let comment t s = addf t "<!-- %s -->\n" (escape s)

let to_string t =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\">\n%s</svg>\n"
    t.width t.height t.width t.height (Buffer.contents t.buf)

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
