(** Minimal SVG document builder — just enough to draw placed-and-routed
    die plots (the artifact of the paper's Figure 7). *)

type t

val create : width:float -> height:float -> t

val rect :
  t -> x:float -> y:float -> w:float -> h:float -> ?rx:float -> ?stroke:string ->
  ?stroke_width:float -> ?fill:string -> ?opacity:float -> unit -> unit

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> ?stroke:string ->
  ?stroke_width:float -> ?opacity:float -> unit -> unit

val circle :
  t -> cx:float -> cy:float -> r:float -> ?stroke:string -> ?fill:string -> unit -> unit

val text :
  t -> x:float -> y:float -> ?size:float -> ?fill:string -> ?anchor:string -> string -> unit

val comment : t -> string -> unit

val to_string : t -> string
(** The complete SVG document. *)

val save : t -> string -> unit
(** Write to a file. *)
