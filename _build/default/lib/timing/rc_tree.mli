(** Generic RC tree with Elmore delay evaluation [Elmore 1948].

    Nodes carry lumped capacitance; edges carry resistance. The tree is
    built undirected and oriented from the chosen root at evaluation
    time. Elmore delay to node [n] is the sum over edges on the
    root-to-[n] path of (edge resistance) x (total capacitance hanging
    below that edge) — the first moment of the impulse response, computed
    here in two linear passes. *)

type t

val create : unit -> t

val add_node : t -> cap:float -> int
(** Returns the node id (dense from 0). *)

val add_cap : t -> node:int -> cap:float -> unit
(** Add extra lumped capacitance to an existing node. *)

val add_edge : t -> int -> int -> res:float -> unit
(** Undirected resistive connection. The final graph must be a tree. *)

val n_nodes : t -> int

val elmore : t -> root:int -> float array
(** Per-node Elmore delay from [root]. Raises [Invalid_argument] if the
    graph is not a connected tree containing [root]. *)

val moments : t -> root:int -> float array * float array
(** [(m1, m2)] — the first two moments of the impulse response at every
    node (both with positive sign): [m1] is the Elmore delay; [m2] feeds
    two-moment delay metrics such as D2M. Same preconditions as
    {!elmore}. *)
