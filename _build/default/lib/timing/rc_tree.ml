type t = {
  mutable caps : float array;
  mutable adj : (int * float) list array;  (* neighbour, edge resistance *)
  mutable n : int;
  mutable n_edges : int;
}

let create () = { caps = Array.make 8 0.0; adj = Array.make 8 []; n = 0; n_edges = 0 }

let ensure t i =
  let cap = Array.length t.caps in
  if i >= cap then begin
    let caps = Array.make (max (i + 1) (cap * 2)) 0.0 in
    Array.blit t.caps 0 caps 0 t.n;
    t.caps <- caps;
    let adj = Array.make (Array.length caps) [] in
    Array.blit t.adj 0 adj 0 t.n;
    t.adj <- adj
  end

let add_node t ~cap =
  ensure t t.n;
  let id = t.n in
  t.caps.(id) <- cap;
  t.n <- t.n + 1;
  id

let add_cap t ~node ~cap =
  assert (node < t.n);
  t.caps.(node) <- t.caps.(node) +. cap

let add_edge t a b ~res =
  assert (a < t.n && b < t.n && a <> b);
  t.adj.(a) <- (b, res) :: t.adj.(a);
  t.adj.(b) <- (a, res) :: t.adj.(b);
  t.n_edges <- t.n_edges + 1

let n_nodes t = t.n

(* Orient the undirected tree from [root] with BFS; nets can be deep
   chains, so no recursion anywhere below. *)
let orient t ~root =
  if root >= t.n then invalid_arg "Rc_tree.elmore: bad root";
  if t.n_edges <> t.n - 1 then invalid_arg "Rc_tree.elmore: not a tree";
  let parent = Array.make t.n (-1) in
  let parent_res = Array.make t.n 0.0 in
  let order = Array.make t.n 0 in
  let visited = Array.make t.n false in
  let head = ref 0 and tail = ref 0 in
  order.(0) <- root;
  visited.(root) <- true;
  tail := 1;
  while !head < !tail do
    let u = order.(!head) in
    incr head;
    List.iter
      (fun (v, res) ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- u;
          parent_res.(v) <- res;
          order.(!tail) <- v;
          incr tail
        end)
      t.adj.(u)
  done;
  if !tail <> t.n then invalid_arg "Rc_tree.elmore: disconnected";
  (parent, parent_res, order)

let subtree_sum t ~parent ~order weights =
  let acc = Array.copy weights in
  for i = t.n - 1 downto 1 do
    let v = order.(i) in
    acc.(parent.(v)) <- acc.(parent.(v)) +. acc.(v)
  done;
  acc

let elmore t ~root =
  let parent, parent_res, order = orient t ~root in
  let subtree_cap = subtree_sum t ~parent ~order (Array.sub t.caps 0 t.n) in
  let delay = Array.make t.n 0.0 in
  for i = 1 to t.n - 1 do
    let v = order.(i) in
    delay.(v) <- delay.(parent.(v)) +. (parent_res.(v) *. subtree_cap.(v))
  done;
  delay

(* Second moment via the standard RC-tree recurrence:
   m2(v) = m2(parent) + R_edge * sum_{k in subtree(v)} C_k * m1(k). *)
let moments t ~root =
  let parent, parent_res, order = orient t ~root in
  let subtree_cap = subtree_sum t ~parent ~order (Array.sub t.caps 0 t.n) in
  let m1 = Array.make t.n 0.0 in
  for i = 1 to t.n - 1 do
    let v = order.(i) in
    m1.(v) <- m1.(parent.(v)) +. (parent_res.(v) *. subtree_cap.(v))
  done;
  let weighted = Array.init t.n (fun v -> t.caps.(v) *. m1.(v)) in
  let subtree_cm1 = subtree_sum t ~parent ~order weighted in
  let m2 = Array.make t.n 0.0 in
  for i = 1 to t.n - 1 do
    let v = order.(i) in
    m2.(v) <- m2.(parent.(v)) +. (parent_res.(v) *. subtree_cm1.(v))
  done;
  (m1, m2)
