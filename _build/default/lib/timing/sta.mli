(** Static timing analysis with incremental update (paper §3.5).

    Long-path model, all paths assumed sensitizable. Critical paths run
    between boundary elements: primary inputs and flip-flop outputs are
    sources; primary outputs and flip-flop inputs are sinks. Cells are
    levelized once (connectivity only); arrival times propagate in level
    order.

    After a perturbation the affected nets' interconnect delays are
    recomputed, and the change propagates through a frontier of affected
    cells processed in minimum-level order; expansion stops where output
    arrivals stop changing or at boundary elements. All state changes are
    journaled, so a rejected move restores the analyzer exactly. *)

type t

val create : Delay_model.t -> Spr_route.Route_state.t -> t
(** Levelizes the netlist and performs an initial full update. Raises
    [Invalid_argument] on combinational cycles. *)

val delay_model : t -> Delay_model.t

val full_update : t -> unit
(** Recompute every net delay and arrival from scratch (not journaled).
    Used at initialization and by tests as the incremental oracle. *)

val invalidate : t -> Spr_util.Journal.t -> int list -> unit
(** [invalidate t j nets]: re-evaluate the interconnect delay of each
    listed net and propagate arrival-time changes forward. Call once per
    move with every net whose routing or pin positions changed. *)

val critical_delay : t -> float
(** Worst arrival at any timing-sink input (ns). *)

val arrival_out : t -> int -> float
(** Arrival time at a cell's output (intrinsic delay for sources). *)

val arrival_in : t -> int -> float
(** Worst arrival over the cell's inputs; 0 for cells without inputs. *)

val critical_path : t -> int list
(** Cells on one worst path, source first. Empty when the design has no
    timing sinks. *)

val path_to : t -> int -> int list
(** The worst path ending at the given cell's inputs (source first,
    ending at the cell). [\[cell\]] when the cell has no inputs. *)

val timing_sinks : t -> int array
(** Cells whose inputs end combinational paths (primary outputs and
    flip-flops). *)
