module Rs = Spr_route.Route_state

let d2m ~m1 ~m2 =
  if m2 <= 0.0 then 0.0 else Float.log 2.0 *. m1 *. m1 /. sqrt m2

let routed_sink_delays dm st net =
  match Net_delay.build_rc_tree dm st net with
  | None -> None
  | Some (tree, root, sink_nodes) ->
    let m1, m2 = Rc_tree.moments tree ~root in
    Some (Array.map (fun n -> d2m ~m1:m1.(n) ~m2:m2.(n)) sink_nodes)

type agreement = {
  n_sinks : int;
  mean_ratio : float;
  min_ratio : float;
  max_ratio : float;
}

let compare_with_elmore dm st =
  let nl = Rs.netlist st in
  let stats = Spr_util.Stats.create () in
  for net = 0 to Spr_netlist.Netlist.n_nets nl - 1 do
    match Net_delay.routed_sink_delays dm st net, routed_sink_delays dm st net with
    | Some elmore, Some awe ->
      Array.iteri
        (fun i e -> if e > 0.0 then Spr_util.Stats.add stats (awe.(i) /. e))
        elmore
    | _, _ -> ()
  done;
  {
    n_sinks = Spr_util.Stats.count stats;
    mean_ratio = Spr_util.Stats.mean stats;
    min_ratio = Spr_util.Stats.min_value stats;
    max_ratio = Spr_util.Stats.max_value stats;
  }
