(** Endpoint timing report: the K worst path endpoints with their worst
    paths and (optionally) slack against a target clock period — the
    report a user reads after layout, and the data behind the paper's
    "identification and minimization of critical path delay" discussion
    (§2.1). *)

type path = {
  endpoint : int;  (** Timing-sink cell id. *)
  arrival_ns : float;  (** Worst arrival at the endpoint's inputs. *)
  slack_ns : float option;  (** [period - arrival] when a period is given. *)
  cells : int list;  (** Worst path, source first, endpoint last. *)
}

val worst_paths : ?k:int -> ?clock_period:float -> Sta.t -> path list
(** The [k] (default 10) endpoints with the largest arrivals, worst
    first. *)

val violations : clock_period:float -> Sta.t -> path list
(** All endpoints with negative slack at the given period, worst
    first. *)

val render : Spr_netlist.Netlist.t -> path list -> string
