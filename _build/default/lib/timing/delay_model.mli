(** Electrical and intrinsic delay parameters.

    Units: resistance in kilo-ohms, capacitance in picofarads, delay in
    nanoseconds (so R*C multiplies directly to ns). The defaults are in
    the ranges published for ACT-1/ACT-2-era antifuse parts: a programmed
    antifuse contributes roughly half a kilo-ohm, which is why paths
    through many short segments accrue significant delay — the effect the
    paper's cost function puts pressure on. *)

type t = {
  r_driver : float;  (** Module output driver resistance (kOhm). *)
  c_pin : float;  (** Module input pin capacitance (pF). *)
  r_hseg : float;  (** Horizontal segment resistance per column unit. *)
  c_hseg : float;  (** Horizontal segment capacitance per column unit. *)
  r_vseg : float;  (** Vertical segment resistance per channel unit. *)
  c_vseg : float;  (** Vertical segment capacitance per channel unit. *)
  r_antifuse : float;  (** Programmed antifuse resistance (any kind). *)
  c_antifuse : float;  (** Programmed antifuse capacitance. *)
  t_comb : float;  (** Combinational module intrinsic delay (ns). *)
  t_seq : float;  (** Flip-flop clock-to-output delay (ns). *)
  t_io : float;  (** Pad delay (ns). *)
}

val default : t

val intrinsic : t -> Spr_netlist.Cell_kind.t -> float
