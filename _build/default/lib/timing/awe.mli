(** Two-moment delay metric — the reproduction's stand-in for the RICE
    AWE-based post-layout delay evaluator the paper validated against
    ("The critical path delays determined by the post-layout timing
    analyzer were very close (within 90%) of that determined internally",
    §4).

    D2M (Alpert, Devgan, Kashyap) computes a 50% delay from the first two
    moments of the RC-tree impulse response:

    {v D2M = ln 2 * m1^2 / sqrt(m2) v}

    It is exact for a single pole and substantially more accurate than
    Elmore on resistively shielded far sinks, making it a meaningful
    independent cross-check of the Elmore numbers the annealer uses. *)

val routed_sink_delays :
  Delay_model.t -> Spr_route.Route_state.t -> int -> float array option
(** Per-sink D2M delays over the exact embedding; [None] when the net is
    not fully embedded. *)

type agreement = {
  n_sinks : int;
  mean_ratio : float;  (** mean of (D2M / Elmore) over all routed sinks. *)
  min_ratio : float;
  max_ratio : float;
}

val compare_with_elmore : Delay_model.t -> Spr_route.Route_state.t -> agreement
(** Evaluate both metrics over every fully routed net of the layout.
    Elmore upper-bounds the 50% delay, so ratios are <= 1; the paper's
    "within 90%" corresponds to a mean ratio around 0.9 or above. *)
