type path = {
  endpoint : int;
  arrival_ns : float;
  slack_ns : float option;
  cells : int list;
}

let all_endpoints ?clock_period sta =
  let sinks = Sta.timing_sinks sta in
  let paths =
    Array.to_list
      (Array.map
         (fun endpoint ->
           let arrival_ns = Sta.arrival_in sta endpoint in
           {
             endpoint;
             arrival_ns;
             slack_ns = Option.map (fun p -> p -. arrival_ns) clock_period;
             cells = Sta.path_to sta endpoint;
           })
         sinks)
  in
  List.sort (fun a b -> compare b.arrival_ns a.arrival_ns) paths

let worst_paths ?(k = 10) ?clock_period sta =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k (all_endpoints ?clock_period sta)

let violations ~clock_period sta =
  List.filter
    (fun p -> match p.slack_ns with Some s -> s < 0.0 | None -> false)
    (all_endpoints ~clock_period sta)

let render nl paths =
  let buf = Buffer.create 1024 in
  let name c = (Spr_netlist.Netlist.cell nl c).Spr_netlist.Netlist.cell_name in
  List.iteri
    (fun i p ->
      let slack =
        match p.slack_ns with
        | Some s -> Printf.sprintf "  slack %+.2f ns%s" s (if s < 0.0 then "  (VIOLATED)" else "")
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "#%d  endpoint %-10s arrival %.2f ns%s\n" (i + 1) (name p.endpoint)
           p.arrival_ns slack);
      Buffer.add_string buf
        ("    " ^ String.concat " -> " (List.map name p.cells) ^ "\n"))
    paths;
  Buffer.contents buf
