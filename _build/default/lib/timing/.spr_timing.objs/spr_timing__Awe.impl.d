lib/timing/awe.ml: Array Float Net_delay Rc_tree Spr_netlist Spr_route Spr_util
