lib/timing/rc_tree.ml: Array List
