lib/timing/awe.mli: Delay_model Spr_route
