lib/timing/net_delay.ml: Array Delay_model Float Hashtbl List Rc_tree Spr_arch Spr_layout Spr_netlist Spr_route Spr_util
