lib/timing/path_report.ml: Array Buffer List Option Printf Spr_netlist Sta String
