lib/timing/rc_tree.mli:
