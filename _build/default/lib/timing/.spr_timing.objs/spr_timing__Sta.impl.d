lib/timing/sta.ml: Array Delay_model Float List Net_delay Seq Spr_netlist Spr_route Spr_util
