lib/timing/delay_model.ml: Spr_netlist
