lib/timing/path_report.mli: Spr_netlist Sta
