lib/timing/net_delay.mli: Delay_model Rc_tree Spr_route
