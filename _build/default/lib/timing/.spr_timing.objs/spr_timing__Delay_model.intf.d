lib/timing/delay_model.mli: Spr_netlist
