lib/timing/sta.mli: Delay_model Spr_route Spr_util
