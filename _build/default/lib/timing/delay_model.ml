type t = {
  r_driver : float;
  c_pin : float;
  r_hseg : float;
  c_hseg : float;
  r_vseg : float;
  c_vseg : float;
  r_antifuse : float;
  c_antifuse : float;
  t_comb : float;
  t_seq : float;
  t_io : float;
}

let default =
  {
    r_driver = 1.0;
    c_pin = 0.02;
    r_hseg = 0.025;
    c_hseg = 0.06;
    r_vseg = 0.05;
    c_vseg = 0.10;
    r_antifuse = 0.5;
    c_antifuse = 0.012;
    t_comb = 3.0;
    t_seq = 4.0;
    t_io = 2.0;
  }

let intrinsic t = function
  | Spr_netlist.Cell_kind.Input -> t.t_io
  | Spr_netlist.Cell_kind.Output -> t.t_io
  | Spr_netlist.Cell_kind.Comb -> t.t_comb
  | Spr_netlist.Cell_kind.Seq -> t.t_seq
