lib/seqpr/flow.mli: Seq_place Spr_arch Spr_layout Spr_netlist Spr_route Spr_timing Stdlib
