lib/seqpr/seq_place.ml: Array Float Hashtbl List Printf Spr_anneal Spr_arch Spr_layout Spr_netlist Spr_util
