lib/seqpr/seq_place.mli: Spr_anneal Spr_arch Spr_layout Spr_netlist Stdlib
