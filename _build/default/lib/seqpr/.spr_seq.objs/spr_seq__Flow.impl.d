lib/seqpr/flow.ml: Seq_place Seq_route Spr_layout Spr_netlist Spr_route Spr_timing Spr_util Sys
