lib/seqpr/seq_route.ml: List Spr_arch Spr_layout Spr_route Spr_util
