lib/seqpr/seq_route.mli: Spr_route Spr_util
