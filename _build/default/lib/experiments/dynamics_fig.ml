module D = Spr_core.Dynamics

type t = {
  circuit : string;
  samples : D.sample list;
  fully_routed : bool;
}

let run ?(effort = Profiles.Standard) ?(seed = 1) ?(circuit = "s1") () =
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = Profiles.arch_for ~tracks:28 nl in
  let r = Spr_core.Tool.run_exn ~config:(Profiles.tool_config ~seed effort ~n) arch nl in
  { circuit; samples = r.Spr_core.Tool.dynamics; fully_routed = r.Spr_core.Tool.fully_routed }

let render t =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "Annealing dynamics on %s (%% per temperature):@." t.circuit;
  D.pp_series ppf t.samples;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let shape_holds t =
  match t.samples with
  | [] -> false
  | first :: _ ->
    let last = List.nth t.samples (List.length t.samples - 1) in
    let first_g_zero =
      List.find_opt (fun s -> s.D.pct_nets_globally_unrouted <= 0.0) t.samples
    in
    let first_d_zero = List.find_opt (fun s -> s.D.pct_nets_unrouted <= 0.0) t.samples in
    first.D.pct_cells_perturbed >= 80.0
    && last.D.pct_cells_perturbed < first.D.pct_cells_perturbed
    && last.D.pct_nets_unrouted <= 0.0
    && last.D.pct_nets_globally_unrouted <= 0.0
    &&
    match first_g_zero, first_d_zero with
    | Some g, Some d -> g.D.dyn_temp_index <= d.D.dyn_temp_index
    | _, _ -> false
