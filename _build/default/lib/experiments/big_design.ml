module Tool = Spr_core.Tool
module Rs = Spr_route.Route_state

type t = {
  n_cells : int;
  tracks : int;
  fully_routed : bool;
  routed_pct : float;
  critical_delay_ns : float;
  cpu_seconds : float;
  n_moves : int;
}

let run ?(effort = Profiles.Thorough) ?(seed = 1) ?(tracks = 38) () =
  let nl = Spr_netlist.Circuits.make Spr_netlist.Circuits.big529 in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = Profiles.arch_for ~tracks nl in
  let r = Tool.run_exn ~config:(Profiles.tool_config ~seed effort ~n) arch nl in
  let routable = max 1 (Rs.n_routable r.Tool.route) in
  {
    n_cells = n;
    tracks;
    fully_routed = r.Tool.fully_routed;
    routed_pct = 100.0 *. float_of_int (routable - r.Tool.d) /. float_of_int routable;
    critical_delay_ns = r.Tool.critical_delay;
    cpu_seconds = r.Tool.cpu_seconds;
    n_moves = r.Tool.anneal_report.Spr_anneal.Engine.n_moves;
  }

let render t =
  Printf.sprintf
    "Figure 7 reproduction: %d-cell design on a %d-track fabric\n\
    \  routed: %.1f%% (fully routed: %b)\n\
    \  critical path: %.1f ns\n\
    \  cpu: %.1f s over %d annealing moves\n"
    t.n_cells t.tracks t.routed_pct t.fully_routed t.critical_delay_ns t.cpu_seconds t.n_moves
