(** Experiment T1 — paper Table 1: worst-case timing improvement of
    simultaneous over sequential place-and-route on the five benchmark
    circuits.

    For each circuit the harness picks the narrowest evaluation fabric
    (starting at 28 tracks, widening by 4) on which the {e sequential}
    flow achieves 100% wirability — Table 1 compares fully routed
    layouts — then runs both flows and reports the percentage
    improvement in critical-path delay. *)

type row = {
  circuit : string;
  n_cells : int;
  tracks_used : int;
  seq_delay_ns : float;
  sim_delay_ns : float;
  improvement_pct : float;
  seq_routed : bool;
  sim_routed : bool;
  seq_cpu_s : float;
  sim_cpu_s : float;
}

val run_circuit : ?effort:Profiles.effort -> ?seed:int -> Spr_netlist.Circuits.spec -> row

val run : ?effort:Profiles.effort -> ?seed:int -> unit -> row list
(** All five circuits of the paper's Table 1. *)

val render : row list -> string
(** Rows in the paper's format (design, cells, % improvement) plus the
    measured context columns. *)
