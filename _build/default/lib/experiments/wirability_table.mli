(** Experiment T2 — paper Table 2: minimum tracks per channel for 100%
    wirability under each flow.

    Following the paper's procedure, the number of tracks per channel is
    reduced until each tool fails to achieve 100% wirability; the minimum
    feasible width is reported. Annealing is stochastic, so a failing
    width is retried once with a different seed before being declared
    infeasible. *)

type row = {
  circuit : string;
  n_cells : int;
  seq_min_tracks : int;
  sim_min_tracks : int;
  reduction_pct : float;
}

val run_circuit :
  ?effort:Profiles.effort -> ?seed:int -> ?start_tracks:int -> Spr_netlist.Circuits.spec -> row

val run : ?effort:Profiles.effort -> ?seed:int -> unit -> row list

val render : row list -> string
