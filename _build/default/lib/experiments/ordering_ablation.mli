(** Ablation A3 — rip-up/retry queue ordering.

    The paper orders U{_G} and U{_D,R} by estimated net length; the
    routers it builds on ([8], [11]) also prioritize critical nets. This
    ablation runs the simultaneous tool with pure length ordering and
    with criticality-first ordering, same seed and fabric. *)

type t = {
  circuit : string;
  length_ordered_delay_ns : float;
  length_ordered_unrouted : int;
  criticality_ordered_delay_ns : float;
  criticality_ordered_unrouted : int;
}

val run : ?effort:Profiles.effort -> ?seed:int -> ?circuit:string -> ?tracks:int -> unit -> t
(** Defaults: ["cse"], 28 tracks. *)

val render : t -> string
