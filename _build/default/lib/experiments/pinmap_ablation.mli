(** Ablation A2 — pinmap reassignment moves (paper §3.2 includes them in
    the move set; this quantifies what they buy).

    Runs the simultaneous tool on one circuit with and without pinmap
    moves, same seed and fabric, and compares routability and delay. *)

type t = {
  circuit : string;
  with_pinmaps_delay_ns : float;
  with_pinmaps_unrouted : int;
  without_pinmaps_delay_ns : float;
  without_pinmaps_unrouted : int;
}

val run : ?effort:Profiles.effort -> ?seed:int -> ?circuit:string -> ?tracks:int -> unit -> t
(** Defaults: ["s1"], 28 tracks. *)

val render : t -> string
