(** Ablation A1 — channel segmentation (a design axis the paper's §1
    motivates: short segments aid wirability, long segments aid delay).

    Runs both flows on one circuit across segmentation schemes at a fixed
    channel width and reports routability and critical delay, exposing
    the wirability/delay trade-off the paper describes. *)

type row = {
  scheme : Spr_arch.Segmentation.scheme;
  avg_segment_len : float;
  sim_routed : bool;
  sim_unrouted : int;
  sim_delay_ns : float;
  seq_routed : bool;
  seq_unrouted : int;
  seq_delay_ns : float;
}

val run :
  ?effort:Profiles.effort -> ?seed:int -> ?circuit:string -> ?tracks:int -> unit -> row list
(** Defaults: ["cse"], 24 tracks, schemes uniform:3, uniform:6,
    actel-like, geometric, full. *)

val render : row list -> string
