(** Experiment F7 — paper Figure 7: a larger 529-cell design completed
    with 100% routing by the simultaneous tool (the paper reports roughly
    8 hours on an IBM RS6000; the reproduction takes a couple of
    minutes). *)

type t = {
  n_cells : int;
  tracks : int;
  fully_routed : bool;
  routed_pct : float;
  critical_delay_ns : float;
  cpu_seconds : float;
  n_moves : int;
}

val run : ?effort:Profiles.effort -> ?seed:int -> ?tracks:int -> unit -> t
(** Defaults: [Thorough] effort, 38 tracks. *)

val render : t -> string
