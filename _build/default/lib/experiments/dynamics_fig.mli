(** Experiment F6 — paper Figure 6: the dynamics of the simultaneous
    layout process. Per temperature: the percentage of cells perturbed,
    of nets globally unrouted, and of nets unrouted; the difference of
    the last two is the population that is globally routed but not yet
    detail routed. *)

type t = {
  circuit : string;
  samples : Spr_core.Dynamics.sample list;
  fully_routed : bool;
}

val run : ?effort:Profiles.effort -> ?seed:int -> ?circuit:string -> unit -> t
(** Default circuit: ["s1"]. *)

val render : t -> string

val shape_holds : t -> bool
(** The qualitative claims of Figure 6: placement activity decays from
    near-100% to a low tail; both unrouted fractions converge to zero by
    the end; the globally-unrouted fraction reaches zero no later than
    the total unrouted fraction. Used by tests and EXPERIMENTS.md. *)
