lib/experiments/big_design.mli: Profiles
