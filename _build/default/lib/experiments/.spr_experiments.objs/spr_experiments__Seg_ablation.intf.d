lib/experiments/seg_ablation.mli: Profiles Spr_arch
