lib/experiments/ordering_ablation.mli: Profiles
