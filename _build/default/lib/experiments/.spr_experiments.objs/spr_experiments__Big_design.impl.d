lib/experiments/big_design.ml: Printf Profiles Spr_anneal Spr_core Spr_netlist Spr_route
