lib/experiments/profiles.mli: Spr_anneal Spr_arch Spr_core Spr_netlist Spr_seq
