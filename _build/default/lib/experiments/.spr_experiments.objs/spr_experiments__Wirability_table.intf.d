lib/experiments/wirability_table.mli: Profiles Spr_netlist
