lib/experiments/ordering_ablation.ml: Printf Profiles Spr_core Spr_netlist
