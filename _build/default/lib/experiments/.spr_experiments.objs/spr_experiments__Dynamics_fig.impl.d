lib/experiments/dynamics_fig.ml: Buffer Format List Profiles Spr_core Spr_netlist
