lib/experiments/pinmap_ablation.mli: Profiles
