lib/experiments/seg_ablation.ml: List Printf Profiles Spr_arch Spr_core Spr_netlist Spr_seq Spr_util
