lib/experiments/dynamics_fig.mli: Profiles Spr_core
