lib/experiments/profiles.ml: Spr_anneal Spr_arch Spr_core Spr_seq
