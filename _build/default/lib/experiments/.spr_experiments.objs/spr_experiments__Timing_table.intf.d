lib/experiments/timing_table.mli: Profiles Spr_netlist
