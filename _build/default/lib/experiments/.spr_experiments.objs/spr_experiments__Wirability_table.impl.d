lib/experiments/wirability_table.ml: List Printf Profiles Spr_core Spr_netlist Spr_seq Spr_util
