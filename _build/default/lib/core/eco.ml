module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module P = Spr_layout.Placement
module Sta = Spr_timing.Sta
module J = Spr_util.Journal

type t = {
  rs : Rs.t;
  sta : Sta.t;
  place : P.t;
  journal : J.t;
  mutable has_pending : bool;
}

type delta = {
  moved_cells : int list;
  rerouted_nets : int list;
  unrouted_before : int;
  unrouted_after : int;
  delay_before_ns : float;
  delay_after_ns : float;
}

let create rs sta = { rs; sta; place = Rs.place rs; journal = J.create (); has_pending = false }

let of_result (r : Tool.result) = create r.Tool.route r.Tool.sta

let pending t = t.has_pending

let critical_delay t = Sta.critical_delay t.sta

let unrouted t = Rs.d_count t.rs

let commit t =
  J.commit t.journal;
  t.has_pending <- false

let rollback t =
  J.rollback t.journal;
  t.has_pending <- false

(* Shared transaction body: apply the placement change (already done by
   the caller into the journal), then cascade. *)
let finish t cells =
  let ripped = List.concat_map (fun cell -> Router.rip_up_cell t.rs t.journal cell) cells in
  let uncapped = { Router.default_config with Router.retry_cap = max_int } in
  let routed = Router.reroute ~config:uncapped t.rs t.journal in
  let routed2 = Router.reroute ~config:uncapped t.rs t.journal in
  let dirty = List.sort_uniq compare (ripped @ routed @ routed2) in
  Sta.invalidate t.sta t.journal dirty;
  dirty

let guard_no_pending t =
  if t.has_pending then Error "an edit is already pending; commit or rollback first" else Ok ()

let run_edit t ~cells ~apply =
  match guard_no_pending t with
  | Error e -> Error e
  | Ok () ->
    let unrouted_before = Rs.d_count t.rs in
    let delay_before_ns = Sta.critical_delay t.sta in
    (match apply () with
    | Error e -> Error e
    | Ok () ->
      t.has_pending <- true;
      let rerouted_nets = finish t cells in
      Ok
        {
          moved_cells = cells;
          rerouted_nets;
          unrouted_before;
          unrouted_after = Rs.d_count t.rs;
          delay_before_ns;
          delay_after_ns = Sta.critical_delay t.sta;
        })

let move_cell t ~cell ~dest =
  let src = P.slot_of t.place cell in
  if src = dest then Error "cell is already there"
  else if not (P.swap_legal t.place src dest) then Error "illegal destination for this cell"
  else begin
    let occupant = P.cell_at t.place dest in
    let cells = cell :: (match occupant with Some c -> [ c ] | None -> []) in
    run_edit t ~cells ~apply:(fun () ->
        P.swap_slots t.place src dest;
        J.record t.journal (fun () -> P.swap_slots t.place src dest);
        Ok ())
  end

let swap_cells t a b =
  if a = b then Error "cannot swap a cell with itself"
  else begin
    let sa = P.slot_of t.place a and sb = P.slot_of t.place b in
    if not (P.swap_legal t.place sa sb) then Error "swap would place a pad off the perimeter"
    else
      run_edit t ~cells:[ a; b ] ~apply:(fun () ->
          P.swap_slots t.place sa sb;
          J.record t.journal (fun () -> P.swap_slots t.place sa sb);
          Ok ())
  end

let set_pinmap t ~cell ~index =
  let size = P.palette_size t.place cell in
  if index < 0 || index >= size then Error "pinmap index out of range"
  else if index = P.pinmap_index t.place cell then Error "pinmap already selected"
  else begin
    let old_idx = P.pinmap_index t.place cell in
    run_edit t ~cells:[ cell ] ~apply:(fun () ->
        P.set_pinmap t.place ~cell ~index;
        J.record t.journal (fun () -> P.set_pinmap t.place ~cell ~index:old_idx);
        Ok ())
  end
