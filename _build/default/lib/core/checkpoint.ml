module Rs = Spr_route.Route_state
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module I = Spr_util.Interval

let format_version = 1

let to_string st =
  let arch = Rs.arch st in
  let place = Rs.place st in
  let nl = Rs.netlist st in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "spr-checkpoint %d\n" format_version;
  add "arch %d %d %d %d %s\n" arch.Arch.rows arch.Arch.cols arch.Arch.tracks arch.Arch.vtracks
    (Spr_arch.Segmentation.scheme_to_string arch.Arch.hscheme);
  add "design %d %d\n" (Nl.n_cells nl) (Nl.n_nets nl);
  for c = 0 to Nl.n_cells nl - 1 do
    let s = P.slot_of place c in
    add "cell %d %d %d %d\n" c s.P.row s.P.col (P.pinmap_index place c)
  done;
  for net = 0 to Nl.n_nets nl - 1 do
    (match Rs.global_route st net with
    | None -> ()
    | Some vr ->
      add "vroute %d %d %d %d %d\n" net vr.Rs.v_col vr.Rs.v_vtrack vr.Rs.v_slo vr.Rs.v_shi);
    List.iter
      (fun (ch, (hr : Rs.hroute)) ->
        add "hroute %d %d %d %d %d\n" net ch hr.Rs.h_track hr.Rs.h_slo hr.Rs.h_shi)
      (Rs.h_routes st net)
  done;
  add "end\n";
  Buffer.contents buf

let save st path =
  let oc = open_out path in
  output_string oc (to_string st);
  close_out oc

type parsed = {
  mutable p_arch : Arch.t option;
  mutable p_counts : (int * int) option;
  mutable p_cells : (int * int * int * int) list;
  mutable p_vroutes : (int * int * int * int * int) list;
  mutable p_hroutes : (int * int * int * int * int) list;
  mutable p_done : bool;
}

let parse text =
  let p =
    { p_arch = None; p_counts = None; p_cells = []; p_vroutes = []; p_hroutes = []; p_done = false }
  in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      if !error = None && not p.p_done then begin
        let words = String.split_on_char ' ' (String.trim line) in
        match words with
        | [ "" ] | [] -> ()
        | [ "spr-checkpoint"; v ] ->
          if int_of_string_opt v <> Some format_version then
            fail "line %d: unsupported checkpoint version %s" (lineno + 1) v
        | [ "arch"; rows; cols; tracks; vtracks; scheme ] -> (
          match
            ( int_of_string_opt rows,
              int_of_string_opt cols,
              int_of_string_opt tracks,
              int_of_string_opt vtracks,
              Spr_arch.Segmentation.scheme_of_string scheme )
          with
          | Some rows, Some cols, Some tracks, Some vtracks, Some hscheme ->
            p.p_arch <- Some (Arch.create ~rows ~cols ~tracks ~hscheme ~vtracks ())
          | _ -> fail "line %d: bad arch line" (lineno + 1))
        | [ "design"; cells; nets ] -> (
          match int_of_string_opt cells, int_of_string_opt nets with
          | Some c, Some n -> p.p_counts <- Some (c, n)
          | _ -> fail "line %d: bad design line" (lineno + 1))
        | [ "cell"; a; b; c; d ] -> (
          match
            int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d
          with
          | Some a, Some b, Some c, Some d -> p.p_cells <- (a, b, c, d) :: p.p_cells
          | _ -> fail "line %d: bad cell line" (lineno + 1))
        | [ "vroute"; a; b; c; d; e ] -> (
          match
            ( int_of_string_opt a,
              int_of_string_opt b,
              int_of_string_opt c,
              int_of_string_opt d,
              int_of_string_opt e )
          with
          | Some a, Some b, Some c, Some d, Some e ->
            p.p_vroutes <- (a, b, c, d, e) :: p.p_vroutes
          | _ -> fail "line %d: bad vroute line" (lineno + 1))
        | [ "hroute"; a; b; c; d; e ] -> (
          match
            ( int_of_string_opt a,
              int_of_string_opt b,
              int_of_string_opt c,
              int_of_string_opt d,
              int_of_string_opt e )
          with
          | Some a, Some b, Some c, Some d, Some e ->
            p.p_hroutes <- (a, b, c, d, e) :: p.p_hroutes
          | _ -> fail "line %d: bad hroute line" (lineno + 1))
        | [ "end" ] -> p.p_done <- true
        | w :: _ -> fail "line %d: unknown record %s" (lineno + 1) w
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None -> if p.p_done then Ok p else Error "truncated checkpoint (no end record)"

(* Replay the routing through the normal claiming path so every
   Route_state invariant is re-established (or the load fails). *)
let restore_routes st p =
  let arch = Rs.arch st in
  let j = Spr_util.Journal.create () in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  (* Global routes first: they establish the per-channel demands. *)
  List.iter
    (fun (net, col, vtrack, slo, shi) ->
      if !error = None then begin
        if not (Rs.needs_global st net) then fail "net %d: checkpoint spine but none needed" net
        else if not (Rs.vrun_free st ~col ~vtrack ~slo ~shi) then
          fail "net %d: spine segments already taken" net
        else begin
          match Rs.global_route st net with
          | Some _ -> fail "net %d: duplicate vroute record" net
          | None ->
            let segs = Arch.vsegments arch ~col ~vtrack in
            if slo < 0 || shi >= Array.length segs || slo > shi then
              fail "net %d: vroute segment range invalid" net
            else begin
              (* recompute the spine span from the claimed segments *)
              let place = Rs.place st in
              match P.net_channel_span place net with
              | None -> fail "net %d: no pins" net
              | Some (clo, chi) ->
                let covered = I.make segs.(slo).I.lo segs.(shi).I.hi in
                if not (I.covers covered (I.make clo chi)) then
                  fail "net %d: checkpoint spine does not cover the channel span" net
                else
                  Rs.claim_global st j net
                    { Rs.v_col = col; v_vtrack = vtrack; v_slo = slo; v_shi = shi;
                      v_span = I.make clo chi }
            end
        end
      end)
    (List.rev p.p_vroutes);
  (* Detailed routes: spans come from the freshly computed demands. *)
  List.iter
    (fun (net, channel, track, slo, shi) ->
      if !error = None then begin
        match List.assoc_opt channel (Rs.h_demands st net) with
        | None -> fail "net %d: checkpoint hroute in undemanded channel %d" net channel
        | Some span ->
          let segs = Arch.hsegments arch ~channel ~track in
          if slo < 0 || shi >= Array.length segs || slo > shi then
            fail "net %d: hroute segment range invalid" net
          else begin
            let covered = I.make segs.(slo).I.lo segs.(shi).I.hi in
            if not (I.covers covered span) then
              fail "net %d: checkpoint hroute does not cover the span in channel %d" net channel
            else if not (Rs.hrun_free st ~channel ~track ~slo ~shi) then
              fail "net %d: hroute segments already taken" net
            else
              Rs.claim_detail st j net
                { Rs.h_channel = channel; h_track = track; h_slo = slo; h_shi = shi;
                  h_span = span }
          end
      end)
    (List.rev p.p_hroutes);
  match !error with
  | Some e ->
    Spr_util.Journal.rollback j;
    Error e
  | None ->
    Spr_util.Journal.commit j;
    Ok ()

let of_string nl text =
  match parse text with
  | Error e -> Error e
  | Ok p -> (
    match p.p_arch, p.p_counts with
    | None, _ -> Error "checkpoint has no arch record"
    | _, None -> Error "checkpoint has no design record"
    | Some arch, Some (cells, nets) ->
      if cells <> Nl.n_cells nl || nets <> Nl.n_nets nl then
        Error
          (Printf.sprintf "design mismatch: checkpoint %d cells/%d nets, netlist %d/%d" cells
             nets (Nl.n_cells nl) (Nl.n_nets nl))
      else begin
        let slots = Array.make (Nl.n_cells nl) { P.row = -1; col = -1 } in
        let pinmaps = Array.make (Nl.n_cells nl) 0 in
        let bad = ref None in
        List.iter
          (fun (c, row, col, pm) ->
            if c < 0 || c >= Nl.n_cells nl then bad := Some (Printf.sprintf "cell id %d" c)
            else begin
              slots.(c) <- { P.row; col };
              pinmaps.(c) <- pm
            end)
          p.p_cells;
        match !bad with
        | Some e -> Error ("bad cell record: " ^ e)
        | None -> (
          if Array.exists (fun s -> s.P.row < 0) slots then
            Error "checkpoint is missing cell records"
          else
            match P.create_from arch nl ~slots ~pinmaps with
            | Error e -> Error e
            | Ok place -> (
              let st = Rs.create place in
              match restore_routes st p with
              | Error e -> Error e
              | Ok () -> (
                match Rs.check st with
                | Ok () -> Ok st
                | Error e -> Error ("restored state fails validation: " ^ e))))
      end)

let load nl path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string nl text
