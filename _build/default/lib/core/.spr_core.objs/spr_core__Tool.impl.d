lib/core/tool.ml: Dynamics Float List Logs Spr_anneal Spr_layout Spr_netlist Spr_route Spr_timing Spr_util Sys
