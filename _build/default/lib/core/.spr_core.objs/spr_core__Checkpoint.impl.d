lib/core/checkpoint.ml: Array Buffer List Printf Spr_arch Spr_layout Spr_netlist Spr_route Spr_util String
