lib/core/dynamics.ml: Array Format List
