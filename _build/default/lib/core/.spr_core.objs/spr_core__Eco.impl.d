lib/core/eco.ml: List Spr_layout Spr_route Spr_timing Spr_util Tool
