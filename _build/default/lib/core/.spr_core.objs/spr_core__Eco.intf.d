lib/core/eco.mli: Spr_layout Spr_route Spr_timing Stdlib Tool
