lib/core/tool.mli: Dynamics Spr_anneal Spr_arch Spr_layout Spr_netlist Spr_route Spr_timing Stdlib
