lib/core/checkpoint.mli: Spr_netlist Spr_route Stdlib
