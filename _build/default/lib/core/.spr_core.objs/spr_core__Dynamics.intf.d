lib/core/dynamics.mli: Format
