(** Save and restore a complete layout — fabric parameters, placement,
    pinmaps, and every net's routing — as a line-oriented text format.

    A real layout tool needs this for incremental (ECO) flows: finish a
    long annealing run once, then reload the layout for inspection,
    re-timing, or small edits (see {!Eco}).

    Restoring replays the routing through the normal claiming paths, so a
    loaded state satisfies every {!Spr_route.Route_state.check} invariant
    or the load fails with a diagnostic. Fabrics with custom [vschemes]
    are not representable (the format records the default scheme
    parameters); such layouts round-trip only if built with defaults. *)

val to_string : Spr_route.Route_state.t -> string

val save : Spr_route.Route_state.t -> string -> unit

val of_string :
  Spr_netlist.Netlist.t -> string -> (Spr_route.Route_state.t, string) Stdlib.result
(** The netlist must be the same design the checkpoint was written from
    (checked by cell/net counts and per-net terminal counts). *)

val load : Spr_netlist.Netlist.t -> string -> (Spr_route.Route_state.t, string) Stdlib.result
