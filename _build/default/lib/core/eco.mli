(** Incremental engineering-change-order (ECO) edits on a finished
    layout.

    The same transactional machinery that powers the annealer is exposed
    as a user-facing API: move or swap cells, or change a pinmap, and the
    attached nets are ripped up, incrementally rerouted, and the critical
    path incrementally re-timed. An edit that leaves nets unroutable can
    be kept or rolled back based on the returned delta. *)

type t

type delta = {
  moved_cells : int list;
  rerouted_nets : int list;  (** Nets whose embedding changed. *)
  unrouted_before : int;
  unrouted_after : int;
  delay_before_ns : float;
  delay_after_ns : float;
}

val create : Spr_route.Route_state.t -> Spr_timing.Sta.t -> t
(** Wrap an existing layout (e.g. {!Tool.run}'s result, or a loaded
    {!Checkpoint}). The state is mutated in place by committed edits. *)

val of_result : Tool.result -> t

val move_cell : t -> cell:int -> dest:Spr_layout.Placement.slot -> (delta, string) Stdlib.result
(** Move a cell to [dest]; if occupied, the occupant swaps back to the
    cell's slot. Fails (leaving the layout untouched) when the resulting
    positions are illegal. The edit is left {e pending}: call {!commit}
    or {!rollback}. *)

val swap_cells : t -> int -> int -> (delta, string) Stdlib.result

val set_pinmap : t -> cell:int -> index:int -> (delta, string) Stdlib.result

val commit : t -> unit
(** Keep the pending edit. *)

val rollback : t -> unit
(** Discard the pending edit, restoring the layout exactly. *)

val pending : t -> bool

val critical_delay : t -> float

val unrouted : t -> int
