type slot = { row : int; col : int }

type t = {
  arch : Spr_arch.Arch.t;
  nl : Spr_netlist.Netlist.t;
  slot_of_cell : int array;  (* cell -> row * cols + col *)
  cell_at_slot : int array;  (* encoded slot -> cell id or -1 *)
  pinmap_idx : int array;  (* cell -> palette index *)
  palettes : Spr_netlist.Pinmap.t array array;  (* cell -> palette *)
}

let encode arch { row; col } = (row * arch.Spr_arch.Arch.cols) + col

let decode arch e = { row = e / arch.Spr_arch.Arch.cols; col = e mod arch.Spr_arch.Arch.cols }

let arch t = t.arch

let netlist t = t.nl

let legal_kind_at arch kind s =
  if Spr_netlist.Cell_kind.is_io kind then
    Spr_arch.Arch.is_perimeter arch ~row:s.row ~col:s.col
  else true

let create arch nl ~rng =
  match Spr_arch.Arch.check_fits arch nl with
  | Error e -> Error e
  | Ok () ->
    let n = Spr_netlist.Netlist.n_cells nl in
    let n_slots = Spr_arch.Arch.n_slots arch in
    let slot_of_cell = Array.make n (-1) in
    let cell_at_slot = Array.make n_slots (-1) in
    (* Perimeter and interior slot pools, both shuffled. *)
    let perimeter = ref [] and interior = ref [] in
    for row = 0 to arch.Spr_arch.Arch.rows - 1 do
      for col = 0 to arch.Spr_arch.Arch.cols - 1 do
        let e = encode arch { row; col } in
        if Spr_arch.Arch.is_perimeter arch ~row ~col then perimeter := e :: !perimeter
        else interior := e :: !interior
      done
    done;
    let perimeter = Array.of_list !perimeter in
    let interior = Array.of_list !interior in
    Spr_util.Rng.shuffle_in_place rng perimeter;
    Spr_util.Rng.shuffle_in_place rng interior;
    let peri_next = ref 0 and inter_next = ref 0 in
    let take_perimeter () =
      let e = perimeter.(!peri_next) in
      incr peri_next;
      e
    in
    let take_any () =
      (* Non-pad cells prefer interior slots, spilling onto remaining
         perimeter slots when the interior is full. *)
      if !inter_next < Array.length interior then begin
        let e = interior.(!inter_next) in
        incr inter_next;
        e
      end
      else take_perimeter ()
    in
    let place c e =
      slot_of_cell.(c) <- e;
      cell_at_slot.(e) <- c
    in
    Array.iter
      (fun cell ->
        if Spr_netlist.Cell_kind.is_io cell.Spr_netlist.Netlist.kind then
          place cell.Spr_netlist.Netlist.id (take_perimeter ()))
      (Spr_netlist.Netlist.cells nl);
    Array.iter
      (fun cell ->
        if not (Spr_netlist.Cell_kind.is_io cell.Spr_netlist.Netlist.kind) then
          place cell.Spr_netlist.Netlist.id (take_any ()))
      (Spr_netlist.Netlist.cells nl);
    let palettes =
      Array.init n (fun c ->
          Spr_netlist.Pinmap.palette ~n_pins:(Spr_netlist.Netlist.n_pins nl c))
    in
    Ok
      {
        arch;
        nl;
        slot_of_cell;
        cell_at_slot;
        pinmap_idx = Array.make n 0;
        palettes;
      }

let create_exn arch nl ~rng =
  match create arch nl ~rng with
  | Ok t -> t
  | Error e -> invalid_arg ("Placement.create: " ^ e)

let create_from arch nl ~slots ~pinmaps =
  let n = Spr_netlist.Netlist.n_cells nl in
  if Array.length slots <> n || Array.length pinmaps <> n then
    Error "create_from: slots/pinmaps must have one entry per cell"
  else begin
    let n_slots = Spr_arch.Arch.n_slots arch in
    let slot_of_cell = Array.make n (-1) in
    let cell_at_slot = Array.make n_slots (-1) in
    let palettes =
      Array.init n (fun c ->
          Spr_netlist.Pinmap.palette ~n_pins:(Spr_netlist.Netlist.n_pins nl c))
    in
    let error = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
    Array.iteri
      (fun c s ->
        let kind = (Spr_netlist.Netlist.cell nl c).Spr_netlist.Netlist.kind in
        if s.row < 0 || s.row >= arch.Spr_arch.Arch.rows || s.col < 0
           || s.col >= arch.Spr_arch.Arch.cols
        then fail "cell %d: slot (%d,%d) out of range" c s.row s.col
        else if not (legal_kind_at arch kind s) then
          fail "cell %d: pad placed off the perimeter at (%d,%d)" c s.row s.col
        else begin
          let e = encode arch s in
          if cell_at_slot.(e) <> -1 then fail "slot (%d,%d) assigned twice" s.row s.col
          else begin
            cell_at_slot.(e) <- c;
            slot_of_cell.(c) <- e
          end
        end)
      slots;
    Array.iteri
      (fun c idx ->
        if idx < 0 || idx >= Array.length palettes.(c) then
          fail "cell %d: pinmap index %d out of range" c idx)
      pinmaps;
    match !error with
    | Some e -> Error e
    | None ->
      Ok { arch; nl; slot_of_cell; cell_at_slot; pinmap_idx = Array.copy pinmaps; palettes }
  end

let slot_of t c = decode t.arch t.slot_of_cell.(c)

let cell_at t s =
  let c = t.cell_at_slot.(encode t.arch s) in
  if c = -1 then None else Some c

let legal_at t ~cell s = legal_kind_at t.arch (Spr_netlist.Netlist.cell t.nl cell).Spr_netlist.Netlist.kind s

let swap_legal t a b =
  let ok_at occupant target =
    match occupant with
    | None -> true
    | Some c -> legal_at t ~cell:c target
  in
  ok_at (cell_at t a) b && ok_at (cell_at t b) a

let swap_slots t a b =
  let ea = encode t.arch a and eb = encode t.arch b in
  let ca = t.cell_at_slot.(ea) and cb = t.cell_at_slot.(eb) in
  t.cell_at_slot.(ea) <- cb;
  t.cell_at_slot.(eb) <- ca;
  if ca <> -1 then t.slot_of_cell.(ca) <- eb;
  if cb <> -1 then t.slot_of_cell.(cb) <- ea

let pinmap_index t c = t.pinmap_idx.(c)

let palette_size t c = Array.length t.palettes.(c)

let set_pinmap t ~cell ~index =
  assert (index >= 0 && index < Array.length t.palettes.(cell));
  t.pinmap_idx.(cell) <- index

let pin_side t ~cell ~pin = t.palettes.(cell).(t.pinmap_idx.(cell)).(pin)

(* Channel k runs below row k, channel k+1 above it. *)
let pin_channel t ~cell ~pin =
  let s = slot_of t cell in
  match pin_side t ~cell ~pin with
  | Spr_netlist.Pinmap.Bottom -> s.row
  | Spr_netlist.Pinmap.Top -> s.row + 1

let pin_col t ~cell ~pin =
  ignore pin;
  (slot_of t cell).col

let net_pin_positions t net_id =
  let net = Spr_netlist.Netlist.net t.nl net_id in
  let driver = net.Spr_netlist.Netlist.driver in
  let out_pin = (Spr_netlist.Netlist.cell t.nl driver).Spr_netlist.Netlist.n_inputs in
  let driver_pos =
    (pin_channel t ~cell:driver ~pin:out_pin, pin_col t ~cell:driver ~pin:out_pin)
  in
  driver_pos
  :: Array.to_list
       (Array.map
          (fun (c, pin) -> (pin_channel t ~cell:c ~pin, pin_col t ~cell:c ~pin))
          net.Spr_netlist.Netlist.sinks)

let net_channel_span t net_id =
  match net_pin_positions t net_id with
  | [] -> None
  | (ch, _) :: rest ->
    Some (List.fold_left (fun (lo, hi) (c, _) -> (min lo c, max hi c)) (ch, ch) rest)

let net_col_span t net_id =
  match net_pin_positions t net_id with
  | [] -> None
  | (_, col) :: rest ->
    Some (List.fold_left (fun (lo, hi) (_, c) -> (min lo c, max hi c)) (col, col) rest)

let half_perimeter t net_id =
  match net_channel_span t net_id, net_col_span t net_id with
  | Some (clo, chi), Some (xlo, xhi) -> chi - clo + (xhi - xlo)
  | _, _ -> 0

let random_slot t rng =
  decode t.arch (Spr_util.Rng.int rng (Spr_arch.Arch.n_slots t.arch))

let random_occupied_slot t rng =
  let c = Spr_util.Rng.int rng (Array.length t.slot_of_cell) in
  decode t.arch t.slot_of_cell.(c)

let check t =
  let n_slots = Spr_arch.Arch.n_slots t.arch in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  Array.iteri
    (fun c e ->
      if e < 0 || e >= n_slots then fail "cell %d on invalid slot %d" c e
      else if t.cell_at_slot.(e) <> c then fail "slot map inconsistent for cell %d" c
      else begin
        let s = decode t.arch e in
        if not (legal_at t ~cell:c s) then
          fail "cell %d (%s) illegally placed at (%d,%d)" c
            (Spr_netlist.Cell_kind.to_string
               (Spr_netlist.Netlist.cell t.nl c).Spr_netlist.Netlist.kind)
            s.row s.col
      end)
    t.slot_of_cell;
  Array.iteri
    (fun e c -> if c <> -1 && t.slot_of_cell.(c) <> e then fail "slot %d points to wrong cell" e)
    t.cell_at_slot;
  match !error with Some e -> Error e | None -> Ok ()
