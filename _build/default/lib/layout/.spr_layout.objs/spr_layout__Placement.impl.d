lib/layout/placement.ml: Array List Printf Spr_arch Spr_netlist Spr_util
