lib/layout/placement.mli: Spr_arch Spr_netlist Spr_util
