(** Disjoint-set forest with path compression and union by rank.

    Used by the netlist validator to check connectivity properties and by
    tests to verify that routed nets form a single electrically connected
    component. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct sets. *)
