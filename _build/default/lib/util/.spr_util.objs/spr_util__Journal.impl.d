lib/util/journal.ml: List
