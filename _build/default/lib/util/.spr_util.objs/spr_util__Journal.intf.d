lib/util/journal.mli:
