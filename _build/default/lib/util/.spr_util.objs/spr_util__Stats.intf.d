lib/util/stats.mli:
