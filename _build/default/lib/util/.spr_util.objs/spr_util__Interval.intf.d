lib/util/interval.mli:
