lib/util/interval.ml: Printf
