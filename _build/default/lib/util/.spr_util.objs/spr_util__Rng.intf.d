lib/util/rng.mli:
