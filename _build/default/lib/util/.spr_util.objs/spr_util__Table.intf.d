lib/util/table.mli:
