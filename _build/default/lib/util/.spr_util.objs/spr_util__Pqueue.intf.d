lib/util/pqueue.mli:
