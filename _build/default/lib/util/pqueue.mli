(** Mutable binary min-heap keyed by integer priorities.

    Used by the incremental timing analyzer to process cells in level
    order, and by routers to order rip-up queues. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> int -> 'a -> unit
(** [add q priority v] inserts [v] with [priority]; smaller priorities pop
    first. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest priority, or [None] when
    empty. Ties pop in unspecified order. *)

val clear : 'a t -> unit
