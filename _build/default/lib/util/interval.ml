type t = { lo : int; hi : int }

let make lo hi =
  assert (lo <= hi);
  { lo; hi }

let point x = { lo = x; hi = x }

let length t = t.hi - t.lo + 1

let contains t x = t.lo <= x && x <= t.hi

let covers a b = a.lo <= b.lo && b.hi <= a.hi

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let adjacent a b = a.hi + 1 = b.lo || b.hi + 1 = a.lo

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let expand t n = { lo = t.lo - n; hi = t.hi + n }

let clamp t ~lo ~hi =
  let lo' = max t.lo lo and hi' = min t.hi hi in
  assert (lo' <= hi');
  { lo = lo'; hi = hi' }

let to_string t = Printf.sprintf "[%d,%d]" t.lo t.hi
