type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0; vals = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t v =
  let cap = Array.length t.keys in
  if t.size >= cap then begin
    let keys = Array.make (cap * 2) 0 in
    Array.blit t.keys 0 keys 0 t.size;
    t.keys <- keys;
    let vals = Array.make (cap * 2) v in
    Array.blit t.vals 0 vals 0 t.size;
    t.vals <- vals
  end;
  if Array.length t.vals = 0 then t.vals <- Array.make (Array.length t.keys) v

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(parent) > t.keys.(i) then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.size then begin
    let right = left + 1 in
    let best = if right < t.size && t.keys.(right) < t.keys.(left) then right else left in
    if t.keys.(best) < t.keys.(i) then begin
      swap t best i;
      sift_down t best
    end
  end

let add t priority v =
  grow t v;
  t.keys.(t.size) <- priority;
  t.vals.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    Some (k, v)
  end

let clear t = t.size <- 0
