(** Closed integer intervals [\[lo, hi\]].

    The fabric model uses intervals for horizontal segment column spans and
    vertical segment channel spans. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]; requires [lo <= hi]. *)

val point : int -> t

val length : t -> int
(** Number of integer positions covered: [hi - lo + 1]. *)

val contains : t -> int -> bool

val covers : t -> t -> bool
(** [covers a b] is true when [b] lies entirely within [a]. *)

val overlaps : t -> t -> bool

val adjacent : t -> t -> bool
(** True when the intervals abut without overlapping ([a.hi + 1 = b.lo] or
    symmetric). *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val expand : t -> int -> t
(** [expand t n] grows each side by [n] (clamped below at nothing). *)

val clamp : t -> lo:int -> hi:int -> t
(** Intersect with [\[lo, hi\]]; requires a non-empty intersection. *)

val to_string : t -> string
