type align = Left | Right

let render ?(align = []) ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let note_row r = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) r in
  List.iter note_row all;
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Left in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align_of i with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line r =
    let cells = List.mapi pad r in
    String.concat "  " cells
  in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  flush stdout
