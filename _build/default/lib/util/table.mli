(** Minimal fixed-width ASCII table rendering for experiment reports. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out the header and rows in aligned columns
    separated by two spaces, with a dashed rule under the header. [align]
    gives per-column alignment (default all [Left]; missing entries default
    to [Left]). *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string] and a flush. *)
