(** Online mean / variance accumulator (Welford) plus simple descriptive
    helpers.

    The adaptive annealing schedule derives its starting temperature and
    temperature decrements from cost statistics collected with this
    module. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val reset : t -> unit

val mean_of : float list -> float
