type t = { mutable undos : (unit -> unit) list; mutable n : int }

let create () = { undos = []; n = 0 }

let record t undo =
  t.undos <- undo :: t.undos;
  t.n <- t.n + 1

let depth t = t.n

let mark t = t.n

let rollback t =
  List.iter (fun undo -> undo ()) t.undos;
  t.undos <- [];
  t.n <- 0

let rollback_to t m =
  (* Undo the (n - m) most recent entries. *)
  let rec loop undos n =
    if n > m then
      match undos with
      | [] -> assert false
      | undo :: rest ->
        undo ();
        loop rest (n - 1)
    else undos
  in
  t.undos <- loop t.undos t.n;
  t.n <- m

let commit t =
  t.undos <- [];
  t.n <- 0
