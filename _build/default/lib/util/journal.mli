(** Undo journal for transactional state mutation.

    The annealing loop evaluates each move by actually applying it —
    placement change, net rip-up, incremental reroute, incremental timing
    update — and rolls everything back if the move is rejected. Every
    mutating subsystem records an inverse action here before mutating.

    Rollback applies the recorded inverses in reverse order of
    recording. *)

type t

val create : unit -> t

val record : t -> (unit -> unit) -> unit
(** [record j undo] pushes an inverse action. *)

val depth : t -> int
(** Number of pending inverse actions. *)

val mark : t -> int
(** Position marker for nested rollback; pair with {!rollback_to}. *)

val rollback : t -> unit
(** Undo everything recorded since creation or the last {!commit}. *)

val rollback_to : t -> int -> unit
(** Undo entries recorded after the given {!mark}. *)

val commit : t -> unit
(** Forget all recorded inverses; the mutations become permanent. *)
