lib/anneal/engine.mli: Spr_util
