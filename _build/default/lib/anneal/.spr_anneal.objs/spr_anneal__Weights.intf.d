lib/anneal/weights.mli:
