lib/anneal/weights.ml: Spr_util
