lib/anneal/engine.ml: Float Spr_util
