(** Generic simulated-annealing engine with an adaptive cooling schedule
    in the style of Huang, Romeo and Sangiovanni-Vincentelli (ICCAD'86),
    the schedule the paper adopts (§3.2).

    The engine is transaction-oriented: the client's [propose] applies a
    tentative move to its own state, the engine measures the cost change
    and either asks the client to keep it ([accept]) or to roll it back
    ([reject]).

    Schedule: the starting temperature is derived from a warmup walk that
    accepts everything — [T0 = avg uphill delta / -ln(chi0)] so the first
    real temperature accepts a fraction [chi0] of uphill moves. Each
    temperature runs a fixed move count; the decrement adapts to the cost
    landscape, [alpha = exp(-lambda * T / sigma_T)] clamped to
    [\[min_alpha, max_alpha\]], cooling fast over rough terrain and slowly
    through phase transitions. Annealing stops when the acceptance ratio
    stays below [stop_acceptance] for [stop_patience] consecutive
    temperatures, then a zero-temperature quench keeps only improving
    moves. *)

type config = {
  moves_per_temp : int;
  warmup_moves : int;
  initial_acceptance : float;  (** chi0, e.g. 0.9. *)
  lambda : float;  (** Cooling aggressiveness, e.g. 0.7. *)
  min_alpha : float;
  max_alpha : float;
  stop_acceptance : float;
  stop_cost_tolerance : float;
      (** Relative mean-cost change under which a temperature counts as
          stagnant (only once acceptance has fallen below 0.5). *)
  stop_patience : int;
  max_temperatures : int;
  quench_temperatures : int;
}

val default_config : n:int -> config
(** Sized for a problem with [n] movable objects: [moves_per_temp] =
    [8 * n] bounded to [\[400, 30000\]]. *)

type temp_stats = {
  temp_index : int;
  temperature : float;
  attempted : int;
  accepted : int;
  mean_cost : float;
  sigma_cost : float;
}

type report = {
  initial_cost : float;
  final_cost : float;
  n_temperatures : int;
  n_moves : int;
  n_accepted : int;
}

val run :
  ?config:config ->
  ?on_temperature:(temp_stats -> unit) ->
  rng:Spr_util.Rng.t ->
  cost:(unit -> float) ->
  propose:(Spr_util.Rng.t -> bool) ->
  accept:(unit -> unit) ->
  reject:(unit -> unit) ->
  n:int ->
  unit ->
  report
(** [propose] returns [false] when it could not form a move (nothing is
    applied in that case); otherwise the tentative move is already
    applied when the engine evaluates [cost]. Exactly one of [accept] or
    [reject] is then called. [on_temperature] fires after every
    temperature including the warmup (index 0) and the quenches. *)
