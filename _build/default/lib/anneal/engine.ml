type config = {
  moves_per_temp : int;
  warmup_moves : int;
  initial_acceptance : float;
  lambda : float;
  min_alpha : float;
  max_alpha : float;
  stop_acceptance : float;
  stop_cost_tolerance : float;
  stop_patience : int;
  max_temperatures : int;
  quench_temperatures : int;
}

let default_config ~n =
  let moves = max 400 (min 30_000 (8 * n)) in
  {
    moves_per_temp = moves;
    warmup_moves = max 200 (moves / 4);
    initial_acceptance = 0.9;
    lambda = 0.7;
    min_alpha = 0.5;
    max_alpha = 0.95;
    stop_acceptance = 0.03;
    stop_cost_tolerance = 0.0015;
    stop_patience = 3;
    max_temperatures = 150;
    quench_temperatures = 2;
  }

type temp_stats = {
  temp_index : int;
  temperature : float;
  attempted : int;
  accepted : int;
  mean_cost : float;
  sigma_cost : float;
}

type report = {
  initial_cost : float;
  final_cost : float;
  n_temperatures : int;
  n_moves : int;
  n_accepted : int;
}

let run ?config ?(on_temperature = fun _ -> ()) ~rng ~cost ~propose ~accept ~reject ~n () =
  let cfg = match config with Some c -> c | None -> default_config ~n in
  let initial_cost = cost () in
  let total_moves = ref 0 and total_accepted = ref 0 in
  (* One batch of moves at a given temperature; [infinity] accepts all
     (warmup), [0.] accepts only improvement (quench). *)
  let run_batch ~temperature ~moves ~uphill_stats =
    let samples = Spr_util.Stats.create () in
    let attempted = ref 0 and accepted_n = ref 0 in
    for _ = 1 to moves do
      let before = cost () in
      if propose rng then begin
        incr attempted;
        let after = cost () in
        let delta = after -. before in
        (match uphill_stats with
        | Some s when delta > 0.0 -> Spr_util.Stats.add s delta
        | Some _ | None -> ());
        let take =
          if delta <= 0.0 then true
          else if temperature <= 0.0 then false
          else if temperature = infinity then true
          else Spr_util.Rng.float rng 1.0 < exp (-.delta /. temperature)
        in
        if take then begin
          accept ();
          incr accepted_n;
          Spr_util.Stats.add samples after
        end
        else begin
          reject ();
          Spr_util.Stats.add samples before
        end
      end
    done;
    total_moves := !total_moves + !attempted;
    total_accepted := !total_accepted + !accepted_n;
    (!attempted, !accepted_n, samples)
  in
  (* Warmup: random walk to measure the uphill-delta scale. *)
  let uphill = Spr_util.Stats.create () in
  let w_att, w_acc, w_samples =
    run_batch ~temperature:infinity ~moves:cfg.warmup_moves ~uphill_stats:(Some uphill)
  in
  on_temperature
    {
      temp_index = 0;
      temperature = infinity;
      attempted = w_att;
      accepted = w_acc;
      mean_cost = Spr_util.Stats.mean w_samples;
      sigma_cost = Spr_util.Stats.stddev w_samples;
    };
  let avg_uphill =
    if Spr_util.Stats.count uphill > 0 then Spr_util.Stats.mean uphill
    else Float.max 1e-9 (initial_cost *. 0.05)
  in
  let t0 = -.avg_uphill /. log cfg.initial_acceptance in
  (* Main cooling loop. A temperature is stagnant when almost nothing is
     accepted, or when (already in the low-acceptance regime) the mean
     cost has stopped moving. *)
  let rec cool temp index stagnant prev_mean =
    if index > cfg.max_temperatures then index - 1
    else begin
      let att, acc, samples =
        run_batch ~temperature:temp ~moves:cfg.moves_per_temp ~uphill_stats:None
      in
      let mean = Spr_util.Stats.mean samples in
      on_temperature
        {
          temp_index = index;
          temperature = temp;
          attempted = att;
          accepted = acc;
          mean_cost = mean;
          sigma_cost = Spr_util.Stats.stddev samples;
        };
      let ratio = if att = 0 then 0.0 else float_of_int acc /. float_of_int att in
      let cost_flat =
        ratio < 0.5 && prev_mean > 0.0
        && Float.abs (mean -. prev_mean) /. Float.max 1e-12 prev_mean < cfg.stop_cost_tolerance
      in
      let stagnant = if ratio < cfg.stop_acceptance || cost_flat then stagnant + 1 else 0 in
      if stagnant >= cfg.stop_patience then index
      else begin
        let sigma = Spr_util.Stats.stddev samples in
        let alpha =
          if sigma <= 0.0 then cfg.min_alpha
          else Float.min cfg.max_alpha (Float.max cfg.min_alpha (exp (-.cfg.lambda *. temp /. sigma)))
        in
        cool (temp *. alpha) (index + 1) stagnant mean
      end
    end
  in
  let last_index = cool t0 1 0 0.0 in
  (* Greedy quench. *)
  for q = 1 to cfg.quench_temperatures do
    let att, acc, samples =
      run_batch ~temperature:0.0 ~moves:cfg.moves_per_temp ~uphill_stats:None
    in
    on_temperature
      {
        temp_index = last_index + q;
        temperature = 0.0;
        attempted = att;
        accepted = acc;
        mean_cost = Spr_util.Stats.mean samples;
        sigma_cost = Spr_util.Stats.stddev samples;
      }
  done;
  {
    initial_cost;
    final_cost = cost ();
    n_temperatures = last_index + cfg.quench_temperatures;
    n_moves = !total_moves;
    n_accepted = !total_accepted;
  }
