(** Channel track segmentation.

    Each horizontal track of a channel is cut into contiguous
    {!Spr_util.Interval.t} column segments; adjacent segments on the same
    track can be joined by programming the horizontal antifuse between
    them (paper §1). Short segments help wirability, long segments help
    delay; real parts mix both, with boundaries staggered between tracks
    so that cuts do not align. *)

type scheme =
  | Full  (** One segment spanning the whole channel. *)
  | Uniform of int  (** All segments the given length, staggered per track. *)
  | Actel_like
      (** Track mix modeled on ACT-family channels: every fourth track is
          full-length, every fourth is half-length, the rest are short
          (length 5) with staggered cuts. *)
  | Geometric
      (** Segment lengths cycle through 2, 4, 8, 16 with per-track
          rotation. *)

val scheme_to_string : scheme -> string

val scheme_of_string : string -> scheme option
(** Recognizes ["full"], ["uniform:<n>"], ["actel"], ["geometric"]. *)

val track : scheme -> cols:int -> channel:int -> track:int -> Spr_util.Interval.t array
(** Segments of one track, in increasing column order; they exactly
    partition [\[0, cols-1\]]. [channel] and [track] drive the stagger. *)

val average_segment_length : scheme -> cols:int -> tracks:int -> float
(** Mean segment length over a representative channel; the pre-route
    delay estimator uses this. *)
