type scheme =
  | Full
  | Uniform of int
  | Actel_like
  | Geometric

let scheme_to_string = function
  | Full -> "full"
  | Uniform n -> Printf.sprintf "uniform:%d" n
  | Actel_like -> "actel"
  | Geometric -> "geometric"

let scheme_of_string s =
  match s with
  | "full" -> Some Full
  | "actel" -> Some Actel_like
  | "geometric" -> Some Geometric
  | _ ->
    if String.length s > 8 && String.sub s 0 8 = "uniform:" then
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some n when n > 0 -> Some (Uniform n)
      | Some _ | None -> None
    else None

(* Partition [0, cols-1] into segments whose lengths cycle through
   [lens], with the first segment shortened by [offset] to stagger cut
   positions between tracks. *)
let partition ~cols ~offset lens =
  assert (cols > 0);
  assert (Array.length lens > 0);
  let segs = ref [] in
  let pos = ref 0 in
  let idx = ref 0 in
  let first = lens.(0) - (offset mod lens.(0)) in
  let next_len () =
    let len = if !pos = 0 then first else lens.(!idx mod Array.length lens) in
    incr idx;
    max 1 len
  in
  while !pos < cols do
    let len = min (next_len ()) (cols - !pos) in
    segs := Spr_util.Interval.make !pos (!pos + len - 1) :: !segs;
    pos := !pos + len
  done;
  Array.of_list (List.rev !segs)

let track scheme ~cols ~channel ~track =
  match scheme with
  | Full -> [| Spr_util.Interval.make 0 (cols - 1) |]
  | Uniform n ->
    let n = max 1 (min n cols) in
    partition ~cols ~offset:(((track * 3) + channel) mod n) [| n |]
  | Actel_like -> (
    match track mod 4 with
    | 0 -> [| Spr_util.Interval.make 0 (cols - 1) |]
    | 1 -> partition ~cols ~offset:((channel * 5) mod cols) [| max 2 (cols / 2) |]
    | 2 | 3 | _ -> partition ~cols ~offset:(((track * 2) + (channel * 3)) mod 5) [| 5 |])
  | Geometric ->
    let rotation = track mod 4 in
    let base = [| 2; 4; 8; 16 |] in
    let lens = Array.init 4 (fun i -> base.((i + rotation) mod 4)) in
    partition ~cols ~offset:(channel mod 3) lens

let average_segment_length scheme ~cols ~tracks =
  let total_len = ref 0 and total_segs = ref 0 in
  for t = 0 to max 0 (tracks - 1) do
    let segs = track scheme ~cols ~channel:0 ~track:t in
    Array.iter (fun s -> total_len := !total_len + Spr_util.Interval.length s) segs;
    total_segs := !total_segs + Array.length segs
  done;
  if !total_segs = 0 then float_of_int cols
  else float_of_int !total_len /. float_of_int !total_segs
