type vscheme =
  | V_full
  | V_span of int

type t = {
  rows : int;
  cols : int;
  tracks : int;
  vtracks : int;
  n_channels : int;
  hscheme : Segmentation.scheme;
  hsegs : Spr_util.Interval.t array array array;
  vsegs : Spr_util.Interval.t array array array;
}

(* Stagger vertical cut positions with column and track so that spine
   failures at one column can be recovered at a neighbour. *)
let vertical_track ~n_channels ~col ~vtrack = function
  | V_full -> [| Spr_util.Interval.make 0 (n_channels - 1) |]
  | V_span span ->
    let span = max 1 (min span n_channels) in
    let offset = (col + (vtrack * 2)) mod span in
    let segs = ref [] in
    let pos = ref 0 in
    let first = span - offset in
    while !pos < n_channels do
      let len = if !pos = 0 then first else span in
      let len = min len (n_channels - !pos) in
      segs := Spr_util.Interval.make !pos (!pos + len - 1) :: !segs;
      pos := !pos + len
    done;
    Array.of_list (List.rev !segs)

let default_vschemes ~vtracks ~n_channels =
  let half = max 2 (n_channels / 2) in
  Array.init vtracks (fun v -> if v < (vtracks + 1) / 2 then V_full else V_span half)

let create ~rows ~cols ~tracks ?(hscheme = Segmentation.Actel_like) ?(vtracks = 5) ?vschemes ()
    =
  if rows < 1 || cols < 2 || tracks < 1 || vtracks < 1 then
    invalid_arg "Arch.create: non-positive dimensions";
  let n_channels = rows + 1 in
  let vschemes =
    match vschemes with
    | Some v ->
      if Array.length v <> vtracks then
        invalid_arg "Arch.create: vschemes length must equal vtracks";
      v
    | None -> default_vschemes ~vtracks ~n_channels
  in
  let hsegs =
    Array.init n_channels (fun channel ->
        Array.init tracks (fun track -> Segmentation.track hscheme ~cols ~channel ~track))
  in
  let vsegs =
    Array.init cols (fun col ->
        Array.init vtracks (fun vtrack ->
            vertical_track ~n_channels ~col ~vtrack vschemes.(vtrack)))
  in
  { rows; cols; tracks; vtracks; n_channels; hscheme; hsegs; vsegs }

let with_tracks t tracks =
  create ~rows:t.rows ~cols:t.cols ~tracks ~hscheme:t.hscheme ~vtracks:t.vtracks ()

let n_slots t = t.rows * t.cols

let is_perimeter t ~row ~col = row = 0 || row = t.rows - 1 || col = 0 || col = t.cols - 1

let n_perimeter_slots t =
  if t.rows = 1 then t.cols
  else if t.rows = 2 then 2 * t.cols
  else (2 * t.cols) + (2 * (t.rows - 2))

let check_fits t nl =
  let counts = Spr_netlist.Netlist.counts nl in
  let n_cells = Spr_netlist.Netlist.n_cells nl in
  let n_io = counts.Spr_netlist.Netlist.n_input + counts.Spr_netlist.Netlist.n_output in
  if n_cells > n_slots t then
    Error
      (Printf.sprintf "netlist has %d cells but the fabric only %d slots" n_cells (n_slots t))
  else if n_io > n_perimeter_slots t then
    Error
      (Printf.sprintf "netlist has %d I/O pads but the fabric only %d perimeter slots" n_io
         (n_perimeter_slots t))
  else Ok ()

let hsegments t ~channel ~track = t.hsegs.(channel).(track)

let vsegments t ~col ~vtrack = t.vsegs.(col).(vtrack)

(* Segments partition their extent, so covering [span] means locating the
   segment containing [span.lo] and walking right to the one containing
   [span.hi]. *)
let find_cover segs (span : Spr_util.Interval.t) =
  let n = Array.length segs in
  if n = 0 then None
  else if span.Spr_util.Interval.lo < segs.(0).Spr_util.Interval.lo
          || span.Spr_util.Interval.hi > segs.(n - 1).Spr_util.Interval.hi
  then None
  else begin
    (* Binary search for the segment containing span.lo. *)
    let rec search lo hi =
      let mid = (lo + hi) / 2 in
      let s = segs.(mid) in
      if Spr_util.Interval.contains s span.Spr_util.Interval.lo then mid
      else if span.Spr_util.Interval.lo < s.Spr_util.Interval.lo then search lo (mid - 1)
      else search (mid + 1) hi
    in
    let first = search 0 (n - 1) in
    let rec extend i =
      if segs.(i).Spr_util.Interval.hi >= span.Spr_util.Interval.hi then i else extend (i + 1)
    in
    Some (first, extend first)
  end

let avg_hseg_length t =
  Segmentation.average_segment_length t.hscheme ~cols:t.cols ~tracks:t.tracks

(* Taller fabrics have more channels to cross, so feedthrough demand per
   column grows with the row count; real antifuse families scale their
   vertical track budget accordingly. *)
let default_vtracks_for ~rows = max 5 ((rows + 1) / 2)

let size_for ?(aspect = 3.0) ?(utilization = 0.85) ?(tracks = 24) ?hscheme ?vtracks nl =
  let n_cells = Spr_netlist.Netlist.n_cells nl in
  let counts = Spr_netlist.Netlist.counts nl in
  let n_io = counts.Spr_netlist.Netlist.n_input + counts.Spr_netlist.Netlist.n_output in
  let slots = int_of_float (ceil (float_of_int n_cells /. utilization)) in
  let rows = max 2 (int_of_float (Float.round (sqrt (float_of_int slots /. aspect)))) in
  let cols = max 2 (int_of_float (ceil (float_of_int slots /. float_of_int rows))) in
  (* Widen until the perimeter holds the pads. *)
  let rec widen cols =
    let perimeter = if rows = 2 then 2 * cols else (2 * cols) + (2 * (rows - 2)) in
    if perimeter >= n_io then cols else widen (cols + 1)
  in
  let cols = widen cols in
  let vtracks = match vtracks with Some v -> v | None -> default_vtracks_for ~rows in
  create ~rows ~cols ~tracks ?hscheme ~vtracks ()

let pp ppf t =
  Format.fprintf ppf "%dx%d fabric, %d channels x %d tracks (%s), %d vtracks/col" t.rows
    t.cols t.n_channels t.tracks
    (Segmentation.scheme_to_string t.hscheme)
    t.vtracks
