(** Row-based FPGA fabric model.

    [rows] rows of [cols] unit-width logic-module slots. Channel [k] runs
    {e below} row [k]; channel [rows] runs above the top row, so there are
    [rows + 1] channels. Each channel has [tracks] horizontal tracks with
    a {!Segmentation.scheme}. Each column carries [vtracks] vertical
    tracks, segmented over channel spans, used as feedthrough spines by
    the global router. *)

type vscheme =
  | V_full  (** One vertical segment spanning all channels. *)
  | V_span of int  (** Vertical segments each spanning the given number of channels. *)

type t = private {
  rows : int;
  cols : int;
  tracks : int;
  vtracks : int;
  n_channels : int;  (** [rows + 1]. *)
  hscheme : Segmentation.scheme;
  hsegs : Spr_util.Interval.t array array array;
      (** [hsegs.(channel).(track)] partitions columns [\[0, cols-1\]]. *)
  vsegs : Spr_util.Interval.t array array array;
      (** [vsegs.(col).(vtrack)] partitions channels [\[0, rows\]]. *)
}

val create :
  rows:int ->
  cols:int ->
  tracks:int ->
  ?hscheme:Segmentation.scheme ->
  ?vtracks:int ->
  ?vschemes:vscheme array ->
  unit ->
  t
(** Defaults: [hscheme = Actel_like], [vtracks = 5], and a vertical mix
    of full-span tracks (the first half, rounded up) plus half-span
    tracks. [vschemes], when given, must have length [vtracks]. Raises
    [Invalid_argument] on non-positive dimensions. *)

val with_tracks : t -> int -> t
(** Same fabric with a different horizontal track count (used by the
    Table 2 minimum-width search). *)

(** {1 Capacity} *)

val n_slots : t -> int

val is_perimeter : t -> row:int -> col:int -> bool

val n_perimeter_slots : t -> int

val check_fits : t -> Spr_netlist.Netlist.t -> (unit, string) result
(** Capacity check: enough slots for all cells and enough perimeter slots
    for the I/O pads. *)

(** {1 Segment lookup} *)

val hsegments : t -> channel:int -> track:int -> Spr_util.Interval.t array

val vsegments : t -> col:int -> vtrack:int -> Spr_util.Interval.t array

val find_cover : Spr_util.Interval.t array -> Spr_util.Interval.t -> (int * int) option
(** [find_cover segs span] returns the index range [(lo, hi)] of the
    consecutive segments of a partition that together cover [span], or
    [None] when [span] exceeds the partition's extent. *)

val avg_hseg_length : t -> float

(** {1 Sizing} *)

val size_for :
  ?aspect:float ->
  ?utilization:float ->
  ?tracks:int ->
  ?hscheme:Segmentation.scheme ->
  ?vtracks:int ->
  Spr_netlist.Netlist.t ->
  t
(** Pick fabric dimensions for a netlist: total slots =
    [cells / utilization] (default 0.85), [cols / rows ~ aspect]
    (default 3.0, row-based die are wide), widened if needed until the
    perimeter holds all I/O pads. Default [tracks = 24]; when [vtracks]
    is omitted it scales with the row count ([max 5 ((rows+1)/2)]) since
    taller fabrics see more feedthrough demand per column. *)

val pp : Format.formatter -> t -> unit
