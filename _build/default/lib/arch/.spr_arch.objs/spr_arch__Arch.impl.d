lib/arch/arch.ml: Array Float Format List Printf Segmentation Spr_netlist Spr_util
