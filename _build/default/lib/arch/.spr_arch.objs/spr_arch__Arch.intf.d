lib/arch/arch.mli: Format Segmentation Spr_netlist Spr_util
