lib/arch/segmentation.ml: Array List Printf Spr_util String
