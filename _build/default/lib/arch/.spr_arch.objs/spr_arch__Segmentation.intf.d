lib/arch/segmentation.mli: Spr_util
