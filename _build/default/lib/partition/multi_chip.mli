(** Multi-FPGA splitting: materialize a k-way partition as one netlist
    per chip, with each cut net realized as an output pad on the driving
    chip and an input pad on every consuming chip (the inter-chip pin
    demand that partitioners minimize, §2.2).

    Each piece is a complete, valid netlist that can be placed and
    routed independently on its own fabric. *)

type piece = {
  netlist : Spr_netlist.Netlist.t;
  orig_cell : int array;
      (** Per piece-cell id: the original cell id, or [-1] for a pad
          created by the cut. *)
}

type t = {
  pieces : piece array;
  cut_nets : int;  (** Original nets spanning more than one piece. *)
  pads_added : int;  (** Total pad cells created across pieces. *)
}

val split : Spr_netlist.Netlist.t -> parts:int array -> n_parts:int -> t
(** [parts] maps each original cell to its piece ([0 .. n_parts-1]). *)

val bipartition_and_split :
  ?balance:float -> rng:Spr_util.Rng.t -> Spr_netlist.Netlist.t -> t * Fm.result
(** Convenience: FM bipartition then {!split} into two pieces. *)

val kway : ?balance:float -> rng:Spr_util.Rng.t -> k:int -> Spr_netlist.Netlist.t -> int array
(** Recursive FM bisection into [k] parts ([k] a power of two); returns
    the per-cell part assignment. *)
