(** Fiduccia-Mattheyses bipartitioning [20], the workhorse behind the
    multi-FPGA partitioning approaches the paper surveys in §2.2: very
    large circuits must be split across chips before row-based layout,
    with the cut size driving inter-chip pin demand and delay.

    Iterative passes: every cell starts unlocked; the highest-gain
    balanced move is applied and the cell locked; at the end of a pass
    the best prefix of moves is kept. Passes repeat until one fails to
    improve. Gains use the standard FM rules (a net contributes +1 when
    the mover is its last cell on the from-side, -1 when the to-side was
    empty). *)

type result = {
  side : bool array;  (** Per cell id: [false] = side A, [true] = side B. *)
  cut_nets : int;  (** Nets with cells on both sides. *)
  passes : int;
}

val bipartition :
  ?balance:float ->
  ?max_passes:int ->
  rng:Spr_util.Rng.t ->
  Spr_netlist.Netlist.t ->
  result
(** [balance] (default 0.10) allows each side to deviate from half the
    cells by that fraction of the total. [max_passes] defaults to 12.
    The initial partition is a random balanced split drawn from [rng]. *)

val cut_size : Spr_netlist.Netlist.t -> bool array -> int
(** Nets spanning both sides under the given assignment. *)
