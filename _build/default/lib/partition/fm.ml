module Nl = Spr_netlist.Netlist

type result = {
  side : bool array;
  cut_nets : int;
  passes : int;
}

(* Cells touching a net, with duplicates removed (a cell may be both the
   driver and a sink through different pins). *)
let net_cells nl net =
  let n = Nl.net nl net in
  List.sort_uniq compare
    (n.Nl.driver :: Array.to_list (Array.map fst n.Nl.sinks))

let cut_size nl side =
  let cut = ref 0 in
  for net = 0 to Nl.n_nets nl - 1 do
    let cells = net_cells nl net in
    let has_a = List.exists (fun c -> not side.(c)) cells in
    let has_b = List.exists (fun c -> side.(c)) cells in
    if has_a && has_b then incr cut
  done;
  !cut

(* One FM pass over mutable [side]; returns the gain of the best prefix
   (non-negative; 0 means the pass found nothing and [side] is left at
   the starting assignment). *)
let fm_pass nl ~nets_of_cell ~cells_of_net ~balance_lo ~balance_hi side =
  let n = Nl.n_cells nl in
  (* per net: cell count on each side *)
  let count_a = Array.make (Nl.n_nets nl) 0 in
  let count_b = Array.make (Nl.n_nets nl) 0 in
  Array.iteri
    (fun net cells ->
      List.iter (fun c -> if side.(c) then count_b.(net) <- count_b.(net) + 1
                 else count_a.(net) <- count_a.(net) + 1)
        cells)
    cells_of_net;
  let size_b = ref (Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 side) in
  let size_a = ref (n - !size_b) in
  (* FM gain of moving cell c off its current side *)
  let gain = Array.make n 0 in
  let compute_gain c =
    let g = ref 0 in
    List.iter
      (fun net ->
        let from_count = if side.(c) then count_b.(net) else count_a.(net) in
        let to_count = if side.(c) then count_a.(net) else count_b.(net) in
        if from_count = 1 then incr g;
        if to_count = 0 then decr g)
      nets_of_cell.(c);
    gain.(c) <- !g
  in
  for c = 0 to n - 1 do
    compute_gain c
  done;
  (* max-heap via min-Pqueue on negated gains, lazy deletion *)
  let heap = Spr_util.Pqueue.create () in
  let locked = Array.make n false in
  for c = 0 to n - 1 do
    Spr_util.Pqueue.add heap (-gain.(c)) c
  done;
  let balanced_move c =
    (* sizes after moving c *)
    if side.(c) then !size_b - 1 >= balance_lo && !size_a + 1 <= balance_hi
    else !size_a - 1 >= balance_lo && !size_b + 1 <= balance_hi
  in
  let apply_move c =
    let from_b = side.(c) in
    (* update neighbor gains per the standard FM delta rules, done by
       recomputation over the small neighborhood (nets are tiny) *)
    let neighbors = ref [] in
    List.iter
      (fun net ->
        List.iter (fun k -> if k <> c && not locked.(k) then neighbors := k :: !neighbors)
          cells_of_net.(net))
      nets_of_cell.(c);
    side.(c) <- not from_b;
    List.iter
      (fun net ->
        if from_b then begin
          count_b.(net) <- count_b.(net) - 1;
          count_a.(net) <- count_a.(net) + 1
        end
        else begin
          count_a.(net) <- count_a.(net) - 1;
          count_b.(net) <- count_b.(net) + 1
        end)
      nets_of_cell.(c);
    if from_b then begin
      decr size_b;
      incr size_a
    end
    else begin
      decr size_a;
      incr size_b
    end;
    List.iter
      (fun k ->
        compute_gain k;
        Spr_util.Pqueue.add heap (-gain.(k)) k)
      (List.sort_uniq compare !neighbors)
  in
  (* run the pass, recording the move sequence *)
  let moves = ref [] in
  let cum = ref 0 and best = ref 0 and best_idx = ref 0 and idx = ref 0 in
  let rec step () =
    match Spr_util.Pqueue.pop_min heap with
    | None -> ()
    | Some (neg_g, c) ->
      if locked.(c) || -neg_g <> gain.(c) then step ()  (* stale entry *)
      else if not (balanced_move c) then begin
        (* temporarily skip: push back with a worse key so another cell
           can be tried; to avoid infinite loops, lock it instead *)
        locked.(c) <- true;
        step ()
      end
      else begin
        locked.(c) <- true;
        cum := !cum + gain.(c);
        apply_move c;
        moves := c :: !moves;
        incr idx;
        if !cum > !best then begin
          best := !cum;
          best_idx := !idx
        end;
        step ()
      end
  in
  step ();
  (* revert moves after the best prefix *)
  let all_moves = List.rev !moves in
  List.iteri (fun i c -> if i >= !best_idx then side.(c) <- not side.(c)) all_moves;
  !best

let bipartition ?(balance = 0.10) ?(max_passes = 12) ~rng nl =
  let n = Nl.n_cells nl in
  if n < 2 then { side = Array.make n false; cut_nets = 0; passes = 0 }
  else begin
    let cells_of_net = Array.init (Nl.n_nets nl) (fun net -> net_cells nl net) in
    let nets_of_cell = Array.init n (fun c -> Nl.nets_of_cell nl c) in
    let half = n / 2 in
    let slack = int_of_float (balance *. float_of_int n) in
    let balance_lo = max 1 (half - slack) and balance_hi = min (n - 1) (n - half + slack) in
    (* random balanced start *)
    let order = Array.init n Fun.id in
    Spr_util.Rng.shuffle_in_place rng order;
    let side = Array.make n false in
    for i = 0 to half - 1 do
      side.(order.(i)) <- true
    done;
    let passes = ref 0 in
    let improved = ref true in
    while !improved && !passes < max_passes do
      incr passes;
      let g = fm_pass nl ~nets_of_cell ~cells_of_net ~balance_lo ~balance_hi side in
      improved := g > 0
    done;
    { side; cut_nets = cut_size nl side; passes = !passes }
  end
