module Nl = Spr_netlist.Netlist
module Ck = Spr_netlist.Cell_kind

type piece = {
  netlist : Nl.t;
  orig_cell : int array;
}

type t = {
  pieces : piece array;
  cut_nets : int;
  pads_added : int;
}

let split nl ~parts ~n_parts =
  assert (Array.length parts = Nl.n_cells nl);
  Array.iter (fun p -> assert (p >= 0 && p < n_parts)) parts;
  let builders = Array.init n_parts (fun _ -> Nl.Builder.create ()) in
  (* original cell -> local id in its piece *)
  let local_id = Array.make (Nl.n_cells nl) (-1) in
  let orig_rev = Array.make n_parts [] in
  let pads_added = ref 0 in
  Array.iter
    (fun cell ->
      let p = parts.(cell.Nl.id) in
      let id =
        Nl.Builder.add_cell builders.(p) ~name:cell.Nl.cell_name ~kind:cell.Nl.kind
          ~n_inputs:cell.Nl.n_inputs
      in
      local_id.(cell.Nl.id) <- id;
      orig_rev.(p) <- cell.Nl.id :: orig_rev.(p))
    (Nl.cells nl);
  let add_pad p name kind n_inputs =
    incr pads_added;
    let id = Nl.Builder.add_cell builders.(p) ~name ~kind ~n_inputs in
    orig_rev.(p) <- -1 :: orig_rev.(p);
    id
  in
  let cut_nets = ref 0 in
  Array.iter
    (fun net ->
      let dp = parts.(net.Nl.driver) in
      (* sinks grouped by part *)
      let by_part = Array.make n_parts [] in
      Array.iter
        (fun (c, pin) -> by_part.(parts.(c)) <- (c, pin) :: by_part.(parts.(c)))
        net.Nl.sinks;
      let crosses = ref false in
      for q = 0 to n_parts - 1 do
        if q <> dp && by_part.(q) <> [] then crosses := true
      done;
      if !crosses then incr cut_nets;
      (* the driving piece: local net with local sinks, plus an output
         pad when the net leaves the chip *)
      let dnet = Nl.Builder.add_net builders.(dp) ~name:net.Nl.net_name ~driver:local_id.(net.Nl.driver) in
      List.iter
        (fun (c, pin) -> Nl.Builder.add_sink builders.(dp) ~net:dnet ~cell:local_id.(c) ~pin)
        (List.rev by_part.(dp));
      if !crosses then begin
        let pad = add_pad dp (net.Nl.net_name ^ "_xout") Ck.Output 1 in
        Nl.Builder.add_sink builders.(dp) ~net:dnet ~cell:pad ~pin:0
      end;
      (* consuming pieces: an input pad drives the local sinks *)
      for q = 0 to n_parts - 1 do
        if q <> dp && by_part.(q) <> [] then begin
          let pad = add_pad q (net.Nl.net_name ^ "_xin") Ck.Input 0 in
          let qnet = Nl.Builder.add_net builders.(q) ~name:(net.Nl.net_name ^ "_x") ~driver:pad in
          List.iter
            (fun (c, pin) -> Nl.Builder.add_sink builders.(q) ~net:qnet ~cell:local_id.(c) ~pin)
            (List.rev by_part.(q))
        end
      done)
    (Nl.nets nl);
  let pieces =
    Array.init n_parts (fun p ->
        {
          netlist = Nl.Builder.finish_exn builders.(p);
          orig_cell = Array.of_list (List.rev orig_rev.(p));
        })
  in
  { pieces; cut_nets = !cut_nets; pads_added = !pads_added }

let bipartition_and_split ?balance ~rng nl =
  let fm = Fm.bipartition ?balance ~rng nl in
  let parts = Array.map (fun b -> if b then 1 else 0) fm.Fm.side in
  (split nl ~parts ~n_parts:2, fm)

let rec kway ?balance ~rng ~k nl =
  let n = Nl.n_cells nl in
  if k <= 1 then Array.make n 0
  else begin
    let fm = Fm.bipartition ?balance ~rng nl in
    if k = 2 then Array.map (fun b -> if b then 1 else 0) fm.Fm.side
    else begin
      (* recurse on each induced piece; cut pads inside pieces are
         ignored when mapping the assignment back *)
      let parts = Array.map (fun b -> if b then 1 else 0) fm.Fm.side in
      let pieces = split nl ~parts ~n_parts:2 in
      let result = Array.make n 0 in
      let half = k / 2 in
      Array.iteri
        (fun p piece ->
          let sub = kway ?balance ~rng ~k:half piece.netlist in
          Array.iteri
            (fun local orig ->
              if orig >= 0 then result.(orig) <- (p * half) + sub.(local))
            piece.orig_cell)
        pieces.pieces;
      result
    end
  end
