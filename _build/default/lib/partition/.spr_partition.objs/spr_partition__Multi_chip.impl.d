lib/partition/multi_chip.ml: Array Fm List Spr_netlist
