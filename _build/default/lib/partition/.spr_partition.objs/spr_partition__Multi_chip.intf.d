lib/partition/multi_chip.mli: Fm Spr_netlist Spr_util
