lib/partition/fm.ml: Array Fun List Spr_netlist Spr_util
