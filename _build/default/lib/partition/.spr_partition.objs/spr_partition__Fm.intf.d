lib/partition/fm.mli: Spr_netlist Spr_util
