module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Ck = Spr_netlist.Cell_kind
module Gen = Spr_netlist.Generator
module Rng = Spr_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let make_place ?(n_cells = 80) ?(seed = 5) ?(tracks = 12) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let rng = Rng.create (seed + 1) in
  (P.create_exn arch nl ~rng, nl, arch)

let check_ok place label =
  match P.check place with Ok () -> () | Error e -> Alcotest.failf "%s: %s" label e

let test_create_legal () =
  let place, nl, arch = make_place () in
  check_ok place "fresh placement";
  (* every I/O pad on the perimeter *)
  Array.iter
    (fun c ->
      if Ck.is_io c.Nl.kind then begin
        let s = P.slot_of place c.Nl.id in
        Alcotest.(check bool) "pad on perimeter" true
          (Arch.is_perimeter arch ~row:s.P.row ~col:s.P.col)
      end)
    (Nl.cells nl)

let test_create_fails_when_too_small () =
  let nl = Gen.generate (Gen.default ~n_cells:100) ~seed:1 in
  let tiny = Arch.create ~rows:2 ~cols:4 ~tracks:4 () in
  match P.create tiny nl ~rng:(Rng.create 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should not fit"

let test_bijection () =
  let place, nl, arch = make_place () in
  (* each occupied slot points back at its cell *)
  for c = 0 to Nl.n_cells nl - 1 do
    let s = P.slot_of place c in
    Alcotest.(check (option int)) "slot points back" (Some c) (P.cell_at place s)
  done;
  (* count occupied slots = n_cells *)
  let occupied = ref 0 in
  for row = 0 to arch.Arch.rows - 1 do
    for col = 0 to arch.Arch.cols - 1 do
      if P.cell_at place { P.row; col } <> None then incr occupied
    done
  done;
  Alcotest.(check int) "occupancy" (Nl.n_cells nl) !occupied

let test_swap_involutive =
  QCheck.Test.make ~name:"swap twice restores the placement" ~count:100
    QCheck.(pair small_int small_int)
    (fun (seed, move_seed) ->
      let place, nl, _ = make_place ~seed:(seed mod 17) () in
      let rng = Rng.create move_seed in
      let before = Array.init (Nl.n_cells nl) (fun c -> P.slot_of place c) in
      let a = P.random_occupied_slot place rng in
      let b = P.random_slot place rng in
      P.swap_slots place a b;
      P.swap_slots place a b;
      Array.for_all2 ( = ) before (Array.init (Nl.n_cells nl) (fun c -> P.slot_of place c)))

let test_random_swaps_keep_invariants =
  QCheck.Test.make ~name:"legal random swaps keep placement valid" ~count:50 QCheck.small_int
    (fun seed ->
      let place, _, _ = make_place ~seed:(seed mod 13) () in
      let rng = Rng.create (seed + 100) in
      for _ = 1 to 200 do
        let a = P.random_occupied_slot place rng in
        let b = P.random_slot place rng in
        if P.swap_legal place a b then P.swap_slots place a b
      done;
      match P.check place with Ok () -> true | Error _ -> false)

let test_swap_legal_io () =
  let place, nl, arch = make_place () in
  (* moving a pad to an interior slot must be illegal *)
  let pad =
    Array.to_list (Nl.cells nl)
    |> List.find (fun c -> Ck.is_io c.Nl.kind)
  in
  let interior = { P.row = arch.Arch.rows / 2; col = arch.Arch.cols / 2 } in
  Alcotest.(check bool) "interior slot not perimeter" false
    (Arch.is_perimeter arch ~row:interior.P.row ~col:interior.P.col);
  Alcotest.(check bool) "pad cannot move inside" false
    (P.swap_legal place (P.slot_of place pad.Nl.id) interior)

let test_pinmap_assignment () =
  let place, nl, _ = make_place () in
  let cell = 0 in
  Alcotest.(check int) "default pinmap 0" 0 (P.pinmap_index place cell);
  let size = P.palette_size place cell in
  Alcotest.(check bool) "palette nonempty" true (size >= 1);
  if size > 1 then begin
    P.set_pinmap place ~cell ~index:1;
    Alcotest.(check int) "pinmap set" 1 (P.pinmap_index place cell)
  end;
  ignore nl

let test_pin_channel_sides () =
  let place, nl, _ = make_place () in
  (* find a cell with at least 2 pins so both sides appear in some
     palette entry; verify pin_channel is row or row+1 *)
  for c = 0 to Nl.n_cells nl - 1 do
    let s = P.slot_of place c in
    for pin = 0 to Nl.n_pins nl c - 1 do
      let ch = P.pin_channel place ~cell:c ~pin in
      Alcotest.(check bool) "channel adjacent to row" true (ch = s.P.row || ch = s.P.row + 1);
      Alcotest.(check int) "pin col = cell col" s.P.col (P.pin_col place ~cell:c ~pin)
    done
  done

let test_pinmap_flips_channel () =
  let place, _, _ = make_place () in
  let cell = 0 in
  if P.palette_size place cell >= 2 then begin
    let s = P.slot_of place cell in
    P.set_pinmap place ~cell ~index:0;
    let ch0 = P.pin_channel place ~cell ~pin:0 in
    P.set_pinmap place ~cell ~index:1;
    let ch1 = P.pin_channel place ~cell ~pin:0 in
    (* palette entry 0 is all-bottom, entry 1 all-top *)
    Alcotest.(check int) "bottom = row" s.P.row ch0;
    Alcotest.(check int) "top = row+1" (s.P.row + 1) ch1
  end

let test_net_spans () =
  let place, nl, _ = make_place () in
  for net = 0 to Nl.n_nets nl - 1 do
    let pins = P.net_pin_positions place net in
    let expected_n =
      1 + Array.length (Nl.net nl net).Nl.sinks
    in
    Alcotest.(check int) "pin count = 1 + sinks" expected_n (List.length pins);
    match P.net_channel_span place net, P.net_col_span place net with
    | Some (clo, chi), Some (xlo, xhi) ->
      List.iter
        (fun (ch, col) ->
          Alcotest.(check bool) "pin inside channel span" true (clo <= ch && ch <= chi);
          Alcotest.(check bool) "pin inside col span" true (xlo <= col && col <= xhi))
        pins;
      Alcotest.(check int) "half perimeter" ((chi - clo) + (xhi - xlo)) (P.half_perimeter place net)
    | _, _ -> Alcotest.fail "net with pins lacks spans"
  done

let test_random_occupied () =
  let place, _, _ = make_place () in
  let rng = Rng.create 123 in
  for _ = 1 to 100 do
    let s = P.random_occupied_slot place rng in
    Alcotest.(check bool) "occupied" true (P.cell_at place s <> None)
  done

let () =
  Alcotest.run "spr_layout"
    [
      ( "placement",
        [
          Alcotest.test_case "create is legal" `Quick test_create_legal;
          Alcotest.test_case "create fails when too small" `Quick test_create_fails_when_too_small;
          Alcotest.test_case "bijection" `Quick test_bijection;
          Alcotest.test_case "swap legality for pads" `Quick test_swap_legal_io;
          Alcotest.test_case "random occupied slot" `Quick test_random_occupied;
          qtest test_swap_involutive;
          qtest test_random_swaps_keep_invariants;
        ] );
      ( "pins",
        [
          Alcotest.test_case "pinmap assignment" `Quick test_pinmap_assignment;
          Alcotest.test_case "pin channels adjacent" `Quick test_pin_channel_sides;
          Alcotest.test_case "pinmap flips channel" `Quick test_pinmap_flips_channel;
          Alcotest.test_case "net spans" `Quick test_net_spans;
        ] );
    ]
