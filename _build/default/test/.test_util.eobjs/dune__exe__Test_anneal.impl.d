test/test_anneal.ml: Alcotest Array Float Fun List QCheck QCheck_alcotest Spr_anneal Spr_util
