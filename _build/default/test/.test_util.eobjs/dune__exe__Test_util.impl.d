test/test_util.ml: Alcotest Array Float Fun List QCheck QCheck_alcotest Spr_util String
