test/test_partition.ml: Alcotest Array Fun Printf QCheck QCheck_alcotest Spr_arch Spr_layout Spr_netlist Spr_partition Spr_route Spr_util
