test/test_checkpoint.ml: Alcotest Filename Fun List QCheck QCheck_alcotest Spr_arch Spr_core Spr_layout Spr_netlist Spr_route Spr_timing Spr_util String Sys
