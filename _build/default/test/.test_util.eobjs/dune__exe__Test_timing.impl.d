test/test_timing.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Spr_arch Spr_layout Spr_netlist Spr_route Spr_timing Spr_util String
