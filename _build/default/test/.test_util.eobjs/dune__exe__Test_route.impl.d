test/test_route.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Spr_arch Spr_layout Spr_netlist Spr_route Spr_util
