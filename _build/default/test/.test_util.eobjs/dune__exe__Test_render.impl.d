test/test_render.ml: Alcotest Filename List Spr_arch Spr_layout Spr_netlist Spr_render Spr_route Spr_timing Spr_util String Sys
