test/test_layout.ml: Alcotest Array List QCheck QCheck_alcotest Spr_arch Spr_layout Spr_netlist Spr_util
