test/test_arch.ml: Alcotest Array List QCheck QCheck_alcotest Spr_arch Spr_netlist Spr_util String
