test/test_integration.ml: Alcotest Printf Spr_anneal Spr_arch Spr_core Spr_netlist Spr_route Spr_seq Spr_timing
