test/test_netlist.ml: Alcotest Array List QCheck QCheck_alcotest Spr_netlist String
