test/test_seq.ml: Alcotest Spr_anneal Spr_arch Spr_layout Spr_netlist Spr_route Spr_seq Spr_util
