test/test_core.ml: Alcotest Float List Spr_anneal Spr_arch Spr_core Spr_layout Spr_netlist Spr_route
