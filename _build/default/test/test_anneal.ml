module Engine = Spr_anneal.Engine
module Weights = Spr_anneal.Weights
module Rng = Spr_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* Toy problem: order an array by random adjacent swaps; cost = number of
   inversions. Annealing should sort it (or nearly). *)
let toy_problem seed n =
  let rng_init = Rng.create seed in
  let arr = Array.init n Fun.id in
  Rng.shuffle_in_place rng_init arr;
  let inversions () =
    let c = ref 0 in
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        if arr.(i) > arr.(k) then incr c
      done
    done;
    float_of_int !c
  in
  let pending = ref None in
  let propose rng =
    let i = Rng.int rng (n - 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(i + 1);
    arr.(i + 1) <- tmp;
    pending := Some i;
    true
  in
  let undo () =
    match !pending with
    | None -> ()
    | Some i ->
      let tmp = arr.(i) in
      arr.(i) <- arr.(i + 1);
      arr.(i + 1) <- tmp;
      pending := None
  in
  (arr, inversions, propose, undo, pending)

let test_engine_optimizes () =
  let arr, cost, propose, undo, pending = toy_problem 3 24 in
  let report =
    Engine.run ~rng:(Rng.create 42) ~cost
      ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:24 ()
  in
  Alcotest.(check bool) "cost improved" true (report.Engine.final_cost < report.Engine.initial_cost);
  Alcotest.(check bool) "nearly sorted" true (report.Engine.final_cost < 8.0);
  Alcotest.(check bool) "moves counted" true (report.Engine.n_moves > 0);
  Alcotest.(check bool) "acceptances bounded" true
    (report.Engine.n_accepted <= report.Engine.n_moves);
  ignore arr

let test_engine_deterministic () =
  let run seed =
    let _, cost, propose, undo, pending = toy_problem 7 20 in
    Engine.run ~rng:(Rng.create seed) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:20 ()
  in
  let a = run 5 and b = run 5 in
  Alcotest.(check (float 1e-9)) "same final cost" a.Engine.final_cost b.Engine.final_cost;
  Alcotest.(check int) "same move count" a.Engine.n_moves b.Engine.n_moves

let test_engine_temperature_callbacks () =
  let temps = ref [] in
  let _, cost, propose, undo, pending = toy_problem 11 16 in
  let report =
    Engine.run
      ~on_temperature:(fun ts -> temps := ts :: !temps)
      ~rng:(Rng.create 1) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:16 ()
  in
  let temps = List.rev !temps in
  Alcotest.(check bool) "got callbacks" true (List.length temps >= 3);
  (match temps with
  | warmup :: rest ->
    Alcotest.(check int) "warmup is index 0" 0 warmup.Engine.temp_index;
    Alcotest.(check bool) "warmup at infinity" true (warmup.Engine.temperature = infinity);
    (* temperatures decrease monotonically over the cooling phase *)
    let cooling = List.filter (fun ts -> ts.Engine.temperature > 0.0 && ts.Engine.temperature < infinity) rest in
    let rec decreasing = function
      | a :: (b :: _ as rest) -> a.Engine.temperature >= b.Engine.temperature && decreasing rest
      | [ _ ] | [] -> true
    in
    Alcotest.(check bool) "monotone cooling" true (decreasing cooling)
  | [] -> Alcotest.fail "no warmup");
  Alcotest.(check int) "report temperature count consistent" report.Engine.n_temperatures
    (List.length temps - 1)

let test_engine_quench_only_improves () =
  (* With max_temperatures = 0 the engine goes straight from warmup to the
     quench; quench must never accept an uphill move, so the cost at the
     end cannot exceed the cost right after warmup. Run it twice to check
     determinism of the path too. *)
  let _, cost, propose, undo, pending = toy_problem 13 18 in
  let cfg =
    { (Engine.default_config ~n:18) with Engine.max_temperatures = 0; quench_temperatures = 3 }
  in
  let after_warmup = ref nan in
  let seen_warmup = ref false in
  let _report =
    Engine.run ~config:cfg
      ~on_temperature:(fun ts ->
        if not !seen_warmup then begin
          seen_warmup := true;
          after_warmup := ts.Engine.mean_cost
        end)
      ~rng:(Rng.create 2) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:18 ()
  in
  Alcotest.(check bool) "cost after quench <= typical warmup cost" true
    (cost () <= !after_warmup +. 1e-9)

let test_engine_no_moves () =
  (* propose always fails: engine terminates with zero moves *)
  let report =
    Engine.run
      ~rng:(Rng.create 1)
      ~cost:(fun () -> 1.0)
      ~propose:(fun _ -> false)
      ~accept:(fun () -> Alcotest.fail "no move to accept")
      ~reject:(fun () -> Alcotest.fail "no move to reject")
      ~n:4 ()
  in
  Alcotest.(check int) "zero moves" 0 report.Engine.n_moves

(* --- Weights --- *)

let test_weights_cost () =
  let w = Weights.create ~g_per_net:0.5 ~d_per_net:0.25 ~t_emphasis:2.0 ~initial_delay:10.0 () in
  Alcotest.(check (float 1e-9)) "wg" 0.5 (Weights.wg w);
  Alcotest.(check (float 1e-9)) "wd" 0.25 (Weights.wd w);
  Alcotest.(check (float 1e-9)) "wt = emphasis / base" 0.2 (Weights.wt w);
  Alcotest.(check (float 1e-9)) "combined" ((0.5 *. 3.0) +. (0.25 *. 2.0) +. (0.2 *. 15.0))
    (Weights.cost w ~g:3 ~d:2 ~delay:15.0)

let test_weights_adapt () =
  let w = Weights.create ~initial_delay:10.0 () in
  let wt0 = Weights.wt w in
  Weights.observe w ~delay:20.0;
  Weights.observe w ~delay:20.0;
  Alcotest.(check (float 1e-12)) "no change before adapt" wt0 (Weights.wt w);
  Weights.adapt w;
  Alcotest.(check (float 1e-9)) "baseline moved to 20" (wt0 /. 2.0) (Weights.wt w);
  (* adapt with no samples is a no-op *)
  let wt1 = Weights.wt w in
  Weights.adapt w;
  Alcotest.(check (float 1e-12)) "no-op adapt" wt1 (Weights.wt w)

let test_weights_validation () =
  Alcotest.check_raises "non-positive delay"
    (Invalid_argument "Weights.create: initial_delay must be positive") (fun () ->
      ignore (Weights.create ~initial_delay:0.0 ()))

let test_weights_normalized_invariant =
  QCheck.Test.make ~name:"wt * baseline = emphasis after adapt" ~count:100
    QCheck.(pair (float_range 0.5 500.0) (float_range 0.5 500.0))
    (fun (d0, d1) ->
      let w = Weights.create ~t_emphasis:1.0 ~initial_delay:d0 () in
      Weights.observe w ~delay:d1;
      Weights.adapt w;
      Float.abs ((Weights.wt w *. d1) -. 1.0) < 1e-9)

let () =
  Alcotest.run "spr_anneal"
    [
      ( "engine",
        [
          Alcotest.test_case "optimizes toy problem" `Quick test_engine_optimizes;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "temperature callbacks" `Quick test_engine_temperature_callbacks;
          Alcotest.test_case "quench only improves" `Quick test_engine_quench_only_improves;
          Alcotest.test_case "no moves" `Quick test_engine_no_moves;
        ] );
      ( "weights",
        [
          Alcotest.test_case "cost formula" `Quick test_weights_cost;
          Alcotest.test_case "adaptation" `Quick test_weights_adapt;
          Alcotest.test_case "validation" `Quick test_weights_validation;
          qtest test_weights_normalized_invariant;
        ] );
    ]
