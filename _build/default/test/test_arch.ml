module Arch = Spr_arch.Arch
module Seg = Spr_arch.Segmentation
module I = Spr_util.Interval
module Gen = Spr_netlist.Generator

let qtest = QCheck_alcotest.to_alcotest

let schemes = [ Seg.Full; Seg.Uniform 1; Seg.Uniform 4; Seg.Uniform 7; Seg.Actel_like; Seg.Geometric ]

let scheme_gen = QCheck.make (QCheck.Gen.oneofl schemes) ~print:Seg.scheme_to_string

(* Exact partition: segments are ordered, contiguous, and cover
   [0, cols-1] without gaps or overlaps. *)
let is_partition segs cols =
  Array.length segs > 0
  && segs.(0).I.lo = 0
  && segs.(Array.length segs - 1).I.hi = cols - 1
  && begin
       let ok = ref true in
       for i = 1 to Array.length segs - 1 do
         if segs.(i).I.lo <> segs.(i - 1).I.hi + 1 then ok := false
       done;
       !ok
     end

let test_segmentation_partition =
  QCheck.Test.make ~name:"every track segmentation partitions the channel" ~count:400
    QCheck.(triple scheme_gen (int_range 2 90) (pair (int_range 0 12) (int_range 0 40)))
    (fun (scheme, cols, (channel, track)) ->
      is_partition (Seg.track scheme ~cols ~channel ~track) cols)

let test_segmentation_uniform_lengths () =
  let segs = Seg.track (Seg.Uniform 5) ~cols:23 ~channel:0 ~track:0 in
  Array.iteri
    (fun i s ->
      if i > 0 && i < Array.length segs - 1 then
        Alcotest.(check int) "interior segments have length 5" 5 (I.length s))
    segs

let test_segmentation_full () =
  let segs = Seg.track Seg.Full ~cols:31 ~channel:3 ~track:7 in
  Alcotest.(check int) "one segment" 1 (Array.length segs);
  Alcotest.(check int) "covers all" 31 (I.length segs.(0))

let test_segmentation_stagger () =
  (* Adjacent tracks of the uniform scheme should not share all cut
     positions. *)
  let cuts track =
    let segs = Seg.track (Seg.Uniform 6) ~cols:48 ~channel:0 ~track in
    Array.to_list (Array.map (fun s -> s.I.hi) segs)
  in
  Alcotest.(check bool) "tracks staggered" true (cuts 0 <> cuts 1)

let test_scheme_string_roundtrip () =
  List.iter
    (fun s ->
      match Seg.scheme_of_string (Seg.scheme_to_string s) with
      | Some s' -> Alcotest.(check string) "roundtrip" (Seg.scheme_to_string s) (Seg.scheme_to_string s')
      | None -> Alcotest.failf "did not parse %s" (Seg.scheme_to_string s))
    schemes;
  Alcotest.(check bool) "bad string" true (Seg.scheme_of_string "nonsense" = None);
  Alcotest.(check bool) "uniform:0 invalid" true (Seg.scheme_of_string "uniform:0" = None);
  Alcotest.(check bool) "uniform:x invalid" true (Seg.scheme_of_string "uniform:x" = None)

let test_average_segment_length () =
  let avg = Seg.average_segment_length (Seg.Uniform 4) ~cols:40 ~tracks:8 in
  Alcotest.(check bool) "avg near 4" true (avg > 3.0 && avg <= 4.5);
  let avg_full = Seg.average_segment_length Seg.Full ~cols:40 ~tracks:8 in
  Alcotest.(check (float 1e-9)) "full = cols" 40.0 avg_full

(* --- find_cover --- *)

let brute_force_cover segs (span : I.t) =
  (* Indices of the minimal consecutive run covering the span. *)
  let n = Array.length segs in
  let lo = ref None and hi = ref None in
  for i = 0 to n - 1 do
    if I.contains segs.(i) span.I.lo then lo := Some i;
    if I.contains segs.(i) span.I.hi then hi := Some i
  done;
  match !lo, !hi with Some a, Some b -> Some (a, b) | _, _ -> None

let test_find_cover_matches_brute_force =
  QCheck.Test.make ~name:"find_cover agrees with brute force" ~count:500
    QCheck.(
      triple scheme_gen (int_range 4 80) (pair (int_range (-5) 90) (int_range 0 30)))
    (fun (scheme, cols, (lo, len)) ->
      let segs = Seg.track scheme ~cols ~channel:1 ~track:2 in
      let span = I.make lo (lo + len) in
      Arch.find_cover segs span = brute_force_cover segs span)

let test_find_cover_examples () =
  let segs = [| I.make 0 3; I.make 4 7; I.make 8 11 |] in
  Alcotest.(check bool) "single segment" true (Arch.find_cover segs (I.make 1 3) = Some (0, 0));
  Alcotest.(check bool) "two segments" true (Arch.find_cover segs (I.make 2 6) = Some (0, 1));
  Alcotest.(check bool) "all segments" true (Arch.find_cover segs (I.make 0 11) = Some (0, 2));
  Alcotest.(check bool) "out of range" true (Arch.find_cover segs (I.make 5 14) = None);
  Alcotest.(check bool) "empty partition" true (Arch.find_cover [||] (I.make 0 1) = None)

(* --- Arch --- *)

let test_create_validation () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Arch.create: non-positive dimensions")
    (fun () -> ignore (Arch.create ~rows:0 ~cols:5 ~tracks:3 ()));
  Alcotest.check_raises "vschemes length"
    (Invalid_argument "Arch.create: vschemes length must equal vtracks") (fun () ->
      ignore (Arch.create ~rows:3 ~cols:6 ~tracks:3 ~vtracks:2 ~vschemes:[| Arch.V_full |] ()))

let test_arch_shape () =
  let a = Arch.create ~rows:4 ~cols:12 ~tracks:6 () in
  Alcotest.(check int) "channels = rows+1" 5 a.Arch.n_channels;
  Alcotest.(check int) "slots" 48 (Arch.n_slots a);
  Alcotest.(check int) "perimeter of 4x12" ((2 * 12) + (2 * 2)) (Arch.n_perimeter_slots a);
  Alcotest.(check bool) "corner is perimeter" true (Arch.is_perimeter a ~row:0 ~col:0);
  Alcotest.(check bool) "interior is not" false (Arch.is_perimeter a ~row:2 ~col:5);
  (* every channel/track partitions; every column's vtracks partition the
     channel range *)
  for ch = 0 to a.Arch.n_channels - 1 do
    for tr = 0 to a.Arch.tracks - 1 do
      Alcotest.(check bool) "hseg partition" true
        (is_partition (Arch.hsegments a ~channel:ch ~track:tr) a.Arch.cols)
    done
  done;
  for col = 0 to a.Arch.cols - 1 do
    for vt = 0 to a.Arch.vtracks - 1 do
      Alcotest.(check bool) "vseg partition" true
        (is_partition (Arch.vsegments a ~col ~vtrack:vt) a.Arch.n_channels)
    done
  done

let test_with_tracks () =
  let a = Arch.create ~rows:3 ~cols:9 ~tracks:4 () in
  let b = Arch.with_tracks a 7 in
  Alcotest.(check int) "tracks changed" 7 b.Arch.tracks;
  Alcotest.(check int) "rows kept" a.Arch.rows b.Arch.rows;
  Alcotest.(check int) "cols kept" a.Arch.cols b.Arch.cols

let test_size_for_fits =
  QCheck.Test.make ~name:"size_for produces a fabric that fits" ~count:25
    QCheck.(pair (int_range 40 400) small_int)
    (fun (n_cells, seed) ->
      let nl = Gen.generate (Gen.default ~n_cells) ~seed in
      let a = Arch.size_for nl in
      match Arch.check_fits a nl with Ok () -> true | Error _ -> false)

let test_check_fits_errors () =
  let nl = Gen.generate (Gen.default ~n_cells:100) ~seed:1 in
  let tiny = Arch.create ~rows:2 ~cols:4 ~tracks:4 () in
  (match Arch.check_fits tiny nl with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tiny fabric accepted");
  (* enough slots but not enough perimeter for pads: use a netlist with
     many pads on a tall narrow fabric *)
  let io_heavy =
    Gen.generate { (Gen.default ~n_cells:120) with Gen.pi_frac = 0.3; po_frac = 0.3 } ~seed:2
  in
  let narrow = Arch.create ~rows:60 ~cols:2 ~tracks:4 () in
  match Arch.check_fits narrow io_heavy with
  | Error msg -> Alcotest.(check bool) "perimeter error" true (String.length msg > 0)
  | Ok () -> ()

let test_custom_vschemes () =
  let a =
    Arch.create ~rows:5 ~cols:10 ~tracks:4 ~vtracks:3
      ~vschemes:[| Arch.V_full; Arch.V_span 2; Arch.V_span 3 |] ()
  in
  (* vtrack 0 is one full segment; the others partition into spans *)
  for col = 0 to a.Arch.cols - 1 do
    Alcotest.(check int) "full vtrack one segment" 1
      (Array.length (Arch.vsegments a ~col ~vtrack:0));
    for vt = 0 to 2 do
      Alcotest.(check bool) "vsegments partition channels" true
        (is_partition (Arch.vsegments a ~col ~vtrack:vt) a.Arch.n_channels)
    done;
    (* spans bounded by the requested size *)
    Array.iter
      (fun seg -> Alcotest.(check bool) "span size bound" true (I.length seg <= 2))
      (Arch.vsegments a ~col ~vtrack:1)
  done

let test_vtracks_scale () =
  let small = Gen.generate (Gen.default ~n_cells:100) ~seed:3 in
  let big = Gen.generate (Gen.default ~n_cells:500) ~seed:3 in
  let a = Arch.size_for small and b = Arch.size_for big in
  Alcotest.(check bool) "vtracks grow with rows" true (b.Arch.vtracks >= a.Arch.vtracks)

let () =
  Alcotest.run "spr_arch"
    [
      ( "segmentation",
        [
          Alcotest.test_case "uniform lengths" `Quick test_segmentation_uniform_lengths;
          Alcotest.test_case "full scheme" `Quick test_segmentation_full;
          Alcotest.test_case "stagger" `Quick test_segmentation_stagger;
          Alcotest.test_case "scheme string roundtrip" `Quick test_scheme_string_roundtrip;
          Alcotest.test_case "average length" `Quick test_average_segment_length;
          qtest test_segmentation_partition;
        ] );
      ( "find_cover",
        [
          Alcotest.test_case "examples" `Quick test_find_cover_examples;
          qtest test_find_cover_matches_brute_force;
        ] );
      ( "arch",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "shape and partitions" `Quick test_arch_shape;
          Alcotest.test_case "with_tracks" `Quick test_with_tracks;
          Alcotest.test_case "check_fits errors" `Quick test_check_fits_errors;
          Alcotest.test_case "vtracks scale with rows" `Quick test_vtracks_scale;
          Alcotest.test_case "custom vertical schemes" `Quick test_custom_vschemes;
          qtest test_size_for_fits;
        ] );
    ]
