module Fm = Spr_partition.Fm
module Mc = Spr_partition.Multi_chip
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Rng = Spr_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let circuit ?(n_cells = 120) ?(seed = 3) () = Gen.generate (Gen.default ~n_cells) ~seed

(* --- Fm --- *)

let random_balanced_cut nl rng =
  let n = Nl.n_cells nl in
  let order = Array.init n Fun.id in
  Rng.shuffle_in_place rng order;
  let side = Array.make n false in
  for i = 0 to (n / 2) - 1 do
    side.(order.(i)) <- true
  done;
  Fm.cut_size nl side

let test_fm_beats_random () =
  let nl = circuit () in
  let rng = Rng.create 7 in
  let random_cut = random_balanced_cut nl (Rng.create 99) in
  let r = Fm.bipartition ~rng nl in
  Alcotest.(check bool)
    (Printf.sprintf "fm cut %d < random cut %d" r.Fm.cut_nets random_cut)
    true
    (r.Fm.cut_nets < random_cut);
  Alcotest.(check int) "cut agrees with census" r.Fm.cut_nets (Fm.cut_size nl r.Fm.side)

let test_fm_balance =
  QCheck.Test.make ~name:"fm respects the balance constraint" ~count:15 QCheck.small_int
    (fun seed ->
      let nl = circuit ~seed:(seed mod 11) () in
      let n = Nl.n_cells nl in
      let balance = 0.10 in
      let r = Fm.bipartition ~balance ~rng:(Rng.create seed) nl in
      let b = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 r.Fm.side in
      let a = n - b in
      let slack = int_of_float (balance *. float_of_int n) + 1 in
      abs (a - b) <= 2 * slack)

let test_fm_deterministic () =
  let nl = circuit () in
  let a = Fm.bipartition ~rng:(Rng.create 5) nl in
  let b = Fm.bipartition ~rng:(Rng.create 5) nl in
  Alcotest.(check int) "same cut" a.Fm.cut_nets b.Fm.cut_nets;
  Alcotest.(check bool) "same assignment" true (a.Fm.side = b.Fm.side)

let test_fm_tiny () =
  (* 0/1-cell netlists are handled without crashing *)
  let b = Nl.Builder.create () in
  let _pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Spr_netlist.Cell_kind.Input ~n_inputs:0 in
  let nl = Nl.Builder.finish_exn b in
  let r = Fm.bipartition ~rng:(Rng.create 1) nl in
  Alcotest.(check int) "no cut" 0 r.Fm.cut_nets

(* --- Multi_chip --- *)

let test_split_structure () =
  let nl = circuit () in
  let split, fm = Mc.bipartition_and_split ~rng:(Rng.create 3) nl in
  Alcotest.(check int) "two pieces" 2 (Array.length split.Mc.pieces);
  Alcotest.(check int) "cut matches fm" fm.Fm.cut_nets split.Mc.cut_nets;
  (* each piece is a valid netlist that levelizes *)
  Array.iter
    (fun piece ->
      match Spr_netlist.Levelize.run piece.Mc.netlist with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "piece does not levelize: %s" e)
    split.Mc.pieces;
  (* every original cell appears in exactly one piece *)
  let seen = Array.make (Nl.n_cells nl) 0 in
  Array.iter
    (fun piece ->
      Array.iter (fun orig -> if orig >= 0 then seen.(orig) <- seen.(orig) + 1) piece.Mc.orig_cell)
    split.Mc.pieces;
  Array.iteri
    (fun c count -> Alcotest.(check int) (Printf.sprintf "cell %d once" c) 1 count)
    seen;
  (* piece cell totals = original cells + pads *)
  let total =
    Array.fold_left (fun acc p -> acc + Nl.n_cells p.Mc.netlist) 0 split.Mc.pieces
  in
  Alcotest.(check int) "totals add up" (Nl.n_cells nl + split.Mc.pads_added) total

let test_split_preserves_kinds () =
  let nl = circuit () in
  let split, _ = Mc.bipartition_and_split ~rng:(Rng.create 3) nl in
  Array.iter
    (fun piece ->
      Array.iteri
        (fun local orig ->
          if orig >= 0 then begin
            let pk = (Nl.cell piece.Mc.netlist local).Nl.kind in
            let ok = (Nl.cell nl orig).Nl.kind in
            Alcotest.(check bool) "kind preserved" true (Spr_netlist.Cell_kind.equal pk ok)
          end)
        piece.Mc.orig_cell)
    split.Mc.pieces

let test_split_pad_count () =
  let nl = circuit () in
  let split, _ = Mc.bipartition_and_split ~rng:(Rng.create 3) nl in
  (* a 2-way cut net creates exactly one xout and one xin *)
  Alcotest.(check int) "pads = 2 * cut for a bipartition" (2 * split.Mc.cut_nets)
    split.Mc.pads_added

let test_pieces_route_independently () =
  let nl = circuit ~n_cells:100 () in
  let split, _ = Mc.bipartition_and_split ~rng:(Rng.create 3) nl in
  Array.iter
    (fun piece ->
      let arch = Spr_arch.Arch.size_for ~tracks:24 piece.Mc.netlist in
      let place =
        Spr_layout.Placement.create_exn arch piece.Mc.netlist ~rng:(Rng.create 2)
      in
      let st = Spr_route.Route_state.create place in
      Spr_route.Router.route_all st;
      (* most nets route on a fresh random placement of a half-size
         piece; full routing is the anneal's job, not route_all's *)
      Alcotest.(check bool) "piece mostly routable" true
        (Spr_route.Route_state.d_count st
        < max 3 (Spr_route.Route_state.n_routable st / 4)))
    split.Mc.pieces

let test_kway () =
  let nl = circuit ~n_cells:160 () in
  let parts = Mc.kway ~rng:(Rng.create 5) ~k:4 nl in
  let counts = Array.make 4 0 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "part in range" true (p >= 0 && p < 4);
      counts.(p) <- counts.(p) + 1)
    parts;
  Array.iteri
    (fun p c ->
      Alcotest.(check bool) (Printf.sprintf "part %d nonempty and bounded" p) true
        (c > 0 && c < Nl.n_cells nl))
    counts;
  (* the 4-way split materializes *)
  let split = Mc.split nl ~parts ~n_parts:4 in
  Alcotest.(check int) "four pieces" 4 (Array.length split.Mc.pieces);
  Array.iter
    (fun piece ->
      match Spr_netlist.Levelize.run piece.Mc.netlist with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "4-way piece does not levelize: %s" e)
    split.Mc.pieces

let test_split_identity () =
  (* everything in one part: no pads, no cut *)
  let nl = circuit () in
  let parts = Array.make (Nl.n_cells nl) 0 in
  let split = Mc.split nl ~parts ~n_parts:1 in
  Alcotest.(check int) "no cut" 0 split.Mc.cut_nets;
  Alcotest.(check int) "no pads" 0 split.Mc.pads_added;
  Alcotest.(check int) "same cell count" (Nl.n_cells nl)
    (Nl.n_cells split.Mc.pieces.(0).Mc.netlist)

let () =
  Alcotest.run "spr_partition"
    [
      ( "fm",
        [
          Alcotest.test_case "beats a random cut" `Quick test_fm_beats_random;
          Alcotest.test_case "deterministic" `Quick test_fm_deterministic;
          Alcotest.test_case "tiny netlists" `Quick test_fm_tiny;
          qtest test_fm_balance;
        ] );
      ( "multi_chip",
        [
          Alcotest.test_case "split structure" `Quick test_split_structure;
          Alcotest.test_case "kinds preserved" `Quick test_split_preserves_kinds;
          Alcotest.test_case "pad counts" `Quick test_split_pad_count;
          Alcotest.test_case "pieces route independently" `Quick test_pieces_route_independently;
          Alcotest.test_case "4-way" `Quick test_kway;
          Alcotest.test_case "identity split" `Quick test_split_identity;
        ] );
    ]
