module Svg = Spr_render.Svg
module Die = Spr_render.Die_plot
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Arch = Spr_arch.Arch
module Gen = Spr_netlist.Generator
module Nl = Spr_netlist.Netlist
module Rng = Spr_util.Rng

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
  n = 0 || loop 0

let routed_state ?(n_cells = 60) ?(seed = 5) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks:24 nl in
  let place = Spr_layout.Placement.create_exn arch nl ~rng:(Rng.create (seed + 1)) in
  let st = Rs.create place in
  Router.route_all st;
  (st, nl)

(* --- Svg --- *)

let test_svg_document () =
  let svg = Svg.create ~width:100.0 ~height:50.0 in
  Svg.rect svg ~x:1.0 ~y:2.0 ~w:10.0 ~h:5.0 ~fill:"red" ();
  Svg.line svg ~x1:0.0 ~y1:0.0 ~x2:9.0 ~y2:9.0 ();
  Svg.circle svg ~cx:5.0 ~cy:5.0 ~r:2.0 ();
  Svg.text svg ~x:3.0 ~y:4.0 "hello <world> & \"you\"";
  Svg.comment svg "a comment";
  let doc = Svg.to_string svg in
  Alcotest.(check bool) "xml header" true (contains_sub ~sub:"<?xml" doc);
  Alcotest.(check bool) "svg open tag" true (contains_sub ~sub:"<svg" doc);
  Alcotest.(check bool) "svg close tag" true (contains_sub ~sub:"</svg>" doc);
  Alcotest.(check bool) "rect present" true (contains_sub ~sub:"<rect" doc);
  Alcotest.(check bool) "line present" true (contains_sub ~sub:"<line" doc);
  Alcotest.(check bool) "circle present" true (contains_sub ~sub:"<circle" doc);
  Alcotest.(check bool) "text escaped lt" true (contains_sub ~sub:"&lt;world&gt;" doc);
  Alcotest.(check bool) "text escaped amp" true (contains_sub ~sub:"&amp;" doc);
  Alcotest.(check bool) "no raw angle in text" false (contains_sub ~sub:"<world>" doc)

let test_svg_save () =
  let svg = Svg.create ~width:10.0 ~height:10.0 in
  Svg.rect svg ~x:0.0 ~y:0.0 ~w:1.0 ~h:1.0 ();
  let path = Filename.temp_file "spr_test" ".svg" in
  Svg.save svg path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" (Svg.to_string svg) text

(* --- Die_plot --- *)

let test_die_plot_svg () =
  let st, nl = routed_state () in
  let doc = Svg.to_string (Die.to_svg st) in
  Alcotest.(check bool) "valid document" true (contains_sub ~sub:"</svg>" doc);
  (* one rect per cell plus channel backgrounds and the frame *)
  let count sub =
    let rec loop i acc =
      if i >= String.length doc then acc
      else if i + String.length sub <= String.length doc && String.sub doc i (String.length sub) = sub
      then loop (i + 1) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  let arch = Rs.arch st in
  Alcotest.(check bool) "a rect per cell at least" true
    (count "<rect" >= Nl.n_cells nl + arch.Arch.n_channels);
  Alcotest.(check bool) "claimed/free segments drawn" true (count "<line" > 50)

let test_die_plot_highlight () =
  let st, _ = routed_state () in
  let doc = Svg.to_string (Die.to_svg ~highlight:[ 0; 1 ] st) in
  Alcotest.(check bool) "highlight color present" true (contains_sub ~sub:"#d62728" doc)

let test_die_plot_no_free_segments () =
  let st, _ = routed_state () in
  let with_free = String.length (Svg.to_string (Die.to_svg ~show_free_segments:true st)) in
  let without = String.length (Svg.to_string (Die.to_svg ~show_free_segments:false st)) in
  Alcotest.(check bool) "free segments add bulk" true (with_free > without)

let test_ascii () =
  let st, nl = routed_state () in
  let text = Die.to_ascii st in
  let arch = Rs.arch st in
  let lines = String.split_on_char '\n' text in
  (* channels + rows + summary + trailing empty *)
  Alcotest.(check int) "line count"
    (arch.Arch.n_channels + arch.Arch.rows + 2)
    (List.length lines);
  Alcotest.(check bool) "mentions routed counts" true (contains_sub ~sub:"nets routed" text);
  (* cell characters appear *)
  let body = String.concat "\n" lines in
  Alcotest.(check bool) "comb cells shown" true (contains_sub ~sub:"c" body);
  ignore nl

let test_critical_nets () =
  let st, nl = routed_state () in
  let sta = Spr_timing.Sta.create Spr_timing.Delay_model.default st in
  let nets = Die.critical_nets sta st in
  Alcotest.(check bool) "nonempty for a real design" true (nets <> []);
  List.iter
    (fun net ->
      Alcotest.(check bool) "valid net ids" true (net >= 0 && net < Nl.n_nets nl))
    nets;
  (* every reported net connects consecutive cells of the critical path *)
  let path = Spr_timing.Sta.critical_path sta in
  List.iter
    (fun net ->
      let driver = (Nl.net nl net).Nl.driver in
      Alcotest.(check bool) "net driver on path" true (List.mem driver path))
    nets

let () =
  Alcotest.run "spr_render"
    [
      ( "svg",
        [
          Alcotest.test_case "document structure" `Quick test_svg_document;
          Alcotest.test_case "save" `Quick test_svg_save;
        ] );
      ( "die_plot",
        [
          Alcotest.test_case "svg plot" `Quick test_die_plot_svg;
          Alcotest.test_case "highlight" `Quick test_die_plot_highlight;
          Alcotest.test_case "free segments toggle" `Quick test_die_plot_no_free_segments;
          Alcotest.test_case "ascii" `Quick test_ascii;
          Alcotest.test_case "critical nets" `Quick test_critical_nets;
        ] );
    ]
