module Nl = Spr_netlist.Netlist
module Ck = Spr_netlist.Cell_kind
module Pm = Spr_netlist.Pinmap
module Lv = Spr_netlist.Levelize
module Gen = Spr_netlist.Generator
module Blif = Spr_netlist.Blif
module Circuits = Spr_netlist.Circuits

let qtest = QCheck_alcotest.to_alcotest

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
  n = 0 || loop 0

(* --- Cell_kind --- *)

let test_kind_predicates () =
  Alcotest.(check bool) "input is io" true (Ck.is_io Ck.Input);
  Alcotest.(check bool) "comb not io" false (Ck.is_io Ck.Comb);
  Alcotest.(check bool) "seq source" true (Ck.is_timing_source Ck.Seq);
  Alcotest.(check bool) "seq sink" true (Ck.is_timing_sink Ck.Seq);
  Alcotest.(check bool) "input source" true (Ck.is_timing_source Ck.Input);
  Alcotest.(check bool) "output sink" true (Ck.is_timing_sink Ck.Output);
  Alcotest.(check bool) "output has no output pin" false (Ck.has_output Ck.Output);
  Alcotest.(check bool) "comb has output" true (Ck.has_output Ck.Comb);
  List.iter
    (fun k -> Alcotest.(check bool) "equal refl" true (Ck.equal k k))
    [ Ck.Input; Ck.Output; Ck.Comb; Ck.Seq ];
  Alcotest.(check bool) "not equal" false (Ck.equal Ck.Input Ck.Seq)

(* --- Pinmap --- *)

let test_palette_sizes () =
  Alcotest.(check int) "0 pins: one empty map" 1 (Array.length (Pm.palette ~n_pins:0));
  Alcotest.(check int) "1 pin: two maps" 2 (Array.length (Pm.palette ~n_pins:1));
  Alcotest.(check int) "3 pins: four maps" 4 (Array.length (Pm.palette ~n_pins:3))

let test_palette_distinct =
  QCheck.Test.make ~name:"palette entries are pairwise distinct" ~count:20
    QCheck.(int_range 0 8)
    (fun n_pins ->
      let palette = Pm.palette ~n_pins in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri (fun k b -> if i < k && Pm.equal a b then ok := false) palette)
        palette;
      !ok && Array.for_all (fun pm -> Array.length pm = n_pins) palette)

let test_palette_default_bottom () =
  let palette = Pm.palette ~n_pins:4 in
  Alcotest.(check bool) "entry 0 all bottom" true
    (Array.for_all (fun s -> Pm.side_equal s Pm.Bottom) palette.(0))

(* --- Builder --- *)

let build_tiny () =
  (* pi -> g1 -> po, plus g1 also feeding g2 -> ff -> (feeds g2 back) *)
  let b = Nl.Builder.create () in
  let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Ck.Input ~n_inputs:0 in
  let g1 = Nl.Builder.add_cell b ~name:"g1" ~kind:Ck.Comb ~n_inputs:1 in
  let g2 = Nl.Builder.add_cell b ~name:"g2" ~kind:Ck.Comb ~n_inputs:2 in
  let ff = Nl.Builder.add_cell b ~name:"ff" ~kind:Ck.Seq ~n_inputs:1 in
  let po = Nl.Builder.add_cell b ~name:"po" ~kind:Ck.Output ~n_inputs:1 in
  let n_pi = Nl.Builder.add_net b ~name:"n_pi" ~driver:pi in
  let n_g1 = Nl.Builder.add_net b ~name:"n_g1" ~driver:g1 in
  let n_g2 = Nl.Builder.add_net b ~name:"n_g2" ~driver:g2 in
  let n_ff = Nl.Builder.add_net b ~name:"n_ff" ~driver:ff in
  Nl.Builder.add_sink b ~net:n_pi ~cell:g1 ~pin:0;
  Nl.Builder.add_sink b ~net:n_g1 ~cell:g2 ~pin:0;
  Nl.Builder.add_sink b ~net:n_g1 ~cell:po ~pin:0;
  Nl.Builder.add_sink b ~net:n_g2 ~cell:ff ~pin:0;
  Nl.Builder.add_sink b ~net:n_ff ~cell:g2 ~pin:1;
  (Nl.Builder.finish_exn b, pi, g1, g2, ff, po)

let test_builder_valid () =
  let nl, pi, g1, g2, ff, po = build_tiny () in
  Alcotest.(check int) "cells" 5 (Nl.n_cells nl);
  Alcotest.(check int) "nets" 4 (Nl.n_nets nl);
  Alcotest.(check (option int)) "pi drives net 0" (Some 0) (Nl.out_net nl pi);
  Alcotest.(check (option int)) "po drives nothing" None (Nl.out_net nl po);
  Alcotest.(check int) "g2 pin1 fed by ff net" 3 (Nl.in_net nl g2 1);
  Alcotest.(check (list int)) "nets of g2" [ 1; 2; 3 ] (Nl.nets_of_cell nl g2);
  Alcotest.(check (list int)) "fanout of g1" (List.sort compare [ g2; po ]) (Nl.fanout_cells nl g1);
  Alcotest.(check int) "g1 pins (1 in + out)" 2 (Nl.n_pins nl g1);
  Alcotest.(check int) "po pins (1 in)" 1 (Nl.n_pins nl po);
  let counts = Nl.counts nl in
  Alcotest.(check int) "one input" 1 counts.Nl.n_input;
  Alcotest.(check int) "one seq" 1 counts.Nl.n_seq;
  Alcotest.(check int) "total pins" (1 + 2 + 3 + 2 + 1) counts.Nl.total_pins;
  ignore ff

let expect_error b msg_part =
  match Nl.Builder.finish b with
  | Ok _ -> Alcotest.failf "expected error mentioning %S" msg_part
  | Error msg ->
    if not (contains_sub ~sub:msg_part msg) then
      Alcotest.failf "error %S does not mention %S" msg msg_part

let test_builder_unconnected_pin () =
  let b = Nl.Builder.create () in
  let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Ck.Input ~n_inputs:0 in
  let _g = Nl.Builder.add_cell b ~name:"g" ~kind:Ck.Comb ~n_inputs:1 in
  let _net = Nl.Builder.add_net b ~name:"n" ~driver:pi in
  expect_error b "unconnected"

let test_builder_double_driver () =
  let b = Nl.Builder.create () in
  let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Ck.Input ~n_inputs:0 in
  let _n1 = Nl.Builder.add_net b ~name:"n1" ~driver:pi in
  let _n2 = Nl.Builder.add_net b ~name:"n2" ~driver:pi in
  expect_error b "more than one net"

let test_builder_output_driving () =
  let b = Nl.Builder.create () in
  let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Ck.Input ~n_inputs:0 in
  let po = Nl.Builder.add_cell b ~name:"po" ~kind:Ck.Output ~n_inputs:1 in
  let n = Nl.Builder.add_net b ~name:"n" ~driver:pi in
  Nl.Builder.add_sink b ~net:n ~cell:po ~pin:0;
  let _bad = Nl.Builder.add_net b ~name:"bad" ~driver:po in
  expect_error b "has no output"

let test_builder_pin_connected_twice () =
  let b = Nl.Builder.create () in
  let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Ck.Input ~n_inputs:0 in
  let po = Nl.Builder.add_cell b ~name:"po" ~kind:Ck.Output ~n_inputs:1 in
  let n = Nl.Builder.add_net b ~name:"n" ~driver:pi in
  Nl.Builder.add_sink b ~net:n ~cell:po ~pin:0;
  Nl.Builder.add_sink b ~net:n ~cell:po ~pin:0;
  expect_error b "connected twice"

let test_builder_bad_pin_index () =
  let b = Nl.Builder.create () in
  let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Ck.Input ~n_inputs:0 in
  let po = Nl.Builder.add_cell b ~name:"po" ~kind:Ck.Output ~n_inputs:1 in
  let n = Nl.Builder.add_net b ~name:"n" ~driver:pi in
  Nl.Builder.add_sink b ~net:n ~cell:po ~pin:0;
  Nl.Builder.add_sink b ~net:n ~cell:po ~pin:7;
  expect_error b "out of range"

(* --- Levelize --- *)

let test_levelize_tiny () =
  let nl, pi, g1, g2, ff, po = build_tiny () in
  let lv = Lv.run_exn nl in
  Alcotest.(check int) "pi level 0" 0 lv.Lv.levels.(pi);
  Alcotest.(check int) "ff level 0 (source side)" 0 lv.Lv.levels.(ff);
  Alcotest.(check int) "g1 level 1" 1 lv.Lv.levels.(g1);
  Alcotest.(check int) "g2 level 2 (max of g1,ff)" 2 lv.Lv.levels.(g2);
  Alcotest.(check int) "po level 2" 2 lv.Lv.levels.(po);
  Alcotest.(check int) "max level" 2 lv.Lv.max_level;
  (* order is non-decreasing in level *)
  let last = ref (-1) in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "order sorted by level" true (lv.Lv.levels.(c) >= !last);
      last := lv.Lv.levels.(c))
    lv.Lv.order

let test_levelize_cycle_detected () =
  let b = Nl.Builder.create () in
  let a = Nl.Builder.add_cell b ~name:"a" ~kind:Ck.Comb ~n_inputs:1 in
  let c = Nl.Builder.add_cell b ~name:"c" ~kind:Ck.Comb ~n_inputs:1 in
  let na = Nl.Builder.add_net b ~name:"na" ~driver:a in
  let nc = Nl.Builder.add_net b ~name:"nc" ~driver:c in
  Nl.Builder.add_sink b ~net:na ~cell:c ~pin:0;
  Nl.Builder.add_sink b ~net:nc ~cell:a ~pin:0;
  let nl = Nl.Builder.finish_exn b in
  match Lv.run nl with
  | Ok _ -> Alcotest.fail "cycle not detected"
  | Error msg -> Alcotest.(check bool) "mentions cycle" true (String.length msg > 0)

let test_levelize_ff_breaks_cycle () =
  (* a -> ff -> a is fine: the flip-flop breaks the loop. *)
  let b = Nl.Builder.create () in
  let a = Nl.Builder.add_cell b ~name:"a" ~kind:Ck.Comb ~n_inputs:1 in
  let ff = Nl.Builder.add_cell b ~name:"ff" ~kind:Ck.Seq ~n_inputs:1 in
  let na = Nl.Builder.add_net b ~name:"na" ~driver:a in
  let nf = Nl.Builder.add_net b ~name:"nf" ~driver:ff in
  Nl.Builder.add_sink b ~net:na ~cell:ff ~pin:0;
  Nl.Builder.add_sink b ~net:nf ~cell:a ~pin:0;
  let nl = Nl.Builder.finish_exn b in
  let lv = Lv.run_exn nl in
  Alcotest.(check int) "a level 1" 1 lv.Lv.levels.(a);
  Alcotest.(check int) "ff level 0" 0 lv.Lv.levels.(ff)

let level_property nl =
  let lv = Lv.run_exn nl in
  let ok = ref true in
  for c = 0 to Nl.n_cells nl - 1 do
    let cell = Nl.cell nl c in
    let is_source = Ck.is_timing_source cell.Nl.kind || cell.Nl.n_inputs = 0 in
    if is_source then begin
      if lv.Lv.levels.(c) <> 0 then ok := false
    end
    else begin
      let expect =
        1
        + Array.fold_left
            (fun acc net ->
              let d = (Nl.net nl net).Nl.driver in
              let dc = Nl.cell nl d in
              let d_src = Ck.is_timing_source dc.Nl.kind || dc.Nl.n_inputs = 0 in
              max acc (if d_src then 0 else lv.Lv.levels.(d)))
            0 (Nl.in_nets nl c)
      in
      if lv.Lv.levels.(c) <> expect then ok := false
    end
  done;
  !ok

(* --- Generator --- *)

let test_generator_deterministic () =
  let params = Gen.default ~n_cells:120 in
  let a = Gen.generate params ~seed:99 in
  let b = Gen.generate params ~seed:99 in
  Alcotest.(check int) "same cells" (Nl.n_cells a) (Nl.n_cells b);
  Alcotest.(check int) "same nets" (Nl.n_nets a) (Nl.n_nets b);
  let ca = Nl.counts a and cb = Nl.counts b in
  Alcotest.(check int) "same pins" ca.Nl.total_pins cb.Nl.total_pins

let test_generator_seed_changes () =
  let params = Gen.default ~n_cells:120 in
  let a = Gen.generate params ~seed:1 in
  let b = Gen.generate params ~seed:2 in
  Alcotest.(check bool) "different connectivity" true
    ((Nl.counts a).Nl.total_pins <> (Nl.counts b).Nl.total_pins)

let test_generator_counts =
  QCheck.Test.make ~name:"generator: exact cell count, valid structure" ~count:30
    QCheck.(pair (int_range 40 400) small_int)
    (fun (n_cells, seed) ->
      let params = Gen.default ~n_cells in
      let nl = Gen.generate params ~seed in
      Nl.n_cells nl = n_cells
      &&
      (* fanin bound respected for comb cells *)
      Array.for_all
        (fun c ->
          match c.Nl.kind with
          | Ck.Comb -> c.Nl.n_inputs >= 1 && c.Nl.n_inputs <= params.Gen.max_fanin
          | Ck.Seq -> c.Nl.n_inputs = 1
          | Ck.Input -> c.Nl.n_inputs = 0
          | Ck.Output -> c.Nl.n_inputs = 1)
        (Nl.cells nl))

let test_generator_acyclic =
  QCheck.Test.make ~name:"generator output levelizes (no comb cycles)" ~count:30
    QCheck.(pair (int_range 40 300) small_int)
    (fun (n_cells, seed) ->
      let nl = Gen.generate (Gen.default ~n_cells) ~seed in
      match Lv.run nl with Ok _ -> true | Error _ -> false)

let test_generator_levels_property =
  QCheck.Test.make ~name:"levelization recurrence holds on generated circuits" ~count:20
    QCheck.(pair (int_range 40 250) small_int)
    (fun (n_cells, seed) -> level_property (Gen.generate (Gen.default ~n_cells) ~seed))

let test_generator_too_small () =
  Alcotest.check_raises "n_cells too small"
    (Invalid_argument "Generator.generate: n_cells too small for the I/O fractions")
    (fun () -> ignore (Gen.generate (Gen.default ~n_cells:3) ~seed:1))

(* --- Circuits --- *)

let test_circuits_presets () =
  Alcotest.(check int) "six presets" 6 (List.length Circuits.all);
  List.iter
    (fun spec ->
      let nl = Circuits.make spec in
      Alcotest.(check int)
        (spec.Circuits.spec_name ^ " cell count")
        spec.Circuits.spec_cells (Nl.n_cells nl))
    Circuits.all;
  Alcotest.(check bool) "find s1" true (Circuits.find "s1" <> None);
  Alcotest.(check bool) "find unknown" true (Circuits.find "nope" = None);
  Alcotest.check_raises "make_by_name unknown" Not_found (fun () ->
      ignore (Circuits.make_by_name "nope"))

(* --- Blif --- *)

let blif_example =
  {|# a small example
.model tiny
.inputs a b
.outputs f
.names a b w
11 1
.latch w q 0
.names q b f
10 1
.end
|}

let test_blif_parse () =
  match Blif.parse_string blif_example with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nl ->
    let counts = Nl.counts nl in
    Alcotest.(check int) "2 inputs" 2 counts.Nl.n_input;
    Alcotest.(check int) "1 output pad" 1 counts.Nl.n_output;
    Alcotest.(check int) "2 comb (.names)" 2 counts.Nl.n_comb;
    Alcotest.(check int) "1 latch" 1 counts.Nl.n_seq;
    (match Lv.run nl with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "levelize failed: %s" e)

let test_blif_errors () =
  (match Blif.parse_string ".model m\n.inputs a\n.names a a\n1 1\n.end\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double driver accepted");
  (match Blif.parse_string ".model m\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undriven signal accepted");
  (match Blif.parse_string ".model m\n.gate x\n.end\n" with
  | Error e ->
    Alcotest.(check bool) "mentions unsupported" true (contains_sub ~sub:"unsupported" e)
  | Ok _ -> Alcotest.fail "unsupported construct accepted");
  match Blif.parse_string ".model m\n.latch x\n.end\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed latch accepted"

let signature nl =
  (* Structure signature independent of cell/net ids: per cell name its
     kind and sorted fanin signal names. *)
  let sig_of_cell c =
    let fanins =
      Array.to_list
        (Array.map (fun net -> (Nl.net nl net).Nl.net_name) (Nl.in_nets nl c.Nl.id))
    in
    (c.Nl.cell_name, Ck.to_string c.Nl.kind, List.sort compare fanins)
  in
  List.sort compare (Array.to_list (Array.map sig_of_cell (Nl.cells nl)))

let test_blif_roundtrip () =
  match Blif.parse_string blif_example with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nl -> (
    let text = Blif.to_string nl in
    match Blif.parse_string text with
    | Error e -> Alcotest.failf "reparse failed: %s" e
    | Ok nl2 ->
      Alcotest.(check int) "cells preserved" (Nl.n_cells nl) (Nl.n_cells nl2);
      Alcotest.(check bool) "structure preserved" true (signature nl = signature nl2))

let test_blif_roundtrip_generated =
  QCheck.Test.make ~name:"blif round-trips generated circuits" ~count:10
    QCheck.(pair (int_range 30 120) small_int)
    (fun (n_cells, seed) ->
      let nl = Gen.generate (Gen.default ~n_cells) ~seed in
      match Blif.parse_string (Blif.to_string nl) with
      | Error _ -> false
      | Ok nl2 -> Nl.n_cells nl = Nl.n_cells nl2 && Nl.n_nets nl = Nl.n_nets nl2)

(* --- Netlist_stats --- *)

let test_stats_tiny () =
  let nl, _, _, _, _, _ = build_tiny () in
  let stats = Spr_netlist.Netlist_stats.collect_exn nl in
  let open Spr_netlist.Netlist_stats in
  Alcotest.(check int) "cells" 5 stats.n_cells;
  Alcotest.(check int) "nets" 4 stats.n_nets;
  Alcotest.(check int) "depth" 2 stats.logic_depth;
  (* fanins: g1=1, g2=2, ff=1, po=1 -> avg 1.25 over 4 cells *)
  Alcotest.(check (float 1e-9)) "avg fanin" 1.25 stats.avg_fanin;
  (* fanouts: n_pi=1, n_g1=2, n_g2=1, n_ff=1 *)
  Alcotest.(check int) "max fanout" 2 stats.max_fanout;
  Alcotest.(check (float 1e-9)) "avg fanout" 1.25 stats.avg_fanout;
  (* depth histogram sums to the cell count *)
  Alcotest.(check int) "histogram total" 5
    (List.fold_left (fun acc (_, n) -> acc + n) 0 stats.depth_histogram)

let test_stats_presets_look_mapped () =
  (* the substitution argument: presets have MCNC-mapped-like structure *)
  List.iter
    (fun spec ->
      let nl = Circuits.make spec in
      let stats = Spr_netlist.Netlist_stats.collect_exn nl in
      let open Spr_netlist.Netlist_stats in
      Alcotest.(check bool)
        (spec.Circuits.spec_name ^ " avg fanin in [1.8, 3.5]")
        true
        (stats.avg_fanin >= 1.8 && stats.avg_fanin <= 3.5);
      Alcotest.(check bool)
        (spec.Circuits.spec_name ^ " depth in [8, 60]")
        true
        (stats.logic_depth >= 8 && stats.logic_depth <= 60);
      Alcotest.(check bool)
        (spec.Circuits.spec_name ^ " avg net terminals in [2, 6]")
        true
        (stats.avg_net_terminals >= 2.0 && stats.avg_net_terminals <= 6.0))
    Circuits.all

let test_stats_cycle_error () =
  let b = Nl.Builder.create () in
  let a = Nl.Builder.add_cell b ~name:"a" ~kind:Ck.Comb ~n_inputs:1 in
  let c = Nl.Builder.add_cell b ~name:"c" ~kind:Ck.Comb ~n_inputs:1 in
  let na = Nl.Builder.add_net b ~name:"na" ~driver:a in
  let nc = Nl.Builder.add_net b ~name:"nc" ~driver:c in
  Nl.Builder.add_sink b ~net:na ~cell:c ~pin:0;
  Nl.Builder.add_sink b ~net:nc ~cell:a ~pin:0;
  let nl = Nl.Builder.finish_exn b in
  match Spr_netlist.Netlist_stats.collect nl with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle accepted"

let () =
  Alcotest.run "spr_netlist"
    [
      ("cell_kind", [ Alcotest.test_case "predicates" `Quick test_kind_predicates ]);
      ( "pinmap",
        [
          Alcotest.test_case "palette sizes" `Quick test_palette_sizes;
          Alcotest.test_case "default all-bottom" `Quick test_palette_default_bottom;
          qtest test_palette_distinct;
        ] );
      ( "builder",
        [
          Alcotest.test_case "valid netlist" `Quick test_builder_valid;
          Alcotest.test_case "unconnected pin" `Quick test_builder_unconnected_pin;
          Alcotest.test_case "double driver" `Quick test_builder_double_driver;
          Alcotest.test_case "output driving" `Quick test_builder_output_driving;
          Alcotest.test_case "pin connected twice" `Quick test_builder_pin_connected_twice;
          Alcotest.test_case "bad pin index" `Quick test_builder_bad_pin_index;
        ] );
      ( "levelize",
        [
          Alcotest.test_case "tiny netlist levels" `Quick test_levelize_tiny;
          Alcotest.test_case "cycle detected" `Quick test_levelize_cycle_detected;
          Alcotest.test_case "ff breaks cycle" `Quick test_levelize_ff_breaks_cycle;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed changes output" `Quick test_generator_seed_changes;
          Alcotest.test_case "too small rejected" `Quick test_generator_too_small;
          qtest test_generator_counts;
          qtest test_generator_acyclic;
          qtest test_generator_levels_property;
        ] );
      ("circuits", [ Alcotest.test_case "presets" `Quick test_circuits_presets ]);
      ( "stats",
        [
          Alcotest.test_case "tiny netlist" `Quick test_stats_tiny;
          Alcotest.test_case "presets look mapped" `Quick test_stats_presets_look_mapped;
          Alcotest.test_case "cycle error" `Quick test_stats_cycle_error;
        ] );
      ( "blif",
        [
          Alcotest.test_case "parse" `Quick test_blif_parse;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          qtest test_blif_roundtrip_generated;
        ] );
    ]
