module Dm = Spr_timing.Delay_model
module Rc = Spr_timing.Rc_tree
module Nd = Spr_timing.Net_delay
module Sta = Spr_timing.Sta
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Rng = Spr_util.Rng
module J = Spr_util.Journal

let qtest = QCheck_alcotest.to_alcotest

(* --- Delay model --- *)

let test_intrinsic () =
  let dm = Dm.default in
  Alcotest.(check (float 1e-9)) "comb" dm.Dm.t_comb (Dm.intrinsic dm Spr_netlist.Cell_kind.Comb);
  Alcotest.(check (float 1e-9)) "seq" dm.Dm.t_seq (Dm.intrinsic dm Spr_netlist.Cell_kind.Seq);
  Alcotest.(check (float 1e-9)) "input" dm.Dm.t_io (Dm.intrinsic dm Spr_netlist.Cell_kind.Input);
  Alcotest.(check (float 1e-9)) "output" dm.Dm.t_io (Dm.intrinsic dm Spr_netlist.Cell_kind.Output)

(* --- RC tree / Elmore --- *)

let test_elmore_two_node () =
  (* root --R--> leaf(C): delay = R*C *)
  let t = Rc.create () in
  let root = Rc.add_node t ~cap:0.0 in
  let leaf = Rc.add_node t ~cap:2.0 in
  Rc.add_edge t root leaf ~res:3.0;
  let d = Rc.elmore t ~root in
  Alcotest.(check (float 1e-9)) "root delay 0" 0.0 d.(root);
  Alcotest.(check (float 1e-9)) "leaf delay RC" 6.0 d.(leaf)

let test_elmore_chain () =
  (* root -R1- a(C1) -R2- b(C2): d(a) = R1*(C1+C2), d(b) = d(a) + R2*C2 *)
  let t = Rc.create () in
  let root = Rc.add_node t ~cap:0.0 in
  let a = Rc.add_node t ~cap:1.0 in
  let b = Rc.add_node t ~cap:4.0 in
  Rc.add_edge t root a ~res:2.0;
  Rc.add_edge t a b ~res:3.0;
  let d = Rc.elmore t ~root in
  Alcotest.(check (float 1e-9)) "a" (2.0 *. 5.0) d.(a);
  Alcotest.(check (float 1e-9)) "b" ((2.0 *. 5.0) +. (3.0 *. 4.0)) d.(b)

let test_elmore_star () =
  (* root branches to two leaves; each branch sees only its own cap
     downstream of its own resistor, plus both caps through the shared
     (here zero) path. *)
  let t = Rc.create () in
  let root = Rc.add_node t ~cap:0.0 in
  let l1 = Rc.add_node t ~cap:1.0 in
  let l2 = Rc.add_node t ~cap:2.0 in
  Rc.add_edge t root l1 ~res:5.0;
  Rc.add_edge t root l2 ~res:7.0;
  let d = Rc.elmore t ~root in
  Alcotest.(check (float 1e-9)) "leaf1" 5.0 d.(l1);
  Alcotest.(check (float 1e-9)) "leaf2" 14.0 d.(l2)

let test_elmore_root_choice_changes_delays () =
  let t = Rc.create () in
  let a = Rc.add_node t ~cap:1.0 in
  let b = Rc.add_node t ~cap:1.0 in
  let c = Rc.add_node t ~cap:1.0 in
  Rc.add_edge t a b ~res:1.0;
  Rc.add_edge t b c ~res:1.0;
  let da = Rc.elmore t ~root:a in
  let dc = Rc.elmore t ~root:c in
  Alcotest.(check (float 1e-9)) "symmetric chain" da.(c) dc.(a)

let test_elmore_add_cap () =
  let t = Rc.create () in
  let root = Rc.add_node t ~cap:0.0 in
  let leaf = Rc.add_node t ~cap:1.0 in
  Rc.add_edge t root leaf ~res:2.0;
  Rc.add_cap t ~node:leaf ~cap:1.5;
  let d = Rc.elmore t ~root in
  Alcotest.(check (float 1e-9)) "caps accumulate" 5.0 d.(leaf)

let test_elmore_rejects_non_tree () =
  let t = Rc.create () in
  let a = Rc.add_node t ~cap:1.0 in
  let b = Rc.add_node t ~cap:1.0 in
  let c = Rc.add_node t ~cap:1.0 in
  Rc.add_edge t a b ~res:1.0;
  Rc.add_edge t b c ~res:1.0;
  Rc.add_edge t c a ~res:1.0;
  Alcotest.check_raises "cycle rejected" (Invalid_argument "Rc_tree.elmore: not a tree")
    (fun () -> ignore (Rc.elmore t ~root:a))

let test_elmore_rejects_disconnected () =
  let t = Rc.create () in
  let a = Rc.add_node t ~cap:1.0 in
  let b = Rc.add_node t ~cap:1.0 in
  let c = Rc.add_node t ~cap:1.0 in
  let d = Rc.add_node t ~cap:1.0 in
  Rc.add_edge t a b ~res:1.0;
  Rc.add_edge t c d ~res:1.0;
  (* 4 nodes, 2 edges: not a tree *)
  Alcotest.check_raises "forest rejected" (Invalid_argument "Rc_tree.elmore: not a tree")
    (fun () -> ignore (Rc.elmore t ~root:a))

let test_elmore_monotone_along_path =
  QCheck.Test.make ~name:"elmore delay grows along any root path" ~count:100
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      (* random tree: node i>0 attaches to a random earlier node *)
      let rng = Rng.create seed in
      let t = Rc.create () in
      let _ = Rc.add_node t ~cap:(Rng.float rng 2.0) in
      let parent = Array.make n 0 in
      for i = 1 to n - 1 do
        let p = Rng.int rng i in
        let node = Rc.add_node t ~cap:(Rng.float rng 2.0) in
        parent.(i) <- p;
        Rc.add_edge t p node ~res:(0.1 +. Rng.float rng 3.0)
      done;
      let d = Rc.elmore t ~root:0 in
      let ok = ref true in
      for i = 1 to n - 1 do
        if d.(i) < d.(parent.(i)) then ok := false
      done;
      !ok)

(* --- Net delay --- *)

let make_routed ?(n_cells = 80) ?(seed = 5) ?(tracks = 24) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let place = P.create_exn arch nl ~rng:(Rng.create (seed + 1)) in
  let st = Rs.create place in
  Router.route_all st;
  (st, nl)

let test_routed_delays_present () =
  let st, nl = make_routed () in
  let dm = Dm.default in
  let n_checked = ref 0 in
  for net = 0 to Nl.n_nets nl - 1 do
    if Rs.is_fully_routed st net then begin
      match Nd.routed_sink_delays dm st net with
      | None -> Alcotest.fail "embedded net has no routed delays"
      | Some d ->
        incr n_checked;
        Alcotest.(check int) "one delay per sink"
          (Array.length (Nl.net nl net).Nl.sinks)
          (Array.length d);
        Array.iter (fun x -> Alcotest.(check bool) "positive delay" true (x > 0.0)) d
    end
  done;
  Alcotest.(check bool) "checked some nets" true (!n_checked > 10)

let test_unrouted_uses_estimate () =
  let nl = Gen.generate (Gen.default ~n_cells:80) ~seed:5 in
  let arch = Arch.size_for ~tracks:24 nl in
  let place = P.create_exn arch nl ~rng:(Rng.create 6) in
  let st = Rs.create place in
  (* nothing routed: routed_sink_delays must be None, sink_delays falls
     back to the estimate *)
  let dm = Dm.default in
  for net = 0 to min 20 (Nl.n_nets nl - 1) do
    if Array.length (Nl.net nl net).Nl.sinks > 0 then begin
      Alcotest.(check bool) "no exact delays yet" true (Nd.routed_sink_delays dm st net = None);
      let d = Nd.sink_delays dm st net in
      Array.iter (fun x -> Alcotest.(check bool) "estimate positive" true (x > 0.0)) d;
      Alcotest.(check (float 1e-9)) "estimate replicated" d.(0) d.(Array.length d - 1)
    end
  done

let test_estimate_grows_with_span () =
  (* Same 2-pin net, pins progressively farther apart: the estimate must
     not decrease. *)
  let nl =
    let b = Nl.Builder.create () in
    let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Spr_netlist.Cell_kind.Input ~n_inputs:0 in
    let po = Nl.Builder.add_cell b ~name:"po" ~kind:Spr_netlist.Cell_kind.Output ~n_inputs:1 in
    let n = Nl.Builder.add_net b ~name:"n" ~driver:pi in
    Nl.Builder.add_sink b ~net:n ~cell:po ~pin:0;
    Nl.Builder.finish_exn b
  in
  let arch = Arch.create ~rows:2 ~cols:30 ~tracks:4 () in
  let place = P.create_exn arch nl ~rng:(Rng.create 1) in
  let st = Rs.create place in
  let dm = Dm.default in
  (* move po along row 0 away from pi at col 0 *)
  let slot_pi = { P.row = 0; col = 0 } in
  let move_to_origin () =
    let s = P.slot_of place 0 in
    if s <> slot_pi then P.swap_slots place s slot_pi
  in
  move_to_origin ();
  let prev = ref 0.0 in
  List.iter
    (fun col ->
      let target = { P.row = 1; col } in
      let s = P.slot_of place 1 in
      if s <> target then P.swap_slots place s target;
      let e = Nd.estimate dm st 0 in
      Alcotest.(check bool) (Printf.sprintf "estimate at col %d grows" col) true (e >= !prev);
      prev := e)
    [ 1; 5; 10; 20; 29 ]

(* --- STA --- *)

let make_sta ?(n_cells = 80) ?(seed = 5) ?(tracks = 24) () =
  let st, nl = make_routed ~n_cells ~seed ~tracks () in
  (Sta.create Dm.default st, st, nl)

let test_sta_positive_critical () =
  let sta, _, _ = make_sta () in
  Alcotest.(check bool) "critical delay positive" true (Sta.critical_delay sta > 0.0)

let test_sta_arrivals_ordering () =
  let sta, _, nl = make_sta () in
  (* arrival at a comb cell's output >= arrival at its inputs *)
  for c = 0 to Nl.n_cells nl - 1 do
    let cell = Nl.cell nl c in
    if Spr_netlist.Cell_kind.equal cell.Nl.kind Spr_netlist.Cell_kind.Comb && cell.Nl.n_inputs > 0
    then
      Alcotest.(check bool) "out after in" true (Sta.arrival_out sta c >= Sta.arrival_in sta c)
  done

let test_sta_critical_path_valid () =
  let sta, _, nl = make_sta () in
  match Sta.critical_path sta with
  | [] -> Alcotest.fail "no critical path"
  | path ->
    let first = List.hd path in
    let last = List.nth path (List.length path - 1) in
    let fc = Nl.cell nl first and lc = Nl.cell nl last in
    Alcotest.(check bool) "starts at a source" true
      (Spr_netlist.Cell_kind.is_timing_source fc.Nl.kind || fc.Nl.n_inputs = 0);
    Alcotest.(check bool) "ends at a sink" true
      (Spr_netlist.Cell_kind.is_timing_sink lc.Nl.kind);
    (* consecutive cells are actually connected *)
    let rec check_links = function
      | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "consecutive cells connected" true
          (List.mem b (Nl.fanout_cells nl a));
        check_links rest
      | [ _ ] | [] -> ()
    in
    check_links path

(* The oracle test: incremental STA must agree with a from-scratch STA
   after arbitrary rip/reroute/move sequences. *)
let test_incremental_matches_full =
  QCheck.Test.make ~name:"incremental STA equals full STA after random moves" ~count:12
    QCheck.small_int (fun seed ->
      let nl = Gen.generate (Gen.default ~n_cells:70) ~seed:(seed mod 17) in
      let arch = Arch.size_for ~tracks:20 nl in
      let place = P.create_exn arch nl ~rng:(Rng.create (seed + 1)) in
      let st = Rs.create place in
      Router.route_all st;
      let sta = Sta.create Dm.default st in
      let rng = Rng.create (seed + 99) in
      let j = J.create () in
      let ok = ref true in
      for step = 1 to 30 do
        (* random legal swap *)
        let a = P.random_occupied_slot place rng in
        let b = P.random_slot place rng in
        if a <> b && P.swap_legal place a b then begin
          P.swap_slots place a b;
          J.record j (fun () -> P.swap_slots place a b);
          let cells =
            List.filter_map (fun s -> P.cell_at place s) [ a; b ]
          in
          let ripped = List.concat_map (fun c -> Router.rip_up_cell st j c) cells in
          let routed = Router.reroute st j in
          Sta.invalidate sta j (List.sort_uniq compare (ripped @ routed));
          (* randomly commit or roll back *)
          if Rng.bool rng then J.commit j else J.rollback j
        end;
        if step mod 10 = 0 then begin
          let inc = Sta.critical_delay sta in
          let fresh_sta = Sta.create Dm.default st in
          let scratch = Sta.critical_delay fresh_sta in
          if Float.abs (inc -. scratch) > 1e-6 then ok := false
        end
      done;
      !ok)

let test_invalidate_rollback_restores_arrivals () =
  let sta, st, nl = make_sta () in
  let place = Rs.place st in
  let before = Array.init (Nl.n_cells nl) (fun c -> Sta.arrival_out sta c) in
  let crit_before = Sta.critical_delay sta in
  let j = J.create () in
  let rng = Rng.create 31 in
  for _ = 1 to 10 do
    let a = P.random_occupied_slot place rng in
    let b = P.random_slot place rng in
    if a <> b && P.swap_legal place a b then begin
      P.swap_slots place a b;
      J.record j (fun () -> P.swap_slots place a b);
      let cells = List.filter_map (fun s -> P.cell_at place s) [ a; b ] in
      let ripped = List.concat_map (fun c -> Router.rip_up_cell st j c) cells in
      let routed = Router.reroute st j in
      Sta.invalidate sta j (List.sort_uniq compare (ripped @ routed))
    end
  done;
  J.rollback j;
  Array.iteri
    (fun c v ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "arrival of cell %d restored" c) v
        (Sta.arrival_out sta c))
    before;
  Alcotest.(check (float 1e-9)) "critical restored" crit_before (Sta.critical_delay sta)

(* --- moments / AWE --- *)

let test_moments_single_pole () =
  (* one RC: m1 = RC, m2 = (RC)^2, so D2M = ln2 * RC = exact 50% delay *)
  let t = Rc.create () in
  let root = Rc.add_node t ~cap:0.0 in
  let leaf = Rc.add_node t ~cap:2.0 in
  Rc.add_edge t root leaf ~res:3.0;
  let m1, m2 = Rc.moments t ~root in
  Alcotest.(check (float 1e-9)) "m1 = RC" 6.0 m1.(leaf);
  Alcotest.(check (float 1e-9)) "m2 = (RC)^2" 36.0 m2.(leaf)

let test_moments_chain () =
  (* root -R1- a(C1) -R2- b(C2):
     m1(a) = R1*(C1+C2), m1(b) = m1(a) + R2*C2
     m2(a) = R1*(C1*m1(a) + C2*m1(b))
     m2(b) = m2(a) + R2*(C2*m1(b)) *)
  let t = Rc.create () in
  let root = Rc.add_node t ~cap:0.0 in
  let a = Rc.add_node t ~cap:1.0 in
  let b = Rc.add_node t ~cap:4.0 in
  Rc.add_edge t root a ~res:2.0;
  Rc.add_edge t a b ~res:3.0;
  let m1, m2 = Rc.moments t ~root in
  let m1a = 2.0 *. 5.0 and m1b = (2.0 *. 5.0) +. (3.0 *. 4.0) in
  Alcotest.(check (float 1e-9)) "m1 a" m1a m1.(a);
  Alcotest.(check (float 1e-9)) "m1 b" m1b m1.(b);
  let m2a = 2.0 *. ((1.0 *. m1a) +. (4.0 *. m1b)) in
  Alcotest.(check (float 1e-9)) "m2 a" m2a m2.(a);
  Alcotest.(check (float 1e-9)) "m2 b" (m2a +. (3.0 *. 4.0 *. m1b)) m2.(b)

let test_moments_m1_equals_elmore =
  QCheck.Test.make ~name:"moments m1 equals elmore on random trees" ~count:100
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let t = Rc.create () in
      let _ = Rc.add_node t ~cap:(Rng.float rng 2.0) in
      for i = 1 to n - 1 do
        let p = Rng.int rng i in
        let node = Rc.add_node t ~cap:(Rng.float rng 2.0) in
        Rc.add_edge t p node ~res:(0.1 +. Rng.float rng 3.0)
      done;
      let d = Rc.elmore t ~root:0 in
      let m1, _ = Rc.moments t ~root:0 in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) d m1)

let test_awe_agreement () =
  let st, _ = make_routed ~tracks:24 () in
  let dm = Dm.default in
  let agreement = Spr_timing.Awe.compare_with_elmore dm st in
  Alcotest.(check bool) "many sinks evaluated" true (agreement.Spr_timing.Awe.n_sinks > 50);
  (* D2M estimates the 50% delay, Elmore the first moment; for a single
     pole the ratio is exactly ln 2 = 0.693. Real nets should cluster
     tightly around that factor — tight dispersion is what certifies the
     Elmore ranking. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean ratio %.3f near ln 2" agreement.Spr_timing.Awe.mean_ratio)
    true
    (agreement.Spr_timing.Awe.mean_ratio > 0.55 && agreement.Spr_timing.Awe.mean_ratio < 0.85);
  Alcotest.(check bool) "ratio never exceeds 1" true (agreement.Spr_timing.Awe.max_ratio <= 1.0);
  Alcotest.(check bool) "dispersion bounded" true
    (agreement.Spr_timing.Awe.max_ratio -. agreement.Spr_timing.Awe.min_ratio < 0.4)

let test_awe_per_net () =
  let st, nl = make_routed ~tracks:24 () in
  let dm = Dm.default in
  for net = 0 to Nl.n_nets nl - 1 do
    match Spr_timing.Awe.routed_sink_delays dm st net with
    | None -> ()
    | Some d ->
      Array.iter (fun x -> Alcotest.(check bool) "positive d2m" true (x > 0.0)) d;
      Alcotest.(check int) "one per sink"
        (Array.length (Nl.net nl net).Nl.sinks)
        (Array.length d)
  done

(* --- path report --- *)

let test_path_report () =
  let sta, _, nl = make_sta () in
  let paths = Spr_timing.Path_report.worst_paths ~k:5 sta in
  Alcotest.(check bool) "some paths" true (List.length paths > 0 && List.length paths <= 5);
  (* worst first, arrivals non-increasing, head matches critical delay *)
  (match paths with
  | first :: _ ->
    Alcotest.(check (float 1e-9)) "head is the critical delay" (Sta.critical_delay sta)
      first.Spr_timing.Path_report.arrival_ns
  | [] -> ());
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
      a.Spr_timing.Path_report.arrival_ns >= b.Spr_timing.Path_report.arrival_ns
      && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (decreasing paths);
  List.iter
    (fun p ->
      (* each path ends at its endpoint *)
      let last = List.nth p.Spr_timing.Path_report.cells
          (List.length p.Spr_timing.Path_report.cells - 1) in
      Alcotest.(check int) "path ends at endpoint" p.Spr_timing.Path_report.endpoint last)
    paths;
  (* rendering mentions every endpoint *)
  let text = Spr_timing.Path_report.render nl paths in
  Alcotest.(check bool) "render nonempty" true (String.length text > 0)

let test_path_report_slack () =
  let sta, _, _ = make_sta () in
  let critical = Sta.critical_delay sta in
  let tight = critical *. 0.8 in
  let v = Spr_timing.Path_report.violations ~clock_period:tight sta in
  Alcotest.(check bool) "violations at a tight clock" true (List.length v > 0);
  List.iter
    (fun p ->
      match p.Spr_timing.Path_report.slack_ns with
      | Some s -> Alcotest.(check bool) "negative slack" true (s < 0.0)
      | None -> Alcotest.fail "violation without slack")
    v;
  let loose = critical *. 1.2 in
  Alcotest.(check int) "no violations at a loose clock" 0
    (List.length (Spr_timing.Path_report.violations ~clock_period:loose sta))

let () =
  Alcotest.run "spr_timing"
    [
      ("delay_model", [ Alcotest.test_case "intrinsic" `Quick test_intrinsic ]);
      ( "rc_tree",
        [
          Alcotest.test_case "two node" `Quick test_elmore_two_node;
          Alcotest.test_case "chain" `Quick test_elmore_chain;
          Alcotest.test_case "star" `Quick test_elmore_star;
          Alcotest.test_case "root symmetric" `Quick test_elmore_root_choice_changes_delays;
          Alcotest.test_case "add_cap" `Quick test_elmore_add_cap;
          Alcotest.test_case "rejects cycles" `Quick test_elmore_rejects_non_tree;
          Alcotest.test_case "rejects forests" `Quick test_elmore_rejects_disconnected;
          qtest test_elmore_monotone_along_path;
        ] );
      ( "net_delay",
        [
          Alcotest.test_case "routed delays" `Quick test_routed_delays_present;
          Alcotest.test_case "unrouted estimate" `Quick test_unrouted_uses_estimate;
          Alcotest.test_case "estimate grows with span" `Quick test_estimate_grows_with_span;
        ] );
      ( "moments",
        [
          Alcotest.test_case "single pole" `Quick test_moments_single_pole;
          Alcotest.test_case "chain" `Quick test_moments_chain;
          qtest test_moments_m1_equals_elmore;
        ] );
      ( "awe",
        [
          Alcotest.test_case "agreement with elmore" `Quick test_awe_agreement;
          Alcotest.test_case "per-net d2m" `Quick test_awe_per_net;
        ] );
      ( "path_report",
        [
          Alcotest.test_case "worst paths" `Quick test_path_report;
          Alcotest.test_case "slack and violations" `Quick test_path_report_slack;
        ] );
      ( "sta",
        [
          Alcotest.test_case "positive critical" `Quick test_sta_positive_critical;
          Alcotest.test_case "arrival ordering" `Quick test_sta_arrivals_ordering;
          Alcotest.test_case "critical path valid" `Quick test_sta_critical_path_valid;
          Alcotest.test_case "rollback restores arrivals" `Quick
            test_invalidate_rollback_restores_arrivals;
          qtest test_incremental_matches_full;
        ] );
    ]
