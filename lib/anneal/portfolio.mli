(** Multi-replica portfolio coordination for parallel annealing.

    A portfolio runs K independent replicas of the full anneal, each on
    its own domain with its own derived RNG stream and private mutable
    state. This module owns the generic coordination machinery — the
    exchange policy, the temperature-boundary barrier, and the domain
    fan-out — while the tool layer supplies the replica bodies and the
    layout capture/adoption callbacks.

    {2 Determinism contract}

    Under [Independent] exchange the coordinator never intervenes, so
    each replica's trajectory is a pure function of
    [(seed, replica_index)]. Under [Best_exchange n] a round only
    trips once {e every} active replica has either arrived at a round
    or finished, so the participant set — and therefore the broadcast
    winner — is a deterministic function of the replica trajectories,
    independent of domain scheduling. Round results can be persisted
    and replayed so that a killed-and-resumed portfolio re-serves the
    same broadcasts at the same boundaries. *)

type exchange =
  | Independent  (** replicas never communicate; pure best-of-K *)
  | Best_exchange of int
      (** every [n] temperature boundaries, replicas synchronise and
          any replica strictly worse than the portfolio best adopts
          the best replica's layout *)

val exchange_to_string : exchange -> string
(** ["independent"] or ["best:<n>"] — the CLI / run-meta spelling. *)

val exchange_of_string : string -> (exchange, string) result
(** Inverse of {!exchange_to_string}. *)

type round_result = {
  xr_round : int;  (** 1-based exchange round index *)
  xr_best_replica : int;  (** winning replica (lowest index on ties) *)
  xr_best_metric : float;  (** winner's metric at the boundary *)
  xr_payload : string;  (** winner's captured layout *)
}
(** Outcome of one tripped exchange round, exactly as broadcast. *)

type t
(** A coordinator shared by all replicas of one portfolio run. *)

val create :
  replicas:int ->
  exchange:exchange ->
  ?history:round_result list ->
  ?persist:(round_result -> unit) ->
  ?frozen:(unit -> bool) ->
  unit ->
  t
(** [create ~replicas ~exchange ()] builds a coordinator for
    [replicas] replica workers. [history] replays previously recorded
    rounds (resume): a replica arriving at a recorded round is served
    the recorded result immediately instead of waiting. [persist] is
    called exactly once per freshly tripped round, under the
    coordinator lock, before any waiter is released — write the record
    atomically there to make exchanges crash-safe. [frozen] is polled
    to freeze coordination on interrupt: once it returns [true], no
    new round trips or persists and every waiter is released without
    adoption, which guarantees that every {e recorded} round had full
    live participation (the property resume replay relies on). *)

val round_of : t -> temp_index:int -> int option
(** The exchange round due at this temperature boundary, if any.
    [Best_exchange n] trips round [i/n] at boundaries [i = n, 2n, ...];
    boundary 0 and [Independent] never exchange. *)

val sync :
  t ->
  replica:int ->
  temp_index:int ->
  metric:float ->
  capture:(unit -> string) ->
  round_result option
(** Called by replica [replica] at temperature boundary [temp_index]
    with its current best-layout [metric]. Returns immediately with
    [None] when no exchange is due. Otherwise blocks until the round
    trips (or the coordinator freezes), and returns [Some r] iff this
    replica must adopt [r.xr_payload] — that is, some other replica's
    metric was strictly better than [metric]. [capture] is invoked at
    most once, outside the coordinator lock, to serialise this
    replica's current best layout for a live round. *)

val finished : t -> replica:int -> unit
(** Deregister a replica that has stopped annealing (normally or on
    interrupt). Must be called exactly once per replica — pending
    rounds re-evaluate without it, so forgetting this deadlocks the
    remaining waiters. *)

val history : t -> round_result list
(** All rounds tripped or replayed so far, in ascending round order. *)

val run_replicas : replicas:int -> (int -> 'a) -> ('a, exn) result array
(** [run_replicas ~replicas f] runs [f 0 .. f (replicas-1)]
    concurrently — replica 0 on the calling domain, the rest on
    spawned domains — and returns their outcomes indexed by replica.
    An exception escaping [f k] is captured as [Error exn] for that
    slot; the other replicas still run to completion. *)

val worker_share : budget:int -> replicas:int -> int
(** How many route workers each replica of a [replicas]-wide portfolio
    may use from a fleet-wide pool budget of [budget] domains:
    [max 1 (budget / replicas)]. Replicas already saturate one domain
    each, so the route pools only split what remains of the declared
    budget — a K-replica portfolio at [--route-workers N] spawns at most
    [K * (N/K - 1)] extra domains. *)
