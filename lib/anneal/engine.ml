type config = {
  moves_per_temp : int;
  warmup_moves : int;
  initial_acceptance : float;
  lambda : float;
  min_alpha : float;
  max_alpha : float;
  stop_acceptance : float;
  stop_cost_tolerance : float;
  stop_patience : int;
  max_temperatures : int;
  quench_temperatures : int;
}

let default_config ~n =
  let moves = max 400 (min 30_000 (8 * n)) in
  {
    moves_per_temp = moves;
    warmup_moves = max 200 (moves / 4);
    initial_acceptance = 0.9;
    lambda = 0.7;
    min_alpha = 0.5;
    max_alpha = 0.95;
    stop_acceptance = 0.03;
    stop_cost_tolerance = 0.0015;
    stop_patience = 3;
    max_temperatures = 150;
    quench_temperatures = 2;
  }

type temp_stats = {
  temp_index : int;
  temperature : float;
  attempted : int;
  accepted : int;
  mean_cost : float;
  sigma_cost : float;
  batch_seconds : float;
}

type phase = Warmup | Cool | Quench of int

type snapshot = {
  s_config : config;
  s_phase : phase;
  s_temperature : float;
  s_temp_index : int;
  s_last_index : int;
  s_stagnant : int;
  s_prev_mean : float;
  s_batch_done : int;
  s_batch_attempted : int;
  s_batch_accepted : int;
  s_batch_samples : Spr_util.Stats.dump;
  s_uphill : Spr_util.Stats.dump;
  s_total_moves : int;
  s_total_accepted : int;
  s_initial_cost : float;
}

type report = {
  initial_cost : float;
  final_cost : float;
  n_temperatures : int;
  n_moves : int;
  n_accepted : int;
  completed : bool;
}

(* The complete schedule position as mutable working state. Everything
   here round-trips through [snapshot] so a run can be frozen between
   any two moves and continued bit-identically. *)
type live = {
  cfg : config;
  mutable phase : phase;
  mutable temperature : float;
  mutable temp_index : int;
  mutable last_index : int;  (* final cooling index, fixed on entering the quench *)
  mutable stagnant : int;
  mutable prev_mean : float;
  mutable batch_done : int;  (* loop iterations in the current batch, counting failed proposes *)
  mutable batch_attempted : int;
  mutable batch_accepted : int;
  batch_samples : Spr_util.Stats.t;
  uphill : Spr_util.Stats.t;
  mutable total_moves : int;
  mutable total_accepted : int;
  mutable initial_cost : float;
  (* Wall-clock start of the batch in progress. Informational only
     (reported in [temp_stats]), so it is NOT part of [snapshot]: a
     resumed run restarts the clock, which is the honest reading. *)
  mutable batch_start : float;
}

let fresh cfg ~initial_cost =
  {
    cfg;
    phase = Warmup;
    temperature = infinity;
    temp_index = 0;
    last_index = 0;
    stagnant = 0;
    prev_mean = 0.0;
    batch_done = 0;
    batch_attempted = 0;
    batch_accepted = 0;
    batch_samples = Spr_util.Stats.create ();
    uphill = Spr_util.Stats.create ();
    total_moves = 0;
    total_accepted = 0;
    initial_cost;
    batch_start = Spr_util.Clock.now ();
  }

let run ?config ?resume ?start_temperature ?(on_temperature = fun _ -> ())
    ?(on_checkpoint = fun ~at:_ _ -> ())
    ?(should_stop = fun ~moves:_ ~accepted:_ -> false) ~rng ~cost ~propose ~accept ~reject ~n
    () =
  let l =
    match resume with
    | Some s ->
      {
        cfg = s.s_config;
        phase = s.s_phase;
        temperature = s.s_temperature;
        temp_index = s.s_temp_index;
        last_index = s.s_last_index;
        stagnant = s.s_stagnant;
        prev_mean = s.s_prev_mean;
        batch_done = s.s_batch_done;
        batch_attempted = s.s_batch_attempted;
        batch_accepted = s.s_batch_accepted;
        batch_samples = Spr_util.Stats.restore s.s_batch_samples;
        uphill = Spr_util.Stats.restore s.s_uphill;
        total_moves = s.s_total_moves;
        total_accepted = s.s_total_accepted;
        initial_cost = s.s_initial_cost;
        batch_start = Spr_util.Clock.now ();
      }
    | None ->
      let cfg = match config with Some c -> c | None -> default_config ~n in
      let l = fresh cfg ~initial_cost:(cost ()) in
      (* A caller-supplied starting temperature (e.g. derived from a seed
         placement's cost distribution) skips the warmup walk entirely:
         cooling starts right away at [t0]. Ignored on resume, where the
         snapshot already carries the schedule position. *)
      (match start_temperature with
      | Some t0 ->
        l.phase <- Cool;
        l.temperature <- t0;
        l.temp_index <- 1
      | None -> ());
      l
  in
  let cfg = l.cfg in
  let running = ref true and stopped = ref false in
  (* One "anneal.batch" span brackets each temperature batch; opened
     lazily at the batch's first move so a resumed mid-batch run spans
     only what it executes here. *)
  let batch_open = ref false in
  let capture () =
    {
      s_config = l.cfg;
      s_phase = l.phase;
      s_temperature = l.temperature;
      s_temp_index = l.temp_index;
      s_last_index = l.last_index;
      s_stagnant = l.stagnant;
      s_prev_mean = l.prev_mean;
      s_batch_done = l.batch_done;
      s_batch_attempted = l.batch_attempted;
      s_batch_accepted = l.batch_accepted;
      s_batch_samples = Spr_util.Stats.dump l.batch_samples;
      s_uphill = Spr_util.Stats.dump l.uphill;
      s_total_moves = l.total_moves;
      s_total_accepted = l.total_accepted;
      s_initial_cost = l.initial_cost;
    }
  in
  let batch_target () =
    match l.phase with Warmup -> cfg.warmup_moves | Cool | Quench _ -> cfg.moves_per_temp
  in
  (* One annealing move, exactly as in the batched formulation:
     [infinity] accepts every move (warmup), [0.] only improvement
     (quench). *)
  let step_move () =
    let before = cost () in
    if propose rng then begin
      l.batch_attempted <- l.batch_attempted + 1;
      l.total_moves <- l.total_moves + 1;
      let after = cost () in
      let delta = after -. before in
      (match l.phase with
      | Warmup when delta > 0.0 -> Spr_util.Stats.add l.uphill delta
      | Warmup | Cool | Quench _ -> ());
      let take =
        if delta <= 0.0 then true
        else if l.temperature <= 0.0 then false
        else if l.temperature = infinity then true
        else Spr_util.Rng.float rng 1.0 < exp (-.delta /. l.temperature)
      in
      if take then begin
        accept ();
        l.batch_accepted <- l.batch_accepted + 1;
        l.total_accepted <- l.total_accepted + 1;
        Spr_util.Stats.add l.batch_samples after
      end
      else begin
        reject ();
        Spr_util.Stats.add l.batch_samples before
      end
    end;
    l.batch_done <- l.batch_done + 1
  in
  let enter_quench last_index =
    l.last_index <- last_index;
    if cfg.quench_temperatures = 0 then running := false
    else begin
      l.phase <- Quench 1;
      l.temperature <- 0.0;
      l.temp_index <- last_index + 1
    end
  in
  (* Close the batch in progress: report its statistics, then advance the
     schedule. A temperature is stagnant when almost nothing is accepted,
     or when (already in the low-acceptance regime) the mean cost has
     stopped moving. *)
  let close_batch () =
    if !batch_open then begin
      Spr_obs.Obs.span_end ();
      batch_open := false
    end;
    on_temperature
      {
        temp_index = l.temp_index;
        temperature = l.temperature;
        attempted = l.batch_attempted;
        accepted = l.batch_accepted;
        mean_cost = Spr_util.Stats.mean l.batch_samples;
        sigma_cost = Spr_util.Stats.stddev l.batch_samples;
        batch_seconds = Spr_util.Clock.now () -. l.batch_start;
      };
    (match l.phase with
    | Warmup ->
      (* Warmup measured the uphill-delta scale; derive T0 from it. *)
      let avg_uphill =
        if Spr_util.Stats.count l.uphill > 0 then Spr_util.Stats.mean l.uphill
        else Float.max 1e-9 (l.initial_cost *. 0.05)
      in
      l.phase <- Cool;
      l.temperature <- -.avg_uphill /. log cfg.initial_acceptance;
      l.temp_index <- 1
    | Cool ->
      let mean = Spr_util.Stats.mean l.batch_samples in
      let ratio =
        if l.batch_attempted = 0 then 0.0
        else float_of_int l.batch_accepted /. float_of_int l.batch_attempted
      in
      let cost_flat =
        ratio < 0.5 && l.prev_mean > 0.0
        && Float.abs (mean -. l.prev_mean) /. Float.max 1e-12 l.prev_mean
           < cfg.stop_cost_tolerance
      in
      let stagnant = if ratio < cfg.stop_acceptance || cost_flat then l.stagnant + 1 else 0 in
      l.stagnant <- stagnant;
      if stagnant >= cfg.stop_patience then enter_quench l.temp_index
      else begin
        let sigma = Spr_util.Stats.stddev l.batch_samples in
        let alpha =
          if sigma <= 0.0 then cfg.min_alpha
          else
            Float.min cfg.max_alpha
              (Float.max cfg.min_alpha (exp (-.cfg.lambda *. l.temperature /. sigma)))
        in
        l.temperature <- l.temperature *. alpha;
        l.prev_mean <- mean;
        l.temp_index <- l.temp_index + 1
      end
    | Quench q ->
      if q < cfg.quench_temperatures then begin
        l.phase <- Quench (q + 1);
        l.temp_index <- l.temp_index + 1
      end
      else running := false);
    l.batch_done <- 0;
    l.batch_attempted <- 0;
    l.batch_accepted <- 0;
    Spr_util.Stats.reset l.batch_samples;
    l.batch_start <- Spr_util.Clock.now ();
    if !running then on_checkpoint ~at:`Boundary (capture ())
  in
  while !running && not !stopped do
    (* The cooling loop gives up after [max_temperatures]; checked at
       batch starts, mirroring the original head-recursive guard. *)
    (match l.phase with
    | Cool when l.batch_done = 0 && l.temp_index > cfg.max_temperatures ->
      enter_quench (l.temp_index - 1)
    | Warmup | Cool | Quench _ -> ());
    if !running then begin
      if l.batch_done >= batch_target () then close_batch ()
      else begin
        if not !batch_open then begin
          Spr_obs.Obs.span_begin ~name:"anneal.batch";
          batch_open := true
        end;
        step_move ();
        if should_stop ~moves:l.total_moves ~accepted:l.total_accepted then stopped := true
      end
    end
  done;
  if !batch_open then Spr_obs.Obs.span_end ();
  if !stopped then on_checkpoint ~at:`Stop (capture ());
  {
    initial_cost = l.initial_cost;
    final_cost = cost ();
    n_temperatures =
      (if !stopped then l.temp_index else l.last_index + cfg.quench_temperatures);
    n_moves = l.total_moves;
    n_accepted = l.total_accepted;
    completed = not !stopped;
  }
