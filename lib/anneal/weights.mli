(** Adaptive normalization of the cost-function weights
    [Wg, Wd, Wt] of paper equation (1).

    The delay term is normalized against a running baseline so that
    [Wt * T ~ t_emphasis] regardless of circuit scale, and each unrouted
    net contributes a fixed fraction of that normalized delay cost. The
    baseline adapts between temperatures from the delays observed during
    the previous one ("the weights ... are determined adaptively at
    runtime so as to normalize the components of the cost function"). *)

type t

val create :
  ?g_per_net:float ->
  ?d_per_net:float ->
  ?t_emphasis:float ->
  initial_delay:float ->
  unit ->
  t
(** Defaults: [g_per_net = 0.04], [d_per_net = 0.02], [t_emphasis = 1.0].
    [initial_delay] seeds the delay baseline (use the starting critical
    delay; it must be positive). *)

val cost : t -> g:int -> d:int -> delay:float -> float
(** [Wg*G + Wd*D + Wt*T] under the current normalization. *)

val observe : t -> delay:float -> unit
(** Record a critical delay sample (call once per move). *)

val adapt : t -> unit
(** Recompute the delay baseline from the samples observed since the last
    call (call between temperatures); no-op when nothing was observed. *)

val wg : t -> float

val wd : t -> float

val wt : t -> float

(** {1 Persistence}

    The complete normalization state (static weights, adaptive baseline,
    in-flight delay samples) as plain data, so a resumable checkpoint
    can freeze and continue it bit-exactly mid-run. *)

type dump = {
  w_g_per_net : float;
  w_d_per_net : float;
  w_t_emphasis : float;
  w_t_base : float;
  w_samples : Spr_util.Stats.dump;
}

val dump : t -> dump

val restore : dump -> t
(** Bypasses {!create}'s validation — only feed it values produced by
    {!dump}. *)
