(** Generic simulated-annealing engine with an adaptive cooling schedule
    in the style of Huang, Romeo and Sangiovanni-Vincentelli (ICCAD'86),
    the schedule the paper adopts (§3.2).

    The engine is transaction-oriented: the client's [propose] applies a
    tentative move to its own state, the engine measures the cost change
    and either asks the client to keep it ([accept]) or to roll it back
    ([reject]).

    Schedule: the starting temperature is derived from a warmup walk that
    accepts everything — [T0 = avg uphill delta / -ln(chi0)] so the first
    real temperature accepts a fraction [chi0] of uphill moves. Each
    temperature runs a fixed move count; the decrement adapts to the cost
    landscape, [alpha = exp(-lambda * T / sigma_T)] clamped to
    [\[min_alpha, max_alpha\]], cooling fast over rough terrain and slowly
    through phase transitions. Annealing stops when the acceptance ratio
    stays below [stop_acceptance] for [stop_patience] consecutive
    temperatures, then a zero-temperature quench keeps only improving
    moves.

    {b Interruption and resume.} The schedule position is an explicit
    state machine: between any two moves the engine can be asked to stop
    (budgets, signals) and its complete position captured as a
    {!snapshot} — plain data a checkpoint can serialize. Feeding that
    snapshot back via [?resume] continues the run as if it had never
    stopped: given the same client state and the same RNG position, the
    continuation is bit-identical to the uninterrupted run. *)

type config = {
  moves_per_temp : int;
  warmup_moves : int;
  initial_acceptance : float;  (** chi0, e.g. 0.9. *)
  lambda : float;  (** Cooling aggressiveness, e.g. 0.7. *)
  min_alpha : float;
  max_alpha : float;
  stop_acceptance : float;
  stop_cost_tolerance : float;
      (** Relative mean-cost change under which a temperature counts as
          stagnant (only once acceptance has fallen below 0.5). *)
  stop_patience : int;
  max_temperatures : int;
  quench_temperatures : int;
}

val default_config : n:int -> config
(** Sized for a problem with [n] movable objects: [moves_per_temp] =
    [8 * n] bounded to [\[400, 30000\]]. *)

type temp_stats = {
  temp_index : int;
  temperature : float;
  attempted : int;
  accepted : int;
  mean_cost : float;
  sigma_cost : float;
  batch_seconds : float;
      (** Wall-clock seconds the batch took. Informational only — not
          part of {!snapshot}, so the first batch after a resume reports
          just its post-resume time. *)
}

type phase =
  | Warmup  (** Infinite-temperature walk measuring the uphill scale. *)
  | Cool  (** The adaptive cooling loop. *)
  | Quench of int  (** [q]-th zero-temperature quench batch, from 1. *)

type snapshot = {
  s_config : config;  (** Resume always uses the snapshotted config. *)
  s_phase : phase;
  s_temperature : float;
  s_temp_index : int;  (** Index of the batch in progress. *)
  s_last_index : int;  (** Final cooling index (meaningful in quench). *)
  s_stagnant : int;
  s_prev_mean : float;
  s_batch_done : int;
      (** Move-loop iterations completed in the current batch, counting
          failed proposes. *)
  s_batch_attempted : int;
  s_batch_accepted : int;
  s_batch_samples : Spr_util.Stats.dump;
  s_uphill : Spr_util.Stats.dump;
  s_total_moves : int;
  s_total_accepted : int;
  s_initial_cost : float;
}
(** The engine's complete schedule position. All floats must be
    persisted bit-exactly ({!Spr_util.Persist.float_to_hex}) for resumed
    runs to replay identically; note [s_temperature] is [infinity]
    during warmup. *)

type report = {
  initial_cost : float;
  final_cost : float;
  n_temperatures : int;
  n_moves : int;
  n_accepted : int;
  completed : bool;
      (** [false] when [should_stop] ended the run early; the final
          [`Stop] checkpoint then resumes it. *)
}

val run :
  ?config:config ->
  ?resume:snapshot ->
  ?start_temperature:float ->
  ?on_temperature:(temp_stats -> unit) ->
  ?on_checkpoint:(at:[ `Boundary | `Stop ] -> snapshot -> unit) ->
  ?should_stop:(moves:int -> accepted:int -> bool) ->
  rng:Spr_util.Rng.t ->
  cost:(unit -> float) ->
  propose:(Spr_util.Rng.t -> bool) ->
  accept:(unit -> unit) ->
  reject:(unit -> unit) ->
  n:int ->
  unit ->
  report
(** [propose] returns [false] when it could not form a move (nothing is
    applied in that case); otherwise the tentative move is already
    applied when the engine evaluates [cost]. Exactly one of [accept] or
    [reject] is then called. [on_temperature] fires after every
    temperature including the warmup (index 0) and the quenches.

    [should_stop] is polled after every completed move (the in-flight
    move always finishes, so client state is between transactions when
    the engine stops). When it returns [true] the engine calls
    [on_checkpoint ~at:`Stop] with the mid-batch position and returns
    with [completed = false].

    [on_checkpoint ~at:`Boundary] fires after every temperature
    boundary (after [on_temperature] and the schedule transition, except
    the final one) — the natural place to write a periodic checkpoint.

    [?start_temperature] skips the warmup walk: the run starts directly
    in the cooling phase at the given temperature (index 1). Use it when
    the caller already knows the uphill scale — e.g. an anneal seeded
    from an analytical placement probes the seed's cost distribution and
    starts reduced. Ignored when [?resume] is given.

    [?resume] continues from a snapshot: [config] is ignored in favor of
    the snapshot's, already-closed temperatures do not re-fire
    [on_temperature], and counters continue rather than restart. The
    client must restore its own state (cost landscape, RNG position) to
    the values at capture time. *)
