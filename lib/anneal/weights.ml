type t = {
  g_per_net : float;
  d_per_net : float;
  t_emphasis : float;
  mutable t_base : float;
  samples : Spr_util.Stats.t;
}

let create ?(g_per_net = 0.04) ?(d_per_net = 0.02) ?(t_emphasis = 1.0) ~initial_delay () =
  if initial_delay <= 0.0 then invalid_arg "Weights.create: initial_delay must be positive";
  {
    g_per_net;
    d_per_net;
    t_emphasis;
    t_base = initial_delay;
    samples = Spr_util.Stats.create ();
  }

let wg t = t.g_per_net

let wd t = t.d_per_net

let wt t = t.t_emphasis /. t.t_base

let cost t ~g ~d ~delay =
  (t.g_per_net *. float_of_int g) +. (t.d_per_net *. float_of_int d) +. (wt t *. delay)

let observe t ~delay = Spr_util.Stats.add t.samples delay

let adapt t =
  if Spr_util.Stats.count t.samples > 0 then begin
    let m = Spr_util.Stats.mean t.samples in
    if m > 0.0 then t.t_base <- m;
    Spr_util.Stats.reset t.samples
  end

type dump = {
  w_g_per_net : float;
  w_d_per_net : float;
  w_t_emphasis : float;
  w_t_base : float;
  w_samples : Spr_util.Stats.dump;
}

let dump t =
  {
    w_g_per_net = t.g_per_net;
    w_d_per_net = t.d_per_net;
    w_t_emphasis = t.t_emphasis;
    w_t_base = t.t_base;
    w_samples = Spr_util.Stats.dump t.samples;
  }

let restore d =
  {
    g_per_net = d.w_g_per_net;
    d_per_net = d.w_d_per_net;
    t_emphasis = d.w_t_emphasis;
    t_base = d.w_t_base;
    samples = Spr_util.Stats.restore d.w_samples;
  }
