(** Pluggable replica scheduling for the parallel annealing portfolio.

    A scheduler owns the fleet-level control decisions of a portfolio
    run. Each replica reports a sample of its annealing dynamics at
    every temperature boundary ({!observe}); the scheduler answers with
    a {!decision} — keep going, adopt the fleet-best layout, or be
    killed and restarted as a fork of a more promising replica.

    Two implementations:

    - {!barrier} wraps an untouched {!Portfolio.t}: the classic
      all-active exchange barrier. Decisions are exactly
      [Portfolio.sync]'s adoption broadcasts, so a barrier-scheduled
      run is bit-identical to the historical portfolio behaviour.
    - {!racing} fits a cheap online predictor ({!Predictor}) on each
      replica's recent dynamics (weight-independent metric trend plus
      acceptance trajectory) and early-kills replicas whose predicted
      terminal quality trails the fleet leader by a confidence margin.
      A killed replica's domain is immediately reallocated: it adopts
      the leader's captured layout and continues on a fresh RNG stream
      (a clone-and-perturb fork). In the default deterministic mode
      decision rounds rendezvous the active replicas (so the
      participant set — and therefore every verdict — is a pure
      function of the replica trajectories) and each deciding round is
      persisted before any replica acts on it, making racing runs
      reproducible and kill+resume ≡ uninterrupted; with [sync =
      false] replicas decide against the latest published fleet state
      without blocking, trading reproducibility for zero rendezvous.

    {2 Determinism contract (racing, deterministic mode)}

    Samples carry only masked-trace-derivable quantities (temperature
    index, the weight-independent best metric, acceptance ratio), so a
    decision round is a deterministic function of the participating
    replicas' trajectories. Rounds that kill are durably recorded
    before any waiter is released; on resume, recorded rounds replay
    their verdicts without a rendezvous, and unrecorded rounds re-trip
    live with full participation — the same invariant the exchange
    barrier relies on. *)

(** Online linear predictor over a replica's dynamics series. *)
module Predictor : sig
  type fit = {
    slope : float;  (** metric change per temperature boundary *)
    intercept : float;
    sigma : float;  (** residual standard deviation (confidence) *)
    n : int;  (** points fitted *)
  }

  val fit : (int * float) list -> fit option
  (** Ordinary least squares of metric against temperature index.
      Needs at least three points with distinct indices; returns
      [None] otherwise. *)

  val predict : fit -> at:int -> float
  (** Extrapolated metric at temperature boundary [at]. *)
end

type config = {
  replicas : int;
  warmup : int;  (** boundaries before the first decision round *)
  every : int;  (** decision round period, in temperature boundaries *)
  margin : float;
      (** kill margin, in metric units: a replica is killed when its
          predicted metric trails the leader's by more than
          [margin + sigma_replica + sigma_leader] *)
  horizon : int;  (** prediction lookahead, in boundaries *)
  sync : bool;  (** deterministic rendezvous rounds (see above) *)
}

type kill = { k_replica : int; k_stream : int }
(** One early-kill verdict: replica [k_replica] abandons its
    trajectory and forks the round leader on RNG stream [k_stream]. *)

type round_record = {
  sr_round : int;  (** 1-based decision round index *)
  sr_leader : int;  (** predicted-best replica (lowest index on ties) *)
  sr_metric : float;  (** leader's live metric at the round *)
  sr_payload : string;  (** leader's captured layout *)
  sr_kills : kill list;  (** ascending replica order *)
}
(** Outcome of one racing decision round, exactly as persisted. *)

type decision =
  | Continue  (** no intervention; keep annealing *)
  | Adopt of { round : int; from_replica : int; metric : float; payload : string }
      (** barrier broadcast: some other replica is strictly better —
          adopt its layout and continue on the same RNG stream *)
  | Kill of { round : int; from_replica : int; metric : float; payload : string; stream : int }
      (** racing early-kill: abandon this trajectory, adopt the round
          leader's layout and reseed onto fresh RNG [stream] — the
          domain is reallocated to a clone-and-perturb fork *)

type t

val barrier : Portfolio.t -> t
(** The historical all-active exchange barrier as a scheduler. Samples
    are ignored; [observe] delegates to {!Portfolio.sync} verbatim. *)

val racing :
  config ->
  ?history:round_record list ->
  ?persist:(round_record -> unit) ->
  ?frozen:(unit -> bool) ->
  unit ->
  t
(** [racing cfg ()] builds the predictive scheduler. [history] replays
    previously recorded decision rounds (resume): a replica arriving
    at a recorded round is served its verdict immediately, the stream
    allocator continues past every recorded stream, and each killed
    replica's predictor series restarts at its recorded kill round.
    [persist] is called once per freshly decided round that kills,
    under the scheduler lock, before any waiter is released. [frozen]
    freezes coordination on interrupt exactly as in {!Portfolio.create}. *)

val observe :
  t ->
  replica:int ->
  temp_index:int ->
  metric:float ->
  acceptance:float ->
  capture:(unit -> string) ->
  decision
(** Called by [replica] at every temperature boundary with its
    weight-independent best [metric] and the batch acceptance ratio.
    Appends the sample to the replica's series, then — when a decision
    round is due — blocks until the round trips (deterministic mode)
    or decides against the latest published fleet state (free mode).
    [capture] serialises this replica's layout, invoked at most once,
    outside the scheduler lock. *)

val preload : t -> replica:int -> (int * float * float) list -> unit
(** [preload t ~replica samples] seeds the replica's dynamics series
    from restored checkpoint samples ([(temp_index, metric,
    acceptance)], oldest first) so that a resumed run fits exactly the
    series the uninterrupted run would have. No-op for {!barrier}. *)

val finished : t -> replica:int -> unit
(** Deregister a replica that has stopped annealing. Must be called
    exactly once per replica, as with {!Portfolio.finished}. *)

val rounds : t -> round_record list
(** Racing decision rounds that killed at least one replica (replayed
    and fresh), ascending; [[]] for {!barrier}. Rounds with no kills
    are not reported: they are not persisted, so a resumed run would
    not see the same set. *)

val exchanges : t -> Portfolio.round_result list
(** The wrapped barrier's exchange history; [[]] for {!racing}. *)
