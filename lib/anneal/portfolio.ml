type exchange = Independent | Best_exchange of int

let exchange_to_string = function
  | Independent -> "independent"
  | Best_exchange n -> Printf.sprintf "best:%d" n

let exchange_of_string s =
  match s with
  | "independent" -> Ok Independent
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "best" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt rest with
      | Some n when n >= 1 -> Ok (Best_exchange n)
      | _ -> Error (Printf.sprintf "bad exchange period %S (want a positive integer)" rest))
    | _ -> Error (Printf.sprintf "unknown exchange policy %S (want independent or best:N)" s))

type round_result = {
  xr_round : int;
  xr_best_replica : int;
  xr_best_metric : float;
  xr_payload : string;
}

(* A replica blocked at a round, with the layout it brought along. *)
type waiter = { w_replica : int; w_round : int; w_metric : float; w_payload : string }

type t = {
  x : exchange;
  frozen : unit -> bool;
  persist : round_result -> unit;
  m : Mutex.t;
  cv : Condition.t;
  mutable active : int;  (** replicas still annealing *)
  mutable waiters : waiter list;  (** replicas blocked at a round *)
  results : (int, round_result) Hashtbl.t;  (** tripped + replayed rounds *)
}

let create ~replicas ~exchange ?(history = []) ?(persist = fun _ -> ()) ?(frozen = fun () -> false)
    () =
  if replicas < 1 then invalid_arg "Portfolio.create: replicas must be >= 1";
  let results = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace results r.xr_round r) history;
  { x = exchange; frozen; persist; m = Mutex.create (); cv = Condition.create ();
    active = replicas; waiters = []; results }

let round_of t ~temp_index =
  match t.x with
  | Independent -> None
  | Best_exchange n -> if temp_index > 0 && temp_index mod n = 0 then Some (temp_index / n) else None

(* Trip the lowest pending round once every active replica is
   accounted for. Caller holds [t.m]. When frozen, never trip — just
   wake everyone so they can bail out. *)
let try_trip t =
  if t.frozen () then Condition.broadcast t.cv
  else if t.waiters <> [] && List.length t.waiters >= t.active then begin
    let round = List.fold_left (fun acc w -> min acc w.w_round) max_int t.waiters in
    let participants = List.filter (fun w -> w.w_round = round) t.waiters in
    let best =
      List.fold_left
        (fun acc w ->
          if
            w.w_metric < acc.w_metric
            || (w.w_metric = acc.w_metric && w.w_replica < acc.w_replica)
          then w
          else acc)
        (List.hd participants) participants
    in
    let result =
      { xr_round = round; xr_best_replica = best.w_replica; xr_best_metric = best.w_metric;
        xr_payload = best.w_payload }
    in
    (* Persist before releasing anyone: a crash after this point must
       replay the very round the survivors acted on. *)
    t.persist result;
    Hashtbl.replace t.results round result;
    t.waiters <- List.filter (fun w -> w.w_round <> round) t.waiters;
    Condition.broadcast t.cv
  end

let sync t ~replica ~temp_index ~metric ~capture =
  match round_of t ~temp_index with
  | None -> None
  | Some round ->
    let adopt r =
      if r.xr_best_replica <> replica && r.xr_best_metric < metric then Some r else None
    in
    Mutex.lock t.m;
    (match Hashtbl.find_opt t.results round with
    | Some r ->
      (* Replayed (resume) or already-tripped round: serve directly. *)
      Mutex.unlock t.m;
      adopt r
    | None ->
      if t.frozen () then begin
        Mutex.unlock t.m;
        None
      end
      else begin
        (* Capture the layout outside the lock — serialisation is the
           expensive part and needs no coordination. *)
        Mutex.unlock t.m;
        let payload = capture () in
        Mutex.lock t.m;
        match Hashtbl.find_opt t.results round with
        | Some r ->
          Mutex.unlock t.m;
          adopt r
        | None ->
          t.waiters <-
            { w_replica = replica; w_round = round; w_metric = metric; w_payload = payload }
            :: t.waiters;
          try_trip t;
          let rec wait () =
            match Hashtbl.find_opt t.results round with
            | Some r ->
              Mutex.unlock t.m;
              adopt r
            | None ->
              if t.frozen () then begin
                t.waiters <- List.filter (fun w -> w.w_replica <> replica) t.waiters;
                Condition.broadcast t.cv;
                Mutex.unlock t.m;
                None
              end
              else begin
                Condition.wait t.cv t.m;
                wait ()
              end
          in
          wait ()
      end)

let finished t ~replica =
  ignore replica;
  Mutex.lock t.m;
  t.active <- t.active - 1;
  try_trip t;
  (* Wake waiters even when nothing tripped: with one fewer active
     replica the frozen check (and future trips) must re-run. *)
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let history t =
  Mutex.lock t.m;
  let rs = Hashtbl.fold (fun _ r acc -> r :: acc) t.results [] in
  Mutex.unlock t.m;
  List.sort (fun a b -> compare a.xr_round b.xr_round) rs

let run_replicas ~replicas f =
  if replicas < 1 then invalid_arg "Portfolio.run_replicas: replicas must be >= 1";
  let guard k = try Ok (f k) with e -> Error e in
  if replicas = 1 then [| guard 0 |]
  else begin
    let spawned =
      Array.init (replicas - 1) (fun i -> Domain.spawn (fun () -> guard (i + 1)))
    in
    let first = guard 0 in
    Array.append [| first |] (Array.map Domain.join spawned)
  end

let worker_share ~budget ~replicas = max 1 (budget / max 1 replicas)
