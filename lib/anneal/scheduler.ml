module Predictor = struct
  type fit = { slope : float; intercept : float; sigma : float; n : int }

  let fit pts =
    let n = List.length pts in
    if n < 3 then None
    else begin
      let nf = float_of_int n in
      let sx = List.fold_left (fun a (x, _) -> a +. float_of_int x) 0.0 pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
      let mx = sx /. nf and my = sy /. nf in
      let sxx =
        List.fold_left
          (fun a (x, _) ->
            let d = float_of_int x -. mx in
            a +. (d *. d))
          0.0 pts
      in
      if sxx <= 0.0 then None
      else begin
        let sxy =
          List.fold_left (fun a (x, y) -> a +. ((float_of_int x -. mx) *. (y -. my))) 0.0 pts
        in
        let slope = sxy /. sxx in
        let intercept = my -. (slope *. mx) in
        let ss =
          List.fold_left
            (fun a (x, y) ->
              let r = y -. (intercept +. (slope *. float_of_int x)) in
              a +. (r *. r))
            0.0 pts
        in
        let sigma = sqrt (ss /. float_of_int (n - 2)) in
        Some { slope; intercept; sigma; n }
      end
    end

  let predict f ~at = f.intercept +. (f.slope *. float_of_int at)
end

type config = {
  replicas : int;
  warmup : int;
  every : int;
  margin : float;
  horizon : int;
  sync : bool;
}

type kill = { k_replica : int; k_stream : int }

type round_record = {
  sr_round : int;
  sr_leader : int;
  sr_metric : float;
  sr_payload : string;
  sr_kills : kill list;
}

type decision =
  | Continue
  | Adopt of { round : int; from_replica : int; metric : float; payload : string }
  | Kill of { round : int; from_replica : int; metric : float; payload : string; stream : int }

(* A replica blocked at a decision round, with the layout it brought
   along (any participant may turn out to be the leader). *)
type waiter = { w_replica : int; w_round : int; w_metric : float; w_payload : string }

type racing = {
  cfg : config;
  persist : round_record -> unit;
  frozen : unit -> bool;
  m : Mutex.t;
  cv : Condition.t;
  mutable active : int;
  mutable waiters : waiter list;
  results : (int, round_record) Hashtbl.t;  (** tripped + replayed deciding rounds *)
  mutable next_stream : int;  (** fresh-fork RNG stream allocator *)
  series : (int, (int * float * float) list) Hashtbl.t;
      (** replica -> (temp_index, metric, acceptance), newest first *)
  series_start : (int, int) Hashtbl.t;
      (** replica -> temp_index of its last kill; fits use only later samples *)
  latest : (int, float * string) Hashtbl.t;
      (** free mode: replica -> last published (metric, layout) *)
  mutable free_rounds : round_record list;  (** free mode: kills, for the trace *)
}

type t = Barrier of Portfolio.t | Racing of racing

(* Fit window: recent samples only, where the cooling curve is locally
   linear — a whole-history fit would average the steep early descent
   into the tail's slope and never separate the replicas. *)
let fit_window = 16

(* A replica whose recent acceptance is still this high is mid-search:
   its metric is uninformative about terminal quality, so it can
   neither be killed nor trusted to predict. *)
let hot_acceptance = 0.5

let barrier p = Barrier p

let racing cfg ?(history = []) ?(persist = fun _ -> ()) ?(frozen = fun () -> false) () =
  if cfg.replicas < 1 then invalid_arg "Scheduler.racing: replicas must be >= 1";
  if cfg.every < 1 then invalid_arg "Scheduler.racing: every must be >= 1";
  if cfg.warmup < 0 then invalid_arg "Scheduler.racing: warmup must be >= 0";
  let results = Hashtbl.create 16 in
  let series_start = Hashtbl.create 8 in
  let next_stream = ref cfg.replicas in
  List.iter
    (fun r ->
      Hashtbl.replace results r.sr_round r;
      List.iter
        (fun k ->
          if k.k_stream >= !next_stream then next_stream := k.k_stream + 1;
          let start = r.sr_round * cfg.every in
          match Hashtbl.find_opt series_start k.k_replica with
          | Some s when s >= start -> ()
          | _ -> Hashtbl.replace series_start k.k_replica start)
        r.sr_kills)
    history;
  Racing
    {
      cfg;
      persist;
      frozen;
      m = Mutex.create ();
      cv = Condition.create ();
      active = cfg.replicas;
      waiters = [];
      results;
      next_stream = !next_stream;
      series = Hashtbl.create 8;
      series_start;
      latest = Hashtbl.create 8;
      free_rounds = [];
    }

let round_of cfg ~temp_index =
  if temp_index > cfg.warmup && temp_index mod cfg.every = 0 then Some (temp_index / cfg.every)
  else None

(* --- per-replica series (caller holds [t.m]) --- *)

let push_sample t ~replica ~temp_index ~metric ~acceptance =
  let prev = Option.value (Hashtbl.find_opt t.series replica) ~default:[] in
  Hashtbl.replace t.series replica ((temp_index, metric, acceptance) :: prev)

let post_kill_samples t replica =
  let start = Option.value (Hashtbl.find_opt t.series_start replica) ~default:0 in
  let all = Option.value (Hashtbl.find_opt t.series replica) ~default:[] in
  let rec take k = function
    | (ti, _, _) :: _ when ti <= start -> []
    | s :: rest when k > 0 -> s :: take (k - 1) rest
    | _ -> []
  in
  take fit_window all

let fit_for t replica =
  Predictor.fit (List.map (fun (ti, m, _) -> (ti, m)) (post_kill_samples t replica))

let is_hot t replica =
  match post_kill_samples t replica with
  | [] -> true
  | recent ->
    let rec take k = function s :: rest when k > 0 -> s :: take (k - 1) rest | _ -> [] in
    let last3 = take 3 recent in
    let sum = List.fold_left (fun a (_, _, acc) -> a +. acc) 0.0 last3 in
    sum /. float_of_int (List.length last3) > hot_acceptance

(* --- verdict replay ---
   Serving a kill verdict (live or replayed) restarts the replica's
   predictor series at the round boundary, so later fits describe the
   fork, not the abandoned trajectory. Caller holds [t.m]. *)

let verdict_of t r ~replica =
  match List.find_opt (fun k -> k.k_replica = replica) r.sr_kills with
  | None -> Continue
  | Some k ->
    Hashtbl.replace t.series_start replica (r.sr_round * t.cfg.every);
    Kill
      {
        round = r.sr_round;
        from_replica = r.sr_leader;
        metric = r.sr_metric;
        payload = r.sr_payload;
        stream = k.k_stream;
      }

(* --- deterministic decision rounds ---
   Rendezvous, trip, persist-before-release and freeze semantics mirror
   [Portfolio.try_trip] exactly: the participant set of a live round is
   every replica still active, so verdicts are a deterministic function
   of the replica trajectories, independent of domain scheduling. *)

let decide t ~round participants =
  let at = (round * t.cfg.every) + t.cfg.horizon in
  let fitted = List.map (fun w -> (w, fit_for t w.w_replica)) participants in
  let leader =
    let best_by f = function
      | [] -> None
      | x :: rest ->
        Some (List.fold_left (fun acc y -> if f y < f acc then y else acc) x rest)
    in
    (* Lowest replica index wins ties because participants arrive
       sorted by index below. *)
    match
      best_by
        (fun (_, fit) ->
          match fit with Some f -> Predictor.predict f ~at | None -> infinity)
        (List.filter (fun (_, fit) -> fit <> None) fitted)
    with
    | Some (w, Some f) -> (w, Some f)
    | Some (_, None) -> assert false
    | None -> (
      match best_by (fun (w : waiter) -> w.w_metric) participants with
      | Some w -> (w, None)
      | None -> assert false)
  in
  let leader_w, leader_fit = leader in
  let kills =
    match leader_fit with
    | None -> []
    | Some lf ->
      let lpred = Predictor.predict lf ~at in
      List.filter_map
        (fun (w, fit) ->
          match fit with
          | Some f
            when w.w_replica <> leader_w.w_replica
                 && (not (is_hot t w.w_replica))
                 && Predictor.predict f ~at -. lpred > t.cfg.margin +. f.sigma +. lf.sigma ->
            let stream = t.next_stream in
            t.next_stream <- stream + 1;
            Some { k_replica = w.w_replica; k_stream = stream }
          | _ -> None)
        fitted
  in
  {
    sr_round = round;
    sr_leader = leader_w.w_replica;
    sr_metric = leader_w.w_metric;
    sr_payload = leader_w.w_payload;
    sr_kills = kills;
  }

let try_trip t =
  if t.frozen () then Condition.broadcast t.cv
  else if t.waiters <> [] && List.length t.waiters >= t.active then begin
    let round = List.fold_left (fun acc w -> min acc w.w_round) max_int t.waiters in
    let participants =
      List.filter (fun w -> w.w_round = round) t.waiters
      |> List.sort (fun a b -> compare a.w_replica b.w_replica)
    in
    let r = decide t ~round participants in
    (* Persist before releasing anyone — but only rounds that kill:
       a no-kill round has no observable verdict, so a resumed fleet
       re-tripping it live reaches the same (empty) outcome. *)
    if r.sr_kills <> [] then t.persist r;
    Hashtbl.replace t.results round r;
    t.waiters <- List.filter (fun w -> w.w_round <> round) t.waiters;
    Condition.broadcast t.cv
  end

let observe_sync t ~replica ~temp_index ~metric ~capture =
  match round_of t.cfg ~temp_index with
  | None ->
    Mutex.unlock t.m;
    Continue
  | Some round -> (
    match Hashtbl.find_opt t.results round with
    | Some r ->
      (* Replayed (resume) or already-tripped round: serve directly. *)
      let d = verdict_of t r ~replica in
      Mutex.unlock t.m;
      d
    | None ->
      if t.frozen () then begin
        Mutex.unlock t.m;
        Continue
      end
      else begin
        (* Capture outside the lock — serialisation is the expensive
           part and needs no coordination. *)
        Mutex.unlock t.m;
        let payload = capture () in
        Mutex.lock t.m;
        match Hashtbl.find_opt t.results round with
        | Some r ->
          let d = verdict_of t r ~replica in
          Mutex.unlock t.m;
          d
        | None ->
          t.waiters <-
            { w_replica = replica; w_round = round; w_metric = metric; w_payload = payload }
            :: t.waiters;
          try_trip t;
          let rec wait () =
            match Hashtbl.find_opt t.results round with
            | Some r ->
              let d = verdict_of t r ~replica in
              Mutex.unlock t.m;
              d
            | None ->
              if t.frozen () then begin
                t.waiters <- List.filter (fun w -> w.w_replica <> replica) t.waiters;
                Condition.broadcast t.cv;
                Mutex.unlock t.m;
                Continue
              end
              else begin
                Condition.wait t.cv t.m;
                wait ()
              end
          in
          wait ()
      end)

(* Free mode: no rendezvous. At a decision boundary the replica
   publishes its own layout, then measures itself against the best
   prediction over whatever fleet state is currently known. Decisions
   depend on domain scheduling, so this mode is NOT reproducible — the
   price of zero blocking. *)
let observe_free t ~replica ~temp_index ~metric ~capture =
  match round_of t.cfg ~temp_index with
  | None ->
    Mutex.unlock t.m;
    Continue
  | Some round ->
    if t.frozen () then begin
      Mutex.unlock t.m;
      Continue
    end
    else begin
      Mutex.unlock t.m;
      let payload = capture () in
      Mutex.lock t.m;
      Hashtbl.replace t.latest replica (metric, payload);
      let at = temp_index + t.cfg.horizon in
      let known =
        Hashtbl.fold
          (fun rep (m, p) acc ->
            match fit_for t rep with Some f -> (rep, m, p, f) :: acc | None -> acc)
          t.latest []
      in
      let leader =
        (* Sorted ascending by replica so the lowest index wins ties. *)
        List.fold_left
          (fun acc (rep, m, p, f) ->
            let pred = Predictor.predict f ~at in
            match acc with
            | Some (_, _, _, _, lpred) when lpred <= pred -> acc
            | _ -> Some (rep, m, p, f, pred))
          None
          (List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) known)
      in
      let d =
        match (leader, fit_for t replica) with
        | Some (lrep, lm, lp, lf, lpred), Some f
          when lrep <> replica
               && (not (is_hot t replica))
               && Predictor.predict f ~at -. lpred > t.cfg.margin +. f.sigma +. lf.sigma ->
          let stream = t.next_stream in
          t.next_stream <- stream + 1;
          Hashtbl.replace t.series_start replica temp_index;
          t.free_rounds <-
            {
              sr_round = round;
              sr_leader = lrep;
              sr_metric = lm;
              sr_payload = "";
              sr_kills = [ { k_replica = replica; k_stream = stream } ];
            }
            :: t.free_rounds;
          Kill { round; from_replica = lrep; metric = lm; payload = lp; stream }
        | _ -> Continue
      in
      Mutex.unlock t.m;
      d
    end

let observe t ~replica ~temp_index ~metric ~acceptance ~capture =
  match t with
  | Barrier p -> (
    match Portfolio.sync p ~replica ~temp_index ~metric ~capture with
    | None -> Continue
    | Some r ->
      Adopt
        {
          round = r.Portfolio.xr_round;
          from_replica = r.Portfolio.xr_best_replica;
          metric = r.Portfolio.xr_best_metric;
          payload = r.Portfolio.xr_payload;
        })
  | Racing t ->
    Mutex.lock t.m;
    push_sample t ~replica ~temp_index ~metric ~acceptance;
    (* Both observers unlock on every path. *)
    if t.cfg.sync then observe_sync t ~replica ~temp_index ~metric ~capture
    else observe_free t ~replica ~temp_index ~metric ~capture

let preload t ~replica samples =
  match t with
  | Barrier _ -> ()
  | Racing t ->
    Mutex.lock t.m;
    List.iter
      (fun (temp_index, metric, acceptance) ->
        push_sample t ~replica ~temp_index ~metric ~acceptance)
      samples;
    Mutex.unlock t.m

let finished t ~replica =
  match t with
  | Barrier p -> Portfolio.finished p ~replica
  | Racing t ->
    Mutex.lock t.m;
    t.active <- t.active - 1;
    if t.cfg.sync then try_trip t;
    Condition.broadcast t.cv;
    Mutex.unlock t.m

let rounds t =
  match t with
  | Barrier _ -> []
  | Racing t ->
    Mutex.lock t.m;
    let rs =
      if t.cfg.sync then
        Hashtbl.fold (fun _ r acc -> if r.sr_kills <> [] then r :: acc else acc) t.results []
      else t.free_rounds
    in
    Mutex.unlock t.m;
    List.sort (fun a b -> compare (a.sr_round, a.sr_kills) (b.sr_round, b.sr_kills)) rs

let exchanges t = match t with Barrier p -> Portfolio.history p | Racing _ -> []
