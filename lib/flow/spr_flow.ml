module P = Spr_layout.Placement
module Rs = Spr_route.Route_state
module Sta = Spr_timing.Sta
module Tool = Spr_core.Tool
module C = Spr_core.Tool.Config
module Checkpoint = Spr_core.Checkpoint
module Trace = Spr_obs.Trace
module J = Spr_obs.Json
module Ap_place = Ap_place

type stage_record = {
  sg_name : string;
  sg_seconds : float;
  sg_detail : string;
}

type result = {
  f_place : P.t;
  f_route : Rs.t;
  f_sta : Sta.t;
  f_critical_delay : float;
  f_g : int;
  f_d : int;
  f_fully_routed : bool;
  f_stages : stage_record list;
  f_seed_temperature : float option;
  f_tool : Tool.result option;
  f_portfolio : Tool.portfolio_result option;
}

let preset_names = C.flow_preset_names

let stages_of_preset = C.flow_stages_of_preset

(* Acceptance fraction the seeded anneal opens at. The warmup-derived
   T0 targets [initial_acceptance] (0.9 by default) because a random
   placement must first melt; a wirelength-optimized seed must NOT
   melt — it starts deep in the cooling schedule instead, accepting
   only this fraction of uphill moves, which is what cuts the
   moves-to-convergence. *)
let chi_seeded = 0.05

(* --- flow-level state threaded between stages --- *)

type st = {
  mutable place : P.t option;
  mutable rs : Rs.t option;
  mutable sta : Sta.t option;
  mutable seed_temp : float option;
  mutable tool : Tool.result option;
  mutable portfolio : Tool.portfolio_result option;
  mutable stages : stage_record list;  (* reversed *)
  mutable flow_events : Trace.event list;
  mutable completed : string list;  (* reversed *)
}

let fresh_st () =
  {
    place = None;
    rs = None;
    sta = None;
    seed_temp = None;
    tool = None;
    portfolio = None;
    stages = [];
    flow_events = [];
    completed = [];
  }

let push_stage st ~name ~seconds ~detail =
  st.stages <- { sg_name = name; sg_seconds = seconds; sg_detail = detail } :: st.stages

(* Record a non-sa stage: wrap it in a [flow.<name>] span captured into
   a private memory sink (only when a trace will be assembled), and
   time it for the stage table. *)
let record_stage st ~want_events ~name f =
  let sink = if want_events then Spr_obs.Sink.memory () else Spr_obs.Sink.null in
  let watch = Spr_util.Clock.start () in
  let out =
    Spr_obs.Obs.with_recording ~sink ~replica:0 (fun () ->
        Spr_obs.Obs.span ~name:("flow." ^ name) f)
  in
  st.flow_events <- st.flow_events @ Spr_obs.Sink.events sink;
  (out, Spr_util.Clock.elapsed watch)

let stage_deadline (config : C.t) name =
  match List.assoc_opt name config.C.flow.C.stage_budgets with
  | None -> fun () -> false
  | Some budget ->
    let watch = Spr_util.Clock.start () in
    fun () -> Spr_util.Clock.elapsed watch >= budget

(* --- stage-boundary persistence ---

   [flow.json] records which stages of which preset have completed and
   the probed seed temperature (bit-exact hex); each completed stage
   leaves a v1 layout checkpoint next to it. The in-flight sa stage
   additionally rides the existing V2 snapshot machinery through
   [Tool.run_portfolio ~resume_dir]. *)

let flow_schema = "spr-flow-1"

let flow_file dir = Filename.concat dir "flow.json"

let stage_ckpt dir idx name = Filename.concat dir (Printf.sprintf "stage-%02d-%s.ckpt" idx name)

let write_flow_state ~dir ~preset st =
  let json =
    J.Obj
      [
        ("schema", J.String flow_schema);
        ("preset", J.String preset);
        ("completed", J.List (List.rev_map (fun s -> J.String s) st.completed));
        ( "seed_temperature",
          match st.seed_temp with
          | None -> J.Null
          | Some t -> J.String (Spr_util.Persist.float_to_hex t) );
      ]
  in
  Spr_util.Persist.ensure_dir dir;
  Spr_util.Persist.atomic_write (flow_file dir) (J.to_string ~indent:true json ^ "\n")

type flow_state = {
  fs_completed : string list;
  fs_seed_temp : float option;
}

let read_flow_state ~dir ~preset =
  match Spr_util.Persist.read_file (flow_file dir) with
  | Error e -> Error e
  | Ok text -> (
    match J.parse text with
    | Error e -> Error (flow_file dir ^ ": " ^ e)
    | Ok j -> (
      match J.member "schema" j |> Option.map (fun s -> J.to_str s) with
      | Some (Some s) when s = flow_schema -> (
        match J.member "preset" j |> fun o -> Option.bind o J.to_str with
        | Some p when p = preset -> (
          let completed =
            match Option.bind (J.member "completed" j) J.to_list with
            | Some l -> List.filter_map J.to_str l
            | None -> []
          in
          let seed_temp =
            match J.member "seed_temperature" j with
            | Some (J.String h) -> Spr_util.Persist.float_of_hex h
            | _ -> None
          in
          Ok { fs_completed = completed; fs_seed_temp = seed_temp })
        | Some p -> Error (Printf.sprintf "flow.json is for preset %s, not %s" p preset)
        | None -> Error "flow.json: missing preset")
      | _ -> Error "flow.json: unknown schema"))

(* Persist a completed non-final stage: its layout (an unrouted state
   when the stage only placed) plus the updated flow manifest. *)
let persist_stage ~(config : C.t) ~idx ~name st =
  match config.C.persistence.C.run_dir with
  | None -> ()
  | Some dir ->
    let rs = match st.rs with Some rs -> rs | None -> Rs.create (Option.get st.place) in
    Spr_util.Persist.ensure_dir dir;
    Checkpoint.save rs (stage_ckpt dir idx name);
    write_flow_state ~dir ~preset:config.C.flow.C.preset st

(* --- seed temperature probe ---

   The reduced starting temperature for a seeded anneal comes from the
   seed's own cost distribution: route the seed, then propose (and
   always reject) a batch of moves through a throwaway pipeline,
   measuring the uphill deltas under the same composite cost the
   anneal will use. T0 = avg_uphill / -ln(chi_seeded). Runs inline on
   one domain with a dedicated rng, so it is identical at every
   [--route-workers] setting and never perturbs the real run. *)

let probe_temperature ~(config : C.t) arch nl ~slots ~pinmaps =
  match P.create_from arch nl ~slots ~pinmaps with
  | Error _ -> None
  | Ok place ->
    let rs = Rs.create place in
    Spr_route.Router.route_all ~config:config.C.router ~passes:2 rs;
    let sta = Sta.create config.C.delay_model rs in
    let initial_delay = Float.max 1e-6 (Sta.critical_delay sta) in
    let weights =
      Spr_anneal.Weights.create ~g_per_net:config.C.weights.C.g_per_net
        ~d_per_net:config.C.weights.C.d_per_net ~t_emphasis:config.C.weights.C.t_emphasis
        ~initial_delay ()
    in
    let pipeline =
      Spr_core.Move_pipeline.create ~router:config.C.router
        ~pinmap_move_prob:config.C.moves.C.pinmap_move_prob
        ~enable_pinmap_moves:config.C.moves.C.enable_pinmap_moves
        ~max_swap_tries:config.C.moves.C.max_swap_tries ~place ~rs ~sta ~weights
        ~journal:(Spr_util.Journal.create ()) ()
    in
    let cost () =
      Spr_anneal.Weights.cost weights ~g:(Rs.g_count rs) ~d:(Rs.d_count rs)
        ~delay:(Sta.critical_delay sta)
    in
    let rng = Spr_util.Rng.create (config.C.seed lxor 0x5eed70) in
    let n = Spr_netlist.Netlist.n_cells nl in
    let moves = max 100 (min 1000 (2 * n)) in
    let uphill = ref 0.0 in
    let count = ref 0 in
    for _ = 1 to moves do
      let before = cost () in
      if Spr_core.Move_pipeline.propose pipeline rng then begin
        let after = cost () in
        if after > before then begin
          uphill := !uphill +. (after -. before);
          incr count
        end;
        Spr_core.Move_pipeline.reject pipeline
      end
    done;
    let avg =
      if !count > 0 then !uphill /. float_of_int !count
      else Float.max 1e-9 (cost () *. 0.05)
    in
    Some (-.avg /. log chi_seeded)

let seed_data place nl =
  let n = Spr_netlist.Netlist.n_cells nl in
  ( Array.init n (fun c -> P.slot_of place c),
    Array.init n (fun c -> P.pinmap_index place c) )

(* --- the stages --- *)

let run_ap st ~(config : C.t) ~want_events arch nl =
  let deadline = stage_deadline config "ap" in
  let out, seconds =
    record_stage st ~want_events ~name:"ap" (fun () ->
        let ap_config =
          {
            Ap_place.default_config with
            delay_model = config.C.delay_model;
            passes = 10;
            cg_iters = 200;
            jitter = 0.15;
            timing_passes = 0;
          }
        in
        Ap_place.run ~config:ap_config ~deadline ~seed:config.C.seed arch nl)
  in
  match out with
  | Error e -> Error (Tool.Invalid_design e)
  | Ok r -> (
    match P.create_from arch nl ~slots:r.Ap_place.ap_slots ~pinmaps:r.Ap_place.ap_pinmaps with
    | Error e -> Error (Tool.Invalid_design e)
    | Ok place ->
      st.place <- Some place;
      st.rs <- None;
      st.sta <- None;
      push_stage st ~name:"ap" ~seconds
        ~detail:(Printf.sprintf "hpwl=%.1f" r.Ap_place.ap_hpwl);
      Ok ())

(* Greedy placement: the TimberWolf-style baseline placer when starting
   from nothing (exactly the old sequential flow's first leg), a
   zero-temperature descent when a previous stage already placed. *)
let run_greedy st ~(config : C.t) ~want_events arch nl =
  let should_stop = stage_deadline config "greedy" in
  match st.place with
  | None -> (
    let out, seconds =
      record_stage st ~want_events ~name:"greedy" (fun () ->
          let place_cfg =
            {
              Spr_seq.Seq_place.default_config with
              Spr_seq.Seq_place.seed = config.C.seed;
              anneal = config.C.anneal;
            }
          in
          Spr_seq.Seq_place.run ~config:place_cfg ~should_stop arch nl)
    in
    match out with
    | Error e -> Error (Tool.Invalid_design e)
    | Ok (place, report) ->
      st.place <- Some place;
      st.rs <- None;
      st.sta <- None;
      push_stage st ~name:"greedy" ~seconds
        ~detail:
          (Printf.sprintf "anneal %d moves, hpwl=%.1f"
             report.Spr_anneal.Engine.n_moves
             (Spr_seq.Seq_place.wirelength place));
      Ok ())
  | Some place ->
    let (), seconds =
      record_stage st ~want_events ~name:"greedy" (fun () ->
          let rng = Spr_util.Rng.create (config.C.seed + 0x6EED) in
          let n = Spr_netlist.Netlist.n_cells nl in
          let moves = max 1000 (10 * n) in
          let kept = Spr_seq.Seq_place.refine ~should_stop ~rng ~moves place in
          ignore (kept : int))
    in
    st.rs <- None;
    st.sta <- None;
    push_stage st ~name:"greedy" ~seconds
      ~detail:(Printf.sprintf "descent hpwl=%.1f" (Spr_seq.Seq_place.wirelength place));
    Ok ()

let run_route st ~(config : C.t) ~want_events =
  let should_stop = stage_deadline config "route" in
  let place = Option.get st.place in
  let rs, seconds =
    record_stage st ~want_events ~name:"route" (fun () ->
        let rs = Rs.create place in
        let rng = Spr_util.Rng.create (config.C.seed + 0x5E01) in
        Spr_seq.Seq_route.run ~router:config.C.router ~improve_iters:25 ~should_stop ~rng rs;
        rs)
  in
  st.rs <- Some rs;
  st.sta <- None;
  push_stage st ~name:"route" ~seconds
    ~detail:(Printf.sprintf "G=%d D=%d" (Rs.g_count rs) (Rs.d_count rs));
  Ok ()

let run_sta st ~(config : C.t) ~want_events =
  let rs = Option.get st.rs in
  let sta, seconds =
    record_stage st ~want_events ~name:"sta" (fun () -> Sta.create config.C.delay_model rs)
  in
  st.sta <- Some sta;
  push_stage st ~name:"sta" ~seconds
    ~detail:(Printf.sprintf "critical=%.2fns" (Sta.critical_delay sta));
  Ok ()

(* The simultaneous anneal, seeded when a previous stage placed. Trace
   output is deferred: the sa sub-run records events in memory (when a
   trace was requested) and the flow assembles the final file, so the
   stage spans of the whole flow land in one [spr-trace-1] stream. *)
let run_sa st ~(config : C.t) ~(orig : C.t) ?resume_dir ~multi_stage arch nl =
  let seed =
    match st.place with Some place -> Some (seed_data place nl) | None -> None
  in
  (match seed, st.seed_temp with
  | Some (slots, pinmaps), None ->
    let (), _ =
      record_stage st ~want_events:(multi_stage && orig.C.obs.C.trace_path <> None)
        ~name:"probe" (fun () ->
          st.seed_temp <- probe_temperature ~config arch nl ~slots ~pinmaps)
    in
    (* The temperature must survive a crash inside sa: a replica that
       lost its V2 snapshots restarts the seeded anneal and must melt
       to the same schedule. *)
    (match config.C.persistence.C.run_dir with
    | Some dir -> write_flow_state ~dir ~preset:config.C.flow.C.preset st
    | None -> ())
  | _ -> ());
  let seed_place = seed in
  let start_temperature = st.seed_temp in
  (* A seeded anneal starts past the melt, so the full cooling-count
     cap (sized for melt -> freeze) would let it wander for the whole
     schedule; the tail it actually runs needs only a fraction. *)
  let config =
    match start_temperature with
    | None -> config
    | Some _ ->
      let base =
        match config.C.anneal with
        | Some a -> a
        | None -> Spr_anneal.Engine.default_config ~n:(Spr_netlist.Netlist.n_cells nl)
      in
      C.with_anneal
        {
          base with
          (* Cool faster: the cold run's tail idles at the Huang alpha
             ceiling for dozens of levels; the seeded run must reach
             freeze-out quickly. Spend fewer moves per level — past the
             melt each level is mostly refinement, and the adaptive
             stop criterion still decides the schedule length. *)
          Spr_anneal.Engine.max_alpha = 0.88;
          moves_per_temp = max 100 (base.Spr_anneal.Engine.moves_per_temp / 4);
          warmup_moves = max 50 (base.Spr_anneal.Engine.warmup_moves / 4);
          (* Smaller batches make the per-level acceptance estimate
             noisy; more patience before stopping compensates. *)
          stop_patience = 2 * base.Spr_anneal.Engine.stop_patience;
          quench_temperatures = 3 * base.Spr_anneal.Engine.quench_temperatures;
        }
        config
  in
  let sa_config =
    if multi_stage then begin
      let budgeted =
        match List.assoc_opt "sa" config.C.flow.C.stage_budgets with
        | None -> config
        | Some b ->
          let tighter =
            match config.C.budget.C.time_budget with
            | Some t -> Float.min t b
            | None -> b
          in
          C.with_time_budget tighter config
      in
      (* Strip the trace path: the flow writes the assembled trace
         itself; keep recording on so the sa events come back. *)
      {
        budgeted with
        C.obs =
          {
            budgeted.C.obs with
            C.trace_path = None;
            record = budgeted.C.obs.C.record || orig.C.obs.C.trace_path <> None;
          };
      }
    end
    else config
  in
  let watch = Spr_util.Clock.start () in
  let adopt_result (r : Tool.result) =
    st.place <- Some r.Tool.place;
    st.rs <- Some r.Tool.route;
    st.sta <- Some r.Tool.sta
  in
  let out =
    if (not multi_stage) && sa_config.C.parallel.C.replicas = 1 && resume_dir = None then
      (* The legacy single-stage path, bit-identical to [Tool.run]. *)
      match Tool.run ~config:sa_config arch nl with
      | Error e -> Error e
      | Ok r ->
        st.tool <- Some r;
        adopt_result r;
        Ok ()
    else
      match
        Tool.run_portfolio ~config:sa_config ?resume_dir ?seed_place ?start_temperature arch nl
      with
      | Error e -> Error e
      | Ok p ->
        st.portfolio <- Some p;
        adopt_result (Tool.best_result p);
        Ok ()
  in
  match out with
  | Error e -> Error e
  | Ok () ->
    let detail =
      match st.tool, st.portfolio with
      | Some r, _ ->
        Printf.sprintf "%d moves%s" r.Tool.anneal_report.Spr_anneal.Engine.n_moves
          (match start_temperature with
          | Some t -> Printf.sprintf ", seeded T0=%.4g" t
          | None -> "")
      | None, Some p ->
        let r = Tool.best_result p in
        Printf.sprintf "%d moves (best of %d)%s"
          r.Tool.anneal_report.Spr_anneal.Engine.n_moves
          (Array.length p.Tool.p_results)
          (match start_temperature with
          | Some t -> Printf.sprintf ", seeded T0=%.4g" t
          | None -> "")
      | None, None -> ""
    in
    push_stage st ~name:"sa" ~seconds:(Spr_util.Clock.elapsed watch) ~detail;
    Ok ()

(* --- resume --- *)

(* Skip the longest prefix of [stages] that a previous run completed,
   restoring the last completed stage's layout. Unloadable state means
   a fresh start (mirroring [Tool.run_portfolio]'s per-replica
   fallback): determinism replays the lost trajectory. *)
let restore ~resume_dir ~preset ~stages st nl =
  match read_flow_state ~dir:resume_dir ~preset with
  | Error _ -> 0
  | Ok fs ->
    let rec prefix i = function
      | s :: rest, c :: crest when s = c -> prefix (i + 1) (rest, crest)
      | _ -> i
    in
    let k = prefix 0 (stages, fs.fs_completed) in
    st.seed_temp <- fs.fs_seed_temp;
    if k = 0 then 0
    else begin
      let name = List.nth stages (k - 1) in
      match Checkpoint.load nl (stage_ckpt resume_dir (k - 1) name) with
      | Error _ -> 0
      | Ok rs ->
        st.place <- Some (Rs.place rs);
        st.rs <- Some rs;
        st.completed <- List.rev (List.filteri (fun i _ -> i < k) stages);
        List.iteri
          (fun i s ->
            if i < k then push_stage st ~name:s ~seconds:0.0 ~detail:"restored from checkpoint")
          stages;
        k
    end

(* --- trace assembly --- *)

let fleet ev = { Trace.ev_replica = -1; ev }

let write_flow_trace ~(orig : C.t) ~path st nl wall_seconds =
  match st.tool, st.portfolio with
  | Some r, _ ->
    let r = { r with Tool.events = st.flow_events @ r.Tool.events } in
    Trace.to_file path (Tool.trace_events ~config:orig nl r)
  | None, Some p ->
    let k = 0 in
    p.Tool.p_results.(k) <-
      {
        (p.Tool.p_results.(k)) with
        Tool.events = st.flow_events @ p.Tool.p_results.(k).Tool.events;
      };
    Trace.to_file path (Tool.portfolio_trace_events ~config:orig nl p)
  | None, None ->
    (* No sa stage ran: frame the stage spans by hand. *)
    let rs = Option.get st.rs in
    let sta = Option.get st.sta in
    let g = Rs.g_count rs and d = Rs.d_count rs in
    let delay_ns = Sta.critical_delay sta in
    let best_cost = (float_of_int (g + d) *. 1e9) +. delay_ns in
    let start =
      fleet
        (Trace.Run_start
           {
             label = Option.value orig.C.obs.C.label ~default:"run";
             seed = orig.C.seed;
             replicas = 1;
             n_cells = Spr_netlist.Netlist.n_cells nl;
             n_nets = Spr_netlist.Netlist.n_nets nl;
           })
    in
    let stop =
      fleet
        (Trace.Run_end { status = "completed"; g; d; delay_ns; best_cost; wall_seconds })
    in
    Trace.to_file path ((start :: st.flow_events) @ [ stop ])

(* --- the engine --- *)

let run ?(config = Tool.default_config) ?resume_dir arch nl =
  match C.validated config with
  | Error msg -> Error (Tool.Invalid_config msg)
  | Ok config -> (
    match Spr_netlist.Levelize.run nl with
    | Error e -> Error (Tool.Invalid_design e)
    | Ok _ -> (
      let preset = config.C.flow.C.preset in
      let stages =
        match stages_of_preset preset with
        | Ok s -> s
        | Error _ -> assert false (* validated above *)
      in
      let multi_stage = stages <> [ "sa" ] in
      let want_events = multi_stage && config.C.obs.C.trace_path <> None in
      let st = fresh_st () in
      let watch = Spr_util.Clock.start () in
      let skip =
        match resume_dir with
        | Some dir when multi_stage -> restore ~resume_dir:dir ~preset ~stages st nl
        | _ -> 0
      in
      let n_stages = List.length stages in
      let rec execute idx = function
        | [] -> Ok ()
        | stage :: rest -> (
          let outcome =
            if idx < skip then Ok ()
            else
              match stage with
              | "ap" -> run_ap st ~config ~want_events arch nl
              | "greedy" -> run_greedy st ~config ~want_events arch nl
              | "route" -> run_route st ~config ~want_events
              | "sta" -> run_sta st ~config ~want_events
              | "sa" ->
                (* Pass the resume dir through so an in-flight sa
                   continues from its V2 snapshots; a fresh sa with no
                   snapshots starts deterministically from the seed. *)
                run_sa st ~config ~orig:config ?resume_dir ~multi_stage arch nl
              | other ->
                Error (Tool.Invalid_config (Printf.sprintf "unknown flow stage %s" other))
          in
          match outcome with
          | Error e -> Error e
          | Ok () ->
            (* An interrupted sa stage (signal, stop injection, budget)
               is not complete: leaving it off the manifest makes a
               later resume re-enter it through its V2 snapshots. *)
            let stage_complete =
              stage <> "sa"
              ||
              match st.tool, st.portfolio with
              | Some r, _ -> r.Tool.status = Tool.Completed
              | None, Some p -> (Tool.best_result p).Tool.status = Tool.Completed
              | None, None -> true
            in
            if idx >= skip && stage_complete then begin
              st.completed <- stage :: st.completed;
              if multi_stage && stage <> "sa" && idx < n_stages - 1 then
                persist_stage ~config ~idx ~name:stage st
              else if multi_stage && config.C.persistence.C.run_dir <> None then
                Option.iter
                  (fun dir -> write_flow_state ~dir ~preset st)
                  config.C.persistence.C.run_dir
            end;
            execute (idx + 1) rest)
      in
      match execute 0 stages with
      | Error e -> Error e
      | Ok () ->
        let place = Option.get st.place in
        let rs = match st.rs with Some rs -> rs | None -> Rs.create place in
        let sta = match st.sta with Some s -> s | None -> Sta.create config.C.delay_model rs in
        let wall_seconds = Spr_util.Clock.elapsed watch in
        (if multi_stage then
           match config.C.obs.C.trace_path with
           | Some path -> write_flow_trace ~orig:config ~path st nl wall_seconds
           | None -> ());
        Ok
          {
            f_place = place;
            f_route = rs;
            f_sta = sta;
            f_critical_delay = Sta.critical_delay sta;
            f_g = Rs.g_count rs;
            f_d = Rs.d_count rs;
            f_fully_routed = Rs.fully_routed rs;
            f_stages = List.rev st.stages;
            f_seed_temperature = st.seed_temp;
            f_tool = st.tool;
            f_portfolio = st.portfolio;
          }))

let stage_seconds r = List.fold_left (fun acc s -> acc +. s.sg_seconds) 0.0 r.f_stages

let sa_moves r =
  match r.f_tool, r.f_portfolio with
  | Some t, _ -> t.Tool.anneal_report.Spr_anneal.Engine.n_moves
  | None, Some p -> (Tool.best_result p).Tool.anneal_report.Spr_anneal.Engine.n_moves
  | None, None -> 0

let run_exn ?config ?resume_dir arch nl =
  match run ?config ?resume_dir arch nl with
  | Ok r -> r
  | Error e -> raise (Tool.Tool_error e)
