(** The composable flow-stage engine.

    A flow is a validated list of named stages, each consuming and
    producing a layout-state snapshot:

    - [ap] — deterministic analytical seed placement (quadratic
      bound-to-bound wirelength, conjugate gradient, row legalization;
      {!Ap_place});
    - [sa] — the simultaneous place-and-route anneal
      ({!Spr_core.Tool}), seeded from the preceding placement (if any)
      at a reduced starting temperature derived from the seed's cost
      distribution;
    - [greedy] — the baseline TimberWolf-style wirelength placer when
      first, a zero-temperature greedy descent otherwise;
    - [route] — the baseline sequential router with rip-up-and-retry;
    - [sta] — a full static timing analysis of the routed state.

    The flow vocabulary, the named presets ([sa], [ap+sa],
    [ap+greedy+route], [seq]) and the validation rules live in
    {!Spr_core.Tool.Config} (the [flow] sub-record) so every entry
    point rejects bad flows up front; this module is the interpreter.
    Preset [sa] with one replica and no resume delegates verbatim to
    [Tool.run], keeping the legacy CLI path bit-identical.

    Per-stage wall-clock budgets ([Config.flow.stage_budgets]) bound
    each stage; completed stage boundaries are persisted under
    [Config.persistence.run_dir] ([flow.json] plus a v1 layout
    checkpoint per stage) so an interrupted multi-stage flow resumes at
    the last boundary, while an in-flight [sa] stage rides the existing
    V2 snapshot machinery. With [Config.obs.trace_path] set, the stage
    spans of the whole flow land in one [spr-trace-1] stream. *)

module Ap_place = Ap_place

type stage_record = {
  sg_name : string;
  sg_seconds : float;  (** Stage wall clock. *)
  sg_detail : string;  (** One-line human summary. *)
}

type result = {
  f_place : Spr_layout.Placement.t;
  f_route : Spr_route.Route_state.t;
  f_sta : Spr_timing.Sta.t;
  f_critical_delay : float;  (** ns. *)
  f_g : int;
  f_d : int;
  f_fully_routed : bool;
  f_stages : stage_record list;  (** In execution order. *)
  f_seed_temperature : float option;
      (** The probed reduced starting temperature, when a seeded [sa]
          stage ran. *)
  f_tool : Spr_core.Tool.result option;
      (** The underlying serial result when the flow was the plain
          single-stage [sa] delegation. *)
  f_portfolio : Spr_core.Tool.portfolio_result option;
      (** The underlying portfolio result when [sa] ran as (or inside)
          a fleet. *)
}

val preset_names : string list
(** The registered preset names, for help strings. *)

val stages_of_preset : string -> (string list, string) Stdlib.result
(** Re-export of {!Spr_core.Tool.Config.flow_stages_of_preset}. *)

val chi_seeded : float
(** Acceptance fraction the seeded anneal opens at; the probe derives
    the reduced T0 as [avg_uphill / -ln chi_seeded]. *)

val stage_seconds : result -> float
(** Sum of the per-stage wall clocks. *)

val sa_moves : result -> int
(** Annealing moves the [sa] stage spent (best replica's, under a
    portfolio); [0] for flows without an [sa] stage. *)

val run :
  ?config:Spr_core.Tool.config ->
  ?resume_dir:string ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  (result, Spr_core.Tool.error) Stdlib.result
(** Run [config.flow.preset]. [?resume_dir] resumes a multi-stage flow
    from its last persisted stage boundary (and an in-flight [sa] from
    its V2 snapshots); a directory holding no usable state, or state
    from a different preset, starts fresh — determinism replays the
    lost trajectory. *)

val run_exn :
  ?config:Spr_core.Tool.config ->
  ?resume_dir:string ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  result
(** @raise Spr_core.Tool.Tool_error on any error. *)
