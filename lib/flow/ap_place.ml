module P = Spr_layout.Placement
module A = Spr_arch.Arch
module N = Spr_netlist.Netlist

type config = {
  passes : int;
  cg_iters : int;
  cg_tol : float;
  jitter : float;
  timing_passes : int;
  timing_emphasis : float;
  delay_model : Spr_timing.Delay_model.t;
}

let default_config =
  {
    passes = 6;
    cg_iters = 120;
    cg_tol = 1e-6;
    jitter = 0.35;
    timing_passes = 0;
    timing_emphasis = 2.0;
    delay_model = Spr_timing.Delay_model.default;
  }

type result = {
  ap_slots : P.slot array;
  ap_pinmaps : int array;
  ap_hpwl : float;
}

(* Clockwise boundary walk from the top-left corner. Degenerate fabrics
   (one row or one column) reduce to a single sweep with no duplicate
   slots. *)
let perimeter_walk arch =
  let rows = arch.A.rows and cols = arch.A.cols in
  let acc = ref [] in
  let push row col = acc := { P.row; col } :: !acc in
  for c = 0 to cols - 1 do
    push 0 c
  done;
  for r = 1 to rows - 1 do
    push r (cols - 1)
  done;
  if rows > 1 then
    for c = cols - 2 downto 0 do
      push (rows - 1) c
    done;
  if cols > 1 then
    for r = rows - 2 downto 1 do
      push r 0
    done;
  Array.of_list (List.rev !acc)

(* Distinct cells on each net, driver first, order deterministic. *)
let net_cells nl =
  Array.map
    (fun (net : N.net) ->
      let seen = Hashtbl.create 8 in
      let cells = ref [] in
      let add c =
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          cells := c :: !cells
        end
      in
      add net.N.driver;
      Array.iter (fun (c, _pin) -> add c) net.N.sinks;
      Array.of_list (List.rev !cells))
    (N.nets nl)

(* --- sparse quadratic system over the movable cells ---

   Assembled fresh every pass: [diag]/[rhs] plus a flat edge list for
   the off-diagonal terms. A tiny center anchor regularizes cells that
   touch no net (and keeps the system positive definite). *)

type system = {
  diag : float array;
  rhs : float array;
  mutable edges : (int * int * float) list;
}

let add_edge sys a b w =
  sys.diag.(a) <- sys.diag.(a) +. w;
  sys.diag.(b) <- sys.diag.(b) +. w;
  sys.edges <- (a, b, w) :: sys.edges

let add_anchor sys a w target =
  sys.diag.(a) <- sys.diag.(a) +. w;
  sys.rhs.(a) <- sys.rhs.(a) +. (w *. target)

let matvec sys x y =
  Array.iteri (fun i d -> y.(i) <- d *. x.(i)) sys.diag;
  List.iter
    (fun (a, b, w) ->
      y.(a) <- y.(a) -. (w *. x.(b));
      y.(b) <- y.(b) -. (w *. x.(a)))
    sys.edges

let dot a b =
  let s = ref 0.0 in
  Array.iteri (fun i ai -> s := !s +. (ai *. b.(i))) a;
  !s

(* Standard conjugate gradient, warm-started from the current
   positions. Strictly sequential, so bit-deterministic. *)
let cg_solve ~iters ~tol sys x =
  let n = Array.length x in
  let ax = Array.make n 0.0 in
  matvec sys x ax;
  let r = Array.init n (fun i -> sys.rhs.(i) -. ax.(i)) in
  let p = Array.copy r in
  let ap = Array.make n 0.0 in
  let rs = ref (dot r r) in
  let b_norm = Float.max 1e-30 (dot sys.rhs sys.rhs) in
  let k = ref 0 in
  while !k < iters && !rs > tol *. tol *. b_norm do
    matvec sys p ap;
    let pap = dot p ap in
    if pap <= 0.0 then k := iters
    else begin
      let alpha = !rs /. pap in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. ap.(i))
      done;
      let rs' = dot r r in
      let beta = rs' /. !rs in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done;
      rs := rs';
      incr k
    end
  done

let b2b_eps = 0.5

(* One bound2bound pass along one axis: net edges are weighted from the
   current positions [pos] (all cells), the solve updates the movable
   entries in place. [mov_index.(cell)] is the cell's movable index or
   -1 for a fixed pad. *)
let solve_axis ~cfg ~nets ~net_weight ~mov_index ~mov_cells ~pos ~lo ~hi =
  let m = Array.length mov_cells in
  let sys = { diag = Array.make m 0.0; rhs = Array.make m 0.0; edges = [] } in
  let center = (lo +. hi) /. 2.0 in
  Array.iteri (fun i _ -> add_anchor sys i 1e-6 center) mov_cells;
  let connect w a b =
    let ia = mov_index.(a) and ib = mov_index.(b) in
    if ia >= 0 && ib >= 0 then add_edge sys ia ib w
    else if ia >= 0 then add_anchor sys ia w pos.(b)
    else if ib >= 0 then add_anchor sys ib w pos.(a)
  in
  Array.iteri
    (fun net cells ->
      let p = Array.length cells in
      if p >= 2 then begin
        let blo = ref cells.(0) and bhi = ref cells.(0) in
        Array.iter
          (fun c ->
            if pos.(c) < pos.(!blo) then blo := c;
            if pos.(c) > pos.(!bhi) then bhi := c)
          cells;
        let w0 = 2.0 *. net_weight.(net) /. float_of_int (p - 1) in
        connect (w0 /. (pos.(!bhi) -. pos.(!blo) +. b2b_eps)) !blo !bhi;
        Array.iter
          (fun c ->
            if c <> !blo && c <> !bhi then begin
              connect (w0 /. (pos.(c) -. pos.(!blo) +. b2b_eps)) c !blo;
              connect (w0 /. (pos.(!bhi) -. pos.(c) +. b2b_eps)) c !bhi
            end)
          cells
      end)
    nets;
  let x = Array.map (fun c -> pos.(c)) mov_cells in
  cg_solve ~iters:cfg.cg_iters ~tol:cfg.cg_tol sys x;
  Array.iteri (fun i c -> pos.(c) <- Float.min hi (Float.max lo x.(i))) mov_cells

(* Sorted spreading onto the row fabric: movable cells sorted by
   continuous y fill the rows in proportion to each row's free
   capacity; within a row, sorted by x, they take the free columns left
   to right. *)
let legalize arch ~pad_slot ~mov_cells ~xs ~ys =
  let rows = arch.A.rows and cols = arch.A.cols in
  let pad_here = Array.make_matrix rows cols false in
  Array.iter (function Some { P.row; col } -> pad_here.(row).(col) <- true | None -> ()) pad_slot;
  let cap =
    Array.init rows (fun r ->
        let free = ref 0 in
        for c = 0 to cols - 1 do
          if not pad_here.(r).(c) then incr free
        done;
        !free)
  in
  let total_cap = Array.fold_left ( + ) 0 cap in
  let order = Array.copy mov_cells in
  Array.sort
    (fun a b ->
      match compare ys.(a) ys.(b) with
      | 0 -> ( match compare xs.(a) xs.(b) with 0 -> compare a b | c -> c)
      | c -> c)
    order;
  let m = Array.length order in
  let row_of = Array.make m (-1) in
  let taken = ref 0 in
  let cum = ref 0 in
  Array.iteri
    (fun r cap_r ->
      cum := !cum + cap_r;
      let target = !cum * m / max 1 total_cap in
      let take = min cap_r (max 0 (target - !taken)) in
      for i = !taken to !taken + take - 1 do
        row_of.(i) <- r
      done;
      taken := !taken + take)
    cap;
  (* Rounding can strand a short tail; it carries the largest y, so it
     spills into spare capacity from the bottom row upward. *)
  if !taken < m then begin
    let used = Array.make rows 0 in
    Array.iter (fun r -> if r >= 0 then used.(r) <- used.(r) + 1) row_of;
    let r = ref (rows - 1) in
    for i = !taken to m - 1 do
      while used.(!r) >= cap.(!r) do
        decr r
      done;
      row_of.(i) <- !r;
      used.(!r) <- used.(!r) + 1
    done
  end;
  (* Within each row: occupants sorted by x take free columns left to
     right. [order] is y-sorted, so per-row grouping is a stable
     filter. *)
  let slot_of = Array.make (Array.fold_left max 0 mov_cells + 1) { P.row = 0; col = 0 } in
  for r = 0 to rows - 1 do
    let members = ref [] in
    Array.iteri (fun i c -> if row_of.(i) = r then members := c :: !members) order;
    let members =
      List.sort
        (fun a b -> match compare xs.(a) xs.(b) with 0 -> compare a b | c -> c)
        (List.rev !members)
    in
    let col = ref 0 in
    List.iter
      (fun c ->
        while pad_here.(r).(!col) do
          incr col
        done;
        slot_of.(c) <- { P.row = r; col = !col };
        incr col)
      members
  done;
  slot_of

let hpwl_of ~nets ~slots =
  let total = ref 0.0 in
  Array.iter
    (fun cells ->
      if Array.length cells >= 2 then begin
        let xlo = ref max_int and xhi = ref min_int in
        let ylo = ref max_int and yhi = ref min_int in
        Array.iter
          (fun c ->
            let { P.row; col } = slots.(c) in
            if col < !xlo then xlo := col;
            if col > !xhi then xhi := col;
            if row < !ylo then ylo := row;
            if row > !yhi then yhi := row)
          cells;
        total := !total +. float_of_int (!xhi - !xlo + (!yhi - !ylo))
      end)
    nets;
  !total

(* Quick route + STA over a legalized guess, turned into per-net
   weights [1 + emphasis * criticality]. *)
let timing_weights cfg arch nl ~slots ~pinmaps =
  match P.create_from arch nl ~slots ~pinmaps with
  | Error _ -> None
  | Ok place ->
    let rs = Spr_route.Route_state.create place in
    Spr_route.Router.route_all ~passes:1 rs;
    let sta = Spr_timing.Sta.create cfg.delay_model rs in
    let dmax = Float.max 1e-9 (Spr_timing.Sta.critical_delay sta) in
    Some
      (Array.map
         (fun (net : N.net) ->
           let crit =
             Float.min 1.0 (Float.max 0.0 (Spr_timing.Sta.arrival_out sta net.N.driver /. dmax))
           in
           1.0 +. (cfg.timing_emphasis *. crit))
         (N.nets nl))

let run ?(config = default_config) ?(deadline = fun () -> false) ~seed arch nl =
  match A.check_fits arch nl with
  | Error e -> Error e
  | Ok () ->
    let cfg = { config with passes = max 1 config.passes; cg_iters = max 1 config.cg_iters } in
    let n = N.n_cells nl in
    let rows = arch.A.rows and cols = arch.A.cols in
    let nets = net_cells nl in
    (* Pads in cell-id order spread evenly along the clockwise walk. *)
    let walk = perimeter_walk arch in
    let pads =
      Array.of_list
        (List.filter
           (fun c -> Spr_netlist.Cell_kind.is_io (N.cell nl c).N.kind)
           (List.init n Fun.id))
    in
    let np = Array.length pads in
    if np > Array.length walk then
      Error (Printf.sprintf "%d pads exceed %d perimeter slots" np (Array.length walk))
    else begin
      let pad_slot = Array.make n None in
      Array.iteri
        (fun i c -> pad_slot.(c) <- Some walk.(i * Array.length walk / max 1 np))
        pads;
      let mov_index = Array.make n (-1) in
      let mov_cells =
        Array.of_list (List.filter (fun c -> pad_slot.(c) = None) (List.init n Fun.id))
      in
      Array.iteri (fun i c -> mov_index.(c) <- i) mov_cells;
      (* Continuous positions: pads at their anchors, movable cells at
         the fabric center plus a seed-derived jitter that breaks the
         symmetry of the first bound2bound pass. *)
      let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
      let rng = Spr_util.Rng.create (seed lxor 0x41505f) in
      let jit () = cfg.jitter *. ((2.0 *. Spr_util.Rng.float rng 1.0) -. 1.0) in
      for c = 0 to n - 1 do
        match pad_slot.(c) with
        | Some { P.row; col } ->
          xs.(c) <- float_of_int col;
          ys.(c) <- float_of_int row
        | None ->
          xs.(c) <- (float_of_int (cols - 1) /. 2.0) +. jit ();
          ys.(c) <- (float_of_int (rows - 1) /. 2.0) +. jit ()
      done;
      let net_weight = Array.make (N.n_nets nl) 1.0 in
      let solve_passes k =
        let pass = ref 0 in
        while !pass < k && not (deadline ()) do
          incr pass;
          solve_axis ~cfg ~nets ~net_weight ~mov_index ~mov_cells ~pos:xs ~lo:0.0
            ~hi:(float_of_int (cols - 1));
          solve_axis ~cfg ~nets ~net_weight ~mov_index ~mov_cells ~pos:ys ~lo:0.0
            ~hi:(float_of_int (rows - 1))
        done
      in
      solve_passes cfg.passes;
      let finish () =
        let mov_slot = legalize arch ~pad_slot ~mov_cells ~xs ~ys in
        let slots =
          Array.init n (fun c ->
              match pad_slot.(c) with Some s -> s | None -> mov_slot.(c))
        in
        (slots, Array.make n 0)
      in
      let slots, pinmaps = finish () in
      let slots, pinmaps =
        if cfg.timing_passes <= 0 || deadline () then (slots, pinmaps)
        else
          match timing_weights cfg arch nl ~slots ~pinmaps with
          | None -> (slots, pinmaps)
          | Some weights ->
            Array.blit weights 0 net_weight 0 (Array.length weights);
            solve_passes cfg.timing_passes;
            finish ()
      in
      Ok { ap_slots = slots; ap_pinmaps = pinmaps; ap_hpwl = hpwl_of ~nets ~slots }
    end
