(** Deterministic analytical seed placement.

    A quadratic wirelength placer in the bound2bound tradition
    (Spindler et al., and the analytical stages of OpenPARF /
    FPGA-CAD-Framework flows): I/O pads are anchored on a canonical
    clockwise perimeter walk, every multi-terminal net is decomposed
    into bound2bound two-pin edges whose weights are refreshed from the
    current positions between passes, each pass solves the two
    independent normal systems (one per axis) by conjugate gradient,
    and the final continuous positions are legalized onto the row
    fabric by sorted spreading (cells sorted by [y] fill rows in
    proportion to their free capacity; within a row, sorted by [x]
    left to right).

    Everything is a deterministic function of [(arch, netlist, seed)] —
    the only randomness is a seed-derived jitter that breaks the
    symmetry of the all-cells-at-center start — so the same inputs
    yield a bit-identical placement on every run and at every
    [--route-workers] setting.

    Optionally ([timing_passes > 0]) the placer routes its first
    legalized guess quickly, runs a static timing analysis, reweights
    every net by its driver's criticality, and re-solves — pulling
    timing-critical nets shorter at the cost of extra work. *)

type config = {
  passes : int;  (** Outer bound2bound reweighting passes (>= 1). *)
  cg_iters : int;  (** Conjugate-gradient iteration cap per solve. *)
  cg_tol : float;  (** Relative residual at which CG stops early. *)
  jitter : float;
      (** Half-width (in slot units) of the deterministic symmetry-
          breaking jitter around the fabric center. *)
  timing_passes : int;
      (** Extra solve passes under STA-derived net weights; [0] (the
          default) skips the quick route + STA entirely. *)
  timing_emphasis : float;
      (** Weight multiplier at criticality 1: a net's weight becomes
          [1 + timing_emphasis * criticality]. *)
  delay_model : Spr_timing.Delay_model.t;  (** For the quick STA. *)
}

val default_config : config

type result = {
  ap_slots : Spr_layout.Placement.slot array;  (** Indexed by cell id. *)
  ap_pinmaps : int array;  (** All zero — pinmaps are the anneal's job. *)
  ap_hpwl : float;
      (** Half-perimeter wirelength of the legalized placement, for
          reporting. *)
}

val run :
  ?config:config ->
  ?deadline:(unit -> bool) ->
  seed:int ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  (result, string) Stdlib.result
(** Fails when the netlist does not fit the fabric. [?deadline] is
    polled between outer passes; when it fires the current positions
    are legalized and returned (the result is then still deterministic
    only if the deadline fires deterministically — budgeted runs trade
    reproducibility for the bound, exactly like the anneal's own time
    budget). *)
