(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms.

    Metrics are registered once (get-or-create by name) and then updated
    through direct cell mutation — a hot-path increment is one store, so
    instrumented code costs the same as a bare mutable record field.
    A registry snapshot lists every metric in registration order, which
    keeps exported metric dumps deterministic for a deterministic
    program.

    Registries are single-domain; in a parallel portfolio each replica
    owns its own registry and the coordinator merges them afterwards
    with {!absorb} — recording never takes a lock. *)

type t
(** A registry. *)

type counter
(** Monotonic integer tally. *)

type gauge
(** Float cell; the move pipeline uses gauges for accumulated seconds. *)

type histogram
(** Fixed-bucket histogram: bucket [i] counts observations [<=
    bounds.(i)] (first matching bound), the final implicit bucket counts
    the overflow. *)

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if the name is registered
    as a different metric kind. *)

val gauge : t -> string -> gauge

val histogram : t -> bounds:float array -> string -> histogram
(** [bounds] must be non-empty and strictly increasing; a get of an
    existing histogram checks that the bounds match. *)

(** {1 Hot-path updates} *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val counter_set : counter -> int -> unit
(** Overwrite — for mirroring an externally-maintained tally into the
    registry at export time. *)

val gauge_add : gauge -> float -> unit

val gauge_set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val histogram_total : histogram -> int

(** {1 Export and merge} *)

type value =
  | Count of int
  | Value of float
  | Buckets of { bounds : float array; counts : int array }
      (** [counts] has one more entry than [bounds] (the overflow
          bucket). *)

val snapshot : t -> (string * value) list
(** Every metric in registration order. *)

val absorb : t -> t -> unit
(** [absorb t other] folds every metric of [other] into [t] by name,
    registering missing ones (at the tail, in [other]'s order).
    Counters and gauges add; histograms add bucket-wise (bounds must
    match). [other] is left untouched. *)
