(** Event sinks.

    A sink is where one recording domain's events go. The [null] sink
    makes every recording call a no-op (instrumented code pays only a
    branch), a [memory] sink buffers events in order. Each portfolio
    replica records into its own memory sink on its own domain — no
    locks — and the coordinator drains the buffers afterwards with
    {!events}. *)

type t

val null : t

val memory : unit -> t

val stream : (Trace.event -> unit) -> t
(** A memory sink that additionally hands every event to the callback
    synchronously as it is emitted — the live per-job sink of the
    service layer, which forwards events to a subscribed client while
    the buffered copy still feeds the end-of-run trace assembly. The
    callback runs on the emitting domain: when several replicas share
    one callback it must do its own locking. Exceptions it raises
    propagate to the instrumentation point, so callbacks that can fail
    (sockets, pipes) should swallow their own errors. *)

val enabled : t -> bool
(** [false] for {!null} — the guard instrumentation checks before
    reading the clock. *)

val emit : t -> Trace.event -> unit

val events : t -> Trace.event list
(** Buffered events in emission order ([[]] for {!null}). *)
