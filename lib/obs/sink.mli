(** Event sinks.

    A sink is where one recording domain's events go. The [null] sink
    makes every recording call a no-op (instrumented code pays only a
    branch), a [memory] sink buffers events in order. Each portfolio
    replica records into its own memory sink on its own domain — no
    locks — and the coordinator drains the buffers afterwards with
    {!events}. *)

type t

val null : t

val memory : unit -> t

val enabled : t -> bool
(** [false] for {!null} — the guard instrumentation checks before
    reading the clock. *)

val emit : t -> Trace.event -> unit

val events : t -> Trace.event list
(** Buffered events in emission order ([[]] for {!null}). *)
