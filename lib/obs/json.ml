type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal form that parses back to the same bits; traces stay
   readable without sacrificing bit-exact round-trips. *)
let float_repr f =
  if f <> f then "null"
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else begin
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else begin
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
    end
  end

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

exception Parse_error of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, got %c" c got)
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub text !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = text.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape"
               else begin
                 let hex = String.sub text !pos 4 in
                 pos := !pos + 4;
                 match int_of_string_opt ("0x" ^ hex) with
                 | None -> fail "bad \\u escape"
                 | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
                 | Some code when code < 0x800 ->
                   (* 2-byte UTF-8 *)
                   Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                 | Some code ->
                   Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                   Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end
             | c -> fail (Printf.sprintf "bad escape \\%c" c)
           end);
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
    if not is_float then (
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with Some f -> Float f | None -> fail ("bad number " ^ s)))
    else
      match float_of_string_opt s with Some f -> Float f | None -> fail ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "json: %s at offset %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some Float.nan
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List l -> Some l | _ -> None
