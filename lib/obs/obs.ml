type ctx = {
  sink : Sink.t;
  replica : int;
  t0 : float;
  mutable stack : (string * float) list;  (* open spans, innermost first *)
}

let key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get key with
  | Some c when Sink.enabled c.sink -> Some c
  | _ -> None

let recording () = current () <> None

let with_recording ~sink ~replica f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some { sink; replica; t0 = Spr_util.Clock.now (); stack = [] });
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let emit payload =
  match current () with
  | None -> ()
  | Some c -> Sink.emit c.sink { Trace.ev_replica = c.replica; ev = payload }

let span_begin ~name =
  match current () with
  | None -> ()
  | Some c ->
    let now = Spr_util.Clock.now () in
    let depth = List.length c.stack in
    Sink.emit c.sink
      { Trace.ev_replica = c.replica; ev = Trace.Span_begin { name; depth; t = now -. c.t0 } };
    c.stack <- (name, now) :: c.stack

let span_end () =
  match current () with
  | None -> ()
  | Some c -> (
    match c.stack with
    | [] -> ()
    | (name, t_open) :: rest ->
      c.stack <- rest;
      let now = Spr_util.Clock.now () in
      Sink.emit c.sink
        {
          Trace.ev_replica = c.replica;
          ev =
            Trace.Span_end
              { name; depth = List.length rest; t = now -. c.t0; dt = now -. t_open };
        })

let span ~name f =
  match current () with
  | None -> f ()
  | Some _ ->
    span_begin ~name;
    Fun.protect ~finally:span_end f
