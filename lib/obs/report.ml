let schema_version = "spr-report-1"

type dyn_row = {
  dr_temp_index : int;
  dr_temperature : float;
  dr_pct_cells : float;
  dr_pct_g_unrouted : float;
  dr_pct_unrouted : float;
  dr_acceptance : float;
  dr_cost : float;
  dr_delay_ns : float;
  dr_phase_seconds : (string * float) list;
}

type phase_row = { ph_name : string; ph_seconds : float; ph_calls : int }

type pipeline = {
  pl_moves : int;
  pl_null_moves : int;
  pl_accepts : int;
  pl_rejects : int;
  pl_ripped_nets : int;
  pl_retimed_nets : int;
  pl_total_seconds : float;
  pl_phases : phase_row list;
  pl_global_attempts : int;
  pl_global_routed : int;
  pl_detail_attempts : int;
  pl_detail_routed : int;
}

type channel_row = {
  ch_index : int;
  ch_used_len : int;
  ch_total_len : int;
  ch_used_segments : int;
  ch_total_segments : int;
}

type route_summary = {
  rt_routed_nets : int;
  rt_unrouted_nets : int;
  rt_h_wirelength : int;
  rt_v_wirelength : int;
  rt_h_antifuses : int;
  rt_v_antifuses : int;
  rt_x_antifuses : int;
  rt_vertical_used : int;
  rt_vertical_total : int;
  rt_channels : channel_row list;
}

let total_antifuses rt = rt.rt_h_antifuses + rt.rt_v_antifuses + rt.rt_x_antifuses

type t = {
  r_label : string;
  r_seed : int;
  r_replicas : int;
  r_status : string;
  r_fully_routed : bool;
  r_g_unrouted : int;
  r_d_unrouted : int;
  r_critical_delay_ns : float;
  r_best_cost : float;
  r_initial_cost : float;
  r_final_cost : float;
  r_moves : int;
  r_temperatures : int;
  r_exchange_rounds : int;
  r_cpu_seconds : float;
  r_wall_seconds : float;
  r_pipeline : pipeline option;
  r_route : route_summary option;
  r_dynamics : dyn_row list;
  r_metrics : (string * Metrics.value) list;
}

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)

open Json

let dyn_row_to_json r =
  Obj
    [
      ("temp_index", Int r.dr_temp_index);
      ("temperature", Float r.dr_temperature);
      ("pct_cells_perturbed", Float r.dr_pct_cells);
      ("pct_g_unrouted", Float r.dr_pct_g_unrouted);
      ("pct_unrouted", Float r.dr_pct_unrouted);
      ("acceptance", Float r.dr_acceptance);
      ("cost", Float r.dr_cost);
      ("critical_delay_ns", Float r.dr_delay_ns);
      ("phase_seconds", Obj (List.map (fun (k, v) -> (k, Float v)) r.dr_phase_seconds));
    ]

let metrics_to_json ms =
  Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Metrics.Count n -> Obj [ ("kind", String "counter"); ("value", Int n) ]
           | Metrics.Value x -> Obj [ ("kind", String "gauge"); ("value", Float x) ]
           | Metrics.Buckets { bounds; counts } ->
             Obj
               [
                 ("kind", String "histogram");
                 ("bounds", List (Array.to_list (Array.map (fun b -> Float b) bounds)));
                 ("counts", List (Array.to_list (Array.map (fun c -> Int c) counts)));
               ] ))
       ms)

let phase_row_to_json p =
  Obj [ ("name", String p.ph_name); ("seconds", Float p.ph_seconds); ("calls", Int p.ph_calls) ]

let pipeline_to_json p =
  Obj
    [
      ("moves", Int p.pl_moves);
      ("null_moves", Int p.pl_null_moves);
      ("accepts", Int p.pl_accepts);
      ("rejects", Int p.pl_rejects);
      ("ripped_nets", Int p.pl_ripped_nets);
      ("retimed_nets", Int p.pl_retimed_nets);
      ("total_seconds", Float p.pl_total_seconds);
      ("phases", List (List.map phase_row_to_json p.pl_phases));
      ("global_attempts", Int p.pl_global_attempts);
      ("global_routed", Int p.pl_global_routed);
      ("detail_attempts", Int p.pl_detail_attempts);
      ("detail_routed", Int p.pl_detail_routed);
    ]

let channel_to_json c =
  Obj
    [
      ("channel", Int c.ch_index);
      ("used_len", Int c.ch_used_len);
      ("total_len", Int c.ch_total_len);
      ("used_segments", Int c.ch_used_segments);
      ("total_segments", Int c.ch_total_segments);
    ]

let route_to_json r =
  Obj
    [
      ("routed_nets", Int r.rt_routed_nets);
      ("unrouted_nets", Int r.rt_unrouted_nets);
      ("h_wirelength", Int r.rt_h_wirelength);
      ("v_wirelength", Int r.rt_v_wirelength);
      ("h_antifuses", Int r.rt_h_antifuses);
      ("v_antifuses", Int r.rt_v_antifuses);
      ("x_antifuses", Int r.rt_x_antifuses);
      ("vertical_used", Int r.rt_vertical_used);
      ("vertical_total", Int r.rt_vertical_total);
      ("channels", List (List.map channel_to_json r.rt_channels));
    ]

let to_json t =
  Obj
    [
      ("schema", String schema_version);
      ("label", String t.r_label);
      ("seed", Int t.r_seed);
      ("replicas", Int t.r_replicas);
      ("status", String t.r_status);
      ("fully_routed", Bool t.r_fully_routed);
      ("g_unrouted", Int t.r_g_unrouted);
      ("d_unrouted", Int t.r_d_unrouted);
      ("critical_delay_ns", Float t.r_critical_delay_ns);
      ("best_cost", Float t.r_best_cost);
      ("initial_cost", Float t.r_initial_cost);
      ("final_cost", Float t.r_final_cost);
      ("moves", Int t.r_moves);
      ("temperatures", Int t.r_temperatures);
      ("exchange_rounds", Int t.r_exchange_rounds);
      ("cpu_seconds", Float t.r_cpu_seconds);
      ("wall_seconds", Float t.r_wall_seconds);
      ("pipeline", (match t.r_pipeline with None -> Null | Some p -> pipeline_to_json p));
      ("route", (match t.r_route with None -> Null | Some r -> route_to_json r));
      ("dynamics", List (List.map dyn_row_to_json t.r_dynamics));
      ("metrics", metrics_to_json t.r_metrics);
    ]

(* ------------------------------------------------------------------ *)
(* JSON decoding                                                       *)

exception Decode of string

let get obj name =
  match member name obj with Some v -> v | None -> raise (Decode ("missing field " ^ name))

let dint obj name =
  match to_int (get obj name) with
  | Some i -> i
  | None -> raise (Decode ("field " ^ name ^ ": expected int"))

let dfloat obj name =
  match to_float (get obj name) with
  | Some f -> f
  | None -> raise (Decode ("field " ^ name ^ ": expected number"))

let dstr obj name =
  match to_str (get obj name) with
  | Some s -> s
  | None -> raise (Decode ("field " ^ name ^ ": expected string"))

let dbool obj name =
  match to_bool (get obj name) with
  | Some b -> b
  | None -> raise (Decode ("field " ^ name ^ ": expected bool"))

let dlist obj name =
  match to_list (get obj name) with
  | Some l -> l
  | None -> raise (Decode ("field " ^ name ^ ": expected list"))

let dfields obj name =
  match get obj name with
  | Obj fields -> fields
  | _ -> raise (Decode ("field " ^ name ^ ": expected object"))

let dyn_row_decode j =
  {
    dr_temp_index = dint j "temp_index";
    dr_temperature = dfloat j "temperature";
    dr_pct_cells = dfloat j "pct_cells_perturbed";
    dr_pct_g_unrouted = dfloat j "pct_g_unrouted";
    dr_pct_unrouted = dfloat j "pct_unrouted";
    dr_acceptance = dfloat j "acceptance";
    dr_cost = dfloat j "cost";
    dr_delay_ns = dfloat j "critical_delay_ns";
    dr_phase_seconds =
      List.map
        (fun (k, v) ->
          match to_float v with
          | Some f -> (k, f)
          | None -> raise (Decode ("phase_seconds." ^ k ^ ": expected number")))
        (dfields j "phase_seconds");
  }

let dyn_row_of_json j =
  match dyn_row_decode j with r -> Ok r | exception Decode msg -> Error msg

let metrics_decode j =
  match j with
  | Obj fields ->
    List.map
      (fun (name, v) ->
        let value =
          match to_str (get v "kind") with
          | Some "counter" -> Metrics.Count (dint v "value")
          | Some "gauge" -> Metrics.Value (dfloat v "value")
          | Some "histogram" ->
            let arr conv field =
              Array.of_list
                (List.map
                   (fun x ->
                     match conv x with
                     | Some y -> y
                     | None -> raise (Decode ("metric " ^ name ^ ": bad " ^ field)))
                   (dlist v field))
            in
            Metrics.Buckets { bounds = arr to_float "bounds"; counts = arr to_int "counts" }
          | _ -> raise (Decode ("metric " ^ name ^ ": unknown kind"))
        in
        (name, value))
      fields
  | _ -> raise (Decode "metrics: expected object")

let metrics_of_json j =
  match metrics_decode j with ms -> Ok ms | exception Decode msg -> Error msg

let phase_row_decode j =
  { ph_name = dstr j "name"; ph_seconds = dfloat j "seconds"; ph_calls = dint j "calls" }

let pipeline_decode j =
  {
    pl_moves = dint j "moves";
    pl_null_moves = dint j "null_moves";
    pl_accepts = dint j "accepts";
    pl_rejects = dint j "rejects";
    pl_ripped_nets = dint j "ripped_nets";
    pl_retimed_nets = dint j "retimed_nets";
    pl_total_seconds = dfloat j "total_seconds";
    pl_phases = List.map phase_row_decode (dlist j "phases");
    pl_global_attempts = dint j "global_attempts";
    pl_global_routed = dint j "global_routed";
    pl_detail_attempts = dint j "detail_attempts";
    pl_detail_routed = dint j "detail_routed";
  }

let channel_decode j =
  {
    ch_index = dint j "channel";
    ch_used_len = dint j "used_len";
    ch_total_len = dint j "total_len";
    ch_used_segments = dint j "used_segments";
    ch_total_segments = dint j "total_segments";
  }

let route_decode j =
  {
    rt_routed_nets = dint j "routed_nets";
    rt_unrouted_nets = dint j "unrouted_nets";
    rt_h_wirelength = dint j "h_wirelength";
    rt_v_wirelength = dint j "v_wirelength";
    rt_h_antifuses = dint j "h_antifuses";
    rt_v_antifuses = dint j "v_antifuses";
    rt_x_antifuses = dint j "x_antifuses";
    rt_vertical_used = dint j "vertical_used";
    rt_vertical_total = dint j "vertical_total";
    rt_channels = List.map channel_decode (dlist j "channels");
  }

let of_json j =
  match
    let schema = dstr j "schema" in
    if schema <> schema_version then raise (Decode ("unknown report schema " ^ schema));
    {
      r_label = dstr j "label";
      r_seed = dint j "seed";
      r_replicas = dint j "replicas";
      r_status = dstr j "status";
      r_fully_routed = dbool j "fully_routed";
      r_g_unrouted = dint j "g_unrouted";
      r_d_unrouted = dint j "d_unrouted";
      r_critical_delay_ns = dfloat j "critical_delay_ns";
      r_best_cost = dfloat j "best_cost";
      r_initial_cost = dfloat j "initial_cost";
      r_final_cost = dfloat j "final_cost";
      r_moves = dint j "moves";
      r_temperatures = dint j "temperatures";
      r_exchange_rounds = dint j "exchange_rounds";
      r_cpu_seconds = dfloat j "cpu_seconds";
      r_wall_seconds = dfloat j "wall_seconds";
      r_pipeline = (match get j "pipeline" with Null -> None | p -> Some (pipeline_decode p));
      r_route = (match get j "route" with Null -> None | r -> Some (route_decode r));
      r_dynamics = List.map dyn_row_decode (dlist j "dynamics");
      r_metrics = metrics_decode (get j "metrics");
    }
  with
  | t -> Ok t
  | exception Decode msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Rendering — the one copy of the dynamics-table columns.             *)

let render_dynamics ppf rows =
  Format.fprintf ppf "%4s  %12s  %8s  %8s  %8s  %6s  %10s@."
    "temp" "T" "%cells" "%G-unrt" "%unrt" "acc" "delay(ns)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%4d  %12.5g  %8.1f  %8.1f  %8.1f  %6.2f  %10.2f@."
        r.dr_temp_index r.dr_temperature r.dr_pct_cells r.dr_pct_g_unrouted r.dr_pct_unrouted
        r.dr_acceptance r.dr_delay_ns)
    rows

let render_phase_series ppf ~phase_names rows =
  Format.fprintf ppf "%4s" "temp";
  List.iter (fun name -> Format.fprintf ppf "  %14s" (name ^ "(ms)")) phase_names;
  Format.fprintf ppf "@.";
  let n = List.length phase_names in
  List.iter
    (fun r ->
      if List.length r.dr_phase_seconds = n then begin
        Format.fprintf ppf "%4d" r.dr_temp_index;
        List.iter (fun (_, sec) -> Format.fprintf ppf "  %14.3f" (sec *. 1e3)) r.dr_phase_seconds;
        Format.fprintf ppf "@."
      end)
    rows

let pp_summary ppf t =
  Format.fprintf ppf "run %s: seed %d, %d replica%s, %s@." t.r_label t.r_seed t.r_replicas
    (if t.r_replicas = 1 then "" else "s")
    t.r_status;
  Format.fprintf ppf "routing: %s (%d globally unrouted, %d unrouted)@."
    (if t.r_fully_routed then "complete" else "incomplete")
    t.r_g_unrouted t.r_d_unrouted;
  Format.fprintf ppf "critical delay %.2f ns, best cost %.4g (initial %.4g, final %.4g)@."
    t.r_critical_delay_ns t.r_best_cost t.r_initial_cost t.r_final_cost;
  Format.fprintf ppf "%d moves over %d temperatures" t.r_moves t.r_temperatures;
  if t.r_exchange_rounds > 0 then
    Format.fprintf ppf ", %d exchange rounds" t.r_exchange_rounds;
  Format.fprintf ppf "; %.2f s cpu, %.2f s wall@." t.r_cpu_seconds t.r_wall_seconds
