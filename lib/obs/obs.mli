(** Ambient recording context: spans and event emission.

    The context lives in domain-local storage, so each portfolio
    replica (one domain each) records into its own sink without locks
    or plumbing — instrumented code calls {!span} / {!emit} and the
    events land in whatever sink {!with_recording} installed on that
    domain. When no recording is active (or the sink is the null sink)
    every call is a strict no-op that never reads the clock, keeping
    the move kernel's cost unchanged with tracing off.

    Span timestamps are seconds since the recording started (from the
    monotonic-guarded {!Spr_util.Clock}); nesting depth is tracked
    automatically. *)

val with_recording : sink:Sink.t -> replica:int -> (unit -> 'a) -> 'a
(** Install a recording context on the current domain for the duration
    of the thunk (restoring any previous context afterwards). Events
    are tagged with [replica]. *)

val recording : unit -> bool
(** Is a live (non-null) sink installed on this domain? *)

val span : name:string -> (unit -> 'a) -> 'a
(** Bracket the thunk in a span (exception-safe). *)

val span_begin : name:string -> unit
(** Open a span by hand — for brackets that cannot wrap a closure,
    like the annealer's batch loop. Pair with {!span_end}. *)

val span_end : unit -> unit
(** Close the innermost open span. No-op if none is open. *)

val emit : Trace.payload -> unit
(** Emit an event tagged with the current replica. *)
