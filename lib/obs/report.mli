(** The unified, versioned run report: one record holding what
    [Route_stats], [Profile], and [Dynamics] used to expose through
    three ad-hoc channels. [Tool.run] and [Tool.run_portfolio] return
    one of these; the CLI writes it as [report.json] (the machine twin
    of the ASCII tables) and every ASCII table is re-rendered from it
    with the shared renderers below. *)

val schema_version : string
(** ["spr-report-1"]. *)

(** {1 Dynamics rows} *)

type dyn_row = {
  dr_temp_index : int;
  dr_temperature : float;
  dr_pct_cells : float;  (** % of cells perturbed at this temperature *)
  dr_pct_g_unrouted : float;  (** % of nets globally unrouted *)
  dr_pct_unrouted : float;  (** % of nets unrouted altogether *)
  dr_acceptance : float;
  dr_cost : float;
  dr_delay_ns : float;
  dr_phase_seconds : (string * float) list;
      (** Move-pipeline seconds per phase (pipeline order); [[]] for
          rows recorded without profiling. *)
}

(** {1 Move-pipeline summary} *)

type phase_row = { ph_name : string; ph_seconds : float; ph_calls : int }

type pipeline = {
  pl_moves : int;
  pl_null_moves : int;
  pl_accepts : int;
  pl_rejects : int;
  pl_ripped_nets : int;
  pl_retimed_nets : int;
  pl_total_seconds : float;
  pl_phases : phase_row list;  (** pipeline order *)
  pl_global_attempts : int;
  pl_global_routed : int;
  pl_detail_attempts : int;
  pl_detail_routed : int;
}

(** {1 Routing summary} *)

type channel_row = {
  ch_index : int;
  ch_used_len : int;
  ch_total_len : int;
  ch_used_segments : int;
  ch_total_segments : int;
}

type route_summary = {
  rt_routed_nets : int;
  rt_unrouted_nets : int;
  rt_h_wirelength : int;
  rt_v_wirelength : int;
  rt_h_antifuses : int;
  rt_v_antifuses : int;
  rt_x_antifuses : int;
  rt_vertical_used : int;
  rt_vertical_total : int;
  rt_channels : channel_row list;
}

val total_antifuses : route_summary -> int

(** {1 The report} *)

type t = {
  r_label : string;  (** circuit / run label *)
  r_seed : int;
  r_replicas : int;  (** 1 for a serial run *)
  r_status : string;  (** [Outcome.status_to_string] *)
  r_fully_routed : bool;
  r_g_unrouted : int;  (** nets without a global route *)
  r_d_unrouted : int;  (** nets without a detail route *)
  r_critical_delay_ns : float;
  r_best_cost : float;
  r_initial_cost : float;
  r_final_cost : float;
  r_moves : int;
  r_temperatures : int;
  r_exchange_rounds : int;  (** 0 for a serial run *)
  r_cpu_seconds : float;  (** summed across replicas *)
  r_wall_seconds : float;  (** elapsed; equals cpu for a serial run *)
  r_pipeline : pipeline option;  (** [None] when profiling was off *)
  r_route : route_summary option;
  r_dynamics : dyn_row list;
  r_metrics : (string * Metrics.value) list;
      (** Registry snapshot (merged across replicas). *)
}

(** {1 JSON} *)

val to_json : t -> Json.t
(** Carries [schema_version] in a ["schema"] field. *)

val of_json : Json.t -> (t, string) Stdlib.result
(** Rejects unknown schema versions. *)

val dyn_row_to_json : dyn_row -> Json.t

val dyn_row_of_json : Json.t -> (dyn_row, string) Stdlib.result

val metrics_to_json : (string * Metrics.value) list -> Json.t

val metrics_of_json : Json.t -> ((string * Metrics.value) list, string) Stdlib.result

(** {1 Rendering}

    The single source of truth for the dynamics-table columns; the
    legacy [Dynamics.pp_series]/[pp_phase_series] and the bench /
    experiment tables all delegate here. *)

val render_dynamics : Format.formatter -> dyn_row list -> unit
(** The Figure-6 series as an aligned text table. *)

val render_phase_series :
  Format.formatter -> phase_names:string list -> dyn_row list -> unit
(** Per-temperature per-phase move-pipeline milliseconds, one column
    per name in [phase_names]; rows without a full set of phase times
    are skipped. *)

val pp_summary : Format.formatter -> t -> unit
(** Compact human-readable run summary (used by [spr report]). *)
