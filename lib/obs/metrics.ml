type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = { h_bounds : float array; h_counts : int array; mutable h_total : int }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let register t name metric =
  Hashtbl.replace t.tbl name metric;
  t.order <- name :: t.order

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " already registered as another kind")

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = { c = 0 } in
    register t name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = { g = 0.0 } in
    register t name (Gauge g);
    g

let check_bounds name bounds =
  if Array.length bounds = 0 then invalid_arg ("Metrics: " ^ name ^ ": empty histogram bounds");
  for i = 1 to Array.length bounds - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg ("Metrics: " ^ name ^ ": histogram bounds must be strictly increasing")
  done

let histogram t ~bounds name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) ->
    if h.h_bounds <> bounds then
      invalid_arg ("Metrics: " ^ name ^ " already registered with different bounds");
    h
  | Some _ -> kind_error name
  | None ->
    check_bounds name bounds;
    let h =
      { h_bounds = Array.copy bounds; h_counts = Array.make (Array.length bounds + 1) 0; h_total = 0 }
    in
    register t name (Histogram h);
    h

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let counter_value c = c.c

let counter_set c n = c.c <- n

let gauge_add g dv = g.g <- g.g +. dv

let gauge_set g v = g.g <- v

let gauge_value g = g.g

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_total <- h.h_total + 1

let histogram_total h = h.h_total

type value =
  | Count of int
  | Value of float
  | Buckets of { bounds : float array; counts : int array }

let value_of = function
  | Counter c -> Count c.c
  | Gauge g -> Value g.g
  | Histogram h -> Buckets { bounds = Array.copy h.h_bounds; counts = Array.copy h.h_counts }

let snapshot t =
  List.rev_map (fun name -> (name, value_of (Hashtbl.find t.tbl name))) t.order

let absorb t other =
  (* fold every metric of [other] into [t] by name, registering on
     demand so a merged registry covers the union. *)
  List.iter
    (fun name ->
      match Hashtbl.find other.tbl name with
      | Counter oc -> add (counter t name) oc.c
      | Gauge og -> gauge_add (gauge t name) og.g
      | Histogram oh ->
        let h = histogram t ~bounds:oh.h_bounds name in
        Array.iteri (fun i n -> h.h_counts.(i) <- h.h_counts.(i) + n) oh.h_counts;
        h.h_total <- h.h_total + oh.h_total)
    (List.rev other.order)
