(** The one bench-artifact emitter: every BENCH_*.json the repo writes
    (kernels, portfolio, route-parallel, flows, serve, racing) goes
    through {!write}, so they all share one versioned envelope and a
    reader never has to guess which fields exist.

    Envelope shape ([spr-bench-1]):

    {v
    { "schema": "spr-bench-1",
      "bench":  "<bench name>",
      "effort": "quick|standard|thorough",
      "cores":  <recommended domain count>,
      "commit": "<git HEAD hash, or "unknown">",
      ...bench-specific payload fields... }
    v}

    [cores] makes throughput numbers honest on time-sliced boxes, and
    [commit] pins before/after comparisons to the tree they measured. *)

val schema_version : string
(** ["spr-bench-1"]. *)

val commit : unit -> string
(** The current git HEAD commit hash, resolved by reading [.git/HEAD]
    (and, for symbolic refs, the ref file or [.git/packed-refs]) —
    no subprocess. ["unknown"] when the walk fails: not a git checkout,
    an unborn branch, or an unreadable file. *)

val payload : bench:string -> effort:string -> (string * Json.t) list -> Json.t
(** The envelope with the payload fields appended, as one flat object.
    Payload keys must not collide with the envelope's
    ([schema]/[bench]/[effort]/[cores]/[commit]). *)

val write : path:string -> bench:string -> effort:string -> (string * Json.t) list -> unit
(** Atomically write {!payload} to [path], indented, newline-terminated. *)
