let schema_version = "spr-trace-1"

type payload =
  | Run_start of { label : string; seed : int; replicas : int; n_cells : int; n_nets : int }
  | Span_begin of { name : string; depth : int; t : float }
  | Span_end of { name : string; depth : int; t : float; dt : float }
  | Temp of Report.dyn_row
  | Exchange of { round : int; from_replica : int; metric : float }
  | Sched_kill of { round : int; replica : int; leader : int; metric : float }
  | Sched_clone of { round : int; replica : int; from_replica : int; stream : int }
  | Metrics_dump of (string * Metrics.value) list
  | Replica_end of {
      status : string;
      g : int;
      d : int;
      delay_ns : float;
      best_cost : float;
    }
  | Run_end of {
      status : string;
      g : int;
      d : int;
      delay_ns : float;
      best_cost : float;
      wall_seconds : float;
    }

type event = { ev_replica : int; ev : payload }

open Json

let event_to_json { ev_replica; ev } =
  let base kind rest = Obj (("ev", String kind) :: ("replica", Int ev_replica) :: rest) in
  match ev with
  | Run_start { label; seed; replicas; n_cells; n_nets } ->
    Obj
      [
        ("ev", String "run_start");
        ("schema", String schema_version);
        ("replica", Int ev_replica);
        ("label", String label);
        ("seed", Int seed);
        ("replicas", Int replicas);
        ("n_cells", Int n_cells);
        ("n_nets", Int n_nets);
      ]
  | Span_begin { name; depth; t } ->
    base "span_begin" [ ("name", String name); ("depth", Int depth); ("t", Float t) ]
  | Span_end { name; depth; t; dt } ->
    base "span_end"
      [ ("name", String name); ("depth", Int depth); ("t", Float t); ("dt", Float dt) ]
  | Temp row -> base "temp" [ ("row", Report.dyn_row_to_json row) ]
  | Exchange { round; from_replica; metric } ->
    base "exchange"
      [ ("round", Int round); ("from", Int from_replica); ("metric", Float metric) ]
  | Sched_kill { round; replica; leader; metric } ->
    base "sched.kill"
      [
        ("round", Int round);
        ("killed", Int replica);
        ("leader", Int leader);
        ("metric", Float metric);
      ]
  | Sched_clone { round; replica; from_replica; stream } ->
    base "sched.clone"
      [
        ("round", Int round);
        ("cloned", Int replica);
        ("from", Int from_replica);
        ("stream", Int stream);
      ]
  | Metrics_dump ms -> base "metrics" [ ("metrics", Report.metrics_to_json ms) ]
  | Replica_end { status; g; d; delay_ns; best_cost } ->
    base "replica_end"
      [
        ("status", String status);
        ("g_unrouted", Int g);
        ("d_unrouted", Int d);
        ("delay_ns", Float delay_ns);
        ("best_cost", Float best_cost);
      ]
  | Run_end { status; g; d; delay_ns; best_cost; wall_seconds } ->
    base "run_end"
      [
        ("status", String status);
        ("g_unrouted", Int g);
        ("d_unrouted", Int d);
        ("delay_ns", Float delay_ns);
        ("best_cost", Float best_cost);
        ("wall_seconds", Float wall_seconds);
      ]

exception Decode of string

let get j name =
  match member name j with Some v -> v | None -> raise (Decode ("missing field " ^ name))

let dint j name =
  match to_int (get j name) with
  | Some i -> i
  | None -> raise (Decode ("field " ^ name ^ ": expected int"))

let dfloat j name =
  match to_float (get j name) with
  | Some f -> f
  | None -> raise (Decode ("field " ^ name ^ ": expected number"))

let dstr j name =
  match to_str (get j name) with
  | Some s -> s
  | None -> raise (Decode ("field " ^ name ^ ": expected string"))

let fail_result = function Ok v -> v | Error msg -> raise (Decode msg)

let event_of_json j =
  match
    let replica = dint j "replica" in
    let ev =
      match dstr j "ev" with
      | "run_start" ->
        let schema = dstr j "schema" in
        if schema <> schema_version then raise (Decode ("unknown trace schema " ^ schema));
        Run_start
          {
            label = dstr j "label";
            seed = dint j "seed";
            replicas = dint j "replicas";
            n_cells = dint j "n_cells";
            n_nets = dint j "n_nets";
          }
      | "span_begin" -> Span_begin { name = dstr j "name"; depth = dint j "depth"; t = dfloat j "t" }
      | "span_end" ->
        Span_end
          { name = dstr j "name"; depth = dint j "depth"; t = dfloat j "t"; dt = dfloat j "dt" }
      | "temp" -> Temp (fail_result (Report.dyn_row_of_json (get j "row")))
      | "exchange" ->
        Exchange { round = dint j "round"; from_replica = dint j "from"; metric = dfloat j "metric" }
      | "sched.kill" ->
        Sched_kill
          {
            round = dint j "round";
            replica = dint j "killed";
            leader = dint j "leader";
            metric = dfloat j "metric";
          }
      | "sched.clone" ->
        Sched_clone
          {
            round = dint j "round";
            replica = dint j "cloned";
            from_replica = dint j "from";
            stream = dint j "stream";
          }
      | "metrics" -> Metrics_dump (fail_result (Report.metrics_of_json (get j "metrics")))
      | "replica_end" ->
        Replica_end
          {
            status = dstr j "status";
            g = dint j "g_unrouted";
            d = dint j "d_unrouted";
            delay_ns = dfloat j "delay_ns";
            best_cost = dfloat j "best_cost";
          }
      | "run_end" ->
        Run_end
          {
            status = dstr j "status";
            g = dint j "g_unrouted";
            d = dint j "d_unrouted";
            delay_ns = dfloat j "delay_ns";
            best_cost = dfloat j "best_cost";
            wall_seconds = dfloat j "wall_seconds";
          }
      | kind -> raise (Decode ("unknown event kind " ^ kind))
    in
    { ev_replica = replica; ev }
  with
  | ev -> Ok ev
  | exception Decode msg -> Error msg
  (* Adversarial input must produce a structured error, never a raise:
     a field decoder surprised by a shape the Decode guards above did
     not anticipate is a diagnostic, not a crash. *)
  | exception exn -> Error ("malformed event: " ^ Printexc.to_string exn)

let encode_line ev = to_string (event_to_json ev)

let decode_line line =
  match parse line with Error e -> Error e | Ok j -> event_of_json j

let mask_times { ev_replica; ev } =
  let ev =
    match ev with
    | Span_begin s -> Span_begin { s with t = 0.0 }
    | Span_end s -> Span_end { s with t = 0.0; dt = 0.0 }
    | Temp row ->
      Temp
        {
          row with
          Report.dr_phase_seconds =
            List.map (fun (k, _) -> (k, 0.0)) row.Report.dr_phase_seconds;
        }
    | Metrics_dump ms ->
      Metrics_dump
        (List.map
           (fun (name, v) ->
             match v with Metrics.Value _ -> (name, Metrics.Value 0.0) | v -> (name, v))
           ms)
    | Run_end r -> Run_end { r with wall_seconds = 0.0 }
    | (Run_start _ | Exchange _ | Sched_kill _ | Sched_clone _ | Replica_end _) as ev -> ev
  in
  { ev_replica; ev }

let to_file path events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (encode_line ev);
      Buffer.add_char buf '\n')
    events;
  Spr_util.Persist.atomic_write path (Buffer.contents buf)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | [ "" ] -> Ok (List.rev acc)  (* trailing newline *)
    | line :: rest -> (
      match decode_line line with
      | Ok ev -> go (lineno + 1) (ev :: acc) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let of_file path =
  match Spr_util.Persist.read_file path with Error e -> Error e | Ok text -> of_string text

let validate events =
  match events with
  | [] -> Error "empty trace"
  | first :: rest -> (
    match first.ev with
    | Run_start _ -> (
      match List.rev rest with
      | [] -> Error "trace has no run_end"
      | last :: middle_rev -> (
        match last.ev with
        | Run_end _ ->
          let bad =
            List.exists
              (fun e -> match e.ev with Run_start _ | Run_end _ -> true | _ -> false)
              middle_rev
          in
          if bad then Error "run_start/run_end in the middle of the trace" else Ok ()
        | _ -> Error "trace does not end with run_end"))
    | _ -> Error "trace does not start with run_start")
