(** Minimal JSON values with a canonical printer and a strict parser.

    The observability layer has no external dependencies, so it carries
    its own JSON. The printer is {e canonical}: object fields keep their
    construction order, floats print with the shortest decimal form that
    round-trips bit-exactly, and strings escape exactly the characters
    that must be escaped. Canonical output is what makes the trace
    round-trip property (encode -> decode -> re-encode is bit-identical)
    and the fixed-seed trace-determinism property testable as plain
    string equality. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float_repr : float -> string
(** Shortest ["%.15g"]/["%.16g"]/["%.17g"] form that parses back to the
    same bits. Infinities print as [1e999]/[-1e999] (syntactically valid
    JSON numbers that overflow back to the infinities on read); NaN
    prints as [null] and reads back through {!to_float} as [nan]. *)

val to_string : ?indent:bool -> t -> string
(** Canonical one-line form, or 2-space indented when [indent]. *)

val parse : string -> (t, string) Stdlib.result
(** Strict parse of a single JSON value (surrounding whitespace
    allowed). Errors carry a character offset. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val to_int : t -> int option

val to_float : t -> float option
(** [Int], [Float], and — see {!float_repr} — [Null] (as [nan]). *)

val to_str : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option
