type t = Null | Memory of Trace.event list ref  (* reversed *)

let null = Null

let memory () = Memory (ref [])

let enabled = function Null -> false | Memory _ -> true

let emit t ev = match t with Null -> () | Memory buf -> buf := ev :: !buf

let events = function Null -> [] | Memory buf -> List.rev !buf
