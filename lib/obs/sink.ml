type t =
  | Null
  | Memory of Trace.event list ref  (* reversed *)
  | Stream of { buf : Trace.event list ref; deliver : Trace.event -> unit }

let null = Null

let memory () = Memory (ref [])

let stream deliver = Stream { buf = ref []; deliver }

let enabled = function Null -> false | Memory _ | Stream _ -> true

let emit t ev =
  match t with
  | Null -> ()
  | Memory buf -> buf := ev :: !buf
  | Stream { buf; deliver } ->
    buf := ev :: !buf;
    deliver ev

let events = function Null -> [] | Memory buf | Stream { buf; _ } -> List.rev !buf
