(** Schema-versioned JSONL event traces.

    A trace is a flat event stream, one canonical-JSON object per line.
    The first line is always a {!payload.Run_start} (which carries the
    schema version) and the last a {!payload.Run_end}; in between come
    the per-replica streams — serial runs record everything as replica
    [0], portfolio runs merge the per-replica buffers in replica order,
    and fleet-scope events carry replica [-1].

    Traces from a fixed seed are bit-identical once timestamps are
    masked ({!mask_times}), which is what makes them diffable artifacts
    across runs, machines, and [--parallel] settings. *)

val schema_version : string
(** ["spr-trace-1"]. *)

type payload =
  | Run_start of { label : string; seed : int; replicas : int; n_cells : int; n_nets : int }
  | Span_begin of { name : string; depth : int; t : float }
      (** [t] is seconds since the replica's recording started. *)
  | Span_end of { name : string; depth : int; t : float; dt : float }
  | Temp of Report.dyn_row  (** one dynamics sample, at each temperature *)
  | Exchange of { round : int; from_replica : int; metric : float }
      (** Portfolio exchange round: the fleet adopted [from_replica]'s
          layout. *)
  | Sched_kill of { round : int; replica : int; leader : int; metric : float }
      (** Racing scheduler: [replica] was early-killed at decision
          round [round]; [leader] was predicted best with live metric
          [metric]. *)
  | Sched_clone of { round : int; replica : int; from_replica : int; stream : int }
      (** Racing scheduler: the killed [replica]'s domain was
          reallocated to a fork of [from_replica] on RNG [stream]. *)
  | Metrics_dump of (string * Metrics.value) list
      (** The replica's registry snapshot, at the end of its stream. *)
  | Replica_end of {
      status : string;
      g : int;
      d : int;
      delay_ns : float;
      best_cost : float;
    }
  | Run_end of {
      status : string;
      g : int;
      d : int;
      delay_ns : float;
      best_cost : float;
      wall_seconds : float;
    }

type event = { ev_replica : int; ev : payload }

(** {1 Encoding} *)

val event_to_json : event -> Json.t

val event_of_json : Json.t -> (event, string) Stdlib.result

val encode_line : event -> string
(** One canonical JSON line, no trailing newline. *)

val decode_line : string -> (event, string) Stdlib.result

val mask_times : event -> event
(** Zero every wall-clock-derived field (span [t]/[dt], per-phase
    seconds in dynamics rows, gauge values in metric dumps, run wall
    seconds) so traces compare as strings across runs. *)

(** {1 Files} *)

val to_file : string -> event list -> unit
(** Atomic write (temp file + rename) of the whole trace. *)

val of_string : string -> (event list, string) Stdlib.result
(** Decode a whole trace from one string (JSONL, optional trailing
    newline); errors carry the 1-based line number. Total: truncated
    lines, interleaved garbage, and shape-violating events all come
    back as [Error], never an exception. *)

val of_file : string -> (event list, string) Stdlib.result
(** {!of_string} on the file's contents; errors carry the 1-based line
    number. *)

val validate : event list -> (unit, string) Stdlib.result
(** Structural check: non-empty, starts with [Run_start] (known
    schema), ends with [Run_end], with neither appearing elsewhere. *)
