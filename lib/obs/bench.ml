let schema_version = "spr-bench-1"

let read_file path =
  match Spr_util.Persist.read_file path with Ok text -> Some text | Error _ -> None

(* Locate the git directory from the working directory (walking a few
   parents so benches launched from a subdirectory still resolve), and
   follow a worktree's "gitdir:" indirection file. *)
let git_dir () =
  let rec walk dir depth =
    if depth > 5 then None
    else
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists cand then
        if Sys.is_directory cand then Some cand
        else
          (* a worktree checkout: .git is a one-line pointer file *)
          match read_file cand with
          | Some text ->
            let text = String.trim text in
            let prefix = "gitdir: " in
            let plen = String.length prefix in
            if String.length text > plen && String.sub text 0 plen = prefix then
              Some (String.sub text plen (String.length text - plen))
            else None
          | None -> None
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else walk parent (depth + 1)
  in
  walk (Sys.getcwd ()) 0

let is_hex s =
  String.length s >= 7
  && String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) s

(* A detached HEAD is the hash itself; a symbolic HEAD names a ref that
   lives either as a loose file or as a packed-refs line. *)
let resolve_ref gitdir r =
  match read_file (Filename.concat gitdir r) with
  | Some text when is_hex (String.trim text) -> Some (String.trim text)
  | _ -> (
    match read_file (Filename.concat gitdir "packed-refs") with
    | None -> None
    | Some text ->
      String.split_on_char '\n' text
      |> List.find_map (fun line ->
             match String.index_opt line ' ' with
             | Some i
               when String.sub line (i + 1) (String.length line - i - 1) = r
                    && is_hex (String.sub line 0 i) ->
               Some (String.sub line 0 i)
             | _ -> None))

let commit () =
  match git_dir () with
  | None -> "unknown"
  | Some gitdir -> (
    match read_file (Filename.concat gitdir "HEAD") with
    | None -> "unknown"
    | Some head -> (
      let head = String.trim head in
      let prefix = "ref: " in
      let plen = String.length prefix in
      if String.length head > plen && String.sub head 0 plen = prefix then
        match resolve_ref gitdir (String.sub head plen (String.length head - plen)) with
        | Some hash -> hash
        | None -> "unknown"
      else if is_hex head then head
      else "unknown"))

let payload ~bench ~effort fields =
  Json.Obj
    (("schema", Json.String schema_version)
    :: ("bench", Json.String bench)
    :: ("effort", Json.String effort)
    :: ("cores", Json.Int (Domain.recommended_domain_count ()))
    :: ("commit", Json.String (commit ()))
    :: fields)

let write ~path ~bench ~effort fields =
  Spr_util.Persist.atomic_write path (Json.to_string ~indent:true (payload ~bench ~effort fields) ^ "\n")
