type t = {
  bits : Bytes.t;
  mutable card : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { bits = Bytes.make capacity '\000'; card = 0 }

let capacity t = Bytes.length t.bits

let cardinality t = t.card

let mem t i = Bytes.unsafe_get t.bits i <> '\000'

let set_raw t i v =
  Bytes.unsafe_set t.bits i (if v then '\001' else '\000');
  t.card <- t.card + (if v then 1 else -1)

let add ?j t i =
  if mem t i then false
  else begin
    set_raw t i true;
    (match j with
    | None -> ()
    | Some j -> Journal.record j (fun () -> set_raw t i false));
    true
  end

let remove ?j t i =
  if not (mem t i) then false
  else begin
    set_raw t i false;
    (match j with
    | None -> ()
    | Some j -> Journal.record j (fun () -> set_raw t i true));
    true
  end

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.card <- 0

let iter f t =
  for i = 0 to Bytes.length t.bits - 1 do
    if mem t i then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let check t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  if !n <> t.card then
    Error (Printf.sprintf "Bitset: cardinality mirror %d but %d bits set" t.card !n)
  else Ok ()
