(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library threads an explicit [Rng.t]
    so that runs are reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current position. *)

val state : t -> int64
(** The complete internal state (splitmix64 is a single 64-bit counter).
    Persist it with {!of_state} to continue the exact stream after a
    checkpoint/resume cycle. *)

val of_state : int64 -> t
(** Generator positioned exactly where {!state} was captured. *)

val assign : t -> from:t -> unit
(** [assign t ~from] repositions [t] onto [from]'s stream in place, so
    every closure holding [t] continues on the new stream — how a
    killed portfolio replica is reseeded onto a fresh fork stream
    without rebuilding the closures that captured its generator. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] derives the [index]-th replica stream of
    [seed] by splitmix64 stream splitting: index 0 is exactly
    [create seed] (so a single-replica run is bit-identical to the
    plain serial path), and index [k > 0] is the [k]-th {!split} of a
    master generator created from [seed]. Because each split seeds the
    child with a mixed 64-bit draw, the streams for nearby seeds and
    indices are provably distinct — unlike the naive [seed + k]
    offset, where [stream (s, k)] would collide with
    [stream (s + 1, k - 1)]. Raises [Invalid_argument] on a negative
    index. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)
