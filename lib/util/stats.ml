type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n

let stddev t = sqrt (variance t)

let min_value t = t.min_v

let max_value t = t.max_v

let reset t =
  t.n <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

type dump = {
  d_n : int;
  d_mean : float;
  d_m2 : float;
  d_min : float;
  d_max : float;
}

let dump t = { d_n = t.n; d_mean = t.mean; d_m2 = t.m2; d_min = t.min_v; d_max = t.max_v }

let restore d = { n = d.d_n; mean = d.d_mean; m2 = d.d_m2; min_v = d.d_min; max_v = d.d_max }

let copy_into ~src ~dst =
  dst.n <- src.n;
  dst.mean <- src.mean;
  dst.m2 <- src.m2;
  dst.min_v <- src.min_v;
  dst.max_v <- src.max_v

let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
