(** Monotonic-ish time for run budgets and progress metering.

    [now] is wall-clock time clamped to never decrease within the
    process, so elapsed-time computations stay non-negative even if the
    system clock steps backwards mid-run. *)

val now : unit -> float
(** Seconds since the epoch, guaranteed non-decreasing across calls. *)

val cpu : unit -> float
(** Process CPU seconds ([Sys.time]). *)

type stopwatch

val start : unit -> stopwatch

val elapsed : stopwatch -> float
(** Wall seconds since [start], non-negative. *)
