(** Dense bitset over a fixed id range [0, capacity), with an O(1)
    cardinality mirror and optional journaling.

    Replaces [(int, unit) Hashtbl.t] membership sets on hot paths: adds
    and removals are branch-free byte stores, enumeration is in ascending
    id order (so independent of insertion history), and when a
    {!Journal.t} is supplied every mutation records its exact inverse so
    a rejected annealing move restores the set bit-for-bit. *)

type t

val create : capacity:int -> t
(** All ids start absent. *)

val capacity : t -> int

val cardinality : t -> int

val mem : t -> int -> bool

val add : ?j:Journal.t -> t -> int -> bool
(** [true] iff the id was absent (the set changed). The inverse is
    journaled only when the set changed. *)

val remove : ?j:Journal.t -> t -> int -> bool

val clear : t -> unit
(** Unjournaled bulk reset (for per-move scratch sets). *)

val iter : (int -> unit) -> t -> unit
(** Ascending id order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Ascending id order. *)

val check : t -> (unit, string) result
(** Verify the cardinality mirror against the actual bits. *)
