let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let checksum_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)

let float_to_hex f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_of_hex s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Some (Int64.float_of_bits bits)
    | None -> None

let int64_to_hex i = Printf.sprintf "%016Lx" i

let int64_of_hex s =
  if String.length s <> 16 then None else Int64.of_string_opt ("0x" ^ s)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let atomic_write ?(durable = false) path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc text;
     if durable then begin
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc)
     end;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  if durable then fsync_dir (Filename.dirname path)

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
    match
      let len = in_channel_length ic in
      really_input_string ic len
    with
    | text ->
      close_in_noerr ic;
      Ok text
    | exception e ->
      close_in_noerr ic;
      Error (Printexc.to_string e))

let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then
    invalid_arg (Printf.sprintf "Persist.ensure_dir: %s exists and is not a directory" path)
