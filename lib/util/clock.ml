(* Wall clock guarded against going backwards (NTP steps, VM pauses):
   good enough to meter run budgets without a true CLOCK_MONOTONIC
   binding. The guard is an Atomic so that portfolio replicas running
   on separate domains share one monotonic view. *)

let last = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec advance () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else advance ()
  in
  advance ()

let cpu = Sys.time

type stopwatch = { started : float }

let start () = { started = now () }

let elapsed sw = now () -. sw.started
