(* Wall clock guarded against going backwards (NTP steps, VM pauses):
   good enough to meter run budgets without a true CLOCK_MONOTONIC
   binding. *)

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let cpu = Sys.time

type stopwatch = { started : float }

let start () = { started = now () }

let elapsed sw = now () -. sw.started
