(** Intrusive sorted retry queue over a fixed id range [0, capacity).

    Members carry an integer priority key and enumerate in an explicit,
    hash-independent total order: {e key descending, id descending on
    ties} — the longest-estimated-length-first retry order of paper
    §3.3/§3.4. The layout is canonical (uniquely determined by the
    member (key, id) pairs), the per-id position index makes membership
    and removal O(1) lookups, and every journaled mutation records its
    exact inverse, so rolling back a rejected move restores not just the
    membership but the enumeration order bit-for-bit. *)

type t

val create : capacity:int -> t
(** Empty queue over ids [0, capacity). *)

val capacity : t -> int

val length : t -> int

val mem : t -> int -> bool

val key : t -> int -> int
(** Current key of a queued id; raises [Invalid_argument] when absent. *)

val add : ?j:Journal.t -> t -> int -> key:int -> unit
(** Enqueue, or re-key an already-queued id (repositioning it). A no-op
    when the id is queued with that exact key; journaled otherwise. *)

val remove : ?j:Journal.t -> t -> int -> bool
(** [true] iff the id was queued. *)

val iter : (int -> unit) -> t -> unit
(** In queue order: key descending, ties by descending id. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** In queue order. *)

val check : t -> (unit, string) result
(** Verify sortedness and the position-index mirror. *)
