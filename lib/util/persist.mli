(** Durable-state plumbing shared by every component that writes run
    state to disk: content checksums, torn-write-proof file updates, and
    bit-exact float round-tripping for deterministic resume.

    None of this interprets file contents — formats live with their
    owners (e.g. {!Spr_core.Checkpoint}); this module only guarantees
    that what was written is what is read back, or that the corruption
    is detected. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash of the whole string. Not cryptographic — it
    detects truncation and bit flips, not tampering. *)

val checksum_hex : string -> string
(** {!fnv1a64} as 16 lowercase hex digits. *)

val float_to_hex : float -> string
(** IEEE-754 bit pattern as 16 hex digits. Unlike decimal printing this
    round-trips every float bit-exactly (including infinities and NaN),
    which resumable checkpoints rely on. *)

val float_of_hex : string -> float option

val int64_to_hex : int64 -> string

val int64_of_hex : string -> int64 option

val atomic_write : ?durable:bool -> string -> string -> unit
(** [atomic_write path text] writes [text] to [path ^ ".tmp"], then
    [Sys.rename]s it over [path], so a crash mid-write can never leave a
    half-written [path] — readers see the old contents or the new, never
    a mix. The temp file is removed on write failure.

    With [~durable:true] (default false) the temp file is fsynced
    before the rename and the containing directory is fsynced after it,
    so the update survives power loss, not just process crash — without
    the directory sync the rename itself can be lost and the file
    reappear under its old contents (or not at all) after a reboot.
    Checkpoint rotation and service job records use this; throwaway
    artifacts (reports, bench JSON) do not pay for it. *)

val fsync_dir : string -> unit
(** Fsync a directory so recently renamed/created entries in it survive
    power loss. Best-effort: errors (e.g. on filesystems that refuse
    directory fsync) are swallowed. *)

val read_file : string -> (string, string) Stdlib.result
(** Whole-file read; [Error] (with the system message) instead of an
    exception when the file is missing or unreadable. *)

val ensure_dir : string -> unit
(** Create a directory if it does not exist (single level). Raises
    [Invalid_argument] if the path exists and is not a directory. *)
