type t = {
  elts : int array;  (* member ids, sorted by (key desc, id desc) *)
  mutable len : int;
  pos : int array;  (* id -> index in elts, or -1 when absent *)
  key : int array;  (* id -> priority key, meaningful while present *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Iqueue.create: negative capacity";
  {
    elts = Array.make capacity 0;
    len = 0;
    pos = Array.make capacity (-1);
    key = Array.make capacity 0;
  }

let capacity t = Array.length t.pos

let length t = t.len

let mem t id = t.pos.(id) >= 0

let key t id =
  if not (mem t id) then invalid_arg "Iqueue.key: id not queued";
  t.key.(id)

(* Strict queue order: higher key first, ties broken by descending id
   (the historical retry order of the reference sorter). Total because
   ids are distinct, so the sorted array is the unique canonical layout
   for any membership set — rollback by inverse insert/remove restores
   the queue exactly. *)
let before t a b = t.key.(a) > t.key.(b) || (t.key.(a) = t.key.(b) && a > b)

(* First index whose element sorts after [id]; insertion point. *)
let insertion_index t id =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if before t t.elts.(mid) id then lo := mid + 1 else hi := mid
  done;
  !lo

let insert_raw t id ~key =
  t.key.(id) <- key;
  let at = insertion_index t id in
  Array.blit t.elts at t.elts (at + 1) (t.len - at);
  t.elts.(at) <- id;
  t.len <- t.len + 1;
  for i = at to t.len - 1 do
    t.pos.(t.elts.(i)) <- i
  done

let remove_raw t id =
  let at = t.pos.(id) in
  Array.blit t.elts (at + 1) t.elts at (t.len - at - 1);
  t.len <- t.len - 1;
  t.pos.(id) <- -1;
  for i = at to t.len - 1 do
    t.pos.(t.elts.(i)) <- i
  done

let add ?j t id ~key =
  if mem t id then begin
    if t.key.(id) <> key then begin
      let old = t.key.(id) in
      remove_raw t id;
      insert_raw t id ~key;
      match j with
      | None -> ()
      | Some j ->
        Journal.record j (fun () ->
            remove_raw t id;
            insert_raw t id ~key:old)
    end
  end
  else begin
    insert_raw t id ~key;
    match j with
    | None -> ()
    | Some j -> Journal.record j (fun () -> remove_raw t id)
  end

let remove ?j t id =
  if not (mem t id) then false
  else begin
    let old = t.key.(id) in
    remove_raw t id;
    (match j with
    | None -> ()
    | Some j -> Journal.record j (fun () -> insert_raw t id ~key:old));
    true
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.elts.(i)
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun id -> acc := f id !acc) t;
  !acc

let to_list t = List.rev (fold (fun id acc -> id :: acc) t [])

let check t =
  let err fmt = Printf.ksprintf (fun s -> Error ("Iqueue: " ^ s)) fmt in
  let rec order i =
    if i + 1 >= t.len then Ok ()
    else if not (before t t.elts.(i) t.elts.(i + 1)) then
      err "order violated at rank %d (ids %d, %d)" i t.elts.(i) t.elts.(i + 1)
    else order (i + 1)
  in
  let rec positions i =
    if i >= t.len then Ok ()
    else if t.pos.(t.elts.(i)) <> i then
      err "pos mirror of id %d is %d, expected %d" t.elts.(i) t.pos.(t.elts.(i)) i
    else positions (i + 1)
  in
  let members = Array.fold_left (fun n p -> if p >= 0 then n + 1 else n) 0 t.pos in
  if members <> t.len then err "pos mirror holds %d members but len is %d" members t.len
  else
    match positions 0 with
    | Error _ as e -> e
    | Ok () -> order 0
