(** Online mean / variance accumulator (Welford) plus simple descriptive
    helpers.

    The adaptive annealing schedule derives its starting temperature and
    temperature decrements from cost statistics collected with this
    module. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val reset : t -> unit

(** {1 Persistence}

    An accumulator's complete internal state as plain data, so resumable
    checkpoints can serialize it (all floats must round-trip bit-exactly
    — see {!Persist.float_to_hex}) and restore an accumulator that
    continues the stream as if never interrupted. *)

type dump = {
  d_n : int;
  d_mean : float;
  d_m2 : float;
  d_min : float;
  d_max : float;
}

val dump : t -> dump

val restore : dump -> t
(** Fresh accumulator in exactly the dumped state. *)

val copy_into : src:t -> dst:t -> unit
(** Overwrite [dst]'s state with [src]'s. *)

val mean_of : float list -> float
