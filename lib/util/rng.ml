type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let of_state state = { state }

let assign t ~from = t.state <- from.state

(* splitmix64 finalizer: the standard mix of Steele, Lea and Flood. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: negative index";
  if index = 0 then create seed
  else begin
    let master = create seed in
    let g = ref (split master) in
    for _ = 2 to index do
      g := split master
    done;
    !g
  end

(* Keep 62 bits so the conversion to OCaml's 63-bit int stays
   non-negative. *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t items =
  match items with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth items (int t (List.length items))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
