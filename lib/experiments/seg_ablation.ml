module Seg = Spr_arch.Segmentation
module Tool = Spr_core.Tool

type row = {
  scheme : Seg.scheme;
  avg_segment_len : float;
  sim_routed : bool;
  sim_unrouted : int;
  sim_delay_ns : float;
  seq_routed : bool;
  seq_unrouted : int;
  seq_delay_ns : float;
}

let schemes = [ Seg.Uniform 3; Seg.Uniform 6; Seg.Actel_like; Seg.Geometric; Seg.Full ]

let run ?(effort = Profiles.Quick) ?(seed = 1) ?(circuit = "cse") ?(tracks = 24) () =
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let n = Spr_netlist.Netlist.n_cells nl in
  List.map
    (fun scheme ->
      let arch = Profiles.arch_for ~tracks ~hscheme:scheme nl in
      let sim = Tool.run_exn ~config:(Profiles.tool_config ~seed effort ~n) arch nl in
      let seq = Spr_flow.run_exn ~config:(Profiles.seq_flow_config ~seed effort ~n) arch nl in
      {
        scheme;
        avg_segment_len = Spr_arch.Arch.avg_hseg_length arch;
        sim_routed = sim.Tool.fully_routed;
        sim_unrouted = sim.Tool.d;
        sim_delay_ns = sim.Tool.critical_delay;
        seq_routed = seq.Spr_flow.f_fully_routed;
        seq_unrouted = seq.Spr_flow.f_d;
        seq_delay_ns = seq.Spr_flow.f_critical_delay;
      })
    schemes

let render rows =
  let header =
    [ "Segmentation"; "avg seg"; "sim unrouted"; "sim delay"; "seq unrouted"; "seq delay" ]
  in
  let body =
    List.map
      (fun r ->
        [
          Seg.scheme_to_string r.scheme;
          Printf.sprintf "%.1f" r.avg_segment_len;
          string_of_int r.sim_unrouted;
          Printf.sprintf "%.1f ns" r.sim_delay_ns;
          string_of_int r.seq_unrouted;
          Printf.sprintf "%.1f ns" r.seq_delay_ns;
        ])
      rows
  in
  Spr_util.Table.render
    ~align:
      [
        Spr_util.Table.Left;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
      ]
    ~header body
