module Circuits = Spr_netlist.Circuits
module Tool = Spr_core.Tool

type row = {
  circuit : string;
  n_cells : int;
  tracks_used : int;
  seq_delay_ns : float;
  sim_delay_ns : float;
  improvement_pct : float;
  seq_routed : bool;
  sim_routed : bool;
  seq_cpu_s : float;
  sim_cpu_s : float;
}

(* The paper's designs were routed 100% by both tools before timing was
   compared, so widen the fabric until the (weaker) sequential flow
   routes completely. *)
let rec find_seq_width nl ~effort ~seed ~tracks ~limit =
  let arch = Profiles.arch_for ~tracks nl in
  let n = Spr_netlist.Netlist.n_cells nl in
  let seq = Spr_flow.run_exn ~config:(Profiles.seq_flow_config ~seed effort ~n) arch nl in
  if seq.Spr_flow.f_fully_routed || tracks + 4 > limit then (tracks, arch, seq)
  else find_seq_width nl ~effort ~seed ~tracks:(tracks + 4) ~limit

let run_circuit ?(effort = Profiles.Standard) ?(seed = 1) spec =
  let nl = Circuits.make spec in
  let n = Spr_netlist.Netlist.n_cells nl in
  let tracks, arch, seq = find_seq_width nl ~effort ~seed ~tracks:28 ~limit:48 in
  let sim = Tool.run_exn ~config:(Profiles.tool_config ~seed effort ~n) arch nl in
  let improvement =
    100.0
    *. (seq.Spr_flow.f_critical_delay -. sim.Tool.critical_delay)
    /. seq.Spr_flow.f_critical_delay
  in
  {
    circuit = spec.Circuits.spec_name;
    n_cells = spec.Circuits.spec_cells;
    tracks_used = tracks;
    seq_delay_ns = seq.Spr_flow.f_critical_delay;
    sim_delay_ns = sim.Tool.critical_delay;
    improvement_pct = improvement;
    seq_routed = seq.Spr_flow.f_fully_routed;
    sim_routed = sim.Tool.fully_routed;
    seq_cpu_s = Spr_flow.stage_seconds seq;
    sim_cpu_s = sim.Tool.cpu_seconds;
  }

let run ?effort ?seed () = List.map (run_circuit ?effort ?seed) Circuits.table_specs

let render rows =
  let header =
    [ "Design"; "#cells"; "tracks"; "seq delay"; "sim delay"; "%improve"; "routed"; "cpu s/s" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.circuit;
          string_of_int r.n_cells;
          string_of_int r.tracks_used;
          Printf.sprintf "%.1f ns" r.seq_delay_ns;
          Printf.sprintf "%.1f ns" r.sim_delay_ns;
          Printf.sprintf "%.0f" r.improvement_pct;
          Printf.sprintf "%b/%b" r.seq_routed r.sim_routed;
          Printf.sprintf "%.0f/%.0f" r.seq_cpu_s r.sim_cpu_s;
        ])
      rows
  in
  Spr_util.Table.render
    ~align:
      [
        Spr_util.Table.Left;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Left;
        Spr_util.Table.Right;
      ]
    ~header body
