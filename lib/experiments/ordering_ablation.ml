module Tool = Spr_core.Tool

type t = {
  circuit : string;
  length_ordered_delay_ns : float;
  length_ordered_unrouted : int;
  criticality_ordered_delay_ns : float;
  criticality_ordered_unrouted : int;
}

let run ?(effort = Profiles.Quick) ?(seed = 1) ?(circuit = "cse") ?(tracks = 28) () =
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = Profiles.arch_for ~tracks nl in
  let base = Profiles.tool_config ~seed effort ~n in
  let plain = Tool.run_exn ~config:base arch nl in
  let crit =
    Tool.run_exn ~config:(Tool.Config.with_timing_driven_routing true base) arch nl
  in
  {
    circuit;
    length_ordered_delay_ns = plain.Tool.critical_delay;
    length_ordered_unrouted = plain.Tool.d;
    criticality_ordered_delay_ns = crit.Tool.critical_delay;
    criticality_ordered_unrouted = crit.Tool.d;
  }

let render t =
  Printf.sprintf
    "Queue-ordering ablation on %s:\n\
    \  length-ordered (paper default): %.1f ns, %d unrouted\n\
    \  criticality-first:              %.1f ns, %d unrouted\n"
    t.circuit t.length_ordered_delay_ns t.length_ordered_unrouted
    t.criticality_ordered_delay_ns t.criticality_ordered_unrouted
