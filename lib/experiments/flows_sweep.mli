(** Flow-preset sweep: every registered flow preset across circuits and
    seeds, recording final quality and how many annealing moves the
    [sa] stage spent — the evidence that the analytical seed placement
    ([ap+sa]) reaches the cold-start anneal's quality in a fraction of
    the moves. Feeds [BENCH_flows.json] and [spr flows]. *)

type row = {
  flow : string;
  circuit : string;
  seed : int;
  routed : bool;
  g : int;
  d : int;
  delay_ns : float;
  sa_moves : int;  (** 0 for flows without an [sa] stage. *)
  seconds : float;
  seed_temperature : float option;
}

val default_flows : string list

val default_circuits : string list

val run :
  ?effort:Profiles.effort ->
  ?tracks:int ->
  ?flows:string list ->
  ?circuits:string list ->
  ?seeds:int list ->
  unit ->
  row list

type comparison = {
  cells : int;  (** circuit×seed cells with both flows present. *)
  move_ratio : float;  (** Mean seeded/cold annealing-move ratio. *)
  quality_held : int;
      (** Cells where the seeded flow's unrouted count is equal-or-better
          and its critical delay within the slack factor. *)
}

val compare_seeded :
  ?baseline:string -> ?seeded:string -> ?slack:float -> row list -> comparison
(** Defaults: [baseline = "sa"], [seeded = "ap+sa"], [slack = 1.02]. *)

val render : row list -> string

val schema : string
(** [Spr_obs.Bench.schema_version] — the sweep emits the unified
    [spr-bench-1] envelope with [bench = "flows"]. *)

val to_json : effort:Profiles.effort -> row list -> Spr_obs.Json.t
