module J = Spr_obs.Json
module C = Spr_core.Tool.Config

type row = {
  flow : string;
  circuit : string;
  seed : int;
  routed : bool;
  g : int;
  d : int;
  delay_ns : float;
  sa_moves : int;
  seconds : float;
  seed_temperature : float option;
}

let default_flows = [ "sa"; "ap+sa"; "ap+greedy+route"; "seq" ]

let default_circuits = [ "s1"; "bw" ]

let run_one ~effort ~tracks ~flow ~circuit ~seed =
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = Profiles.arch_for ~tracks nl in
  let config = Profiles.tool_config ~seed effort ~n |> C.with_flow_preset flow in
  let r = Spr_flow.run_exn ~config arch nl in
  {
    flow;
    circuit;
    seed;
    routed = r.Spr_flow.f_fully_routed;
    g = r.Spr_flow.f_g;
    d = r.Spr_flow.f_d;
    delay_ns = r.Spr_flow.f_critical_delay;
    sa_moves = Spr_flow.sa_moves r;
    seconds = Spr_flow.stage_seconds r;
    seed_temperature = r.Spr_flow.f_seed_temperature;
  }

let run ?(effort = Profiles.Quick) ?(tracks = 28) ?(flows = default_flows)
    ?(circuits = default_circuits) ?(seeds = [ 1; 2 ]) () =
  List.concat_map
    (fun circuit ->
      List.concat_map
        (fun seed -> List.map (fun flow -> run_one ~effort ~tracks ~flow ~circuit ~seed) flows)
        seeds)
    circuits

(* The headline derived number: across circuit×seed cells where both
   flows finished, how many annealing moves the analytically seeded
   anneal needed relative to the cold-start one, and whether it held
   quality (unrouted count equal or better, critical delay equal or
   better within [slack]). *)
type comparison = {
  cells : int;
  move_ratio : float;  (** mean of ap+sa moves / sa moves. *)
  quality_held : int;  (** Cells with unrouted <= and delay <= slack. *)
}

let compare_seeded ?(baseline = "sa") ?(seeded = "ap+sa") ?(slack = 1.02) rows =
  let cells =
    List.filter_map
      (fun b ->
        if b.flow <> baseline then None
        else
          List.find_opt
            (fun s -> s.flow = seeded && s.circuit = b.circuit && s.seed = b.seed)
            rows
          |> Option.map (fun s -> (b, s)))
      rows
  in
  let ratios =
    List.map
      (fun (b, s) ->
        if b.sa_moves = 0 then 1.0 else float_of_int s.sa_moves /. float_of_int b.sa_moves)
      cells
  in
  let quality_held =
    List.length
      (List.filter
         (fun (b, s) -> s.d + s.g <= b.d + b.g && s.delay_ns <= (b.delay_ns *. slack) +. 1e-9)
         cells)
  in
  {
    cells = List.length cells;
    move_ratio =
      (if ratios = [] then 1.0
       else List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios));
    quality_held;
  }

let render rows =
  let header =
    [ "Flow"; "Circuit"; "seed"; "routed"; "G"; "D"; "delay"; "sa moves"; "secs"; "T0" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.flow;
          r.circuit;
          string_of_int r.seed;
          string_of_bool r.routed;
          string_of_int r.g;
          string_of_int r.d;
          Printf.sprintf "%.2f ns" r.delay_ns;
          string_of_int r.sa_moves;
          Printf.sprintf "%.1f" r.seconds;
          (match r.seed_temperature with Some t -> Printf.sprintf "%.3g" t | None -> "-");
        ])
      rows
  in
  Spr_util.Table.render
    ~align:
      Spr_util.Table.
        [ Left; Left; Right; Right; Right; Right; Right; Right; Right; Right ]
    ~header body

let schema = Spr_obs.Bench.schema_version

let to_json ~effort rows =
  let cmp = compare_seeded rows in
  Spr_obs.Bench.payload ~bench:"flows" ~effort:(Profiles.effort_to_string effort)
    [
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("flow", J.String r.flow);
                   ("circuit", J.String r.circuit);
                   ("seed", J.Int r.seed);
                   ("routed", J.Bool r.routed);
                   ("g", J.Int r.g);
                   ("d", J.Int r.d);
                   ("delay_ns", J.Float r.delay_ns);
                   ("sa_moves", J.Int r.sa_moves);
                   ("seconds", J.Float r.seconds);
                   ( "seed_temperature",
                     match r.seed_temperature with None -> J.Null | Some t -> J.Float t );
                 ])
             rows) );
      ( "seeded_vs_cold",
        J.Obj
          [
            ("cells", J.Int cmp.cells);
            ("move_ratio", J.Float cmp.move_ratio);
            ("quality_held", J.Int cmp.quality_held);
          ] );
    ]
