module Tool = Spr_core.Tool

type t = {
  circuit : string;
  with_pinmaps_delay_ns : float;
  with_pinmaps_unrouted : int;
  without_pinmaps_delay_ns : float;
  without_pinmaps_unrouted : int;
}

let run ?(effort = Profiles.Standard) ?(seed = 1) ?(circuit = "s1") ?(tracks = 28) () =
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = Profiles.arch_for ~tracks nl in
  let base = Profiles.tool_config ~seed effort ~n in
  let with_pm = Tool.run_exn ~config:base arch nl in
  let without_pm =
    Tool.run_exn ~config:(Tool.Config.with_pinmap_moves false base) arch nl
  in
  {
    circuit;
    with_pinmaps_delay_ns = with_pm.Tool.critical_delay;
    with_pinmaps_unrouted = with_pm.Tool.d;
    without_pinmaps_delay_ns = without_pm.Tool.critical_delay;
    without_pinmaps_unrouted = without_pm.Tool.d;
  }

let render t =
  Printf.sprintf
    "Pinmap-move ablation on %s:\n\
    \  with pinmap moves:    %.1f ns, %d unrouted\n\
    \  without pinmap moves: %.1f ns, %d unrouted\n\
    \  delay delta: %.1f%%\n"
    t.circuit t.with_pinmaps_delay_ns t.with_pinmaps_unrouted t.without_pinmaps_delay_ns
    t.without_pinmaps_unrouted
    (100.0
    *. (t.without_pinmaps_delay_ns -. t.with_pinmaps_delay_ns)
    /. t.without_pinmaps_delay_ns)
