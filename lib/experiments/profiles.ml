type effort = Quick | Standard | Thorough

let effort_of_string = function
  | "quick" -> Some Quick
  | "standard" -> Some Standard
  | "thorough" -> Some Thorough
  | _ -> None

let effort_to_string = function Quick -> "quick" | Standard -> "standard" | Thorough -> "thorough"

let anneal effort ~n =
  let base = Spr_anneal.Engine.default_config ~n in
  match effort with
  | Quick ->
    {
      base with
      Spr_anneal.Engine.moves_per_temp = max 300 (5 * n);
      max_temperatures = 90;
    }
  | Standard -> base
  | Thorough ->
    {
      base with
      Spr_anneal.Engine.moves_per_temp = max 400 (6 * n);
      stop_acceptance = 0.01;
      stop_cost_tolerance = 0.0005;
      stop_patience = 4;
      max_temperatures = 130;
    }

let tool_config ?(seed = 1) effort ~n =
  Spr_core.Tool.Config.(default |> with_seed seed |> with_anneal (anneal effort ~n))

let seq_flow_config ?(seed = 1) effort ~n =
  Spr_core.Tool.Config.(
    default |> with_seed seed |> with_anneal (anneal effort ~n) |> with_flow_preset "seq")

let arch_for ?(tracks = 28) ?hscheme nl = Spr_arch.Arch.size_for ~tracks ?hscheme nl
