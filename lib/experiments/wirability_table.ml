module Circuits = Spr_netlist.Circuits
module Tool = Spr_core.Tool

type row = {
  circuit : string;
  n_cells : int;
  seq_min_tracks : int;
  sim_min_tracks : int;
  reduction_pct : float;
}

(* Descend one track at a time from a known-feasible width; a width
   counts as infeasible only when two seeds both fail. Returns the last
   width that routed 100%. *)
let min_tracks ~routes ~start ~floor =
  let feasible tracks = routes ~alt_seed:false ~tracks || routes ~alt_seed:true ~tracks in
  let rec descend tracks last_good =
    if tracks < floor then last_good
    else if feasible tracks then descend (tracks - 1) tracks
    else last_good
  in
  descend (start - 1) start

let rec first_feasible ~routes ~tracks ~limit =
  if routes ~alt_seed:false ~tracks || tracks + 4 > limit then tracks
  else first_feasible ~routes ~tracks:(tracks + 4) ~limit

let run_circuit ?(effort = Profiles.Quick) ?(seed = 1) ?(start_tracks = 28) spec =
  let nl = Circuits.make spec in
  let n = Spr_netlist.Netlist.n_cells nl in
  let seq_routes ~alt_seed ~tracks =
    let seed = if alt_seed then seed + 77 else seed in
    let arch = Profiles.arch_for ~tracks nl in
    (Spr_flow.run_exn ~config:(Profiles.seq_flow_config ~seed effort ~n) arch nl)
      .Spr_flow.f_fully_routed
  in
  let sim_routes ~alt_seed ~tracks =
    let seed = if alt_seed then seed + 77 else seed in
    let arch = Profiles.arch_for ~tracks nl in
    (Tool.run_exn ~config:(Profiles.tool_config ~seed effort ~n) arch nl).Tool.fully_routed
  in
  let seq_start = first_feasible ~routes:seq_routes ~tracks:start_tracks ~limit:48 in
  let sim_start = first_feasible ~routes:sim_routes ~tracks:start_tracks ~limit:48 in
  let seq_min = min_tracks ~routes:seq_routes ~start:seq_start ~floor:4 in
  let sim_min = min_tracks ~routes:sim_routes ~start:sim_start ~floor:4 in
  {
    circuit = spec.Circuits.spec_name;
    n_cells = spec.Circuits.spec_cells;
    seq_min_tracks = seq_min;
    sim_min_tracks = sim_min;
    reduction_pct = 100.0 *. float_of_int (seq_min - sim_min) /. float_of_int seq_min;
  }

let run ?effort ?seed () = List.map (run_circuit ?effort ?seed) Circuits.table_specs

let render rows =
  let header = [ "Design"; "#cells"; "Seq. P&R"; "Sim. P&R"; "%reduction" ] in
  let body =
    List.map
      (fun r ->
        [
          r.circuit;
          string_of_int r.n_cells;
          string_of_int r.seq_min_tracks;
          string_of_int r.sim_min_tracks;
          Printf.sprintf "%.0f" r.reduction_pct;
        ])
      rows
  in
  Spr_util.Table.render
    ~align:
      [
        Spr_util.Table.Left;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
        Spr_util.Table.Right;
      ]
    ~header body
