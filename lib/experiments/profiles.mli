(** Shared effort profiles and tool configurations for the experiment
    harness (Tables 1-2, Figures 6-7, ablations). *)

type effort =
  | Quick  (** Width probes and ablations: fast, slightly lower quality. *)
  | Standard  (** Headline comparisons. *)
  | Thorough  (** The 529-cell Figure 7 run. *)

val effort_of_string : string -> effort option

val effort_to_string : effort -> string

val anneal : effort -> n:int -> Spr_anneal.Engine.config

val tool_config : ?seed:int -> effort -> n:int -> Spr_core.Tool.config

val seq_flow_config : ?seed:int -> effort -> n:int -> Spr_core.Tool.config
(** The sequential baseline as a flow-engine config: the ["seq"] preset
    with this effort's annealing schedule, for [Spr_flow.run]. *)

val arch_for :
  ?tracks:int -> ?hscheme:Spr_arch.Segmentation.scheme -> Spr_netlist.Netlist.t -> Spr_arch.Arch.t
(** The standard evaluation fabric for a circuit (default 28 tracks). *)
