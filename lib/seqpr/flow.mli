(** The complete sequential place-then-route baseline: annealing
    wirelength/congestion placement, then global routing, then detailed
    routing with rip-up-and-retry, then a full static timing analysis.

    This is the reproduction's stand-in for the production flow the paper
    compares against (TimberWolfSC placer [6], Rao global router [7],
    Roy detailed router [11]); see DESIGN.md §2 for the substitution
    argument. *)

type config = {
  seed : int;
  place : Seq_place.config;
  router : Spr_route.Router.config;
  improve_iters : int;
  delay_model : Spr_timing.Delay_model.t;
}

val default_config : config

type result = {
  place : Spr_layout.Placement.t;
  route : Spr_route.Route_state.t;
  sta : Spr_timing.Sta.t;
  critical_delay : float;  (** ns. *)
  g : int;
  d : int;
  fully_routed : bool;
  wirelength : float;
  cpu_seconds : float;
}

val run :
  ?config:config -> Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> (result, string) Stdlib.result
(** @deprecated Use [Spr_flow.run] with the ["seq"] flow preset, which
    runs the same greedy-place / route / sta recipe bit-identically.
    This wrapper stays for source compatibility and emits one stderr
    warning per process. *)

val run_exn : ?config:config -> Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> result
(** @deprecated See {!run}. *)
