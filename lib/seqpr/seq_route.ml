module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module I = Spr_util.Interval

(* Victims blocking the failed net's cheapest horizontal run: owners on
   the track whose covering run has the fewest distinct blockers. *)
let detail_blockers st ~channel ~span =
  let arch = Rs.arch st in
  let best = ref None in
  for track = 0 to arch.Spr_arch.Arch.tracks - 1 do
    let segs = Spr_arch.Arch.hsegments arch ~channel ~track in
    match Spr_arch.Arch.find_cover segs span with
    | None -> ()
    | Some (slo, shi) ->
      let owners = ref [] in
      for s = slo to shi do
        let o = Rs.hseg_owner st ~channel ~track ~seg:s in
        if o <> -1 && not (List.mem o !owners) then owners := o :: !owners
      done;
      let n = List.length !owners in
      (match !best with
      | Some (bn, _) when bn <= n -> ()
      | Some _ | None -> best := Some (n, !owners))
  done;
  match !best with Some (_, owners) -> owners | None -> []

(* Victims blocking the cheapest spine among several candidate columns
   around the net's bbox center: pick the (column, vtrack) whose covering
   run has the fewest distinct blocking nets. *)
let global_blockers st net =
  let place = Rs.place st in
  let arch = Rs.arch st in
  let pins = Spr_layout.Placement.net_pin_positions place net in
  if List.length pins < 2 then []
  else begin
    let chans = List.map fst pins and cols = List.map snd pins in
    let clo = List.fold_left min max_int chans and chi = List.fold_left max min_int chans in
    let xlo = List.fold_left min max_int cols and xhi = List.fold_left max min_int cols in
    let span = I.make clo chi in
    let clamp x = max 0 (min (arch.Spr_arch.Arch.cols - 1) x) in
    let center = clamp ((xlo + xhi) / 2) in
    let candidates =
      List.sort_uniq compare
        (List.map clamp [ center - 4; center - 2; center - 1; center; center + 1; center + 2; center + 4 ])
    in
    let best = ref None in
    List.iter
      (fun col ->
        for vtrack = 0 to arch.Spr_arch.Arch.vtracks - 1 do
          let segs = Spr_arch.Arch.vsegments arch ~col ~vtrack in
          match Spr_arch.Arch.find_cover segs span with
          | None -> ()
          | Some (slo, shi) ->
            let owners = ref [] in
            for s = slo to shi do
              let o = Rs.vseg_owner st ~col ~vtrack ~seg:s in
              if o <> -1 && not (List.mem o !owners) then owners := o :: !owners
            done;
            let n = List.length !owners in
            (match !best with
            | Some (bn, _) when bn <= n -> ()
            | Some _ | None -> best := Some (n, !owners))
        done)
      candidates;
    match !best with Some (_, owners) -> owners | None -> []
  end

let run ?(router = Router.default_config) ?(improve_iters = 25) ?(should_stop = fun () -> false)
    ~rng st =
  let uncapped = { router with Router.retry_cap = max_int } in
  Router.route_all ~config:uncapped ~passes:3 st;
  let arch = Rs.arch st in
  let j = Spr_util.Journal.create () in
  let iter = ref 0 in
  while (not (Rs.fully_routed st)) && !iter < improve_iters && not (should_stop ()) do
    incr iter;
    (* Collect victims for every currently failed net, rip them up
       together with the failed nets, and re-attempt longest first. *)
    let victims = ref [] in
    List.iter (fun net -> victims := global_blockers st net @ !victims) (Rs.u_g st);
    for channel = 0 to arch.Spr_arch.Arch.n_channels - 1 do
      List.iter
        (fun net ->
          match List.assoc_opt channel (Rs.h_demands st net) with
          | Some span -> victims := detail_blockers st ~channel ~span @ !victims
          | None -> ())
        (Rs.u_d st channel)
    done;
    let victims = List.sort_uniq compare !victims in
    (* Drop a random subset on later iterations to escape rip/re-route
       cycles. *)
    let victims =
      if !iter <= 2 then victims
      else List.filter (fun _ -> Spr_util.Rng.float rng 1.0 < 0.7) victims
    in
    List.iter (fun net -> Rs.rip_up st j net) victims;
    (* Failed nets must re-search even where nothing was freed, because
       the margin below widens their search space. *)
    List.iter (fun net -> Rs.force_retry st net) (Rs.u_g st);
    for channel = 0 to arch.Spr_arch.Arch.n_channels - 1 do
      List.iter (fun net -> Rs.force_retry st net) (Rs.u_d st channel)
    done;
    (* Escalate the spine search margin as iterations go by: a desperate
       net may take a feedthrough far from its bounding box. *)
    let widened =
      {
        uncapped with
        Router.spine_margin = uncapped.Router.spine_margin + (2 * !iter);
        Router.spine_candidates = max_int;
      }
    in
    ignore (Router.reroute ~config:widened st j : int list);
    ignore (Router.reroute ~config:widened st j : int list);
    Spr_util.Journal.commit j
  done
