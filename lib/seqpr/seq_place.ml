module P = Spr_layout.Placement

type config = {
  seed : int;
  vertical_weight : float;
  congestion_weight : float;
  channel_fill : float;
  anneal : Spr_anneal.Engine.config option;
  max_swap_tries : int;
}

let default_config =
  {
    seed = 1;
    vertical_weight = 2.0;
    congestion_weight = 0.02;
    channel_fill = 0.55;
    anneal = None;
    max_swap_tries = 8;
  }

(* Net contribution caches so a move only touches the nets on the two
   perturbed cells. *)
type state = {
  cfg : config;
  place : P.t;
  nl : Spr_netlist.Netlist.t;
  hpwl : float array;  (* per net: x-span + vw * channel-span *)
  chan_demand : float array;  (* per channel: column-units demanded *)
  chan_of_net : (int * float) list array;  (* per net: (channel, span length) *)
  capacity : float;
  mutable total_hpwl : float;
  mutable cong_penalty : float;
  (* undo record of the pending move *)
  mutable undo : (unit -> unit) option;
}

let overflow_penalty capacity demand =
  let over = demand -. capacity in
  if over <= 0.0 then 0.0 else over *. over

let net_spans place net =
  match P.net_col_span place net, P.net_channel_span place net with
  | Some (xlo, xhi), Some (clo, chi) -> Some (xlo, xhi, clo, chi)
  | _, _ -> None

(* Per-channel demand of one net: each channel holding pins is charged
   the net's column span there (plus slack for the feedthrough). *)
let channel_loads place net =
  let pins = P.net_pin_positions place net in
  if List.length pins < 2 then []
  else begin
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (ch, col) ->
        match Hashtbl.find_opt tbl ch with
        | None -> Hashtbl.replace tbl ch (col, col)
        | Some (lo, hi) -> Hashtbl.replace tbl ch (min lo col, max hi col))
      pins;
    Hashtbl.fold (fun ch (lo, hi) acc -> (ch, float_of_int (hi - lo + 1)) :: acc) tbl []
  end

let net_hpwl cfg place net =
  match net_spans place net with
  | None -> 0.0
  | Some (xlo, xhi, clo, chi) ->
    float_of_int (xhi - xlo) +. (cfg.vertical_weight *. float_of_int (chi - clo))

let apply_net_update s net =
  let old_h = s.hpwl.(net) in
  let fresh_h = net_hpwl s.cfg s.place net in
  s.total_hpwl <- s.total_hpwl -. old_h +. fresh_h;
  s.hpwl.(net) <- fresh_h;
  let old_loads = s.chan_of_net.(net) in
  let fresh_loads = channel_loads s.place net in
  let adjust (ch, len) sign =
    let before = s.chan_demand.(ch) in
    let after = before +. (sign *. len) in
    s.chan_demand.(ch) <- after;
    s.cong_penalty <-
      s.cong_penalty -. overflow_penalty s.capacity before +. overflow_penalty s.capacity after
  in
  List.iter (fun load -> adjust load (-1.0)) old_loads;
  List.iter (fun load -> adjust load 1.0) fresh_loads;
  s.chan_of_net.(net) <- fresh_loads;
  (old_h, old_loads)

let create cfg place =
  let nl = P.netlist place in
  let arch = P.arch place in
  let n_nets = Spr_netlist.Netlist.n_nets nl in
  let capacity =
    cfg.channel_fill *. float_of_int (arch.Spr_arch.Arch.tracks * arch.Spr_arch.Arch.cols)
  in
  let s =
    {
      cfg;
      place;
      nl;
      hpwl = Array.make n_nets 0.0;
      chan_demand = Array.make arch.Spr_arch.Arch.n_channels 0.0;
      chan_of_net = Array.make n_nets [];
      capacity;
      total_hpwl = 0.0;
      cong_penalty = 0.0;
      undo = None;
    }
  in
  for net = 0 to n_nets - 1 do
    ignore (apply_net_update s net : float * (int * float) list)
  done;
  s

let cost s = s.total_hpwl +. (s.cfg.congestion_weight *. s.cong_penalty)

let propose s rng =
  assert (s.undo = None);
  let rec find tries =
    if tries = 0 then None
    else begin
      let a = P.random_occupied_slot s.place rng in
      let b = P.random_slot s.place rng in
      if a <> b && P.swap_legal s.place a b then Some (a, b) else find (tries - 1)
    end
  in
  match find s.cfg.max_swap_tries with
  | None -> false
  | Some (a, b) ->
    let occupants = List.filter_map (fun slot -> P.cell_at s.place slot) [ a; b ] in
    let nets =
      List.sort_uniq compare
        (List.concat_map (fun c -> Spr_netlist.Netlist.nets_of_cell s.nl c) occupants)
    in
    P.swap_slots s.place a b;
    let saved = List.map (fun net -> (net, apply_net_update s net)) nets in
    s.undo <-
      Some
        (fun () ->
          P.swap_slots s.place a b;
          List.iter
            (fun (net, (old_h, old_loads)) ->
              (* Re-applying the cached values restores totals exactly. *)
              s.total_hpwl <- s.total_hpwl -. s.hpwl.(net) +. old_h;
              s.hpwl.(net) <- old_h;
              let adjust (ch, len) sign =
                let before = s.chan_demand.(ch) in
                let after = before +. (sign *. len) in
                s.chan_demand.(ch) <- after;
                s.cong_penalty <-
                  s.cong_penalty
                  -. overflow_penalty s.capacity before
                  +. overflow_penalty s.capacity after
              in
              List.iter (fun load -> adjust load (-1.0)) s.chan_of_net.(net);
              List.iter (fun load -> adjust load 1.0) old_loads;
              s.chan_of_net.(net) <- old_loads)
            saved);
    true

let run ?(config = default_config) ?(should_stop = fun () -> false) arch nl =
  let rng = Spr_util.Rng.create config.seed in
  match P.create arch nl ~rng with
  | Error e -> Error e
  | Ok place ->
    let s = create config place in
    let report =
      Spr_anneal.Engine.run ?config:config.anneal
        ~should_stop:(fun ~moves:_ ~accepted:_ -> should_stop ())
        ~rng
        ~cost:(fun () -> cost s)
        ~propose:(fun rng -> propose s rng)
        ~accept:(fun () -> s.undo <- None)
        ~reject:(fun () ->
          match s.undo with
          | Some f ->
            f ();
            s.undo <- None
          | None -> ())
        ~n:(Spr_netlist.Netlist.n_cells nl)
        ()
    in
    Ok (place, report)

(* Zero-temperature descent over an existing placement: keep proposing
   swaps, keep only the improving ones. The flow engine's greedy stage
   rides this when a previous stage already produced a placement. *)
let refine ?(config = default_config) ?(should_stop = fun () -> false) ~rng ~moves place =
  let s = create config place in
  let accepted = ref 0 in
  let step = ref 0 in
  while !step < moves && not (should_stop ()) do
    incr step;
    let before = cost s in
    if propose s rng then begin
      let after = cost s in
      if after <= before then begin
        s.undo <- None;
        if after < before then incr accepted
      end
      else
        match s.undo with
        | Some f ->
          f ();
          s.undo <- None
        | None -> ()
    end
  done;
  !accepted

let wirelength place =
  let nl = P.netlist place in
  let total = ref 0.0 in
  for net = 0 to Spr_netlist.Netlist.n_nets nl - 1 do
    total := !total +. net_hpwl { default_config with vertical_weight = 2.0 } place net
  done;
  !total

(* From-scratch recomputation of both cost components, the oracle for
   the incremental bookkeeping above. *)
let recompute_totals s =
  let nl = s.nl in
  let hpwl = ref 0.0 in
  let demand = Array.make (Array.length s.chan_demand) 0.0 in
  for net = 0 to Spr_netlist.Netlist.n_nets nl - 1 do
    hpwl := !hpwl +. net_hpwl s.cfg s.place net;
    List.iter (fun (ch, len) -> demand.(ch) <- demand.(ch) +. len) (channel_loads s.place net)
  done;
  let penalty =
    Array.fold_left (fun acc d -> acc +. overflow_penalty s.capacity d) 0.0 demand
  in
  (!hpwl, penalty, demand)

let self_test ?(moves = 500) config arch nl ~seed =
  let rng = Spr_util.Rng.create seed in
  match P.create arch nl ~rng with
  | Error e -> Error e
  | Ok place ->
    let s = create config place in
    let check step =
      let hpwl, penalty, demand = recompute_totals s in
      if Float.abs (hpwl -. s.total_hpwl) > 1e-6 then
        Error (Printf.sprintf "step %d: hpwl drift (%.6f vs %.6f)" step s.total_hpwl hpwl)
      else if Float.abs (penalty -. s.cong_penalty) > 1e-6 then
        Error
          (Printf.sprintf "step %d: congestion drift (%.6f vs %.6f)" step s.cong_penalty penalty)
      else begin
        let drift = ref None in
        Array.iteri
          (fun ch d ->
            if !drift = None && Float.abs (d -. s.chan_demand.(ch)) > 1e-6 then
              drift := Some (Printf.sprintf "step %d: channel %d demand drift" step ch))
          demand;
        match !drift with Some e -> Error e | None -> Ok ()
      end
    in
    let rec loop step =
      if step > moves then Ok ()
      else if not (propose s rng) then loop (step + 1)
      else begin
        (if Spr_util.Rng.bool rng then s.undo <- None
         else
           match s.undo with
           | Some f ->
             f ();
             s.undo <- None
           | None -> ());
        match check step with Error e -> Error e | Ok () -> loop (step + 1)
      end
    in
    loop 1
