module Rs = Spr_route.Route_state

type config = {
  seed : int;
  place : Seq_place.config;
  router : Spr_route.Router.config;
  improve_iters : int;
  delay_model : Spr_timing.Delay_model.t;
}

let default_config =
  {
    seed = 1;
    place = Seq_place.default_config;
    router = Spr_route.Router.default_config;
    improve_iters = 25;
    delay_model = Spr_timing.Delay_model.default;
  }

type result = {
  place : Spr_layout.Placement.t;
  route : Rs.t;
  sta : Spr_timing.Sta.t;
  critical_delay : float;
  g : int;
  d : int;
  fully_routed : bool;
  wirelength : float;
  cpu_seconds : float;
}

(* Deprecated entry point (kept for source compatibility): the staged
   flow engine runs the same recipe as preset "seq". One warning per
   process, on stderr, so batch drivers are not flooded. *)
let warned = ref false

let warn_deprecated () =
  if not !warned then begin
    warned := true;
    prerr_endline
      "spr: Spr_seq.Flow.run is deprecated; use Spr_flow.run with the \"seq\" flow preset"
  end

let run ?(config = default_config) arch nl =
  warn_deprecated ();
  match Spr_netlist.Levelize.run nl with
  | Error e -> Error e
  | Ok _ -> (
    let t_start = Sys.time () in
    let place_cfg = { config.place with Seq_place.seed = config.seed } in
    match Seq_place.run ~config:place_cfg arch nl with
    | Error e -> Error e
    | Ok (place, _report) ->
      let rs = Rs.create place in
      let rng = Spr_util.Rng.create (config.seed + 0x5E01) in
      Seq_route.run ~router:config.router ~improve_iters:config.improve_iters ~rng rs;
      let sta = Spr_timing.Sta.create config.delay_model rs in
      Ok
        {
          place;
          route = rs;
          sta;
          critical_delay = Spr_timing.Sta.critical_delay sta;
          g = Rs.g_count rs;
          d = Rs.d_count rs;
          fully_routed = Rs.fully_routed rs;
          wirelength = Seq_place.wirelength place;
          cpu_seconds = Sys.time () -. t_start;
        })

let run_exn ?config arch nl =
  match run ?config arch nl with
  | Ok r -> r
  | Error e -> invalid_arg ("Flow.run: " ^ e)
