(** Baseline annealing placer in the TimberWolfSC tradition [6]: minimize
    estimated wirelength (bounding-box half-perimeter) plus a channel
    congestion penalty.

    This is the "sequential" side of the paper's comparison: the placer
    sees neither the channel segmentation nor antifuse delays — exactly
    the blindness (paper §2.1) that the simultaneous tool removes. *)

type config = {
  seed : int;
  vertical_weight : float;
      (** Cost of one channel of vertical span, in column units. *)
  congestion_weight : float;
  channel_fill : float;
      (** Fraction of [tracks * cols] of a channel usable before the
          congestion penalty engages. *)
  anneal : Spr_anneal.Engine.config option;
  max_swap_tries : int;
}

val default_config : config

val run :
  ?config:config ->
  ?should_stop:(unit -> bool) ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  (Spr_layout.Placement.t * Spr_anneal.Engine.report, string) Stdlib.result
(** Produces a placement (default pinmaps) optimized for estimated
    wirelength and congestion only. [?should_stop] is polled between
    annealing moves (the flow engine's stage budget rides it); the run
    then returns the placement as annealed so far. *)

val refine :
  ?config:config ->
  ?should_stop:(unit -> bool) ->
  rng:Spr_util.Rng.t ->
  moves:int ->
  Spr_layout.Placement.t ->
  int
(** Zero-temperature greedy descent over an existing placement: propose
    up to [moves] swaps, keeping only the improving ones (mutating the
    placement in place). Returns the number of improvements kept.
    Deterministic given the rng state; [?should_stop] bounds it by wall
    clock. *)

val wirelength : Spr_layout.Placement.t -> float
(** Current weighted half-perimeter total (vertical weight 2.0), for
    reporting. *)

val self_test :
  ?moves:int ->
  config ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  seed:int ->
  (unit, string) Stdlib.result
(** Oracle for the placer's incremental bookkeeping: runs random
    accepted and rejected moves (default 500) and after each checks the
    incrementally maintained wirelength and congestion totals against a
    from-scratch recomputation. Used by the test suite. *)
