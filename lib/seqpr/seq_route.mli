(** Baseline routing for a frozen placement: one-shot global routing then
    per-channel detailed routing, improved by a bounded
    rip-up-and-retry loop.

    The router primitives are shared with the simultaneous tool (same
    fabric, same heuristics); the improvement loop compensates for the
    baseline's lack of placement flexibility: when a net cannot be
    routed, the victims blocking its cheapest track (or spine) are ripped
    up and everything is re-attempted longest-first. *)

val run :
  ?router:Spr_route.Router.config ->
  ?improve_iters:int ->
  ?should_stop:(unit -> bool) ->
  rng:Spr_util.Rng.t ->
  Spr_route.Route_state.t ->
  unit
(** [improve_iters] defaults to 25. The state is left with whatever could
    be routed; inspect {!Spr_route.Route_state.fully_routed}.
    [?should_stop] is polled between rip-up-and-retry iterations, so a
    stage budget bounds the loop without leaving the state mid-commit. *)
