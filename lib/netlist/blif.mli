(** Reader and writer for a practical subset of the Berkeley BLIF format,
    so that real mapped MCNC circuits can replace the synthetic benchmarks
    when available.

    Supported constructs: [.model], [.inputs], [.outputs], [.names]
    (the cover rows are consumed and discarded — only connectivity
    matters for layout), [.latch] (clock and initial value ignored),
    [.end], comments ([#]) and line continuations ([\\]).

    Each [.names] becomes one combinational cell; each [.latch] becomes
    one sequential cell; each declared input/output becomes a pad cell. *)

val parse_string : ?model_name:string -> string -> (Netlist.t, string) result
(** Parse errors carry the 1-based physical line number of the offending
    (logical) line plus the offending token or line, e.g.
    ["line 12: unsupported BLIF construct: .gate"]. *)

val parse_file : string -> (Netlist.t, string) result
(** Like {!parse_string}, with errors prefixed [file:line:]; an
    unreadable file is an [Error], not an exception. *)

val to_string : ?model_name:string -> Netlist.t -> string
(** Serializes connectivity back to BLIF. Combinational cells are emitted
    as [.names] with a dummy all-ones cover; sequential cells as
    [.latch]. *)
