let is_cover_line line =
  line <> ""
  && String.for_all (fun ch -> ch = '0' || ch = '1' || ch = '-' || ch = ' ' || ch = '\t') line

(* Logical lines: strip comments, join continuations, drop blanks. Each
   logical line carries the 1-based physical line number it started on,
   so parse errors can point into the actual file. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending lineno = function
    | [] -> List.rev (match pending with None -> acc | Some p -> p :: acc)
    | line :: rest ->
      let lineno = lineno + 1 in
      let line = strip_comment line in
      let line = String.trim line in
      if line = "" then join acc pending lineno rest
      else begin
        let start, prefix = match pending with None -> (lineno, "") | Some (n, p) -> (n, p) in
        if line.[String.length line - 1] = '\\' then
          join acc
            (Some (start, prefix ^ String.sub line 0 (String.length line - 1) ^ " "))
            lineno rest
        else join ((start, prefix ^ line) :: acc) None lineno rest
      end
  in
  join [] None 0 raw

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type statement =
  | Model of string
  | Inputs of string list
  | Outputs of string list
  | Names of string list  (* fanins @ [output] *)
  | Latch of string * string  (* input, output *)
  | End

let parse_statements text =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | (lineno, line) :: rest -> (
      let err fmt = Printf.ksprintf (fun m -> Error (lineno, m)) fmt in
      match tokens line with
      | [] -> loop acc rest
      | ".model" :: name :: _ -> loop ((lineno, Model name) :: acc) rest
      | [ ".model" ] -> loop ((lineno, Model "top") :: acc) rest
      | ".inputs" :: names -> loop ((lineno, Inputs names) :: acc) rest
      | ".outputs" :: names -> loop ((lineno, Outputs names) :: acc) rest
      | ".names" :: signals ->
        if signals = [] then err "empty .names"
        else loop ((lineno, Names signals) :: acc) rest
      | ".latch" :: input :: output :: _ -> loop ((lineno, Latch (input, output)) :: acc) rest
      | [ ".latch" ] | [ ".latch"; _ ] -> err "malformed .latch: %s" line
      | ".end" :: _ -> loop ((lineno, End) :: acc) rest
      | first :: _ when String.length first > 0 && first.[0] = '.' ->
        err "unsupported BLIF construct: %s" first
      | _ when is_cover_line line -> loop acc rest  (* .names cover row *)
      | _ -> err "unparseable line: %s" line)
  in
  loop [] (logical_lines text)

(* Errors as [(line, message)]; line 0 marks whole-file problems
   (unreadable file, netlist construction failures). *)
let parse ?model_name:_ text =
  match parse_statements text with
  | Error e -> Error e
  | Ok stmts ->
    let b = Netlist.Builder.create () in
    let driver_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
    (* First pass: create cells and record which cell drives each signal. *)
    let gates = ref [] in
    (* (cell id, declaring line, fanin signal names) *)
    let outputs = ref [] in
    (* (declaring line, signal name) *)
    let error = ref None in
    let fail lineno msg = if !error = None then error := Some (lineno, msg) in
    let declare_driver lineno signal cell =
      if Hashtbl.mem driver_of signal then
        fail lineno (Printf.sprintf "signal %s has multiple drivers" signal)
      else Hashtbl.add driver_of signal cell
    in
    List.iter
      (fun (lineno, stmt) ->
        match stmt with
        | Model _ | End -> ()
        | Inputs names ->
          List.iter
            (fun s ->
              let id = Netlist.Builder.add_cell b ~name:s ~kind:Cell_kind.Input ~n_inputs:0 in
              declare_driver lineno s id)
            names
        | Outputs names -> outputs := !outputs @ List.map (fun s -> (lineno, s)) names
        | Names signals ->
          let rec split_last acc = function
            | [] -> assert false
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split_last (x :: acc) rest
          in
          let fanins, out = split_last [] signals in
          let id =
            Netlist.Builder.add_cell b ~name:out ~kind:Cell_kind.Comb
              ~n_inputs:(List.length fanins)
          in
          declare_driver lineno out id;
          gates := (id, lineno, fanins) :: !gates
        | Latch (input, output) ->
          let id = Netlist.Builder.add_cell b ~name:output ~kind:Cell_kind.Seq ~n_inputs:1 in
          declare_driver lineno output id;
          gates := (id, lineno, [ input ]) :: !gates)
      stmts;
    (* Primary-output pad cells. *)
    List.iter
      (fun (lineno, s) ->
        let id = Netlist.Builder.add_cell b ~name:(s ^ "_pad") ~kind:Cell_kind.Output ~n_inputs:1 in
        gates := (id, lineno, [ s ]) :: !gates)
      !outputs;
    (* Second pass: one net per driven signal, then connect sinks. *)
    let net_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun signal cell ->
        Hashtbl.add net_of signal (Netlist.Builder.add_net b ~name:signal ~driver:cell))
      driver_of;
    List.iter
      (fun (cell, lineno, fanins) ->
        List.iteri
          (fun pin signal ->
            match Hashtbl.find_opt net_of signal with
            | Some net -> Netlist.Builder.add_sink b ~net ~cell ~pin
            | None -> fail lineno (Printf.sprintf "signal %s is never driven" signal))
          fanins)
      (List.rev !gates);
    (match !error with
    | Some e -> Error e
    | None -> (
      match Netlist.Builder.finish b with Ok nl -> Ok nl | Error e -> Error (0, e)))

let format_error ?path (lineno, msg) =
  match path, lineno with
  | None, 0 -> msg
  | None, n -> Printf.sprintf "line %d: %s" n msg
  | Some p, 0 -> Printf.sprintf "%s: %s" p msg
  | Some p, n -> Printf.sprintf "%s:%d: %s" p n msg

let parse_string ?model_name text =
  match parse ?model_name text with Ok nl -> Ok nl | Error e -> Error (format_error e)

let parse_file path =
  match Spr_util.Persist.read_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok text -> (
    match parse text with Ok nl -> Ok nl | Error e -> Error (format_error ~path e))

let to_string ?(model_name = "top") nl =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (".model " ^ model_name ^ "\n");
  let signal_of_net net = (Netlist.net nl net).Netlist.net_name in
  let inputs = ref [] and outputs = ref [] in
  Array.iter
    (fun c ->
      match c.Netlist.kind with
      | Cell_kind.Input -> (
        match Netlist.out_net nl c.Netlist.id with
        | Some n -> inputs := signal_of_net n :: !inputs
        | None -> ())
      | Cell_kind.Output ->
        outputs := signal_of_net (Netlist.in_net nl c.Netlist.id 0) :: !outputs
      | Cell_kind.Comb | Cell_kind.Seq -> ())
    (Netlist.cells nl);
  if !inputs <> [] then
    Buffer.add_string buf (".inputs " ^ String.concat " " (List.rev !inputs) ^ "\n");
  if !outputs <> [] then
    Buffer.add_string buf (".outputs " ^ String.concat " " (List.rev !outputs) ^ "\n");
  Array.iter
    (fun c ->
      let id = c.Netlist.id in
      match c.Netlist.kind with
      | Cell_kind.Input | Cell_kind.Output -> ()
      | Cell_kind.Comb -> (
        match Netlist.out_net nl id with
        | None -> ()
        | Some out ->
          let fanins =
            Array.to_list (Array.map signal_of_net (Netlist.in_nets nl id))
          in
          Buffer.add_string buf
            (".names " ^ String.concat " " (fanins @ [ signal_of_net out ]) ^ "\n");
          if fanins <> [] then
            Buffer.add_string buf (String.make (List.length fanins) '1' ^ " 1\n")
          else Buffer.add_string buf "1\n")
      | Cell_kind.Seq -> (
        match Netlist.out_net nl id with
        | None -> ()
        | Some out ->
          Buffer.add_string buf
            (Printf.sprintf ".latch %s %s 0\n"
               (signal_of_net (Netlist.in_net nl id 0))
               (signal_of_net out))))
    (Netlist.cells nl);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
