module I = Spr_util.Interval
module Rs = Spr_route.Route_state

(* Index of the claimed segment containing [col] within an hroute. *)
let hseg_index arch (hr : Rs.hroute) col =
  let segs = Spr_arch.Arch.hsegments arch ~channel:hr.Rs.h_channel ~track:hr.Rs.h_track in
  let rec loop i =
    if i > hr.Rs.h_shi then invalid_arg "Net_delay: column outside hroute"
    else if I.contains segs.(i) col then i
    else loop (i + 1)
  in
  loop hr.Rs.h_slo

let vseg_index arch (vr : Rs.vroute) channel =
  let segs = Spr_arch.Arch.vsegments arch ~col:vr.Rs.v_col ~vtrack:vr.Rs.v_vtrack in
  let rec loop i =
    if i > vr.Rs.v_shi then invalid_arg "Net_delay: channel outside vroute"
    else if I.contains segs.(i) channel then i
    else loop (i + 1)
  in
  loop vr.Rs.v_slo

let build_rc_tree dm st net =
  match Rs.embedding st net with
  | None -> None
  | Some emb ->
    let arch = Rs.arch st in
    let place = Rs.place st in
    let nl = Rs.netlist st in
    let tree = Rc_tree.create () in
    let half_fuse = dm.Delay_model.c_antifuse /. 2.0 in
    (* One node per claimed horizontal segment, chained with antifuse
       edges that also carry the wire resistance of the two halves. *)
    let hnode = Hashtbl.create 16 in
    List.iter
      (fun (ch, (hr : Rs.hroute)) ->
        let segs = Spr_arch.Arch.hsegments arch ~channel:ch ~track:hr.Rs.h_track in
        for s = hr.Rs.h_slo to hr.Rs.h_shi do
          let len = float_of_int (I.length segs.(s)) in
          let n = Rc_tree.add_node tree ~cap:(dm.Delay_model.c_hseg *. len) in
          Hashtbl.replace hnode (ch, s) n;
          if s > hr.Rs.h_slo then begin
            let prev = Hashtbl.find hnode (ch, s - 1) in
            let len_prev = float_of_int (I.length segs.(s - 1)) in
            let res =
              dm.Delay_model.r_antifuse
              +. (dm.Delay_model.r_hseg *. (len +. len_prev) /. 2.0)
            in
            Rc_tree.add_edge tree prev n ~res;
            Rc_tree.add_cap tree ~node:prev ~cap:half_fuse;
            Rc_tree.add_cap tree ~node:n ~cap:half_fuse
          end
        done)
      emb.Rs.e_hroutes;
    (* Vertical spine nodes, then cross antifuses tying each channel's
       chain to the spine. *)
    (match emb.Rs.e_global with
    | None -> ()
    | Some vr ->
      let segs = Spr_arch.Arch.vsegments arch ~col:vr.Rs.v_col ~vtrack:vr.Rs.v_vtrack in
      let vnode = Hashtbl.create 8 in
      for s = vr.Rs.v_slo to vr.Rs.v_shi do
        let len = float_of_int (I.length segs.(s)) in
        let n = Rc_tree.add_node tree ~cap:(dm.Delay_model.c_vseg *. len) in
        Hashtbl.replace vnode s n;
        if s > vr.Rs.v_slo then begin
          let prev = Hashtbl.find vnode (s - 1) in
          let len_prev = float_of_int (I.length segs.(s - 1)) in
          let res =
            dm.Delay_model.r_antifuse +. (dm.Delay_model.r_vseg *. (len +. len_prev) /. 2.0)
          in
          Rc_tree.add_edge tree prev n ~res;
          Rc_tree.add_cap tree ~node:prev ~cap:half_fuse;
          Rc_tree.add_cap tree ~node:n ~cap:half_fuse
        end
      done;
      List.iter
        (fun (ch, hr) ->
          let v = Hashtbl.find vnode (vseg_index arch vr ch) in
          let h = Hashtbl.find hnode (ch, hseg_index arch hr vr.Rs.v_col) in
          Rc_tree.add_edge tree v h ~res:dm.Delay_model.r_antifuse;
          Rc_tree.add_cap tree ~node:v ~cap:half_fuse;
          Rc_tree.add_cap tree ~node:h ~cap:half_fuse)
        emb.Rs.e_hroutes);
    let attach_pin ~cap ~extra_res ch col =
      match List.assoc_opt ch emb.Rs.e_hroutes with
      | None -> invalid_arg "Net_delay: pin in channel without hroute"
      | Some hr ->
        let h = Hashtbl.find hnode (ch, hseg_index arch hr col) in
        let n = Rc_tree.add_node tree ~cap in
        Rc_tree.add_edge tree n h ~res:(dm.Delay_model.r_antifuse +. extra_res);
        Rc_tree.add_cap tree ~node:n ~cap:half_fuse;
        Rc_tree.add_cap tree ~node:h ~cap:half_fuse;
        n
    in
    let netrec = Spr_netlist.Netlist.net nl net in
    let driver = netrec.Spr_netlist.Netlist.driver in
    let out_pin = (Spr_netlist.Netlist.cell nl driver).Spr_netlist.Netlist.n_inputs in
    let dch = Spr_layout.Placement.pin_channel place ~cell:driver ~pin:out_pin in
    let dcol = Spr_layout.Placement.pin_col place ~cell:driver ~pin:out_pin in
    let root = attach_pin ~cap:0.0 ~extra_res:dm.Delay_model.r_driver dch dcol in
    let sink_nodes =
      Array.map
        (fun (cell, pin) ->
          let ch = Spr_layout.Placement.pin_channel place ~cell ~pin in
          let col = Spr_layout.Placement.pin_col place ~cell ~pin in
          attach_pin ~cap:dm.Delay_model.c_pin ~extra_res:0.0 ch col)
        netrec.Spr_netlist.Netlist.sinks
    in
    Some (tree, root, sink_nodes)

let routed_sink_delays dm st net =
  match build_rc_tree dm st net with
  | None -> None
  | Some (tree, root, sink_nodes) ->
    let delays = Rc_tree.elmore tree ~root in
    Some (Array.map (fun n -> delays.(n)) sink_nodes)

(* Crude pre-embedding estimate: relate the net's spatial extent to the
   probable wire and antifuse load. Accuracy is secondary; what matters
   is growing monotonically with span and expected antifuse count. *)
let estimate dm st net =
  let place = Rs.place st in
  let pins = Spr_layout.Placement.net_pin_positions place net in
  match pins with
  | [] | [ _ ] -> 0.0
  | _ ->
    let arch = Rs.arch st in
    let chans = List.map fst pins and cols = List.map snd pins in
    let clo = List.fold_left min max_int chans and chi = List.fold_left max min_int chans in
    let xlo = List.fold_left min max_int cols and xhi = List.fold_left max min_int cols in
    let col_span = float_of_int (xhi - xlo + 1) in
    let chan_span = float_of_int (chi - clo) in
    let n_chans = float_of_int (List.length (List.sort_uniq compare chans)) in
    let n_sinks = float_of_int (List.length pins - 1) in
    let avg_seg = Spr_arch.Arch.avg_hseg_length arch in
    let est_segs_per_chan = Float.max 1.0 (Float.round (col_span /. avg_seg)) in
    let est_antifuses =
      (n_chans *. (est_segs_per_chan -. 1.0))  (* horizontal antifuses *)
      +. (2.0 *. (n_sinks +. 1.0))  (* cross antifuses at pins *)
      +. (2.0 *. Float.min chan_span 1.0 *. n_chans)  (* spine taps *)
    in
    let total_c =
      (dm.Delay_model.c_hseg *. col_span *. n_chans)
      +. (dm.Delay_model.c_vseg *. chan_span)
      +. (dm.Delay_model.c_pin *. n_sinks)
      +. (dm.Delay_model.c_antifuse *. est_antifuses)
    in
    let path_r =
      (dm.Delay_model.r_hseg *. col_span)
      +. (dm.Delay_model.r_vseg *. chan_span)
      +. (dm.Delay_model.r_antifuse *. (est_segs_per_chan +. 3.0))
    in
    ((dm.Delay_model.r_driver +. (0.5 *. path_r)) *. total_c)

let sink_delays dm st net =
  let nl = Rs.netlist st in
  let n_sinks = Array.length (Spr_netlist.Netlist.net nl net).Spr_netlist.Netlist.sinks in
  if n_sinks = 0 then [||]
  else
    match routed_sink_delays dm st net with
    | Some d -> d
    | None -> Array.make n_sinks (estimate dm st net)

let sink_delays_into dm st net ~out =
  let nl = Rs.netlist st in
  let n_sinks = Array.length (Spr_netlist.Netlist.net nl net).Spr_netlist.Netlist.sinks in
  if n_sinks > 0 then begin
    match build_rc_tree dm st net with
    | Some (tree, root, sink_nodes) ->
      let delays = Rc_tree.elmore tree ~root in
      Array.iteri (fun i n -> out.(i) <- delays.(n)) sink_nodes
    | None -> Array.fill out 0 n_sinks (estimate dm st net)
  end;
  n_sinks
