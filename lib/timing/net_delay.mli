(** Interconnect delay of one net, driver to each sink.

    Fully embedded nets get a detailed RC-tree Elmore evaluation over
    their exact segments and antifuses (paper §3.5: "we calculate the
    Elmore delay" once "the exact antifuse usage is known"). Nets not yet
    embedded get a crude estimate relating the net's spatial extent to
    the probable number of antifuses it will encounter — inaccurate, but
    sufficient early in layout while other cost terms push the net toward
    a feasible path. *)

val build_rc_tree :
  Delay_model.t ->
  Spr_route.Route_state.t ->
  int ->
  (Rc_tree.t * int * int array) option
(** [(tree, root node, per-sink nodes)] for a fully embedded net: one
    node per claimed segment, antifuse edges between adjacent segments,
    cross-antifuse taps for the driver, sinks, and spine junctions.
    [None] when the net is not fully embedded. Both the Elmore evaluator
    and the two-moment {!Awe} cross-checker consume this tree. *)

val routed_sink_delays :
  Delay_model.t -> Spr_route.Route_state.t -> int -> float array option
(** Per-sink Elmore delays, indexed like the net's sink array; [None]
    when the net is not fully embedded. *)

val estimate : Delay_model.t -> Spr_route.Route_state.t -> int -> float
(** Crude single-value estimate from the pin bounding box and the
    fabric's average segment length. *)

val sink_delays : Delay_model.t -> Spr_route.Route_state.t -> int -> float array
(** Per-sink delays: exact when embedded, otherwise the estimate
    replicated. Zero-length for nets without sinks. *)

val sink_delays_into :
  Delay_model.t -> Spr_route.Route_state.t -> int -> out:float array -> int
(** Allocation-reusing variant of {!sink_delays}: writes the per-sink
    delays into the first [n_sinks] cells of [out] (which must be at
    least that long) and returns [n_sinks]. The incremental analyzer
    keeps one scratch buffer across moves and only materializes a fresh
    array when a net's delays actually changed. *)
