module Rs = Spr_route.Route_state
module Nl = Spr_netlist.Netlist
module J = Spr_util.Journal

type t = {
  dm : Delay_model.t;
  st : Rs.t;
  nl : Nl.t;
  lev : Spr_netlist.Levelize.t;
  arr_out : float array;
  net_delays : float array array;  (* per net, per sink index *)
  sink_idx : int array array;  (* cell -> input pin -> index into feeding net's sinks *)
  sink_cells : int array;  (* cells whose inputs end paths *)
  prop_fanout : int array array;  (* cell -> fanout cells that propagate *)
  net_prop_sinks : int array array;  (* net -> sink cells that propagate, deduped *)
  frontier : int Spr_util.Pqueue.t;
  seen : int array;  (* generation stamps *)
  mutable generation : int;
  scratch : float array;  (* reused across moves for delay recomputation *)
  mutable crit : float;  (* memoized critical delay *)
  mutable crit_valid : bool;
}

let eps = 1e-12

let delay_model t = t.dm

let is_source nl c =
  let cell = Nl.cell nl c in
  Spr_netlist.Cell_kind.is_timing_source cell.Nl.kind || cell.Nl.n_inputs = 0

let arrival_in t c =
  let ins = Nl.in_nets t.nl c in
  let worst = ref 0.0 in
  Array.iteri
    (fun pin net ->
      let d = (Nl.net t.nl net).Nl.driver in
      let a = t.arr_out.(d) +. t.net_delays.(net).(t.sink_idx.(c).(pin)) in
      if a > !worst then worst := a)
    ins;
  !worst

let intrinsic t c = Delay_model.intrinsic t.dm (Nl.cell t.nl c).Nl.kind

let compute_arr_out t c =
  if is_source t.nl c then intrinsic t c else arrival_in t c +. intrinsic t c

let full_update t =
  for net = 0 to Nl.n_nets t.nl - 1 do
    t.net_delays.(net) <- Net_delay.sink_delays t.dm t.st net
  done;
  Array.iter
    (fun c ->
      if Spr_netlist.Cell_kind.has_output (Nl.cell t.nl c).Nl.kind then
        t.arr_out.(c) <- compute_arr_out t c)
    t.lev.Spr_netlist.Levelize.order;
  t.crit_valid <- false

let create dm st =
  let nl = Rs.netlist st in
  let lev =
    match Spr_netlist.Levelize.run nl with
    | Ok l -> l
    | Error e -> invalid_arg ("Sta.create: " ^ e)
  in
  let n = Nl.n_cells nl in
  let sink_idx =
    Array.init n (fun c ->
        let ins = Nl.in_nets nl c in
        Array.mapi
          (fun pin net ->
            let sinks = (Nl.net nl net).Nl.sinks in
            let rec find i =
              if i >= Array.length sinks then invalid_arg "Sta.create: sink index missing"
              else if sinks.(i) = (c, pin) then i
              else find (i + 1)
            in
            find 0)
          ins)
  in
  let sink_cells =
    Array.of_seq
      (Seq.filter_map
         (fun c ->
           if Spr_netlist.Cell_kind.is_timing_sink (Nl.cell nl c).Nl.kind then Some c else None)
         (Seq.init n (fun c -> c)))
  in
  let propagates c =
    (not (is_source nl c)) && Spr_netlist.Cell_kind.has_output (Nl.cell nl c).Nl.kind
  in
  let net_prop_sinks =
    Array.init (Nl.n_nets nl) (fun net ->
        let sinks = (Nl.net nl net).Nl.sinks in
        Array.of_list
          (List.sort_uniq compare
             (Array.to_list
                (Array.of_seq
                   (Seq.filter_map
                      (fun (c, _) -> if propagates c then Some c else None)
                      (Array.to_seq sinks))))))
  in
  let prop_fanout =
    Array.init n (fun c ->
        match Nl.out_net nl c with
        | None -> [||]
        | Some net -> net_prop_sinks.(net))
  in
  let max_sinks = ref 0 in
  for net = 0 to Nl.n_nets nl - 1 do
    max_sinks := max !max_sinks (Array.length (Nl.net nl net).Nl.sinks)
  done;
  let t =
    {
      dm;
      st;
      nl;
      lev;
      arr_out = Array.make n 0.0;
      net_delays = Array.init (Nl.n_nets nl) (fun _ -> [||]);
      sink_idx;
      sink_cells;
      prop_fanout;
      net_prop_sinks;
      frontier = Spr_util.Pqueue.create ();
      seen = Array.make n (-1);
      generation = 0;
      scratch = Array.make (max 1 !max_sinks) 0.0;
      crit = 0.0;
      crit_valid = false;
    }
  in
  full_update t;
  t

(* The critical delay is pure in [arr_out]/[net_delays]; both only
   change through [invalidate] (and its journal undos) and
   [full_update], all of which drop the memo, so the cached scan is
   always the scan the state would produce. *)
let critical_delay t =
  if not t.crit_valid then begin
    t.crit <- Array.fold_left (fun acc c -> Float.max acc (arrival_in t c)) 0.0 t.sink_cells;
    t.crit_valid <- true
  end;
  t.crit

let arrival_out t c = t.arr_out.(c)

(* Frontier propagation: affected cells are processed in minimum-level
   order; a cell whose output arrival changes puts its combinational
   fanouts on the frontier (boundary sinks have no stored state — the
   critical delay reads their inputs directly). *)
let invalidate t j nets =
  t.generation <- t.generation + 1;
  let gen = t.generation in
  let push c =
    if t.seen.(c) <> gen then begin
      t.seen.(c) <- gen;
      Spr_util.Pqueue.add t.frontier t.lev.Spr_netlist.Levelize.levels.(c) c
    end
  in
  List.iter
    (fun net ->
      let old = t.net_delays.(net) in
      (* Recompute into the shared scratch buffer; a fresh array is only
         materialized when the delays actually changed. *)
      let n = Net_delay.sink_delays_into t.dm t.st net ~out:t.scratch in
      let changed =
        Array.length old <> n
        ||
        let rec diff i =
          i < n && (Float.abs (old.(i) -. t.scratch.(i)) > eps || diff (i + 1))
        in
        diff 0
      in
      if changed then begin
        t.net_delays.(net) <- Array.sub t.scratch 0 n;
        t.crit_valid <- false;
        J.record j (fun () ->
            t.net_delays.(net) <- old;
            t.crit_valid <- false);
        Array.iter push t.net_prop_sinks.(net)
      end)
    nets;
  let rec drain () =
    match Spr_util.Pqueue.pop_min t.frontier with
    | None -> ()
    | Some (_, c) ->
      let fresh = compute_arr_out t c in
      let old = t.arr_out.(c) in
      if Float.abs (fresh -. old) > eps then begin
        t.arr_out.(c) <- fresh;
        t.crit_valid <- false;
        J.record j (fun () ->
            t.arr_out.(c) <- old;
            t.crit_valid <- false);
        Array.iter push t.prop_fanout.(c)
      end;
      drain ()
  in
  drain ()

(* Walk backward along argmax inputs until a source. The starting sink
   may itself be a flip-flop (both boundary roles); its input side must
   still be traced. *)
let path_to t sink =
  let rec back ?(first = false) c acc =
    let acc = c :: acc in
    if (Nl.cell t.nl c).Nl.n_inputs = 0 || ((not first) && is_source t.nl c) then acc
    else begin
      let ins = Nl.in_nets t.nl c in
      let best = ref (-1) and best_a = ref neg_infinity in
      Array.iteri
        (fun pin net ->
          let d = (Nl.net t.nl net).Nl.driver in
          let a = t.arr_out.(d) +. t.net_delays.(net).(t.sink_idx.(c).(pin)) in
          if a > !best_a then begin
            best_a := a;
            best := d
          end)
        ins;
      if !best = -1 then acc else back !best acc
    end
  in
  back ~first:true sink []

let timing_sinks t = Array.copy t.sink_cells

let critical_path t =
  let worst_sink = ref (-1) and worst = ref neg_infinity in
  Array.iter
    (fun c ->
      let a = arrival_in t c in
      if a > !worst then begin
        worst := a;
        worst_sink := c
      end)
    t.sink_cells;
  if !worst_sink = -1 then [] else path_to t !worst_sink
