(** Simultaneous placement, global routing and detailed routing
    (paper §3) — the system's primary entry point.

    One annealing process manipulates all design variables concurrently:
    the move set is cell swaps/translations plus pinmap reassignments;
    every placement move rips up the attached nets and triggers an
    incremental global + detailed rerouting cascade and an incremental
    critical-path update; the cost is

    {v Cost = Wg*G + Wd*D + Wt*T        (paper eq. 1) v}

    with no wirelength term — wirelength minimization happens
    constructively inside the routers. Intermediate layouts are
    deliberately incomplete: unroutable nets simply stay queued and
    penalized until the placement becomes compliant. *)

type config = {
  seed : int;
  pinmap_move_prob : float;
      (** Fraction of moves that reassign a pinmap instead of swapping
          cells (paper §3.2 move set). *)
  enable_pinmap_moves : bool;  (** Off for the A2 ablation. *)
  router : Spr_route.Router.config;
  timing_driven_routing : bool;
      (** Order the rip-up/retry queues by net criticality (the driver's
          current arrival time) ahead of estimated length, as the
          routers the paper builds on do for critical nets. Off by
          default. *)
  delay_model : Spr_timing.Delay_model.t;
  g_per_net : float;  (** See {!Spr_anneal.Weights}. *)
  d_per_net : float;
  t_emphasis : float;
  anneal : Spr_anneal.Engine.config option;  (** [None]: sized to the netlist. *)
  max_swap_tries : int;  (** Attempts to find a legal swap per move. *)
  validate : bool;
      (** Run the full {!Spr_check.Audit} subsystem (placement bijection,
          routing-mirror oracle, from-scratch STA diff) every temperature,
          every [validate_every] accepted moves, and on the final state;
          any finding raises [Failure]. *)
  validate_every : int;
      (** Accepted moves between audits when [validate] is on (clamped to
          >= 1). *)
}

val default_config : config
(** [seed = 1], [pinmap_move_prob = 0.15], pinmap moves on, default
    router/delay/weight parameters, auto-sized annealing, no
    validation ([validate_every = 50]). *)

type result = {
  place : Spr_layout.Placement.t;
  route : Spr_route.Route_state.t;
  sta : Spr_timing.Sta.t;
  critical_delay : float;  (** ns, from the final full STA. *)
  g : int;
  d : int;
  fully_routed : bool;
  anneal_report : Spr_anneal.Engine.report;
  dynamics : Dynamics.sample list;
  cpu_seconds : float;
}

val run : ?config:config -> Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> (result, string) Stdlib.result
(** Errors when the netlist does not fit the fabric or has combinational
    cycles. *)

val run_exn : ?config:config -> Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> result

val audit_result : result -> Spr_check.Finding.t list
(** Run the full audit subsystem over a finished layout (placement,
    routing mirrors, STA) — what [spr route --selfcheck] prints. Empty
    means the incremental state matches the from-scratch oracles. *)
