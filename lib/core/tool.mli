(** Simultaneous placement, global routing and detailed routing
    (paper §3) — the system's primary entry point.

    One annealing process manipulates all design variables concurrently:
    the move set is cell swaps/translations plus pinmap reassignments;
    every placement move rips up the attached nets and triggers an
    incremental global + detailed rerouting cascade and an incremental
    critical-path update; the cost is

    {v Cost = Wg*G + Wd*D + Wt*T        (paper eq. 1) v}

    with no wirelength term — wirelength minimization happens
    constructively inside the routers. Intermediate layouts are
    deliberately incomplete: unroutable nets simply stay queued and
    penalized until the placement becomes compliant.

    {b Crash safety.} With a run directory set, the run writes an
    atomic, checksummed {!Checkpoint.V2} snapshot at temperature
    boundaries and on interruption, rotating the last [snapshot_keep]
    files. Feeding the newest loadable snapshot back through [?resume]
    continues the run mid-schedule, bit-identically to the
    uninterrupted run. Budgets and {!request_interrupt} (or the
    SIGINT/SIGTERM handlers from {!install_signal_handlers}) stop the
    run between moves — the in-flight move always completes — write a
    final checkpoint, and return the best layout seen so far tagged
    [Interrupted].

    {b Parallel portfolio.} {!run_portfolio} runs K replicas of the
    whole anneal on separate OCaml domains, each with its own RNG
    stream derived by {!Spr_util.Rng.stream}, its own pipeline, route
    state and profile. Replicas either run fully independently or
    periodically adopt the portfolio-best layout
    ({!Spr_anneal.Portfolio.exchange}); either way each replica's
    trajectory is a deterministic function of [(seed, replica_index)],
    a one-replica portfolio is bit-identical to {!run}, and the fleet
    checkpoints/resumes through the same crash-safety layer
    (per-replica snapshots plus persisted exchange rounds). *)

(** Grouped, validated run configuration.

    The flat 20-field record this replaces scattered its clamping
    across the run paths; here {!Config.validated} is the single smart
    constructor — every entry point applies it, rejecting nonsense
    (e.g. a move probability outside [0, 1]) as
    [Error (Invalid_config _)] and normalizing the clamped fields in
    one place. Build configurations from {!Config.default} with the
    [with_*] builders: they compose by piping, e.g.
    [Config.(default |> with_seed 7 |> with_validate true)]. *)
module Config : sig
  type moves = {
    pinmap_move_prob : float;
        (** Fraction of moves that reassign a pinmap instead of
            swapping cells (paper §3.2 move set). Must lie in
            [0, 1]. *)
    enable_pinmap_moves : bool;  (** Off for the A2 ablation. *)
    max_swap_tries : int;
        (** Attempts to find a legal swap per move; must be >= 1. *)
  }

  type weights = {
    g_per_net : float;  (** See {!Spr_anneal.Weights}. *)
    d_per_net : float;
    t_emphasis : float;
  }

  type budget = {
    time_budget : float option;
        (** Wall seconds for this invocation; the run stops gracefully
            once exceeded (checked between moves). *)
    max_moves : int option;
        (** Total annealing moves (cumulative across resumes). *)
    stop_after_accepted : int option;
        (** Fault injection: stop (as [Interrupt]) once this many
            moves have been accepted, cumulative across resumes. In a
            portfolio, any replica tripping a budget stops the whole
            fleet. *)
    poll : (unit -> bool) option;
        (** External cancellation hook, polled between moves alongside
            the budgets: the first poll returning [true] stops the run
            gracefully as [Interrupt] (final checkpoint, best-so-far
            result) — the service layer's per-job cancellation rides
            this. The closure runs on every replica's domain and must
            be cheap and thread-safe. *)
  }

  type persistence = {
    run_dir : string option;
        (** Directory for {!Checkpoint.V2} snapshots; [None] disables
            checkpointing entirely. *)
    snapshot_every : int;
        (** Write a snapshot every this many temperature boundaries
            (normalized to >= 1). *)
    snapshot_keep : int;  (** Rotation depth (normalized to >= 1). *)
    final_checkpoint : bool;
        (** Write a snapshot when the run is interrupted (default).
            The crash-fault-injection harness turns this off so an
            injected "crash" leaves only the periodic snapshots
            behind, exactly like a real [kill -9]. *)
  }

  type validation = {
    validate : bool;
        (** Run the full {!Spr_check.Audit} subsystem (placement
            bijection, routing-mirror oracle, from-scratch STA diff)
            every temperature, every [validate_every] accepted moves,
            and on the final state; any finding makes the run return
            [Error (Audit_failed _)]. *)
    validate_every : int;
        (** Accepted moves between audits when [validate] is on
            (normalized to >= 1). *)
  }

  type scheduler = {
    kind : [ `Barrier | `Racing ];
        (** [`Barrier] is the historical all-active exchange barrier —
            bit-identical to the pre-scheduler portfolio. [`Racing]
            fits an online predictor on each replica's annealing
            dynamics and early-kills replicas whose predicted terminal
            quality trails the fleet leader, reallocating their domains
            to clone-and-perturb forks of the leader. *)
    race_margin : float;
        (** Kill threshold in unrouted-net units: a replica dies only
            when its predicted terminal metric trails the leader's by
            more than this margin plus both fit uncertainties. Must be
            finite and >= 0 (default 1.0). *)
    race_warmup : int;
        (** Temperature steps before the first racing decision round;
            kills based on too-early dynamics are noise. Must be >= 0
            (default 10). *)
    race_every : int;
        (** Temperature steps between racing decision rounds. Must be
            >= 1 (default 5). *)
    race_horizon : int;
        (** How many temperature steps past the decision round the
            predictor extrapolates when ranking replicas. Must be >= 1
            (default 10). *)
    race_sync : bool;
        (** [true] (default): decision rounds are synchronous
            rendezvous on masked trace content — racing is then
            bit-reproducible and killing rounds persist as
            [sched-*.rec] records so kill+resume matches the
            uninterrupted run. [false] ("racing:free"): replicas race
            asynchronously against the last published predictions —
            faster, but not reproducible and never persisted. *)
  }

  type parallel = {
    replicas : int;  (** Portfolio width K; must be >= 1. *)
    exchange : Spr_anneal.Portfolio.exchange;
        (** Cross-replica layout exchange policy; only meaningful when
            [replicas > 1], and only under the [`Barrier] scheduler
            ({!validated} rejects [`Racing] + [Best_exchange]). *)
    scheduler : scheduler;
        (** Which replica scheduler coordinates the fleet; only
            meaningful when [replicas > 1]. *)
    stream : int;
        (** Which derived RNG stream ({!Spr_util.Rng.stream}) a serial
            run draws from; stream 0 is exactly [Rng.create seed].
            {!run_portfolio} overrides this per replica, so re-running
            the winning replica standalone is just a serial run with
            [with_stream k]. Must be >= 0. *)
    route_workers : int;
        (** Fleet-wide domain budget for the intra-move parallel reroute
            ({!Spr_route.Parallel}): each replica gets
            [Spr_anneal.Portfolio.worker_share ~budget:route_workers
            ~replicas] workers, and a share of 1 routes inline with no
            pool. Results are bit-identical for every setting — the
            batch planner and its trace counters never depend on the
            worker count — so this is purely a throughput knob. Must be
            >= 1 (the default). *)
    route_grain : int;
        (** Chunk size of the pool's parallel-for dispatch; affects
            scheduling only, never results. Must be >= 1 (default 8). *)
  }

  type obs = {
    record : bool;
        (** Record span/temperature/metric events in memory even when
            no trace file is requested, surfacing them on
            [result.events]. Off by default — with recording off every
            instrumentation point is a strict no-op. *)
    trace_path : string option;
        (** Write the schema-versioned JSONL event trace here
            (implies recording). *)
    report_path : string option;
        (** Write the {!Spr_obs.Report} JSON here. *)
    label : string option;  (** Run label in traces and reports. *)
    on_event : (Spr_obs.Trace.event -> unit) option;
        (** Live event hook (implies recording): every trace event is
            handed to the callback synchronously as it is emitted, on
            the emitting replica's domain — this is how the service
            daemon streams [spr-trace-1] events to a client while the
            job runs. Portfolio replicas share the one callback, so it
            must lock any shared state; exceptions it raises abort the
            run. *)
  }

  type flow = {
    preset : string;
        (** Named flow preset ([sa], [ap+sa], [ap+greedy+route], [seq])
            or any ['+']-joined chain of valid stage names. The tool's
            own entry points only ever run the [sa] stage; the full
            multi-stage interpretation lives in [Spr_flow] (which sits
            above this library) — the vocabulary and validation live
            here so {!validated} rejects bad flows up front. *)
    stage_budgets : (string * float) list;
        (** Per-stage wall-second budgets, keyed by stage name. Every
            key must be a stage of the chosen preset and every budget a
            positive finite number of seconds. *)
  }

  type t = {
    seed : int;
    router : Spr_route.Router.config;
    timing_driven_routing : bool;
        (** Order the rip-up/retry queues by net criticality (the
            driver's current arrival time) ahead of estimated length,
            as the routers the paper builds on do for critical nets.
            Off by default. *)
    delay_model : Spr_timing.Delay_model.t;
    anneal : Spr_anneal.Engine.config option;
        (** [None]: sized to the netlist. *)
    moves : moves;
    weights : weights;
    budget : budget;
    persistence : persistence;
    validation : validation;
    parallel : parallel;
    obs : obs;
    flow : flow;
  }

  val default : t
  (** [seed = 1], [pinmap_move_prob = 0.15], pinmap moves on, default
      router/delay/weight parameters, auto-sized annealing, no
      validation ([validate_every = 50]), no budgets, no checkpointing
      ([snapshot_every = 1], [snapshot_keep = 3],
      [final_checkpoint = true]), serial ([replicas = 1],
      [Independent], [`Barrier] scheduler, [stream = 0],
      [route_workers = 1], [route_grain = 8]). *)

  val scheduler_to_string : scheduler -> string
  (** ["barrier"], ["racing"], or ["racing:free"]. *)

  val scheduler_of_string : string -> ([ `Barrier | `Racing ] * bool, string) Stdlib.result
  (** Parse a scheduler spelling to its [(kind, race_sync)] pair;
      rejects unknown names with the valid vocabulary. *)

  val validated : t -> (t, string) Stdlib.result
  (** The smart constructor: rejects out-of-range fields (move
      probability outside [0, 1], non-positive replica count or
      exchange period, negative budgets or stream, non-finite
      weights...) with one message naming every offending field, and
      normalizes the clamped fields ([validate_every],
      [snapshot_every], [snapshot_keep] to >= 1). Every entry point
      calls this; [Ok] configurations pass through it unchanged. *)

  (** {2 Builders} — each returns an updated copy; pipe them. *)

  val with_seed : int -> t -> t

  val with_router : Spr_route.Router.config -> t -> t

  val with_timing_driven_routing : bool -> t -> t

  val with_delay_model : Spr_timing.Delay_model.t -> t -> t

  val with_anneal : Spr_anneal.Engine.config -> t -> t

  val with_moves : moves -> t -> t

  val with_pinmap_moves : ?prob:float -> bool -> t -> t
  (** Toggle pinmap moves, optionally setting the probability. *)

  val with_max_swap_tries : int -> t -> t

  val with_weights : weights -> t -> t

  val with_budget : budget -> t -> t

  val with_time_budget : float -> t -> t

  val with_max_moves : int -> t -> t

  val with_stop_after_accepted : int -> t -> t

  val with_cancel_poll : (unit -> bool) -> t -> t

  val with_persistence : persistence -> t -> t

  val with_run_dir : ?snapshot_every:int -> ?snapshot_keep:int -> string -> t -> t

  val with_final_checkpoint : bool -> t -> t

  val with_validation : validation -> t -> t

  val with_validate : ?every:int -> bool -> t -> t

  val with_parallel : parallel -> t -> t

  val with_replicas : ?exchange:Spr_anneal.Portfolio.exchange -> int -> t -> t

  val with_stream : int -> t -> t

  val with_route_workers : int -> t -> t

  val with_route_grain : int -> t -> t

  val with_scheduler : scheduler -> t -> t

  val with_scheduler_kind : ?sync:bool -> [ `Barrier | `Racing ] -> t -> t
  (** Switch the scheduler kind, optionally setting [race_sync]; the
      racing tuning knobs keep their current values. *)

  val with_race_margin : float -> t -> t

  val with_race_warmup : int -> t -> t

  val with_race_every : int -> t -> t

  val with_obs : obs -> t -> t

  val with_trace_recording : bool -> t -> t

  val with_trace_file : string -> t -> t

  val with_report_file : string -> t -> t

  val with_run_label : string -> t -> t

  val with_on_event : (Spr_obs.Trace.event -> unit) -> t -> t

  (** {2 Flow vocabulary} *)

  val flow_stage_names : string list
  (** The five stage names: [ap; sa; greedy; route; sta]. *)

  val flow_preset_names : string list
  (** The registered named presets: [sa; ap+sa; ap+greedy+route; seq]. *)

  val flow_stages_of_preset : string -> (string list, string) Stdlib.result
  (** Resolve a preset name (or an ad-hoc ['+']-joined stage chain) to
      its stage list. Rejects unknown stage names, repeats, and
      impossible orders ([ap] anywhere but first, [route] with nothing
      placed, [sta] with nothing routed), with a message listing the
      valid presets. *)

  val with_flow : flow -> t -> t

  val with_flow_preset : string -> t -> t

  val with_stage_budget : string -> float -> t -> t
  (** [with_stage_budget stage seconds] sets/overwrites one stage's
      wall-clock budget. *)
end

type config = Config.t

val default_config : config
(** [Config.default]. *)

(** {1 Outcomes}

    Stop reasons, statuses and errors are defined once in {!Outcome}
    and re-exported here by type equation, so [Tool.Completed],
    [Outcome.Completed] and friends are the same constructors. *)

type stop_reason = Outcome.stop_reason = Time_budget | Move_budget | Interrupt

type status = Outcome.status =
  | Completed
  | Interrupted of stop_reason
      (** The run stopped early; the result holds the best-so-far
          layout, and the run directory (if set) holds a resumable
          checkpoint. *)

val stop_reason_to_string : stop_reason -> string

type error = Outcome.error =
  | Invalid_config of string
      (** {!Config.validated} rejected the configuration. *)
  | Invalid_design of string
      (** The netlist does not fit the fabric or has combinational
          cycles. *)
  | Audit_failed of Spr_check.Finding.t list
      (** Validation caught an invariant violation mid-run. *)
  | Resume_failed of string  (** The snapshot does not match the design. *)

exception Tool_error of error
(** Raised only by the [_exn] entry points. The same exception as
    {!Outcome.Error} (a rebinding), so either name catches it. *)

val error_to_string : error -> string

type result = {
  place : Spr_layout.Placement.t;
  route : Spr_route.Route_state.t;
  sta : Spr_timing.Sta.t;
  critical_delay : float;  (** ns, from the final full STA. *)
  g : int;
  d : int;
  fully_routed : bool;
  anneal_report : Spr_anneal.Engine.report;
  dynamics : Dynamics.sample list;
  profile : Profile.t;
      (** Cumulative per-phase move-pipeline instrumentation for this
          invocation (not carried across resumes). *)
  cpu_seconds : float;  (** This invocation only, not cumulative across resumes. *)
  status : status;
  best_cost : float;
      (** The delivered layout under the weight-independent best-so-far
          metric (unrouted nets dominate, critical delay breaks
          ties). *)
  report : Spr_obs.Report.t;
      (** The unified run report: routing summary, pipeline breakdown,
          dynamics rows and metrics snapshot in one versioned record —
          callers render or export this instead of re-deriving the
          numbers from the fields above. For a serial run
          [r_wall_seconds = r_cpu_seconds]. *)
  events : Spr_obs.Trace.event list;
      (** This replica's raw observability stream (spans, temperature
          rows, metrics dump), tagged with its replica index; empty
          unless [Config.obs] enabled recording. The run-level framing
          is added by {!trace_events}. *)
}

type resume = Checkpoint.V2.loaded

val run :
  ?config:config ->
  ?resume:resume ->
  ?seed_place:Spr_layout.Placement.slot array * int array ->
  ?start_temperature:float ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  (result, error) Stdlib.result
(** With [?resume] the initial placement and routing are skipped and the
    run continues from the snapshot's exact mid-schedule state ([arch]
    is ignored — the restored layout carries its fabric). [config]
    should match the interrupted run's; the annealing schedule itself
    always comes from the snapshot.

    [?seed_place] starts the anneal from the given placement — per-cell
    slots and pinmaps, plain data so callers (and portfolio replicas)
    never share a mutable layout — instead of a random one; it is
    materialized through {!Spr_layout.Placement.create_from}, so an
    inconsistent seed is [Error (Invalid_design _)].
    [?start_temperature] skips the warmup walk and starts cooling at
    the given temperature (see {!Spr_anneal.Engine.run}) — the flow
    layer derives it from the seed placement's cost distribution. Both
    are ignored under [?resume]. *)

val run_exn :
  ?config:config ->
  ?resume:resume ->
  ?seed_place:Spr_layout.Placement.slot array * int array ->
  ?start_temperature:float ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  result

val trace_events : config:config -> Spr_netlist.Netlist.t -> result -> Spr_obs.Trace.event list
(** The complete serial-run trace: [run_start], the replica's event
    stream closed by its [replica_end], then [run_end]. This is exactly
    what [Config.obs.trace_path] writes. *)

(** {1 Parallel portfolio} *)

type portfolio_result = {
  p_best_replica : int;
      (** Replica delivering the lowest [best_cost] (lowest index on
          ties). *)
  p_results : result array;  (** Indexed by replica. *)
  p_profile : Profile.t;
      (** All replicas' pipeline instrumentation merged
          ({!Profile.absorb}); per-replica profiles and dynamics stay
          available on [p_results]. *)
  p_exchanges : Spr_anneal.Portfolio.round_result list;
      (** Every exchange round tripped or replayed, ascending. *)
  p_scheds : Spr_anneal.Scheduler.round_record list;
      (** Every racing decision round that killed a replica (tripped or
          replayed), ascending; empty under the [`Barrier] scheduler. *)
  p_wall_seconds : float;  (** Whole-fleet wall clock. *)
  p_report : Spr_obs.Report.t;
      (** The fleet report: the winning replica's layout-facing
          numbers with the merged pipeline/metrics, summed cpu, the
          fleet wall clock and the exchange-round count. *)
}

val best_result : portfolio_result -> result
(** [p.p_results.(p.p_best_replica)]. *)

val portfolio_trace_events :
  config:config -> Spr_netlist.Netlist.t -> portfolio_result -> Spr_obs.Trace.event list
(** The merged fleet trace: [run_start], each replica's stream (closed
    by its [replica_end]) in replica order, the exchange rounds, the
    racing [sched.kill]/[sched.clone] rows, then [run_end]. A one-replica portfolio's trace is bit-identical to the
    serial {!trace_events} once timestamps are masked. *)

val run_portfolio :
  ?config:config ->
  ?resume_dir:string ->
  ?seed_place:Spr_layout.Placement.slot array * int array ->
  ?start_temperature:float ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  (portfolio_result, error) Stdlib.result
(** Run [config.parallel.replicas] replicas of the anneal
    concurrently, replica [k] drawing from RNG stream [k] (replica 0
    on the calling domain). With one replica this {e is} {!run} — no
    domain is spawned, the configured [stream] is honoured, and the
    output (including snapshot file names) is bit-identical to the
    serial path. With more, replica [k] writes
    [snap-r<k>-NNNNNNNN.ckpt] snapshots into the shared run directory
    and [Best_exchange] rounds are persisted as [exch-*.rec] records
    before any replica acts on them; the racing scheduler likewise
    persists its killing decision rounds as [sched-*.rec] records.
    [?resume_dir] restores the whole
    fleet: each replica resumes from its newest loadable snapshot
    (restarting from scratch deterministically when it has none) and
    recorded exchange/scheduler rounds are replayed, so a
    killed-and-resumed portfolio matches the uninterrupted one. Interruption (signals,
    {!request_interrupt}, any replica's budget) stops every replica
    gracefully and freezes further exchanges. *)

val run_portfolio_exn :
  ?config:config ->
  ?resume_dir:string ->
  ?seed_place:Spr_layout.Placement.slot array * int array ->
  ?start_temperature:float ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  portfolio_result

val audit_result : result -> Spr_check.Finding.t list
(** Run the full audit subsystem over a finished layout (placement,
    routing mirrors, STA) — what [spr route --selfcheck] prints. Empty
    means the incremental state matches the from-scratch oracles. *)

(** {1 Graceful interruption}

    A process-wide atomic flag polled between moves — by every replica,
    when a portfolio is running. The CLI installs handlers so Ctrl-C
    finishes the in-flight moves, writes final checkpoints and returns
    the best-so-far result instead of dying mid-update. *)

val request_interrupt : unit -> unit

val reset_interrupt : unit -> unit

val interrupt_requested : unit -> bool

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!request_interrupt}. Process-wide and
    permanent — for a plain CLI run that owns the process. Embedders
    should prefer {!with_signal_handlers}. *)

val with_signal_handlers : (unit -> 'a) -> 'a
(** Re-entrant form: install the interrupt handlers for the duration of
    the thunk and restore the {e previous} SIGINT/SIGTERM behaviours
    afterwards (exception-safe), so nested or daemon-hosted runs do not
    clobber the host process's signal discipline. *)
