(** Simultaneous placement, global routing and detailed routing
    (paper §3) — the system's primary entry point.

    One annealing process manipulates all design variables concurrently:
    the move set is cell swaps/translations plus pinmap reassignments;
    every placement move rips up the attached nets and triggers an
    incremental global + detailed rerouting cascade and an incremental
    critical-path update; the cost is

    {v Cost = Wg*G + Wd*D + Wt*T        (paper eq. 1) v}

    with no wirelength term — wirelength minimization happens
    constructively inside the routers. Intermediate layouts are
    deliberately incomplete: unroutable nets simply stay queued and
    penalized until the placement becomes compliant.

    {b Crash safety.} With [run_dir] set, the run writes an atomic,
    checksummed {!Checkpoint.V2} snapshot at temperature boundaries and
    on interruption, rotating the last [snapshot_keep] files. Feeding
    the newest loadable snapshot back through [?resume] continues the
    run mid-schedule, bit-identically to the uninterrupted run. Budgets
    ([time_budget], [max_moves]) and {!request_interrupt} (or the
    SIGINT/SIGTERM handlers from {!install_signal_handlers}) stop the
    run between moves — the in-flight move always completes — write a
    final checkpoint, and return the best layout seen so far tagged
    {!Interrupted}. *)

type config = {
  seed : int;
  pinmap_move_prob : float;
      (** Fraction of moves that reassign a pinmap instead of swapping
          cells (paper §3.2 move set). *)
  enable_pinmap_moves : bool;  (** Off for the A2 ablation. *)
  router : Spr_route.Router.config;
  timing_driven_routing : bool;
      (** Order the rip-up/retry queues by net criticality (the driver's
          current arrival time) ahead of estimated length, as the
          routers the paper builds on do for critical nets. Off by
          default. *)
  delay_model : Spr_timing.Delay_model.t;
  g_per_net : float;  (** See {!Spr_anneal.Weights}. *)
  d_per_net : float;
  t_emphasis : float;
  anneal : Spr_anneal.Engine.config option;  (** [None]: sized to the netlist. *)
  max_swap_tries : int;  (** Attempts to find a legal swap per move. *)
  validate : bool;
      (** Run the full {!Spr_check.Audit} subsystem (placement bijection,
          routing-mirror oracle, from-scratch STA diff) every temperature,
          every [validate_every] accepted moves, and on the final state;
          any finding makes the run return [Error (Audit_failed _)]. *)
  validate_every : int;
      (** Accepted moves between audits when [validate] is on (clamped to
          >= 1). *)
  time_budget : float option;
      (** Wall seconds for this invocation; the run stops gracefully once
          exceeded (checked between moves). *)
  max_moves : int option;
      (** Total annealing moves (cumulative across resumes). *)
  run_dir : string option;
      (** Directory for {!Checkpoint.V2} snapshots; [None] disables
          checkpointing entirely. *)
  snapshot_every : int;
      (** Write a snapshot every this many temperature boundaries
          (clamped to >= 1). *)
  snapshot_keep : int;  (** Rotation depth (clamped to >= 1). *)
  final_checkpoint : bool;
      (** Write a snapshot when the run is interrupted (default). The
          crash-fault-injection harness turns this off so an injected
          "crash" leaves only the periodic snapshots behind, exactly
          like a real [kill -9]. *)
  stop_after_accepted : int option;
      (** Fault injection: stop (as {!Interrupt}) once this many moves
          have been accepted, cumulative across resumes. *)
}

val default_config : config
(** [seed = 1], [pinmap_move_prob = 0.15], pinmap moves on, default
    router/delay/weight parameters, auto-sized annealing, no
    validation ([validate_every = 50]), no budgets, no checkpointing
    ([snapshot_every = 1], [snapshot_keep = 3], [final_checkpoint =
    true]). *)

type stop_reason = Time_budget | Move_budget | Interrupt

type status =
  | Completed
  | Interrupted of stop_reason
      (** The run stopped early; the result holds the best-so-far
          layout, and [run_dir] (if set) holds a resumable
          checkpoint. *)

val stop_reason_to_string : stop_reason -> string

type error =
  | Invalid_design of string
      (** The netlist does not fit the fabric or has combinational
          cycles. *)
  | Audit_failed of Spr_check.Finding.t list
      (** [config.validate] caught an invariant violation mid-run. *)
  | Resume_failed of string  (** The snapshot does not match the design. *)

exception Tool_error of error
(** Raised only by {!run_exn}. *)

val error_to_string : error -> string

type result = {
  place : Spr_layout.Placement.t;
  route : Spr_route.Route_state.t;
  sta : Spr_timing.Sta.t;
  critical_delay : float;  (** ns, from the final full STA. *)
  g : int;
  d : int;
  fully_routed : bool;
  anneal_report : Spr_anneal.Engine.report;
  dynamics : Dynamics.sample list;
  profile : Profile.t;
      (** Cumulative per-phase move-pipeline instrumentation for this
          invocation (not carried across resumes). *)
  cpu_seconds : float;  (** This invocation only, not cumulative across resumes. *)
  status : status;
  best_cost : float;
      (** The delivered layout under the weight-independent best-so-far
          metric (unrouted nets dominate, critical delay breaks
          ties). *)
}

type resume = Checkpoint.V2.loaded

val run :
  ?config:config ->
  ?resume:resume ->
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  (result, error) Stdlib.result
(** With [?resume] the initial placement and routing are skipped and the
    run continues from the snapshot's exact mid-schedule state ([arch]
    is ignored — the restored layout carries its fabric). [config]
    should match the interrupted run's; the annealing schedule itself
    always comes from the snapshot. *)

val run_exn : ?config:config -> ?resume:resume -> Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> result

val audit_result : result -> Spr_check.Finding.t list
(** Run the full audit subsystem over a finished layout (placement,
    routing mirrors, STA) — what [spr route --selfcheck] prints. Empty
    means the incremental state matches the from-scratch oracles. *)

(** {1 Graceful interruption}

    A module-level flag polled between moves. The CLI installs handlers
    so Ctrl-C finishes the in-flight move, writes a final checkpoint and
    returns the best-so-far result instead of dying mid-update. *)

val request_interrupt : unit -> unit

val reset_interrupt : unit -> unit

val interrupt_requested : unit -> bool

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!request_interrupt}. *)
