let log_src = Logs.Src.create "spr.tool" ~doc:"Simultaneous place-and-route progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

module P = Spr_layout.Placement
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Sta = Spr_timing.Sta
module J = Spr_util.Journal

type config = {
  seed : int;
  pinmap_move_prob : float;
  enable_pinmap_moves : bool;
  router : Router.config;
  timing_driven_routing : bool;
  delay_model : Spr_timing.Delay_model.t;
  g_per_net : float;
  d_per_net : float;
  t_emphasis : float;
  anneal : Spr_anneal.Engine.config option;
  max_swap_tries : int;
  validate : bool;
  validate_every : int;
  time_budget : float option;
  max_moves : int option;
  run_dir : string option;
  snapshot_every : int;
  snapshot_keep : int;
  final_checkpoint : bool;
  stop_after_accepted : int option;
}

let default_config =
  {
    seed = 1;
    pinmap_move_prob = 0.15;
    enable_pinmap_moves = true;
    router = Router.default_config;
    timing_driven_routing = false;
    delay_model = Spr_timing.Delay_model.default;
    g_per_net = 0.04;
    d_per_net = 0.02;
    t_emphasis = 1.0;
    anneal = None;
    max_swap_tries = 8;
    validate = false;
    validate_every = 50;
    time_budget = None;
    max_moves = None;
    run_dir = None;
    snapshot_every = 1;
    snapshot_keep = 3;
    final_checkpoint = true;
    stop_after_accepted = None;
  }

type stop_reason = Time_budget | Move_budget | Interrupt

type status = Completed | Interrupted of stop_reason

let stop_reason_to_string = function
  | Time_budget -> "time budget"
  | Move_budget -> "move budget"
  | Interrupt -> "interrupt"

type error =
  | Invalid_design of string
  | Audit_failed of Spr_check.Finding.t list
  | Resume_failed of string

exception Tool_error of error

let error_to_string = function
  | Invalid_design msg -> "invalid design: " ^ msg
  | Audit_failed findings ->
    "invariant audit failed:\n" ^ Spr_check.Finding.summarize findings
  | Resume_failed msg -> "resume failed: " ^ msg

(* --- graceful interruption --- *)

let interrupt_flag = ref false

let request_interrupt () = interrupt_flag := true

let reset_interrupt () = interrupt_flag := false

let interrupt_requested () = !interrupt_flag

let install_signal_handlers () =
  let handle _ = interrupt_flag := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)

type result = {
  place : P.t;
  route : Rs.t;
  sta : Sta.t;
  critical_delay : float;
  g : int;
  d : int;
  fully_routed : bool;
  anneal_report : Spr_anneal.Engine.report;
  dynamics : Dynamics.sample list;
  profile : Profile.t;
  cpu_seconds : float;
  status : status;
  best_cost : float;
}

(* One move = one transaction, run by the five-phase {!Move_pipeline}:
   [propose] applies everything (placement delta, rip-ups, reroutes,
   timing propagation) into the shared journal; accept commits it,
   reject rolls the whole cascade back. *)
type session = {
  cfg : config;
  place : P.t;
  rs : Rs.t;
  sta : Sta.t;
  weights : Spr_anneal.Weights.t;
  journal : J.t;
  pipeline : Move_pipeline.t;
  dyn : Dynamics.t;
  mutable accepted_since_audit : int;
}

let session_cost s =
  Spr_anneal.Weights.cost s.weights ~g:(Rs.g_count s.rs) ~d:(Rs.d_count s.rs)
    ~delay:(Sta.critical_delay s.sta)

(* Best-so-far comparisons need a metric that is stable across the whole
   run, so it cannot use the adaptive weights (their normalization
   drifts between temperatures): unrouted nets dominate, critical delay
   breaks ties. *)
let best_metric ~rs ~sta =
  (float_of_int (Rs.g_count rs + Rs.d_count rs) *. 1e9) +. Sta.critical_delay sta

(* The full audit subsystem: placement bijection/legality, the routing
   mirror oracle, and a from-scratch STA diff. Failing here turns a
   silently corrupted cost function into an immediate, attributable
   structured error. *)
exception Audit_failure of Spr_check.Finding.t list

let validate_now s =
  match Spr_check.Audit.run_all ~sta:s.sta s.rs with
  | [] -> ()
  | findings -> raise (Audit_failure findings)

type resume = Checkpoint.V2.loaded

(* The annealing loop shared by fresh and resumed runs. [s] is a fully
   initialized session whose STA is canonical (freshly built or
   [full_update]d); [resume] carries the engine schedule position when
   continuing from a snapshot. *)
let anneal_session ?resume ~config ~rng ~best s =
  let nl = P.netlist s.place in
  let n_routable = max 1 (Rs.n_routable s.rs) in
  let profile = Move_pipeline.profile s.pipeline in
  let batch_mark = ref (Profile.mark profile) in
  let on_temperature (ts : Spr_anneal.Engine.temp_stats) =
    Spr_anneal.Weights.adapt s.weights;
    if config.validate then validate_now s;
    let phase_seconds, move_seconds, moves = Profile.since profile !batch_mark in
    batch_mark := Profile.mark profile;
    Log.debug (fun m ->
        m "temp %d T=%.4g acc=%d/%d G=%d D=%d delay=%.2fns"
          ts.Spr_anneal.Engine.temp_index ts.Spr_anneal.Engine.temperature
          ts.Spr_anneal.Engine.accepted ts.Spr_anneal.Engine.attempted (Rs.g_count s.rs)
          (Rs.d_count s.rs) (Sta.critical_delay s.sta));
    Log.debug (fun m ->
        m "temp %d phases [%s] move=%.1fms batch=%.1fms (%d moves)"
          ts.Spr_anneal.Engine.temp_index
          (String.concat ", "
             (List.map
                (fun p ->
                  Printf.sprintf "%s %.1fms" (Profile.phase_name p)
                    (1e3 *. phase_seconds.(Profile.phase_index p)))
                Profile.phases))
          (1e3 *. move_seconds)
          (1e3 *. ts.Spr_anneal.Engine.batch_seconds)
          moves);
    let acceptance =
      if ts.Spr_anneal.Engine.attempted = 0 then 0.0
      else
        float_of_int ts.Spr_anneal.Engine.accepted
        /. float_of_int ts.Spr_anneal.Engine.attempted
    in
    Dynamics.flush s.dyn ~phase_seconds ~temp_index:ts.Spr_anneal.Engine.temp_index
      ~temperature:ts.Spr_anneal.Engine.temperature
      ~g_frac:(float_of_int (Rs.g_count s.rs) /. float_of_int n_routable)
      ~d_frac:(float_of_int (Rs.d_count s.rs) /. float_of_int n_routable)
      ~acceptance ~cost:(session_cost s)
      ~critical_delay:(Sta.critical_delay s.sta)
  in
  (* Budgets and interruption. The engine polls between moves, so the
     in-flight move always completes; the first tripped condition
     sticks. *)
  let watch = Spr_util.Clock.start () in
  let stop_reason = ref None in
  let should_stop ~moves ~accepted =
    (match !stop_reason with
    | Some _ -> ()
    | None ->
      stop_reason :=
        (if !interrupt_flag then Some Interrupt
         else
           match config.max_moves with
           | Some m when moves >= m -> Some Move_budget
           | _ -> (
             match config.time_budget with
             | Some b when Spr_util.Clock.elapsed watch >= b -> Some Time_budget
             | _ -> (
               match config.stop_after_accepted with
               | Some k when accepted >= k -> Some Interrupt
               | _ -> None))));
    !stop_reason <> None
  in
  let track_best =
    config.run_dir <> None || config.time_budget <> None || config.max_moves <> None
    || config.stop_after_accepted <> None
  in
  let ckpt_dir =
    match config.run_dir with
    | None -> None
    | Some dir ->
      Spr_util.Persist.ensure_dir dir;
      Some (dir, ref (Checkpoint.V2.next_seq ~dir))
  in
  let on_checkpoint ~at (snap : Spr_anneal.Engine.snapshot) =
    if track_best then begin
      (* Canonicalize the incremental STA so the snapshot, the continued
         run, and any resumed run all proceed from the same timing
         state. *)
      Sta.full_update s.sta;
      let metric = best_metric ~rs:s.rs ~sta:s.sta in
      if metric < fst !best then best := (metric, Some (Checkpoint.to_string s.rs));
      match ckpt_dir with
      | None -> ()
      | Some (dir, seq) ->
        let due =
          match at with
          | `Boundary -> snap.Spr_anneal.Engine.s_temp_index mod max 1 config.snapshot_every = 0
          | `Stop -> config.final_checkpoint
        in
        if due then begin
          let best_cost, best_layout = !best in
          let payload =
            {
              Checkpoint.V2.engine = snap;
              rng_state = Spr_util.Rng.state rng;
              weights = Spr_anneal.Weights.dump s.weights;
              dyn_flags = Dynamics.perturbed_flags s.dyn;
              dyn_samples = Dynamics.samples s.dyn;
              accepted_since_audit = s.accepted_since_audit;
              memo = Rs.memo s.rs;
              best_cost;
              best_layout =
                (match best_layout with Some t -> t | None -> Checkpoint.to_string s.rs);
            }
          in
          let path =
            Checkpoint.V2.write ~dir ~seq:!seq ~keep:config.snapshot_keep payload ~current:s.rs
          in
          incr seq;
          Log.debug (fun m -> m "checkpoint %s" path)
        end
    end
  in
  let resume = Option.map (fun (r : resume) -> r.Checkpoint.V2.data.Checkpoint.V2.engine) resume in
  let anneal_report =
    Spr_anneal.Engine.run ?config:config.anneal ?resume ~on_temperature ~on_checkpoint
      ~should_stop ~rng
      ~cost:(fun () -> session_cost s)
      ~propose:(fun rng -> Move_pipeline.propose s.pipeline rng)
      ~accept:(fun () ->
        Dynamics.note_accepted_cells s.dyn (Move_pipeline.last_cells s.pipeline);
        Move_pipeline.accept s.pipeline;
        if config.validate then begin
          s.accepted_since_audit <- s.accepted_since_audit + 1;
          if s.accepted_since_audit >= max 1 config.validate_every then begin
            s.accepted_since_audit <- 0;
            validate_now s
          end
        end)
      ~reject:(fun () -> Move_pipeline.reject s.pipeline)
      ~n:(Spr_netlist.Netlist.n_cells nl)
      ()
  in
  (anneal_report, !stop_reason)

(* Close out a layout for delivery: route whatever is still queued with
   unbounded retries, then refresh the timing picture from scratch. *)
let finalize ~(config : config) rs sta =
  Router.route_all ~config:config.router ~passes:3 rs;
  Sta.full_update sta

let run_session ?resume ~config ~rng ~t_start s =
  let nl = P.netlist s.place in
  let best =
    ref
      (match resume with
      | Some (r : resume) ->
        ( r.Checkpoint.V2.data.Checkpoint.V2.best_cost,
          Some r.Checkpoint.V2.data.Checkpoint.V2.best_layout )
      | None -> (infinity, None))
  in
  let anneal_report, stop_reason = anneal_session ?resume ~config ~rng ~best s in
  let status =
    match stop_reason with None -> Completed | Some reason -> Interrupted reason
  in
  (* For interrupted runs, deliver the best-so-far layout; the final
     checkpoint (already written) still holds the in-flight one, so a
     resume continues mid-schedule regardless. *)
  let place, rs, sta =
    match status with
    | Completed -> (s.place, s.rs, s.sta)
    | Interrupted reason -> (
      Log.info (fun m -> m "run interrupted (%s)" (stop_reason_to_string reason));
      let live = best_metric ~rs:s.rs ~sta:s.sta in
      match !best with
      | best_cost, Some text when best_cost < live -> (
        match Checkpoint.of_string nl text with
        | Ok best_rs -> (Rs.place best_rs, best_rs, Sta.create config.delay_model best_rs)
        | Error e ->
          Log.warn (fun m -> m "best-so-far layout failed to decode (%s); using current" e);
          (s.place, s.rs, s.sta))
      | _ -> (s.place, s.rs, s.sta))
  in
  finalize ~config rs sta;
  if config.validate && rs == s.rs then validate_now s;
  {
    place;
    route = rs;
    sta;
    critical_delay = Sta.critical_delay sta;
    g = Rs.g_count rs;
    d = Rs.d_count rs;
    fully_routed = Rs.fully_routed rs;
    anneal_report;
    dynamics = Dynamics.samples s.dyn;
    profile = Move_pipeline.profile s.pipeline;
    cpu_seconds = Sys.time () -. t_start;
    status;
    best_cost = best_metric ~rs ~sta;
  }

let timing_router ~config ~sta nl =
  if not config.timing_driven_routing then config.router
  else begin
    let crit net =
      Sta.arrival_out sta (Spr_netlist.Netlist.net nl net).Spr_netlist.Netlist.driver
    in
    { config.router with Router.criticality = Some crit }
  end

let run_fresh ~config arch nl =
  let rng = Spr_util.Rng.create config.seed in
  match P.create arch nl ~rng with
  | Error e -> Error (Invalid_design e)
  | Ok place ->
    let t_start = Sys.time () in
    let rs = Rs.create place in
    (* Start-up transient: give every net a first chance at a (poor)
       route in the random placement. *)
    Router.route_all ~config:config.router ~passes:2 rs;
    let sta = Sta.create config.delay_model rs in
    let initial_delay = Float.max 1e-6 (Sta.critical_delay sta) in
    let weights =
      Spr_anneal.Weights.create ~g_per_net:config.g_per_net ~d_per_net:config.d_per_net
        ~t_emphasis:config.t_emphasis ~initial_delay ()
    in
    let journal = J.create () in
    let pipeline =
      Move_pipeline.create
        ~router:(timing_router ~config ~sta nl)
        ~pinmap_move_prob:config.pinmap_move_prob
        ~enable_pinmap_moves:config.enable_pinmap_moves
        ~max_swap_tries:config.max_swap_tries ~place ~rs ~sta ~weights ~journal ()
    in
    let s =
      {
        cfg = config;
        place;
        rs;
        sta;
        weights;
        journal;
        pipeline;
        dyn = Dynamics.create ~n_cells:(Spr_netlist.Netlist.n_cells nl);
        accepted_since_audit = 0;
      }
    in
    Ok (run_session ~config ~rng ~t_start s)

let run_resumed ~config ~(resume : resume) nl =
  let t_start = Sys.time () in
  let data = resume.Checkpoint.V2.data in
  let rs = resume.Checkpoint.V2.route in
  let place = Rs.place rs in
  let n_cells = Spr_netlist.Netlist.n_cells nl in
  if Array.length data.Checkpoint.V2.dyn_flags <> n_cells then
    Error
      (Resume_failed
         (Printf.sprintf "%s: snapshot is for a %d-cell design, netlist has %d"
            resume.Checkpoint.V2.path
            (Array.length data.Checkpoint.V2.dyn_flags)
            n_cells))
  else begin
    (* The snapshot was written from a canonical ([full_update]d) STA, so
       rebuilding from scratch reproduces the exact timing state the
       interrupted run carried. *)
    let sta = Sta.create config.delay_model rs in
    let rng = Spr_util.Rng.of_state data.Checkpoint.V2.rng_state in
    let weights = Spr_anneal.Weights.restore data.Checkpoint.V2.weights in
    let journal = J.create () in
    let pipeline =
      Move_pipeline.create
        ~router:(timing_router ~config ~sta nl)
        ~pinmap_move_prob:config.pinmap_move_prob
        ~enable_pinmap_moves:config.enable_pinmap_moves
        ~max_swap_tries:config.max_swap_tries ~place ~rs ~sta ~weights ~journal ()
    in
    let s =
      {
        cfg = config;
        place;
        rs;
        sta;
        weights;
        journal;
        pipeline;
        dyn =
          Dynamics.restore ~n_cells ~flags:data.Checkpoint.V2.dyn_flags
            ~samples:data.Checkpoint.V2.dyn_samples;
        accepted_since_audit = data.Checkpoint.V2.accepted_since_audit;
      }
    in
    Ok (run_session ~resume ~config ~rng ~t_start s)
  end

let run ?(config = default_config) ?resume arch nl =
  match Spr_netlist.Levelize.run nl with
  | Error e -> Error (Invalid_design e)
  | Ok _ -> (
    try
      match resume with
      | Some resume -> run_resumed ~config ~resume nl
      | None -> run_fresh ~config arch nl
    with Audit_failure findings -> Error (Audit_failed findings))

let run_exn ?config ?resume arch nl =
  match run ?config ?resume arch nl with Ok r -> r | Error e -> raise (Tool_error e)

let audit_result (r : result) = Spr_check.Audit.run_all ~sta:r.sta r.route
