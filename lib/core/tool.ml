let log_src = Logs.Src.create "spr.tool" ~doc:"Simultaneous place-and-route progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

module P = Spr_layout.Placement
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Parallel = Spr_route.Parallel
module Sta = Spr_timing.Sta
module J = Spr_util.Journal
module Portfolio = Spr_anneal.Portfolio
module Scheduler = Spr_anneal.Scheduler

module Config = struct
  type moves = {
    pinmap_move_prob : float;
    enable_pinmap_moves : bool;
    max_swap_tries : int;
  }

  type weights = {
    g_per_net : float;
    d_per_net : float;
    t_emphasis : float;
  }

  type budget = {
    time_budget : float option;
    max_moves : int option;
    stop_after_accepted : int option;
    poll : (unit -> bool) option;
  }

  type persistence = {
    run_dir : string option;
    snapshot_every : int;
    snapshot_keep : int;
    final_checkpoint : bool;
  }

  type validation = {
    validate : bool;
    validate_every : int;
  }

  type scheduler = {
    kind : [ `Barrier | `Racing ];
    race_margin : float;
    race_warmup : int;
    race_every : int;
    race_horizon : int;
    race_sync : bool;
  }

  type parallel = {
    replicas : int;
    exchange : Portfolio.exchange;
    scheduler : scheduler;
    stream : int;
    route_workers : int;
    route_grain : int;
  }

  type obs = {
    record : bool;
    trace_path : string option;
    report_path : string option;
    label : string option;
    on_event : (Spr_obs.Trace.event -> unit) option;
  }

  type flow = {
    preset : string;
    stage_budgets : (string * float) list;
  }

  type t = {
    seed : int;
    router : Router.config;
    timing_driven_routing : bool;
    delay_model : Spr_timing.Delay_model.t;
    anneal : Spr_anneal.Engine.config option;
    moves : moves;
    weights : weights;
    budget : budget;
    persistence : persistence;
    validation : validation;
    parallel : parallel;
    obs : obs;
    flow : flow;
  }

  let default =
    {
      seed = 1;
      router = Router.default_config;
      timing_driven_routing = false;
      delay_model = Spr_timing.Delay_model.default;
      anneal = None;
      moves = { pinmap_move_prob = 0.15; enable_pinmap_moves = true; max_swap_tries = 8 };
      weights = { g_per_net = 0.04; d_per_net = 0.02; t_emphasis = 1.0 };
      budget = { time_budget = None; max_moves = None; stop_after_accepted = None; poll = None };
      persistence =
        { run_dir = None; snapshot_every = 1; snapshot_keep = 3; final_checkpoint = true };
      validation = { validate = false; validate_every = 50 };
      parallel =
        {
          replicas = 1;
          exchange = Portfolio.Independent;
          scheduler =
            {
              kind = `Barrier;
              race_margin = 1.0;
              race_warmup = 10;
              race_every = 5;
              race_horizon = 10;
              race_sync = true;
            };
          stream = 0;
          route_workers = 1;
          route_grain = 8;
        };
      obs =
        { record = false; trace_path = None; report_path = None; label = None; on_event = None };
      flow = { preset = "sa"; stage_budgets = [] };
    }

  (* --- flow vocabulary ---
     The stage names and named presets live here (not in [Spr_flow])
     so [validated] can reject bad flows without a dependency on the
     flow engine, which sits above this library. *)

  let flow_stage_names = [ "ap"; "sa"; "greedy"; "route"; "sta" ]

  let flow_presets =
    [
      ("sa", [ "sa" ]);
      ("ap+sa", [ "ap"; "sa" ]);
      ("ap+greedy+route", [ "ap"; "greedy"; "route" ]);
      ("seq", [ "greedy"; "route"; "sta" ]);
    ]

  let flow_preset_names = List.map fst flow_presets

  (* Stage-order sanity shared by named presets and ad-hoc '+' chains:
     [ap] places from scratch so it can only open a flow; [route] needs
     a placement to route; [sta] needs routing to time. *)
  let check_stage_order stages =
    let rec walk ~placed ~routed ~pos = function
      | [] -> Ok ()
      | "ap" :: rest ->
        if pos > 0 then Error "stage ap must come first (it places from scratch)"
        else walk ~placed:true ~routed ~pos:(pos + 1) rest
      | "sa" :: rest -> walk ~placed:true ~routed:true ~pos:(pos + 1) rest
      | "greedy" :: rest -> walk ~placed:true ~routed ~pos:(pos + 1) rest
      | "route" :: rest ->
        if not placed then Error "stage route needs a preceding placement stage (ap|sa|greedy)"
        else walk ~placed ~routed:true ~pos:(pos + 1) rest
      | "sta" :: rest ->
        if not routed then Error "stage sta needs a preceding routing stage (sa|route)"
        else walk ~placed ~routed ~pos:(pos + 1) rest
      | s :: _ -> Error (Printf.sprintf "unknown stage %s" s)
    in
    walk ~placed:false ~routed:false ~pos:0 stages

  let flow_stages_of_preset name =
    let valid () =
      Printf.sprintf "valid presets: %s; or any '+'-joined chain of stages %s"
        (String.concat ", " flow_preset_names)
        (String.concat "|" flow_stage_names)
    in
    match List.assoc_opt name flow_presets with
    | Some stages -> Ok stages
    | None ->
      let stages = String.split_on_char '+' name in
      if name = "" || List.exists (fun s -> s = "") stages then
        Error (Printf.sprintf "empty flow preset %S; %s" name (valid ()))
      else begin
        let unknown = List.filter (fun s -> not (List.mem s flow_stage_names)) stages in
        match unknown with
        | _ :: _ ->
          Error
            (Printf.sprintf "unknown flow stage%s %s in preset %s; %s"
               (if List.length unknown > 1 then "s" else "")
               (String.concat ", " unknown) name (valid ()))
        | [] -> (
          let dup =
            List.filter (fun s -> List.length (List.filter (( = ) s) stages) > 1) stages
          in
          match dup with
          | d :: _ -> Error (Printf.sprintf "stage %s repeats in preset %s" d name)
          | [] -> (
            match check_stage_order stages with
            | Error e -> Error (Printf.sprintf "%s (preset %s)" e name)
            | Ok () -> Ok stages))
      end

  (* --- scheduler vocabulary ---
     "barrier" is the historical all-active exchange barrier;
     "racing" the deterministic predictive scheduler; "racing:free"
     its asynchronous, non-reproducible variant. *)

  let scheduler_to_string (s : scheduler) =
    match s.kind with
    | `Barrier -> "barrier"
    | `Racing -> if s.race_sync then "racing" else "racing:free"

  let scheduler_of_string name =
    match name with
    | "barrier" -> Ok (`Barrier, true)
    | "racing" -> Ok (`Racing, true)
    | "racing:free" -> Ok (`Racing, false)
    | _ ->
      Error
        (Printf.sprintf "unknown scheduler %S (want barrier, racing, or racing:free)" name)

  (* The one place configuration sanity lives. Nonsense is rejected
     with a message naming every offending field; the historical
     "clamp to >= 1" fields are normalized here instead of at their
     points of use. *)
  let validated t =
    let errors = ref [] in
    let reject fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let p = t.moves.pinmap_move_prob in
    if not (p >= 0.0 && p <= 1.0) then
      reject "pinmap_move_prob must be within [0, 1] (got %g)" p;
    if t.moves.max_swap_tries < 1 then
      reject "max_swap_tries must be >= 1 (got %d)" t.moves.max_swap_tries;
    let weight name v =
      if not (Float.is_finite v && v >= 0.0) then
        reject "%s must be finite and >= 0 (got %g)" name v
    in
    weight "g_per_net" t.weights.g_per_net;
    weight "d_per_net" t.weights.d_per_net;
    weight "t_emphasis" t.weights.t_emphasis;
    (match t.budget.time_budget with
    | Some b when not (Float.is_finite b && b > 0.0) ->
      reject "time_budget must be a positive number of seconds (got %g)" b
    | _ -> ());
    (match t.budget.max_moves with
    | Some m when m < 0 -> reject "max_moves must be >= 0 (got %d)" m
    | _ -> ());
    (match t.budget.stop_after_accepted with
    | Some k when k < 1 -> reject "stop_after_accepted must be >= 1 (got %d)" k
    | _ -> ());
    if t.parallel.replicas < 1 then
      reject "parallel replicas must be >= 1 (got %d)" t.parallel.replicas;
    if t.parallel.stream < 0 then
      reject "parallel stream must be >= 0 (got %d)" t.parallel.stream;
    if t.parallel.route_workers < 1 then
      reject "route_workers must be >= 1 (got %d)" t.parallel.route_workers;
    if t.parallel.route_grain < 1 then
      reject "route_grain must be >= 1 (got %d)" t.parallel.route_grain;
    (match t.parallel.exchange with
    | Portfolio.Independent -> ()
    | Portfolio.Best_exchange n when n >= 1 -> ()
    | Portfolio.Best_exchange n -> reject "exchange period must be >= 1 (got %d)" n);
    (let s = t.parallel.scheduler in
     if not (Float.is_finite s.race_margin && s.race_margin >= 0.0) then
       reject "race_margin must be finite and >= 0 (got %g)" s.race_margin;
     if s.race_warmup < 0 then reject "race_warmup must be >= 0 (got %d)" s.race_warmup;
     if s.race_every < 1 then reject "race_every must be >= 1 (got %d)" s.race_every;
     if s.race_horizon < 1 then reject "race_horizon must be >= 1 (got %d)" s.race_horizon;
     match (s.kind, t.parallel.exchange) with
     | `Racing, Portfolio.Best_exchange _ ->
       reject "the racing scheduler replaces the exchange barrier; use exchange independent"
     | (`Racing | `Barrier), _ -> ());
    (match flow_stages_of_preset t.flow.preset with
    | Error e -> reject "%s" e
    | Ok stages ->
      List.iter
        (fun (stage, seconds) ->
          if not (List.mem stage flow_stage_names) then
            reject "stage_budget for unknown stage %s (valid stages: %s)" stage
              (String.concat "|" flow_stage_names)
          else if not (List.mem stage stages) then
            reject "stage_budget for stage %s absent from flow %s" stage t.flow.preset;
          if not (Float.is_finite seconds && seconds > 0.0) then
            reject "stage_budget for %s must be positive seconds (got %g)" stage seconds)
        t.flow.stage_budgets;
      let keys = List.map fst t.flow.stage_budgets in
      List.iter
        (fun k ->
          if List.length (List.filter (( = ) k) keys) > 1 then
            reject "duplicate stage_budget for stage %s" k)
        (List.sort_uniq compare keys));
    match !errors with
    | _ :: _ -> Error (String.concat "; " (List.rev !errors))
    | [] ->
      Ok
        {
          t with
          persistence =
            {
              t.persistence with
              snapshot_every = max 1 t.persistence.snapshot_every;
              snapshot_keep = max 1 t.persistence.snapshot_keep;
            };
          validation = { t.validation with validate_every = max 1 t.validation.validate_every };
        }

  let with_seed seed t = { t with seed }

  let with_router router t = { t with router }

  let with_timing_driven_routing timing_driven_routing t = { t with timing_driven_routing }

  let with_delay_model delay_model t = { t with delay_model }

  let with_anneal cfg t = { t with anneal = Some cfg }

  let with_moves moves t = { t with moves }

  let with_pinmap_moves ?prob enable t =
    {
      t with
      moves =
        {
          t.moves with
          enable_pinmap_moves = enable;
          pinmap_move_prob =
            (match prob with Some p -> p | None -> t.moves.pinmap_move_prob);
        };
    }

  let with_max_swap_tries max_swap_tries t = { t with moves = { t.moves with max_swap_tries } }

  let with_weights weights t = { t with weights }

  let with_budget budget t = { t with budget }

  let with_time_budget b t = { t with budget = { t.budget with time_budget = Some b } }

  let with_max_moves m t = { t with budget = { t.budget with max_moves = Some m } }

  let with_stop_after_accepted k t =
    { t with budget = { t.budget with stop_after_accepted = Some k } }

  let with_cancel_poll f t = { t with budget = { t.budget with poll = Some f } }

  let with_persistence persistence t = { t with persistence }

  let with_run_dir ?snapshot_every ?snapshot_keep dir t =
    {
      t with
      persistence =
        {
          t.persistence with
          run_dir = Some dir;
          snapshot_every =
            (match snapshot_every with Some e -> e | None -> t.persistence.snapshot_every);
          snapshot_keep =
            (match snapshot_keep with Some k -> k | None -> t.persistence.snapshot_keep);
        };
    }

  let with_final_checkpoint final_checkpoint t =
    { t with persistence = { t.persistence with final_checkpoint } }

  let with_validation validation t = { t with validation }

  let with_validate ?every validate t =
    {
      t with
      validation =
        {
          validate;
          validate_every = (match every with Some e -> e | None -> t.validation.validate_every);
        };
    }

  let with_parallel parallel t = { t with parallel }

  let with_replicas ?exchange replicas t =
    {
      t with
      parallel =
        {
          t.parallel with
          replicas;
          exchange = (match exchange with Some x -> x | None -> t.parallel.exchange);
        };
    }

  let with_stream stream t = { t with parallel = { t.parallel with stream } }

  let with_route_workers route_workers t = { t with parallel = { t.parallel with route_workers } }

  let with_route_grain route_grain t = { t with parallel = { t.parallel with route_grain } }

  let with_scheduler scheduler t = { t with parallel = { t.parallel with scheduler } }

  let with_scheduler_kind ?sync kind t =
    let s = t.parallel.scheduler in
    with_scheduler
      { s with kind; race_sync = (match sync with Some b -> b | None -> s.race_sync) }
      t

  let with_race_margin race_margin t =
    with_scheduler { t.parallel.scheduler with race_margin } t

  let with_race_warmup race_warmup t =
    with_scheduler { t.parallel.scheduler with race_warmup } t

  let with_race_every race_every t =
    with_scheduler { t.parallel.scheduler with race_every } t

  let with_obs obs t = { t with obs }

  let with_trace_recording record t = { t with obs = { t.obs with record } }

  let with_trace_file path t = { t with obs = { t.obs with trace_path = Some path } }

  let with_report_file path t = { t with obs = { t.obs with report_path = Some path } }

  let with_run_label label t = { t with obs = { t.obs with label = Some label } }

  let with_on_event f t = { t with obs = { t.obs with on_event = Some f } }

  let with_flow flow t = { t with flow }

  let with_flow_preset preset t = { t with flow = { t.flow with preset } }

  let with_stage_budget stage seconds t =
    let rest = List.filter (fun (s, _) -> s <> stage) t.flow.stage_budgets in
    { t with flow = { t.flow with stage_budgets = rest @ [ (stage, seconds) ] } }
end

type config = Config.t

let default_config = Config.default

type stop_reason = Outcome.stop_reason = Time_budget | Move_budget | Interrupt

type status = Outcome.status = Completed | Interrupted of stop_reason

let stop_reason_to_string = Outcome.stop_reason_to_string

type error = Outcome.error =
  | Invalid_config of string
  | Invalid_design of string
  | Audit_failed of Spr_check.Finding.t list
  | Resume_failed of string

exception Tool_error = Outcome.Error

let error_to_string = Outcome.error_to_string

(* --- graceful interruption ---
   Atomic so that portfolio replicas on other domains observe the flag
   promptly; the signal handler still runs on the main domain. *)

let interrupt_flag = Atomic.make false

let request_interrupt () = Atomic.set interrupt_flag true

let reset_interrupt () = Atomic.set interrupt_flag false

let interrupt_requested () = Atomic.get interrupt_flag

let install_signal_handlers () =
  let handle _ = request_interrupt () in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)

(* Re-entrant variant for embedders (the service daemon, tests, any
   host process with its own signal discipline): the previous SIGINT
   and SIGTERM behaviours are saved and restored however the thunk
   exits, so a nested run cannot clobber the host's handlers. *)
let with_signal_handlers f =
  let handle _ = request_interrupt () in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle handle) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle handle) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term)
    f

type result = {
  place : P.t;
  route : Rs.t;
  sta : Sta.t;
  critical_delay : float;
  g : int;
  d : int;
  fully_routed : bool;
  anneal_report : Spr_anneal.Engine.report;
  dynamics : Dynamics.sample list;
  profile : Profile.t;
  cpu_seconds : float;
  status : status;
  best_cost : float;
  report : Spr_obs.Report.t;
  events : Spr_obs.Trace.event list;
}

let route_summary rs =
  let stats = Spr_route.Route_stats.collect rs in
  {
    Spr_obs.Report.rt_routed_nets = stats.Spr_route.Route_stats.routed_nets;
    rt_unrouted_nets = stats.Spr_route.Route_stats.unrouted_nets;
    rt_h_wirelength = stats.Spr_route.Route_stats.horizontal_wirelength;
    rt_v_wirelength = stats.Spr_route.Route_stats.vertical_wirelength;
    rt_h_antifuses = stats.Spr_route.Route_stats.horizontal_antifuses;
    rt_v_antifuses = stats.Spr_route.Route_stats.vertical_antifuses;
    rt_x_antifuses = stats.Spr_route.Route_stats.cross_antifuses;
    rt_vertical_used = stats.Spr_route.Route_stats.vertical_used;
    rt_vertical_total = stats.Spr_route.Route_stats.vertical_total;
    rt_channels =
      List.map
        (fun (cu : Spr_route.Route_stats.channel_util) ->
          {
            Spr_obs.Report.ch_index = cu.Spr_route.Route_stats.cu_channel;
            ch_used_len = cu.Spr_route.Route_stats.cu_used_len;
            ch_total_len = cu.Spr_route.Route_stats.cu_total_len;
            ch_used_segments = cu.Spr_route.Route_stats.cu_used_segments;
            ch_total_segments = cu.Spr_route.Route_stats.cu_total_segments;
          })
        stats.Spr_route.Route_stats.channels;
  }

let run_label (config : Config.t) = Option.value config.Config.obs.Config.label ~default:"run"

(* One move = one transaction, run by the five-phase {!Move_pipeline}:
   [propose] applies everything (placement delta, rip-ups, reroutes,
   timing propagation) into the shared journal; accept commits it,
   reject rolls the whole cascade back.

   The layout-bearing fields are mutable because a portfolio replica
   can adopt the fleet-best layout at an exchange boundary: the whole
   place/route/timing complex is swapped out mid-run while the engine,
   weights and dynamics recorder carry on. Every closure handed to the
   engine reads these fields through [s], never through a captured
   alias. *)
type session = {
  mutable place : P.t;
  mutable rs : Rs.t;
  mutable sta : Sta.t;
  weights : Spr_anneal.Weights.t;
  mutable pipeline : Move_pipeline.t;
  dyn : Dynamics.t;
  mutable accepted_since_audit : int;
}

let session_cost s =
  Spr_anneal.Weights.cost s.weights ~g:(Rs.g_count s.rs) ~d:(Rs.d_count s.rs)
    ~delay:(Sta.critical_delay s.sta)

(* Best-so-far comparisons need a metric that is stable across the whole
   run, so it cannot use the adaptive weights (their normalization
   drifts between temperatures): unrouted nets dominate, critical delay
   breaks ties. The same metric compares replicas across a portfolio,
   precisely because it is weight-independent. *)
let best_metric ~rs ~sta =
  (float_of_int (Rs.g_count rs + Rs.d_count rs) *. 1e9) +. Sta.critical_delay sta

(* The full audit subsystem: placement bijection/legality, the routing
   mirror oracle, and a from-scratch STA diff. Failing here turns a
   silently corrupted cost function into an immediate, attributable
   structured error. *)
exception Audit_failure of Spr_check.Finding.t list

let validate_now s =
  match Spr_check.Audit.run_all ~sta:s.sta s.rs with
  | [] -> ()
  | findings -> raise (Audit_failure findings)

type resume = Checkpoint.V2.loaded

let timing_router ~(config : Config.t) ~sta nl =
  if not config.timing_driven_routing then config.router
  else begin
    let crit net =
      Sta.arrival_out sta (Spr_netlist.Netlist.net nl net).Spr_netlist.Netlist.driver
    in
    { config.router with Router.criticality = Some crit }
  end

(* A replica's view of the portfolio it runs in; absent for serial
   runs (and one-replica portfolios, which ARE serial runs). *)
type replica_ctx = {
  rep_index : int;
  rep_sched : Scheduler.t;
}

(* Swap the session onto a broadcast layout: decode it, rebuild the
   timing picture canonically, and build a fresh pipeline around the
   new state — continuing the existing profile, weights, dynamics and
   RNG stream. The criticality closure inside the router config
   captures the STA, so the pipeline rebuild also re-derives the
   router config. *)
let adopt_layout ~(config : Config.t) s (r : Portfolio.round_result) =
  let nl = P.netlist s.place in
  match Checkpoint.of_string nl r.Portfolio.xr_payload with
  | Error e ->
    Log.warn (fun m ->
        m "exchange round %d: broadcast layout failed to decode (%s); keeping own layout"
          r.Portfolio.xr_round e)
  | Ok rs ->
    let place = Rs.place rs in
    let sta = Sta.create config.delay_model rs in
    let pipeline =
      Move_pipeline.create
        ~profile:(Move_pipeline.profile s.pipeline)
        ~router:(timing_router ~config ~sta nl)
        ~pinmap_move_prob:config.moves.pinmap_move_prob
        ~enable_pinmap_moves:config.moves.enable_pinmap_moves
        ~max_swap_tries:config.moves.max_swap_tries ~place ~rs ~sta ~weights:s.weights
        ~journal:(J.create ()) ()
    in
    s.place <- place;
    s.rs <- rs;
    s.sta <- sta;
    s.pipeline <- pipeline;
    Log.info (fun m ->
        m "adopted portfolio-best layout of replica %d at exchange round %d (metric %.4g)"
          r.Portfolio.xr_best_replica r.Portfolio.xr_round r.Portfolio.xr_best_metric)

(* The annealing loop shared by fresh and resumed runs. [s] is a fully
   initialized session whose STA is canonical (freshly built or
   [full_update]d); [resume] carries the engine schedule position when
   continuing from a snapshot; [ctx] makes this run one replica of a
   portfolio. *)
let anneal_session ?resume ?ctx ?start_temperature ~(config : Config.t) ~rng ~best s =
  let nl = P.netlist s.place in
  let n_routable = max 1 (Rs.n_routable s.rs) in
  let profile = Move_pipeline.profile s.pipeline in
  let batch_mark = ref (Profile.mark profile) in
  let replica = Option.map (fun c -> c.rep_index) ctx in
  (* Per-temperature acceptance ratios, bucketed by decile, registered
     next to the pipeline's metrics so one snapshot carries both. *)
  let acceptance_hist =
    Spr_obs.Metrics.histogram (Profile.registry profile)
      ~bounds:[| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 |]
      "anneal.acceptance"
  in
  let on_temperature (ts : Spr_anneal.Engine.temp_stats) =
    Spr_anneal.Weights.adapt s.weights;
    if config.validation.validate then validate_now s;
    let phase_seconds, move_seconds, moves = Profile.since profile !batch_mark in
    batch_mark := Profile.mark profile;
    Log.debug (fun m ->
        m "temp %d T=%.4g acc=%d/%d G=%d D=%d delay=%.2fns"
          ts.Spr_anneal.Engine.temp_index ts.Spr_anneal.Engine.temperature
          ts.Spr_anneal.Engine.accepted ts.Spr_anneal.Engine.attempted (Rs.g_count s.rs)
          (Rs.d_count s.rs) (Sta.critical_delay s.sta));
    Log.debug (fun m ->
        m "temp %d phases [%s] move=%.1fms batch=%.1fms (%d moves)"
          ts.Spr_anneal.Engine.temp_index
          (String.concat ", "
             (List.map
                (fun p ->
                  Printf.sprintf "%s %.1fms" (Profile.phase_name p)
                    (1e3 *. phase_seconds.(Profile.phase_index p)))
                Profile.phases))
          (1e3 *. move_seconds)
          (1e3 *. ts.Spr_anneal.Engine.batch_seconds)
          moves);
    let acceptance =
      if ts.Spr_anneal.Engine.attempted = 0 then 0.0
      else
        float_of_int ts.Spr_anneal.Engine.accepted
        /. float_of_int ts.Spr_anneal.Engine.attempted
    in
    Dynamics.flush s.dyn ~phase_seconds ~temp_index:ts.Spr_anneal.Engine.temp_index
      ~temperature:ts.Spr_anneal.Engine.temperature
      ~g_frac:(float_of_int (Rs.g_count s.rs) /. float_of_int n_routable)
      ~d_frac:(float_of_int (Rs.d_count s.rs) /. float_of_int n_routable)
      ~acceptance ~cost:(session_cost s)
      ~critical_delay:(Sta.critical_delay s.sta);
    Spr_obs.Metrics.observe acceptance_hist acceptance;
    if Spr_obs.Obs.recording () then
      Option.iter
        (fun sample -> Spr_obs.Obs.emit (Spr_obs.Trace.Temp (Dynamics.to_row sample)))
        (Dynamics.last_sample s.dyn);
    (* Scheduling AFTER the batch's own dynamics are flushed, so the
       trace describes what this replica actually annealed. The sample
       handed to the scheduler carries the same values the flushed
       dynamics row does, so decisions are a function of masked trace
       content — what makes deterministic racing replayable. *)
    match ctx with
    | None -> ()
    | Some c -> (
      match
        Scheduler.observe c.rep_sched ~replica:c.rep_index
          ~temp_index:ts.Spr_anneal.Engine.temp_index
          ~metric:(best_metric ~rs:s.rs ~sta:s.sta)
          ~acceptance
          ~capture:(fun () -> Checkpoint.to_string s.rs)
      with
      | Scheduler.Continue -> ()
      | Scheduler.Adopt { round; from_replica; metric; payload } ->
        adopt_layout ~config s
          {
            Portfolio.xr_round = round;
            xr_best_replica = from_replica;
            xr_best_metric = metric;
            xr_payload = payload;
          }
      | Scheduler.Kill { round; from_replica; metric; payload; stream } ->
        (* Early-killed: this domain is reallocated to a fork of the
           round leader. Adopt its layout and continue on a fresh RNG
           stream — the stream switch IS the perturbation that makes
           the fork explore differently from its parent. *)
        adopt_layout ~config s
          {
            Portfolio.xr_round = round;
            xr_best_replica = from_replica;
            xr_best_metric = metric;
            xr_payload = payload;
          };
        Spr_util.Rng.assign rng ~from:(Spr_util.Rng.stream ~seed:config.seed ~index:stream);
        Log.info (fun m ->
            m "replica %d killed at sched round %d; forked from replica %d on stream %d"
              c.rep_index round from_replica stream))
  in
  (* Budgets and interruption. The engine polls between moves, so the
     in-flight move always completes; the first tripped condition
     sticks. In a portfolio, a wall-clock or interrupt stop spreads to
     the whole fleet so the run directory freezes in one coherent
     state. A move budget does NOT spread: every replica trips its own
     at a deterministic point of its own trajectory, and the barrier
     drops a stopped replica from the active set, so the survivors'
     exchange rounds still trip — fleet results under a move budget
     stay scheduling-independent. *)
  let watch = Spr_util.Clock.start () in
  let stop_reason = ref None in
  let should_stop ~moves ~accepted =
    (match !stop_reason with
    | Some _ -> ()
    | None ->
      stop_reason :=
        (if interrupt_requested () then Some Interrupt
         else if (match config.budget.poll with Some f -> f () | None -> false) then
           Some Interrupt
         else
           match config.budget.max_moves with
           | Some m when moves >= m -> Some Move_budget
           | _ -> (
             match config.budget.time_budget with
             | Some b when Spr_util.Clock.elapsed watch >= b -> Some Time_budget
             | _ -> (
               match config.budget.stop_after_accepted with
               | Some k when accepted >= k -> Some Interrupt
               | _ -> None)));
      (match !stop_reason with
      | Some (Time_budget | Interrupt) when ctx <> None -> request_interrupt ()
      | Some Move_budget | Some Interrupt | Some Time_budget | None -> ()));
    !stop_reason <> None
  in
  let track_best =
    config.persistence.run_dir <> None
    || config.budget.time_budget <> None
    || config.budget.max_moves <> None
    || config.budget.stop_after_accepted <> None
    || config.budget.poll <> None
  in
  let ckpt_dir =
    match config.persistence.run_dir with
    | None -> None
    | Some dir ->
      Spr_util.Persist.ensure_dir dir;
      Some (dir, ref (Checkpoint.V2.next_seq ?replica dir))
  in
  let on_checkpoint ~at (snap : Spr_anneal.Engine.snapshot) =
    if track_best then begin
      (* Canonicalize the incremental STA so the snapshot, the continued
         run, and any resumed run all proceed from the same timing
         state. *)
      Sta.full_update s.sta;
      let metric = best_metric ~rs:s.rs ~sta:s.sta in
      if metric < fst !best then best := (metric, Some (Checkpoint.to_string s.rs));
      (* After a fleet interrupt a replica may have been released from an
         untripped exchange round without the broadcast it would have
         received uninterrupted, so everything past that point is off the
         uninterrupted trajectory. Suppressing post-interrupt snapshot
         FILES (portfolio runs only) makes resume replay from the last
         faithful boundary — the property that lets a killed fleet
         reproduce the uninterrupted run exactly. The in-memory best
         keeps updating: it only feeds this run's reported result, never
         a resume. *)
      match ckpt_dir with
      | Some _ when ctx <> None && interrupt_requested () -> ()
      | None -> ()
      | Some (dir, seq) ->
        let due =
          match at with
          | `Boundary ->
            snap.Spr_anneal.Engine.s_temp_index mod config.persistence.snapshot_every = 0
          | `Stop -> config.persistence.final_checkpoint
        in
        if due then begin
          let best_cost, best_layout = !best in
          let payload =
            {
              Checkpoint.V2.engine = snap;
              rng_state = Spr_util.Rng.state rng;
              weights = Spr_anneal.Weights.dump s.weights;
              dyn_flags = Dynamics.perturbed_flags s.dyn;
              dyn_samples = Dynamics.samples s.dyn;
              accepted_since_audit = s.accepted_since_audit;
              memo = Rs.memo s.rs;
              best_cost;
              best_layout =
                (match best_layout with Some t -> t | None -> Checkpoint.to_string s.rs);
            }
          in
          let path =
            Checkpoint.V2.write ?replica ~dir ~seq:!seq ~keep:config.persistence.snapshot_keep
              payload ~current:s.rs
          in
          incr seq;
          Log.debug (fun m -> m "checkpoint %s" path)
        end
    end
  in
  let resume = Option.map (fun (r : resume) -> r.Checkpoint.V2.data.Checkpoint.V2.engine) resume in
  let anneal_report =
    Spr_anneal.Engine.run ?config:config.anneal ?resume ?start_temperature ~on_temperature
      ~on_checkpoint
      ~should_stop ~rng
      ~cost:(fun () -> session_cost s)
      ~propose:(fun rng -> Move_pipeline.propose s.pipeline rng)
      ~accept:(fun () ->
        Dynamics.note_accepted_cells s.dyn (Move_pipeline.last_cells s.pipeline);
        Move_pipeline.accept s.pipeline;
        if config.validation.validate then begin
          s.accepted_since_audit <- s.accepted_since_audit + 1;
          if s.accepted_since_audit >= config.validation.validate_every then begin
            s.accepted_since_audit <- 0;
            validate_now s
          end
        end)
      ~reject:(fun () -> Move_pipeline.reject s.pipeline)
      ~n:(Spr_netlist.Netlist.n_cells nl)
      ()
  in
  (anneal_report, !stop_reason)

(* Close out a layout for delivery: route whatever is still queued with
   unbounded retries, then refresh the timing picture from scratch. *)
let finalize ~(config : Config.t) rs sta =
  Router.route_all ~config:config.router ~passes:3 rs;
  Sta.full_update sta

let run_session ?resume ?ctx ?start_temperature ~(config : Config.t) ~rng ~t_start s =
  let nl = P.netlist s.place in
  let best =
    ref
      (match resume with
      | Some (r : resume) ->
        ( r.Checkpoint.V2.data.Checkpoint.V2.best_cost,
          Some r.Checkpoint.V2.data.Checkpoint.V2.best_layout )
      | None -> (infinity, None))
  in
  let anneal_report, stop_reason =
    Spr_obs.Obs.span ~name:"anneal" (fun () ->
        anneal_session ?resume ?ctx ?start_temperature ~config ~rng ~best s)
  in
  let status =
    match stop_reason with None -> Completed | Some reason -> Interrupted reason
  in
  (* For interrupted runs, deliver the best-so-far layout; the final
     checkpoint (already written) still holds the in-flight one, so a
     resume continues mid-schedule regardless. *)
  let place, rs, sta =
    match status with
    | Completed -> (s.place, s.rs, s.sta)
    | Interrupted reason -> (
      Log.info (fun m -> m "run interrupted (%s)" (stop_reason_to_string reason));
      let live = best_metric ~rs:s.rs ~sta:s.sta in
      match !best with
      | best_cost, Some text when best_cost < live -> (
        match Checkpoint.of_string nl text with
        | Ok best_rs -> (Rs.place best_rs, best_rs, Sta.create config.delay_model best_rs)
        | Error e ->
          Log.warn (fun m -> m "best-so-far layout failed to decode (%s); using current" e);
          (s.place, s.rs, s.sta))
      | _ -> (s.place, s.rs, s.sta))
  in
  Spr_obs.Obs.span ~name:"finalize" (fun () -> finalize ~config rs sta);
  if config.validation.validate && rs == s.rs then validate_now s;
  let profile = Move_pipeline.profile s.pipeline in
  let dynamics = Dynamics.samples s.dyn in
  let cpu_seconds = Sys.time () -. t_start in
  let critical_delay = Sta.critical_delay sta in
  let g = Rs.g_count rs and d = Rs.d_count rs in
  let best_cost = best_metric ~rs ~sta in
  (* A serial run has no separate wall clock: one domain, one replica,
     so cpu IS wall. The portfolio report overrides this with the
     fleet-wide elapsed time. *)
  let report =
    {
      Spr_obs.Report.r_label = run_label config;
      r_seed = config.seed;
      r_replicas = 1;
      r_status = Outcome.status_to_string status;
      r_fully_routed = Rs.fully_routed rs;
      r_g_unrouted = g;
      r_d_unrouted = d;
      r_critical_delay_ns = critical_delay;
      r_best_cost = best_cost;
      r_initial_cost = anneal_report.Spr_anneal.Engine.initial_cost;
      r_final_cost = anneal_report.Spr_anneal.Engine.final_cost;
      r_moves = anneal_report.Spr_anneal.Engine.n_moves;
      r_temperatures = anneal_report.Spr_anneal.Engine.n_temperatures;
      r_exchange_rounds = 0;
      r_cpu_seconds = cpu_seconds;
      r_wall_seconds = cpu_seconds;
      r_pipeline = Some (Profile.to_pipeline profile);
      r_route = Some (route_summary rs);
      r_dynamics = List.map Dynamics.to_row dynamics;
      r_metrics = Profile.metrics_snapshot profile;
    }
  in
  (* The registry dump closes the replica's own event stream; the trace
     assembler appends the replica_end marker after it. *)
  if Spr_obs.Obs.recording () then
    Spr_obs.Obs.emit (Spr_obs.Trace.Metrics_dump report.Spr_obs.Report.r_metrics);
  {
    place;
    route = rs;
    sta;
    critical_delay;
    g;
    d;
    fully_routed = Rs.fully_routed rs;
    anneal_report;
    dynamics;
    profile;
    cpu_seconds;
    status;
    best_cost;
    report;
    events = [];
  }

(* One route pool per replica run, reused across every move and shut
   down when the run ends (however it ends). The fleet-wide
   [route_workers] budget is split evenly between portfolio replicas; a
   share of 1 means inline planning — same batches, same results, no
   domains. *)
let with_route_pool (config : Config.t) f =
  let share =
    Portfolio.worker_share ~budget:config.parallel.route_workers
      ~replicas:config.parallel.replicas
  in
  if share <= 1 then f None
  else begin
    let pool = Parallel.Pool.create ~workers:share in
    Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f (Some pool))
  end

(* Hook the pool's busy clock into the profile's worker-utilization
   gauge (masked in traces; visible in reports). *)
let probe_pool profile = function
  | None -> ()
  | Some pool ->
    Profile.set_busy_probe profile (fun () -> Parallel.Pool.busy_seconds pool)

let run_fresh ?ctx ?seed_place ?start_temperature ~(config : Config.t) arch nl =
  let rng = Spr_util.Rng.stream ~seed:config.seed ~index:config.parallel.stream in
  (* A seeded run starts from the caller's placement (plain data, so
     portfolio replicas never share a mutable layout) instead of the
     random one; the rng simply skips the shuffle draws. *)
  let initial_place =
    match seed_place with
    | None -> P.create arch nl ~rng
    | Some (slots, pinmaps) -> P.create_from arch nl ~slots ~pinmaps
  in
  match initial_place with
  | Error e -> Error (Invalid_design e)
  | Ok place ->
    let t_start = Sys.time () in
    let rs = Rs.create place in
    (* Start-up transient: give every net a first chance at a (poor)
       route in the random placement. *)
    Spr_obs.Obs.span ~name:"route.initial" (fun () ->
        Router.route_all ~config:config.router ~passes:2 rs);
    let sta = Sta.create config.delay_model rs in
    let initial_delay = Float.max 1e-6 (Sta.critical_delay sta) in
    let weights =
      Spr_anneal.Weights.create ~g_per_net:config.weights.g_per_net
        ~d_per_net:config.weights.d_per_net ~t_emphasis:config.weights.t_emphasis
        ~initial_delay ()
    in
    with_route_pool config @@ fun route_pool ->
    let pipeline =
      Move_pipeline.create ?route_pool ~route_grain:config.parallel.route_grain
        ~router:(timing_router ~config ~sta nl)
        ~pinmap_move_prob:config.moves.pinmap_move_prob
        ~enable_pinmap_moves:config.moves.enable_pinmap_moves
        ~max_swap_tries:config.moves.max_swap_tries ~place ~rs ~sta ~weights
        ~journal:(J.create ()) ()
    in
    probe_pool (Move_pipeline.profile pipeline) route_pool;
    let s =
      {
        place;
        rs;
        sta;
        weights;
        pipeline;
        dyn = Dynamics.create ~n_cells:(Spr_netlist.Netlist.n_cells nl);
        accepted_since_audit = 0;
      }
    in
    Ok (run_session ?ctx ?start_temperature ~config ~rng ~t_start s)

let run_resumed ?ctx ~(config : Config.t) ~(resume : resume) nl =
  let t_start = Sys.time () in
  let data = resume.Checkpoint.V2.data in
  let rs = resume.Checkpoint.V2.route in
  let place = Rs.place rs in
  let n_cells = Spr_netlist.Netlist.n_cells nl in
  if Array.length data.Checkpoint.V2.dyn_flags <> n_cells then
    Error
      (Resume_failed
         (Printf.sprintf "%s: snapshot is for a %d-cell design, netlist has %d"
            resume.Checkpoint.V2.path
            (Array.length data.Checkpoint.V2.dyn_flags)
            n_cells))
  else begin
    (* The snapshot was written from a canonical ([full_update]d) STA, so
       rebuilding from scratch reproduces the exact timing state the
       interrupted run carried. *)
    let sta = Sta.create config.delay_model rs in
    let rng = Spr_util.Rng.of_state data.Checkpoint.V2.rng_state in
    let weights = Spr_anneal.Weights.restore data.Checkpoint.V2.weights in
    with_route_pool config @@ fun route_pool ->
    let pipeline =
      Move_pipeline.create ?route_pool ~route_grain:config.parallel.route_grain
        ~router:(timing_router ~config ~sta nl)
        ~pinmap_move_prob:config.moves.pinmap_move_prob
        ~enable_pinmap_moves:config.moves.enable_pinmap_moves
        ~max_swap_tries:config.moves.max_swap_tries ~place ~rs ~sta ~weights
        ~journal:(J.create ()) ()
    in
    probe_pool (Move_pipeline.profile pipeline) route_pool;
    let s =
      {
        place;
        rs;
        sta;
        weights;
        pipeline;
        dyn =
          Dynamics.restore ~n_cells ~flags:data.Checkpoint.V2.dyn_flags
            ~samples:data.Checkpoint.V2.dyn_samples;
        accepted_since_audit = data.Checkpoint.V2.accepted_since_audit;
      }
    in
    (* Seed the scheduler with the restored dynamics series so a resumed
       replica's predictor fits exactly the series the uninterrupted run
       would have. The metric is reconstructed bit-identically: the
       snapshot's percentage fields recover the integer unrouted counts
       exactly (they are < 0.5 ulp from an integer), and the rebuilt
       expression matches [best_metric] operation for operation. *)
    (match ctx with
    | None -> ()
    | Some c ->
      let nr = float_of_int (max 1 (Rs.n_routable rs)) in
      Scheduler.preload c.rep_sched ~replica:c.rep_index
        (List.map
           (fun (d : Dynamics.sample) ->
             let g =
               int_of_float (Float.round (d.Dynamics.pct_nets_globally_unrouted /. 100.0 *. nr))
             in
             let dd = int_of_float (Float.round (d.Dynamics.pct_nets_unrouted /. 100.0 *. nr)) in
             let metric = (float_of_int (g + dd) *. 1e9) +. d.Dynamics.critical_delay in
             (d.Dynamics.dyn_temp_index, metric, d.Dynamics.acceptance))
           data.Checkpoint.V2.dyn_samples));
    Ok (run_session ~resume ?ctx ~config ~rng ~t_start s)
  end

(* --- trace assembly ---
   One shared assembler produces [run_start :: replica streams ::
   exchange records :: run_end] for serial and portfolio runs alike, so
   a one-replica portfolio's trace is bit-identical to the serial
   one. *)

let replica_end_event ~replica (r : result) =
  {
    Spr_obs.Trace.ev_replica = replica;
    ev =
      Spr_obs.Trace.Replica_end
        {
          status = Outcome.status_to_string r.status;
          g = r.g;
          d = r.d;
          delay_ns = r.critical_delay;
          best_cost = r.best_cost;
        };
  }

let assemble_trace ~(config : Config.t) ~nl ~replicas ~streams ~exchanges ~scheds ~status ~g ~d
    ~delay_ns ~best_cost ~wall_seconds =
  let fleet ev = { Spr_obs.Trace.ev_replica = -1; ev } in
  let start =
    fleet
      (Spr_obs.Trace.Run_start
         {
           label = run_label config;
           seed = config.seed;
           replicas;
           n_cells = Spr_netlist.Netlist.n_cells nl;
           n_nets = Spr_netlist.Netlist.n_nets nl;
         })
  in
  let rounds =
    List.map
      (fun (x : Portfolio.round_result) ->
        fleet
          (Spr_obs.Trace.Exchange
             {
               round = x.Portfolio.xr_round;
               from_replica = x.Portfolio.xr_best_replica;
               metric = x.Portfolio.xr_best_metric;
             }))
      exchanges
  in
  (* Racing decision rounds: a kill row (the verdict) and a clone row
     (the domain reallocation) per killed replica, in round order. *)
  let sched_rows =
    List.concat_map
      (fun (r : Scheduler.round_record) ->
        List.concat_map
          (fun (k : Scheduler.kill) ->
            [
              fleet
                (Spr_obs.Trace.Sched_kill
                   {
                     round = r.Scheduler.sr_round;
                     replica = k.Scheduler.k_replica;
                     leader = r.Scheduler.sr_leader;
                     metric = r.Scheduler.sr_metric;
                   });
              fleet
                (Spr_obs.Trace.Sched_clone
                   {
                     round = r.Scheduler.sr_round;
                     replica = k.Scheduler.k_replica;
                     from_replica = r.Scheduler.sr_leader;
                     stream = k.Scheduler.k_stream;
                   });
            ])
          r.Scheduler.sr_kills)
      scheds
  in
  let stop =
    fleet (Spr_obs.Trace.Run_end { status; g; d; delay_ns; best_cost; wall_seconds })
  in
  (start :: List.concat streams) @ rounds @ sched_rows @ [ stop ]

let trace_events ~config nl (r : result) =
  assemble_trace ~config ~nl ~replicas:1
    ~streams:[ r.events @ [ replica_end_event ~replica:0 r ] ]
    ~exchanges:[] ~scheds:[]
    ~status:(Outcome.status_to_string r.status)
    ~g:r.g ~d:r.d ~delay_ns:r.critical_delay ~best_cost:r.best_cost
    ~wall_seconds:r.cpu_seconds

let write_report_file path report =
  Spr_util.Persist.atomic_write path
    (Spr_obs.Json.to_string ~indent:true (Spr_obs.Report.to_json report) ^ "\n")

let recording_wanted (config : Config.t) =
  config.Config.obs.Config.record
  || config.Config.obs.Config.trace_path <> None
  || config.Config.obs.Config.on_event <> None

(* The recording sink for one replica: a live [on_event] hook gets a
   streaming sink (buffered copy still feeds trace assembly); plain
   recording buffers in memory; otherwise the null sink keeps every
   instrumentation point a strict no-op. The hook runs on the emitting
   domain — portfolio replicas share it, so it must do its own
   locking. *)
let replica_sink (config : Config.t) =
  match config.Config.obs.Config.on_event with
  | Some f when recording_wanted config -> Spr_obs.Sink.stream f
  | _ -> if recording_wanted config then Spr_obs.Sink.memory () else Spr_obs.Sink.null

let run ?(config = Config.default) ?resume ?seed_place ?start_temperature arch nl =
  match Config.validated config with
  | Error msg -> Error (Invalid_config msg)
  | Ok config -> (
    match Spr_netlist.Levelize.run nl with
    | Error e -> Error (Invalid_design e)
    | Ok _ -> (
      let sink = replica_sink config in
      let outcome =
        try
          Spr_obs.Obs.with_recording ~sink ~replica:0 (fun () ->
              match resume with
              | Some resume -> run_resumed ~config ~resume nl
              | None -> run_fresh ?seed_place ?start_temperature ~config arch nl)
        with Audit_failure findings -> Error (Audit_failed findings)
      in
      match outcome with
      | Error e -> Error e
      | Ok r ->
        let r = { r with events = Spr_obs.Sink.events sink } in
        (match config.obs.trace_path with
        | Some path -> Spr_obs.Trace.to_file path (trace_events ~config nl r)
        | None -> ());
        (match config.obs.report_path with
        | Some path -> write_report_file path r.report
        | None -> ());
        Ok r))

let run_exn ?config ?resume ?seed_place ?start_temperature arch nl =
  match run ?config ?resume ?seed_place ?start_temperature arch nl with
  | Ok r -> r
  | Error e -> raise (Tool_error e)

(* --- parallel portfolio --- *)

type portfolio_result = {
  p_best_replica : int;
  p_results : result array;
  p_profile : Profile.t;
  p_exchanges : Portfolio.round_result list;
  p_scheds : Scheduler.round_record list;
  p_wall_seconds : float;
  p_report : Spr_obs.Report.t;
}

let best_result p = p.p_results.(p.p_best_replica)

let portfolio_trace_events ~config nl (p : portfolio_result) =
  let best = best_result p in
  assemble_trace ~config ~nl
    ~replicas:(Array.length p.p_results)
    ~streams:
      (Array.to_list
         (Array.mapi (fun k r -> r.events @ [ replica_end_event ~replica:k r ]) p.p_results))
    ~exchanges:p.p_exchanges ~scheds:p.p_scheds
    ~status:(Outcome.status_to_string best.status)
    ~g:best.g ~d:best.d ~delay_ns:best.critical_delay ~best_cost:best.best_cost
    ~wall_seconds:p.p_wall_seconds

let run_portfolio ?(config = Config.default) ?resume_dir ?seed_place ?start_temperature arch nl =
  match Config.validated config with
  | Error msg -> Error (Invalid_config msg)
  | Ok config -> (
    match Spr_netlist.Levelize.run nl with
    | Error e -> Error (Invalid_design e)
    | Ok _ ->
      let replicas = config.parallel.replicas in
      (* A previous fleet (or fault injection) may have left the stop
         flag raised; a new fleet starts clean. Signal handlers can
         re-raise it at any time. *)
      reset_interrupt ();
      let wall = Spr_util.Clock.start () in
      let sched =
        match config.parallel.scheduler.Config.kind with
        | `Barrier ->
          let history =
            match resume_dir with Some dir -> Checkpoint.Exchange.load_all ~dir | None -> []
          in
          let persist =
            match config.persistence.run_dir with
            | Some dir when replicas > 1 && config.parallel.exchange <> Portfolio.Independent ->
              fun r -> ignore (Checkpoint.Exchange.write ~dir r)
            | _ -> fun _ -> ()
          in
          Scheduler.barrier
            (Portfolio.create ~replicas ~exchange:config.parallel.exchange ~history ~persist
               ~frozen:interrupt_requested ())
        | `Racing ->
          let sc = config.parallel.scheduler in
          let history =
            match resume_dir with
            | Some dir when sc.Config.race_sync -> Checkpoint.Sched.load_all ~dir
            | _ -> []
          in
          let persist =
            match config.persistence.run_dir with
            | Some dir when replicas > 1 && sc.Config.race_sync ->
              fun r -> ignore (Checkpoint.Sched.write ~dir r)
            | _ -> fun _ -> ()
          in
          Scheduler.racing
            {
              Scheduler.replicas;
              warmup = sc.Config.race_warmup;
              every = sc.Config.race_every;
              (* CLI margin is in unrouted-net units; the metric counts
                 a net as 1e9 (delay breaks ties below that). *)
              margin = sc.Config.race_margin *. 1e9;
              horizon = sc.Config.race_horizon;
              sync = sc.Config.race_sync;
            }
            ~history ~persist ~frozen:interrupt_requested ()
      in
      let sinks = Array.init replicas (fun _ -> replica_sink config) in
      let worker k =
        (* One replica IS the serial path: no coordination, the
           configured stream, unprefixed snapshot files — bit-identical
           to [run]. With more replicas, replica [k] draws stream [k],
           so the winner can be reproduced standalone via
           [Config.with_stream k]. *)
        let config =
          if replicas = 1 then config
          else { config with Config.parallel = { config.Config.parallel with Config.stream = k } }
        in
        let ctx = if replicas = 1 then None else Some { rep_index = k; rep_sched = sched } in
        let body () =
          Spr_obs.Obs.with_recording ~sink:sinks.(k) ~replica:k (fun () ->
              try
                match resume_dir with
                | Some dir -> (
                  let replica = if replicas = 1 then None else Some k in
                  match Checkpoint.V2.load_latest ?replica nl ~dir with
                  | Ok resume -> run_resumed ?ctx ~config ~resume nl
                  | Error e ->
                    (* No loadable snapshot for this replica: restart it
                       from scratch. Determinism makes the restart replay
                       the lost trajectory exactly, consuming any recorded
                       exchange rounds along the way. *)
                    Log.info (fun m -> m "replica %d: %s; starting fresh" k e);
                    run_fresh ?ctx ?seed_place ?start_temperature ~config arch nl)
                | None -> run_fresh ?ctx ?seed_place ?start_temperature ~config arch nl
              with Audit_failure findings -> Error (Audit_failed findings))
        in
        if replicas = 1 then body ()
        else Fun.protect ~finally:(fun () -> Scheduler.finished sched ~replica:k) body
      in
      let outcomes = Portfolio.run_replicas ~replicas worker in
      (* An exception escaping a replica is a bug in this layer, not a
         run outcome — re-raise the first. *)
      Array.iter (function Error e -> raise e | Ok _ -> ()) outcomes;
      let settled = Array.map (function Ok r -> r | Error _ -> assert false) outcomes in
      match Array.find_map (function Error e -> Some e | Ok _ -> None) settled with
      | Some e -> Error e
      | None ->
        let results = Array.map (function Ok r -> r | Error _ -> assert false) settled in
        let results =
          Array.mapi (fun k (r : result) -> { r with events = Spr_obs.Sink.events sinks.(k) }) results
        in
        let best = ref 0 in
        Array.iteri
          (fun i (r : result) -> if r.best_cost < results.(!best).best_cost then best := i)
          results;
        let merged = Profile.create () in
        Array.iter (fun (r : result) -> Profile.absorb merged r.profile) results;
        let exchanges = Scheduler.exchanges sched in
        let scheds = Scheduler.rounds sched in
        let wall_seconds = Spr_util.Clock.elapsed wall in
        (* The fleet report: the winner's layout-facing numbers, the
           merged pipeline/metrics, fleet-wide clocks. Under racing,
           "rounds" counts deciding (killing) rounds. *)
        let p_report =
          {
            results.(!best).report with
            Spr_obs.Report.r_replicas = replicas;
            r_exchange_rounds = List.length exchanges + List.length scheds;
            r_cpu_seconds =
              Array.fold_left (fun acc (r : result) -> acc +. r.cpu_seconds) 0.0 results;
            r_wall_seconds = wall_seconds;
            r_pipeline = Some (Profile.to_pipeline merged);
            r_metrics = Profile.metrics_snapshot merged;
          }
        in
        let p =
          {
            p_best_replica = !best;
            p_results = results;
            p_profile = merged;
            p_exchanges = exchanges;
            p_scheds = scheds;
            p_wall_seconds = wall_seconds;
            p_report;
          }
        in
        (match config.obs.trace_path with
        | Some path -> Spr_obs.Trace.to_file path (portfolio_trace_events ~config nl p)
        | None -> ());
        (match config.obs.report_path with
        | Some path -> write_report_file path p_report
        | None -> ());
        Ok p)

let run_portfolio_exn ?config ?resume_dir ?seed_place ?start_temperature arch nl =
  match run_portfolio ?config ?resume_dir ?seed_place ?start_temperature arch nl with
  | Ok r -> r
  | Error e -> raise (Tool_error e)

let audit_result (r : result) = Spr_check.Audit.run_all ~sta:r.sta r.route
