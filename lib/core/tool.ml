let log_src = Logs.Src.create "spr.tool" ~doc:"Simultaneous place-and-route progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

module P = Spr_layout.Placement
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Sta = Spr_timing.Sta
module J = Spr_util.Journal

type config = {
  seed : int;
  pinmap_move_prob : float;
  enable_pinmap_moves : bool;
  router : Router.config;
  timing_driven_routing : bool;
  delay_model : Spr_timing.Delay_model.t;
  g_per_net : float;
  d_per_net : float;
  t_emphasis : float;
  anneal : Spr_anneal.Engine.config option;
  max_swap_tries : int;
  validate : bool;
  validate_every : int;
}

let default_config =
  {
    seed = 1;
    pinmap_move_prob = 0.15;
    enable_pinmap_moves = true;
    router = Router.default_config;
    timing_driven_routing = false;
    delay_model = Spr_timing.Delay_model.default;
    g_per_net = 0.04;
    d_per_net = 0.02;
    t_emphasis = 1.0;
    anneal = None;
    max_swap_tries = 8;
    validate = false;
    validate_every = 50;
  }

type result = {
  place : P.t;
  route : Rs.t;
  sta : Sta.t;
  critical_delay : float;
  g : int;
  d : int;
  fully_routed : bool;
  anneal_report : Spr_anneal.Engine.report;
  dynamics : Dynamics.sample list;
  cpu_seconds : float;
}

(* One move = one transaction. [propose] applies everything (placement
   delta, rip-ups, reroutes, timing propagation) into the shared journal;
   accept commits it, reject rolls the whole cascade back. *)
type session = {
  cfg : config;
  router : Router.config;  (* cfg.router, plus the criticality hook *)
  place : P.t;
  rs : Rs.t;
  sta : Sta.t;
  weights : Spr_anneal.Weights.t;
  journal : J.t;
  dyn : Dynamics.t;
  mutable last_cells : int list;
  mutable accepted_since_audit : int;
}

let session_cost s =
  Spr_anneal.Weights.cost s.weights ~g:(Rs.g_count s.rs) ~d:(Rs.d_count s.rs)
    ~delay:(Sta.critical_delay s.sta)

let finish_move s ripped =
  let routed = Router.reroute ~config:s.router s.rs s.journal in
  let dirty = List.sort_uniq compare (List.rev_append ripped routed) in
  Sta.invalidate s.sta s.journal dirty;
  Spr_anneal.Weights.observe s.weights ~delay:(Sta.critical_delay s.sta)

let propose_pinmap s rng =
  let nl = P.netlist s.place in
  let n = Spr_netlist.Netlist.n_cells nl in
  let cell = Spr_util.Rng.int rng n in
  let size = P.palette_size s.place cell in
  if size < 2 then false
  else begin
    let old_idx = P.pinmap_index s.place cell in
    let shift = 1 + Spr_util.Rng.int rng (size - 1) in
    let idx = (old_idx + shift) mod size in
    P.set_pinmap s.place ~cell ~index:idx;
    J.record s.journal (fun () -> P.set_pinmap s.place ~cell ~index:old_idx);
    let ripped = Router.rip_up_cell s.rs s.journal cell in
    finish_move s ripped;
    s.last_cells <- [ cell ];
    true
  end

let propose_swap s rng =
  let rec find tries =
    if tries = 0 then None
    else begin
      let a = P.random_occupied_slot s.place rng in
      let b = P.random_slot s.place rng in
      if a <> b && P.swap_legal s.place a b then Some (a, b) else find (tries - 1)
    end
  in
  match find s.cfg.max_swap_tries with
  | None -> false
  | Some (a, b) ->
    let occupants = List.filter_map (fun slot -> P.cell_at s.place slot) [ a; b ] in
    P.swap_slots s.place a b;
    J.record s.journal (fun () -> P.swap_slots s.place a b);
    let ripped =
      List.concat_map (fun cell -> Router.rip_up_cell s.rs s.journal cell) occupants
    in
    finish_move s (List.sort_uniq compare ripped);
    s.last_cells <- occupants;
    true

let propose s rng =
  assert (J.depth s.journal = 0);
  s.last_cells <- [];
  if s.cfg.enable_pinmap_moves && Spr_util.Rng.float rng 1.0 < s.cfg.pinmap_move_prob then
    propose_pinmap s rng
  else propose_swap s rng

(* The full audit subsystem: placement bijection/legality, the routing
   mirror oracle, and a from-scratch STA diff. Failing fast here turns a
   silently corrupted cost function into an immediate, attributable
   crash. *)
let validate_now s =
  match Spr_check.Audit.run_all ~sta:s.sta s.rs with
  | [] -> ()
  | findings ->
    failwith ("Tool: invariant audit failed:\n" ^ Spr_check.Finding.summarize findings)

let run ?(config = default_config) arch nl =
  match Spr_netlist.Levelize.run nl with
  | Error e -> Error e
  | Ok _ -> (
    let rng = Spr_util.Rng.create config.seed in
    match P.create arch nl ~rng with
    | Error e -> Error e
    | Ok place ->
      let t_start = Sys.time () in
      let rs = Rs.create place in
      (* Start-up transient: give every net a first chance at a (poor)
         route in the random placement. *)
      Router.route_all ~config:config.router ~passes:2 rs;
      let sta = Sta.create config.delay_model rs in
      let initial_delay = Float.max 1e-6 (Sta.critical_delay sta) in
      let weights =
        Spr_anneal.Weights.create ~g_per_net:config.g_per_net ~d_per_net:config.d_per_net
          ~t_emphasis:config.t_emphasis ~initial_delay ()
      in
      let router =
        if not config.timing_driven_routing then config.router
        else begin
          let crit net =
            Sta.arrival_out sta (Spr_netlist.Netlist.net nl net).Spr_netlist.Netlist.driver
          in
          { config.router with Router.criticality = Some crit }
        end
      in
      let s =
        {
          cfg = config;
          router;
          place;
          rs;
          sta;
          weights;
          journal = J.create ();
          dyn = Dynamics.create ~n_cells:(Spr_netlist.Netlist.n_cells nl);
          last_cells = [];
          accepted_since_audit = 0;
        }
      in
      let n_routable = max 1 (Rs.n_routable rs) in
      let on_temperature (ts : Spr_anneal.Engine.temp_stats) =
        Spr_anneal.Weights.adapt s.weights;
        if config.validate then validate_now s;
        Log.debug (fun m ->
            m "temp %d T=%.4g acc=%d/%d G=%d D=%d delay=%.2fns"
              ts.Spr_anneal.Engine.temp_index ts.Spr_anneal.Engine.temperature
              ts.Spr_anneal.Engine.accepted ts.Spr_anneal.Engine.attempted (Rs.g_count rs)
              (Rs.d_count rs) (Sta.critical_delay sta));
        let acceptance =
          if ts.Spr_anneal.Engine.attempted = 0 then 0.0
          else
            float_of_int ts.Spr_anneal.Engine.accepted
            /. float_of_int ts.Spr_anneal.Engine.attempted
        in
        Dynamics.flush s.dyn ~temp_index:ts.Spr_anneal.Engine.temp_index
          ~temperature:ts.Spr_anneal.Engine.temperature
          ~g_frac:(float_of_int (Rs.g_count rs) /. float_of_int n_routable)
          ~d_frac:(float_of_int (Rs.d_count rs) /. float_of_int n_routable)
          ~acceptance ~cost:(session_cost s)
          ~critical_delay:(Sta.critical_delay sta)
      in
      let anneal_report =
        Spr_anneal.Engine.run ?config:config.anneal ~on_temperature ~rng
          ~cost:(fun () -> session_cost s)
          ~propose:(fun rng -> propose s rng)
          ~accept:(fun () ->
            Dynamics.note_accepted_cells s.dyn s.last_cells;
            J.commit s.journal;
            if config.validate then begin
              s.accepted_since_audit <- s.accepted_since_audit + 1;
              if s.accepted_since_audit >= max 1 config.validate_every then begin
                s.accepted_since_audit <- 0;
                validate_now s
              end
            end)
          ~reject:(fun () -> J.rollback s.journal)
          ~n:(Spr_netlist.Netlist.n_cells nl)
          ()
      in
      (* Final cleanup pass: any still-queued nets get a last chance with
         unbounded retries, then refresh the timing picture. *)
      Router.route_all ~config:config.router ~passes:3 rs;
      Sta.full_update sta;
      if config.validate then validate_now s;
      Ok
        {
          place;
          route = rs;
          sta;
          critical_delay = Sta.critical_delay sta;
          g = Rs.g_count rs;
          d = Rs.d_count rs;
          fully_routed = Rs.fully_routed rs;
          anneal_report;
          dynamics = Dynamics.samples s.dyn;
          cpu_seconds = Sys.time () -. t_start;
        })

let run_exn ?config arch nl =
  match run ?config arch nl with
  | Ok r -> r
  | Error e -> invalid_arg ("Tool.run: " ^ e)

let audit_result (r : result) = Spr_check.Audit.run_all ~sta:r.sta r.route
