type stop_reason = Time_budget | Move_budget | Interrupt

type status = Completed | Interrupted of stop_reason

type error =
  | Invalid_config of string
  | Invalid_design of string
  | Audit_failed of Spr_check.Finding.t list
  | Resume_failed of string

exception Error of error

let stop_reason_to_string = function
  | Time_budget -> "time budget"
  | Move_budget -> "move budget"
  | Interrupt -> "interrupt"

let status_to_string = function
  | Completed -> "completed"
  | Interrupted reason -> Printf.sprintf "interrupted (%s)" (stop_reason_to_string reason)

let error_to_string = function
  | Invalid_config msg -> "invalid configuration: " ^ msg
  | Invalid_design msg -> "invalid design: " ^ msg
  | Audit_failed findings ->
    "invariant audit failed:\n" ^ Spr_check.Finding.summarize findings
  | Resume_failed msg -> "resume failed: " ^ msg

let get = function Ok x -> x | Error e -> raise (Error e)
