module Metrics = Spr_obs.Metrics

type phase = Propose | Rip_up | Global | Detail | Retime | Decide

let phases = [ Propose; Rip_up; Global; Detail; Retime; Decide ]

let n_phases = List.length phases

let phase_index = function
  | Propose -> 0
  | Rip_up -> 1
  | Global -> 2
  | Detail -> 3
  | Retime -> 4
  | Decide -> 5

let phase_name = function
  | Propose -> "propose"
  | Rip_up -> "rip-up"
  | Global -> "reroute-global"
  | Detail -> "reroute-detail"
  | Retime -> "retime"
  | Decide -> "decide"

(* The profile is a facade over a metrics registry: every tally and
   phase clock lives in a registry cell (one store per update, same
   hot-path cost as the mutable record it replaces), so a registry
   snapshot is the whole pipeline breakdown. The router attempt/success
   tallies stay in the raw [Router.counters] record the routers mutate;
   they are mirrored into registry counters at snapshot time. *)
type t = {
  reg : Metrics.t;
  phase_times : Metrics.gauge array;  (* cumulative seconds per phase *)
  phase_calls : Metrics.counter array;  (* timed brackets per phase *)
  counters : Spr_route.Router.counters;
  m_global_attempts : Metrics.counter;
  m_global_routed : Metrics.counter;
  m_detail_attempts : Metrics.counter;
  m_detail_routed : Metrics.counter;
  m_moves : Metrics.counter;  (* proposals that formed a transaction *)
  m_null_moves : Metrics.counter;  (* proposals that found no legal move *)
  m_ripped : Metrics.counter;
  m_retimed : Metrics.counter;  (* dirty nets handed to the analyzer *)
  m_accepts : Metrics.counter;
  m_rejects : Metrics.counter;
  m_total : Metrics.gauge;  (* wall seconds inside move transactions *)
}

let create () =
  let reg = Metrics.create () in
  let phase_times =
    Array.of_list
      (List.map (fun p -> Metrics.gauge reg ("pipeline.phase." ^ phase_name p ^ ".seconds")) phases)
  in
  let phase_calls =
    Array.of_list
      (List.map (fun p -> Metrics.counter reg ("pipeline.phase." ^ phase_name p ^ ".calls")) phases)
  in
  {
    reg;
    phase_times;
    phase_calls;
    counters = Spr_route.Router.fresh_counters ();
    m_moves = Metrics.counter reg "pipeline.moves";
    m_null_moves = Metrics.counter reg "pipeline.null_moves";
    m_accepts = Metrics.counter reg "pipeline.accepts";
    m_rejects = Metrics.counter reg "pipeline.rejects";
    m_ripped = Metrics.counter reg "pipeline.ripped_nets";
    m_retimed = Metrics.counter reg "pipeline.retimed_nets";
    m_total = Metrics.gauge reg "pipeline.total_seconds";
    m_global_attempts = Metrics.counter reg "router.global.attempts";
    m_global_routed = Metrics.counter reg "router.global.routed";
    m_detail_attempts = Metrics.counter reg "router.detail.attempts";
    m_detail_routed = Metrics.counter reg "router.detail.routed";
  }

let registry t = t.reg

(* Refresh the router-counter mirrors from the raw record the routers
   mutate; called before any registry export. *)
let sync_mirrors t =
  let c = t.counters in
  Metrics.counter_set t.m_global_attempts c.Spr_route.Router.c_global_attempts;
  Metrics.counter_set t.m_global_routed c.Spr_route.Router.c_global_routed;
  Metrics.counter_set t.m_detail_attempts c.Spr_route.Router.c_detail_attempts;
  Metrics.counter_set t.m_detail_routed c.Spr_route.Router.c_detail_routed

let metrics_snapshot t =
  sync_mirrors t;
  Metrics.snapshot t.reg

(* Fold another profile into this one; the portfolio merges per-replica
   profiles into a fleet-wide breakdown this way. The mirrors are
   rebuilt from the merged raw record at the next export, so absorbing
   their stale registry values is harmless. *)
let absorb t other =
  Metrics.absorb t.reg other.reg;
  let c = t.counters and oc = other.counters in
  c.Spr_route.Router.c_global_attempts <-
    c.Spr_route.Router.c_global_attempts + oc.Spr_route.Router.c_global_attempts;
  c.Spr_route.Router.c_global_routed <-
    c.Spr_route.Router.c_global_routed + oc.Spr_route.Router.c_global_routed;
  c.Spr_route.Router.c_detail_attempts <-
    c.Spr_route.Router.c_detail_attempts + oc.Spr_route.Router.c_detail_attempts;
  c.Spr_route.Router.c_detail_routed <-
    c.Spr_route.Router.c_detail_routed + oc.Spr_route.Router.c_detail_routed;
  sync_mirrors t

let record t phase dt =
  let i = phase_index phase in
  Metrics.gauge_add t.phase_times.(i) dt;
  Metrics.incr t.phase_calls.(i)

let time t phase f =
  let t0 = Spr_util.Clock.now () in
  let r = f () in
  record t phase (Spr_util.Clock.now () -. t0);
  r

let add_total t dt = Metrics.gauge_add t.m_total dt

let counters t = t.counters

let phase_seconds t phase = Metrics.gauge_value t.phase_times.(phase_index phase)

let phase_calls t phase = Metrics.counter_value t.phase_calls.(phase_index phase)

let total_seconds t = Metrics.gauge_value t.m_total

let phase_sum t = Array.fold_left (fun acc g -> acc +. Metrics.gauge_value g) 0.0 t.phase_times

let t_moves t = Metrics.counter_value t.m_moves

let t_null_moves t = Metrics.counter_value t.m_null_moves

let t_accepts t = Metrics.counter_value t.m_accepts

let t_rejects t = Metrics.counter_value t.m_rejects

let t_ripped_nets t = Metrics.counter_value t.m_ripped

let t_retimed_nets t = Metrics.counter_value t.m_retimed

(* Fraction of the bracketed move time the phase brackets account for;
   the remainder is inter-phase bookkeeping. 1.0 when no move ran. *)
let coverage t =
  let total = total_seconds t in
  if total <= 0.0 then 1.0 else phase_sum t /. total

(* Per-temperature deltas: capture the cumulative cells at a batch
   boundary and subtract at the next one. *)
type mark = { mark_times : float array; mark_total : float; mark_moves : int }

let mark t =
  {
    mark_times = Array.map Metrics.gauge_value t.phase_times;
    mark_total = total_seconds t;
    mark_moves = t_moves t;
  }

let since t m =
  ( Array.mapi (fun i g -> Metrics.gauge_value g -. m.mark_times.(i)) t.phase_times,
    total_seconds t -. m.mark_total,
    t_moves t - m.mark_moves )

let to_pipeline t =
  let c = t.counters in
  {
    Spr_obs.Report.pl_moves = t_moves t;
    pl_null_moves = t_null_moves t;
    pl_accepts = t_accepts t;
    pl_rejects = t_rejects t;
    pl_ripped_nets = t_ripped_nets t;
    pl_retimed_nets = t_retimed_nets t;
    pl_total_seconds = total_seconds t;
    pl_phases =
      List.map
        (fun p ->
          {
            Spr_obs.Report.ph_name = phase_name p;
            ph_seconds = phase_seconds t p;
            ph_calls = phase_calls t p;
          })
        phases;
    pl_global_attempts = c.Spr_route.Router.c_global_attempts;
    pl_global_routed = c.Spr_route.Router.c_global_routed;
    pl_detail_attempts = c.Spr_route.Router.c_detail_attempts;
    pl_detail_routed = c.Spr_route.Router.c_detail_routed;
  }

let pp ppf t =
  let c = t.counters in
  let moves = t_moves t in
  Format.fprintf ppf "move pipeline: %d moves (%d null proposals), %d accepted, %d rejected@."
    moves (t_null_moves t) (t_accepts t) (t_rejects t);
  Format.fprintf ppf "%-16s %12s %10s %12s@." "phase" "time(ms)" "calls" "ns/move";
  let per_move s = if moves = 0 then 0.0 else s *. 1e9 /. float_of_int moves in
  List.iter
    (fun p ->
      let s = phase_seconds t p in
      Format.fprintf ppf "%-16s %12.2f %10d %12.0f@." (phase_name p) (s *. 1e3)
        (phase_calls t p) (per_move s))
    phases;
  Format.fprintf ppf "%-16s %12.2f %10d %12.0f@." "total" (total_seconds t *. 1e3) moves
    (per_move (total_seconds t));
  Format.fprintf ppf "phase coverage: %.1f%% of bracketed move time@." (100.0 *. coverage t);
  Format.fprintf ppf
    "counters: ripped %d nets, global %d/%d routed/attempted, detail %d/%d, retimed %d nets@."
    (t_ripped_nets t) c.Spr_route.Router.c_global_routed c.Spr_route.Router.c_global_attempts
    c.Spr_route.Router.c_detail_routed c.Spr_route.Router.c_detail_attempts (t_retimed_nets t)

let note_move t = Metrics.incr t.m_moves

let note_null_move t = Metrics.incr t.m_null_moves

let note_accept t = Metrics.incr t.m_accepts

let note_reject t = Metrics.incr t.m_rejects

let add_ripped t n = Metrics.add t.m_ripped n

let add_retimed t n = Metrics.add t.m_retimed n
