type phase = Propose | Rip_up | Global | Detail | Retime | Decide

let phases = [ Propose; Rip_up; Global; Detail; Retime; Decide ]

let n_phases = List.length phases

let phase_index = function
  | Propose -> 0
  | Rip_up -> 1
  | Global -> 2
  | Detail -> 3
  | Retime -> 4
  | Decide -> 5

let phase_name = function
  | Propose -> "propose"
  | Rip_up -> "rip-up"
  | Global -> "reroute-global"
  | Detail -> "reroute-detail"
  | Retime -> "retime"
  | Decide -> "decide"

type t = {
  times : float array;  (* cumulative seconds per phase *)
  calls : int array;  (* timed brackets per phase *)
  counters : Spr_route.Router.counters;
  mutable moves : int;  (* proposals that formed a transaction *)
  mutable null_moves : int;  (* proposals that found no legal move *)
  mutable ripped_nets : int;
  mutable retimed_nets : int;  (* dirty nets handed to the analyzer *)
  mutable accepts : int;
  mutable rejects : int;
  mutable total : float;  (* wall seconds inside move transactions *)
}

let create () =
  {
    times = Array.make n_phases 0.0;
    calls = Array.make n_phases 0;
    counters = Spr_route.Router.fresh_counters ();
    moves = 0;
    null_moves = 0;
    ripped_nets = 0;
    retimed_nets = 0;
    accepts = 0;
    rejects = 0;
    total = 0.0;
  }

(* Fold another profile into this one; the portfolio merges per-replica
   profiles into a fleet-wide breakdown this way. *)
let absorb t other =
  for i = 0 to n_phases - 1 do
    t.times.(i) <- t.times.(i) +. other.times.(i);
    t.calls.(i) <- t.calls.(i) + other.calls.(i)
  done;
  let c = t.counters and oc = other.counters in
  c.Spr_route.Router.c_global_attempts <-
    c.Spr_route.Router.c_global_attempts + oc.Spr_route.Router.c_global_attempts;
  c.Spr_route.Router.c_global_routed <-
    c.Spr_route.Router.c_global_routed + oc.Spr_route.Router.c_global_routed;
  c.Spr_route.Router.c_detail_attempts <-
    c.Spr_route.Router.c_detail_attempts + oc.Spr_route.Router.c_detail_attempts;
  c.Spr_route.Router.c_detail_routed <-
    c.Spr_route.Router.c_detail_routed + oc.Spr_route.Router.c_detail_routed;
  t.moves <- t.moves + other.moves;
  t.null_moves <- t.null_moves + other.null_moves;
  t.ripped_nets <- t.ripped_nets + other.ripped_nets;
  t.retimed_nets <- t.retimed_nets + other.retimed_nets;
  t.accepts <- t.accepts + other.accepts;
  t.rejects <- t.rejects + other.rejects;
  t.total <- t.total +. other.total

let record t phase dt =
  let i = phase_index phase in
  t.times.(i) <- t.times.(i) +. dt;
  t.calls.(i) <- t.calls.(i) + 1

let time t phase f =
  let t0 = Spr_util.Clock.now () in
  let r = f () in
  record t phase (Spr_util.Clock.now () -. t0);
  r

let add_total t dt = t.total <- t.total +. dt

let counters t = t.counters

let phase_seconds t phase = t.times.(phase_index phase)

let phase_calls t phase = t.calls.(phase_index phase)

let total_seconds t = t.total

let phase_sum t = Array.fold_left ( +. ) 0.0 t.times

(* Fraction of the bracketed move time the phase brackets account for;
   the remainder is inter-phase bookkeeping. 1.0 when no move ran. *)
let coverage t = if t.total <= 0.0 then 1.0 else phase_sum t /. t.total

(* Per-temperature deltas: capture the cumulative arrays at a batch
   boundary and subtract at the next one. *)
type mark = { mark_times : float array; mark_total : float; mark_moves : int }

let mark t = { mark_times = Array.copy t.times; mark_total = t.total; mark_moves = t.moves }

let since t m =
  ( Array.mapi (fun i v -> v -. m.mark_times.(i)) t.times,
    t.total -. m.mark_total,
    t.moves - m.mark_moves )

let pp ppf t =
  let c = t.counters in
  Format.fprintf ppf "move pipeline: %d moves (%d null proposals), %d accepted, %d rejected@."
    t.moves t.null_moves t.accepts t.rejects;
  Format.fprintf ppf "%-16s %12s %10s %12s@." "phase" "time(ms)" "calls" "ns/move";
  let per_move s = if t.moves = 0 then 0.0 else s *. 1e9 /. float_of_int t.moves in
  List.iter
    (fun p ->
      let i = phase_index p in
      Format.fprintf ppf "%-16s %12.2f %10d %12.0f@." (phase_name p) (t.times.(i) *. 1e3)
        t.calls.(i)
        (per_move t.times.(i)))
    phases;
  Format.fprintf ppf "%-16s %12.2f %10d %12.0f@." "total" (t.total *. 1e3) t.moves
    (per_move t.total);
  Format.fprintf ppf "phase coverage: %.1f%% of bracketed move time@." (100.0 *. coverage t);
  Format.fprintf ppf
    "counters: ripped %d nets, global %d/%d routed/attempted, detail %d/%d, retimed %d nets@."
    t.ripped_nets c.Spr_route.Router.c_global_routed c.Spr_route.Router.c_global_attempts
    c.Spr_route.Router.c_detail_routed c.Spr_route.Router.c_detail_attempts t.retimed_nets

let t_moves t = t.moves

let t_null_moves t = t.null_moves

let t_accepts t = t.accepts

let t_rejects t = t.rejects

let t_ripped_nets t = t.ripped_nets

let t_retimed_nets t = t.retimed_nets

let note_move t = t.moves <- t.moves + 1

let note_null_move t = t.null_moves <- t.null_moves + 1

let note_accept t = t.accepts <- t.accepts + 1

let note_reject t = t.rejects <- t.rejects + 1

let add_ripped t n = t.ripped_nets <- t.ripped_nets + n

let add_retimed t n = t.retimed_nets <- t.retimed_nets + n
