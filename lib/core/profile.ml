module Metrics = Spr_obs.Metrics

type phase = Propose | Rip_up | Global | Detail | Retime | Decide

let phases = [ Propose; Rip_up; Global; Detail; Retime; Decide ]

let n_phases = List.length phases

let phase_index = function
  | Propose -> 0
  | Rip_up -> 1
  | Global -> 2
  | Detail -> 3
  | Retime -> 4
  | Decide -> 5

let phase_name = function
  | Propose -> "propose"
  | Rip_up -> "rip-up"
  | Global -> "reroute-global"
  | Detail -> "reroute-detail"
  | Retime -> "retime"
  | Decide -> "decide"

(* The profile is a facade over a metrics registry: every tally and
   phase clock lives in a registry cell (one store per update, same
   hot-path cost as the mutable record it replaces), so a registry
   snapshot is the whole pipeline breakdown. The router attempt/success
   tallies stay in the raw [Router.counters] record the routers mutate;
   they are mirrored into registry counters at snapshot time. *)
type t = {
  reg : Metrics.t;
  phase_times : Metrics.gauge array;  (* cumulative seconds per phase *)
  phase_calls : Metrics.counter array;  (* timed brackets per phase *)
  counters : Spr_route.Router.counters;
  par : Spr_route.Parallel.stats;
  m_par_batches : Metrics.counter;
  m_par_planned : Metrics.counter;
  m_par_conflicts : Metrics.counter;
  m_par_retries : Metrics.counter;
  m_par_hist : Metrics.counter array;  (* batch-size buckets *)
  m_par_busy : Metrics.gauge;  (* worker busy seconds; masked in traces *)
  mutable busy_probe : unit -> float;
  m_global_attempts : Metrics.counter;
  m_global_routed : Metrics.counter;
  m_detail_attempts : Metrics.counter;
  m_detail_routed : Metrics.counter;
  m_moves : Metrics.counter;  (* proposals that formed a transaction *)
  m_null_moves : Metrics.counter;  (* proposals that found no legal move *)
  m_ripped : Metrics.counter;
  m_retimed : Metrics.counter;  (* dirty nets handed to the analyzer *)
  m_accepts : Metrics.counter;
  m_rejects : Metrics.counter;
  m_total : Metrics.gauge;  (* wall seconds inside move transactions *)
}

let create () =
  let reg = Metrics.create () in
  let phase_times =
    Array.of_list
      (List.map (fun p -> Metrics.gauge reg ("pipeline.phase." ^ phase_name p ^ ".seconds")) phases)
  in
  let phase_calls =
    Array.of_list
      (List.map (fun p -> Metrics.counter reg ("pipeline.phase." ^ phase_name p ^ ".calls")) phases)
  in
  (* Batch-size buckets as plain counters (additive, so portfolio
     absorption just sums them): le<bound> per planner bound plus the
     overflow bucket. *)
  let bounds = Spr_route.Parallel.size_hist_bounds in
  let bucket_name i =
    if i < Array.length bounds then Printf.sprintf "router.par.batch_size.le%d" bounds.(i)
    else Printf.sprintf "router.par.batch_size.gt%d" bounds.(Array.length bounds - 1)
  in
  {
    reg;
    phase_times;
    phase_calls;
    counters = Spr_route.Router.fresh_counters ();
    par = Spr_route.Parallel.fresh_stats ();
    m_par_batches = Metrics.counter reg "router.par.batches";
    m_par_planned = Metrics.counter reg "router.par.planned_nets";
    m_par_conflicts = Metrics.counter reg "router.par.conflicts";
    m_par_retries = Metrics.counter reg "router.par.serial_retries";
    m_par_hist = Array.init (Array.length bounds + 1) (fun i -> Metrics.counter reg (bucket_name i));
    m_par_busy = Metrics.gauge reg "router.par.worker_busy_seconds";
    busy_probe = (fun () -> 0.0);
    m_moves = Metrics.counter reg "pipeline.moves";
    m_null_moves = Metrics.counter reg "pipeline.null_moves";
    m_accepts = Metrics.counter reg "pipeline.accepts";
    m_rejects = Metrics.counter reg "pipeline.rejects";
    m_ripped = Metrics.counter reg "pipeline.ripped_nets";
    m_retimed = Metrics.counter reg "pipeline.retimed_nets";
    m_total = Metrics.gauge reg "pipeline.total_seconds";
    m_global_attempts = Metrics.counter reg "router.global.attempts";
    m_global_routed = Metrics.counter reg "router.global.routed";
    m_detail_attempts = Metrics.counter reg "router.detail.attempts";
    m_detail_routed = Metrics.counter reg "router.detail.routed";
  }

let registry t = t.reg

(* Refresh the router-counter mirrors from the raw record the routers
   mutate; called before any registry export. *)
let sync_mirrors t =
  let c = t.counters in
  Metrics.counter_set t.m_global_attempts c.Spr_route.Router.c_global_attempts;
  Metrics.counter_set t.m_global_routed c.Spr_route.Router.c_global_routed;
  Metrics.counter_set t.m_detail_attempts c.Spr_route.Router.c_detail_attempts;
  Metrics.counter_set t.m_detail_routed c.Spr_route.Router.c_detail_routed;
  let p = t.par in
  Metrics.counter_set t.m_par_batches p.Spr_route.Parallel.s_batches;
  Metrics.counter_set t.m_par_planned p.Spr_route.Parallel.s_planned;
  Metrics.counter_set t.m_par_conflicts p.Spr_route.Parallel.s_conflicts;
  Metrics.counter_set t.m_par_retries p.Spr_route.Parallel.s_retries;
  Array.iteri
    (fun i m -> Metrics.counter_set m p.Spr_route.Parallel.s_size_hist.(i))
    t.m_par_hist;
  (* Worker-count-dependent wall time goes through a gauge, which trace
     masking zeroes — the counters above must stay bit-identical across
     [--route-workers] settings, this one need not. *)
  Metrics.gauge_set t.m_par_busy (t.busy_probe ())

let metrics_snapshot t =
  sync_mirrors t;
  Metrics.snapshot t.reg

(* Fold another profile into this one; the portfolio merges per-replica
   profiles into a fleet-wide breakdown this way. The mirrors are
   rebuilt from the merged raw record at the next export, so absorbing
   their stale registry values is harmless. *)
let absorb t other =
  Metrics.absorb t.reg other.reg;
  let c = t.counters and oc = other.counters in
  c.Spr_route.Router.c_global_attempts <-
    c.Spr_route.Router.c_global_attempts + oc.Spr_route.Router.c_global_attempts;
  c.Spr_route.Router.c_global_routed <-
    c.Spr_route.Router.c_global_routed + oc.Spr_route.Router.c_global_routed;
  c.Spr_route.Router.c_detail_attempts <-
    c.Spr_route.Router.c_detail_attempts + oc.Spr_route.Router.c_detail_attempts;
  c.Spr_route.Router.c_detail_routed <-
    c.Spr_route.Router.c_detail_routed + oc.Spr_route.Router.c_detail_routed;
  let p = t.par and op = other.par in
  p.Spr_route.Parallel.s_batches <-
    p.Spr_route.Parallel.s_batches + op.Spr_route.Parallel.s_batches;
  p.Spr_route.Parallel.s_planned <-
    p.Spr_route.Parallel.s_planned + op.Spr_route.Parallel.s_planned;
  p.Spr_route.Parallel.s_conflicts <-
    p.Spr_route.Parallel.s_conflicts + op.Spr_route.Parallel.s_conflicts;
  p.Spr_route.Parallel.s_retries <-
    p.Spr_route.Parallel.s_retries + op.Spr_route.Parallel.s_retries;
  p.Spr_route.Parallel.s_max_batch <-
    max p.Spr_route.Parallel.s_max_batch op.Spr_route.Parallel.s_max_batch;
  Array.iteri
    (fun i n ->
      p.Spr_route.Parallel.s_size_hist.(i) <- p.Spr_route.Parallel.s_size_hist.(i) + n)
    op.Spr_route.Parallel.s_size_hist;
  (* The two registries both carry the busy gauge; absorbing summed the
     other replica's last-synced value into ours, which is exactly the
     fleet-wide busy total, so fold it into our probe's baseline. *)
  let base = t.busy_probe and other_busy = Metrics.gauge_value other.m_par_busy in
  t.busy_probe <- (fun () -> base () +. other_busy);
  sync_mirrors t

let record t phase dt =
  let i = phase_index phase in
  Metrics.gauge_add t.phase_times.(i) dt;
  Metrics.incr t.phase_calls.(i)

let time t phase f =
  let t0 = Spr_util.Clock.now () in
  let r = f () in
  record t phase (Spr_util.Clock.now () -. t0);
  r

let add_total t dt = Metrics.gauge_add t.m_total dt

let counters t = t.counters

let par_stats t = t.par

let set_busy_probe t f = t.busy_probe <- f

let phase_seconds t phase = Metrics.gauge_value t.phase_times.(phase_index phase)

let phase_calls t phase = Metrics.counter_value t.phase_calls.(phase_index phase)

let total_seconds t = Metrics.gauge_value t.m_total

let phase_sum t = Array.fold_left (fun acc g -> acc +. Metrics.gauge_value g) 0.0 t.phase_times

let t_moves t = Metrics.counter_value t.m_moves

let t_null_moves t = Metrics.counter_value t.m_null_moves

let t_accepts t = Metrics.counter_value t.m_accepts

let t_rejects t = Metrics.counter_value t.m_rejects

let t_ripped_nets t = Metrics.counter_value t.m_ripped

let t_retimed_nets t = Metrics.counter_value t.m_retimed

(* Fraction of the bracketed move time the phase brackets account for;
   the remainder is inter-phase bookkeeping. 1.0 when no move ran. *)
let coverage t =
  let total = total_seconds t in
  if total <= 0.0 then 1.0 else phase_sum t /. total

(* Per-temperature deltas: capture the cumulative cells at a batch
   boundary and subtract at the next one. *)
type mark = { mark_times : float array; mark_total : float; mark_moves : int }

let mark t =
  {
    mark_times = Array.map Metrics.gauge_value t.phase_times;
    mark_total = total_seconds t;
    mark_moves = t_moves t;
  }

let since t m =
  ( Array.mapi (fun i g -> Metrics.gauge_value g -. m.mark_times.(i)) t.phase_times,
    total_seconds t -. m.mark_total,
    t_moves t - m.mark_moves )

let to_pipeline t =
  let c = t.counters in
  {
    Spr_obs.Report.pl_moves = t_moves t;
    pl_null_moves = t_null_moves t;
    pl_accepts = t_accepts t;
    pl_rejects = t_rejects t;
    pl_ripped_nets = t_ripped_nets t;
    pl_retimed_nets = t_retimed_nets t;
    pl_total_seconds = total_seconds t;
    pl_phases =
      List.map
        (fun p ->
          {
            Spr_obs.Report.ph_name = phase_name p;
            ph_seconds = phase_seconds t p;
            ph_calls = phase_calls t p;
          })
        phases;
    pl_global_attempts = c.Spr_route.Router.c_global_attempts;
    pl_global_routed = c.Spr_route.Router.c_global_routed;
    pl_detail_attempts = c.Spr_route.Router.c_detail_attempts;
    pl_detail_routed = c.Spr_route.Router.c_detail_routed;
  }

let pp ppf t =
  let c = t.counters in
  let moves = t_moves t in
  Format.fprintf ppf "move pipeline: %d moves (%d null proposals), %d accepted, %d rejected@."
    moves (t_null_moves t) (t_accepts t) (t_rejects t);
  Format.fprintf ppf "%-16s %12s %10s %12s@." "phase" "time(ms)" "calls" "ns/move";
  let per_move s = if moves = 0 then 0.0 else s *. 1e9 /. float_of_int moves in
  List.iter
    (fun p ->
      let s = phase_seconds t p in
      Format.fprintf ppf "%-16s %12.2f %10d %12.0f@." (phase_name p) (s *. 1e3)
        (phase_calls t p) (per_move s))
    phases;
  Format.fprintf ppf "%-16s %12.2f %10d %12.0f@." "total" (total_seconds t *. 1e3) moves
    (per_move (total_seconds t));
  Format.fprintf ppf "phase coverage: %.1f%% of bracketed move time@." (100.0 *. coverage t);
  Format.fprintf ppf
    "counters: ripped %d nets, global %d/%d routed/attempted, detail %d/%d, retimed %d nets@."
    (t_ripped_nets t) c.Spr_route.Router.c_global_routed c.Spr_route.Router.c_global_attempts
    c.Spr_route.Router.c_detail_routed c.Spr_route.Router.c_detail_attempts (t_retimed_nets t);
  let p = t.par in
  if p.Spr_route.Parallel.s_batches > 0 then
    Format.fprintf ppf
      "reroute batches: %d batches over %d nets (max %d), %d conflicts, %d serial retries, \
       workers busy %.2fs@."
      p.Spr_route.Parallel.s_batches p.Spr_route.Parallel.s_planned
      p.Spr_route.Parallel.s_max_batch p.Spr_route.Parallel.s_conflicts
      p.Spr_route.Parallel.s_retries (t.busy_probe ())

let note_move t = Metrics.incr t.m_moves

let note_null_move t = Metrics.incr t.m_null_moves

let note_accept t = Metrics.incr t.m_accepts

let note_reject t = Metrics.incr t.m_rejects

let add_ripped t n = Metrics.add t.m_ripped n

let add_retimed t n = Metrics.add t.m_retimed n
