(** Save and restore a complete layout — fabric parameters, placement,
    pinmaps, and every net's routing — as a line-oriented text format.

    A real layout tool needs this for incremental (ECO) flows: finish a
    long annealing run once, then reload the layout for inspection,
    re-timing, or small edits (see {!Eco}).

    Restoring replays the routing through the normal claiming paths, so a
    loaded state satisfies every {!Spr_route.Route_state.check} invariant
    or the load fails with a diagnostic. Fabrics with custom [vschemes]
    are not representable (the format records the default scheme
    parameters); such layouts round-trip only if built with defaults. *)

val to_string : Spr_route.Route_state.t -> string

val save : Spr_route.Route_state.t -> string -> unit

val of_string :
  Spr_netlist.Netlist.t -> string -> (Spr_route.Route_state.t, string) Stdlib.result
(** The netlist must be the same design the checkpoint was written from
    (checked by cell/net counts and per-net terminal counts). *)

val load : Spr_netlist.Netlist.t -> string -> (Spr_route.Route_state.t, string) Stdlib.result

(** {1 Format v2: resumable mid-run snapshots}

    Version 2 wraps a complete annealer state — current layout, best
    layout so far, schedule position, RNG stream, adaptive weights,
    dynamics recorder — behind a checksummed header, so an interrupted
    run can continue bit-identically and a torn or corrupted file is
    detected rather than trusted.

    On-disk shape: one header line
    [spr-checkpoint 2 <fnv1a64-hex> <payload-bytes>] followed by exactly
    that many payload bytes. The checksum covers the payload; a length
    short of the header's count means truncation. Floats are serialized
    as IEEE-754 bit patterns so every value round-trips exactly. *)

module V2 : sig
  val format_version : int

  type payload = {
    engine : Spr_anneal.Engine.snapshot;
    rng_state : int64;
    weights : Spr_anneal.Weights.dump;
    dyn_flags : bool array;
    dyn_samples : Dynamics.sample list;
    accepted_since_audit : int;
    memo : Spr_route.Route_state.memo;
        (** Failure-memoization stamps of the current layout. They gate
            which queued nets the retry pass attempts, so a resume
            without them drifts off the interrupted run's trajectory. *)
    best_cost : float;
    best_layout : string;
        (** v1 layout text of the best-so-far state, decoded lazily —
            only when an interrupted run must fall back to it. *)
  }

  type loaded = {
    data : payload;
    route : Spr_route.Route_state.t;
        (** The current (in-flight) layout, with [memo] already
            applied. *)
    path : string;
    seq : int;
  }

  val encode : payload -> current:Spr_route.Route_state.t -> string

  val decode :
    Spr_netlist.Netlist.t ->
    string ->
    (payload * Spr_route.Route_state.t, string) Stdlib.result
  (** Never raises on malformed input: truncation, checksum mismatch,
      bad records, and overrunning embedded blocks all return [Error]. *)

  (** {2 Run-directory rotation}

      Snapshots live in a run directory as [snap-NNNNNNNN.ckpt] with a
      monotonically increasing sequence number; writers keep the newest
      [keep] files and loaders fall back to older ones when the newest
      is damaged. Portfolio replica [k] writes
      [snap-r<k>-NNNNNNNN.ckpt] instead (pass [?replica]), so a fleet
      shares one run directory with per-replica rotation and the
      replica files never match the serial scan. *)

  val snapshot_path : ?replica:int -> string -> int -> string

  val snapshot_files : ?replica:int -> string -> (int * string) list
  (** [snapshot_files ?replica dir], newest first; empty if the
      directory is unreadable. *)

  val next_seq : ?replica:int -> string -> int

  val write :
    ?replica:int ->
    dir:string ->
    seq:int ->
    keep:int ->
    payload ->
    current:Spr_route.Route_state.t ->
    string
  (** Atomic (temp file + rename); prunes rotation entries beyond
      [keep]; returns the path written. *)

  val load_file :
    Spr_netlist.Netlist.t ->
    string ->
    (payload * Spr_route.Route_state.t, string) Stdlib.result

  val load_latest :
    ?replica:int -> Spr_netlist.Netlist.t -> dir:string -> (loaded, string) Stdlib.result
  (** Try snapshots newest-first, skipping damaged ones; [Error] lists
      every per-file failure when none loads. *)
end

(** {1 Persisted exchange rounds}

    A portfolio run with [Best_exchange] records every tripped exchange
    round as an atomic, checksummed [exch-NNNNNNNN.rec] file in the run
    directory, written before any replica acts on the round. Resuming
    a killed fleet replays these records: a replica arriving at a
    recorded round is served the recorded broadcast immediately, so the
    resumed trajectories match the uninterrupted run exactly. *)

module Exchange : sig
  val record_path : string -> int -> string
  (** [record_path dir round]. *)

  val encode : Spr_anneal.Portfolio.round_result -> string

  val decode : string -> (Spr_anneal.Portfolio.round_result, string) Stdlib.result
  (** Never raises: truncation, checksum mismatch and bad records all
      return [Error]. *)

  val write : dir:string -> Spr_anneal.Portfolio.round_result -> string
  (** Atomic; returns the path written. *)

  val load_all : dir:string -> Spr_anneal.Portfolio.round_result list
  (** Every loadable record in ascending round order; torn or corrupt
      records are skipped (the round simply re-trips live on resume). *)
end

(** {1 Persisted racing decision rounds}

    A portfolio run under the racing scheduler records every decision
    round that killed a replica as an atomic, checksummed
    [sched-NNNNNNNN.rec] file, written under the scheduler lock before
    any replica acts on the verdicts — the same crash-safety contract
    as {!Exchange}. Rounds with no kills are not written: they have no
    observable verdict, so a resumed fleet re-tripping them live is
    equivalent to replay. *)

module Sched : sig
  val record_path : string -> int -> string
  (** [record_path dir round]. *)

  val encode : Spr_anneal.Scheduler.round_record -> string

  val decode : string -> (Spr_anneal.Scheduler.round_record, string) Stdlib.result
  (** Never raises: truncation, checksum mismatch and bad records all
      return [Error]. *)

  val write : dir:string -> Spr_anneal.Scheduler.round_record -> string
  (** Atomic and durable; returns the path written. *)

  val load_all : dir:string -> Spr_anneal.Scheduler.round_record list
  (** Every loadable record in ascending round order; torn or corrupt
      records are skipped (the round re-trips live on resume). *)
end
