(** Per-phase wall-clock and counter instrumentation for the move
    pipeline.

    One {!t} accumulates over a whole annealing run; each
    {!Move_pipeline} phase brackets itself with {!time}, so the phase
    times sum to (almost exactly) the bracketed move total — the small
    remainder is inter-phase bookkeeping. {!mark}/{!since} give
    per-temperature deltas for the dynamics trace. Timing uses the
    monotonic-guarded {!Spr_util.Clock}, costing two clock reads per
    phase per move.

    Since the observability layer landed this is a facade over a
    {!Spr_obs.Metrics} registry — every tally and phase clock is a
    registry cell under a [pipeline.*] / [router.*] name, updated at
    the same one-store cost as the mutable record it replaced, and
    {!metrics_snapshot} exports the whole breakdown for traces and
    reports. *)

type phase = Propose | Rip_up | Global | Detail | Retime | Decide

val phases : phase list
(** Pipeline order. *)

val n_phases : int

val phase_index : phase -> int
(** Position in {!phases}; indexes the arrays produced by {!since}. *)

val phase_name : phase -> string

type t

val create : unit -> t

val absorb : t -> t -> unit
(** [absorb t other] adds every tally, time, and router counter of
    [other] into [t] (leaving [other] untouched). The portfolio runner
    merges per-replica profiles into one fleet-wide breakdown with
    this. *)

val record : t -> phase -> float -> unit
(** Add [dt] seconds (and one call) to a phase. *)

val time : t -> phase -> (unit -> 'a) -> 'a
(** Run the thunk inside a phase bracket. *)

val add_total : t -> float -> unit
(** Add to the whole-move wall clock (the denominator of
    {!coverage}). *)

val counters : t -> Spr_route.Router.counters
(** The router attempt/success tallies; thread this record through
    {!Spr_route.Router.reroute_global}/[reroute_detail]. *)

val par_stats : t -> Spr_route.Parallel.stats
(** The batched-reroute tallies; thread this record through
    {!Spr_route.Parallel.reroute_global}/[reroute_detail]. Mirrored into
    the registry as [router.par.*] counters at snapshot time — every one
    of them is a function of the routing trajectory alone, so traces
    stay bit-identical across [--route-workers] settings. *)

val set_busy_probe : t -> (unit -> float) -> unit
(** Install the worker-busy-seconds source (the route pool's
    {!Spr_route.Parallel.Pool.busy_seconds}), exported as the
    [router.par.worker_busy_seconds] gauge — a gauge precisely because
    it {e does} vary with the worker count and trace masking zeroes
    gauges. *)

val phase_seconds : t -> phase -> float

val phase_calls : t -> phase -> int

val total_seconds : t -> float

val phase_sum : t -> float

val coverage : t -> float
(** [phase_sum / total]: the fraction of bracketed move time the phase
    brackets account for. [1.0] before any move. *)

type mark

val mark : t -> mark

val since : t -> mark -> float array * float * int
(** [(per-phase seconds, total seconds, moves)] accumulated since the
    mark; the array is indexed by {!phase_index}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable per-phase breakdown with counters. *)

(** {1 Observability exports} *)

val registry : t -> Spr_obs.Metrics.t
(** The backing registry — for registering extra run-level metrics
    (e.g. the annealer's acceptance histogram) next to the pipeline's
    own, so one snapshot carries everything. *)

val metrics_snapshot : t -> (string * Spr_obs.Metrics.value) list
(** Registry snapshot, with the router attempt/success mirrors
    refreshed from the raw {!counters} record first. *)

val to_pipeline : t -> Spr_obs.Report.pipeline
(** The move-pipeline summary block of the unified run report. *)

(** {1 Mutable tallies}

    Updated directly by the pipeline. *)

val t_moves : t -> int

val t_null_moves : t -> int

val t_accepts : t -> int

val t_rejects : t -> int

val t_ripped_nets : t -> int

val t_retimed_nets : t -> int

val note_move : t -> unit

val note_null_move : t -> unit

val note_accept : t -> unit

val note_reject : t -> unit

val add_ripped : t -> int -> unit

val add_retimed : t -> int -> unit
