(** Per-temperature layout dynamics, the instrumentation behind the
    paper's Figure 6.

    At each temperature we record the fraction of cells perturbed (moved
    by an accepted move), the fraction of nets globally unrouted, and the
    fraction of nets unrouted altogether; the difference of the last two
    is the fraction globally routed but not detail routed. *)

type sample = {
  dyn_temp_index : int;
  dyn_temperature : float;
  pct_cells_perturbed : float;
  pct_nets_globally_unrouted : float;
  pct_nets_unrouted : float;
  acceptance : float;
  cost : float;
  critical_delay : float;
  phase_seconds : float array;
      (** Wall seconds spent in each move-pipeline phase during this
          temperature, indexed by {!Profile.phase_index}; [[||]] for
          samples recorded without profiling (e.g. decoded from a legacy
          checkpoint). *)
}

type t

val create : n_cells:int -> t

val note_accepted_cells : t -> int list -> unit
(** Mark cells perturbed by an accepted move. *)

val flush :
  ?phase_seconds:float array ->
  t ->
  temp_index:int ->
  temperature:float ->
  g_frac:float ->
  d_frac:float ->
  acceptance:float ->
  cost:float ->
  critical_delay:float ->
  unit
(** Close the current temperature: append a sample and reset the
    perturbation marks. [phase_seconds] (default [[||]]) is the
    per-phase time spent inside move transactions at this temperature,
    from {!Profile.since}. *)

val samples : t -> sample list
(** In temperature order. *)

val last_sample : t -> sample option
(** The most recently flushed sample, without walking the series. *)

val perturbed_flags : t -> bool array
(** Copy of the per-cell perturbation marks accumulated since the last
    {!flush} — the mid-temperature state a resumable checkpoint must
    carry. *)

val restore : n_cells:int -> flags:bool array -> samples:sample list -> t
(** Recorder continuing exactly from a {!perturbed_flags} /
    {!samples} capture. Raises [Invalid_argument] if [flags] is not
    [n_cells] long. *)

val to_row : sample -> Spr_obs.Report.dyn_row
(** The sample as a report dynamics row (phase columns named with
    {!Profile.phase_name}). *)

val of_row : Spr_obs.Report.dyn_row -> sample
(** Inverse of {!to_row}; rows with a foreign phase-column set decode
    with empty [phase_seconds]. *)

val rows : t -> Spr_obs.Report.dyn_row list
(** [samples] as report rows, in temperature order. *)

val pp_series : Format.formatter -> sample list -> unit
(** The Figure 6 series as an aligned text table. *)

val pp_phase_series : Format.formatter -> sample list -> unit
(** Per-temperature per-phase move-pipeline times (milliseconds), one
    column per {!Profile.phase}; samples without phase data are
    skipped. *)
