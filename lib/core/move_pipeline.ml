module P = Spr_layout.Placement
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Parallel = Spr_route.Parallel
module Sta = Spr_timing.Sta
module J = Spr_util.Journal
module Clock = Spr_util.Clock

type t = {
  router : Router.config;
  place : P.t;
  rs : Rs.t;
  sta : Sta.t;
  weights : Spr_anneal.Weights.t;
  journal : J.t;
  profile : Profile.t;
  par : Parallel.t;  (* batched reroute dispatcher over [rs] *)
  pinmap_move_prob : float;
  enable_pinmap_moves : bool;
  max_swap_tries : int;
  mutable last_cells : int list;
}

let create ?profile ?route_pool ?(route_grain = 8) ~router ~pinmap_move_prob
    ~enable_pinmap_moves ~max_swap_tries ~place ~rs ~sta ~weights ~journal () =
  (* The caller hands over a routing state whose STA is canonical, so
     whatever the initial routing marked dirty is already reflected in
     the timing picture. *)
  Rs.clear_dirty rs;
  {
    router;
    place;
    rs;
    sta;
    weights;
    journal;
    profile = (match profile with Some p -> p | None -> Profile.create ());
    par = Parallel.create ?pool:route_pool ~grain:route_grain rs;
    pinmap_move_prob;
    enable_pinmap_moves;
    max_swap_tries;
    last_cells = [];
  }

let profile t = t.profile

let route_pool t = Parallel.pool t.par

let last_cells t = t.last_cells

(* --- phase 1: propose ------------------------------------------------
   Pick a perturbation and apply the placement delta (journaled). The
   perturbed cells come back so rip-up knows what to invalidate; [None]
   when no legal move was found. *)

let propose_pinmap t rng =
  let nl = P.netlist t.place in
  let n = Spr_netlist.Netlist.n_cells nl in
  let cell = Spr_util.Rng.int rng n in
  let size = P.palette_size t.place cell in
  if size < 2 then None
  else begin
    let old_idx = P.pinmap_index t.place cell in
    let shift = 1 + Spr_util.Rng.int rng (size - 1) in
    let idx = (old_idx + shift) mod size in
    P.set_pinmap t.place ~cell ~index:idx;
    J.record t.journal (fun () -> P.set_pinmap t.place ~cell ~index:old_idx);
    Some [ cell ]
  end

let propose_swap t rng =
  let rec find tries =
    if tries = 0 then None
    else begin
      let a = P.random_occupied_slot t.place rng in
      let b = P.random_slot t.place rng in
      if a <> b && P.swap_legal t.place a b then Some (a, b) else find (tries - 1)
    end
  in
  match find t.max_swap_tries with
  | None -> None
  | Some (a, b) ->
    let occupants = List.filter_map (fun slot -> P.cell_at t.place slot) [ a; b ] in
    P.swap_slots t.place a b;
    J.record t.journal (fun () -> P.swap_slots t.place a b);
    Some occupants

let propose_delta t rng =
  if t.enable_pinmap_moves && Spr_util.Rng.float rng 1.0 < t.pinmap_move_prob then
    propose_pinmap t rng
  else propose_swap t rng

(* --- phases 2-5: rip-up, reroute (global, detail), retime ------------ *)

let rip_up t cells =
  let ripped =
    List.sort_uniq compare
      (List.concat_map (fun cell -> Router.rip_up_cell t.rs t.journal cell) cells)
  in
  Profile.add_ripped t.profile (List.length ripped)

let retime t =
  let dirty = Rs.dirty_nets t.rs in
  Rs.clear_dirty t.rs;
  Profile.add_retimed t.profile (List.length dirty);
  Sta.invalidate t.sta t.journal dirty;
  Spr_anneal.Weights.observe t.weights ~delay:(Sta.critical_delay t.sta)

(* One full transaction up to the decision: every phase is bracketed, and
   the whole span is added to the move total so the per-phase times can
   be audited against it. *)
let propose t rng =
  assert (J.depth t.journal = 0);
  t.last_cells <- [];
  let t0 = Clock.now () in
  let cells = Profile.time t.profile Profile.Propose (fun () -> propose_delta t rng) in
  let formed =
    match cells with
    | None ->
      Profile.note_null_move t.profile;
      false
    | Some cells ->
      Profile.note_move t.profile;
      t.last_cells <- cells;
      Profile.time t.profile Profile.Rip_up (fun () -> rip_up t cells);
      let counters = Profile.counters t.profile in
      let stats = Profile.par_stats t.profile in
      (* Both reroute phases go through the batch planner whatever the
         pool size — that keeps the router.par.* trace counters (and of
         course the routing itself) bit-identical across worker
         counts. *)
      ignore
        (Profile.time t.profile Profile.Global (fun () ->
             Parallel.reroute_global ~config:t.router ~counters ~stats t.par t.journal)
          : int list);
      ignore
        (Profile.time t.profile Profile.Detail (fun () ->
             Parallel.reroute_detail ~config:t.router ~counters ~stats t.par t.journal)
          : int list);
      Profile.time t.profile Profile.Retime (fun () -> retime t);
      true
  in
  Profile.add_total t.profile (Clock.now () -. t0);
  formed

(* --- phase 6: decide -------------------------------------------------- *)

let decide t f =
  let t0 = Clock.now () in
  f ();
  let dt = Clock.now () -. t0 in
  Profile.record t.profile Profile.Decide dt;
  Profile.add_total t.profile dt

let accept t =
  Profile.note_accept t.profile;
  decide t (fun () -> J.commit t.journal)

let reject t =
  Profile.note_reject t.profile;
  decide t (fun () -> J.rollback t.journal)
