(** The one vocabulary for how a run ends.

    Every entry point in the core layer — serial {!Tool.run}, the
    portfolio runner, and the CLI on top of them — reports success,
    early stops, and failures with the types below, so callers match
    one error shape instead of three ad-hoc ones. {!Tool} re-exports
    the constructors via type equations; [Outcome] is the defining
    home. *)

type stop_reason =
  | Time_budget  (** wall-clock budget exhausted *)
  | Move_budget  (** cumulative move budget exhausted *)
  | Interrupt  (** signal, {!Tool.request_interrupt}, or fault injection *)

type status =
  | Completed
  | Interrupted of stop_reason
      (** The run stopped early with the best-so-far layout; a run
          directory (if configured) holds a resumable checkpoint. *)

type error =
  | Invalid_config of string
      (** The configuration failed the smart constructor's validation
          (e.g. a move probability outside [0, 1]). *)
  | Invalid_design of string
      (** The netlist does not fit the fabric or has combinational
          cycles. *)
  | Audit_failed of Spr_check.Finding.t list
      (** Validation caught an invariant violation mid-run. *)
  | Resume_failed of string
      (** The snapshot does not match the design or could not be
          loaded. *)

exception Error of error
(** Raised by the [_exn] entry points; aliased as [Tool.Tool_error]. *)

val stop_reason_to_string : stop_reason -> string

val status_to_string : status -> string
(** ["completed"] or ["interrupted (<reason>)"]. *)

val error_to_string : error -> string

val get : ('a, error) result -> 'a
(** [Ok x] is [x]; [Error e] raises {!Error}. *)
