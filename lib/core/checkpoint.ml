module Rs = Spr_route.Route_state
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module I = Spr_util.Interval

let format_version = 1

let to_string st =
  let arch = Rs.arch st in
  let place = Rs.place st in
  let nl = Rs.netlist st in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "spr-checkpoint %d\n" format_version;
  add "arch %d %d %d %d %s\n" arch.Arch.rows arch.Arch.cols arch.Arch.tracks arch.Arch.vtracks
    (Spr_arch.Segmentation.scheme_to_string arch.Arch.hscheme);
  add "design %d %d\n" (Nl.n_cells nl) (Nl.n_nets nl);
  for c = 0 to Nl.n_cells nl - 1 do
    let s = P.slot_of place c in
    add "cell %d %d %d %d\n" c s.P.row s.P.col (P.pinmap_index place c)
  done;
  for net = 0 to Nl.n_nets nl - 1 do
    (match Rs.global_route st net with
    | None -> ()
    | Some vr ->
      add "vroute %d %d %d %d %d\n" net vr.Rs.v_col vr.Rs.v_vtrack vr.Rs.v_slo vr.Rs.v_shi);
    (* Oldest claim first: restore prepends as it replays (the normal
       claiming path), so emitting in reverse rebuilds the live list
       order exactly — consumers that fold over a net's hroutes see
       identical iteration order before and after a round-trip. *)
    List.iter
      (fun (ch, (hr : Rs.hroute)) ->
        add "hroute %d %d %d %d %d\n" net ch hr.Rs.h_track hr.Rs.h_slo hr.Rs.h_shi)
      (List.rev (Rs.h_routes st net))
  done;
  add "end\n";
  Buffer.contents buf

(* Atomic: a crash mid-save can never leave a torn checkpoint behind. *)
let save st path = Spr_util.Persist.atomic_write path (to_string st)

type parsed = {
  mutable p_arch : Arch.t option;
  mutable p_counts : (int * int) option;
  mutable p_cells : (int * int * int * int) list;
  mutable p_vroutes : (int * int * int * int * int) list;
  mutable p_hroutes : (int * int * int * int * int) list;
  mutable p_done : bool;
}

let parse text =
  let p =
    { p_arch = None; p_counts = None; p_cells = []; p_vroutes = []; p_hroutes = []; p_done = false }
  in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      if !error = None && not p.p_done then begin
        let words = String.split_on_char ' ' (String.trim line) in
        match words with
        | [ "" ] | [] -> ()
        | "spr-checkpoint" :: v :: _ ->
          if int_of_string_opt v <> Some format_version then
            fail "line %d: unsupported checkpoint version %s (this loader reads version %d)"
              (lineno + 1) v format_version
        | [ "arch"; rows; cols; tracks; vtracks; scheme ] -> (
          match
            ( int_of_string_opt rows,
              int_of_string_opt cols,
              int_of_string_opt tracks,
              int_of_string_opt vtracks,
              Spr_arch.Segmentation.scheme_of_string scheme )
          with
          | Some rows, Some cols, Some tracks, Some vtracks, Some hscheme ->
            p.p_arch <- Some (Arch.create ~rows ~cols ~tracks ~hscheme ~vtracks ())
          | _ -> fail "line %d: bad arch line" (lineno + 1))
        | [ "design"; cells; nets ] -> (
          match int_of_string_opt cells, int_of_string_opt nets with
          | Some c, Some n -> p.p_counts <- Some (c, n)
          | _ -> fail "line %d: bad design line" (lineno + 1))
        | [ "cell"; a; b; c; d ] -> (
          match
            int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d
          with
          | Some a, Some b, Some c, Some d -> p.p_cells <- (a, b, c, d) :: p.p_cells
          | _ -> fail "line %d: bad cell line" (lineno + 1))
        | [ "vroute"; a; b; c; d; e ] -> (
          match
            ( int_of_string_opt a,
              int_of_string_opt b,
              int_of_string_opt c,
              int_of_string_opt d,
              int_of_string_opt e )
          with
          | Some a, Some b, Some c, Some d, Some e ->
            p.p_vroutes <- (a, b, c, d, e) :: p.p_vroutes
          | _ -> fail "line %d: bad vroute line" (lineno + 1))
        | [ "hroute"; a; b; c; d; e ] -> (
          match
            ( int_of_string_opt a,
              int_of_string_opt b,
              int_of_string_opt c,
              int_of_string_opt d,
              int_of_string_opt e )
          with
          | Some a, Some b, Some c, Some d, Some e ->
            p.p_hroutes <- (a, b, c, d, e) :: p.p_hroutes
          | _ -> fail "line %d: bad hroute line" (lineno + 1))
        | [ "end" ] -> p.p_done <- true
        | w :: _ -> fail "line %d: unknown record %s" (lineno + 1) w
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None -> if p.p_done then Ok p else Error "truncated checkpoint (no end record)"

(* Replay the routing through the normal claiming path so every
   Route_state invariant is re-established (or the load fails). *)
let restore_routes st p =
  let arch = Rs.arch st in
  let j = Spr_util.Journal.create () in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  (* Global routes first: they establish the per-channel demands. *)
  List.iter
    (fun (net, col, vtrack, slo, shi) ->
      if !error = None then begin
        if not (Rs.needs_global st net) then fail "net %d: checkpoint spine but none needed" net
        else if not (Rs.vrun_free st ~col ~vtrack ~slo ~shi) then
          fail "net %d: spine segments already taken" net
        else begin
          match Rs.global_route st net with
          | Some _ -> fail "net %d: duplicate vroute record" net
          | None ->
            let segs = Arch.vsegments arch ~col ~vtrack in
            if slo < 0 || shi >= Array.length segs || slo > shi then
              fail "net %d: vroute segment range invalid" net
            else begin
              (* recompute the spine span from the claimed segments *)
              let place = Rs.place st in
              match P.net_channel_span place net with
              | None -> fail "net %d: no pins" net
              | Some (clo, chi) ->
                let covered = I.make segs.(slo).I.lo segs.(shi).I.hi in
                if not (I.covers covered (I.make clo chi)) then
                  fail "net %d: checkpoint spine does not cover the channel span" net
                else
                  Rs.claim_global st j net
                    { Rs.v_col = col; v_vtrack = vtrack; v_slo = slo; v_shi = shi;
                      v_span = I.make clo chi }
            end
        end
      end)
    (List.rev p.p_vroutes);
  (* Detailed routes: spans come from the freshly computed demands. *)
  List.iter
    (fun (net, channel, track, slo, shi) ->
      if !error = None then begin
        match List.assoc_opt channel (Rs.h_demands st net) with
        | None -> fail "net %d: checkpoint hroute in undemanded channel %d" net channel
        | Some span ->
          let segs = Arch.hsegments arch ~channel ~track in
          if slo < 0 || shi >= Array.length segs || slo > shi then
            fail "net %d: hroute segment range invalid" net
          else begin
            let covered = I.make segs.(slo).I.lo segs.(shi).I.hi in
            if not (I.covers covered span) then
              fail "net %d: checkpoint hroute does not cover the span in channel %d" net channel
            else if not (Rs.hrun_free st ~channel ~track ~slo ~shi) then
              fail "net %d: hroute segments already taken" net
            else
              Rs.claim_detail st j net
                { Rs.h_channel = channel; h_track = track; h_slo = slo; h_shi = shi;
                  h_span = span }
          end
      end)
    (List.rev p.p_hroutes);
  match !error with
  | Some e ->
    Spr_util.Journal.rollback j;
    Error e
  | None ->
    Spr_util.Journal.commit j;
    Ok ()

let of_string nl text =
  match parse text with
  | Error e -> Error e
  | Ok p -> (
    match p.p_arch, p.p_counts with
    | None, _ -> Error "checkpoint has no arch record"
    | _, None -> Error "checkpoint has no design record"
    | Some arch, Some (cells, nets) ->
      if cells <> Nl.n_cells nl || nets <> Nl.n_nets nl then
        Error
          (Printf.sprintf "design mismatch: checkpoint %d cells/%d nets, netlist %d/%d" cells
             nets (Nl.n_cells nl) (Nl.n_nets nl))
      else begin
        let slots = Array.make (Nl.n_cells nl) { P.row = -1; col = -1 } in
        let pinmaps = Array.make (Nl.n_cells nl) 0 in
        let bad = ref None in
        List.iter
          (fun (c, row, col, pm) ->
            if c < 0 || c >= Nl.n_cells nl then bad := Some (Printf.sprintf "cell id %d" c)
            else begin
              slots.(c) <- { P.row; col };
              pinmaps.(c) <- pm
            end)
          p.p_cells;
        match !bad with
        | Some e -> Error ("bad cell record: " ^ e)
        | None -> (
          if Array.exists (fun s -> s.P.row < 0) slots then
            Error "checkpoint is missing cell records"
          else
            match P.create_from arch nl ~slots ~pinmaps with
            | Error e -> Error e
            | Ok place -> (
              let st = Rs.create place in
              match restore_routes st p with
              | Error e -> Error e
              | Ok () -> (
                match Rs.check st with
                | Ok () -> Ok st
                | Error e -> Error ("restored state fails validation: " ^ e))))
      end)

let load nl path =
  match Spr_util.Persist.read_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok text -> of_string nl text

(* --- Checkpoint format v2: complete mid-run annealer state --- *)

module V2 = struct
  module Pe = Spr_util.Persist
  module E = Spr_anneal.Engine
  module W = Spr_anneal.Weights
  module St = Spr_util.Stats

  let format_version = 2

  type payload = {
    engine : E.snapshot;
    rng_state : int64;
    weights : W.dump;
    dyn_flags : bool array;
    dyn_samples : Dynamics.sample list;
    accepted_since_audit : int;
    memo : Rs.memo;
    best_cost : float;
    best_layout : string;
  }

  type loaded = { data : payload; route : Rs.t; path : string; seq : int }

  let f2h = Pe.float_to_hex

  let stats_line tag (d : St.dump) =
    Printf.sprintf "stats %s %d %s %s %s %s" tag d.St.d_n (f2h d.St.d_mean) (f2h d.St.d_m2)
      (f2h d.St.d_min) (f2h d.St.d_max)

  let ints_line tag a =
    String.concat " "
      (tag :: string_of_int (Array.length a) :: (Array.to_list a |> List.map string_of_int))

  let ints2_line tag m =
    let rows = Array.length m in
    let cols = if rows = 0 then 0 else Array.length m.(0) in
    String.concat " "
      (tag :: string_of_int rows :: string_of_int cols
      :: (Array.to_list m |> List.concat_map (fun row -> Array.to_list row |> List.map string_of_int)))

  let encode_payload p ~current =
    let buf = Buffer.create 8192 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let e = p.engine in
    let c = e.E.s_config in
    add "config %d %d %s %s %s %s %s %s %d %d %d\n" c.E.moves_per_temp c.E.warmup_moves
      (f2h c.E.initial_acceptance) (f2h c.E.lambda) (f2h c.E.min_alpha) (f2h c.E.max_alpha)
      (f2h c.E.stop_acceptance) (f2h c.E.stop_cost_tolerance) c.E.stop_patience
      c.E.max_temperatures c.E.quench_temperatures;
    let phase_tag, quench_idx =
      match e.E.s_phase with E.Warmup -> ("w", 0) | E.Cool -> ("c", 0) | E.Quench q -> ("q", q)
    in
    add "engine %s %d %s %d %d %d %s %d %d %d %d %d %s\n" phase_tag quench_idx
      (f2h e.E.s_temperature) e.E.s_temp_index e.E.s_last_index e.E.s_stagnant
      (f2h e.E.s_prev_mean) e.E.s_batch_done e.E.s_batch_attempted e.E.s_batch_accepted
      e.E.s_total_moves e.E.s_total_accepted (f2h e.E.s_initial_cost);
    add "%s\n" (stats_line "batch" e.E.s_batch_samples);
    add "%s\n" (stats_line "uphill" e.E.s_uphill);
    add "rng %s\n" (Pe.int64_to_hex p.rng_state);
    add "weights %s %s %s %s\n" (f2h p.weights.W.w_g_per_net) (f2h p.weights.W.w_d_per_net)
      (f2h p.weights.W.w_t_emphasis) (f2h p.weights.W.w_t_base);
    add "%s\n" (stats_line "weights" p.weights.W.w_samples);
    add "session %d\n" p.accepted_since_audit;
    (* Failure-memoization stamps: they never change which routes are
       legal, but they gate which queued nets the retry pass attempts,
       so a resume without them picks different candidates and drifts
       off the interrupted run's trajectory. *)
    add "%s\n" (ints_line "gstamp" p.memo.Rs.m_g_stamp);
    add "%s\n" (ints2_line "dstamp" p.memo.Rs.m_d_stamp);
    add "%s\n" (ints2_line "hepoch" p.memo.Rs.m_h_epoch);
    add "%s\n" (ints_line "vepoch" p.memo.Rs.m_v_epoch);
    add "dynflags %s\n"
      (String.init (Array.length p.dyn_flags) (fun i -> if p.dyn_flags.(i) then '1' else '0'));
    add "dynsamples %d\n" (List.length p.dyn_samples);
    List.iter
      (fun (s : Dynamics.sample) ->
        (* Profiled samples append a count plus that many per-phase hex
           floats; unprofiled samples keep the legacy 8-field shape, so
           pre-profiling checkpoints re-encode byte-identically. *)
        let phases =
          match Array.to_list s.Dynamics.phase_seconds with
          | [] -> ""
          | ps ->
            Printf.sprintf " %d %s" (List.length ps) (String.concat " " (List.map f2h ps))
        in
        add "dynsample %d %s %s %s %s %s %s %s%s\n" s.Dynamics.dyn_temp_index
          (f2h s.Dynamics.dyn_temperature) (f2h s.Dynamics.pct_cells_perturbed)
          (f2h s.Dynamics.pct_nets_globally_unrouted) (f2h s.Dynamics.pct_nets_unrouted)
          (f2h s.Dynamics.acceptance) (f2h s.Dynamics.cost) (f2h s.Dynamics.critical_delay)
          phases)
      p.dyn_samples;
    add "best %s\n" (f2h p.best_cost);
    add "layout best %d\n" (String.length p.best_layout);
    Buffer.add_string buf p.best_layout;
    let current_text = to_string current in
    add "layout current %d\n" (String.length current_text);
    Buffer.add_string buf current_text;
    Buffer.contents buf

  let encode p ~current =
    let payload = encode_payload p ~current in
    Printf.sprintf "spr-checkpoint %d %s %d\n%s" format_version (Pe.checksum_hex payload)
      (String.length payload) payload

  (* Sequential cursor over the payload; every reader returns [Error]
     with a position rather than raising. *)
  type cursor = { text : string; mutable pos : int }

  let next_line cur =
    if cur.pos >= String.length cur.text then Error "unexpected end of payload"
    else begin
      match String.index_from_opt cur.text cur.pos '\n' with
      | None ->
        let line = String.sub cur.text cur.pos (String.length cur.text - cur.pos) in
        cur.pos <- String.length cur.text;
        Ok line
      | Some i ->
        let line = String.sub cur.text cur.pos (i - cur.pos) in
        cur.pos <- i + 1;
        Ok line
    end

  let take_bytes cur n =
    if n < 0 || cur.pos + n > String.length cur.text then Error "embedded block overruns payload"
    else begin
      let s = String.sub cur.text cur.pos n in
      cur.pos <- cur.pos + n;
      Ok s
    end

  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

  let words line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

  let int_ s = match int_of_string_opt s with Some i -> Ok i | None -> Error ("bad int " ^ s)

  let float_ s =
    match Pe.float_of_hex s with Some f -> Ok f | None -> Error ("bad float bits " ^ s)

  let expect_tag tag line f =
    match words line with
    | t :: rest when t = tag -> f rest
    | _ -> Error (Printf.sprintf "expected %s record, got %S" tag line)

  let parse_stats tag cur =
    let* line = next_line cur in
    expect_tag "stats" line (function
      | [ t; n; mean; m2; min_v; max_v ] when t = tag ->
        let* n = int_ n in
        let* d_mean = float_ mean in
        let* d_m2 = float_ m2 in
        let* d_min = float_ min_v in
        let* d_max = float_ max_v in
        Ok { St.d_n = n; d_mean; d_m2; d_min; d_max }
      | _ -> Error (Printf.sprintf "bad stats %s record" tag))

  let ints_of rest =
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | s :: tl ->
        let* i = int_ s in
        go (i :: acc) tl
    in
    go [] rest

  let parse_ints tag cur =
    let* line = next_line cur in
    expect_tag tag line (function
      | n :: rest ->
        let* n = int_ n in
        let* a = ints_of rest in
        if Array.length a <> n then Error (Printf.sprintf "bad %s record: length mismatch" tag)
        else Ok a
      | [] -> Error (Printf.sprintf "bad %s record" tag))

  let parse_ints2 tag cur =
    let* line = next_line cur in
    expect_tag tag line (function
      | rows :: cols :: rest ->
        let* rows = int_ rows in
        let* cols = int_ cols in
        let* flat = ints_of rest in
        if rows < 0 || cols < 0 || Array.length flat <> rows * cols then
          Error (Printf.sprintf "bad %s record: shape mismatch" tag)
        else Ok (Array.init rows (fun r -> Array.sub flat (r * cols) cols))
      | _ -> Error (Printf.sprintf "bad %s record" tag))

  let parse_layout tag cur =
    let* line = next_line cur in
    expect_tag "layout" line (function
      | [ t; len ] when t = tag ->
        let* len = int_ len in
        take_bytes cur len
      | _ -> Error (Printf.sprintf "bad layout %s record" tag))

  let decode_payload nl payload =
    let cur = { text = payload; pos = 0 } in
    let* config_line = next_line cur in
    let* config =
      expect_tag "config" config_line (function
        | [ mpt; wm; ia; la; mina; maxa; sa; sct; sp; mt; qt ] ->
          let* moves_per_temp = int_ mpt in
          let* warmup_moves = int_ wm in
          let* initial_acceptance = float_ ia in
          let* lambda = float_ la in
          let* min_alpha = float_ mina in
          let* max_alpha = float_ maxa in
          let* stop_acceptance = float_ sa in
          let* stop_cost_tolerance = float_ sct in
          let* stop_patience = int_ sp in
          let* max_temperatures = int_ mt in
          let* quench_temperatures = int_ qt in
          Ok
            {
              E.moves_per_temp;
              warmup_moves;
              initial_acceptance;
              lambda;
              min_alpha;
              max_alpha;
              stop_acceptance;
              stop_cost_tolerance;
              stop_patience;
              max_temperatures;
              quench_temperatures;
            }
        | _ -> Error "bad config record")
    in
    let* engine_line = next_line cur in
    let* engine0 =
      expect_tag "engine" engine_line (function
        | [ ph; q; temp; ti; li; stag; pm; bd; ba; bacc; tm; ta; ic ] ->
          let* q = int_ q in
          let* s_phase =
            match ph with
            | "w" -> Ok E.Warmup
            | "c" -> Ok E.Cool
            | "q" -> Ok (E.Quench q)
            | other -> Error ("unknown engine phase " ^ other)
          in
          let* s_temperature = float_ temp in
          let* s_temp_index = int_ ti in
          let* s_last_index = int_ li in
          let* s_stagnant = int_ stag in
          let* s_prev_mean = float_ pm in
          let* s_batch_done = int_ bd in
          let* s_batch_attempted = int_ ba in
          let* s_batch_accepted = int_ bacc in
          let* s_total_moves = int_ tm in
          let* s_total_accepted = int_ ta in
          let* s_initial_cost = float_ ic in
          Ok
            (fun s_batch_samples s_uphill ->
              {
                E.s_config = config;
                s_phase;
                s_temperature;
                s_temp_index;
                s_last_index;
                s_stagnant;
                s_prev_mean;
                s_batch_done;
                s_batch_attempted;
                s_batch_accepted;
                s_batch_samples;
                s_uphill;
                s_total_moves;
                s_total_accepted;
                s_initial_cost;
              })
        | _ -> Error "bad engine record")
    in
    let* batch_samples = parse_stats "batch" cur in
    let* uphill = parse_stats "uphill" cur in
    let engine = engine0 batch_samples uphill in
    let* rng_line = next_line cur in
    let* rng_state =
      expect_tag "rng" rng_line (function
        | [ hex ] -> (
          match Pe.int64_of_hex hex with
          | Some s -> Ok s
          | None -> Error ("bad rng state " ^ hex))
        | _ -> Error "bad rng record")
    in
    let* weights_line = next_line cur in
    let* weights0 =
      expect_tag "weights" weights_line (function
        | [ g; d; e; base ] ->
          let* w_g_per_net = float_ g in
          let* w_d_per_net = float_ d in
          let* w_t_emphasis = float_ e in
          let* w_t_base = float_ base in
          Ok (fun w_samples -> { W.w_g_per_net; w_d_per_net; w_t_emphasis; w_t_base; w_samples })
        | _ -> Error "bad weights record")
    in
    let* weights_samples = parse_stats "weights" cur in
    let weights = weights0 weights_samples in
    let* session_line = next_line cur in
    let* accepted_since_audit =
      expect_tag "session" session_line (function
        | [ n ] -> int_ n
        | _ -> Error "bad session record")
    in
    let* m_g_stamp = parse_ints "gstamp" cur in
    let* m_d_stamp = parse_ints2 "dstamp" cur in
    let* m_h_epoch = parse_ints2 "hepoch" cur in
    let* m_v_epoch = parse_ints "vepoch" cur in
    let memo = { Rs.m_g_stamp; m_d_stamp; m_h_epoch; m_v_epoch } in
    let* flags_line = next_line cur in
    let* dyn_flags =
      expect_tag "dynflags" flags_line (function
        | [] -> Ok [||]  (* zero cells *)
        | [ bits ] ->
          if String.for_all (fun c -> c = '0' || c = '1') bits then
            Ok (Array.init (String.length bits) (fun i -> bits.[i] = '1'))
          else Error "bad dynflags bits"
        | _ -> Error "bad dynflags record")
    in
    let* count_line = next_line cur in
    let* n_samples =
      expect_tag "dynsamples" count_line (function
        | [ n ] -> int_ n
        | _ -> Error "bad dynsamples record")
    in
    let rec read_samples k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* line = next_line cur in
        let* s =
          expect_tag "dynsample" line (function
            | ti :: temp :: pc :: pg :: pu :: a :: c :: cd :: rest ->
              let* dyn_temp_index = int_ ti in
              let* dyn_temperature = float_ temp in
              let* pct_cells_perturbed = float_ pc in
              let* pct_nets_globally_unrouted = float_ pg in
              let* pct_nets_unrouted = float_ pu in
              let* acceptance = float_ a in
              let* cost = float_ c in
              let* critical_delay = float_ cd in
              (* Legacy 8-field lines carry no phase data; extended lines
                 append a count then that many hex floats. *)
              let* phase_seconds =
                match rest with
                | [] -> Ok [||]
                | n :: vals ->
                  let* n = int_ n in
                  if List.length vals <> n then Error "bad dynsample phase count"
                  else begin
                    let arr = Array.make n 0.0 in
                    let rec fill i = function
                      | [] -> Ok arr
                      | v :: tl ->
                        let* f = float_ v in
                        arr.(i) <- f;
                        fill (i + 1) tl
                    in
                    fill 0 vals
                  end
              in
              Ok
                {
                  Dynamics.dyn_temp_index;
                  dyn_temperature;
                  pct_cells_perturbed;
                  pct_nets_globally_unrouted;
                  pct_nets_unrouted;
                  acceptance;
                  cost;
                  critical_delay;
                  phase_seconds;
                }
            | _ -> Error "bad dynsample record")
        in
        read_samples (k - 1) (s :: acc)
    in
    let* dyn_samples = read_samples n_samples [] in
    let* best_line = next_line cur in
    let* best_cost =
      expect_tag "best" best_line (function [ c ] -> float_ c | _ -> Error "bad best record")
    in
    let* best_layout = parse_layout "best" cur in
    let* current_text = parse_layout "current" cur in
    let* route =
      match of_string nl current_text with
      | Ok rs -> Ok rs
      | Error e -> Error ("embedded current layout: " ^ e)
    in
    let* () =
      match Rs.set_memo route memo with
      | Ok () -> Ok ()
      | Error e -> Error ("failure-memoization state: " ^ e)
    in
    Ok
      ( {
          engine;
          rng_state;
          weights;
          dyn_flags;
          dyn_samples;
          accepted_since_audit;
          memo;
          best_cost;
          best_layout;
        },
        route )

  let decode nl text =
    match String.index_opt text '\n' with
    | None -> Error "empty or headerless checkpoint"
    | Some i -> (
      let header = String.sub text 0 i in
      let body = String.sub text (i + 1) (String.length text - i - 1) in
      match words header with
      | [ "spr-checkpoint"; version; crc; len ] -> (
        match int_of_string_opt version, int_of_string_opt len with
        | Some v, _ when v <> format_version ->
          Error
            (Printf.sprintf "unsupported checkpoint version %d (this loader reads version %d)" v
               format_version)
        | _, None | None, _ -> Error "malformed v2 header"
        | Some _, Some len ->
          if String.length body < len then
            Error
              (Printf.sprintf "truncated checkpoint: %d of %d payload bytes" (String.length body)
                 len)
          else begin
            let payload = String.sub body 0 len in
            let actual = Pe.checksum_hex payload in
            if not (String.equal actual crc) then
              Error (Printf.sprintf "checksum mismatch: header %s, payload %s" crc actual)
            else decode_payload nl payload
          end)
      | "spr-checkpoint" :: v :: _ ->
        Error
          (Printf.sprintf "unsupported checkpoint version %s (this loader reads version %d)" v
             format_version)
      | _ -> Error "not a spr checkpoint")

  (* --- run-directory rotation --- *)

  (* Serial runs use plain [snap-NNNNNNNN.ckpt]; portfolio replica [k]
     uses [snap-r<k>-NNNNNNNN.ckpt], so a fleet shares one run
     directory without the replicas' rotations interfering — and
     without replica files ever matching the serial scan. *)
  let snapshot_prefix = function
    | None -> "snap-"
    | Some k -> Printf.sprintf "snap-r%d-" k

  let snapshot_path ?replica dir seq =
    Filename.concat dir (Printf.sprintf "%s%08d.ckpt" (snapshot_prefix replica) seq)

  let snapshot_files ?replica dir =
    let prefix = snapshot_prefix replica in
    let plen = String.length prefix in
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             if
               String.length name = plen + 8 + 5
               && String.sub name 0 plen = prefix
               && Filename.check_suffix name ".ckpt"
             then
               match int_of_string_opt (String.sub name plen 8) with
               | Some seq -> Some (seq, Filename.concat dir name)
               | None -> None
             else None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)

  let next_seq ?replica dir =
    match snapshot_files ?replica dir with [] -> 1 | (seq, _) :: _ -> seq + 1

  let write ?replica ~dir ~seq ~keep p ~current =
    Spr_util.Persist.ensure_dir dir;
    let path = snapshot_path ?replica dir seq in
    (* Durable: a rotated-away predecessor may be removed right after
       this write lands, so the rename itself must survive power loss
       or a reboot could find neither snapshot. *)
    Spr_util.Persist.atomic_write ~durable:true path (encode p ~current);
    (* Drop rotation entries beyond the newest [keep]. *)
    let keep = max 1 keep in
    List.iteri
      (fun i (_, p) -> if i >= keep then try Sys.remove p with Sys_error _ -> ())
      (snapshot_files ?replica dir);
    path

  let load_file nl path =
    match Spr_util.Persist.read_file path with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok text -> (
      match decode nl text with
      | Ok v -> Ok v
      | Error e -> Error (Printf.sprintf "%s: %s" path e))

  let load_latest ?replica nl ~dir =
    let files = snapshot_files ?replica dir in
    if files = [] then Error (Printf.sprintf "%s: no snapshots found" dir)
    else begin
      let rec try_each errs = function
        | [] ->
          Error
            (Printf.sprintf "no loadable snapshot in %s:\n%s" dir
               (String.concat "\n" (List.rev_map (fun e -> "  " ^ e) errs)))
        | (seq, path) :: rest -> (
          match load_file nl path with
          | Ok (data, route) -> Ok { data; route; path; seq }
          | Error e -> try_each (e :: errs) rest)
      in
      try_each [] files
    end
end

(* --- persisted exchange rounds (portfolio crash safety) --- *)

module Exchange = struct
  module Pe = Spr_util.Persist
  module Pf = Spr_anneal.Portfolio

  let format_version = 1

  let record_path dir round = Filename.concat dir (Printf.sprintf "exch-%08d.rec" round)

  let encode (r : Pf.round_result) =
    let payload =
      Printf.sprintf "round %d %d %s\nlayout %d\n%s" r.Pf.xr_round r.Pf.xr_best_replica
        (Pe.float_to_hex r.Pf.xr_best_metric)
        (String.length r.Pf.xr_payload) r.Pf.xr_payload
    in
    Printf.sprintf "spr-exchange %d %s %d\n%s" format_version (Pe.checksum_hex payload)
      (String.length payload) payload

  let ( let* ) = V2.( let* )

  let decode text =
    match String.index_opt text '\n' with
    | None -> Error "empty or headerless exchange record"
    | Some i -> (
      let header = String.sub text 0 i in
      let body = String.sub text (i + 1) (String.length text - i - 1) in
      match V2.words header with
      | [ "spr-exchange"; version; crc; len ] -> (
        match int_of_string_opt version, int_of_string_opt len with
        | Some v, _ when v <> format_version ->
          Error (Printf.sprintf "unsupported exchange record version %d" v)
        | None, _ | _, None -> Error "malformed exchange header"
        | Some _, Some len ->
          if String.length body < len then Error "truncated exchange record"
          else begin
            let payload = String.sub body 0 len in
            if not (String.equal (Pe.checksum_hex payload) crc) then
              Error "exchange record checksum mismatch"
            else begin
              let cur = { V2.text = payload; pos = 0 } in
              let* round_line = V2.next_line cur in
              let* round0 =
                V2.expect_tag "round" round_line (function
                  | [ r; b; m ] ->
                    let* xr_round = V2.int_ r in
                    let* xr_best_replica = V2.int_ b in
                    let* xr_best_metric = V2.float_ m in
                    Ok (xr_round, xr_best_replica, xr_best_metric)
                  | _ -> Error "bad round record")
              in
              let* layout_line = V2.next_line cur in
              let* xr_payload =
                V2.expect_tag "layout" layout_line (function
                  | [ n ] ->
                    let* n = V2.int_ n in
                    V2.take_bytes cur n
                  | _ -> Error "bad layout record")
              in
              let xr_round, xr_best_replica, xr_best_metric = round0 in
              Ok { Pf.xr_round; xr_best_replica; xr_best_metric; xr_payload }
            end
          end)
      | _ -> Error "not a spr exchange record")

  let write ~dir (r : Pf.round_result) =
    Spr_util.Persist.ensure_dir dir;
    let path = record_path dir r.Pf.xr_round in
    (* Durable for the same reason as snapshots: replicas act on the
       round as soon as this returns, so a lost rename would leave the
       resumed fleet without a round the live fleet already adopted. *)
    Spr_util.Persist.atomic_write ~durable:true path (encode r);
    path

  let load_all ~dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             if
               String.length name = 5 + 8 + 4
               && String.sub name 0 5 = "exch-"
               && Filename.check_suffix name ".rec"
             then
               match Pe.read_file (Filename.concat dir name) with
               | Error _ -> None
               | Ok text -> (
                 (* A torn or corrupted record is simply skipped: the
                    resumed round re-trips live with full participation,
                    which is exactly what an unrecorded round means. *)
                 match decode text with Ok r -> Some r | Error _ -> None)
             else None)
      |> List.sort (fun a b -> compare a.Pf.xr_round b.Pf.xr_round)
end

(* --- persisted racing decision rounds (scheduler crash safety) ---
   Same shape and guarantees as [Exchange]: one durable record per
   deciding round, written under the scheduler lock before any replica
   acts on the round, so a resumed fleet replays exactly the verdicts
   the live fleet acted on. Rounds with no kills are never written —
   they have no observable verdict, so re-tripping them live is
   equivalent. *)

module Sched = struct
  module Pe = Spr_util.Persist
  module Sc = Spr_anneal.Scheduler

  let format_version = 1

  let record_path dir round = Filename.concat dir (Printf.sprintf "sched-%08d.rec" round)

  let encode (r : Sc.round_record) =
    let b = Buffer.create (String.length r.Sc.sr_payload + 128) in
    Printf.bprintf b "round %d %d %s\n" r.Sc.sr_round r.Sc.sr_leader
      (Pe.float_to_hex r.Sc.sr_metric);
    Printf.bprintf b "kills %d\n" (List.length r.Sc.sr_kills);
    List.iter
      (fun (k : Sc.kill) -> Printf.bprintf b "kill %d %d\n" k.Sc.k_replica k.Sc.k_stream)
      r.Sc.sr_kills;
    Printf.bprintf b "layout %d\n%s" (String.length r.Sc.sr_payload) r.Sc.sr_payload;
    let payload = Buffer.contents b in
    Printf.sprintf "spr-sched %d %s %d\n%s" format_version (Pe.checksum_hex payload)
      (String.length payload) payload

  let ( let* ) = V2.( let* )

  let decode_payload payload =
    let cur = { V2.text = payload; pos = 0 } in
    let* round_line = V2.next_line cur in
    let* sr_round, sr_leader, sr_metric =
      V2.expect_tag "round" round_line (function
        | [ r; l; m ] ->
          let* r = V2.int_ r in
          let* l = V2.int_ l in
          let* m = V2.float_ m in
          Ok (r, l, m)
        | _ -> Error "bad round record")
    in
    let* kills_line = V2.next_line cur in
    let* n_kills =
      V2.expect_tag "kills" kills_line (function [ n ] -> V2.int_ n | _ -> Error "bad kill count")
    in
    let rec read_kills k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* line = V2.next_line cur in
        let* kill =
          V2.expect_tag "kill" line (function
            | [ r; s ] ->
              let* k_replica = V2.int_ r in
              let* k_stream = V2.int_ s in
              Ok { Sc.k_replica; k_stream }
            | _ -> Error "bad kill record")
        in
        read_kills (k - 1) (kill :: acc)
    in
    let* sr_kills = read_kills n_kills [] in
    let* layout_line = V2.next_line cur in
    let* sr_payload =
      V2.expect_tag "layout" layout_line (function
        | [ n ] ->
          let* n = V2.int_ n in
          V2.take_bytes cur n
        | _ -> Error "bad layout record")
    in
    Ok { Sc.sr_round; sr_leader; sr_metric; sr_payload; sr_kills }

  let decode text =
    match String.index_opt text '\n' with
    | None -> Error "empty or headerless sched record"
    | Some i -> (
      let header = String.sub text 0 i in
      let body = String.sub text (i + 1) (String.length text - i - 1) in
      match V2.words header with
      | [ "spr-sched"; version; crc; len ] -> (
        match (int_of_string_opt version, int_of_string_opt len) with
        | Some v, _ when v <> format_version ->
          Error (Printf.sprintf "unsupported sched record version %d" v)
        | None, _ | _, None -> Error "malformed sched header"
        | Some _, Some len ->
          if String.length body < len then Error "truncated sched record"
          else begin
            let payload = String.sub body 0 len in
            if not (String.equal (Pe.checksum_hex payload) crc) then
              Error "sched record checksum mismatch"
            else decode_payload payload
          end)
      | _ -> Error "not a spr sched record")

  let write ~dir (r : Sc.round_record) =
    Spr_util.Persist.ensure_dir dir;
    let path = record_path dir r.Sc.sr_round in
    (* Durable for the same reason as exchange records: replicas act on
       the verdicts as soon as this returns. *)
    Spr_util.Persist.atomic_write ~durable:true path (encode r);
    path

  let load_all ~dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             if
               String.length name = 6 + 8 + 4
               && String.sub name 0 6 = "sched-"
               && Filename.check_suffix name ".rec"
             then
               match Pe.read_file (Filename.concat dir name) with
               | Error _ -> None
               | Ok text -> (
                 match decode text with Ok r -> Some r | Error _ -> None)
             else None)
      |> List.sort (fun a b -> compare a.Sc.sr_round b.Sc.sr_round)
end
