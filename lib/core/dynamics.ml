type sample = {
  dyn_temp_index : int;
  dyn_temperature : float;
  pct_cells_perturbed : float;
  pct_nets_globally_unrouted : float;
  pct_nets_unrouted : float;
  acceptance : float;
  cost : float;
  critical_delay : float;
  phase_seconds : float array;  (* indexed by Profile.phase_index; [||] when unprofiled *)
}

type t = {
  n_cells : int;
  perturbed : bool array;
  mutable n_perturbed : int;
  mutable acc : sample list;  (* reversed *)
}

let create ~n_cells = { n_cells; perturbed = Array.make n_cells false; n_perturbed = 0; acc = [] }

let note_accepted_cells t cells =
  List.iter
    (fun c ->
      if not t.perturbed.(c) then begin
        t.perturbed.(c) <- true;
        t.n_perturbed <- t.n_perturbed + 1
      end)
    cells

let flush ?(phase_seconds = [||]) t ~temp_index ~temperature ~g_frac ~d_frac ~acceptance
    ~cost ~critical_delay =
  let sample =
    {
      dyn_temp_index = temp_index;
      dyn_temperature = temperature;
      pct_cells_perturbed = 100.0 *. float_of_int t.n_perturbed /. float_of_int t.n_cells;
      pct_nets_globally_unrouted = 100.0 *. g_frac;
      pct_nets_unrouted = 100.0 *. d_frac;
      acceptance;
      cost;
      critical_delay;
      phase_seconds;
    }
  in
  t.acc <- sample :: t.acc;
  Array.fill t.perturbed 0 (Array.length t.perturbed) false;
  t.n_perturbed <- 0

let samples t = List.rev t.acc

let last_sample t = match t.acc with [] -> None | s :: _ -> Some s

let perturbed_flags t = Array.copy t.perturbed

let restore ~n_cells ~flags ~samples =
  if Array.length flags <> n_cells then invalid_arg "Dynamics.restore: flag count mismatch";
  let t = create ~n_cells in
  Array.blit flags 0 t.perturbed 0 n_cells;
  t.n_perturbed <- Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 flags;
  t.acc <- List.rev samples;
  t

(* A sample and a report dynamics row carry the same data; the report
   row names its phase columns instead of relying on Profile's index. *)
let to_row s =
  {
    Spr_obs.Report.dr_temp_index = s.dyn_temp_index;
    dr_temperature = s.dyn_temperature;
    dr_pct_cells = s.pct_cells_perturbed;
    dr_pct_g_unrouted = s.pct_nets_globally_unrouted;
    dr_pct_unrouted = s.pct_nets_unrouted;
    dr_acceptance = s.acceptance;
    dr_cost = s.cost;
    dr_delay_ns = s.critical_delay;
    dr_phase_seconds =
      (if Array.length s.phase_seconds <> Profile.n_phases then []
       else List.map (fun p -> (Profile.phase_name p, s.phase_seconds.(Profile.phase_index p))) Profile.phases);
  }

let of_row (r : Spr_obs.Report.dyn_row) =
  {
    dyn_temp_index = r.Spr_obs.Report.dr_temp_index;
    dyn_temperature = r.dr_temperature;
    pct_cells_perturbed = r.dr_pct_cells;
    pct_nets_globally_unrouted = r.dr_pct_g_unrouted;
    pct_nets_unrouted = r.dr_pct_unrouted;
    acceptance = r.dr_acceptance;
    cost = r.dr_cost;
    critical_delay = r.dr_delay_ns;
    phase_seconds =
      (if List.length r.dr_phase_seconds <> Profile.n_phases then [||]
       else Array.of_list (List.map snd r.dr_phase_seconds));
  }

let rows t = List.map to_row (samples t)

let pp_series ppf samples = Spr_obs.Report.render_dynamics ppf (List.map to_row samples)

let pp_phase_series ppf samples =
  Spr_obs.Report.render_phase_series ppf
    ~phase_names:(List.map Profile.phase_name Profile.phases)
    (List.map to_row samples)
