type sample = {
  dyn_temp_index : int;
  dyn_temperature : float;
  pct_cells_perturbed : float;
  pct_nets_globally_unrouted : float;
  pct_nets_unrouted : float;
  acceptance : float;
  cost : float;
  critical_delay : float;
  phase_seconds : float array;  (* indexed by Profile.phase_index; [||] when unprofiled *)
}

type t = {
  n_cells : int;
  perturbed : bool array;
  mutable n_perturbed : int;
  mutable acc : sample list;  (* reversed *)
}

let create ~n_cells = { n_cells; perturbed = Array.make n_cells false; n_perturbed = 0; acc = [] }

let note_accepted_cells t cells =
  List.iter
    (fun c ->
      if not t.perturbed.(c) then begin
        t.perturbed.(c) <- true;
        t.n_perturbed <- t.n_perturbed + 1
      end)
    cells

let flush ?(phase_seconds = [||]) t ~temp_index ~temperature ~g_frac ~d_frac ~acceptance
    ~cost ~critical_delay =
  let sample =
    {
      dyn_temp_index = temp_index;
      dyn_temperature = temperature;
      pct_cells_perturbed = 100.0 *. float_of_int t.n_perturbed /. float_of_int t.n_cells;
      pct_nets_globally_unrouted = 100.0 *. g_frac;
      pct_nets_unrouted = 100.0 *. d_frac;
      acceptance;
      cost;
      critical_delay;
      phase_seconds;
    }
  in
  t.acc <- sample :: t.acc;
  Array.fill t.perturbed 0 (Array.length t.perturbed) false;
  t.n_perturbed <- 0

let samples t = List.rev t.acc

let perturbed_flags t = Array.copy t.perturbed

let restore ~n_cells ~flags ~samples =
  if Array.length flags <> n_cells then invalid_arg "Dynamics.restore: flag count mismatch";
  let t = create ~n_cells in
  Array.blit flags 0 t.perturbed 0 n_cells;
  t.n_perturbed <- Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 flags;
  t.acc <- List.rev samples;
  t

let pp_series ppf samples =
  Format.fprintf ppf "%4s  %12s  %8s  %8s  %8s  %6s  %10s@."
    "temp" "T" "%cells" "%G-unrt" "%unrt" "acc" "delay(ns)";
  List.iter
    (fun s ->
      Format.fprintf ppf "%4d  %12.5g  %8.1f  %8.1f  %8.1f  %6.2f  %10.2f@."
        s.dyn_temp_index s.dyn_temperature s.pct_cells_perturbed
        s.pct_nets_globally_unrouted s.pct_nets_unrouted s.acceptance s.critical_delay)
    samples

let pp_phase_series ppf samples =
  Format.fprintf ppf "%4s" "temp";
  List.iter
    (fun p -> Format.fprintf ppf "  %14s" (Profile.phase_name p ^ "(ms)"))
    Profile.phases;
  Format.fprintf ppf "@.";
  List.iter
    (fun s ->
      if Array.length s.phase_seconds = Profile.n_phases then begin
        Format.fprintf ppf "%4d" s.dyn_temp_index;
        Array.iter (fun sec -> Format.fprintf ppf "  %14.3f" (sec *. 1e3)) s.phase_seconds;
        Format.fprintf ppf "@."
      end)
    samples
