(** The move transaction as an explicit five-phase pipeline.

    Every annealing move runs propose -> rip-up -> reroute (global, then
    per-channel detailed) -> retime, and later accept/reject runs the
    decide phase. All mutations go through one shared journal, so a
    reject unwinds the entire cascade. Each phase is bracketed by
    {!Profile}, giving per-phase wall clock and counters for
    [spr route --obs-profile] and the dynamics trace. *)

type t

val create :
  ?profile:Profile.t ->
  ?route_pool:Spr_route.Parallel.Pool.t ->
  ?route_grain:int ->
  router:Spr_route.Router.config ->
  pinmap_move_prob:float ->
  enable_pinmap_moves:bool ->
  max_swap_tries:int ->
  place:Spr_layout.Placement.t ->
  rs:Spr_route.Route_state.t ->
  sta:Spr_timing.Sta.t ->
  weights:Spr_anneal.Weights.t ->
  journal:Spr_util.Journal.t ->
  unit ->
  t
(** The routing state must carry a canonical (freshly built or
    [full_update]d) STA; the constructor clears its dirty-net set, since
    the timing picture already reflects the initial routing. [?profile]
    continues accumulating into an existing profile instead of starting
    a fresh one — the tool passes the old pipeline's profile when it
    rebuilds the pipeline around an adopted portfolio layout, so one
    profile spans the whole replica run. [?route_pool] is the shared
    worker-domain pool the reroute phases dispatch batches to (borrowed,
    created once per run, never per move); absent, batches run inline on
    the calling domain with identical results and counters.
    [?route_grain] (default 8) is the dispatch chunk size. *)

val profile : t -> Profile.t
(** The cumulative per-phase instrumentation for this pipeline. *)

val route_pool : t -> Spr_route.Parallel.Pool.t option
(** The pool the reroute phases dispatch to, so the tool can thread it
    into a rebuilt pipeline when adopting a portfolio layout. *)

val last_cells : t -> int list
(** Cells perturbed by the most recent {!propose}; empty when it
    returned [false] or no move has run. *)

val propose : t -> Spr_util.Rng.t -> bool
(** Run one transaction through propose/rip-up/reroute/retime, leaving
    its mutations open in the journal. [false] when no legal perturbation
    was found (the journal is untouched); the caller must then neither
    {!accept} nor {!reject}. *)

val accept : t -> unit
(** Decide phase: commit the open transaction. *)

val reject : t -> unit
(** Decide phase: roll the open transaction back. *)
