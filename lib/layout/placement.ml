type slot = { row : int; col : int }

type geom = {
  g_pins : (int * int) list;  (* (channel, col) of driver then sinks *)
  g_ch_lo : int;
  g_ch_hi : int;
  g_col_lo : int;
  g_col_hi : int;
}

type t = {
  arch : Spr_arch.Arch.t;
  nl : Spr_netlist.Netlist.t;
  slot_of_cell : int array;  (* cell -> row * cols + col *)
  cell_at_slot : int array;  (* encoded slot -> cell id or -1 *)
  pinmap_idx : int array;  (* cell -> palette index *)
  palettes : Spr_netlist.Pinmap.t array array;  (* cell -> palette *)
  geom_cache : geom option array;  (* net -> memoized pin geometry *)
  cell_nets : int list array;  (* cell -> nets to invalidate when it moves *)
}

let encode arch { row; col } = (row * arch.Spr_arch.Arch.cols) + col

let decode arch e = { row = e / arch.Spr_arch.Arch.cols; col = e mod arch.Spr_arch.Arch.cols }

let arch t = t.arch

let netlist t = t.nl

(* Caches start cold; [cell_nets] is fixed by the netlist and drives
   invalidation when a cell moves or changes pinmap. *)
let fresh_caches nl =
  ( Array.make (Spr_netlist.Netlist.n_nets nl) None,
    Array.init (Spr_netlist.Netlist.n_cells nl) (Spr_netlist.Netlist.nets_of_cell nl) )

let legal_kind_at arch kind s =
  if Spr_netlist.Cell_kind.is_io kind then
    Spr_arch.Arch.is_perimeter arch ~row:s.row ~col:s.col
  else true

let create arch nl ~rng =
  match Spr_arch.Arch.check_fits arch nl with
  | Error e -> Error e
  | Ok () ->
    let n = Spr_netlist.Netlist.n_cells nl in
    let n_slots = Spr_arch.Arch.n_slots arch in
    let slot_of_cell = Array.make n (-1) in
    let cell_at_slot = Array.make n_slots (-1) in
    (* Perimeter and interior slot pools, both shuffled. *)
    let perimeter = ref [] and interior = ref [] in
    for row = 0 to arch.Spr_arch.Arch.rows - 1 do
      for col = 0 to arch.Spr_arch.Arch.cols - 1 do
        let e = encode arch { row; col } in
        if Spr_arch.Arch.is_perimeter arch ~row ~col then perimeter := e :: !perimeter
        else interior := e :: !interior
      done
    done;
    let perimeter = Array.of_list !perimeter in
    let interior = Array.of_list !interior in
    Spr_util.Rng.shuffle_in_place rng perimeter;
    Spr_util.Rng.shuffle_in_place rng interior;
    let peri_next = ref 0 and inter_next = ref 0 in
    let take_perimeter () =
      let e = perimeter.(!peri_next) in
      incr peri_next;
      e
    in
    let take_any () =
      (* Non-pad cells prefer interior slots, spilling onto remaining
         perimeter slots when the interior is full. *)
      if !inter_next < Array.length interior then begin
        let e = interior.(!inter_next) in
        incr inter_next;
        e
      end
      else take_perimeter ()
    in
    let place c e =
      slot_of_cell.(c) <- e;
      cell_at_slot.(e) <- c
    in
    Array.iter
      (fun cell ->
        if Spr_netlist.Cell_kind.is_io cell.Spr_netlist.Netlist.kind then
          place cell.Spr_netlist.Netlist.id (take_perimeter ()))
      (Spr_netlist.Netlist.cells nl);
    Array.iter
      (fun cell ->
        if not (Spr_netlist.Cell_kind.is_io cell.Spr_netlist.Netlist.kind) then
          place cell.Spr_netlist.Netlist.id (take_any ()))
      (Spr_netlist.Netlist.cells nl);
    let palettes =
      Array.init n (fun c ->
          Spr_netlist.Pinmap.palette ~n_pins:(Spr_netlist.Netlist.n_pins nl c))
    in
    let geom_cache, cell_nets = fresh_caches nl in
    Ok
      {
        arch;
        nl;
        slot_of_cell;
        cell_at_slot;
        pinmap_idx = Array.make n 0;
        palettes;
        geom_cache;
        cell_nets;
      }

let create_exn arch nl ~rng =
  match create arch nl ~rng with
  | Ok t -> t
  | Error e -> invalid_arg ("Placement.create: " ^ e)

let create_from arch nl ~slots ~pinmaps =
  let n = Spr_netlist.Netlist.n_cells nl in
  if Array.length slots <> n || Array.length pinmaps <> n then
    Error "create_from: slots/pinmaps must have one entry per cell"
  else begin
    let n_slots = Spr_arch.Arch.n_slots arch in
    let slot_of_cell = Array.make n (-1) in
    let cell_at_slot = Array.make n_slots (-1) in
    let palettes =
      Array.init n (fun c ->
          Spr_netlist.Pinmap.palette ~n_pins:(Spr_netlist.Netlist.n_pins nl c))
    in
    let error = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
    Array.iteri
      (fun c s ->
        let kind = (Spr_netlist.Netlist.cell nl c).Spr_netlist.Netlist.kind in
        if s.row < 0 || s.row >= arch.Spr_arch.Arch.rows || s.col < 0
           || s.col >= arch.Spr_arch.Arch.cols
        then fail "cell %d: slot (%d,%d) out of range" c s.row s.col
        else if not (legal_kind_at arch kind s) then
          fail "cell %d: pad placed off the perimeter at (%d,%d)" c s.row s.col
        else begin
          let e = encode arch s in
          if cell_at_slot.(e) <> -1 then fail "slot (%d,%d) assigned twice" s.row s.col
          else begin
            cell_at_slot.(e) <- c;
            slot_of_cell.(c) <- e
          end
        end)
      slots;
    Array.iteri
      (fun c idx ->
        if idx < 0 || idx >= Array.length palettes.(c) then
          fail "cell %d: pinmap index %d out of range" c idx)
      pinmaps;
    match !error with
    | Some e -> Error e
    | None ->
      let geom_cache, cell_nets = fresh_caches nl in
      Ok
        {
          arch;
          nl;
          slot_of_cell;
          cell_at_slot;
          pinmap_idx = Array.copy pinmaps;
          palettes;
          geom_cache;
          cell_nets;
        }
  end

let slot_of t c = decode t.arch t.slot_of_cell.(c)

let cell_at t s =
  let c = t.cell_at_slot.(encode t.arch s) in
  if c = -1 then None else Some c

let legal_at t ~cell s = legal_kind_at t.arch (Spr_netlist.Netlist.cell t.nl cell).Spr_netlist.Netlist.kind s

let swap_legal t a b =
  let ok_at occupant target =
    match occupant with
    | None -> true
    | Some c -> legal_at t ~cell:c target
  in
  ok_at (cell_at t a) b && ok_at (cell_at t b) a

(* Invalidation lives inside the mutators so it covers both directions
   of a transaction: journal undo closures re-invoke the same mutators,
   so a rollback invalidates exactly the nets it restores. *)
let invalidate_cell t c =
  List.iter (fun net -> t.geom_cache.(net) <- None) t.cell_nets.(c)

let swap_slots t a b =
  let ea = encode t.arch a and eb = encode t.arch b in
  let ca = t.cell_at_slot.(ea) and cb = t.cell_at_slot.(eb) in
  t.cell_at_slot.(ea) <- cb;
  t.cell_at_slot.(eb) <- ca;
  if ca <> -1 then begin
    t.slot_of_cell.(ca) <- eb;
    invalidate_cell t ca
  end;
  if cb <> -1 then begin
    t.slot_of_cell.(cb) <- ea;
    invalidate_cell t cb
  end

let pinmap_index t c = t.pinmap_idx.(c)

let palette_size t c = Array.length t.palettes.(c)

let set_pinmap t ~cell ~index =
  assert (index >= 0 && index < Array.length t.palettes.(cell));
  t.pinmap_idx.(cell) <- index;
  invalidate_cell t cell

let pin_side t ~cell ~pin = t.palettes.(cell).(t.pinmap_idx.(cell)).(pin)

(* Channel k runs below row k, channel k+1 above it. *)
let pin_channel t ~cell ~pin =
  let s = slot_of t cell in
  match pin_side t ~cell ~pin with
  | Spr_netlist.Pinmap.Bottom -> s.row
  | Spr_netlist.Pinmap.Top -> s.row + 1

let pin_col t ~cell ~pin =
  ignore pin;
  (slot_of t cell).col

let compute_geom t net_id =
  let net = Spr_netlist.Netlist.net t.nl net_id in
  let driver = net.Spr_netlist.Netlist.driver in
  let out_pin = (Spr_netlist.Netlist.cell t.nl driver).Spr_netlist.Netlist.n_inputs in
  let driver_pos =
    (pin_channel t ~cell:driver ~pin:out_pin, pin_col t ~cell:driver ~pin:out_pin)
  in
  let pins =
    driver_pos
    :: Array.to_list
         (Array.map
            (fun (c, pin) -> (pin_channel t ~cell:c ~pin, pin_col t ~cell:c ~pin))
            net.Spr_netlist.Netlist.sinks)
  in
  let ch, col = driver_pos in
  let g_ch_lo, g_ch_hi, g_col_lo, g_col_hi =
    List.fold_left
      (fun (clo, chi, xlo, xhi) (c, x) -> (min clo c, max chi c, min xlo x, max xhi x))
      (ch, ch, col, col) pins
  in
  { g_pins = pins; g_ch_lo; g_ch_hi; g_col_lo; g_col_hi }

let geom t net_id =
  match t.geom_cache.(net_id) with
  | Some g -> g
  | None ->
    let g = compute_geom t net_id in
    t.geom_cache.(net_id) <- Some g;
    g

let net_pin_positions t net_id = (geom t net_id).g_pins

let net_channel_span t net_id =
  let g = geom t net_id in
  match g.g_pins with [] -> None | _ -> Some (g.g_ch_lo, g.g_ch_hi)

let net_col_span t net_id =
  let g = geom t net_id in
  match g.g_pins with [] -> None | _ -> Some (g.g_col_lo, g.g_col_hi)

let half_perimeter t net_id =
  let g = geom t net_id in
  match g.g_pins with
  | [] -> 0
  | _ -> g.g_ch_hi - g.g_ch_lo + (g.g_col_hi - g.g_col_lo)

let random_slot t rng =
  decode t.arch (Spr_util.Rng.int rng (Spr_arch.Arch.n_slots t.arch))

let random_occupied_slot t rng =
  let c = Spr_util.Rng.int rng (Array.length t.slot_of_cell) in
  decode t.arch t.slot_of_cell.(c)

let check_caches t =
  let error = ref None in
  Array.iteri
    (fun net cached ->
      match cached with
      | None -> ()
      | Some g ->
        if !error = None && g <> compute_geom t net then
          error :=
            Some
              (Printf.sprintf "net %d: memoized pin geometry differs from recomputation" net))
    t.geom_cache;
  match !error with Some e -> Error e | None -> Ok ()

let check t =
  let n_slots = Spr_arch.Arch.n_slots t.arch in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  Array.iteri
    (fun c e ->
      if e < 0 || e >= n_slots then fail "cell %d on invalid slot %d" c e
      else if t.cell_at_slot.(e) <> c then fail "slot map inconsistent for cell %d" c
      else begin
        let s = decode t.arch e in
        if not (legal_at t ~cell:c s) then
          fail "cell %d (%s) illegally placed at (%d,%d)" c
            (Spr_netlist.Cell_kind.to_string
               (Spr_netlist.Netlist.cell t.nl c).Spr_netlist.Netlist.kind)
            s.row s.col
      end)
    t.slot_of_cell;
  Array.iteri
    (fun e c -> if c <> -1 && t.slot_of_cell.(c) <> e then fail "slot %d points to wrong cell" e)
    t.cell_at_slot;
  match !error with
  | Some e -> Error e
  | None -> check_caches t
