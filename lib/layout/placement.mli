(** Mutable placement state: every cell always occupies a legal slot
    (paper §3.2 — no illegal intermediate states), plus the current
    pinmap of every cell.

    Slots are [(row, col)] pairs. I/O pad cells are only legal on
    perimeter slots; other cells are legal anywhere. *)

type slot = { row : int; col : int }

type t

val create :
  Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> rng:Spr_util.Rng.t -> (t, string) result
(** Random initial placement: pads on random perimeter slots, all other
    cells on the remaining slots. Fails when {!Spr_arch.Arch.check_fits}
    fails. *)

val create_exn : Spr_arch.Arch.t -> Spr_netlist.Netlist.t -> rng:Spr_util.Rng.t -> t

val create_from :
  Spr_arch.Arch.t ->
  Spr_netlist.Netlist.t ->
  slots:slot array ->
  pinmaps:int array ->
  (t, string) result
(** Deterministic construction from explicit per-cell slots and pinmap
    indices (both indexed by cell id) — used to restore checkpoints.
    Fails on duplicate slots, illegal pad positions, or out-of-range
    pinmap indices. *)

val arch : t -> Spr_arch.Arch.t

val netlist : t -> Spr_netlist.Netlist.t

(** {1 Queries} *)

val slot_of : t -> int -> slot
(** Current slot of a cell. *)

val cell_at : t -> slot -> int option
(** Occupant of a slot, if any. *)

val legal_at : t -> cell:int -> slot -> bool

val swap_legal : t -> slot -> slot -> bool
(** Would exchanging the contents of the two slots leave every involved
    cell on a legal slot? Vacant slots are allowed on either side. *)

(** {1 Pin geometry} *)

val pinmap_index : t -> int -> int
(** Index into the cell's pinmap palette. *)

val palette_size : t -> int -> int

val pin_channel : t -> cell:int -> pin:int -> int
(** Channel adjacent to the cell that this pin connects into, under the
    current placement and pinmap. *)

val pin_col : t -> cell:int -> pin:int -> int

val net_pin_positions : t -> int -> (int * int) list
(** [(channel, col)] of every terminal of the net: the driver's output
    pin followed by each sink pin.

    Pin positions and the bounding box derived from them are memoized
    per net; the cache entry is invalidated inside {!swap_slots} and
    {!set_pinmap} (which journal undo closures also call, so rollbacks
    invalidate exactly what they restore). *)

val net_channel_span : t -> int -> (int * int) option
(** [(lowest, highest)] channel touched by the net's terminals; [None]
    for nets with no terminals. *)

val net_col_span : t -> int -> (int * int) option

val half_perimeter : t -> int -> int
(** Bounding-box half-perimeter of the net's pins (columns span plus
    channels span), the classic placement wirelength estimate. 0 for
    degenerate nets. *)

(** {1 Mutation} *)

val swap_slots : t -> slot -> slot -> unit
(** Exchange the contents of two slots (either may be vacant). Does not
    check legality — callers filter with {!swap_legal} first. Involutive,
    so the inverse of a swap is the same swap. *)

val set_pinmap : t -> cell:int -> index:int -> unit
(** Select a palette entry for the cell. *)

val random_slot : t -> Spr_util.Rng.t -> slot

val random_occupied_slot : t -> Spr_util.Rng.t -> slot
(** A slot currently holding a cell. *)

(** {1 Validation} *)

val check : t -> (unit, string) result
(** Verifies the slot/cell bijection, per-cell legality, and the
    geometry memo cache; used by tests and the routing validator. *)

val check_caches : t -> (unit, string) result
(** Verify every live pin-geometry memo entry against a from-scratch
    recomputation. Subsumed by {!check}; exposed for targeted property
    tests. *)
