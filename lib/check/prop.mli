(** Seeded property-based testing harness (QuickCheck-lite on
    {!Spr_util.Rng}).

    A property is specified as: build a fresh system state from a seed,
    generate a sequence of random operations (plain data, so failures are
    printable and replayable), apply them one by one, and check an
    invariant after every step. Generation is independent of the state —
    [apply] must tolerate operations that do not apply (treat them as
    no-ops) — which is what makes sequences shrinkable by simple
    deletion.

    On failure the harness shrinks the operation list by bisection
    (delta-debugging with halving chunk sizes, replaying each candidate
    from a fresh state) and reports the seed plus the shrunk sequence, so
    a failure is reproducible from two integers and a short op list. *)

type ('st, 'op) spec = {
  name : string;
  init : int -> 'st;  (** Fresh state from a seed. *)
  gen : Spr_util.Rng.t -> 'op;  (** One random operation. *)
  apply : 'st -> 'op -> unit;  (** Must treat inapplicable ops as no-ops. *)
  check : 'st -> (unit, string) Stdlib.result;  (** Invariant, run after every op. *)
  show : 'op -> string;
}

type 'op failure = {
  seed : int;
  error : string;  (** From [check], or the exception [apply] raised. *)
  ops : 'op list;  (** The shrunk failing sequence. *)
  shrunk_from : int;  (** Original sequence length. *)
}

val run : ?seeds:int list -> ?n_ops:int -> ('st, 'op) spec -> (unit, 'op failure) Stdlib.result
(** Defaults: seeds [1..5], 60 ops per seed. Stops at the first failing
    seed, after shrinking. Exceptions raised by [apply] or [check] count
    as failures; the harness itself never raises. *)

val failure_to_string : ('st, 'op) spec -> 'op failure -> string
(** Multi-line report: property name, seed, error, and the shrunk
    operation sequence (one op per line). *)
