(** Crash-fault injection for resumable annealing runs.

    The property under test: a run killed at an arbitrary accepted-move
    index and resumed from its newest on-disk snapshot finishes with a
    layout {e identical} to the run that was never killed — same cost
    components, same track usage, same critical path.

    This library cannot depend on the tool layer (the dependency points
    the other way), so the harness is parameterized over a {!runner} of
    closures; the test suite wires them to [Spr_core.Tool] with
    fault-injection configs. The harness owns the search: randomized
    kill points, counterexample shrinking toward the smallest failing
    kill index, and the file-level corruption injectors used to test
    snapshot-rotation fallback. *)

type outcome = {
  o_layout : string;  (** Canonical layout dump ({!Spr_route.Route_state.snapshot}). *)
  o_g : int;
  o_d : int;
  o_critical_delay : float;
}

val compare_outcomes : reference:outcome -> outcome -> (unit, string) Stdlib.result
(** [Error] describes the first differing field. *)

type runner = {
  reference : unit -> outcome;
      (** The uninterrupted run (checkpointing on, so it canonicalizes
          at the same boundaries the crashed run does). *)
  crashed : kill_after:int -> bool;
      (** Run with a crash injected after [kill_after] accepted moves
          and {e no} final checkpoint — only periodic snapshots survive,
          as after a real [kill -9]. Returns [false] when the run
          completed before the kill point fired. *)
  resume : unit -> (outcome, string) Stdlib.result;
      (** Load the newest good snapshot the crashed run left behind and
          run it to completion. *)
  reset : unit -> unit;  (** Wipe the crashed run's directory. *)
}

type failure = {
  f_kill_after : int;  (** Smallest failing kill index found. *)
  f_shrunk_from : int;  (** The originally sampled failing kill index. *)
  f_error : string;
}

val failure_to_string : failure -> string

val check_equivalence :
  ?attempts:int ->
  rng:Spr_util.Rng.t ->
  max_kill:int ->
  runner ->
  (unit, failure) Stdlib.result
(** Sample [attempts] (default 3) kill indices uniformly from
    [\[1, max_kill\]]; for each, crash, resume, and compare against the
    reference outcome (computed once). On the first mismatch, shrink the
    kill index toward 1 — each candidate replayed through a full
    crash+resume cycle — and report the smallest still-failing index.
    Kill points the run never reaches count as vacuous passes. The
    harness never raises; exceptions from the closures become
    failures. *)

(** {1 Corruption injectors}

    Deliberately damage snapshot files the way real crashes and bad
    disks do, to test checksum detection and rotation fallback. These
    write in place, non-atomically — that is the point. *)

val truncate_file : string -> keep:int -> unit
(** Cut the file down to its first [keep] bytes. *)

val flip_byte : string -> at:int -> unit
(** XOR the byte at offset [at] (clamped into range) with 0xFF. *)
