(** Umbrella over the three full-state auditors.

    The intended call sites: [Tool.config.validate = true] runs this
    every N accepted moves and per temperature; [spr route --selfcheck]
    runs it on the final layout; the property harness ({!Prop} over
    {!Spr_ops}) runs it after every generated operation. *)

val run_all : ?eps:float -> ?sta:Spr_timing.Sta.t -> Spr_route.Route_state.t -> Finding.t list
(** Place audit (over the state's placement), route audit, and — when
    [sta] is given — the timing audit. [eps] is forwarded to
    {!Sta_audit.run}. *)

val result : Finding.t list -> (unit, string) Stdlib.result
(** [Ok ()] on no findings, else every finding joined into one
    message. *)
