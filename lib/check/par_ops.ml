module Parallel = Spr_route.Parallel

type op = Spr_ops.op

type state = { serial : Spr_ops.state; par : Spr_ops.state }

(* One pool for the whole test process: states are created afresh on
   every shrink replay, and spawning (then abandoning) a pair of worker
   domains per replay would pile up. Shutdown is hooked on exit; the
   pool is idle between jobs so sharing it across states is safe. *)
let pool =
  lazy
    (let p = Parallel.Pool.create ~workers:3 in
     at_exit (fun () -> Parallel.Pool.shutdown p);
     p)

let make ?n_cells ?tracks ~seed () =
  let serial = Spr_ops.make ?n_cells ?tracks ~seed () in
  (* The dispatch handle wraps the twin's own routing state, which only
     exists once [Spr_ops.make] returns — so bind it on first use. *)
  let handle = ref None in
  let reroute rs j =
    let t =
      match !handle with
      | Some t -> t
      | None ->
        let t = Parallel.create ~pool:(Lazy.force pool) rs in
        handle := Some t;
        t
    in
    Parallel.reroute t j
  in
  let par = Spr_ops.make ?n_cells ?tracks ~reroute ~seed () in
  { serial; par }

let apply st op =
  Spr_ops.apply st.serial op;
  Spr_ops.apply st.par op

(* Point at the first fingerprint line where the twins disagree — for a
   routing divergence that line names the net (and channel/track claim)
   the batched commit got wrong, so the shrunk op list plus this pair of
   lines is the minimal conflicting-net witness. *)
let divergence a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec first = function
    | x :: xs, y :: ys ->
      if String.equal x y then first (xs, ys)
      else Printf.sprintf "serial %S vs parallel %S" x y
    | x :: _, [] -> Printf.sprintf "serial has extra %S" x
    | [], y :: _ -> Printf.sprintf "parallel has extra %S" y
    | [], [] -> "snapshots differ"
  in
  "parallel reroute diverged from serial: " ^ first (la, lb)

let check st =
  match Spr_ops.check st.serial with
  | Error e -> Error ("serial twin: " ^ e)
  | Ok () -> (
    match Spr_ops.check st.par with
    | Error e -> Error ("parallel twin: " ^ e)
    | Ok () ->
      let a = Spr_ops.snapshot st.serial and b = Spr_ops.snapshot st.par in
      if String.equal a b then Ok () else Error (divergence a b))

let spec ?n_cells ?tracks () =
  {
    Prop.name = "parallel reroute mirrors serial reroute";
    init = (fun seed -> make ?n_cells ?tracks ~seed ());
    gen = Spr_ops.gen;
    apply;
    check;
    show = Spr_ops.show_op;
  }
