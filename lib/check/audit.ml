let run_all ?eps ?sta rs =
  let place_findings = Place_audit.run (Spr_route.Route_state.place rs) in
  let route_findings = Route_audit.run rs in
  let sta_findings =
    match sta with None -> [] | Some sta -> Sta_audit.run ?eps sta rs
  in
  place_findings @ route_findings @ sta_findings

let result = function
  | [] -> Ok ()
  | fs -> Error (Finding.summarize fs)
