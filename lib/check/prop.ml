type ('st, 'op) spec = {
  name : string;
  init : int -> 'st;
  gen : Spr_util.Rng.t -> 'op;
  apply : 'st -> 'op -> unit;
  check : 'st -> (unit, string) result;
  show : 'op -> string;
}

type 'op failure = {
  seed : int;
  error : string;
  ops : 'op list;
  shrunk_from : int;
}

(* Replay a sequence from a fresh state; [Some error] as soon as a step
   breaks the invariant (or raises), [None] when the whole run passes. *)
let replay spec seed ops =
  match
    let st = spec.init seed in
    let rec go = function
      | [] -> None
      | op :: rest -> (
        spec.apply st op;
        match spec.check st with Error e -> Some e | Ok () -> go rest)
    in
    go ops
  with
  | verdict -> verdict
  | exception e -> Some (Printexc.to_string e)

(* Delta-debugging lite: try deleting contiguous chunks, halving the
   chunk size after each full scan; every candidate replays from
   scratch. Deletion-only shrinking is sound because generation is
   state-independent and apply skips inapplicable ops. *)
let shrink spec seed ops error =
  let rec scan chunk i ops error =
    if i >= List.length ops then (ops, error)
    else begin
      let candidate = List.filteri (fun k _ -> k < i || k >= i + chunk) ops in
      match replay spec seed candidate with
      | Some e -> scan chunk i candidate e
      | None -> scan chunk (i + chunk) ops error
    end
  in
  let rec passes chunk ops error =
    if chunk < 1 then (ops, error)
    else begin
      let ops, error = scan chunk 0 ops error in
      passes (chunk / 2) ops error
    end
  in
  passes (max 1 (List.length ops / 2)) ops error

let run ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(n_ops = 60) spec =
  let rec each = function
    | [] -> Ok ()
    | seed :: rest -> (
      let rng = Spr_util.Rng.create seed in
      let ops = List.init n_ops (fun _ -> spec.gen rng) in
      match replay spec seed ops with
      | None -> each rest
      | Some error ->
        let ops, error = shrink spec seed ops error in
        Error { seed; error; ops; shrunk_from = n_ops })
  in
  each seeds

let failure_to_string spec f =
  Printf.sprintf
    "property %S failed\n  seed: %d\n  error: %s\n  %d op(s) (shrunk from %d):\n%s"
    spec.name f.seed f.error (List.length f.ops) f.shrunk_from
    (String.concat "\n" (List.map (fun op -> "    " ^ spec.show op) f.ops))
