module Rs = Spr_route.Route_state
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module I = Spr_util.Interval

(* Independent recomputation of the per-channel demand spans: group the
   net's pins by channel into column spans; a chosen spine column extends
   every span so the detailed route can reach the spine. Deliberately
   re-derived here rather than shared with the router — the whole point
   is a second opinion. *)
let expected_demands pins spine_col =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (ch, col) ->
      match Hashtbl.find_opt tbl ch with
      | None -> Hashtbl.replace tbl ch (col, col)
      | Some (lo, hi) -> Hashtbl.replace tbl ch (min lo col, max hi col))
    pins;
  Hashtbl.fold
    (fun ch (lo, hi) acc ->
      let lo, hi =
        match spine_col with None -> (lo, hi) | Some x -> (min lo x, max hi x)
      in
      (ch, I.make lo hi) :: acc)
    tbl []
  |> List.sort compare

let run st =
  let place = Rs.place st in
  let arch = Rs.arch st in
  let nl = Rs.netlist st in
  let findings = ref [] in
  let report ~subject fmt =
    Printf.ksprintf
      (fun detail -> findings := { Finding.auditor = "route"; subject; detail } :: !findings)
      fmt
  in
  let net_subject net = Printf.sprintf "net %d" net in
  let n_nets = Nl.n_nets nl in
  let n_channels = arch.Arch.n_channels in
  (* --- pass 1: per-net route records vs the fabric segmentation --- *)
  let listed_h = Hashtbl.create 256 in
  let listed_v = Hashtbl.create 256 in
  let list_seg tbl key net what =
    match Hashtbl.find_opt tbl key with
    | Some other when other <> net ->
      report ~subject:(net_subject net) "%s conflicts with net %d" what other
    | _ -> Hashtbl.replace tbl key net
  in
  for net = 0 to n_nets - 1 do
    let subject = net_subject net in
    (match Rs.global_route st net with
    | None -> ()
    | Some vr ->
      if vr.Rs.v_col < 0 || vr.Rs.v_col >= arch.Arch.cols then
        report ~subject "spine column %d outside the fabric" vr.Rs.v_col
      else if vr.Rs.v_vtrack < 0 || vr.Rs.v_vtrack >= arch.Arch.vtracks then
        report ~subject "spine vtrack %d out of range" vr.Rs.v_vtrack
      else begin
        let segs = Arch.vsegments arch ~col:vr.Rs.v_col ~vtrack:vr.Rs.v_vtrack in
        if vr.Rs.v_slo < 0 || vr.Rs.v_shi >= Array.length segs || vr.Rs.v_slo > vr.Rs.v_shi
        then
          report ~subject "spine run [%d..%d] does not fit the %d-segment vtrack"
            vr.Rs.v_slo vr.Rs.v_shi (Array.length segs)
        else begin
          let covered = I.make segs.(vr.Rs.v_slo).I.lo segs.(vr.Rs.v_shi).I.hi in
          if not (I.covers covered vr.Rs.v_span) then
            report ~subject "claimed vertical run %s does not cover spine span %s"
              (I.to_string covered) (I.to_string vr.Rs.v_span);
          for s = vr.Rs.v_slo to vr.Rs.v_shi do
            list_seg listed_v (vr.Rs.v_col, vr.Rs.v_vtrack, s) net
              (Printf.sprintf "vertical segment (%d,%d,%d)" vr.Rs.v_col vr.Rs.v_vtrack s)
          done
        end
      end);
    List.iter
      (fun (ch, hr) ->
        if ch <> hr.Rs.h_channel then
          report ~subject "hroute keyed under channel %d but records channel %d" ch
            hr.Rs.h_channel;
        if hr.Rs.h_channel < 0 || hr.Rs.h_channel >= n_channels then
          report ~subject "hroute channel %d out of range" hr.Rs.h_channel
        else if hr.Rs.h_track < 0 || hr.Rs.h_track >= arch.Arch.tracks then
          report ~subject "hroute track %d out of range" hr.Rs.h_track
        else begin
          let segs = Arch.hsegments arch ~channel:hr.Rs.h_channel ~track:hr.Rs.h_track in
          if hr.Rs.h_slo < 0 || hr.Rs.h_shi >= Array.length segs || hr.Rs.h_slo > hr.Rs.h_shi
          then
            report ~subject "hroute run [%d..%d] does not fit the %d-segment track"
              hr.Rs.h_slo hr.Rs.h_shi (Array.length segs)
          else begin
            let covered = I.make segs.(hr.Rs.h_slo).I.lo segs.(hr.Rs.h_shi).I.hi in
            if not (I.covers covered hr.Rs.h_span) then
              report ~subject "channel %d run %s does not cover demand span %s"
                hr.Rs.h_channel (I.to_string covered) (I.to_string hr.Rs.h_span);
            for s = hr.Rs.h_slo to hr.Rs.h_shi do
              list_seg listed_h (hr.Rs.h_channel, hr.Rs.h_track, s) net
                (Printf.sprintf "horizontal segment (%d,%d,%d)" hr.Rs.h_channel hr.Rs.h_track
                   s)
            done
          end
        end)
      (Rs.h_routes st net)
  done;
  (* --- pass 2: owner arrays vs the listed segments, both directions --- *)
  for ch = 0 to n_channels - 1 do
    for tr = 0 to arch.Arch.tracks - 1 do
      let segs = Arch.hsegments arch ~channel:ch ~track:tr in
      for s = 0 to Array.length segs - 1 do
        let owner = Rs.hseg_owner st ~channel:ch ~track:tr ~seg:s in
        match owner, Hashtbl.find_opt listed_h (ch, tr, s) with
        | -1, None -> ()
        | -1, Some n ->
          report ~subject:(net_subject n) "lists horizontal segment (%d,%d,%d) but it is free"
            ch tr s
        | o, None ->
          report
            ~subject:(Printf.sprintf "h segment (%d,%d,%d)" ch tr s)
            "owned by net %d but listed by no route" o
        | o, Some n when o <> n ->
          report
            ~subject:(Printf.sprintf "h segment (%d,%d,%d)" ch tr s)
            "owned by net %d but listed by net %d" o n
        | _, Some _ -> ()
      done
    done
  done;
  for col = 0 to arch.Arch.cols - 1 do
    for vt = 0 to arch.Arch.vtracks - 1 do
      let segs = Arch.vsegments arch ~col ~vtrack:vt in
      for s = 0 to Array.length segs - 1 do
        let owner = Rs.vseg_owner st ~col ~vtrack:vt ~seg:s in
        match owner, Hashtbl.find_opt listed_v (col, vt, s) with
        | -1, None -> ()
        | -1, Some n ->
          report ~subject:(net_subject n) "lists vertical segment (%d,%d,%d) but it is free"
            col vt s
        | o, None ->
          report
            ~subject:(Printf.sprintf "v segment (%d,%d,%d)" col vt s)
            "owned by net %d but listed by no route" o
        | o, Some n when o <> n ->
          report
            ~subject:(Printf.sprintf "v segment (%d,%d,%d)" col vt s)
            "owned by net %d but listed by net %d" o n
        | _, Some _ -> ()
      done
    done
  done;
  (* --- pass 3: mirrors vs an independent recomputation --- *)
  let ug_set = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace ug_set n ()) (Rs.u_g st);
  let ud_sets =
    Array.init n_channels (fun ch ->
        let tbl = Hashtbl.create 16 in
        List.iter (fun n -> Hashtbl.replace tbl n ()) (Rs.u_d st ch);
        tbl)
  in
  let expected_g = ref 0 and expected_d = ref 0 in
  let ud_census = Array.make n_channels 0 in
  for net = 0 to n_nets - 1 do
    let subject = net_subject net in
    let routable_expect = Array.length (Nl.net nl net).Nl.sinks >= 1 in
    if Rs.routable st net <> routable_expect then
      report ~subject "routable flag %b but the net has %d sinks" (Rs.routable st net)
        (Array.length (Nl.net nl net).Nl.sinks);
    if not routable_expect then begin
      if Rs.in_ug_flag st net || Rs.missing_channels st net <> []
         || Rs.global_route st net <> None
         || Rs.h_routes st net <> []
         || Rs.d_flag st net
      then report ~subject "unroutable net carries routing state"
    end
    else begin
      let pins = P.net_pin_positions place net in
      let chans = List.sort_uniq compare (List.map fst pins) in
      let needs_v_expect = List.length chans > 1 in
      if Rs.needs_global st net <> needs_v_expect then
        report ~subject "needs_v mirror %b but pins span %d channel(s)"
          (Rs.needs_global st net) (List.length chans);
      let vr = Rs.global_route st net in
      let in_ug_expect = needs_v_expect && vr = None in
      if Rs.in_ug_flag st net <> in_ug_expect then
        report ~subject "in_ug mirror %b, recomputation says %b" (Rs.in_ug_flag st net)
          in_ug_expect;
      if Hashtbl.mem ug_set net <> in_ug_expect then
        report ~subject "U_G table membership %b, recomputation says %b"
          (Hashtbl.mem ug_set net) in_ug_expect;
      if in_ug_expect then incr expected_g;
      let missing_expect =
        if in_ug_expect then begin
          (* A globally unrouted net must hold no detail state at all. *)
          if Rs.h_demands st net <> [] || Rs.h_routes st net <> []
             || Rs.missing_channels st net <> []
          then report ~subject "globally unrouted but carries detail state";
          []
        end
        else begin
          (match vr with
          | None -> ()
          | Some v ->
            let clo = List.fold_left min max_int chans
            and chi = List.fold_left max min_int chans in
            if not (I.covers v.Rs.v_span (I.make clo chi)) then
              report ~subject "spine span %s does not cover pin channels [%d..%d]"
                (I.to_string v.Rs.v_span) clo chi);
          let demands_expect =
            expected_demands pins (Option.map (fun v -> v.Rs.v_col) vr)
          in
          let demands = List.sort compare (Rs.h_demands st net) in
          if demands <> demands_expect then
            report ~subject "demands stale: recorded %s, recomputed %s"
              (String.concat ","
                 (List.map (fun (ch, sp) -> Printf.sprintf "%d:%s" ch (I.to_string sp)) demands))
              (String.concat ","
                 (List.map
                    (fun (ch, sp) -> Printf.sprintf "%d:%s" ch (I.to_string sp))
                    demands_expect));
          let routed_chs = List.map fst (Rs.h_routes st net) in
          List.iter
            (fun ch ->
              if not (List.mem_assoc ch demands_expect) then
                report ~subject "hroute in undemanded channel %d" ch)
            routed_chs;
          (* Span recorded on each completed route must match its demand. *)
          List.iter
            (fun (ch, hr) ->
              match List.assoc_opt ch demands_expect with
              | Some span when hr.Rs.h_span <> span ->
                report ~subject "channel %d hroute span %s stale (demand is %s)" ch
                  (I.to_string hr.Rs.h_span) (I.to_string span)
              | _ -> ())
            (Rs.h_routes st net);
          List.filter_map
            (fun (ch, _) -> if List.mem ch routed_chs then None else Some ch)
            demands_expect
        end
      in
      let missing = List.sort compare (Rs.missing_channels st net) in
      if missing <> missing_expect then
        report ~subject "missing mirror [%s], recomputation says [%s]"
          (String.concat ";" (List.map string_of_int missing))
          (String.concat ";" (List.map string_of_int missing_expect));
      List.iter
        (fun ch ->
          if ch >= 0 && ch < n_channels then begin
            ud_census.(ch) <- ud_census.(ch) + 1;
            if not (Hashtbl.mem ud_sets.(ch) net) then
              report ~subject "awaits channel %d but is absent from its U_D table" ch
          end
          else report ~subject "missing channel %d out of range" ch)
        missing_expect;
      let d_expect = in_ug_expect || missing_expect <> [] in
      if Rs.d_flag st net <> d_expect then
        report ~subject "d_flag mirror %b, recomputation says %b" (Rs.d_flag st net) d_expect;
      if d_expect then incr expected_d
    end
  done;
  if Rs.g_count st <> !expected_g then
    report ~subject:"counters" "G counter %d, recomputation says %d" (Rs.g_count st)
      !expected_g;
  if Rs.d_count st <> !expected_d then
    report ~subject:"counters" "D counter %d, recomputation says %d" (Rs.d_count st)
      !expected_d;
  (* U_D tables must not hold extra members beyond the census. *)
  Array.iteri
    (fun ch tbl ->
      let size = Hashtbl.length tbl in
      if size <> ud_census.(ch) then
        report
          ~subject:(Printf.sprintf "channel %d" ch)
          "U_D table holds %d nets, recomputation says %d" size ud_census.(ch))
    ud_sets;
  List.rev !findings
