(** Service-level fault injection for the [spr serve] job daemon.

    Where {!Crash} kills a single in-process run at an accepted-move
    index, this harness targets the whole service stack: worker
    processes killed mid-job, the daemon itself [kill -9]'d and
    restarted, clients vanishing mid-stream, and adversarial bytes
    thrown at the socket. Like {!Crash} it cannot depend on the serve
    layer (the dependency points the other way), so it is
    parameterized over closures that the test suite wires to real
    daemon processes.

    The headline property: a daemon killed outright once [k] snapshots
    of a job exist, then restarted, finishes that job with an outcome
    identical to the never-killed service ({!Crash.compare_outcomes}).
    On a mismatch the harness shrinks [k] toward 1 — earlier kills
    leave less recovered state and smaller counterexamples. *)

(** {1 Adversarial frame bytes}

    Raw byte strings that are {e not} valid frames, for throwing at the
    daemon socket: truncated or non-numeric length lines, absurd
    lengths, valid headers over non-JSON or truncated payloads, binary
    junk. The daemon must answer each with a structured error (or hang
    up), never die or corrupt another client's conversation. *)

val garbage_frames : rng:Spr_util.Rng.t -> n:int -> string list

(** {1 Fault vocabulary} *)

type fault =
  | Kill_worker  (** SIGKILL one job's worker; only that job may fail. *)
  | Kill_daemon  (** SIGKILL daemon and workers; restart must recover. *)
  | Client_disconnect  (** Drop a streaming client; its job keeps running. *)
  | Garbage_frame  (** Feed the socket bytes that are not a frame. *)

val fault_to_string : fault -> string

val all_faults : fault list

(** {1 Recovery equivalence} *)

type runner = {
  reference : unit -> (Crash.outcome, string) Stdlib.result;
      (** Run the job through a service that is never killed. *)
  interrupted : kill_after_snapshots:int -> (bool, string) Stdlib.result;
      (** Run the service and [kill -9] daemon + worker once the job's
          run directory holds at least this many snapshots. [Ok false]
          when the job finished before the kill point fired (vacuous
          pass). *)
  recover : unit -> (Crash.outcome, string) Stdlib.result;
      (** Restart the daemon over the same state directory and wait for
          the recovered job's outcome. *)
  reset : unit -> unit;  (** Wipe the interrupted service's state. *)
}

type failure = {
  f_kill_after : int;  (** Smallest failing snapshot count found. *)
  f_shrunk_from : int;
  f_error : string;
}

val failure_to_string : failure -> string

val check_recovery :
  ?attempts:int ->
  rng:Spr_util.Rng.t ->
  max_kill:int ->
  runner ->
  (unit, failure) Stdlib.result
(** Sample [attempts] (default 2) snapshot counts from [\[1, max_kill\]];
    for each, interrupt, recover, and compare against the reference
    (computed once). First mismatch shrinks toward 1. The harness never
    raises; closure exceptions become failures. *)
