module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Kind = Spr_netlist.Cell_kind

let run place =
  let arch = P.arch place in
  let nl = P.netlist place in
  let findings = ref [] in
  let report ~subject fmt =
    Printf.ksprintf
      (fun detail -> findings := { Finding.auditor = "place"; subject; detail } :: !findings)
      fmt
  in
  let rows = arch.Arch.rows and cols = arch.Arch.cols in
  let n_cells = Nl.n_cells nl in
  (* Forward direction: every cell sits on a distinct in-range slot that
     is legal for its kind and points back to it. *)
  let seen = Hashtbl.create 64 in
  for c = 0 to n_cells - 1 do
    let subject = Printf.sprintf "cell %d" c in
    let s = P.slot_of place c in
    if s.P.row < 0 || s.P.row >= rows || s.P.col < 0 || s.P.col >= cols then
      report ~subject "slot (%d,%d) outside the %dx%d fabric" s.P.row s.P.col rows cols
    else begin
      (match Hashtbl.find_opt seen (s.P.row, s.P.col) with
      | Some other -> report ~subject "shares slot (%d,%d) with cell %d" s.P.row s.P.col other
      | None -> Hashtbl.replace seen (s.P.row, s.P.col) c);
      (match P.cell_at place s with
      | Some c' when c' = c -> ()
      | Some c' -> report ~subject "slot (%d,%d) maps back to cell %d" s.P.row s.P.col c'
      | None -> report ~subject "slot (%d,%d) maps back to nobody" s.P.row s.P.col);
      let kind = (Nl.cell nl c).Nl.kind in
      if Kind.is_io kind && not (Arch.is_perimeter arch ~row:s.P.row ~col:s.P.col) then
        report ~subject "%s pad off the perimeter at (%d,%d)" (Kind.to_string kind) s.P.row
          s.P.col
    end;
    (* Pinmap assignment stays inside the cell's palette. *)
    let idx = P.pinmap_index place c in
    let size = P.palette_size place c in
    if idx < 0 || idx >= size then
      report ~subject "pinmap index %d outside palette of size %d" idx size
  done;
  (* Reverse direction: occupied slots census must equal the cell count
     and every occupant must claim that slot. *)
  let occupied = ref 0 in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      match P.cell_at place { P.row; col } with
      | None -> ()
      | Some c ->
        incr occupied;
        if c < 0 || c >= n_cells then
          report ~subject:(Printf.sprintf "slot (%d,%d)" row col) "holds unknown cell %d" c
        else begin
          let s = P.slot_of place c in
          if s.P.row <> row || s.P.col <> col then
            report
              ~subject:(Printf.sprintf "slot (%d,%d)" row col)
              "occupant %d claims slot (%d,%d)" c s.P.row s.P.col
        end
    done
  done;
  if !occupied <> n_cells then
    report ~subject:"occupancy" "%d occupied slots for %d cells" !occupied n_cells;
  List.rev !findings
