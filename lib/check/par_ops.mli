(** Differential property: the batched parallel reroute is
    observationally equal to the serial router.

    A {!state} is a pair of {!Spr_ops} twins built from the same seed —
    identical circuit, placement, initial routing and STA. Every random
    operation is applied to both; the only difference is the
    [Route_pass] implementation: the serial twin runs
    {!Spr_route.Router.reroute}, the parallel twin runs
    {!Spr_route.Parallel.reroute} on a real worker-domain pool. After
    each step both twins must pass their own full audits {e and} their
    observable fingerprints (placement, routing snapshot, critical
    delay) must be string-equal.

    Plugged into {!Prop.run} this shrinks any divergence to a minimal
    operation sequence, and the reported error quotes the first
    fingerprint line the twins disagree on — which names the net whose
    claim the conflict-checked commit mishandled, i.e. the minimal
    conflicting-net witness. *)

type op = Spr_ops.op

type state

val make : ?n_cells:int -> ?tracks:int -> seed:int -> unit -> state
(** Twin deterministic systems (see {!Spr_ops.make}); the parallel twin
    dispatches to a lazily created process-wide 3-worker pool (shut down
    at exit) so shrink replays do not leak domains. *)

val apply : state -> op -> unit

val check : state -> (unit, string) Stdlib.result

val spec : ?n_cells:int -> ?tracks:int -> unit -> (state, op) Prop.spec
(** The whole thing packaged for {!Prop.run}. *)
