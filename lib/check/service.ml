(* --- adversarial frame bytes --- *)

let junk_byte rng =
  (* Bias toward bytes that stress a parser: digits, braces, newlines,
     NULs, and high bits. *)
  match Spr_util.Rng.int rng 6 with
  | 0 -> Char.chr (Char.code '0' + Spr_util.Rng.int rng 10)
  | 1 -> [| '{'; '}'; '['; ']'; '"'; ':' |].(Spr_util.Rng.int rng 6)
  | 2 -> '\n'
  | 3 -> '\000'
  | 4 -> Char.chr (128 + Spr_util.Rng.int rng 128)
  | _ -> Char.chr (32 + Spr_util.Rng.int rng 95)

let junk rng len = String.init len (fun _ -> junk_byte rng)

let garbage_frames ~rng ~n =
  List.init n (fun _ ->
      match Spr_util.Rng.int rng 7 with
      | 0 ->
        (* Length line that never terminates. *)
        String.init (10 + Spr_util.Rng.int rng 20) (fun _ ->
            Char.chr (Char.code '0' + Spr_util.Rng.int rng 10))
      | 1 ->
        (* Non-numeric length line. *)
        junk rng (1 + Spr_util.Rng.int rng 6) ^ "\n"
      | 2 ->
        (* Absurd announced length. *)
        Printf.sprintf "%d\n" (1_000_000_000 + Spr_util.Rng.int rng 1_000_000_000)
      | 3 ->
        (* Valid header over a non-JSON payload. *)
        let p = junk rng (1 + Spr_util.Rng.int rng 40) in
        Printf.sprintf "%d\n%s" (String.length p) p
      | 4 ->
        (* Valid header, payload cut short (stream then closed). *)
        let p = "{\"req\":\"ping\"}" in
        Printf.sprintf "%d\n%s" (String.length p + 5 + Spr_util.Rng.int rng 100) p
      | 5 ->
        (* Negative length. *)
        Printf.sprintf "-%d\n" (1 + Spr_util.Rng.int rng 1000)
      | _ ->
        (* Pure binary junk. *)
        junk rng (1 + Spr_util.Rng.int rng 64))

(* --- fault vocabulary --- *)

type fault = Kill_worker | Kill_daemon | Client_disconnect | Garbage_frame

let fault_to_string = function
  | Kill_worker -> "kill-worker"
  | Kill_daemon -> "kill-daemon"
  | Client_disconnect -> "client-disconnect"
  | Garbage_frame -> "garbage-frame"

let all_faults = [ Kill_worker; Kill_daemon; Client_disconnect; Garbage_frame ]

(* --- recovery equivalence --- *)

type runner = {
  reference : unit -> (Crash.outcome, string) Stdlib.result;
  interrupted : kill_after_snapshots:int -> (bool, string) Stdlib.result;
  recover : unit -> (Crash.outcome, string) Stdlib.result;
  reset : unit -> unit;
}

type failure = {
  f_kill_after : int;
  f_shrunk_from : int;
  f_error : string;
}

let failure_to_string f =
  Printf.sprintf "service recovery failed at kill_after_snapshots=%d (shrunk from %d): %s"
    f.f_kill_after f.f_shrunk_from f.f_error

(* One interrupt+recover cycle. [Ok true]: property held. [Ok false]:
   vacuous (job finished first). [Error]: mismatch or harness trouble. *)
let attempt runner ~reference ~kill_after =
  match
    runner.reset ();
    match runner.interrupted ~kill_after_snapshots:kill_after with
    | Error e -> Error ("interrupt: " ^ e)
    | Ok false -> Ok false
    | Ok true -> (
      match runner.recover () with
      | Error e -> Error ("recover: " ^ e)
      | Ok got -> (
        match Crash.compare_outcomes ~reference got with
        | Ok () -> Ok true
        | Error e -> Error e))
  with
  | r -> r
  | exception exn -> Error ("runner raised: " ^ Printexc.to_string exn)

let check_recovery ?(attempts = 2) ~rng ~max_kill runner =
  let max_kill = max 1 max_kill in
  match runner.reference () with
  | Error e ->
    Error { f_kill_after = 0; f_shrunk_from = 0; f_error = "reference: " ^ e }
  | exception exn ->
    Error
      { f_kill_after = 0; f_shrunk_from = 0; f_error = "reference raised: " ^ Printexc.to_string exn }
  | Ok reference ->
    (* Same shrink discipline as {!Crash}: candidates 1 / half /
       predecessor, each replayed through a full interrupt+recover
       cycle, keeping the smallest that still fails. *)
    let shrink ~kill_after ~error =
      let rec go k err =
        let candidates =
          List.sort_uniq compare [ 1; k / 2; k - 1 ] |> List.filter (fun c -> c >= 1 && c < k)
        in
        let rec first_failing = function
          | [] -> None
          | c :: rest -> (
            match attempt runner ~reference ~kill_after:c with
            | Ok _ -> first_failing rest
            | Error e -> Some (c, e))
        in
        match first_failing candidates with
        | Some (c, e) -> go c e
        | None -> (k, err)
      in
      go kill_after error
    in
    let rec go i =
      if i >= attempts then Ok ()
      else
        let kill_after = 1 + Spr_util.Rng.int rng max_kill in
        match attempt runner ~reference ~kill_after with
        | Ok _ -> go (i + 1)
        | Error error ->
          let k, e = shrink ~kill_after ~error in
          Error { f_kill_after = k; f_shrunk_from = kill_after; f_error = e }
    in
    go 0
