module P = Spr_layout.Placement
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Gr = Spr_route.Global_router
module Dr = Spr_route.Detail_router
module Sta = Spr_timing.Sta
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module J = Spr_util.Journal
module Rng = Spr_util.Rng

type op =
  | Swap of int * int
  | Translate of int * int
  | Pinmap_move of int * int
  | Route_pass
  | Route_net of int
  | Unroute of int
  | Rip_cell of int
  | Begin
  | Commit
  | Rollback

let show_op = function
  | Swap (a, b) -> Printf.sprintf "Swap (%d, %d)" a b
  | Translate (c, s) -> Printf.sprintf "Translate (%d, %d)" c s
  | Pinmap_move (c, k) -> Printf.sprintf "Pinmap_move (%d, %d)" c k
  | Route_pass -> "Route_pass"
  | Route_net n -> Printf.sprintf "Route_net %d" n
  | Unroute n -> Printf.sprintf "Unroute %d" n
  | Rip_cell c -> Printf.sprintf "Rip_cell %d" c
  | Begin -> "Begin"
  | Commit -> "Commit"
  | Rollback -> "Rollback"

type state = {
  place : P.t;
  rs : Rs.t;
  sta : Sta.t;
  j : J.t;
  reroute : Rs.t -> J.t -> int list;  (** The [Route_pass] implementation. *)
  mutable txn : (int * string) option;  (** Journal mark and snapshot at [Begin]. *)
  mutable violation : string option;
}

(* Observable-state fingerprint: placement slots and pinmaps, the full
   routing snapshot, and the timing bottom line. Two states are
   journal-rollback-equivalent iff these strings are equal. *)
let full_snapshot st =
  let buf = Buffer.create 8192 in
  let n = Nl.n_cells (P.netlist st.place) in
  for c = 0 to n - 1 do
    let s = P.slot_of st.place c in
    Buffer.add_string buf
      (Printf.sprintf "cell %d @ (%d,%d) pinmap %d\n" c s.P.row s.P.col
         (P.pinmap_index st.place c))
  done;
  Buffer.add_string buf (Rs.snapshot st.rs);
  Buffer.add_string buf (Printf.sprintf "critical %.12f\n" (Sta.critical_delay st.sta));
  Buffer.contents buf

let make ?(n_cells = 44) ?(tracks = 14) ?(reroute = fun rs j -> Router.reroute rs j) ~seed
    () =
  let nl = Spr_netlist.Generator.generate (Spr_netlist.Generator.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let place = P.create_exn arch nl ~rng:(Rng.create ((seed * 7919) + 1)) in
  let rs = Rs.create place in
  Router.route_all ~passes:2 rs;
  let sta = Sta.create Spr_timing.Delay_model.default rs in
  { place; rs; sta; j = J.create (); reroute; txn = None; violation = None }

let route_state st = st.rs

let snapshot st = full_snapshot st

let sta_dirty st nets =
  if nets <> [] then Sta.invalidate st.sta st.j (List.sort_uniq compare nets)

let apply st op =
  let arch = P.arch st.place in
  let nl = P.netlist st.place in
  let n_cells = Nl.n_cells nl and n_nets = Nl.n_nets nl in
  let n_slots = Arch.n_slots arch in
  let slot_of_code x =
    let e = x mod n_slots in
    { P.row = e / arch.Arch.cols; col = e mod arch.Arch.cols }
  in
  match op with
  | Swap (a, b) ->
    let sa = slot_of_code a and sb = slot_of_code b in
    if sa <> sb && P.swap_legal st.place sa sb then begin
      let occupants = List.filter_map (fun s -> P.cell_at st.place s) [ sa; sb ] in
      P.swap_slots st.place sa sb;
      J.record st.j (fun () -> P.swap_slots st.place sa sb);
      sta_dirty st
        (List.concat_map (fun cell -> Router.rip_up_cell st.rs st.j cell) occupants)
    end
  | Translate (c, s) ->
    let cell = c mod n_cells in
    let target = slot_of_code s in
    let src = P.slot_of st.place cell in
    if target <> src && P.cell_at st.place target = None
       && P.legal_at st.place ~cell target
    then begin
      P.swap_slots st.place src target;
      J.record st.j (fun () -> P.swap_slots st.place src target);
      sta_dirty st (Router.rip_up_cell st.rs st.j cell)
    end
  | Pinmap_move (c, shift) ->
    let cell = c mod n_cells in
    let size = P.palette_size st.place cell in
    if size >= 2 then begin
      let old_idx = P.pinmap_index st.place cell in
      let idx = (old_idx + shift) mod size in
      if idx <> old_idx then begin
        P.set_pinmap st.place ~cell ~index:idx;
        J.record st.j (fun () -> P.set_pinmap st.place ~cell ~index:old_idx);
        sta_dirty st (Router.rip_up_cell st.rs st.j cell)
      end
    end
  | Route_pass -> sta_dirty st (st.reroute st.rs st.j)
  | Route_net n ->
    let net = n mod n_nets in
    let touched = ref false in
    if List.mem net (Rs.u_g st.rs) then
      if Gr.attempt st.rs st.j net then touched := true;
    List.iter
      (fun channel -> if Dr.attempt st.rs st.j ~net ~channel then touched := true)
      (Rs.missing_channels st.rs net);
    if !touched then sta_dirty st [ net ]
  | Unroute n ->
    let net = n mod n_nets in
    Rs.rip_up st.rs st.j net;
    sta_dirty st [ net ]
  | Rip_cell c -> sta_dirty st (Router.rip_up_cell st.rs st.j (c mod n_cells))
  | Begin -> if st.txn = None then st.txn <- Some (J.mark st.j, full_snapshot st)
  | Commit -> (
    match st.txn with
    | None -> ()
    | Some _ ->
      J.commit st.j;
      st.txn <- None)
  | Rollback -> (
    match st.txn with
    | None -> ()
    | Some (mark, before) ->
      J.rollback_to st.j mark;
      st.txn <- None;
      if full_snapshot st <> before then
        st.violation <- Some "rollback did not restore the pre-transaction state")

let check st =
  match st.violation with
  | Some e -> Error e
  | None -> (
    match Audit.run_all ~sta:st.sta st.rs with
    | [] -> Ok ()
    | f :: _ -> Error (Finding.to_string f))

(* Operation mix: placement perturbations and routing traffic dominate,
   with enough transaction control that rollbacks regularly cover long
   mutation cascades. *)
let gen rng =
  match Rng.int rng 100 with
  | x when x < 16 -> Swap (Rng.int rng 1_000_000, Rng.int rng 1_000_000)
  | x when x < 28 -> Translate (Rng.int rng 1_000_000, Rng.int rng 1_000_000)
  | x when x < 38 -> Pinmap_move (Rng.int rng 1_000_000, 1 + Rng.int rng 3)
  | x when x < 50 -> Route_net (Rng.int rng 1_000_000)
  | x when x < 58 -> Route_pass
  | x when x < 70 -> Unroute (Rng.int rng 1_000_000)
  | x when x < 78 -> Rip_cell (Rng.int rng 1_000_000)
  | x when x < 86 -> Begin
  | x when x < 93 -> Commit
  | _ -> Rollback

let spec ?n_cells ?tracks () =
  {
    Prop.name = "incremental SPR state vs full-state audit";
    init = (fun seed -> make ?n_cells ?tracks ~seed ());
    gen;
    apply;
    check;
    show = show_op;
  }
