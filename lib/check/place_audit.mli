(** Full-state placement auditor.

    Recomputes, from the public placement accessors alone, everything the
    placement promises structurally and diffs it against the state's own
    answers: the cell/slot occupancy bijection, I/O perimeter legality,
    and pinmap palette membership. Independent of
    {!Spr_layout.Placement.check} — this is the external oracle. *)

val run : Spr_layout.Placement.t -> Finding.t list
(** Empty when the placement is sound. O(slots + cells). *)
