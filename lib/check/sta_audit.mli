(** Timing auditor: from-scratch levelized recompute of every net delay
    and arrival time, diffed against the incremental analyzer's answers.

    The incremental STA propagates arrival changes through a frontier and
    stops where outputs stop moving; a missed invalidation leaves stale
    arrivals that bias every subsequent cost decision. This auditor
    rebuilds the full timing picture independently — levelization, net
    delays via {!Spr_timing.Net_delay.sink_delays}, arrivals in level
    order — and compares per-cell output arrivals and the critical delay
    within [eps]. *)

val run : ?eps:float -> Spr_timing.Sta.t -> Spr_route.Route_state.t -> Finding.t list
(** [run sta rs] — [rs] must be the state [sta] was created over.
    Default [eps] is [1e-6] ns. Empty when the incremental arrivals match
    the oracle. Cost: one full STA. *)
