type t = {
  auditor : string;
  subject : string;
  detail : string;
}

let v ~auditor ~subject fmt =
  Printf.ksprintf (fun detail -> { auditor; subject; detail }) fmt

let to_string f = Printf.sprintf "[%s] %s: %s" f.auditor f.subject f.detail

let pp ppf f = Format.pp_print_string ppf (to_string f)

let summarize = function
  | [] -> "zero findings"
  | fs -> String.concat "\n" (List.map to_string fs)
