(** Full-state routing auditor: the from-scratch oracle for the
    incremental {!Spr_route.Route_state} bookkeeping.

    Every annealing move is evaluated through O(1) mirrors ([in_ug],
    [missing], [d_flag], the U{_G}/U{_D,R} tables and the G/D counters) —
    one stale mirror silently corrupts every subsequent cost decision.
    This auditor recomputes the whole picture from first principles
    (the segment owner arrays, the recorded per-net routes, and the
    current placement's pin positions) and diffs it against the mirrors.
    Free-epoch stamps are deliberately ignored: they memoize failures and
    a stale stamp only costs a redundant attempt, never correctness.

    Checks performed:
    - segment ownership is conflict-free and agrees, in both directions,
      with the routes recorded per net;
    - every recorded route fits its channel/track segmentation (indices
      in range, claimed runs contiguous, covered span covers the demand);
    - per-net demands equal an independent recomputation from the current
      pin positions and spine column;
    - the [needs_v]/[in_ug]/[missing]/[d_flag] mirrors, both queue
      tables, and the G/D counters all match the recomputation. *)

val run : Spr_route.Route_state.t -> Finding.t list
(** Empty when the routing state is sound. O(fabric + nets). *)
