type outcome = {
  o_layout : string;
  o_g : int;
  o_d : int;
  o_critical_delay : float;
}

let compare_outcomes ~reference got =
  if reference.o_g <> got.o_g then
    Error (Printf.sprintf "G: reference %d, resumed %d" reference.o_g got.o_g)
  else if reference.o_d <> got.o_d then
    Error (Printf.sprintf "D: reference %d, resumed %d" reference.o_d got.o_d)
  else if reference.o_critical_delay <> got.o_critical_delay then
    Error
      (Printf.sprintf "critical delay: reference %.17g, resumed %.17g"
         reference.o_critical_delay got.o_critical_delay)
  else if not (String.equal reference.o_layout got.o_layout) then
    Error "layouts differ (identical cost components)"
  else Ok ()

type runner = {
  reference : unit -> outcome;
  crashed : kill_after:int -> bool;
  resume : unit -> (outcome, string) Stdlib.result;
  reset : unit -> unit;
}

type failure = {
  f_kill_after : int;
  f_shrunk_from : int;
  f_error : string;
}

let failure_to_string f =
  Printf.sprintf "crash-equivalence failed at kill_after=%d (shrunk from %d): %s" f.f_kill_after
    f.f_shrunk_from f.f_error

(* One full crash+resume cycle at a given kill index. [Ok true] means
   the property held (or the kill point was never reached), [Error]
   carries the mismatch. Closure exceptions are failures, not crashes of
   the harness. *)
let attempt runner ~kill_after =
  match
    runner.reset ();
    if runner.crashed ~kill_after then begin
      match runner.resume () with
      | Error e -> Error ("resume: " ^ e)
      | Ok got -> (
        match compare_outcomes ~reference:(runner.reference ()) got with
        | Ok () -> Ok ()
        | Error e -> Error e)
    end
    else Ok ()
  with
  | r -> r
  | exception exn -> Error ("exception: " ^ Printexc.to_string exn)

(* Shrink a failing kill index toward 1: at each step try the classic
   integer-shrink candidates (1, half, predecessor) and keep the
   smallest one that still fails. Every candidate costs a full
   crash+resume cycle, so the candidate list is deliberately short. *)
let shrink runner ~kill_after ~error =
  let rec go k err =
    let candidates =
      List.sort_uniq compare [ 1; k / 2; k - 1 ] |> List.filter (fun c -> c >= 1 && c < k)
    in
    let rec first_failing = function
      | [] -> None
      | c :: rest -> (
        match attempt runner ~kill_after:c with
        | Ok () -> first_failing rest
        | Error e -> Some (c, e))
    in
    match first_failing candidates with
    | Some (c, e) -> go c e
    | None -> (k, err)
  in
  go kill_after error

let check_equivalence ?(attempts = 3) ~rng ~max_kill runner =
  let max_kill = max 1 max_kill in
  let rec loop i =
    if i >= attempts then Ok ()
    else begin
      let kill_after = 1 + Spr_util.Rng.int rng max_kill in
      match attempt runner ~kill_after with
      | Ok () -> loop (i + 1)
      | Error error ->
        let k, e = shrink runner ~kill_after ~error in
        Error { f_kill_after = k; f_shrunk_from = kill_after; f_error = e }
    end
  in
  loop 0

(* --- corruption injectors --- *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text)

let truncate_file path ~keep =
  let text = read_all path in
  let keep = max 0 (min keep (String.length text)) in
  write_all path (String.sub text 0 keep)

let flip_byte path ~at =
  let text = read_all path in
  if String.length text = 0 then ()
  else begin
    let at = max 0 (min at (String.length text - 1)) in
    let b = Bytes.of_string text in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
    write_all path (Bytes.to_string b)
  end
