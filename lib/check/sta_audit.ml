module Rs = Spr_route.Route_state
module Nl = Spr_netlist.Netlist
module Kind = Spr_netlist.Cell_kind
module Sta = Spr_timing.Sta
module Dm = Spr_timing.Delay_model

let run ?(eps = 1e-6) sta rs =
  let nl = Rs.netlist rs in
  let dm = Sta.delay_model sta in
  let findings = ref [] in
  let report ~subject fmt =
    Printf.ksprintf
      (fun detail -> findings := { Finding.auditor = "sta"; subject; detail } :: !findings)
      fmt
  in
  match Spr_netlist.Levelize.run nl with
  | Error e ->
    [ { Finding.auditor = "sta"; subject = "netlist"; detail = "not levelizable: " ^ e } ]
  | Ok lev ->
    let n_cells = Nl.n_cells nl in
    let net_delays =
      Array.init (Nl.n_nets nl) (fun net -> Spr_timing.Net_delay.sink_delays dm rs net)
    in
    let sink_delay_of cell pin net =
      let sinks = (Nl.net nl net).Nl.sinks in
      let rec find i =
        if i >= Array.length sinks then None
        else if sinks.(i) = (cell, pin) then Some net_delays.(net).(i)
        else find (i + 1)
      in
      find 0
    in
    let arr = Array.make n_cells 0.0 in
    let is_source c =
      let cell = Nl.cell nl c in
      Kind.is_timing_source cell.Nl.kind || cell.Nl.n_inputs = 0
    in
    let arrival_in c =
      let worst = ref 0.0 in
      Array.iteri
        (fun pin net ->
          let d = (Nl.net nl net).Nl.driver in
          match sink_delay_of c pin net with
          | None ->
            report ~subject:(Printf.sprintf "cell %d" c)
              "input pin %d absent from the sinks of net %d" pin net
          | Some dly ->
            let a = arr.(d) +. dly in
            if a > !worst then worst := a)
        (Nl.in_nets nl c);
      !worst
    in
    (* Oracle pass: arrivals in level order, exactly the paper's §3.5
       levelized propagation but with no incrementality at all. *)
    Array.iter
      (fun c ->
        let kind = (Nl.cell nl c).Nl.kind in
        if Kind.has_output kind then
          arr.(c) <-
            (if is_source c then Dm.intrinsic dm kind
             else arrival_in c +. Dm.intrinsic dm kind))
      lev.Spr_netlist.Levelize.order;
    (* Diff per-cell output arrivals. *)
    for c = 0 to n_cells - 1 do
      if Kind.has_output (Nl.cell nl c).Nl.kind then begin
        let inc = Sta.arrival_out sta c in
        if Float.abs (inc -. arr.(c)) > eps then
          report ~subject:(Printf.sprintf "cell %d" c)
            "incremental arrival %.9f ns, oracle %.9f ns" inc arr.(c)
      end
    done;
    (* Diff the critical delay over the timing sinks. *)
    let crit_oracle =
      Array.fold_left
        (fun acc c -> Float.max acc (arrival_in c))
        0.0 (Sta.timing_sinks sta)
    in
    let crit_inc = Sta.critical_delay sta in
    if Float.abs (crit_inc -. crit_oracle) > eps then
      report ~subject:"critical delay" "incremental %.9f ns, oracle %.9f ns" crit_inc
        crit_oracle;
    List.rev !findings
