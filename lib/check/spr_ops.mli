(** Random-operation machinery for differential testing of the
    incremental SPR state.

    A {!state} bundles a real placement, routing state and incremental
    STA sharing one journal — the same triple the simultaneous tool
    anneals over. Operations mirror the tool's move set (cell swaps,
    translations to vacant slots, pinmap moves, incremental route /
    unroute, whole reroute passes) plus explicit journal transaction
    control (begin / commit / rollback). Every mutating operation also
    feeds the STA invalidation, exactly as the tool's move transaction
    does, so the full incremental stack is exercised.

    After each operation the state must pass {!Audit.run_all}; a
    [Rollback] additionally requires the observable state to equal the
    snapshot taken at [Begin] (the undo round-trip contract). Plug
    {!spec} into {!Prop.run} to get seeded, shrinking property tests
    over all of this. *)

type op =
  | Swap of int * int  (** Two raw slot codes (reduced mod fabric size). *)
  | Translate of int * int  (** Cell code, target slot code. *)
  | Pinmap_move of int * int  (** Cell code, palette shift. *)
  | Route_pass  (** One incremental {!Spr_route.Router.reroute} pass. *)
  | Route_net of int  (** Global + detailed attempts for one net. *)
  | Unroute of int  (** {!Spr_route.Route_state.rip_up} one net. *)
  | Rip_cell of int  (** Rip every net attached to a cell. *)
  | Begin
  | Commit
  | Rollback

val show_op : op -> string

type state

val make :
  ?n_cells:int ->
  ?tracks:int ->
  ?reroute:(Spr_route.Route_state.t -> Spr_util.Journal.t -> int list) ->
  seed:int ->
  unit ->
  state
(** Deterministic system: a generated [n_cells] circuit (default 44) on
    a [tracks]-per-channel fabric (default 14), randomly placed, given
    two initial routing passes, with a fresh incremental STA.
    [?reroute] substitutes the [Route_pass] implementation (default the
    serial {!Spr_route.Router.reroute}) — {!Par_ops} plugs the batched
    parallel reroute in here to build its differential twin. *)

val apply : state -> op -> unit

val gen : Spr_util.Rng.t -> op
(** The operation mix (placement perturbations and routing traffic
    dominate, with regular transaction control). State-independent, so
    sequences shrink by deletion. *)

val snapshot : state -> string
(** The observable-state fingerprint: placement slots and pinmaps, the
    full routing snapshot, and the timing bottom line. Two states are
    behaviourally equal iff their fingerprints are equal. *)

val check : state -> (unit, string) Stdlib.result
(** A pending rollback-mismatch violation if one occurred, else the
    first finding of {!Audit.run_all} (place + route + STA). *)

val route_state : state -> Spr_route.Route_state.t

val spec : ?n_cells:int -> ?tracks:int -> unit -> (state, op) Prop.spec
(** The whole thing packaged for {!Prop.run}. *)
