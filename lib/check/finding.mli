(** One discrepancy reported by an auditor.

    Auditors never raise on a broken invariant — they collect every
    finding they can see, so a single audit pass paints the whole
    picture of a corruption (one stale mirror usually trips several
    checks at once). *)

type t = {
  auditor : string;  (** ["place"], ["route"] or ["sta"]. *)
  subject : string;  (** The entity at fault, e.g. ["net 17"]. *)
  detail : string;
}

val v : auditor:string -> subject:string -> ('a, unit, string, t) format4 -> 'a
(** [v ~auditor ~subject fmt ...] builds a finding with a printf-style
    detail message. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val summarize : t list -> string
(** ["zero findings"] or one line per finding. *)
