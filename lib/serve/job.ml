module J = Spr_obs.Json

type spec = {
  label : string;
  circuit : string option;
  blif : string option;
  tracks : int;
  scheme : string;
  seed : int;
  effort : string;
  flow : string;
  replicas : int;
  exchange : string;
  scheduler : string;
  time_budget : float option;
  max_moves : int option;
}

let default_spec =
  {
    label = "job";
    circuit = None;
    blif = None;
    tracks = 28;
    scheme = "actel";
    seed = 1;
    effort = "quick";
    flow = "sa";
    replicas = 1;
    exchange = "independent";
    scheduler = "barrier";
    time_budget = None;
    max_moves = None;
  }

let validate_spec s =
  let errors = ref [] in
  let reject fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (match s.circuit, s.blif with
  | None, None -> reject "provide a circuit name or BLIF text"
  | Some _, Some _ -> reject "provide a circuit name or BLIF text, not both"
  | Some name, None ->
    if Spr_netlist.Circuits.find name = None then reject "unknown circuit %s" name
  | None, Some _ -> ());
  if s.tracks < 1 then reject "tracks must be >= 1 (got %d)" s.tracks;
  if s.replicas < 1 then reject "replicas must be >= 1 (got %d)" s.replicas;
  if Spr_experiments.Profiles.effort_of_string s.effort = None then
    reject "effort must be quick|standard|thorough (got %s)" s.effort;
  if Spr_arch.Segmentation.scheme_of_string s.scheme = None then
    reject "unknown segmentation scheme %s" s.scheme;
  (match Spr_anneal.Portfolio.exchange_of_string s.exchange with
  | Ok _ -> ()
  | Error e -> reject "%s" e);
  (match Spr_core.Tool.Config.scheduler_of_string s.scheduler with
  | Ok _ -> ()
  | Error e -> reject "%s" e);
  (match s.time_budget with
  | Some b when not (Float.is_finite b && b > 0.0) ->
    reject "time_budget must be positive seconds (got %g)" b
  | _ -> ());
  (match s.max_moves with
  | Some m when m < 0 -> reject "max_moves must be >= 0 (got %d)" m
  | _ -> ());
  (* Admission-time config validation: decode the spec into the same
     tool config the worker will build and run it through the smart
     constructor, so a bad flow preset (or any other config-level
     problem) is a clear protocol error now, not a forked worker dying
     later. Skipped when field-level checks already failed — the config
     could not be built meaningfully. *)
  (if !errors = [] then
     let effort =
       match Spr_experiments.Profiles.effort_of_string s.effort with
       | Some e -> e
       | None -> Spr_experiments.Profiles.Quick
     in
     let exchange =
       match Spr_anneal.Portfolio.exchange_of_string s.exchange with
       | Ok e -> e
       | Error _ -> Spr_anneal.Portfolio.Independent
     in
     let kind, sync =
       match Spr_core.Tool.Config.scheduler_of_string s.scheduler with
       | Ok ks -> ks
       | Error _ -> (`Barrier, true)
     in
     let config =
       Spr_experiments.Profiles.tool_config ~seed:s.seed effort ~n:100
       |> Spr_core.Tool.Config.with_flow_preset s.flow
       |> Spr_core.Tool.Config.with_replicas ~exchange s.replicas
       |> Spr_core.Tool.Config.with_scheduler_kind ~sync kind
     in
     match Spr_core.Tool.Config.validated config with
     | Ok _ -> ()
     | Error e -> reject "%s" e);
  match !errors with
  | [] -> Ok s
  | errs -> Error (String.concat "; " (List.rev errs))

type state = Queued | Running of int | Parked | Done of string | Failed of string | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running pid -> Printf.sprintf "running (pid %d)" pid
  | Parked -> "parked"
  | Done status -> "done: " ^ status
  | Failed e -> "failed: " ^ e
  | Cancelled -> "cancelled"

type t = {
  id : string;
  spec : spec;
  mutable state : state;
  submitted_at : float;
  mutable updated_at : float;
}

(* --- JSON --- *)

let opt f = function None -> J.Null | Some v -> f v

let spec_to_json s =
  J.Obj
    [
      ("label", J.String s.label);
      ("circuit", opt (fun c -> J.String c) s.circuit);
      ("blif", opt (fun b -> J.String b) s.blif);
      ("tracks", J.Int s.tracks);
      ("scheme", J.String s.scheme);
      ("seed", J.Int s.seed);
      ("effort", J.String s.effort);
      ("flow", J.String s.flow);
      ("replicas", J.Int s.replicas);
      ("exchange", J.String s.exchange);
      ("scheduler", J.String s.scheduler);
      ("time_budget", opt (fun b -> J.Float b) s.time_budget);
      ("max_moves", opt (fun m -> J.Int m) s.max_moves);
    ]

exception Decode of string

let get j name =
  match J.member name j with Some v -> v | None -> raise (Decode ("missing field " ^ name))

let dstr j name =
  match J.to_str (get j name) with
  | Some s -> s
  | None -> raise (Decode ("field " ^ name ^ ": expected string"))

let dint j name =
  match J.to_int (get j name) with
  | Some i -> i
  | None -> raise (Decode ("field " ^ name ^ ": expected int"))

let dfloat j name =
  match J.to_float (get j name) with
  | Some f -> f
  | None -> raise (Decode ("field " ^ name ^ ": expected number"))

let dopt j name conv =
  match J.member name j with
  | None | Some J.Null -> None
  | Some v -> (
    match conv v with
    | Some x -> Some x
    | None -> raise (Decode ("field " ^ name ^ ": bad value")))

let wrap_decode f j =
  match f j with
  | v -> Ok v
  | exception Decode msg -> Error msg
  | exception exn -> Error ("malformed job record: " ^ Printexc.to_string exn)

let spec_of_json =
  wrap_decode (fun j ->
      {
        label = dstr j "label";
        circuit = dopt j "circuit" J.to_str;
        blif = dopt j "blif" J.to_str;
        tracks = dint j "tracks";
        scheme = dstr j "scheme";
        seed = dint j "seed";
        effort = dstr j "effort";
        (* Specs written before the flow field existed decode as the
           plain simultaneous anneal. *)
        flow = Option.value (dopt j "flow" J.to_str) ~default:"sa";
        replicas = dint j "replicas";
        exchange = dstr j "exchange";
        (* Specs written before the scheduler field existed decode as
           the all-active exchange barrier — the pre-racing behavior. *)
        scheduler = Option.value (dopt j "scheduler" J.to_str) ~default:"barrier";
        time_budget = dopt j "time_budget" J.to_float;
        max_moves = dopt j "max_moves" J.to_int;
      })

let state_to_json = function
  | Queued -> J.Obj [ ("st", J.String "queued") ]
  | Running pid -> J.Obj [ ("st", J.String "running"); ("pid", J.Int pid) ]
  | Parked -> J.Obj [ ("st", J.String "parked") ]
  | Done status -> J.Obj [ ("st", J.String "done"); ("status", J.String status) ]
  | Failed e -> J.Obj [ ("st", J.String "failed"); ("error", J.String e) ]
  | Cancelled -> J.Obj [ ("st", J.String "cancelled") ]

let state_of_json_exn j =
  match dstr j "st" with
  | "queued" -> Queued
  | "running" -> Running (dint j "pid")
  | "parked" -> Parked
  | "done" -> Done (dstr j "status")
  | "failed" -> Failed (dstr j "error")
  | "cancelled" -> Cancelled
  | st -> raise (Decode ("unknown job state " ^ st))

let schema = "spr-serve-job-1"

let to_json t =
  J.Obj
    [
      ("schema", J.String schema);
      ("id", J.String t.id);
      ("spec", spec_to_json t.spec);
      ("state", state_to_json t.state);
      ("submitted_at", J.Float t.submitted_at);
      ("updated_at", J.Float t.updated_at);
    ]

let of_json =
  wrap_decode (fun j ->
      let s = dstr j "schema" in
      if s <> schema then raise (Decode ("unknown job schema " ^ s));
      let spec =
        match spec_of_json (get j "spec") with Ok s -> s | Error e -> raise (Decode e)
      in
      {
        id = dstr j "id";
        spec;
        state = state_of_json_exn (get j "state");
        submitted_at = dfloat j "submitted_at";
        updated_at = dfloat j "updated_at";
      })

(* --- store --- *)

let jobs_root state_dir = Filename.concat state_dir "jobs"

let dir ~state_dir id = Filename.concat (jobs_root state_dir) id

let in_dir ~state_dir t name = Filename.concat (dir ~state_dir t.id) name

let run_dir ~state_dir t = in_dir ~state_dir t "run"

let design_file ~state_dir t = in_dir ~state_dir t "design.blif"

let outcome_file ~state_dir t = in_dir ~state_dir t "outcome.json"

let report_file ~state_dir t = in_dir ~state_dir t "report.json"

let trace_file ~state_dir t = in_dir ~state_dir t "trace.jsonl"

let layout_file ~state_dir t = in_dir ~state_dir t "layout.ckpt"

let log_file ~state_dir t = in_dir ~state_dir t "log.txt"

let job_file ~state_dir t = in_dir ~state_dir t "job.json"

let id_of_dirname name =
  if String.length name = 12 && String.sub name 0 4 = "job-" then
    int_of_string_opt (String.sub name 4 8)
  else None

let fresh_id ~state_dir =
  let next =
    match Sys.readdir (jobs_root state_dir) with
    | exception Sys_error _ -> 1
    | entries ->
      1 + Array.fold_left (fun hi e -> match id_of_dirname e with Some n -> max hi n | None -> hi) 0 entries
  in
  Printf.sprintf "job-%08d" next

let save ~state_dir t =
  Spr_util.Persist.atomic_write ~durable:true (job_file ~state_dir t)
    (J.to_string ~indent:true (to_json t) ^ "\n")

let create ~state_dir ~spec ~now =
  Spr_util.Persist.ensure_dir state_dir;
  Spr_util.Persist.ensure_dir (jobs_root state_dir);
  let id = fresh_id ~state_dir in
  let t = { id; spec; state = Queued; submitted_at = now; updated_at = now } in
  Spr_util.Persist.ensure_dir (dir ~state_dir id);
  (match spec.blif with
  | Some text -> Spr_util.Persist.atomic_write ~durable:true (design_file ~state_dir t) text
  | None -> ());
  save ~state_dir t;
  t

let scan ~state_dir =
  match Sys.readdir (jobs_root state_dir) with
  | exception Sys_error _ -> ([], [])
  | entries ->
    let jobs, bad =
      Array.to_list entries
      |> List.filter (fun e -> id_of_dirname e <> None)
      |> List.sort compare
      |> List.fold_left
           (fun (jobs, bad) id ->
             let path = Filename.concat (dir ~state_dir id) "job.json" in
             match Spr_util.Persist.read_file path with
             | Error e -> (jobs, Printf.sprintf "%s: %s" path e :: bad)
             | Ok text -> (
               match J.parse text with
               | Error e -> (jobs, Printf.sprintf "%s: %s" path e :: bad)
               | Ok j -> (
                 match of_json j with
                 | Error e -> (jobs, Printf.sprintf "%s: %s" path e :: bad)
                 | Ok job -> (job :: jobs, bad))))
           ([], [])
    in
    (List.rev jobs, List.rev bad)
