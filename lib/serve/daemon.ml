module J = Spr_obs.Json

type config = {
  state_dir : string;
  socket_path : string option;
  max_workers : int;
  max_queue : int;
  default_time_budget : float option;
  kill_grace : float;
  drain_grace : float;
  timeout_slack : float;
}

let default_config ~state_dir =
  {
    state_dir;
    socket_path = None;
    max_workers = 2;
    max_queue = 16;
    default_time_budget = None;
    kill_grace = 5.0;
    drain_grace = 10.0;
    timeout_slack = 5.0;
  }

let socket_path cfg =
  match cfg.socket_path with
  | Some p -> p
  | None -> Filename.concat cfg.state_dir "serve.sock"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Spr_util.Persist.ensure_dir dir
  end

(* How much unflushed output a slow subscriber may accumulate before
   its event frames start being dropped (terminal frames are always
   queued — job state is durable regardless). *)
let max_client_backlog = 1 lsl 20

type client = {
  cfd : Unix.file_descr;
  cdec : Frame.decoder;
  mutable cpending : string;  (* bytes accepted but not yet written *)
  mutable csub : string option;  (* job id this connection streams *)
  mutable cclose_when_flushed : bool;
  mutable cdead : bool;
}

type intent = I_run | I_cancel | I_drain | I_timeout

type runner = {
  r_job : Job.t;
  r_pid : int;
  mutable r_pipe : Unix.file_descr option;
  r_dec : Frame.decoder;
  mutable r_result : (string * J.t option) option;
  mutable r_error : string option;
  r_started : float;
  r_deadline : float option;
  mutable r_intent : intent;
  mutable r_termed_at : float option;
}

type state = {
  cfg : config;
  jobs : (string, Job.t) Hashtbl.t;
  queue : string Queue.t;
  running : (int, runner) Hashtbl.t;
  mutable clients : client list;
  mutable listen_fd : Unix.file_descr option;
  mutable draining : bool;
  mutable drain_started : float;
  mutable avg_job_s : float;  (* rolling mean of completed-job wall seconds *)
  mutable finished_jobs : int;
}

let now () = Unix.gettimeofday ()

let logf fmt = Printf.ksprintf (fun s -> Printf.eprintf "[spr-serve] %s\n%!" s) fmt

(* --- client output --- *)

let flush_client c =
  let n = String.length c.cpending in
  if n > 0 && not c.cdead then begin
    match Unix.write_substring c.cfd c.cpending 0 n with
    | w -> if w > 0 then c.cpending <- String.sub c.cpending w (n - w)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.cdead <- true
  end

let send c resp =
  if not c.cdead then begin
    let droppable = match resp with Protocol.Event _ -> true | _ -> false in
    if not (droppable && String.length c.cpending > max_client_backlog) then
      c.cpending <- c.cpending ^ Frame.encode (Protocol.response_to_json resp);
    flush_client c
  end

let send_final c resp =
  send c resp;
  c.cclose_when_flushed <- true

let subscriber st id = List.find_opt (fun c -> c.csub = Some id && not c.cdead) st.clients

let drop_client c =
  if not c.cdead then begin
    c.cdead <- true;
    try Unix.close c.cfd with Unix.Unix_error _ -> ()
  end

let prune_clients st =
  List.iter
    (fun c -> if c.cclose_when_flushed && c.cpending = "" && c.csub = None then drop_client c)
    st.clients;
  st.clients <- List.filter (fun c -> not c.cdead) st.clients

(* --- durable job transitions --- *)

let transition st (j : Job.t) state =
  j.Job.state <- state;
  j.Job.updated_at <- now ();
  Job.save ~state_dir:st.cfg.state_dir j

let notify_terminal st (j : Job.t) resp =
  match subscriber st j.Job.id with
  | None -> ()
  | Some c ->
    c.csub <- None;
    send_final c resp

(* --- starting workers --- *)

let start_job st (j : Job.t) =
  let state_dir = st.cfg.state_dir in
  mkdir_p (Job.dir ~state_dir j.Job.id);
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Child: drop every daemon fd so a dead daemon cannot keep the
       socket alive through its workers, then become the worker. *)
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      (r
      :: (match st.listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.map (fun c -> c.cfd) st.clients
      @ Hashtbl.fold
          (fun _ rn acc -> match rn.r_pipe with Some fd -> fd :: acc | None -> acc)
          st.running []);
    (try Worker.main ~state_dir ~job:j ~pipe:w with _ -> exit 125)
  | pid ->
    Unix.close w;
    Unix.set_nonblock r;
    transition st j (Job.Running pid);
    let deadline =
      Option.map (fun b -> now () +. b +. st.cfg.timeout_slack) j.Job.spec.Job.time_budget
    in
    Hashtbl.replace st.running pid
      {
        r_job = j;
        r_pid = pid;
        r_pipe = Some r;
        r_dec = Frame.decoder ();
        r_result = None;
        r_error = None;
        r_started = now ();
        r_deadline = deadline;
        r_intent = I_run;
        r_termed_at = None;
      };
    logf "%s: started worker pid %d" j.Job.id pid

let start_ready st =
  while
    (not st.draining)
    && Hashtbl.length st.running < st.cfg.max_workers
    && not (Queue.is_empty st.queue)
  do
    let id = Queue.pop st.queue in
    match Hashtbl.find_opt st.jobs id with
    | Some j when j.Job.state = Job.Queued -> start_job st j
    | Some _ | None -> ()  (* cancelled while queued *)
  done

(* --- worker pipe --- *)

let forward_event st rn ev =
  match subscriber st rn.r_job.Job.id with
  | Some c -> send c (Protocol.Event ev)
  | None -> ()

let pump_worker_frames st rn =
  let continue = ref true in
  while !continue do
    match Frame.next rn.r_dec with
    | `Need_more -> continue := false
    | `Corrupt msg ->
      if rn.r_error = None then rn.r_error <- Some ("worker stream corrupt: " ^ msg);
      continue := false
    | `Frame json -> (
      match Protocol.worker_of_json json with
      | Error e -> if rn.r_error = None then rn.r_error <- Some ("worker frame: " ^ e)
      | Ok (Protocol.W_event ev) -> forward_event st rn ev
      | Ok (Protocol.W_result { status; report }) -> rn.r_result <- Some (status, report)
      | Ok (Protocol.W_error msg) -> rn.r_error <- Some msg)
  done

let read_worker_pipe st rn =
  match rn.r_pipe with
  | None -> ()
  | Some fd -> (
    let buf = Bytes.create 65536 in
    let rec go () =
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        rn.r_pipe <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | n ->
        Frame.feed rn.r_dec (Bytes.sub_string buf 0 n);
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) ->
        rn.r_pipe <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ())
    in
    go ();
    pump_worker_frames st rn)

(* --- finishing jobs --- *)

(* [Unix.WSIGNALED] carries OCaml's Sys numbering (negative); name the
   common ones rather than leak that. *)
let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigbus then "SIGBUS"
  else "signal " ^ string_of_int n

let describe_exit = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited %d without a result" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by %s" (signal_name n)
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by %s" (signal_name n)

let is_interrupted status =
  String.length status >= 11 && String.sub status 0 11 = "interrupted"

let finalize st rn exit_status =
  read_worker_pipe st rn;
  (match rn.r_pipe with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    rn.r_pipe <- None
  | None -> ());
  let j = rn.r_job in
  let id = j.Job.id in
  let result =
    match rn.r_result with
    | Some r -> Some r
    | None -> (
      (* The daemon may have died and restarted between the worker's
         durable outcome write and its result frame — or the frame may
         have been lost to a pipe failure. The file is authoritative. *)
      match Worker.read_outcome (Job.outcome_file ~state_dir:st.cfg.state_dir j) with
      | Ok (`Ok (status, report)) -> Some (status, report)
      | Ok (`Error e) ->
        if rn.r_error = None then rn.r_error <- Some e;
        None
      | Error _ -> None)
  in
  (match result with
  | Some (status, report) -> (
    match rn.r_intent with
    | I_cancel when is_interrupted status ->
      transition st j Job.Cancelled;
      notify_terminal st j (Protocol.Job_cancelled id)
    | I_drain when is_interrupted status ->
      transition st j Job.Parked;
      notify_terminal st j
        (Protocol.Job_parked { id; message = "daemon draining; job resumes on restart" })
    | I_run | I_cancel | I_drain | I_timeout ->
      transition st j (Job.Done status);
      st.avg_job_s <-
        (let dur = now () -. rn.r_started in
         if st.finished_jobs = 0 then dur else (0.8 *. st.avg_job_s) +. (0.2 *. dur));
      st.finished_jobs <- st.finished_jobs + 1;
      notify_terminal st j (Protocol.Job_done { id; status; report }))
  | None -> (
    match rn.r_intent with
    | I_cancel ->
      transition st j Job.Cancelled;
      notify_terminal st j (Protocol.Job_cancelled id)
    | I_drain ->
      transition st j Job.Parked;
      notify_terminal st j
        (Protocol.Job_parked { id; message = "daemon draining; job resumes on restart" })
    | I_run | I_timeout ->
      let error = match rn.r_error with Some e -> e | None -> describe_exit exit_status in
      transition st j (Job.Failed error);
      notify_terminal st j (Protocol.Job_failed { id; error })));
  logf "%s: %s" id (Job.state_to_string j.Job.state);
  Hashtbl.remove st.running rn.r_pid

let reap st =
  let finished =
    Hashtbl.fold
      (fun pid rn acc ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> acc
        | _, status -> (rn, status) :: acc
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> (rn, Unix.WEXITED 0) :: acc)
      st.running []
  in
  List.iter (fun (rn, status) -> finalize st rn status) finished

let signal_worker rn signal =
  try Unix.kill rn.r_pid signal with Unix.Unix_error _ -> ()

let enforce_deadlines st =
  let t = now () in
  Hashtbl.iter
    (fun _ rn ->
      (match rn.r_deadline with
      | Some dl when t > dl && rn.r_intent = I_run ->
        logf "%s: past hard deadline, asking worker %d to stop" rn.r_job.Job.id rn.r_pid;
        rn.r_intent <- I_timeout;
        rn.r_termed_at <- Some t;
        signal_worker rn Sys.sigterm
      | _ -> ());
      match rn.r_termed_at with
      | Some at when t -. at > st.cfg.kill_grace ->
        logf "%s: worker %d ignored SIGTERM, killing" rn.r_job.Job.id rn.r_pid;
        rn.r_termed_at <- Some infinity;
        signal_worker rn Sys.sigkill
      | _ -> ())
    st.running

(* --- requests --- *)

let job_rows st =
  Hashtbl.fold (fun _ j acc -> j :: acc) st.jobs []
  |> List.sort (fun (a : Job.t) b -> compare a.Job.id b.Job.id)
  |> List.map (fun (j : Job.t) ->
         {
           Protocol.row_id = j.Job.id;
           row_label = j.Job.spec.Job.label;
           row_state = Job.state_to_string j.Job.state;
           row_submitted_at = j.Job.submitted_at;
           row_updated_at = j.Job.updated_at;
           row_pid = (match j.Job.state with Job.Running pid -> Some pid | _ -> None);
         })

let suggested_backoff st =
  let avg = if st.finished_jobs = 0 then 30.0 else st.avg_job_s in
  Float.max 1.0 (float_of_int (Queue.length st.queue + 1) *. avg /. float_of_int st.cfg.max_workers)

let handle_submit st c spec =
  if st.draining then send_final c (Protocol.Rejected Protocol.Draining)
  else
    match Job.validate_spec spec with
    | Error e -> send_final c (Protocol.Rejected (Protocol.Invalid e))
    | Ok spec ->
      if Queue.length st.queue >= st.cfg.max_queue then
        send_final c
          (Protocol.Rejected
             (Protocol.Overloaded
                { queued = Queue.length st.queue; backoff_s = suggested_backoff st }))
      else begin
        let spec =
          match spec.Job.time_budget, st.cfg.default_time_budget with
          | None, Some b -> { spec with Job.time_budget = Some b }
          | _ -> spec
        in
        let j = Job.create ~state_dir:st.cfg.state_dir ~spec ~now:(now ()) in
        Hashtbl.replace st.jobs j.Job.id j;
        Queue.push j.Job.id st.queue;
        c.csub <- Some j.Job.id;
        send c (Protocol.Accepted j.Job.id);
        logf "%s: accepted (%s)" j.Job.id spec.Job.label
      end

let handle_cancel st c id =
  match Hashtbl.find_opt st.jobs id with
  | None -> send_final c (Protocol.Error ("no such job: " ^ id))
  | Some j -> (
    match j.Job.state with
    | Job.Queued ->
      transition st j Job.Cancelled;
      notify_terminal st j (Protocol.Job_cancelled id);
      send_final c (Protocol.Job_cancelled id)
    | Job.Running pid -> (
      match Hashtbl.find_opt st.running pid with
      | Some rn ->
        rn.r_intent <- I_cancel;
        rn.r_termed_at <- Some (now ());
        signal_worker rn Sys.sigterm;
        send_final c (Protocol.Job_cancelled id)
      | None -> send_final c (Protocol.Error ("no live worker for " ^ id)))
    | Job.Parked | Job.Done _ | Job.Failed _ | Job.Cancelled ->
      send_final c (Protocol.Error (id ^ " is already " ^ Job.state_to_string j.Job.state)))

let handle_request st c = function
  | Protocol.Ping -> send_final c Protocol.Pong
  | Protocol.Jobs -> send_final c (Protocol.Jobs_list (job_rows st))
  | Protocol.Cancel id -> handle_cancel st c id
  | Protocol.Submit spec -> handle_submit st c spec

let read_client st c =
  let buf = Bytes.create 65536 in
  let rec fill () =
    match Unix.read c.cfd buf 0 (Bytes.length buf) with
    | 0 -> drop_client c  (* disconnect; a subscribed job keeps running *)
    | n ->
      Frame.feed c.cdec (Bytes.sub_string buf 0 n);
      fill ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
    | exception Unix.Unix_error (_, _, _) -> drop_client c
  in
  fill ();
  let continue = ref true in
  while !continue && not c.cdead do
    match Frame.next c.cdec with
    | `Need_more -> continue := false
    | `Corrupt msg ->
      (* Adversarial bytes cost the sender its connection, nothing
         more: reply with a structured error and hang up. *)
      send_final c (Protocol.Error ("corrupt frame: " ^ msg));
      c.csub <- None;
      continue := false
    | `Frame json -> (
      match Protocol.request_of_json json with
      | Error e -> send_final c (Protocol.Error ("bad request: " ^ e))
      | Ok req -> handle_request st c req)
  done

let accept_clients st =
  match st.listen_fd with
  | None -> ()
  | Some lfd -> (
    let rec go () =
      match Unix.accept lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        st.clients <-
          {
            cfd = fd;
            cdec = Frame.decoder ();
            cpending = "";
            csub = None;
            cclose_when_flushed = false;
            cdead = false;
          }
          :: st.clients;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ())

(* --- recovery --- *)

let recover st =
  let state_dir = st.cfg.state_dir in
  let jobs, diags = Job.scan ~state_dir in
  List.iter (fun d -> logf "recovery: skipping %s" d) diags;
  List.iter
    (fun (j : Job.t) ->
      Hashtbl.replace st.jobs j.Job.id j;
      match j.Job.state with
      | Job.Queued -> Queue.push j.Job.id st.queue
      | Job.Parked ->
        transition st j Job.Queued;
        Queue.push j.Job.id st.queue
      | Job.Running pid -> (
        let outcome () = Worker.read_outcome (Job.outcome_file ~state_dir j) in
        let apply = function
          | `Ok (status, _) -> transition st j (Job.Done status)
          | `Error e -> transition st j (Job.Failed e)
        in
        match outcome () with
        | Ok o ->
          (* The orphaned worker finished while no daemon was alive. *)
          apply o
        | Error _ -> (
          (* Fence: if the worker from the previous daemon still runs,
             kill it before resuming the job, so two workers never
             share a run directory. *)
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          match outcome () with
          | Ok o -> apply o
          | Error _ ->
            logf "recovery: %s interrupted (was pid %d), re-queued to resume" j.Job.id pid;
            transition st j Job.Queued;
            Queue.push j.Job.id st.queue))
      | Job.Done _ | Job.Failed _ | Job.Cancelled -> ())
    jobs

(* --- drain --- *)

let begin_drain st =
  if not st.draining then begin
    st.draining <- true;
    st.drain_started <- now ();
    logf "draining: %d running, %d queued" (Hashtbl.length st.running) (Queue.length st.queue);
    (match st.listen_fd with
    | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      st.listen_fd <- None
    | None -> ());
    Hashtbl.iter
      (fun _ rn ->
        if rn.r_intent = I_run || rn.r_intent = I_timeout then rn.r_intent <- I_drain;
        signal_worker rn Sys.sigterm)
      st.running
  end

let drain_enforce st =
  if st.draining && now () -. st.drain_started > st.cfg.drain_grace then
    Hashtbl.iter (fun _ rn -> signal_worker rn Sys.sigkill) st.running

(* --- main loop --- *)

let bind_socket path =
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fd

let run cfg =
  mkdir_p cfg.state_dir;
  mkdir_p (Job.jobs_root cfg.state_dir);
  let st =
    {
      cfg;
      jobs = Hashtbl.create 16;
      queue = Queue.create ();
      running = Hashtbl.create 8;
      clients = [];
      listen_fd = None;
      draining = false;
      drain_started = 0.0;
      avg_job_s = 0.0;
      finished_jobs = 0;
    }
  in
  recover st;
  let sock = socket_path cfg in
  st.listen_fd <- Some (bind_socket sock);
  let drain_req = ref false in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain_req := true)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> drain_req := true)) in
  logf "listening on %s (state %s)" sock cfg.state_dir;
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigpipe prev_pipe;
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      (match st.listen_fd with
      | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
      List.iter drop_client st.clients)
    (fun () ->
      let finished () = st.draining && Hashtbl.length st.running = 0 in
      while not (finished ()) do
        if !drain_req then begin_drain st;
        let reads =
          (match st.listen_fd with Some fd -> [ fd ] | None -> [])
          @ List.filter_map (fun c -> if c.cdead then None else Some c.cfd) st.clients
          @ Hashtbl.fold (fun _ rn acc -> match rn.r_pipe with Some fd -> fd :: acc | None -> acc)
              st.running []
        in
        let writes =
          List.filter_map
            (fun c -> if (not c.cdead) && c.cpending <> "" then Some c.cfd else None)
            st.clients
        in
        (match Unix.select reads writes [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, writable, _ ->
          (match st.listen_fd with
          | Some lfd when List.memq lfd readable -> accept_clients st
          | _ -> ());
          List.iter
            (fun c -> if (not c.cdead) && List.memq c.cfd readable then read_client st c)
            st.clients;
          List.iter
            (fun c -> if (not c.cdead) && List.memq c.cfd writable then flush_client c)
            st.clients;
          Hashtbl.iter
            (fun _ rn ->
              match rn.r_pipe with
              | Some fd when List.memq fd readable -> read_worker_pipe st rn
              | _ -> ())
            st.running);
        reap st;
        enforce_deadlines st;
        drain_enforce st;
        start_ready st;
        prune_clients st
      done;
      logf "drained, exiting")
