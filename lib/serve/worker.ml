module J = Spr_obs.Json

let outcome_schema = "spr-serve-outcome-1"

let outcome_to_json ~ok ~status ~error ~report =
  J.Obj
    [
      ("schema", J.String outcome_schema);
      ("ok", J.Bool ok);
      ("status", match status with Some s -> J.String s | None -> J.Null);
      ("error", match error with Some e -> J.String e | None -> J.Null);
      ("report", match report with Some r -> r | None -> J.Null);
    ]

let read_outcome path =
  match Spr_util.Persist.read_file path with
  | Error e -> Error e
  | Ok text -> (
    match J.parse text with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok j -> (
      let str name = Option.bind (J.member name j) J.to_str in
      match Option.bind (J.member "schema" j) J.to_str with
      | Some s when s = outcome_schema -> (
        match Option.bind (J.member "ok" j) (function J.Bool b -> Some b | _ -> None) with
        | Some true -> (
          match str "status" with
          | Some status ->
            let report =
              match J.member "report" j with None | Some J.Null -> None | Some r -> Some r
            in
            Ok (`Ok (status, report))
          | None -> Error (path ^ ": ok outcome without a status"))
        | Some false -> (
          match str "error" with
          | Some e -> Ok (`Error e)
          | None -> Error (path ^ ": failed outcome without an error"))
        | _ -> Error (path ^ ": missing ok flag"))
      | Some s -> Error (path ^ ": unknown outcome schema " ^ s)
      | None -> Error (path ^ ": missing schema")))

let write_outcome ~state_dir ~job json =
  Spr_util.Persist.atomic_write ~durable:true
    (Job.outcome_file ~state_dir job)
    (J.to_string ~indent:true json ^ "\n")

(* Serialize pipe writes: with a portfolio running, [on_event] fires on
   whichever replica domain emitted the event. After the first EPIPE
   (daemon gone) streaming stops for good but the run carries on — the
   durable outcome file is what recovery reads. *)
let make_streamer pipe =
  let lock = Mutex.create () in
  let dead = ref false in
  fun msg ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        if not !dead then
          try Frame.write pipe (Protocol.worker_to_json msg)
          with Unix.Unix_error _ | Sys_error _ -> dead := true)

let redirect_to_log ~state_dir ~job =
  let fd =
    Unix.openfile (Job.log_file ~state_dir job)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  Unix.dup2 fd Unix.stdout;
  Unix.dup2 fd Unix.stderr;
  Unix.close fd

let build_netlist (spec : Job.spec) ~state_dir ~job =
  match spec.Job.circuit with
  | Some name -> (
    match Spr_netlist.Circuits.find name with
    | Some _ -> Ok (Spr_netlist.Circuits.make_by_name name)
    | None -> Error ("unknown circuit " ^ name))
  | None -> (
    match Spr_util.Persist.read_file (Job.design_file ~state_dir job) with
    | Error e -> Error ("design.blif: " ^ e)
    | Ok text -> Spr_netlist.Blif.parse_string text)

let job_config (spec : Job.spec) ~state_dir ~job ~n ~stream =
  let open Spr_core.Tool.Config in
  let effort =
    match Spr_experiments.Profiles.effort_of_string spec.Job.effort with
    | Some e -> e
    | None -> Spr_experiments.Profiles.Quick
  in
  let exchange =
    match Spr_anneal.Portfolio.exchange_of_string spec.Job.exchange with
    | Ok e -> e
    | Error _ -> Spr_anneal.Portfolio.Independent
  in
  let sched_kind, sched_sync =
    match scheduler_of_string spec.Job.scheduler with
    | Ok ks -> ks
    | Error _ -> (`Barrier, true)
  in
  Spr_experiments.Profiles.tool_config ~seed:spec.Job.seed effort ~n
  |> with_flow_preset spec.Job.flow
  |> (match spec.Job.time_budget with Some b -> with_time_budget b | None -> Fun.id)
  |> (match spec.Job.max_moves with Some m -> with_max_moves m | None -> Fun.id)
  |> with_run_dir (Job.run_dir ~state_dir job)
  |> with_replicas ~exchange spec.Job.replicas
  |> with_scheduler_kind ~sync:sched_sync sched_kind
  |> with_run_label spec.Job.label
  |> with_trace_file (Job.trace_file ~state_dir job)
  |> with_report_file (Job.report_file ~state_dir job)
  |> with_on_event (fun ev -> stream (Protocol.W_event ev))

let finish_error ~state_dir ~job ~stream msg =
  write_outcome ~state_dir ~job (outcome_to_json ~ok:false ~status:None ~error:(Some msg) ~report:None);
  stream (Protocol.W_error msg);
  exit 1

let main ~state_dir ~job ~pipe =
  redirect_to_log ~state_dir ~job;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stream = make_streamer pipe in
  let spec = job.Job.spec in
  match build_netlist spec ~state_dir ~job with
  | Error e -> finish_error ~state_dir ~job ~stream ("netlist: " ^ e)
  | Ok nl -> (
    let n = Spr_netlist.Netlist.n_cells nl in
    let hscheme =
      match Spr_arch.Segmentation.scheme_of_string spec.Job.scheme with
      | Some s -> s
      | None -> Spr_arch.Segmentation.Actel_like
    in
    let arch = Spr_arch.Arch.size_for ~tracks:spec.Job.tracks ~hscheme nl in
    let run_dir = Job.run_dir ~state_dir job in
    Spr_util.Persist.ensure_dir run_dir;
    let config = job_config spec ~state_dir ~job ~n ~stream in
    match
      (* Resume-or-fresh is one call: a multi-stage flow restarts at
         its last persisted stage boundary, and sa replicas with V2
         snapshots in the run dir pick up where they stopped; anything
         without usable state starts deterministically from scratch.
         SIGTERM lands in Tool's handler and stops the run gracefully
         between moves. *)
      Spr_core.Tool.with_signal_handlers (fun () ->
          Spr_flow.run ~config ~resume_dir:run_dir arch nl)
    with
    | Ok r ->
      Spr_core.Checkpoint.save r.Spr_flow.f_route (Job.layout_file ~state_dir job);
      (* Flows without an sa stage have no Tool run report; their
         outcome carries the status alone. *)
      let status, report =
        match r.Spr_flow.f_portfolio, r.Spr_flow.f_tool with
        | Some p, _ ->
          ( Spr_core.Outcome.status_to_string
              (Spr_core.Tool.best_result p).Spr_core.Tool.status,
            Some (Spr_obs.Report.to_json p.Spr_core.Tool.p_report) )
        | None, Some t ->
          ( Spr_core.Outcome.status_to_string t.Spr_core.Tool.status,
            Some (Spr_obs.Report.to_json t.Spr_core.Tool.report) )
        | None, None -> ("completed", None)
      in
      (* Outcome before result frame: if the daemon dies between the
         two, restart recovery still finds the result on disk. *)
      write_outcome ~state_dir ~job
        (outcome_to_json ~ok:true ~status:(Some status) ~error:None ~report);
      stream (Protocol.W_result { status; report });
      exit 0
    | Error e -> finish_error ~state_dir ~job ~stream (Spr_core.Tool.error_to_string e)
    | exception exn ->
      finish_error ~state_dir ~job ~stream ("worker raised: " ^ Printexc.to_string exn))
