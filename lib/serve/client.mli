(** Blocking client for the [spr serve] socket — what [spr submit] /
    [spr jobs] and the tests speak.

    One connection is one conversation ({!Protocol}). A connection owns
    a persistent frame decoder: a single [read] may deliver the tail of
    one frame and the head of the next, so per-call decoding would lose
    bytes — {!recv} never does. The split {!open_submit} / {!await}
    pair exists so a caller can hold several streaming submissions open
    at once (concurrency tests, the bench harness) without threads. *)

type conn

val connect : socket:string -> (conn, string) result

val close : conn -> unit
(** Safe to call twice. Closing a streaming submission abandons the
    stream — the job keeps running server-side. *)

val send : conn -> Protocol.request -> (unit, string) result

val recv : conn -> (Protocol.response, string) result
(** Block for the next whole frame. *)

val request : socket:string -> Protocol.request -> (Protocol.response, string) result
(** One-shot: connect, send, read a single reply, close. *)

val ping : socket:string -> (unit, string) result

val jobs : socket:string -> (Protocol.job_row list, string) result

val cancel : socket:string -> string -> (Protocol.response, string) result

val open_submit :
  socket:string ->
  Job.spec ->
  (conn * string, [ `Rejected of Protocol.reject_reason | `Error of string ]) result
(** Send a submission and read up to the [Accepted] frame; the returned
    connection is mid-stream (events and the terminal frame still to
    come) and the string is the job id. *)

val await :
  ?on_event:(Spr_obs.Trace.event -> unit) ->
  conn ->
  (Protocol.response, string) result
(** Read frames until the terminal one (which is returned), feeding
    each streamed trace event to [on_event]. Closes the connection. *)

val submit :
  ?on_event:(Spr_obs.Trace.event -> unit) ->
  socket:string ->
  Job.spec ->
  (Protocol.response, string) result
(** {!open_submit} + {!await}: block until the job ends either way.
    Rejections come back as [Ok (Rejected _)]; [Error] is reserved for
    transport failures. *)
