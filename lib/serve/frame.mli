(** Length-prefixed JSON framing for the [spr serve] socket protocol.

    One frame is an ASCII decimal byte count, a newline, and exactly
    that many bytes of one canonical-JSON value ({!Spr_obs.Json}):

    {v <len>\n<len bytes of JSON> v}

    The length line makes framing self-describing without escaping, and
    the strict JSON parser behind it means a frame either decodes or is
    rejected with a diagnostic — adversarial bytes (truncated length
    lines, absurd lengths, non-JSON payloads, binary junk) surface as
    {!Corrupt}, never as an exception, so one bad client cannot take
    down the daemon. *)

val max_frame_bytes : int
(** Upper bound on a frame's payload (16 MiB — a big BLIF fits with
    room to spare). Larger announced lengths are rejected as corrupt
    before any allocation. *)

val encode : Spr_obs.Json.t -> string
(** The full wire form, header included. *)

val write : Unix.file_descr -> Spr_obs.Json.t -> unit
(** Blocking write of one whole frame. Raises [Unix.Unix_error] (e.g.
    [EPIPE]) like any socket write; callers own the error policy. *)

(** {1 Incremental decoding}

    The daemon reads sockets and worker pipes non-blockingly; each fd
    owns a decoder that is fed whatever bytes arrived and yields
    complete frames as they materialize. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> unit
(** Append received bytes. *)

val next : decoder -> [ `Frame of Spr_obs.Json.t | `Need_more | `Corrupt of string ]
(** Pop the next complete frame. [`Corrupt] is sticky: a stream that
    lied about its framing cannot be resynchronized, so every
    subsequent call keeps returning it. *)

val read : Unix.file_descr -> (Spr_obs.Json.t, [ `Closed | `Corrupt of string ]) result
(** Blocking convenience for clients: read one whole frame. [`Closed]
    on clean EOF at a frame boundary; EOF mid-frame is [`Corrupt]. *)
