let max_frame_bytes = 16 * 1024 * 1024

(* The length line is at most 8 digits (16 MiB) plus the newline; a
   stream showing more than [max_header] bytes without a newline is not
   speaking this protocol. *)
let max_header = 9

let encode json =
  let payload = Spr_obs.Json.to_string json in
  Printf.sprintf "%d\n%s" (String.length payload) payload

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
    end
  in
  go 0

let write fd json = write_all fd (encode json)

type decoder = {
  mutable pending : string;  (* unconsumed bytes *)
  mutable corrupt : string option;
}

let decoder () = { pending = ""; corrupt = None }

let feed d s = if s <> "" then d.pending <- d.pending ^ s

let fail d msg =
  d.corrupt <- Some msg;
  `Corrupt msg

let next d =
  match d.corrupt with
  | Some msg -> `Corrupt msg
  | None -> (
    let s = d.pending in
    match String.index_opt s '\n' with
    | None ->
      if String.length s > max_header then
        fail d "frame header: no length delimiter within 9 bytes"
      else `Need_more
    | Some nl -> (
      if nl = 0 || nl > max_header - 1 then fail d "frame header: bad length line"
      else
        let digits = String.sub s 0 nl in
        match
          if String.for_all (fun c -> c >= '0' && c <= '9') digits then
            int_of_string_opt digits
          else None
        with
        | None -> fail d (Printf.sprintf "frame header: %S is not a length" digits)
        | Some len when len > max_frame_bytes ->
          fail d (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame_bytes)
        | Some len ->
          if String.length s - nl - 1 < len then `Need_more
          else begin
            let payload = String.sub s (nl + 1) len in
            d.pending <- String.sub s (nl + 1 + len) (String.length s - nl - 1 - len);
            match Spr_obs.Json.parse payload with
            | Ok json -> `Frame json
            | Error e -> fail d ("frame payload: " ^ e)
          end))

let read fd =
  let d = decoder () in
  let buf = Bytes.create 65536 in
  let rec go () =
    match next d with
    | `Frame json -> Ok json
    | `Corrupt msg -> Error (`Corrupt msg)
    | `Need_more -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> if d.pending = "" then Error `Closed else Error (`Corrupt "EOF mid-frame")
      | n ->
        feed d (Bytes.sub_string buf 0 n);
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()
