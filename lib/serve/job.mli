(** Jobs: what a client submits, every state it moves through, and the
    crash-safe on-disk record the daemon recovers from.

    One job owns one directory under [<state_dir>/jobs/<id>/]:

    {v
    job.json      the spec + current state (atomic + durable rewrite
                  on every transition — the daemon's source of truth
                  across restarts)
    design.blif   the submitted BLIF bytes (byte-exact, so re-parsing
                  reproduces the original net ids)
    run/          the Tool run directory: rotated V2 snapshots and
                  exchange records — the resume substrate
    outcome.json  written by the worker itself when the run finishes
                  (durable), so a result survives even if the daemon
                  dies before reading the worker's result frame
    report.json   the spr-report-1 run report
    trace.jsonl   the spr-trace-1 event trace of the last invocation
    layout.ckpt   the final layout (v1 checkpoint text) — what
                  bit-identical recovery is judged on
    log.txt       the worker's stdout/stderr
    v} *)

type spec = {
  label : string;
  circuit : string option;
      (** Built-in circuit name; rebuilt from its spec on every
          invocation so net ids are reproducible. *)
  blif : string option;
      (** BLIF text; exactly one of [circuit]/[blif] is set (enforced
          by {!validate_spec}). *)
  tracks : int;
  scheme : string;  (** Segmentation scheme spelling. *)
  seed : int;
  effort : string;  (** quick | standard | thorough. *)
  flow : string;
      (** Flow preset the worker runs ([sa], [ap+sa], ... — the
          {!Spr_core.Tool.Config} flow vocabulary). Specs written
          before this field existed decode as ["sa"]. *)
  replicas : int;
  exchange : string;  (** Portfolio exchange policy spelling. *)
  scheduler : string;
      (** Fleet scheduler spelling ([barrier], [racing], [racing:free]
          — the {!Spr_core.Tool.Config.scheduler_of_string} vocabulary).
          Specs written before this field existed decode as ["barrier"],
          the pre-racing behavior. *)
  time_budget : float option;
      (** Per-invocation wall-clock budget, which is also the job's
          soft timeout: the worker stops itself gracefully through the
          normal budget path. The daemon adds a hard backstop on top
          ({!Daemon}). *)
  max_moves : int option;
}

val default_spec : spec
(** s1-shaped defaults: 28 tracks, actel scheme, seed 1, quick effort,
    serial, no budgets. *)

val validate_spec : spec -> (spec, string) result
(** Admission-side sanity: exactly one design source, a known effort /
    scheme / exchange / scheduler spelling, positive tracks/replicas,
    positive finite budgets — then the decoded tool config (including
    the flow preset, replica fleet and scheduler, so e.g. racing with a
    [best:N] exchange is refused here) is run through
    {!Spr_core.Tool.Config.validated}, so a
    spec the worker could not run is a clear protocol error at submit
    time instead of a forked worker failing later. The daemon rejects
    invalid specs before a job id is ever allocated. *)

type state =
  | Queued
  | Running of int  (** worker pid *)
  | Parked
      (** Interrupted with a resumable run dir (drain, daemon crash);
          re-enqueued on the next daemon start. *)
  | Done of string  (** terminal status string, e.g. ["completed"]. *)
  | Failed of string  (** structured failure, e.g. worker killed. *)
  | Cancelled

val state_to_string : state -> string

type t = {
  id : string;
  spec : spec;
  mutable state : state;
  submitted_at : float;
  mutable updated_at : float;
}

(** {1 JSON} *)

val spec_to_json : spec -> Spr_obs.Json.t

val spec_of_json : Spr_obs.Json.t -> (spec, string) result

val to_json : t -> Spr_obs.Json.t

val of_json : Spr_obs.Json.t -> (t, string) result

(** {1 Store} *)

val jobs_root : string -> string
(** [<state_dir>/jobs]. *)

val dir : state_dir:string -> string -> string
(** A job's directory, from its id. *)

val run_dir : state_dir:string -> t -> string

val design_file : state_dir:string -> t -> string

val outcome_file : state_dir:string -> t -> string

val report_file : state_dir:string -> t -> string

val trace_file : state_dir:string -> t -> string

val layout_file : state_dir:string -> t -> string

val log_file : state_dir:string -> t -> string

val fresh_id : state_dir:string -> string
(** [job-NNNNNNNN], one past the highest id present on disk. *)

val create : state_dir:string -> spec:spec -> now:float -> t
(** Allocate an id, create the job directory, write [design.blif] (for
    BLIF-text specs) and the initial durable [job.json]. The job is
    admitted once this returns: a daemon crash after this point
    recovers it. *)

val save : state_dir:string -> t -> unit
(** Durable atomic rewrite of [job.json] (call on every state
    transition). *)

val scan : state_dir:string -> t list * string list
(** All recoverable jobs in ascending id order, plus one diagnostic per
    job directory whose [job.json] is missing or malformed (those are
    skipped, never trusted). *)
