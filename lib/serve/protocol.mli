(** Typed messages for the [spr serve] socket protocol (one {!Frame}
    per message).

    A client connection carries exactly one conversation: a request
    frame, then the daemon's replies. [Submit] is the only streaming
    conversation — after [Accepted] the daemon forwards the worker's
    trace events as [Event] frames and finishes with exactly one
    terminal frame ([Job_done] / [Job_failed] / [Job_parked] /
    [Job_cancelled]). Every codec is total: unknown or malformed
    messages decode to [Error _], never an exception. *)

type request =
  | Submit of Job.spec
  | Jobs  (** List all known jobs. *)
  | Cancel of string  (** Cancel a queued or running job by id. *)
  | Ping

type reject_reason =
  | Overloaded of { queued : int; backoff_s : float }
      (** The bounded queue is full. [backoff_s] is the daemon's
          estimate of when capacity frees up (queue depth x rolling
          mean job seconds). *)
  | Draining  (** The daemon is shutting down and not admitting work. *)
  | Invalid of string  (** The spec failed {!Job.validate_spec}. *)

type job_row = {
  row_id : string;
  row_label : string;
  row_state : string;
  row_submitted_at : float;
  row_updated_at : float;
  row_pid : int option;
}

type response =
  | Accepted of string  (** Job id; the job record is already durable. *)
  | Rejected of reject_reason
  | Event of Spr_obs.Trace.event  (** Live trace event from the worker. *)
  | Job_done of { id : string; status : string; report : Spr_obs.Json.t option }
  | Job_failed of { id : string; error : string }
      (** The worker died without a result (crash, external kill). Only
          this job is affected. *)
  | Job_parked of { id : string; message : string }
      (** The run was interrupted but left a resumable run dir; the job
          re-runs on the next daemon start. *)
  | Job_cancelled of string
  | Jobs_list of job_row list
  | Error of string  (** Protocol-level failure (corrupt frame, ...). *)
  | Pong

(** What a worker process sends its parent over the result pipe. *)
type worker_msg =
  | W_event of Spr_obs.Trace.event
  | W_result of { status : string; report : Spr_obs.Json.t option }
  | W_error of string

val request_to_json : request -> Spr_obs.Json.t

val request_of_json : Spr_obs.Json.t -> (request, string) result

val response_to_json : response -> Spr_obs.Json.t

val response_of_json : Spr_obs.Json.t -> (response, string) result

val worker_to_json : worker_msg -> Spr_obs.Json.t

val worker_of_json : Spr_obs.Json.t -> (worker_msg, string) result

val is_terminal : response -> bool
(** True for the frames that end a submit conversation. *)
