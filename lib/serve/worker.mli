(** The per-job worker process body.

    The daemon forks one worker per running job; the child calls
    {!main} and never returns. Isolation is the point: a worker that
    raises, corrupts itself, or is killed outright takes down nothing
    but its own job — the daemon observes the death through [waitpid]
    and the result pipe going quiet.

    The worker owns its job directory: it redirects stdout/stderr to
    [log.txt], always runs {!Spr_core.Tool.run_portfolio} with
    [~resume_dir] pointing at the job's run directory (so a re-run
    after a crash resumes from the newest snapshots and a first run
    starts fresh — same call either way), streams every trace event to
    the daemon over the result pipe as {!Protocol.W_event} frames, and
    finishes by durably writing [outcome.json] {e before} sending the
    {!Protocol.W_result} frame. That ordering is the crash-recovery
    hinge: if the daemon dies before reading the frame, the outcome is
    already on disk and the restarted daemon recovers the result
    instead of re-running the job.

    SIGTERM is the graceful-stop channel: {!Spr_core.Tool}'s handler
    turns it into an interrupt, the run stops between moves with a
    final checkpoint, and the worker still exits 0 with an
    [interrupted] outcome (the daemon decides whether that means
    parked, cancelled, or timed out). A broken pipe (daemon died)
    silently stops streaming but the run carries on — the outcome file
    preserves the result for recovery. *)

val outcome_schema : string

val outcome_to_json :
  ok:bool -> status:string option -> error:string option -> report:Spr_obs.Json.t option ->
  Spr_obs.Json.t

val read_outcome :
  string ->
  ( [ `Ok of string * Spr_obs.Json.t option  (** status, report *) | `Error of string ],
    string )
  result
(** Parse an [outcome.json]; the outer [Error] means the file is
    missing or malformed (treat as "no outcome"). *)

val main : state_dir:string -> job:Job.t -> pipe:Unix.file_descr -> 'a
(** Run the job to completion and [exit] — 0 when the run produced a
    result (completed or gracefully interrupted), 1 on error. *)
