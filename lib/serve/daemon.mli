(** The [spr serve] daemon: a single-threaded supervisor multiplexing a
    Unix-domain listening socket, client connections, and per-worker
    result pipes with [select].

    Supervision tree: the daemon forks one {!Worker} process per
    running job (never more than [max_workers]); a worker that raises
    or is killed fails only its own job — the daemon reaps it, records
    a structured [Failed] state, notifies that job's subscriber, and
    every other job is untouched. The daemon itself spawns no domains,
    so forking is safe; the child is free to spawn portfolio domains.

    Admission control: the queue is bounded by [max_queue]; a submit
    beyond it is rejected with [Overloaded] carrying a suggested
    backoff derived from queue depth and the rolling mean job duration.

    Graceful drain: SIGTERM/SIGINT stop the daemon accepting
    connections, SIGTERM every worker (which checkpoints and exits with
    an interrupted result), park the interrupted jobs, and exit.
    Workers still alive after [drain_grace] seconds are SIGKILLed —
    their jobs are parked too, resuming from their newest snapshot.

    Crash recovery: every job transition is a durable [job.json]
    rewrite, and workers durably write [outcome.json] before reporting
    success, so a [kill -9]'d daemon loses nothing. On restart the scan
    re-enqueues queued and parked jobs; a job recorded [Running] is
    fenced (its recorded pid SIGKILLed, in case the orphan still runs),
    then either completed from its on-disk outcome or parked and
    re-enqueued to resume from its snapshots — bit-identical to an
    uninterrupted run by the crash-equivalence property. *)

type config = {
  state_dir : string;
  socket_path : string option;  (** Default [<state_dir>/serve.sock]. *)
  max_workers : int;
  max_queue : int;
  default_time_budget : float option;
      (** Applied to specs that carry no budget of their own; becomes
          part of the durable spec. *)
  kill_grace : float;
      (** Seconds between the hard-timeout SIGTERM and the SIGKILL. *)
  drain_grace : float;  (** Seconds drain waits before SIGKILL. *)
  timeout_slack : float;
      (** Hard-backstop margin over a job's own [time_budget]: the
          daemon SIGTERMs at [budget + slack] (the worker should have
          stopped itself at [budget]). *)
}

val default_config : state_dir:string -> config

val socket_path : config -> string

val run : config -> unit
(** Recover, bind, serve until drained. Returns after a graceful
    drain; exits only via signals it does not own. *)
