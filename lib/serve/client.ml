type conn = { fd : Unix.file_descr; dec : Frame.decoder; mutable closed : bool }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; dec = Frame.decoder (); closed = false }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" socket (Unix.error_message err))

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send c req =
  match Frame.write c.fd (Protocol.request_to_json req) with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) -> Error ("send: " ^ Unix.error_message err)

let recv c =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame.next c.dec with
    | `Frame json -> Protocol.response_of_json json
    | `Corrupt msg -> Error ("corrupt reply: " ^ msg)
    | `Need_more -> (
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 -> Error "connection closed by daemon"
      | n ->
        Frame.feed c.dec (Bytes.sub_string buf 0 n);
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (err, _, _) -> Error ("recv: " ^ Unix.error_message err))
  in
  go ()

let request ~socket req =
  match connect ~socket with
  | Error e -> Error e
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () -> match send c req with Ok () -> recv c | Error e -> Error e)

let ping ~socket =
  match request ~socket Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok r -> Error (Spr_obs.Json.to_string (Protocol.response_to_json r))
  | Error e -> Error e

let jobs ~socket =
  match request ~socket Protocol.Jobs with
  | Ok (Protocol.Jobs_list rows) -> Ok rows
  | Ok (Protocol.Error e) -> Error e
  | Ok r -> Error ("unexpected reply: " ^ Spr_obs.Json.to_string (Protocol.response_to_json r))
  | Error e -> Error e

let cancel ~socket id = request ~socket (Protocol.Cancel id)

let open_submit ~socket spec =
  match connect ~socket with
  | Error e -> Error (`Error e)
  | Ok c -> (
    let fail e =
      close c;
      Error (`Error e)
    in
    match send c (Protocol.Submit spec) with
    | Error e -> fail e
    | Ok () -> (
      match recv c with
      | Ok (Protocol.Accepted id) -> Ok (c, id)
      | Ok (Protocol.Rejected r) ->
        close c;
        Error (`Rejected r)
      | Ok (Protocol.Error e) -> fail e
      | Ok r ->
        fail ("unexpected reply: " ^ Spr_obs.Json.to_string (Protocol.response_to_json r))
      | Error e -> fail e))

let await ?(on_event = fun _ -> ()) c =
  Fun.protect
    ~finally:(fun () -> close c)
    (fun () ->
      let rec go () =
        match recv c with
        | Error e -> Error e
        | Ok (Protocol.Event ev) ->
          on_event ev;
          go ()
        | Ok r when Protocol.is_terminal r -> Ok r
        | Ok (Protocol.Error e) -> Error e
        | Ok _ -> go ()
      in
      go ())

let submit ?on_event ~socket spec =
  match open_submit ~socket spec with
  | Ok (c, _id) -> await ?on_event c
  | Error (`Rejected r) -> Ok (Protocol.Rejected r)
  | Error (`Error e) -> Error e
