module J = Spr_obs.Json

type request =
  | Submit of Job.spec
  | Jobs
  | Cancel of string
  | Ping

type reject_reason =
  | Overloaded of { queued : int; backoff_s : float }
  | Draining
  | Invalid of string

type job_row = {
  row_id : string;
  row_label : string;
  row_state : string;
  row_submitted_at : float;
  row_updated_at : float;
  row_pid : int option;
}

type response =
  | Accepted of string
  | Rejected of reject_reason
  | Event of Spr_obs.Trace.event
  | Job_done of { id : string; status : string; report : Spr_obs.Json.t option }
  | Job_failed of { id : string; error : string }
  | Job_parked of { id : string; message : string }
  | Job_cancelled of string
  | Jobs_list of job_row list
  | Error of string
  | Pong

type worker_msg =
  | W_event of Spr_obs.Trace.event
  | W_result of { status : string; report : Spr_obs.Json.t option }
  | W_error of string

exception Decode of string

let get j name =
  match J.member name j with Some v -> v | None -> raise (Decode ("missing field " ^ name))

let dstr j name =
  match J.to_str (get j name) with
  | Some s -> s
  | None -> raise (Decode ("field " ^ name ^ ": expected string"))

let dint j name =
  match J.to_int (get j name) with
  | Some i -> i
  | None -> raise (Decode ("field " ^ name ^ ": expected int"))

let dfloat j name =
  match J.to_float (get j name) with
  | Some f -> f
  | None -> raise (Decode ("field " ^ name ^ ": expected number"))

(* [Error] below shadows the result constructor; the annotation keeps
   Ok/Error here pointing at Stdlib.result. *)
let wrap (f : J.t -> 'a) (j : J.t) : ('a, string) result =
  match f j with
  | v -> Stdlib.Ok v
  | exception Decode msg -> Stdlib.Error msg
  | exception exn -> Stdlib.Error ("malformed message: " ^ Printexc.to_string exn)

let devent j name =
  match Spr_obs.Trace.event_of_json (get j name) with
  | Ok ev -> ev
  | Error e -> raise (Decode ("field " ^ name ^ ": " ^ e))

(* --- requests --- *)

let request_to_json = function
  | Submit spec -> J.Obj [ ("req", J.String "submit"); ("spec", Job.spec_to_json spec) ]
  | Jobs -> J.Obj [ ("req", J.String "jobs") ]
  | Cancel id -> J.Obj [ ("req", J.String "cancel"); ("id", J.String id) ]
  | Ping -> J.Obj [ ("req", J.String "ping") ]

let request_of_json =
  wrap (fun j ->
      match dstr j "req" with
      | "submit" -> (
        match Job.spec_of_json (get j "spec") with
        | Ok spec -> Submit spec
        | Error e -> raise (Decode ("submit spec: " ^ e)))
      | "jobs" -> Jobs
      | "cancel" -> Cancel (dstr j "id")
      | "ping" -> Ping
      | req -> raise (Decode ("unknown request " ^ req)))

(* --- responses --- *)

let reject_to_json = function
  | Overloaded { queued; backoff_s } ->
    J.Obj
      [ ("why", J.String "overloaded"); ("queued", J.Int queued); ("backoff_s", J.Float backoff_s) ]
  | Draining -> J.Obj [ ("why", J.String "draining") ]
  | Invalid msg -> J.Obj [ ("why", J.String "invalid"); ("message", J.String msg) ]

let reject_of_json_exn j =
  match dstr j "why" with
  | "overloaded" -> Overloaded { queued = dint j "queued"; backoff_s = dfloat j "backoff_s" }
  | "draining" -> Draining
  | "invalid" -> Invalid (dstr j "message")
  | why -> raise (Decode ("unknown rejection " ^ why))

let row_to_json r =
  J.Obj
    [
      ("id", J.String r.row_id);
      ("label", J.String r.row_label);
      ("state", J.String r.row_state);
      ("submitted_at", J.Float r.row_submitted_at);
      ("updated_at", J.Float r.row_updated_at);
      ("pid", match r.row_pid with Some p -> J.Int p | None -> J.Null);
    ]

let row_of_json_exn j =
  {
    row_id = dstr j "id";
    row_label = dstr j "label";
    row_state = dstr j "state";
    row_submitted_at = dfloat j "submitted_at";
    row_updated_at = dfloat j "updated_at";
    row_pid = (match J.member "pid" j with Some (J.Int p) -> Some p | _ -> None);
  }

let opt_report = function None -> J.Null | Some r -> r

let response_to_json = function
  | Accepted id -> J.Obj [ ("resp", J.String "accepted"); ("id", J.String id) ]
  | Rejected r -> J.Obj [ ("resp", J.String "rejected"); ("reason", reject_to_json r) ]
  | Event ev -> J.Obj [ ("resp", J.String "event"); ("event", Spr_obs.Trace.event_to_json ev) ]
  | Job_done { id; status; report } ->
    J.Obj
      [
        ("resp", J.String "done");
        ("id", J.String id);
        ("status", J.String status);
        ("report", opt_report report);
      ]
  | Job_failed { id; error } ->
    J.Obj [ ("resp", J.String "failed"); ("id", J.String id); ("error", J.String error) ]
  | Job_parked { id; message } ->
    J.Obj [ ("resp", J.String "parked"); ("id", J.String id); ("message", J.String message) ]
  | Job_cancelled id -> J.Obj [ ("resp", J.String "cancelled"); ("id", J.String id) ]
  | Jobs_list rows -> J.Obj [ ("resp", J.String "jobs"); ("jobs", J.List (List.map row_to_json rows)) ]
  | Error msg -> J.Obj [ ("resp", J.String "error"); ("message", J.String msg) ]
  | Pong -> J.Obj [ ("resp", J.String "pong") ]

let response_of_json =
  wrap (fun j ->
      match dstr j "resp" with
      | "accepted" -> Accepted (dstr j "id")
      | "rejected" -> Rejected (reject_of_json_exn (get j "reason"))
      | "event" -> Event (devent j "event")
      | "done" ->
        Job_done
          {
            id = dstr j "id";
            status = dstr j "status";
            report = (match J.member "report" j with None | Some J.Null -> None | Some r -> Some r);
          }
      | "failed" -> Job_failed { id = dstr j "id"; error = dstr j "error" }
      | "parked" -> Job_parked { id = dstr j "id"; message = dstr j "message" }
      | "cancelled" -> Job_cancelled (dstr j "id")
      | "jobs" -> (
        match get j "jobs" with
        | J.List rows -> Jobs_list (List.map row_of_json_exn rows)
        | _ -> raise (Decode "field jobs: expected list"))
      | "error" -> Error (dstr j "message")
      | "pong" -> Pong
      | resp -> raise (Decode ("unknown response " ^ resp)))

let is_terminal = function
  | Job_done _ | Job_failed _ | Job_parked _ | Job_cancelled _ -> true
  | Accepted _ | Rejected _ | Event _ | Jobs_list _ | Error _ | Pong -> false

(* --- worker pipe --- *)

let worker_to_json = function
  | W_event ev -> J.Obj [ ("w", J.String "event"); ("event", Spr_obs.Trace.event_to_json ev) ]
  | W_result { status; report } ->
    J.Obj [ ("w", J.String "result"); ("status", J.String status); ("report", opt_report report) ]
  | W_error msg -> J.Obj [ ("w", J.String "error"); ("message", J.String msg) ]

let worker_of_json =
  wrap (fun j ->
      match dstr j "w" with
      | "event" -> W_event (devent j "event")
      | "result" ->
        W_result
          {
            status = dstr j "status";
            report = (match J.member "report" j with None | Some J.Null -> None | Some r -> Some r);
          }
      | "error" -> W_error (dstr j "message")
      | w -> raise (Decode ("unknown worker message " ^ w)))
