module I = Spr_util.Interval

(* Candidate spine columns ordered by distance from the bounding-box
   center, tie broken toward the left. *)
(* Default bound on spine columns probed per attempt; electrically any
   column inside the window serves, so a bounded nearest-the-center scan
   keeps per-move cost flat on wide nets. Desperate callers (the
   sequential improvement loop) raise it to the full die width. *)
let default_max_candidates = 24

(* Iterate candidate spine columns by distance from the bounding-box
   center (ties toward the left) without building a list: center,
   center-1, center+1, center-2, ... clipped to the window. *)
let fold_candidates ~max_candidates ~lo ~hi ~min_col ~max_col ~margin f =
  let lo = max min_col (lo - margin) and hi = min max_col (hi + margin) in
  let center = (lo + hi) / 2 in
  let rec loop dist tried =
    if tried >= max_candidates then None
    else begin
      let left = center - dist and right = center + dist in
      let in_window c = c >= lo && c <= hi in
      if (not (in_window left)) && not (in_window right) then None
      else begin
        match (if in_window left then f left else None) with
        | Some _ as r -> r
        | None ->
          let tried = tried + (if in_window left then 1 else 0) in
          if tried >= max_candidates then None
          else begin
            match (if dist > 0 && in_window right then f right else None) with
            | Some _ as r -> r
            | None ->
              let tried = tried + (if dist > 0 && in_window right then 1 else 0) in
              loop (dist + 1) tried
          end
      end
    end
  in
  loop 0 0

(* Pin bounding box: ((clo, chi), (xlo, xhi)), or None below two pins. *)
let pin_bbox st net =
  let place = Route_state.place st in
  let pins = Spr_layout.Placement.net_pin_positions place net in
  match pins with
  | [] | [ _ ] -> None
  | _ ->
    let chans = List.map fst pins and cols = List.map snd pins in
    let clo = List.fold_left min max_int chans and chi = List.fold_left max min_int chans in
    let xlo = List.fold_left min max_int cols and xhi = List.fold_left max min_int cols in
    Some ((clo, chi), (xlo, xhi))

let column_window ?(margin = 2) st net =
  match pin_bbox st net with
  | None -> None
  | Some (_, (xlo, xhi)) ->
    let arch = Route_state.arch st in
    let lo = max 0 (xlo - margin) and hi = min (arch.Spr_arch.Arch.cols - 1) (xhi + margin) in
    Some (I.make lo hi)

let plan ?(margin = 2) ?(max_candidates = default_max_candidates) st net =
  let arch = Route_state.arch st in
  match pin_bbox st net with
  | None -> None
  | Some ((clo, chi), (xlo, xhi)) ->
    let span = I.make clo chi in
    let try_col x =
      let rec try_vtrack vt =
        if vt >= arch.Spr_arch.Arch.vtracks then None
        else begin
          let segs = Spr_arch.Arch.vsegments arch ~col:x ~vtrack:vt in
          match Spr_arch.Arch.find_cover segs span with
          | Some (slo, shi) when Route_state.vrun_free st ~col:x ~vtrack:vt ~slo ~shi ->
            Some
              {
                Route_state.v_col = x;
                v_vtrack = vt;
                v_slo = slo;
                v_shi = shi;
                v_span = span;
              }
          | Some _ | None -> try_vtrack (vt + 1)
        end
      in
      try_vtrack 0
    in
    fold_candidates ~max_candidates ~lo:xlo ~hi:xhi ~min_col:0
      ~max_col:(arch.Spr_arch.Arch.cols - 1) ~margin try_col

let attempt ?margin ?max_candidates st j net =
  match plan ?margin ?max_candidates st net with
  | Some vr ->
    Route_state.claim_global st j net vr;
    true
  | None -> false
