(** Parallel intra-move rip-up-and-reroute on a shared domain pool.

    After a move's rip-up phase the dirty-net queues are partitioned
    into {e conflict-disjoint batches}: two nets land in the same batch
    only when no routing resource either of them could possibly claim is
    reachable by the other. Each batch is then {e planned} concurrently
    — the read-only search halves {!Global_router.plan} /
    {!Detail_router.plan} run on the pool's domains — and {e committed}
    serially on the calling domain in canonical queue order, through the
    journal, exactly as the serial router would have. Claims are
    re-validated at commit time; a plan whose resources were taken by a
    concurrently committed net (impossible when the conflict footprints
    are sound — kept as defense in depth) is retried serially in the
    canonical key-descending/id-descending order.

    Determinism argument (DESIGN §7): batches are derived purely from
    the queue snapshots of {!Router.ordered_global_queue} /
    {!Router.ordered_detail_queue} and from footprints of the current
    state, never from the worker count; in-batch nets touch disjoint
    resources, so planning them against the batch-start state yields the
    plans serial execution would; commits happen in queue order on one
    domain. Hence the routed result — and every counter exported to
    [spr-trace-1] — is bit-identical for any pool size, including no
    pool at all. *)

(** Persistent worker-domain pool, created once per run and reused for
    every move (and shut down at run end — domains are never spawned per
    move). The calling domain always participates in a dispatch, so a
    pool of size 1 is the inline no-domain configuration. *)
module Pool : sig
  type t

  val create : workers:int -> t
  (** Pool of [max 1 workers] total workers: the caller plus
      [workers - 1] spawned domains. *)

  val size : t -> int
  (** Total workers including the calling domain. *)

  val parallel_for : t -> grain:int -> n:int -> (int -> unit) -> unit
  (** Run [f 0 .. f (n-1)] across the pool in chunks of [grain],
      returning when all are done. [f] must only write state disjoint
      from other indices' writes (the batch planner guarantees this for
      plan buffers). The completion barrier gives the caller a
      happens-before edge over every worker write. *)

  val busy_seconds : t -> float
  (** Cumulative seconds spawned workers (not the caller) spent inside
      [parallel_for] bodies — the utilization gauge's numerator. *)

  val shutdown : t -> unit
  (** Stop and join the spawned domains. Idempotent. Must not be called
      concurrently with {!parallel_for}. *)
end

(** {1 Batch statistics}

    Every count here is a pure function of the routing trajectory and
    the batch planner — never of the pool size — so the mirrored
    [router.par.*] trace counters stay bit-identical across
    [--route-workers] settings. Worker-dependent quantities (busy time,
    utilization) are reported as gauges, which trace masking zeroes. *)

type stats = {
  mutable s_batches : int;  (** Batches the planner emitted. *)
  mutable s_planned : int;  (** Net attempts that went through batches. *)
  mutable s_max_batch : int;  (** Largest batch seen. *)
  mutable s_conflicts : int;  (** Commit-time claim collisions. *)
  mutable s_retries : int;  (** Conflict-forced serial retries. *)
  s_size_hist : int array;
      (** Batch-size histogram; bucket [i] counts batches of size
          [<= size_hist_bounds.(i)], the last bucket the overflow. *)
}

val size_hist_bounds : int array

val fresh_stats : unit -> stats

(** {1 Conflict footprints}

    Over-approximations of the resources one routing attempt may claim.
    Exposed so the conflict-detector unit tests can probe adversarial
    geometry directly. *)

type footprint =
  | Empty  (** Claims nothing; conflicts with nothing. *)
  | Window of { group : int; lo : int; hi : int }
      (** Column window [lo..hi] within resource group [group]:
          [group = -1] is the vertical (feedthrough spine) fabric, any
          other value the horizontal tracks of that channel. Vertical
          and horizontal segments are disjoint resources, so footprints
          in different groups never conflict. *)

val conflict : footprint -> footprint -> bool
(** Whether the two attempts could contend for a segment: same group and
    overlapping windows. *)

val global_footprint : ?margin:int -> Route_state.t -> int -> footprint
(** {!Global_router.column_window} as a vertical-fabric footprint: every
    spine {!Global_router.plan} may claim for the net lies inside it. *)

val detail_footprint : Route_state.t -> ext:int -> channel:int -> int -> footprint
(** The net's queued demand span in [channel], widened by [ext] columns
    on each side. With [ext >= ] (the channel's longest track segment
    [- 1]), any run {!Detail_router.plan} may claim for the span lies
    inside the window, because the claimed run's end segments contain
    the span endpoints. [Empty] when the net has no demand there. *)

val channel_extension : Route_state.t -> channel:int -> int
(** That sound widening: the channel's longest horizontal segment minus
    one (at least 0). {!create} caches it per channel. *)

val plan_batches : footprint array -> int array -> int array list
(** [plan_batches fps queue] partitions the queue (attempt order, with
    [fps.(i)] the footprint of [queue.(i)]) into the canonical greedy
    batches: each net joins the earliest batch after every earlier
    conflicting net — batch index [1 + max] over conflicting
    predecessors. Batches preserve queue order internally and are
    pairwise conflict-free, so planning a batch concurrently commutes. *)

(** {1 Conflict-forced serial retries} *)

type conflict_entry = {
  cf_channel : int;  (** [-1] for the global (vertical) phase. *)
  cf_key : int;  (** Canonical retry key: estimated/demand length. *)
  cf_net : int;
}

val retry_order : conflict_entry list -> conflict_entry list
(** Canonical order for conflict-forced serial retries: channel
    ascending (the serial sweep order; global first), then key
    descending, then net id descending — the position the net's queue
    would have re-presented it at, {e not} the tail-append order the
    commit loop discovered the conflicts in. *)

(** {1 The parallel router} *)

type t
(** Per-run planner handle: the route state it serves, the optional
    shared pool, the dispatch grain, and per-channel footprint caches —
    the reusable scratch the reroute phases need, created once per
    pipeline rather than per move. *)

val create : ?pool:Pool.t -> ?grain:int -> Route_state.t -> t
(** [grain] (default 8) is the [parallel_for] chunk size; it affects
    scheduling only, never results or counters. The pool, when given, is
    borrowed — the caller shuts it down. *)

val pool : t -> Pool.t option

val commit_global :
  ?config:Router.config ->
  ?counters:Router.counters ->
  ?stats:stats ->
  t ->
  Spr_util.Journal.t ->
  (int * Route_state.vroute option) array ->
  int list
(** Conflict-checked commit of planned spines, in array (= queue) order:
    [None] plans record a failure, valid plans are claimed, and plans
    whose segments are no longer free are retried serially — replanned
    from the post-commit state — in {!retry_order}. Returns the nets
    that gained a spine. Exposed so tests can inject adversarially
    ordered colliding plans. *)

val commit_detail :
  ?config:Router.config ->
  ?counters:Router.counters ->
  ?stats:stats ->
  t ->
  Spr_util.Journal.t ->
  (int * int * Route_state.hroute option) array ->
  int list
(** Same for detailed plans; entries are [(channel, net, plan)]. *)

val reroute_global :
  ?config:Router.config ->
  ?counters:Router.counters ->
  ?stats:stats ->
  t ->
  Spr_util.Journal.t ->
  int list
(** Batched equivalent of {!Router.reroute_global}: bit-identical
    result, counters and failure memo for any pool size. *)

val reroute_detail :
  ?config:Router.config ->
  ?counters:Router.counters ->
  ?stats:stats ->
  t ->
  Spr_util.Journal.t ->
  int list
(** Batched equivalent of {!Router.reroute_detail}. Channels are swept
    in rounds — round [r] takes every channel's [r]-th batch, which are
    mutually disjoint since channels own disjoint track resources — so
    one dispatch covers all channels while per-channel attempt order is
    preserved exactly. *)

val reroute :
  ?config:Router.config ->
  ?counters:Router.counters ->
  ?stats:stats ->
  t ->
  Spr_util.Journal.t ->
  int list
(** {!reroute_global} then {!reroute_detail}; the union of changed nets,
    like {!Router.reroute}. *)
