type config = {
  spine_margin : int;
  spine_candidates : int;
  antifuse_weight : float;
  retry_cap : int;
  criticality : (int -> float) option;
}

let default_config =
  {
    spine_margin = 2;
    spine_candidates = 24;
    antifuse_weight = 3.0;
    retry_cap = 64;
    criticality = None;
  }

type counters = {
  mutable c_global_attempts : int;
  mutable c_global_routed : int;
  mutable c_detail_attempts : int;
  mutable c_detail_routed : int;
}

let fresh_counters () =
  { c_global_attempts = 0; c_global_routed = 0; c_detail_attempts = 0; c_detail_routed = 0 }

(* Criticality ordering: (criticality, estimated length) descending, net
   id as the deterministic tie-break. The length-only order needs no
   sorting — the dense queues already enumerate that way. *)
let sort_queue config keyed =
  match config.criticality with
  | None ->
    List.sort (fun ((a : int), na) (b, nb) -> compare (b, nb) (a, na)) keyed
  | Some crit ->
    let scored = List.map (fun (len, net) -> (crit net, len, net)) keyed in
    List.map
      (fun (_, len, net) -> (len, net))
      (List.sort (fun (ca, la, na) (cb, lb, nb) -> compare (cb, lb, nb) (ca, la, na)) scored)

let rip_up_cell st j cell =
  let nl = Route_state.netlist st in
  let nets = Spr_netlist.Netlist.nets_of_cell nl cell in
  List.iter (fun net -> Route_state.rip_up st j net) nets;
  nets

let take n xs =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n xs

(* Re-impose the criticality order when configured; the queues arrive in
   the paper's length order otherwise. *)
let criticality_order config ~len queue =
  match config.criticality with
  | None -> queue
  | Some _ -> List.map snd (sort_queue config (List.map (fun net -> (len net, net)) queue))

(* The two queue snapshots below are the single source of truth for
   which nets a pass attempts and in which order; the serial pass here
   and the batched pass in {!Parallel} both consume them, which is what
   makes the bit-identity argument between the two a statement about
   execution strategy alone. *)

let ordered_global_queue config st =
  let place = Route_state.place st in
  (* U_G arrives "sorted based on the estimated length of its contents
     ... giving priority to the longer unroutable nets" (paper §3.3). *)
  let queue =
    List.filter (fun net -> Route_state.global_attempt_pending st net) (Route_state.u_g st)
  in
  let queue =
    criticality_order config ~len:(fun net -> Spr_layout.Placement.half_perimeter place net)
      queue
  in
  take config.retry_cap queue

let detail_demand_length st ~channel net =
  match List.assoc_opt channel (Route_state.h_demands st net) with
  | Some span -> Spr_util.Interval.length span
  | None -> 0

let ordered_detail_queue config st ~channel =
  let queue =
    List.filter
      (fun net ->
        Route_state.detail_attempt_pending st net ~channel
        && List.mem_assoc channel (Route_state.h_demands st net))
      (Route_state.u_d st channel)
  in
  let queue = criticality_order config ~len:(detail_demand_length st ~channel) queue in
  take config.retry_cap queue

let reroute_global ?(config = default_config) ?counters st j =
  let changed = ref [] in
  List.iter
    (fun net ->
      (match counters with
      | Some c -> c.c_global_attempts <- c.c_global_attempts + 1
      | None -> ());
      if
        Global_router.attempt ~margin:config.spine_margin
          ~max_candidates:config.spine_candidates st j net
      then begin
        (match counters with
        | Some c -> c.c_global_routed <- c.c_global_routed + 1
        | None -> ());
        changed := net :: !changed
      end
      else Route_state.note_global_failure st net)
    (ordered_global_queue config st);
  List.sort_uniq compare !changed

let reroute_detail ?(config = default_config) ?counters st j =
  let arch = Route_state.arch st in
  let changed = ref [] in
  (* Each channel's queue, longest span first. *)
  for channel = 0 to arch.Spr_arch.Arch.n_channels - 1 do
    List.iter
      (fun net ->
        (match counters with
        | Some c -> c.c_detail_attempts <- c.c_detail_attempts + 1
        | None -> ());
        if Detail_router.attempt ~antifuse_weight:config.antifuse_weight st j ~net ~channel
        then begin
          (match counters with
          | Some c -> c.c_detail_routed <- c.c_detail_routed + 1
          | None -> ());
          changed := net :: !changed
        end
        else Route_state.note_detail_failure st net ~channel)
      (ordered_detail_queue config st ~channel)
  done;
  List.sort_uniq compare !changed

let reroute ?(config = default_config) ?counters st j =
  let g = reroute_global ~config ?counters st j in
  let d = reroute_detail ~config ?counters st j in
  List.sort_uniq compare (List.rev_append g d)

let route_all ?(config = default_config) ?(passes = 3) st =
  let config = { config with retry_cap = max_int } in
  let j = Spr_util.Journal.create () in
  let rec loop p =
    if p > 0 && not (Route_state.fully_routed st) then begin
      ignore (reroute ~config st j : int list);
      loop (p - 1)
    end
  in
  loop passes;
  Spr_util.Journal.commit j
