(** Incremental global routing heuristic (paper §3.3).

    Global routing for row-based FPGAs assigns feedthrough (vertical
    spine) resources to nets that span channels. The heuristic is
    deliberately simple and fast: take the free stack of vertical
    segments closest to the center of the net's column bounding box.
    Robustness comes not from one exhaustive search but from the many
    re-attempts the annealer makes in ever more compliant placements. *)

val plan :
  ?margin:int -> ?max_candidates:int -> Route_state.t -> int -> Route_state.vroute option
(** [plan st net] is the read-only search half of {!attempt}: the spine
    the net would claim against the current state, without claiming it.
    Touches no mutable state and allocates only locally, so concurrent
    [plan] calls from several domains are safe as long as no claim runs
    concurrently ({!Spr_route.Parallel} provides that barrier). *)

val column_window : ?margin:int -> Route_state.t -> int -> Spr_util.Interval.t option
(** The exact window of spine columns {!plan} may probe for the net: the
    pin column bounding box widened by [margin] (default 2), clipped to
    the die. Any vertical segment a plan can claim lies inside this
    window, so two nets with disjoint windows can never contend for a
    vertical resource — the conflict footprint of the parallel batch
    planner. [None] for nets with fewer than two pins (never globally
    routed). *)

val attempt :
  ?margin:int -> ?max_candidates:int -> Route_state.t -> Spr_util.Journal.t -> int -> bool
(** [attempt st j net] tries to give [net] (which must be in U{_G}) a
    global route; on success the route is claimed through
    {!Route_state.claim_global} and [true] is returned. [margin]
    (default 2) lets the spine sit slightly outside the pin bounding
    box; at most [max_candidates] (default 24) columns are probed,
    nearest the bounding-box center first. Equivalent to {!plan}
    followed by the claim. *)
