module I = Spr_util.Interval

(* ------------------------------------------------------------------ *)
(* Worker-domain pool                                                  *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* A generation-stamped parallel-for: the caller publishes a job under
     the mutex and bumps [gen]; workers that observe the bump grab chunk
     indices from the shared atomic cursor. Workers are pure helpers —
     the caller always chews too, so a job completes even if every
     worker oversleeps, and the completion wait is only for workers
     already inside the job ([active > 0]). All plan-buffer writes a
     worker makes are published to the caller by the mutex round-trip
     that decrements [active]. *)
  type t = {
    m : Mutex.t;
    work : Condition.t;
    donec : Condition.t;
    mutable job : (int -> unit) option;
    mutable hi : int;
    mutable grain : int;
    next : int Atomic.t;
    mutable active : int;
    mutable gen : int;
    mutable stop : bool;
    mutable busy : float;
    mutable domains : unit Domain.t list;
  }

  let chew t f =
    let grain = t.grain and hi = t.hi in
    let rec loop () =
      let i = Atomic.fetch_and_add t.next grain in
      if i < hi then begin
        let stop_at = min hi (i + grain) in
        for k = i to stop_at - 1 do
          f k
        done;
        loop ()
      end
    in
    loop ()

  let worker t =
    let rec wait gen =
      Mutex.lock t.m;
      while (not t.stop) && t.gen = gen do
        Condition.wait t.work t.m
      done;
      if t.stop then Mutex.unlock t.m
      else begin
        let seen = t.gen in
        match t.job with
        | None ->
          Mutex.unlock t.m;
          wait seen
        | Some f ->
          t.active <- t.active + 1;
          Mutex.unlock t.m;
          let sw = Spr_util.Clock.start () in
          chew t f;
          let dt = Spr_util.Clock.elapsed sw in
          Mutex.lock t.m;
          t.busy <- t.busy +. dt;
          t.active <- t.active - 1;
          if t.active = 0 then Condition.signal t.donec;
          Mutex.unlock t.m;
          wait seen
      end
    in
    wait 0

  let create ~workers =
    let workers = max 1 workers in
    let t =
      {
        m = Mutex.create ();
        work = Condition.create ();
        donec = Condition.create ();
        job = None;
        hi = 0;
        grain = 1;
        next = Atomic.make 0;
        active = 0;
        gen = 0;
        stop = false;
        busy = 0.0;
        domains = [];
      }
    in
    t.domains <- List.init (workers - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let size t = 1 + List.length t.domains

  let parallel_for t ~grain ~n f =
    if n > 0 then begin
      Mutex.lock t.m;
      t.job <- Some f;
      t.hi <- n;
      t.grain <- max 1 grain;
      Atomic.set t.next 0;
      t.gen <- t.gen + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      chew t f;
      Mutex.lock t.m;
      while t.active > 0 do
        Condition.wait t.donec t.m
      done;
      t.job <- None;
      Mutex.unlock t.m
    end

  let busy_seconds t =
    Mutex.lock t.m;
    let b = t.busy in
    Mutex.unlock t.m;
    b

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* ------------------------------------------------------------------ *)
(* Batch statistics                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable s_batches : int;
  mutable s_planned : int;
  mutable s_max_batch : int;
  mutable s_conflicts : int;
  mutable s_retries : int;
  s_size_hist : int array;
}

let size_hist_bounds = [| 1; 2; 4; 8; 16 |]

let fresh_stats () =
  {
    s_batches = 0;
    s_planned = 0;
    s_max_batch = 0;
    s_conflicts = 0;
    s_retries = 0;
    s_size_hist = Array.make (Array.length size_hist_bounds + 1) 0;
  }

(* Per batch, before execution — a function of the planner output only,
   so the counts cannot depend on the pool size. *)
let note_batch stats n =
  match stats with
  | None -> ()
  | Some s ->
    s.s_batches <- s.s_batches + 1;
    s.s_planned <- s.s_planned + n;
    if n > s.s_max_batch then s.s_max_batch <- n;
    let rec bucket i =
      if i >= Array.length size_hist_bounds || n <= size_hist_bounds.(i) then i else bucket (i + 1)
    in
    let b = bucket 0 in
    s.s_size_hist.(b) <- s.s_size_hist.(b) + 1

let note_conflict stats =
  match stats with
  | None -> ()
  | Some s -> s.s_conflicts <- s.s_conflicts + 1

let note_retry stats =
  match stats with
  | None -> ()
  | Some s -> s.s_retries <- s.s_retries + 1

(* ------------------------------------------------------------------ *)
(* Conflict footprints and the batch planner                           *)
(* ------------------------------------------------------------------ *)

type footprint =
  | Empty
  | Window of { group : int; lo : int; hi : int }

let conflict a b =
  match (a, b) with
  | Empty, _ | _, Empty -> false
  | Window a, Window b -> a.group = b.group && a.lo <= b.hi && b.lo <= a.hi

let global_footprint ?margin st net =
  match Global_router.column_window ?margin st net with
  | None -> Empty
  | Some w -> Window { group = -1; lo = w.I.lo; hi = w.I.hi }

let channel_extension st ~channel =
  let arch = Route_state.arch st in
  let m = ref 1 in
  for track = 0 to arch.Spr_arch.Arch.tracks - 1 do
    let segs = Spr_arch.Arch.hsegments arch ~channel ~track in
    Array.iter
      (fun s ->
        let l = I.length s in
        if l > !m then m := l)
      segs
  done;
  !m - 1

let detail_footprint st ~ext ~channel net =
  match List.assoc_opt channel (Route_state.h_demands st net) with
  | None -> Empty
  | Some span -> Window { group = channel; lo = span.I.lo - ext; hi = span.I.hi + ext }

let plan_batches fps queue =
  let n = Array.length queue in
  if n = 0 then []
  else begin
    let batch_of = Array.make n 0 in
    let n_batches = ref 1 in
    for i = 1 to n - 1 do
      let b = ref 0 in
      for k = 0 to i - 1 do
        if batch_of.(k) >= !b && conflict fps.(i) fps.(k) then b := batch_of.(k) + 1
      done;
      batch_of.(i) <- !b;
      if !b + 1 > !n_batches then n_batches := !b + 1
    done;
    let sizes = Array.make !n_batches 0 in
    Array.iter (fun b -> sizes.(b) <- sizes.(b) + 1) batch_of;
    let batches = Array.init !n_batches (fun b -> Array.make sizes.(b) 0) in
    let fill = Array.make !n_batches 0 in
    Array.iteri
      (fun i net ->
        let b = batch_of.(i) in
        batches.(b).(fill.(b)) <- net;
        fill.(b) <- fill.(b) + 1)
      queue;
    Array.to_list batches
  end

(* ------------------------------------------------------------------ *)
(* Conflict-forced serial retries                                      *)
(* ------------------------------------------------------------------ *)

type conflict_entry = { cf_channel : int; cf_key : int; cf_net : int }

(* Canonical position, not discovery order: the serial queues would
   re-present a conflicted net at (key desc, id desc) within its
   channel's sweep slot, so the retries must run there too. *)
let retry_order entries =
  List.stable_sort
    (fun a b ->
      let c = compare a.cf_channel b.cf_channel in
      if c <> 0 then c
      else
        let c = compare b.cf_key a.cf_key in
        if c <> 0 then c else compare b.cf_net a.cf_net)
    entries

(* ------------------------------------------------------------------ *)
(* The parallel router                                                 *)
(* ------------------------------------------------------------------ *)

type t = {
  st : Route_state.t;
  p : Pool.t option;
  grain : int;
  ext : int array;  (* per channel: sound detail-footprint widening *)
}

let create ?pool ?(grain = 8) st =
  let arch = Route_state.arch st in
  let ext =
    Array.init arch.Spr_arch.Arch.n_channels (fun channel -> channel_extension st ~channel)
  in
  { st; p = pool; grain = max 1 grain; ext }

let pool t = t.p

let bump_g_attempt = function
  | Some (c : Router.counters) -> c.c_global_attempts <- c.c_global_attempts + 1
  | None -> ()

let bump_g_routed = function
  | Some (c : Router.counters) -> c.c_global_routed <- c.c_global_routed + 1
  | None -> ()

let bump_d_attempt = function
  | Some (c : Router.counters) -> c.c_detail_attempts <- c.c_detail_attempts + 1
  | None -> ()

let bump_d_routed = function
  | Some (c : Router.counters) -> c.c_detail_routed <- c.c_detail_routed + 1
  | None -> ()

(* A batch dispatches to the pool only when both the pool and the batch
   have headroom; the choice steers execution strategy alone — results,
   counters and stats are identical either way. *)
let dispatchable t n = n >= 2 && (match t.p with Some p -> Pool.size p > 1 | None -> false)

let commit_global ?(config = Router.default_config) ?counters ?stats t j plans =
  let st = t.st in
  let routed = ref [] in
  let conflicts = ref [] in
  Array.iter
    (fun (net, plan) ->
      match plan with
      | None ->
        bump_g_attempt counters;
        Route_state.note_global_failure st net
      | Some (vr : Route_state.vroute) ->
        if Route_state.vrun_free st ~col:vr.v_col ~vtrack:vr.v_vtrack ~slo:vr.v_slo ~shi:vr.v_shi
        then begin
          bump_g_attempt counters;
          bump_g_routed counters;
          Route_state.claim_global st j net vr;
          routed := net :: !routed
        end
        else begin
          note_conflict stats;
          let key = Spr_layout.Placement.half_perimeter (Route_state.place st) net in
          conflicts := { cf_channel = -1; cf_key = key; cf_net = net } :: !conflicts
        end)
    plans;
  List.iter
    (fun { cf_net = net; _ } ->
      note_retry stats;
      bump_g_attempt counters;
      if
        Global_router.attempt ~margin:config.spine_margin
          ~max_candidates:config.spine_candidates st j net
      then begin
        bump_g_routed counters;
        routed := net :: !routed
      end
      else Route_state.note_global_failure st net)
    (retry_order !conflicts);
  List.rev !routed

let commit_detail ?(config = Router.default_config) ?counters ?stats t j plans =
  let st = t.st in
  let routed = ref [] in
  let conflicts = ref [] in
  Array.iter
    (fun (channel, net, plan) ->
      match plan with
      | None ->
        bump_d_attempt counters;
        Route_state.note_detail_failure st net ~channel
      | Some (hr : Route_state.hroute) ->
        if Route_state.hrun_free st ~channel:hr.h_channel ~track:hr.h_track ~slo:hr.h_slo
             ~shi:hr.h_shi
        then begin
          bump_d_attempt counters;
          bump_d_routed counters;
          Route_state.claim_detail st j net hr;
          routed := net :: !routed
        end
        else begin
          note_conflict stats;
          let key = Router.detail_demand_length st ~channel net in
          conflicts := { cf_channel = channel; cf_key = key; cf_net = net } :: !conflicts
        end)
    plans;
  List.iter
    (fun { cf_channel = channel; cf_net = net; _ } ->
      note_retry stats;
      bump_d_attempt counters;
      if Detail_router.attempt ~antifuse_weight:config.antifuse_weight st j ~net ~channel then begin
        bump_d_routed counters;
        routed := net :: !routed
      end
      else Route_state.note_detail_failure st net ~channel)
    (retry_order !conflicts);
  List.rev !routed

let reroute_global ?(config = Router.default_config) ?counters ?stats t j =
  let st = t.st in
  match Router.ordered_global_queue config st with
  | [] -> []
  | queue ->
    let arr = Array.of_list queue in
    let n = Array.length arr in
    (* Singleton queues skip footprint computation outright — the
       planner output (one batch of one) is the same either way. *)
    let batches =
      if n = 1 then [ arr ]
      else
        plan_batches (Array.map (fun net -> global_footprint ~margin:config.spine_margin st net) arr) arr
    in
    let changed = ref [] in
    let serial net =
      bump_g_attempt counters;
      if
        Global_router.attempt ~margin:config.spine_margin
          ~max_candidates:config.spine_candidates st j net
      then begin
        bump_g_routed counters;
        changed := net :: !changed
      end
      else Route_state.note_global_failure st net
    in
    List.iter
      (fun batch ->
        let nb = Array.length batch in
        note_batch stats nb;
        if dispatchable t nb then begin
          let plans = Array.make nb None in
          (match t.p with
          | Some p ->
            Pool.parallel_for p ~grain:t.grain ~n:nb (fun i ->
                plans.(i) <-
                  Global_router.plan ~margin:config.spine_margin
                    ~max_candidates:config.spine_candidates st batch.(i))
          | None -> assert false);
          let entries = Array.mapi (fun i net -> (net, plans.(i))) batch in
          changed := List.rev_append (commit_global ~config ?counters ?stats t j entries) !changed
        end
        else Array.iter serial batch)
      batches;
    List.sort_uniq compare !changed

let reroute_detail ?(config = Router.default_config) ?counters ?stats t j =
  let st = t.st in
  let arch = Route_state.arch st in
  let n_channels = arch.Spr_arch.Arch.n_channels in
  (* All channel queues snapshot up front — legal because detail claims
     in one channel never touch another channel's queue, demands or
     failure memo, so the snapshots equal what the serial sweep would
     compute lazily. *)
  let chan_batches =
    Array.init n_channels (fun channel ->
        match Router.ordered_detail_queue config st ~channel with
        | [] -> [||]
        | [ net ] -> [| [| net |] |]
        | queue ->
          let arr = Array.of_list queue in
          let ext = t.ext.(channel) in
          let fps = Array.map (fun net -> detail_footprint st ~ext ~channel net) arr in
          Array.of_list (plan_batches fps arr))
  in
  let rounds = Array.fold_left (fun m b -> max m (Array.length b)) 0 chan_batches in
  let changed = ref [] in
  let serial ~channel net =
    bump_d_attempt counters;
    if Detail_router.attempt ~antifuse_weight:config.antifuse_weight st j ~net ~channel then begin
      bump_d_routed counters;
      changed := net :: !changed
    end
    else Route_state.note_detail_failure st net ~channel
  in
  (* Round r unites every channel's r-th batch: channels own disjoint
     horizontal resources, so the union is itself conflict-free and one
     pool dispatch covers the whole sweep width. *)
  for r = 0 to rounds - 1 do
    let work = ref [] in
    let total = ref 0 in
    for channel = n_channels - 1 downto 0 do
      if r < Array.length chan_batches.(channel) then begin
        let batch = chan_batches.(channel).(r) in
        work := (channel, batch) :: !work;
        total := !total + Array.length batch
      end
    done;
    let work = !work in
    List.iter (fun (_, batch) -> note_batch stats (Array.length batch)) work;
    if dispatchable t !total then begin
      let tasks = Array.make !total (0, 0) in
      let fill = ref 0 in
      List.iter
        (fun (channel, batch) ->
          Array.iter
            (fun net ->
              tasks.(!fill) <- (channel, net);
              incr fill)
            batch)
        work;
      let plans = Array.make !total None in
      (match t.p with
      | Some p ->
        Pool.parallel_for p ~grain:t.grain ~n:!total (fun i ->
            let channel, net = tasks.(i) in
            plans.(i) <- Detail_router.plan ~antifuse_weight:config.antifuse_weight st ~net ~channel)
      | None -> assert false);
      let entries = Array.mapi (fun i (channel, net) -> (channel, net, plans.(i))) tasks in
      changed := List.rev_append (commit_detail ~config ?counters ?stats t j entries) !changed
    end
    else List.iter (fun (channel, batch) -> Array.iter (serial ~channel) batch) work
  done;
  List.sort_uniq compare !changed

let reroute ?(config = Router.default_config) ?counters ?stats t j =
  let g = reroute_global ~config ?counters ?stats t j in
  let d = reroute_detail ~config ?counters ?stats t j in
  List.sort_uniq compare (List.rev_append g d)
