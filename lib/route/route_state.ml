module I = Spr_util.Interval
module J = Spr_util.Journal
module Q = Spr_util.Iqueue

type hroute = {
  h_channel : int;
  h_track : int;
  h_slo : int;
  h_shi : int;
  h_span : I.t;
}

type vroute = {
  v_col : int;
  v_vtrack : int;
  v_slo : int;
  v_shi : int;
  v_span : I.t;
}

(* Per-net routing status. [in_ug]/[missing] mirror the queue tables and
   the [d_flag] mirrors the net's contribution to the D count; the
   mirrors exist so every transition is O(1) and undoable. *)
type nstat = {
  mutable needs_v : bool;
  mutable vr : vroute option;
  mutable demands : (int * I.t) list;
  mutable hroutes : (int * hroute) list;
  mutable in_ug : bool;
  mutable missing : int list;
  mutable d_flag : bool;
}

type t = {
  place : Spr_layout.Placement.t;
  arch : Spr_arch.Arch.t;
  nl : Spr_netlist.Netlist.t;
  h_owner : int array array array;  (* channel -> track -> seg -> net / -1 *)
  v_owner : int array array array;  (* col -> vtrack -> seg -> net / -1 *)
  nstats : nstat array;
  ug : Q.t;  (* U_G retry queue, keyed by estimated length (half-perimeter) *)
  ud : Q.t array;  (* per channel U_D,R queues, keyed by demand span length *)
  dirty : Spr_util.Bitset.t;  (* nets touched since the last [clear_dirty] *)
  routable : bool array;  (* >= 2 terminals, fixed by the netlist *)
  n_routable : int;
  mutable d_total : int;
  (* Failure memoization (not journaled; see the interface): free-epochs
     advance whenever resources are released in a column bucket, stamps
     record the relevant epoch maximum at a net's last failed attempt.
     Stamp -1 forces an attempt. *)
  h_epoch : int array array;  (* per channel, per column bucket *)
  v_epoch : int array;  (* per column bucket *)
  g_stamp : int array;  (* per net *)
  d_stamp : int array array;  (* per net, per channel *)
}

let bucket_width = 8

let bucket col = col / bucket_width

let n_buckets cols = ((cols - 1) / bucket_width) + 1

let place t = t.place

let arch t = t.arch

let netlist t = t.nl

let g_count t = Q.length t.ug

let d_count t = t.d_total

let n_routable t = t.n_routable

let fully_routed t = t.d_total = 0

let needs_global t net = t.nstats.(net).needs_v

let global_route t net = t.nstats.(net).vr

let h_demands t net = t.nstats.(net).demands

let h_routes t net = t.nstats.(net).hroutes

let routable t net = t.routable.(net)

let in_ug_flag t net = t.nstats.(net).in_ug

let missing_channels t net = t.nstats.(net).missing

let d_flag t net = t.nstats.(net).d_flag

let is_fully_routed t net =
  let ns = t.nstats.(net) in
  t.routable.(net) && not ns.in_ug && ns.missing = [] && ns.demands <> []

(* Queue enumeration is the paper's explicit retry order (§3.3/§3.4):
   estimated length descending, net id descending on ties — never a
   hash-table artifact. *)
let u_g t = Q.to_list t.ug

let u_d t channel = Q.to_list t.ud.(channel)

let dirty_nets t = Spr_util.Bitset.to_list t.dirty

let clear_dirty t = Spr_util.Bitset.clear t.dirty

let mark_dirty t net = ignore (Spr_util.Bitset.add t.dirty net)

let hseg_owner t ~channel ~track ~seg = t.h_owner.(channel).(track).(seg)

let vseg_owner t ~col ~vtrack ~seg = t.v_owner.(col).(vtrack).(seg)

let hrun_free t ~channel ~track ~slo ~shi =
  let arr = t.h_owner.(channel).(track) in
  let rec loop i = i > shi || (arr.(i) = -1 && loop (i + 1)) in
  loop slo

let vrun_free t ~col ~vtrack ~slo ~shi =
  let arr = t.v_owner.(col).(vtrack) in
  let rec loop i = i > shi || (arr.(i) = -1 && loop (i + 1)) in
  loop slo

(* --- journaled primitive mutations --- *)

let set_owner j arr seg v =
  let old = arr.(seg) in
  arr.(seg) <- v;
  J.record j (fun () -> arr.(seg) <- old)

let set_d_flag t j ns flag =
  if ns.d_flag <> flag then begin
    let old = ns.d_flag in
    ns.d_flag <- flag;
    t.d_total <- t.d_total + (if flag then 1 else -1);
    J.record j (fun () ->
        ns.d_flag <- old;
        t.d_total <- t.d_total + (if flag then -1 else 1))
  end

let refresh_d t j ns = set_d_flag t j ns (ns.in_ug || ns.missing <> [])

(* Enqueueing always (re)keys by the net's current estimated length, so
   even a net already queued whose pins just moved ends up at its proper
   retry rank. *)
let set_in_ug t j net flag =
  let ns = t.nstats.(net) in
  if flag then begin
    if not ns.in_ug then begin
      ns.in_ug <- true;
      J.record j (fun () -> ns.in_ug <- false)
    end;
    Q.add ~j t.ug net ~key:(Spr_layout.Placement.half_perimeter t.place net)
  end
  else if ns.in_ug then begin
    ns.in_ug <- false;
    J.record j (fun () -> ns.in_ug <- true);
    ignore (Q.remove ~j t.ug net)
  end

let set_vr j ns vr =
  let old = ns.vr in
  ns.vr <- vr;
  J.record j (fun () -> ns.vr <- old)

let set_needs_v j ns v =
  if ns.needs_v <> v then begin
    let old = ns.needs_v in
    ns.needs_v <- v;
    J.record j (fun () -> ns.needs_v <- old)
  end

let set_demands j ns demands =
  let old = ns.demands in
  ns.demands <- demands;
  J.record j (fun () -> ns.demands <- old)

let set_hroutes j ns hroutes =
  let old = ns.hroutes in
  ns.hroutes <- hroutes;
  J.record j (fun () -> ns.hroutes <- old)

let set_missing t j net missing =
  let ns = t.nstats.(net) in
  let old = ns.missing in
  ns.missing <- missing;
  J.record j (fun () -> ns.missing <- old);
  List.iter
    (fun ch -> if not (List.mem ch missing) then ignore (Q.remove ~j t.ud.(ch) net))
    old;
  (* Unconditional add: re-keys a still-queued channel whose demand span
     changed, so queue rank always reflects the current demand. *)
  List.iter
    (fun ch ->
      let key =
        match List.assoc_opt ch ns.demands with Some span -> I.length span | None -> 0
      in
      Q.add ~j t.ud.(ch) net ~key)
    missing

(* --- demand computation from the current placement --- *)

(* Group the net's pins by channel into per-channel column spans; when a
   spine column is chosen, every span must also reach the spine. *)
let channel_spans pins spine_col =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (ch, col) ->
      match Hashtbl.find_opt tbl ch with
      | None -> Hashtbl.replace tbl ch (col, col)
      | Some (lo, hi) -> Hashtbl.replace tbl ch (min lo col, max hi col))
    pins;
  let spans = Hashtbl.fold (fun ch (lo, hi) acc -> (ch, lo, hi) :: acc) tbl [] in
  let spans = List.sort compare spans in
  List.map
    (fun (ch, lo, hi) ->
      match spine_col with
      | None -> (ch, I.make lo hi)
      | Some x -> (ch, I.make (min lo x) (max hi x)))
    spans

let distinct_channels pins = List.sort_uniq compare (List.map fst pins)

(* --- segment claiming --- *)

let free_route_segments t j net =
  let ns = t.nstats.(net) in
  (match ns.vr with
  | None -> ()
  | Some vr ->
    let arr = t.v_owner.(vr.v_col).(vr.v_vtrack) in
    for s = vr.v_slo to vr.v_shi do
      assert (arr.(s) = net);
      set_owner j arr s (-1)
    done;
    let b = bucket vr.v_col in
    t.v_epoch.(b) <- t.v_epoch.(b) + 1);
  List.iter
    (fun (_, hr) ->
      let ch = hr.h_channel in
      let arr = t.h_owner.(ch).(hr.h_track) in
      for s = hr.h_slo to hr.h_shi do
        assert (arr.(s) = net);
        set_owner j arr s (-1)
      done;
      let segs = t.arch.Spr_arch.Arch.hsegs.(ch).(hr.h_track) in
      let blo = bucket segs.(hr.h_slo).I.lo and bhi = bucket segs.(hr.h_shi).I.hi in
      for b = blo to bhi do
        t.h_epoch.(ch).(b) <- t.h_epoch.(ch).(b) + 1
      done)
    ns.hroutes

let max_epoch epochs blo bhi =
  let top = Array.length epochs - 1 in
  let blo = max 0 blo and bhi = min top bhi in
  let m = ref 0 in
  for b = blo to bhi do
    if epochs.(b) > !m then m := epochs.(b)
  done;
  !m

(* The spine search window: pin column bbox with a generous margin (an
   over-approximation of any router margin up to 4 is fine — too-wide
   windows only cost redundant attempts, never missed ones). *)
let global_window t net =
  let pins = Spr_layout.Placement.net_pin_positions t.place net in
  let cols = List.map snd pins in
  let xlo = List.fold_left min max_int cols and xhi = List.fold_left max min_int cols in
  (bucket (xlo - 16), bucket (xhi + 16))

let global_attempt_pending t net =
  t.g_stamp.(net) = -1
  ||
  let blo, bhi = global_window t net in
  t.g_stamp.(net) < max_epoch t.v_epoch blo bhi

let note_global_failure t net =
  let blo, bhi = global_window t net in
  t.g_stamp.(net) <- max_epoch t.v_epoch blo bhi

let demand_span t net channel = List.assoc_opt channel t.nstats.(net).demands

let detail_attempt_pending t net ~channel =
  t.d_stamp.(net).(channel) = -1
  ||
  match demand_span t net channel with
  | None -> false
  | Some span ->
    t.d_stamp.(net).(channel)
    < max_epoch t.h_epoch.(channel) (bucket span.I.lo) (bucket span.I.hi)

let note_detail_failure t net ~channel =
  match demand_span t net channel with
  | None -> ()
  | Some span ->
    t.d_stamp.(net).(channel) <-
      max_epoch t.h_epoch.(channel) (bucket span.I.lo) (bucket span.I.hi)

let reset_stamps t net =
  t.g_stamp.(net) <- -1;
  Array.fill t.d_stamp.(net) 0 (Array.length t.d_stamp.(net)) (-1)

let force_retry = reset_stamps

(* Memoization snapshot: stamps and epochs gate which queued nets the
   router retries, so a resumed run must carry them to stay on the
   interrupted run's exact trajectory. *)
type memo = {
  m_g_stamp : int array;
  m_d_stamp : int array array;
  m_h_epoch : int array array;
  m_v_epoch : int array;
}

let memo t =
  {
    m_g_stamp = Array.copy t.g_stamp;
    m_d_stamp = Array.map Array.copy t.d_stamp;
    m_h_epoch = Array.map Array.copy t.h_epoch;
    m_v_epoch = Array.copy t.v_epoch;
  }

let set_memo t m =
  let same_shape a b = Array.length a = Array.length b in
  let same_shape2 a b =
    same_shape a b && Array.for_all2 (fun x y -> same_shape x y) a b
  in
  if
    not
      (same_shape t.g_stamp m.m_g_stamp
      && same_shape2 t.d_stamp m.m_d_stamp
      && same_shape2 t.h_epoch m.m_h_epoch
      && same_shape t.v_epoch m.m_v_epoch)
  then Error "memoization state does not match the design/fabric shape"
  else begin
    Array.blit m.m_g_stamp 0 t.g_stamp 0 (Array.length t.g_stamp);
    Array.iteri (fun i row -> Array.blit row 0 t.d_stamp.(i) 0 (Array.length row)) m.m_d_stamp;
    Array.iteri (fun i row -> Array.blit row 0 t.h_epoch.(i) 0 (Array.length row)) m.m_h_epoch;
    Array.blit m.m_v_epoch 0 t.v_epoch 0 (Array.length t.v_epoch);
    Ok ()
  end

(* --- public mutations --- *)

let queue_detail_demands t j net demands =
  let ns = t.nstats.(net) in
  set_demands j ns demands;
  set_missing t j net (List.map fst demands);
  refresh_d t j ns

let satisfy_trivial_global t j net =
  let ns = t.nstats.(net) in
  mark_dirty t net;
  let pins = Spr_layout.Placement.net_pin_positions t.place net in
  set_needs_v j ns false;
  set_vr j ns None;
  set_in_ug t j net false;
  queue_detail_demands t j net (channel_spans pins None)

let rip_up t j net =
  if t.routable.(net) then begin
    let ns = t.nstats.(net) in
    mark_dirty t net;
    reset_stamps t net;
    free_route_segments t j net;
    set_vr j ns None;
    set_hroutes j ns [];
    set_demands j ns [];
    set_missing t j net [];
    let pins = Spr_layout.Placement.net_pin_positions t.place net in
    match distinct_channels pins with
    | [] ->
      (* Routable nets always have a driver and a sink pin. *)
      assert false
    | [ _ ] -> satisfy_trivial_global t j net
    | _ :: _ :: _ ->
      set_needs_v j ns true;
      set_in_ug t j net true;
      refresh_d t j ns
  end

let claim_global t j net vr =
  let ns = t.nstats.(net) in
  mark_dirty t net;
  assert ns.in_ug;
  assert (vrun_free t ~col:vr.v_col ~vtrack:vr.v_vtrack ~slo:vr.v_slo ~shi:vr.v_shi);
  let arr = t.v_owner.(vr.v_col).(vr.v_vtrack) in
  for s = vr.v_slo to vr.v_shi do
    set_owner j arr s net
  done;
  set_vr j ns (Some vr);
  set_in_ug t j net false;
  (* The new demands deserve fresh detail attempts regardless of
     previously recorded failures. *)
  Array.fill t.d_stamp.(net) 0 (Array.length t.d_stamp.(net)) (-1);
  let pins = Spr_layout.Placement.net_pin_positions t.place net in
  queue_detail_demands t j net (channel_spans pins (Some vr.v_col))

let claim_detail t j net hr =
  let ns = t.nstats.(net) in
  mark_dirty t net;
  assert (List.mem hr.h_channel ns.missing);
  assert (hrun_free t ~channel:hr.h_channel ~track:hr.h_track ~slo:hr.h_slo ~shi:hr.h_shi);
  let arr = t.h_owner.(hr.h_channel).(hr.h_track) in
  for s = hr.h_slo to hr.h_shi do
    set_owner j arr s net
  done;
  set_hroutes j ns ((hr.h_channel, hr) :: ns.hroutes);
  set_missing t j net (List.filter (fun ch -> ch <> hr.h_channel) ns.missing);
  refresh_d t j ns

(* --- construction --- *)

let create place =
  let arch = Spr_layout.Placement.arch place in
  let nl = Spr_layout.Placement.netlist place in
  let open Spr_arch in
  let h_owner =
    Array.init arch.Arch.n_channels (fun ch ->
        Array.init arch.Arch.tracks (fun tr ->
            Array.make (Array.length arch.Arch.hsegs.(ch).(tr)) (-1)))
  in
  let v_owner =
    Array.init arch.Arch.cols (fun col ->
        Array.init arch.Arch.vtracks (fun vt ->
            Array.make (Array.length arch.Arch.vsegs.(col).(vt)) (-1)))
  in
  let n_nets = Spr_netlist.Netlist.n_nets nl in
  let routable =
    Array.init n_nets (fun n ->
        Array.length (Spr_netlist.Netlist.net nl n).Spr_netlist.Netlist.sinks >= 1)
  in
  let nstats =
    Array.init n_nets (fun _ ->
        {
          needs_v = false;
          vr = None;
          demands = [];
          hroutes = [];
          in_ug = false;
          missing = [];
          d_flag = false;
        })
  in
  let t =
    {
      place;
      arch;
      nl;
      h_owner;
      v_owner;
      nstats;
      ug = Q.create ~capacity:n_nets;
      ud = Array.init arch.Arch.n_channels (fun _ -> Q.create ~capacity:n_nets);
      dirty = Spr_util.Bitset.create ~capacity:n_nets;
      routable;
      n_routable = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 routable;
      d_total = 0;
      h_epoch =
        Array.init arch.Arch.n_channels (fun _ -> Array.make (n_buckets arch.Arch.cols) 0);
      v_epoch = Array.make (n_buckets arch.Arch.cols) 0;
      g_stamp = Array.make n_nets (-1);
      d_stamp = Array.init n_nets (fun _ -> Array.make arch.Arch.n_channels (-1));
    }
  in
  let j = J.create () in
  for net = 0 to n_nets - 1 do
    rip_up t j net
  done;
  J.commit j;
  t

type embedding = {
  e_global : vroute option;
  e_hroutes : (int * hroute) list;
}

let embedding t net =
  let ns = t.nstats.(net) in
  if is_fully_routed t net then Some { e_global = ns.vr; e_hroutes = ns.hroutes } else None

(* --- validation --- *)

let check t =
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let open Spr_arch in
  (* 1. Every owned segment is listed by its owner's route. *)
  let listed_h = Hashtbl.create 64 in
  let listed_v = Hashtbl.create 64 in
  Array.iteri
    (fun net ns ->
      (match ns.vr with
      | None -> ()
      | Some vr ->
        for s = vr.v_slo to vr.v_shi do
          Hashtbl.replace listed_v (vr.v_col, vr.v_vtrack, s) net
        done);
      List.iter
        (fun (ch, hr) ->
          if ch <> hr.h_channel then fail "net %d: hroute channel key mismatch" net;
          for s = hr.h_slo to hr.h_shi do
            Hashtbl.replace listed_h (hr.h_channel, hr.h_track, s) net
          done)
        ns.hroutes)
    t.nstats;
  Array.iteri
    (fun ch per_track ->
      Array.iteri
        (fun tr arr ->
          Array.iteri
            (fun s owner ->
              let listed = Hashtbl.find_opt listed_h (ch, tr, s) in
              match owner, listed with
              | -1, None -> ()
              | -1, Some n -> fail "h seg (%d,%d,%d) listed by net %d but free" ch tr s n
              | o, None -> fail "h seg (%d,%d,%d) owned by %d but unlisted" ch tr s o
              | o, Some n -> if o <> n then fail "h seg (%d,%d,%d) owner %d vs listed %d" ch tr s o n)
            arr)
        per_track)
    t.h_owner;
  Array.iteri
    (fun col per_vt ->
      Array.iteri
        (fun vt arr ->
          Array.iteri
            (fun s owner ->
              let listed = Hashtbl.find_opt listed_v (col, vt, s) in
              match owner, listed with
              | -1, None -> ()
              | -1, Some n -> fail "v seg (%d,%d,%d) listed by net %d but free" col vt s n
              | o, None -> fail "v seg (%d,%d,%d) owned by %d but unlisted" col vt s o
              | o, Some n -> if o <> n then fail "v seg (%d,%d,%d) owner %d vs listed %d" col vt s o n)
            arr)
        per_vt)
    t.v_owner;
  (* 2. Per-net structural invariants against the current placement. *)
  let d_expected = ref 0 in
  Array.iteri
    (fun net ns ->
      if not t.routable.(net) then begin
        if ns.in_ug || ns.missing <> [] || ns.vr <> None || ns.hroutes <> [] then
          fail "unroutable net %d has routing state" net
      end
      else begin
        let pins = Spr_layout.Placement.net_pin_positions t.place net in
        let chans = distinct_channels pins in
        let needs_v = List.length chans > 1 in
        if ns.needs_v <> needs_v then fail "net %d: needs_v stale" net;
        if ns.in_ug <> (needs_v && ns.vr = None) then fail "net %d: in_ug inconsistent" net;
        if Q.mem t.ug net <> ns.in_ug then fail "net %d: ug queue mismatch" net;
        if
          ns.in_ug
          && Q.key t.ug net <> Spr_layout.Placement.half_perimeter t.place net
        then fail "net %d: ug retry key stale" net;
        if ns.in_ug && (ns.demands <> [] || ns.hroutes <> [] || ns.missing <> []) then
          fail "net %d: globally unrouted but has detail state" net;
        if not ns.in_ug then begin
          let spine = Option.map (fun vr -> vr.v_col) ns.vr in
          let expect = channel_spans pins spine in
          if expect <> List.sort compare ns.demands then fail "net %d: demands stale" net;
          (match ns.vr with
          | None -> if needs_v then fail "net %d: needs spine but has none" net
          | Some vr ->
            let lo = List.fold_left min max_int chans
            and hi = List.fold_left max min_int chans in
            if not (I.covers vr.v_span (I.make lo hi)) then
              fail "net %d: spine does not cover channel span" net;
            let segs = Arch.vsegments t.arch ~col:vr.v_col ~vtrack:vr.v_vtrack in
            let covered = I.make segs.(vr.v_slo).I.lo segs.(vr.v_shi).I.hi in
            if not (I.covers covered vr.v_span) then fail "net %d: vroute gap" net);
          (* Each demand is either routed or queued, never both. *)
          List.iter
            (fun (ch, span) ->
              let routed = List.mem_assoc ch ns.hroutes in
              let queued = List.mem ch ns.missing in
              if routed && queued then fail "net %d ch %d: routed and queued" net ch;
              if (not routed) && not queued then fail "net %d ch %d: demand dropped" net ch;
              if queued then begin
                if not (Q.mem t.ud.(ch) net) then
                  fail "net %d ch %d: missing from ud queue" net ch
                else if Q.key t.ud.(ch) net <> I.length span then
                  fail "net %d ch %d: ud retry key stale" net ch
              end;
              match List.assoc_opt ch ns.hroutes with
              | None -> ()
              | Some hr ->
                if hr.h_span <> span then fail "net %d ch %d: hroute span stale" net ch;
                let segs = Arch.hsegments t.arch ~channel:ch ~track:hr.h_track in
                let covered = I.make segs.(hr.h_slo).I.lo segs.(hr.h_shi).I.hi in
                if not (I.covers covered span) then fail "net %d ch %d: hroute gap" net ch)
            ns.demands;
          List.iter
            (fun (ch, _) ->
              if not (List.mem_assoc ch ns.demands) then
                fail "net %d: hroute in undemanded channel %d" net ch)
            ns.hroutes
        end;
        let d_flag = ns.in_ug || ns.missing <> [] in
        if ns.d_flag <> d_flag then fail "net %d: d_flag stale" net;
        if d_flag then incr d_expected
      end)
    t.nstats;
  if t.d_total <> !d_expected then fail "d_total %d but expected %d" t.d_total !d_expected;
  Array.iteri
    (fun ch q ->
      (match Q.check q with
      | Error e -> fail "ud queue ch %d: %s" ch e
      | Ok () -> ());
      Q.iter
        (fun net ->
          if not (List.mem ch t.nstats.(net).missing) then
            fail "ud queue ch %d lists net %d not missing there" ch net)
        q)
    t.ud;
  (match Q.check t.ug with
  | Error e -> fail "ug queue: %s" e
  | Ok () -> ());
  (match Spr_util.Bitset.check t.dirty with
  | Error e -> fail "dirty set: %s" e
  | Ok () -> ());
  match !error with Some e -> Error e | None -> Ok ()

module Debug = struct
  let flip_d_flag t net =
    let ns = t.nstats.(net) in
    ns.d_flag <- not ns.d_flag

  let flip_in_ug_flag t net =
    let ns = t.nstats.(net) in
    ns.in_ug <- not ns.in_ug

  let clear_missing t net = t.nstats.(net).missing <- []

  let set_hseg_owner t ~channel ~track ~seg owner = t.h_owner.(channel).(track).(seg) <- owner

  let set_vseg_owner t ~col ~vtrack ~seg owner = t.v_owner.(col).(vtrack).(seg) <- owner

  let bump_d_total t delta = t.d_total <- t.d_total + delta
end

let snapshot t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Array.iteri
    (fun ch per_track ->
      Array.iteri
        (fun tr arr ->
          Array.iteri (fun s o -> if o <> -1 then add "h %d %d %d = %d\n" ch tr s o) arr)
        per_track)
    t.h_owner;
  Array.iteri
    (fun col per_vt ->
      Array.iteri
        (fun vt arr ->
          Array.iteri (fun s o -> if o <> -1 then add "v %d %d %d = %d\n" col vt s o) arr)
        per_vt)
    t.v_owner;
  Array.iteri
    (fun net ns ->
      add "net %d: needs_v=%b in_ug=%b d_flag=%b\n" net ns.needs_v ns.in_ug ns.d_flag;
      (match ns.vr with
      | None -> ()
      | Some vr -> add "  vr col=%d vt=%d [%d..%d]\n" vr.v_col vr.v_vtrack vr.v_slo vr.v_shi);
      List.iter
        (fun (ch, span) -> add "  demand ch=%d %s\n" ch (I.to_string span))
        (List.sort compare ns.demands);
      List.iter
        (fun (ch, hr) ->
          add "  hr ch=%d tr=%d [%d..%d] %s\n" ch hr.h_track hr.h_slo hr.h_shi
            (I.to_string hr.h_span))
        (List.sort compare ns.hroutes);
      List.iter (fun ch -> add "  missing ch=%d\n" ch) (List.sort compare ns.missing))
    t.nstats;
  add "g=%d d=%d\n" (g_count t) (d_count t);
  Buffer.contents buf
