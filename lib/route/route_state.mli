(** Mutable routing state over a placement: segment ownership, per-net
    partial routes, and the unroutable-net queues U{_G} and U{_D,R} of
    paper §3.3-3.4.

    Nets appear in three states (paper §3.2): completely unrouted,
    globally routed but not detail routed, and completely embedded. A net
    spanning several channels needs a {e global route} — a stack of
    vertical segments (a spine) at one feedthrough column; every channel
    holding terminals of the net then needs a {e detailed route} — a run
    of consecutive free segments on a single horizontal track covering the
    net's column span in that channel (including the spine column).

    All mutations take a {!Spr_util.Journal.t} and are fully undoable, so
    a rejected annealing move can roll back rip-ups and re-routes
    exactly. *)

type hroute = {
  h_channel : int;
  h_track : int;
  h_slo : int;  (** First claimed segment index on the track. *)
  h_shi : int;  (** Last claimed segment index. *)
  h_span : Spr_util.Interval.t;  (** Column span the route must cover. *)
}

type vroute = {
  v_col : int;
  v_vtrack : int;
  v_slo : int;
  v_shi : int;
  v_span : Spr_util.Interval.t;  (** Channel span covered by the spine. *)
}

type t

val create : Spr_layout.Placement.t -> t
(** All nets start completely unrouted: every routable net is queued. *)

val place : t -> Spr_layout.Placement.t

val arch : t -> Spr_arch.Arch.t

val netlist : t -> Spr_netlist.Netlist.t

(** {1 Cost-function counts} *)

val g_count : t -> int
(** [G]: number of nets that need but lack a global route. *)

val d_count : t -> int
(** [D]: number of nets that lack a complete detailed routing (a net
    without its global route also counts, per paper §3.4). *)

val n_routable : t -> int
(** Number of nets with at least two terminals (the denominator for the
    Figure 6 percentages). *)

val fully_routed : t -> bool

(** {1 Per-net inspection} *)

val needs_global : t -> int -> bool

val global_route : t -> int -> vroute option

val h_demands : t -> int -> (int * Spr_util.Interval.t) list
(** [(channel, span)] detailed-routing obligations; empty until the
    net's global route exists. *)

val h_routes : t -> int -> (int * hroute) list
(** Completed channel routes, keyed by channel. *)

val is_fully_routed : t -> int -> bool

(** {2 Mirror inspection}

    Read-only views of the O(1) bookkeeping mirrors, exposed so an
    external auditor ({!Spr_check.Route_audit}) can diff them against a
    from-scratch recomputation. Not needed by routers. *)

val routable : t -> int -> bool
(** Whether the net has at least one sink (fixed by the netlist). *)

val in_ug_flag : t -> int -> bool
(** The net's [in_ug] mirror flag (the U{_G} membership cache), as
    distinct from actual membership in the U{_G} table reported by
    {!u_g}. *)

val missing_channels : t -> int -> int list
(** Channels where the net still awaits a detailed route (the per-net
    mirror of the U{_D,R} tables). *)

val d_flag : t -> int -> bool
(** The net's cached contribution to the [D] count. *)

(** {1 Queues} *)

val u_g : t -> int list
(** Nets currently awaiting a global route, in explicit retry order:
    estimated length (bounding-box half-perimeter) descending, net id
    descending on ties (paper §3.3). The order is a property of the
    queue contents, never of hash internals, and survives rollback
    bit-for-bit. *)

val u_d : t -> int -> int list
(** [u_d t channel]: nets awaiting a detailed route in that channel, in
    retry order: demand span length descending, net id descending on
    ties (paper §3.4). *)

(** {2 Dirty-net tracking}

    Every mutation ({!rip_up}, {!claim_global}, {!claim_detail}) marks
    its net in a dense dirty set, replacing the ad-hoc ripped/rerouted
    lists the move transaction used to concatenate. The set is scratch
    state for the current move: monotone, unjournaled, and cleared by
    the consumer once the dirty nets have been handed to timing. *)

val dirty_nets : t -> int list
(** Nets touched since the last {!clear_dirty}, ascending. *)

val clear_dirty : t -> unit

(** {2 Failure memoization}

    A queued net whose last routing attempt failed can only succeed after
    relevant resources are freed (or its pins move, which re-queues it
    through {!rip_up}). The state tracks a free-epoch per channel and one
    for the vertical resources; routers consult these to skip attempts
    that would fail identically. The epochs are deliberately not
    journaled: after a rollback the state is exactly the pre-move state,
    so a recorded failure remains valid, and a spurious pending flag only
    costs one redundant attempt. *)

val global_attempt_pending : t -> int -> bool

val note_global_failure : t -> int -> unit

val detail_attempt_pending : t -> int -> channel:int -> bool

val note_detail_failure : t -> int -> channel:int -> unit

val force_retry : t -> int -> unit
(** Clear the net's recorded failures so the next pass re-attempts it
    (used when a router is about to search with different parameters,
    e.g. a widened spine margin). *)

type memo = {
  m_g_stamp : int array;  (** per net *)
  m_d_stamp : int array array;  (** per net, per channel *)
  m_h_epoch : int array array;  (** per channel, per column bucket *)
  m_v_epoch : int array;  (** per column bucket *)
}
(** Snapshot of the failure-memoization state. The stamps gate which
    queued nets the routers retry, so although the memo never affects
    which routes are {e legal}, it does affect which candidate the
    retry pass picks next — a checkpoint that wants a bit-identical
    resume must carry it. *)

val memo : t -> memo
(** Deep copy of the current stamps and epochs. *)

val set_memo : t -> memo -> (unit, string) result
(** Overwrite the stamps and epochs from a snapshot. [Error] (and no
    mutation) if the snapshot's dimensions do not match this state's
    design and fabric. *)

(** {1 Segment availability} *)

val hseg_owner : t -> channel:int -> track:int -> seg:int -> int
(** Owning net id, or [-1] when free. *)

val vseg_owner : t -> col:int -> vtrack:int -> seg:int -> int

val hrun_free : t -> channel:int -> track:int -> slo:int -> shi:int -> bool

val vrun_free : t -> col:int -> vtrack:int -> slo:int -> shi:int -> bool

(** {1 Mutation (all journaled)} *)

val rip_up : t -> Spr_util.Journal.t -> int -> unit
(** Free every segment of the net, drop its routes, recompute its demand
    from the {e current} placement and pinmaps, and queue it
    (into U{_G} when it spans channels, else into the relevant U{_D,R}).
    Call after the placement mutation that invalidated the net. *)

val claim_global : t -> Spr_util.Journal.t -> int -> vroute -> unit
(** Record a global route for a net in U{_G}; claims the vertical
    segments (which must be free), computes the per-channel detailed
    demands, and queues them. *)

val satisfy_trivial_global : t -> Spr_util.Journal.t -> int -> unit
(** For single-channel nets: mark the (null) global route done and queue
    the detailed demand. Applied automatically by {!rip_up}; exposed for
    tests. *)

val claim_detail : t -> Spr_util.Journal.t -> int -> hroute -> unit
(** Record a detailed route for one queued channel demand of the net;
    claims the horizontal segments (which must be free). *)

(** {1 Whole-net embedding (for timing)} *)

type embedding = {
  e_global : vroute option;
  e_hroutes : (int * hroute) list;
}

val embedding : t -> int -> embedding option
(** [Some] only when the net is fully routed. *)

(** {1 Validation} *)

val check : t -> (unit, string) result
(** Exhaustive invariant check (ownership consistency, coverage,
    contiguity, demand/queue/counter agreement with the current
    placement). Used by tests; O(fabric + nets). *)

module Debug : sig
  (** Deliberate state corruption, for tests only: each setter desyncs
      exactly one mirror or owner entry {e without} touching anything
      else, so the mutation smoke tests can verify that every auditor
      actually detects the fault it claims to cover. Never call these
      outside tests. *)

  val flip_d_flag : t -> int -> unit

  val flip_in_ug_flag : t -> int -> unit

  val clear_missing : t -> int -> unit
  (** Empty the net's missing-channel mirror, leaving the U{_D,R} tables
      and the D count stale. *)

  val set_hseg_owner : t -> channel:int -> track:int -> seg:int -> int -> unit

  val set_vseg_owner : t -> col:int -> vtrack:int -> seg:int -> int -> unit

  val bump_d_total : t -> int -> unit
end

val snapshot : t -> string
(** Deterministic serialization of the observable routing state (segment
    ownership, per-net routes and demands, queues, counters) — two states
    are equal iff their snapshots are equal. Tests use this to verify
    that a rolled-back transaction restores the state exactly. *)
