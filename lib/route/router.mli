(** Incremental rip-up-and-reroute pass (paper §3.3-3.4).

    After every placement or pinmap perturbation the nets attached to the
    perturbed cells are ripped up and queued. One {!reroute} pass then
    works down U{_G} in decreasing estimated-length order giving each net
    a spine, and then sweeps the channels giving every queued net in each
    U{_D,R} a track run, longest first. Nets the heuristics cannot place
    stay queued and are retried after subsequent moves. *)

type config = {
  spine_margin : int;  (** Columns the spine may sit outside the pin bbox. *)
  spine_candidates : int;  (** Bound on spine columns probed per attempt. *)
  antifuse_weight : float;  (** Detailed-route cost per segment used. *)
  retry_cap : int;
      (** Upper bound on queued nets attempted per pass and per queue; keeps
          the per-move cost bounded when the design is badly unroutable.
          Ripped nets of the current move always fit under the cap in
          practice since the queues are sorted longest-first. *)
  criticality : (int -> float) option;
      (** When set, queues order by (criticality, estimated length)
          descending instead of length alone — the "prioritize critical
          nets" behaviour of the routers the paper builds on ([8], [11]).
          The callback must be cheap; the simultaneous tool passes the
          net driver's current arrival time. *)
}

val default_config : config

type counters = {
  mutable c_global_attempts : int;
  mutable c_global_routed : int;
  mutable c_detail_attempts : int;
  mutable c_detail_routed : int;
}
(** Per-phase attempt/success tallies, accumulated across passes when
    the same record is threaded through several calls (the move
    pipeline's profile does exactly that). *)

val fresh_counters : unit -> counters

val ordered_global_queue : config -> Route_state.t -> int list
(** Snapshot of the nets one global sub-phase will attempt, in attempt
    order: U{_G} filtered by the failure memo, re-ordered by criticality
    when configured, truncated to [retry_cap]. Both the serial pass and
    the parallel batch planner consume exactly this snapshot, which is
    the root of their bit-identity. *)

val ordered_detail_queue : config -> Route_state.t -> channel:int -> int list
(** Snapshot of the nets one detailed sub-phase will attempt in
    [channel], in attempt order (demand span length descending). Same
    contract as {!ordered_global_queue}. *)

val detail_demand_length : Route_state.t -> channel:int -> int -> int
(** Length of the net's queued demand span in [channel] (0 when none) —
    the canonical retry key of U{_D,R}. *)

val rip_up_cell : Route_state.t -> Spr_util.Journal.t -> int -> int list
(** Rip up and queue every net attached to the cell; returns the ripped
    net ids (the timing analyzer must re-estimate their delays). *)

val reroute_global :
  ?config:config -> ?counters:counters -> Route_state.t -> Spr_util.Journal.t -> int list
(** The global sub-phase alone: work down U{_G} in its explicit retry
    order (estimated length descending; criticality order when
    configured) giving each net a spine. Returns the nets that gained a
    global route. *)

val reroute_detail :
  ?config:config -> ?counters:counters -> Route_state.t -> Spr_util.Journal.t -> int list
(** The detailed sub-phase alone: sweep the channels giving every
    queued net in each U{_D,R} a track run, longest span first. Run
    after {!reroute_global} so demands queued by fresh spines are
    attempted in the same pass. *)

val reroute :
  ?config:config -> ?counters:counters -> Route_state.t -> Spr_util.Journal.t -> int list
(** {!reroute_global} followed by {!reroute_detail}. Returns the union
    of nets whose embedding changed (gained a spine or a track run) so
    the timing analyzer can update them. *)

val route_all : ?config:config -> ?passes:int -> Route_state.t -> unit
(** From-scratch routing: repeated {!reroute} passes (default 3) with no
    retry cap, committing the work; used by the sequential baseline and
    by tests. Does not rip anything up first — call it on a fresh state
    or after explicit rip-ups. *)
