(** Incremental detailed routing heuristic (paper §3.4, after Roy [11]).

    Within one channel a net must occupy consecutive free segments of a
    single track covering its column span. Among the feasible tracks the
    router picks the one minimizing

    {v wastage + antifuse_weight * n_segments v}

    where wastage is the covered length beyond the span. Low wastage
    constructively minimizes net length and preserves long segments for
    long nets; the antifuse term avoids chaining many short segments,
    which would accrue antifuse delay. *)

val plan :
  ?antifuse_weight:float -> Route_state.t -> net:int -> channel:int -> Route_state.hroute option
(** Read-only search half of {!attempt}: the track run the net's queued
    demand in [channel] would claim, without claiming it. Safe to call
    concurrently from several domains while no claim runs
    ({!Spr_route.Parallel} provides that barrier). *)

val attempt :
  ?antifuse_weight:float -> Route_state.t -> Spr_util.Journal.t -> net:int -> channel:int -> bool
(** [attempt st j ~net ~channel] tries to detail-route the net's queued
    demand in [channel] (the net must be missing there); claims the
    winning track run via {!Route_state.claim_detail}. Default
    [antifuse_weight] is 3.0 column units per antifuse. *)

val best_track :
  ?antifuse_weight:float ->
  Route_state.t ->
  channel:int ->
  span:Spr_util.Interval.t ->
  (int * int * int * float) option
(** [best_track st ~channel ~span] is the feasibility core of {!attempt}:
    the minimum-cost free run [(track, slo, shi, cost)] covering [span],
    if any. Exposed for the sequential baseline and tests. *)
