module I = Spr_util.Interval

let best_track ?(antifuse_weight = 3.0) st ~channel ~span =
  let arch = Route_state.arch st in
  let best = ref None in
  for track = 0 to arch.Spr_arch.Arch.tracks - 1 do
    let segs = Spr_arch.Arch.hsegments arch ~channel ~track in
    match Spr_arch.Arch.find_cover segs span with
    | Some (slo, shi) when Route_state.hrun_free st ~channel ~track ~slo ~shi ->
      let covered = segs.(shi).I.hi - segs.(slo).I.lo + 1 in
      let wastage = covered - I.length span in
      let n_segs = shi - slo + 1 in
      let cost = float_of_int wastage +. (antifuse_weight *. float_of_int n_segs) in
      (match !best with
      | Some (_, _, _, c) when c <= cost -> ()
      | Some _ | None -> best := Some (track, slo, shi, cost))
    | Some _ | None -> ()
  done;
  !best

let plan ?antifuse_weight st ~net ~channel =
  match List.assoc_opt channel (Route_state.h_demands st net) with
  | None -> None
  | Some span -> (
    match best_track ?antifuse_weight st ~channel ~span with
    | None -> None
    | Some (track, slo, shi, _) ->
      Some
        { Route_state.h_channel = channel; h_track = track; h_slo = slo; h_shi = shi; h_span = span })

let attempt ?antifuse_weight st j ~net ~channel =
  match plan ?antifuse_weight st ~net ~channel with
  | None -> false
  | Some hr ->
    Route_state.claim_detail st j net hr;
    true
