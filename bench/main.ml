(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Tables 1-2, Figures 6-7), the design-choice
   ablations from DESIGN.md, and Bechamel microbenchmarks of the core
   kernels.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- table1    -- one artifact
     SPR_BENCH_EFFORT=quick dune exec bench/main.exe

   See EXPERIMENTS.md for paper-vs-measured notes. *)

module E = Spr_experiments.Profiles

let effort_of_env default =
  match Sys.getenv_opt "SPR_BENCH_EFFORT" with
  | None -> default
  | Some s -> (
    match E.effort_of_string s with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown SPR_BENCH_EFFORT %S (quick|standard|thorough)\n" s;
      default)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let table1 () =
  section "Table 1: timing improvement (simultaneous vs sequential)";
  let rows = Spr_experiments.Timing_table.run ~effort:(effort_of_env E.Standard) () in
  print_string (Spr_experiments.Timing_table.render rows);
  Printf.printf "paper reported improvements: s1 28%%, cse 16%%, ex1 23%%, bw 25%%, s1a 21%%\n%!"

let table2 () =
  section "Table 2: minimum tracks/channel for 100% wirability";
  let rows = Spr_experiments.Wirability_table.run ~effort:(effort_of_env E.Quick) () in
  print_string (Spr_experiments.Wirability_table.render rows);
  Printf.printf
    "paper reported (seq/sim): s1 23/18, cse 22/17, ex1 26/21, bw 15/10, s1a 22/17\n%!"

let fig6 () =
  section "Figure 6: annealing dynamics";
  let t = Spr_experiments.Dynamics_fig.run ~effort:(effort_of_env E.Standard) () in
  print_string (Spr_experiments.Dynamics_fig.render t);
  Printf.printf "qualitative shape of Figure 6 holds: %b\n%!"
    (Spr_experiments.Dynamics_fig.shape_holds t)

let fig7 () =
  section "Figure 7: 529-cell design";
  let t = Spr_experiments.Big_design.run ~effort:(effort_of_env E.Thorough) () in
  print_string (Spr_experiments.Big_design.render t)

(* --- flow presets: seeded vs cold-start anneal --- *)

let flows_json_path = "BENCH_flows.json"

let flows () =
  section "Flow presets: analytical seed vs cold-start anneal";
  let effort = effort_of_env E.Quick in
  let rows = Spr_experiments.Flows_sweep.run ~effort () in
  print_string (Spr_experiments.Flows_sweep.render rows);
  let cmp = Spr_experiments.Flows_sweep.compare_seeded rows in
  Printf.printf
    "ap+sa vs sa over %d circuit-seed cells: %.2fx the annealing moves, quality held on %d\n%!"
    cmp.Spr_experiments.Flows_sweep.cells cmp.Spr_experiments.Flows_sweep.move_ratio
    cmp.Spr_experiments.Flows_sweep.quality_held;
  Spr_util.Persist.atomic_write flows_json_path
    (Spr_obs.Json.to_string ~indent:true (Spr_experiments.Flows_sweep.to_json ~effort rows)
    ^ "\n");
  Printf.printf "flow sweep written to %s\n%!" flows_json_path

let ablation_ordering () =
  section "Ablation A3: rip-up queue ordering (cse)";
  let t = Spr_experiments.Ordering_ablation.run ~effort:(effort_of_env E.Quick) () in
  print_string (Spr_experiments.Ordering_ablation.render t)

let rice_check () =
  section "Delay-model cross-check (D2M vs Elmore, the paper's RICE methodology)";
  List.iter
    (fun spec ->
      let nl = Spr_netlist.Circuits.make spec in
      let arch = Spr_arch.Arch.size_for ~tracks:28 nl in
      let place =
        Spr_layout.Placement.create_exn arch nl ~rng:(Spr_util.Rng.create 7)
      in
      let st = Spr_route.Route_state.create place in
      Spr_route.Router.route_all st;
      let a = Spr_timing.Awe.compare_with_elmore Spr_timing.Delay_model.default st in
      Printf.printf "%-6s %4d sinks  D2M/Elmore mean %.3f  range [%.3f, %.3f]\n"
        spec.Spr_netlist.Circuits.spec_name a.Spr_timing.Awe.n_sinks
        a.Spr_timing.Awe.mean_ratio a.Spr_timing.Awe.min_ratio a.Spr_timing.Awe.max_ratio)
    Spr_netlist.Circuits.table_specs;
  Printf.printf
    "single-pole theory: ratio = ln 2 = 0.693; tight dispersion certifies the Elmore ranking\n%!"

let ablation_seg () =
  section "Ablation A1: channel segmentation schemes (cse, 24 tracks)";
  let rows = Spr_experiments.Seg_ablation.run ~effort:(effort_of_env E.Quick) () in
  print_string (Spr_experiments.Seg_ablation.render rows)

let ablation_pinmap () =
  section "Ablation A2: pinmap reassignment moves (s1)";
  let t = Spr_experiments.Pinmap_ablation.run ~effort:(effort_of_env E.Standard) () in
  print_string (Spr_experiments.Pinmap_ablation.render t)

(* --- Bechamel kernel microbenchmarks --- *)

let make_kernel_state () =
  let nl = Spr_netlist.Circuits.make_by_name "cse" in
  let arch = Spr_arch.Arch.size_for ~tracks:28 nl in
  let place = Spr_layout.Placement.create_exn arch nl ~rng:(Spr_util.Rng.create 7) in
  let rs = Spr_route.Route_state.create place in
  Spr_route.Router.route_all rs;
  let sta = Spr_timing.Sta.create Spr_timing.Delay_model.default rs in
  (nl, place, rs, sta)

let kernel_tests () =
  let open Bechamel in
  let nl, place, rs, sta = make_kernel_state () in
  let dm = Spr_timing.Delay_model.default in
  let routed_net = ref 0 in
  for n = 0 to Spr_netlist.Netlist.n_nets nl - 1 do
    if Spr_route.Route_state.is_fully_routed rs n then routed_net := n
  done;
  let rng = Spr_util.Rng.create 99 in
  let journal = Spr_util.Journal.create () in
  let move_cycle () =
    let cell = Spr_util.Rng.int rng (Spr_netlist.Netlist.n_cells nl) in
    let ripped = Spr_route.Router.rip_up_cell rs journal cell in
    let routed = Spr_route.Router.reroute rs journal in
    Spr_timing.Sta.invalidate sta journal (List.sort_uniq compare (ripped @ routed));
    Spr_util.Journal.rollback journal
  in
  let swap_cycle () =
    let a = Spr_layout.Placement.random_occupied_slot place rng in
    let b = Spr_layout.Placement.random_slot place rng in
    if a <> b && Spr_layout.Placement.swap_legal place a b then begin
      Spr_layout.Placement.swap_slots place a b;
      Spr_layout.Placement.swap_slots place a b
    end
  in
  (* Per-phase kernels: each adds one pipeline phase on top of the
     previous, always rolling back, so the state stays fixed and the
     differences between adjacent kernels isolate each phase's cost. *)
  let random_cell () = Spr_util.Rng.int rng (Spr_netlist.Netlist.n_cells nl) in
  let phase_rip () =
    ignore (Spr_route.Router.rip_up_cell rs journal (random_cell ()) : int list);
    Spr_util.Journal.rollback journal
  in
  let phase_global () =
    ignore (Spr_route.Router.rip_up_cell rs journal (random_cell ()) : int list);
    ignore (Spr_route.Router.reroute_global rs journal : int list);
    Spr_util.Journal.rollback journal
  in
  let phase_detail () =
    ignore (Spr_route.Router.rip_up_cell rs journal (random_cell ()) : int list);
    ignore (Spr_route.Router.reroute_global rs journal : int list);
    ignore (Spr_route.Router.reroute_detail rs journal : int list);
    Spr_util.Journal.rollback journal
  in
  (* The pipeline kernel runs a real transaction end-to-end (placement
     delta, rip-up, both reroutes, dirty-set retime) and rejects it. *)
  let pipe_rng = Spr_util.Rng.create 17 in
  let pipe_journal = Spr_util.Journal.create () in
  let weights =
    Spr_anneal.Weights.create
      ~initial_delay:(Float.max 1e-6 (Spr_timing.Sta.critical_delay sta))
      ()
  in
  let pipeline =
    Spr_core.Move_pipeline.create ~router:Spr_route.Router.default_config
      ~pinmap_move_prob:0.15 ~enable_pinmap_moves:true ~max_swap_tries:8 ~place ~rs ~sta
      ~weights ~journal:pipe_journal ()
  in
  let pipeline_cycle () =
    if Spr_core.Move_pipeline.propose pipeline pipe_rng then
      Spr_core.Move_pipeline.reject pipeline
  in
  [
    Test.make ~name:"elmore: routed net sink delays"
      (Staged.stage (fun () -> Spr_timing.Net_delay.sink_delays dm rs !routed_net));
    Test.make ~name:"sta: critical_delay scan"
      (Staged.stage (fun () -> Spr_timing.Sta.critical_delay sta));
    Test.make ~name:"sta: full update" (Staged.stage (fun () -> Spr_timing.Sta.full_update sta));
    Test.make ~name:"route: detail best_track"
      (Staged.stage (fun () ->
           Spr_route.Detail_router.best_track rs ~channel:2
             ~span:(Spr_util.Interval.make 3 11)));
    Test.make ~name:"placement: swap pair" (Staged.stage swap_cycle);
    Test.make ~name:"phase: rip-up+rollback" (Staged.stage phase_rip);
    Test.make ~name:"phase: rip+global+rollback" (Staged.stage phase_global);
    Test.make ~name:"phase: rip+global+detail+rollback" (Staged.stage phase_detail);
    Test.make ~name:"move: rip+reroute+sta+rollback" (Staged.stage move_cycle);
    Test.make ~name:"pipeline: full move propose+reject" (Staged.stage pipeline_cycle);
    Test.make ~name:"route: global batch planner"
      (Staged.stage
         (let all_nets = Array.init (Spr_netlist.Netlist.n_nets nl) Fun.id in
          fun () ->
            let fps = Array.map (Spr_route.Parallel.global_footprint rs) all_nets in
            ignore (Spr_route.Parallel.plan_batches fps all_nets : int array list)));
  ]

(* Machine-readable mirror of the kernel table, one ns/run entry per
   kernel, written next to the working directory for before/after
   comparisons in EXPERIMENTS.md and CI smoke runs. *)
let kernels_json_path = "BENCH_kernels.json"

let write_kernels_json ~effort rows =
  let open Spr_obs.Json in
  Spr_obs.Bench.write ~path:kernels_json_path ~bench:"kernels"
    ~effort:(E.effort_to_string effort)
    [
      ("unit", String "ns/run");
      ( "kernels",
        Obj
          (List.map
             (fun (name, ns) -> (name, Float (Float.round (ns *. 10.) /. 10.)))
             rows) );
    ];
  Printf.printf "kernel timings written to %s\n%!" kernels_json_path

let kernels () =
  section "Kernel microbenchmarks (Bechamel)";
  let open Bechamel in
  let effort = effort_of_env E.Standard in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = match effort with E.Quick -> 0.125 | E.Standard | E.Thorough -> 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true () in
  let tests = Test.make_grouped ~name:"kernels" (kernel_tests ()) in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter (fun (name, ns) -> Printf.printf "%-45s %12.1f ns/run\n" name ns) rows;
  write_kernels_json ~effort rows;
  flush stdout

(* --- parallel portfolio scaling --- *)

let portfolio_json_path = "BENCH_portfolio.json"

(* Fleets of K replicas on the 529-cell design, each replica annealing
   under the same per-replica move budget. On a machine with >= K cores
   every fleet finishes in the same wall-clock, so the table reads as
   "what does K buy at equal time"; with Independent exchange replica 0
   of every fleet IS the K=1 run (same stream), so the fleet best is
   equal-or-better than K=1 by construction. The JSON records the
   measured wall and the core count, so time-sliced runs on small boxes
   stay honest. *)
let portfolio () =
  section "Portfolio scaling (529-cell design, equal per-replica move budget)";
  let effort = effort_of_env E.Quick in
  let budget =
    (* quick must clear the second cooling boundary (warmup 1058 + 2 x
       2645 moves on big529) so a best:2 fleet performs an exchange *)
    match effort with E.Quick -> 7_000 | E.Standard -> 25_000 | E.Thorough -> 60_000
  in
  let nl = Spr_netlist.Circuits.make_by_name "big529" in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = E.arch_for ~tracks:38 nl in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "design big529 (%d cells), %d moves per replica, %d core(s)\n%!" n budget cores;
  let fleets =
    [
      (1, Spr_anneal.Portfolio.Independent);
      (2, Spr_anneal.Portfolio.Independent);
      (4, Spr_anneal.Portfolio.Independent);
      (4, Spr_anneal.Portfolio.Best_exchange 2);
    ]
  in
  let rows =
    List.map
      (fun (k, exchange) ->
        let config =
          Spr_core.Tool.Config.(
            E.tool_config ~seed:1 effort ~n
            |> with_max_moves budget
            |> with_replicas ~exchange k)
        in
        let p = Spr_core.Tool.run_portfolio_exn ~config arch nl in
        let best = Spr_core.Tool.best_result p in
        let moves =
          Array.fold_left
            (fun acc (r : Spr_core.Tool.result) ->
              acc + r.Spr_core.Tool.anneal_report.Spr_anneal.Engine.n_moves)
            0 p.Spr_core.Tool.p_results
        in
        Printf.printf
          "K=%d %-7s  wall %5.1f s  moves %8d (%7.0f/s)  winner r%d  G+D %3d  critical %7.2f ns  rounds %d\n%!"
          k
          (Spr_anneal.Portfolio.exchange_to_string exchange)
          p.Spr_core.Tool.p_wall_seconds moves
          (float_of_int moves /. Float.max 1e-9 p.Spr_core.Tool.p_wall_seconds)
          p.Spr_core.Tool.p_best_replica
          (best.Spr_core.Tool.g + best.Spr_core.Tool.d)
          best.Spr_core.Tool.critical_delay
          (List.length p.Spr_core.Tool.p_exchanges);
        (k, exchange, p, best, moves))
      fleets
  in
  let open Spr_obs.Json in
  let fleet_json
      (k, exchange, (p : Spr_core.Tool.portfolio_result), (best : Spr_core.Tool.result), moves)
      =
    Obj
      [
        ("replicas", Int k);
        ("exchange", String (Spr_anneal.Portfolio.exchange_to_string exchange));
        ("wall_s", Float p.Spr_core.Tool.p_wall_seconds);
        ("moves", Int moves);
        ( "moves_per_s",
          Float
            (Float.round
               (float_of_int moves /. Float.max 1e-9 p.Spr_core.Tool.p_wall_seconds)) );
        ("best_replica", Int p.Spr_core.Tool.p_best_replica);
        ("best_cost", Float best.Spr_core.Tool.best_cost);
        ("unrouted", Int (best.Spr_core.Tool.g + best.Spr_core.Tool.d));
        ("critical_delay_ns", Float best.Spr_core.Tool.critical_delay);
        ("exchange_rounds", Int (List.length p.Spr_core.Tool.p_exchanges));
      ]
  in
  Spr_obs.Bench.write ~path:portfolio_json_path ~bench:"portfolio"
    ~effort:(E.effort_to_string effort)
    [
      ("design", String "big529");
      ("moves_per_replica", Int budget);
      ("fleets", List (List.map fleet_json rows));
    ];
  Printf.printf "portfolio timings written to %s\n%!" portfolio_json_path

(* --- racing scheduler vs barrier --- *)

let racing_json_path = "BENCH_racing.json"

(* Equal-core-seconds comparison of the two fleet schedulers: every
   replica gets the same move budget (moves are the deterministic proxy
   for core-seconds — both schedulers keep all K domains busy for the
   whole run, racing by reallocating killed replicas' domains to forks
   of the leader), so the table reads as "what does the scheduler buy
   at fixed compute". The racing fleets must record at least one kill,
   or the comparison is vacuous and the bench fails loudly. *)
let racing () =
  section "Racing scheduler vs barrier (equal per-replica move budget)";
  let effort = effort_of_env E.Quick in
  let budget =
    match effort with E.Quick -> 20_000 | E.Standard -> 40_000 | E.Thorough -> 80_000
  in
  let circuit = "s1" in
  let margin = 0.5 in
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = E.arch_for nl in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "design %s (%d cells), %d moves per replica, %d core(s)\n%!" circuit n budget
    cores;
  let fleet k scheduler =
    let base =
      Spr_core.Tool.Config.(E.tool_config ~seed:1 effort ~n |> with_max_moves budget)
    in
    (* Only the scheduler differs between the two fleets: both run K
       independent replicas (racing rejects Best_exchange — its kills
       replace the barrier's exchange), so the delta is attributable to
       early-kill + domain reallocation alone. *)
    let config =
      match scheduler with
      | `Barrier -> Spr_core.Tool.Config.with_replicas k base
      | `Racing ->
        Spr_core.Tool.Config.(
          base |> with_replicas k |> with_scheduler_kind `Racing |> with_race_margin margin
          |> with_race_warmup 8 |> with_race_every 3)
    in
    let p = Spr_core.Tool.run_portfolio_exn ~config arch nl in
    let best = Spr_core.Tool.best_result p in
    let moves =
      Array.fold_left
        (fun acc (r : Spr_core.Tool.result) ->
          acc + r.Spr_core.Tool.anneal_report.Spr_anneal.Engine.n_moves)
        0 p.Spr_core.Tool.p_results
    in
    let kills =
      List.fold_left
        (fun acc (r : Spr_anneal.Scheduler.round_record) -> acc + List.length r.sr_kills)
        0 p.Spr_core.Tool.p_scheds
    in
    let name = match scheduler with `Barrier -> "barrier" | `Racing -> "racing" in
    Printf.printf
      "K=%d %-14s wall %5.1f s  moves %8d  winner r%d  G+D %3d  critical %7.2f ns  kills %d\n%!"
      k name p.Spr_core.Tool.p_wall_seconds moves p.Spr_core.Tool.p_best_replica
      (best.Spr_core.Tool.g + best.Spr_core.Tool.d)
      best.Spr_core.Tool.critical_delay kills;
    (name, k, p, best, moves, kills)
  in
  let rows =
    List.concat_map
      (fun k ->
        let barrier = fleet k `Barrier in
        let racing = fleet k `Racing in
        [ barrier; racing ])
      [ 2; 4 ]
  in
  let racing_kills =
    List.fold_left
      (fun acc (name, _, _, _, _, kills) -> if name = "racing" then acc + kills else acc)
      0 rows
  in
  List.iter
    (fun k ->
      let cost name' =
        List.find_map
          (fun (name, k', _, (best : Spr_core.Tool.result), _, _) ->
            if name = name' && k' = k then Some best.Spr_core.Tool.best_cost else None)
          rows
      in
      match cost "barrier", cost "racing" with
      | Some b, Some r ->
        Printf.printf "K=%d: racing %s barrier at equal core-seconds\n%!" k
          (if r < b then "beats" else if r = b then "ties" else "trails")
      | _ -> ())
    [ 2; 4 ];
  let open Spr_obs.Json in
  let row_json (name, k, (p : Spr_core.Tool.portfolio_result), (best : Spr_core.Tool.result), moves, kills) =
    Obj
      [
        ("scheduler", String name);
        ("replicas", Int k);
        ("wall_s", Float p.Spr_core.Tool.p_wall_seconds);
        ("moves", Int moves);
        ("best_replica", Int p.Spr_core.Tool.p_best_replica);
        ("best_cost", Float best.Spr_core.Tool.best_cost);
        ("unrouted", Int (best.Spr_core.Tool.g + best.Spr_core.Tool.d));
        ("critical_delay_ns", Float best.Spr_core.Tool.critical_delay);
        ("kills", Int kills);
      ]
  in
  Spr_obs.Bench.write ~path:racing_json_path ~bench:"racing"
    ~effort:(E.effort_to_string effort)
    [
      ("design", String circuit);
      ("moves_per_replica", Int budget);
      ("race_margin", Float margin);
      ("fleets", List (List.map row_json rows));
    ];
  Printf.printf "racing comparison written to %s\n%!" racing_json_path;
  if racing_kills = 0 then begin
    Printf.eprintf "FATAL: racing fleets recorded zero kills; the comparison is vacuous\n";
    exit 1
  end

(* --- parallel reroute scaling --- *)

let route_parallel_json_path = "BENCH_route_parallel.json"

(* The reroute phase in isolation: fixed-seed rip-up/reroute/commit
   cycles on the 529-cell design, repeated at 1/2/4 route workers. The
   op stream is identical at every width and so — by the batched
   router's core contract — is the final routing state, which the bench
   asserts. Throughput is honest measured wall clock with the core
   count recorded; on a single-core box the wider runs show the
   dispatch overhead rather than a speedup, and the JSON says so. *)
let route_parallel () =
  section "Parallel reroute scaling (529-cell design, rip+reroute cycles)";
  let module Par = Spr_route.Parallel in
  let effort = effort_of_env E.Quick in
  let cycles =
    match effort with E.Quick -> 150 | E.Standard -> 600 | E.Thorough -> 1_500
  in
  let nl = Spr_netlist.Circuits.make_by_name "big529" in
  let n = Spr_netlist.Netlist.n_cells nl in
  let arch = E.arch_for ~tracks:38 nl in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "design big529 (%d cells), %d rip+reroute cycles, %d core(s)\n%!" n cycles
    cores;
  let run workers =
    let place = Spr_layout.Placement.create_exn arch nl ~rng:(Spr_util.Rng.create 7) in
    let rs = Spr_route.Route_state.create place in
    Spr_route.Router.route_all rs;
    let pool = if workers > 1 then Some (Par.Pool.create ~workers) else None in
    let par = Par.create ?pool rs in
    let stats = Par.fresh_stats () in
    let rng = Spr_util.Rng.create 99 in
    let j = Spr_util.Journal.create () in
    let t0 = Spr_util.Clock.now () in
    for _ = 1 to cycles do
      for _ = 1 to 4 do
        ignore (Spr_route.Router.rip_up_cell rs j (Spr_util.Rng.int rng n) : int list)
      done;
      ignore (Par.reroute ~stats par j : int list);
      Spr_util.Journal.commit j
    done;
    let wall = Spr_util.Clock.now () -. t0 in
    let busy = match pool with Some p -> Par.Pool.busy_seconds p | None -> 0.0 in
    Option.iter Par.Pool.shutdown pool;
    (wall, busy, stats, Spr_route.Route_state.snapshot rs)
  in
  let widths = [ 1; 2; 4 ] in
  let rows = List.map (fun w -> (w, run w)) widths in
  let _, (base_wall, _, _, base_snap) = List.hd rows in
  List.iter
    (fun (w, (wall, busy, stats, snap)) ->
      Printf.printf
        "workers %d  wall %6.2f s (%6.1f cycles/s)  speedup %4.2fx  batches %d (max %d)  \
         conflicts %d  retries %d  worker busy %5.2f s  identical %b\n%!"
        w wall
        (float_of_int cycles /. Float.max 1e-9 wall)
        (base_wall /. Float.max 1e-9 wall)
        stats.Par.s_batches stats.Par.s_max_batch stats.Par.s_conflicts
        stats.Par.s_retries busy (snap = base_snap))
    rows;
  if not (List.for_all (fun (_, (_, _, _, snap)) -> snap = base_snap) rows) then begin
    Printf.eprintf "FATAL: parallel reroute diverged from serial\n";
    exit 1
  end;
  let open Spr_obs.Json in
  let row_json (w, (wall, busy, stats, snap)) =
    Obj
      [
        ("workers", Int w);
        ("wall_s", Float wall);
        ("cycles_per_s", Float (Float.round (float_of_int cycles /. Float.max 1e-9 wall)));
        ("speedup_vs_serial", Float (Float.round (base_wall /. Float.max 1e-9 wall *. 100.) /. 100.));
        ("batches", Int stats.Par.s_batches);
        ("planned_nets", Int stats.Par.s_planned);
        ("max_batch", Int stats.Par.s_max_batch);
        ("conflicts", Int stats.Par.s_conflicts);
        ("serial_retries", Int stats.Par.s_retries);
        ("worker_busy_s", Float (Float.round (busy *. 100.) /. 100.));
        ("identical_to_serial", Bool (snap = base_snap));
      ]
  in
  Spr_obs.Bench.write ~path:route_parallel_json_path ~bench:"route-parallel"
    ~effort:(E.effort_to_string effort)
    [
      ("design", String "big529");
      ("cycles", Int cycles);
      ("rows", List (List.map row_json rows));
    ];
  Printf.printf "parallel reroute timings written to %s\n%!" route_parallel_json_path

(* --- job service overhead --- *)

let serve_json_path = "BENCH_serve.json"

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* The spr serve daemon measured as plumbing: accept latency (connect +
   submit + durable job admission, no P&R work yet) and end-to-end
   throughput of a batch of small concurrent jobs against 2 workers.
   The daemon runs as a real forked process over a throwaway state dir,
   exercising the same fork/select/frame path production uses. *)
let serve () =
  section "Service bench (spr serve: accept latency + concurrent throughput)";
  let module Client = Spr_serve.Client in
  let module Protocol = Spr_serve.Protocol in
  let effort = effort_of_env E.Quick in
  let n_seq, n_conc, moves =
    match effort with
    | E.Quick -> (4, 6, 2_000)
    | E.Standard -> (8, 12, 5_000)
    | E.Thorough -> (16, 24, 10_000)
  in
  let state_dir = ".spr-serve-bench" in
  rmrf state_dir;
  let config =
    { (Spr_serve.Daemon.default_config ~state_dir) with
      Spr_serve.Daemon.max_workers = 2;
      max_queue = n_seq + n_conc + 4
    }
  in
  let socket = Spr_serve.Daemon.socket_path config in
  let daemon =
    match Unix.fork () with
    | 0 ->
      (* the daemon's progress log is noise here; the bench prints its
         own summary lines *)
      (try
         let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
         Unix.dup2 null Unix.stdout;
         Unix.dup2 null Unix.stderr;
         Unix.close null;
         Spr_serve.Daemon.run config
       with _ -> exit 125);
      exit 0
    | pid -> pid
  in
  let rec wait_ready n =
    if n > 100 then failwith "bench daemon did not come up"
    else
      match Client.ping ~socket with
      | Ok () -> ()
      | Error _ ->
        Unix.sleepf 0.1;
        wait_ready (n + 1)
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [] daemon with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      rmrf state_dir)
    (fun () ->
      wait_ready 0;
      let spec seed =
        { Spr_serve.Job.default_spec with
          Spr_serve.Job.circuit = Some "s1";
          label = Printf.sprintf "bench-%d" seed;
          seed;
          effort = "quick";
          max_moves = Some moves
        }
      in
      let submit_or_fail s =
        match Client.open_submit ~socket s with
        | Ok (conn, id) -> (conn, id)
        | Error (`Rejected _) -> failwith "bench job rejected"
        | Error (`Error e) -> failwith ("bench submit: " ^ e)
      in
      let await_or_fail conn =
        match Client.await conn with
        | Ok (Protocol.Job_done _) -> ()
        | Ok r ->
          failwith
            ("bench job ended badly: " ^ Spr_obs.Json.to_string (Protocol.response_to_json r))
        | Error e -> failwith ("bench await: " ^ e)
      in
      (* sequential: per-job accept latency and turnaround *)
      let accepts = ref [] in
      let turnarounds = ref [] in
      for i = 1 to n_seq do
        let t0 = Spr_util.Clock.now () in
        let conn, _id = submit_or_fail (spec i) in
        accepts := (Spr_util.Clock.now () -. t0) :: !accepts;
        await_or_fail conn;
        turnarounds := (Spr_util.Clock.now () -. t0) :: !turnarounds
      done;
      let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      let accept_mean_ms = 1000. *. mean !accepts in
      let accept_max_ms = 1000. *. List.fold_left Float.max 0.0 !accepts in
      let turnaround_mean_s = mean !turnarounds in
      Printf.printf
        "sequential: %d jobs  accept %.2f ms mean (%.2f ms max)  turnaround %.2f s mean\n%!"
        n_seq accept_mean_ms accept_max_ms turnaround_mean_s;
      (* concurrent: all submitted up front, 2 workers drain the queue *)
      let t0 = Spr_util.Clock.now () in
      let conns = List.init n_conc (fun i -> fst (submit_or_fail (spec (100 + i)))) in
      List.iter await_or_fail conns;
      let conc_wall = Spr_util.Clock.now () -. t0 in
      let jobs_per_s = float_of_int n_conc /. Float.max 1e-9 conc_wall in
      Printf.printf "concurrent: %d jobs over %d workers  wall %.2f s  %.2f jobs/s\n%!" n_conc
        config.Spr_serve.Daemon.max_workers conc_wall jobs_per_s;
      let open Spr_obs.Json in
      let round2 x = Float.round (x *. 100.) /. 100. in
      Spr_obs.Bench.write ~path:serve_json_path ~bench:"serve"
        ~effort:(E.effort_to_string effort)
        [
          ("workers", Int config.Spr_serve.Daemon.max_workers);
          ("max_moves", Int moves);
          ( "sequential",
            Obj
              [
                ("jobs", Int n_seq);
                ("accept_ms_mean", Float (round2 accept_mean_ms));
                ("accept_ms_max", Float (round2 accept_max_ms));
                ("turnaround_s_mean", Float (round2 turnaround_mean_s));
              ] );
          ( "concurrent",
            Obj
              [
                ("jobs", Int n_conc);
                ("wall_s", Float (round2 conc_wall));
                ("jobs_per_s", Float (round2 jobs_per_s));
              ] );
        ];
      Printf.printf "service timings written to %s\n%!" serve_json_path)

let usage () =
  print_endline
    "usage: main.exe \
     [table1|table2|fig6|fig7|flows|ablation-seg|ablation-pinmap|ablation-ordering|rice|kernels|portfolio|racing|route-parallel|serve|all]";
  print_endline "env: SPR_BENCH_EFFORT=quick|standard|thorough"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Sys.time () in
  (match args with
  | [] | [ "all" ] ->
    table1 ();
    table2 ();
    fig6 ();
    fig7 ();
    flows ();
    ablation_seg ();
    ablation_pinmap ();
    ablation_ordering ();
    rice_check ();
    kernels ();
    portfolio ();
    racing ();
    route_parallel ();
    serve ()
  | [ "table1" ] -> table1 ()
  | [ "table2" ] -> table2 ()
  | [ "fig6" ] -> fig6 ()
  | [ "fig7" ] -> fig7 ()
  | [ "flows" ] -> flows ()
  | [ "ablation-seg" ] -> ablation_seg ()
  | [ "ablation-pinmap" ] -> ablation_pinmap ()
  | [ "ablation-ordering" ] -> ablation_ordering ()
  | [ "rice" ] -> rice_check ()
  | [ "kernels" ] -> kernels ()
  | [ "portfolio" ] -> portfolio ()
  | [ "racing" ] -> racing ()
  | [ "route-parallel" ] -> route_parallel ()
  | [ "serve" ] -> serve ()
  | _ -> usage ());
  Printf.printf "\ntotal bench cpu: %.1f s\n%!" (Sys.time () -. t0)
