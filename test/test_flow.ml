(* The composable flow engine: preset validation, analytical-seed
   determinism, bit-compat of the [sa] preset with the plain tool run,
   worker-count independence of the seeded anneal, and stage-boundary
   crash + resume. *)

module Flow = Spr_flow
module Ap = Spr_flow.Ap_place
module Tool = Spr_core.Tool
module Config = Spr_core.Tool.Config
module Engine = Spr_anneal.Engine
module Rs = Spr_route.Route_state
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Trace = Spr_obs.Trace
module Job = Spr_serve.Job

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

let preset ?(n_cells = 48) ?(tracks = 18) ~seed () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let n = Nl.n_cells nl in
  let config =
    Config.(
      default |> with_seed seed
      |> with_anneal
           {
             (Engine.default_config ~n) with
             Engine.moves_per_temp = max 150 (2 * n);
             warmup_moves = 150;
             max_temperatures = 10;
           })
  in
  (arch, nl, config)

(* --- config / preset validation --- *)

let test_presets_resolve () =
  List.iter
    (fun name ->
      match Flow.stages_of_preset name with
      | Ok stages ->
        Alcotest.(check bool)
          (Printf.sprintf "preset %s non-empty" name)
          true (stages <> [])
      | Error e -> Alcotest.failf "preset %s rejected: %s" name e)
    Flow.preset_names

let test_bad_preset_rejected () =
  let arch, nl, config = preset ~seed:3 () in
  let config = Config.with_flow_preset "warp9" config in
  match Flow.run ~config arch nl with
  | Error (Tool.Invalid_config msg) ->
    (* The error must teach: every valid preset is listed. *)
    List.iter
      (fun name ->
        Alcotest.(check bool)
          (Printf.sprintf "error lists %s" name)
          true (contains ~needle:name msg))
      Flow.preset_names
  | Error e -> Alcotest.failf "wrong error class: %s" (Tool.error_to_string e)
  | Ok _ -> Alcotest.fail "bogus preset accepted"

let test_bad_stage_budget_rejected () =
  let _, _, config = preset ~seed:3 () in
  let config = Config.with_stage_budget "sa" (-2.0) config in
  match Config.validated config with
  | Error msg -> Alcotest.(check bool) "mentions budget" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "negative stage budget accepted"

let test_stage_budget_builder_overwrites () =
  let _, _, config = preset ~seed:3 () in
  let config =
    Config.(config |> with_stage_budget "sa" 5.0 |> with_stage_budget "sa" 9.0)
  in
  match List.assoc_opt "sa" config.Config.flow.Config.stage_budgets with
  | Some b -> Alcotest.(check (float 1e-9)) "last write wins" 9.0 b
  | None -> Alcotest.fail "budget missing"

(* --- analytical placement --- *)

let test_ap_deterministic () =
  let nl = Gen.generate (Gen.default ~n_cells:60) ~seed:11 in
  let arch = Arch.size_for ~tracks:20 nl in
  let run () =
    match Ap.run ~seed:11 arch nl with
    | Ok r -> r
    | Error e -> Alcotest.failf "ap failed: %s" e
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical slots" true (a.Ap.ap_slots = b.Ap.ap_slots);
  Alcotest.(check bool) "identical pinmaps" true (a.Ap.ap_pinmaps = b.Ap.ap_pinmaps);
  Alcotest.(check (float 1e-9)) "identical hpwl" a.Ap.ap_hpwl b.Ap.ap_hpwl;
  (* The legalized result must be a loadable placement. *)
  match P.create_from arch nl ~slots:a.Ap.ap_slots ~pinmaps:a.Ap.ap_pinmaps with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ap seed not legal: %s" e

(* --- bit-compat of the single-stage [sa] preset --- *)

let test_sa_preset_matches_tool () =
  let arch, nl, config = preset ~seed:7 () in
  let direct = Tool.run_exn ~config arch nl in
  let via_flow = Flow.run_exn ~config:(Config.with_flow_preset "sa" config) arch nl in
  Alcotest.(check string) "identical layout" (Rs.snapshot direct.Tool.route)
    (Rs.snapshot via_flow.Flow.f_route);
  Alcotest.(check int) "same g" direct.Tool.g via_flow.Flow.f_g;
  Alcotest.(check int) "same d" direct.Tool.d via_flow.Flow.f_d;
  Alcotest.(check (float 1e-9)) "same delay" direct.Tool.critical_delay
    via_flow.Flow.f_critical_delay;
  Alcotest.(check int) "same move count"
    direct.Tool.anneal_report.Engine.n_moves (Flow.sa_moves via_flow)

(* --- the sequential preset is deterministic and stage-ordered --- *)

let test_seq_preset_deterministic () =
  let arch, nl, config = preset ~seed:9 () in
  let config = Config.with_flow_preset "seq" config in
  let a = Flow.run_exn ~config arch nl in
  let b = Flow.run_exn ~config arch nl in
  Alcotest.(check string) "identical layout" (Rs.snapshot a.Flow.f_route)
    (Rs.snapshot b.Flow.f_route);
  Alcotest.(check bool) "no sa stage ran" true (a.Flow.f_tool = None);
  let names = List.map (fun s -> s.Flow.sg_name) a.Flow.f_stages in
  Alcotest.(check (list string)) "stage order" [ "greedy"; "route"; "sta" ] names

(* --- seeded anneal: worker-count independence --- *)

let masked_lines events =
  String.concat "\n" (List.map (fun e -> Trace.encode_line (Trace.mask_times e)) events)

let test_ap_sa_workers_identical () =
  let arch, nl, config = preset ~seed:21 () in
  let run workers =
    let config =
      Config.(
        config |> with_flow_preset "ap+sa" |> with_trace_recording true
        |> with_route_workers workers)
    in
    let r = Flow.run_exn ~config arch nl in
    let trace =
      match r.Flow.f_portfolio with
      | Some p -> masked_lines (Tool.portfolio_trace_events ~config nl p)
      | None -> (
        match r.Flow.f_tool with
        | Some t -> masked_lines (Tool.trace_events ~config nl t)
        | None -> Alcotest.fail "ap+sa produced no sa result")
    in
    (trace, r.Flow.f_g, r.Flow.f_d, r.Flow.f_seed_temperature)
  in
  let t1, g1, d1, temp1 = run 1 in
  let t2, g2, d2, temp2 = run 2 in
  let t4, g4, d4, temp4 = run 4 in
  Alcotest.(check bool) "non-trivial trace" true (String.length t1 > 0);
  Alcotest.(check bool) "seed temperature probed" true (temp1 <> None);
  Alcotest.(check bool) "workers 1 == 2: seed temperature" true (temp1 = temp2);
  Alcotest.(check bool) "workers 1 == 4: seed temperature" true (temp1 = temp4);
  Alcotest.(check bool) "workers 1 == 2: masked traces byte-identical" true (t1 = t2);
  Alcotest.(check bool) "workers 1 == 4: masked traces byte-identical" true (t1 = t4);
  Alcotest.(check int) "same g (2 workers)" g1 g2;
  Alcotest.(check int) "same d (2 workers)" d1 d2;
  Alcotest.(check int) "same g (4 workers)" g1 g4;
  Alcotest.(check int) "same d (4 workers)" d1 d4

(* --- stage-boundary kill + resume --- *)

let test_ap_sa_kill_resume () =
  let arch, nl, base = preset ~seed:23 () in
  let base = Config.with_flow_preset "ap+sa" base in
  let ref_dir = "flow-crash-ref" and dir = "flow-crash" in
  rmrf ref_dir;
  rmrf dir;
  Fun.protect
    ~finally:(fun () ->
      rmrf ref_dir;
      rmrf dir)
    (fun () ->
      let reference = Flow.run_exn ~config:(Config.with_run_dir ref_dir base) arch nl in
      (* Crash inside the sa stage: periodic snapshots survive, the
         final checkpoint does not — as after a real kill -9. The ap
         stage's checkpoint and flow.json were written at the stage
         boundary before sa began. *)
      let _crashed =
        Flow.run_exn
          ~config:
            Config.(
              base |> with_run_dir dir |> with_final_checkpoint false
              |> with_stop_after_accepted 40)
          arch nl
      in
      let resumed =
        Flow.run_exn ~config:(Config.with_run_dir dir base) ~resume_dir:dir arch nl
      in
      Alcotest.(check bool) "resume skipped the ap stage" true
        (List.exists
           (fun s -> s.Flow.sg_name = "ap" && s.Flow.sg_detail = "restored from checkpoint")
           resumed.Flow.f_stages);
      Alcotest.(check string) "resumed run lands exactly on the reference"
        (Rs.snapshot reference.Flow.f_route)
        (Rs.snapshot resumed.Flow.f_route);
      Alcotest.(check int) "same g" reference.Flow.f_g resumed.Flow.f_g;
      Alcotest.(check int) "same d" reference.Flow.f_d resumed.Flow.f_d;
      Alcotest.(check (float 1e-9)) "same delay" reference.Flow.f_critical_delay
        resumed.Flow.f_critical_delay;
      Alcotest.(check bool) "same seed temperature" true
        (reference.Flow.f_seed_temperature = resumed.Flow.f_seed_temperature))

(* --- serve admission --- *)

let test_job_spec_flow_validation () =
  let ok = { Job.default_spec with Job.circuit = Some "s1"; flow = "ap+sa" } in
  (match Job.validate_spec ok with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid flow rejected: %s" e);
  let bad = { Job.default_spec with Job.circuit = Some "s1"; flow = "warp9" } in
  (match Job.validate_spec bad with
  | Ok _ -> Alcotest.fail "bogus flow admitted"
  | Error e -> Alcotest.(check bool) "error names the flow" true (String.length e > 0));
  (* Specs written before the flow field existed decode as sa. *)
  let json =
    match Job.spec_to_json Job.default_spec with
    | Spr_obs.Json.Obj fields ->
      Spr_obs.Json.Obj (List.filter (fun (k, _) -> k <> "flow") fields)
    | _ -> Alcotest.fail "spec_to_json shape"
  in
  match Job.spec_of_json json with
  | Ok spec -> Alcotest.(check string) "old specs default to sa" "sa" spec.Job.flow
  | Error e -> Alcotest.failf "old spec rejected: %s" e

let () =
  Alcotest.run "spr_flow"
    [
      ( "config",
        [
          Alcotest.test_case "presets resolve" `Quick test_presets_resolve;
          Alcotest.test_case "bad preset rejected with vocabulary" `Quick
            test_bad_preset_rejected;
          Alcotest.test_case "negative stage budget rejected" `Quick
            test_bad_stage_budget_rejected;
          Alcotest.test_case "stage budget overwrite" `Quick
            test_stage_budget_builder_overwrites;
        ] );
      ("ap", [ Alcotest.test_case "deterministic and legal" `Quick test_ap_deterministic ]);
      ( "presets",
        [
          Alcotest.test_case "sa == Tool.run bit-identical" `Quick
            test_sa_preset_matches_tool;
          Alcotest.test_case "seq deterministic" `Quick test_seq_preset_deterministic;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ap+sa identical across route workers" `Quick
            test_ap_sa_workers_identical;
        ] );
      ( "resume",
        [ Alcotest.test_case "ap+sa kill mid-sa and resume" `Quick test_ap_sa_kill_resume ]
      );
      ( "serve",
        [
          Alcotest.test_case "job admission validates flow" `Quick
            test_job_spec_flow_validation;
        ] );
    ]
