module Engine = Spr_anneal.Engine
module Weights = Spr_anneal.Weights
module Rng = Spr_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* Toy problem: order an array by random adjacent swaps; cost = number of
   inversions. Annealing should sort it (or nearly). *)
let toy_problem seed n =
  let rng_init = Rng.create seed in
  let arr = Array.init n Fun.id in
  Rng.shuffle_in_place rng_init arr;
  let inversions () =
    let c = ref 0 in
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        if arr.(i) > arr.(k) then incr c
      done
    done;
    float_of_int !c
  in
  let pending = ref None in
  let propose rng =
    let i = Rng.int rng (n - 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(i + 1);
    arr.(i + 1) <- tmp;
    pending := Some i;
    true
  in
  let undo () =
    match !pending with
    | None -> ()
    | Some i ->
      let tmp = arr.(i) in
      arr.(i) <- arr.(i + 1);
      arr.(i + 1) <- tmp;
      pending := None
  in
  (arr, inversions, propose, undo, pending)

let test_engine_optimizes () =
  let arr, cost, propose, undo, pending = toy_problem 3 24 in
  let report =
    Engine.run ~rng:(Rng.create 42) ~cost
      ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:24 ()
  in
  Alcotest.(check bool) "cost improved" true (report.Engine.final_cost < report.Engine.initial_cost);
  Alcotest.(check bool) "nearly sorted" true (report.Engine.final_cost < 8.0);
  Alcotest.(check bool) "moves counted" true (report.Engine.n_moves > 0);
  Alcotest.(check bool) "acceptances bounded" true
    (report.Engine.n_accepted <= report.Engine.n_moves);
  ignore arr

let test_engine_deterministic () =
  let run seed =
    let _, cost, propose, undo, pending = toy_problem 7 20 in
    Engine.run ~rng:(Rng.create seed) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:20 ()
  in
  let a = run 5 and b = run 5 in
  Alcotest.(check (float 1e-9)) "same final cost" a.Engine.final_cost b.Engine.final_cost;
  Alcotest.(check int) "same move count" a.Engine.n_moves b.Engine.n_moves

let test_engine_temperature_callbacks () =
  let temps = ref [] in
  let _, cost, propose, undo, pending = toy_problem 11 16 in
  let report =
    Engine.run
      ~on_temperature:(fun ts -> temps := ts :: !temps)
      ~rng:(Rng.create 1) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:16 ()
  in
  let temps = List.rev !temps in
  Alcotest.(check bool) "got callbacks" true (List.length temps >= 3);
  (match temps with
  | warmup :: rest ->
    Alcotest.(check int) "warmup is index 0" 0 warmup.Engine.temp_index;
    Alcotest.(check bool) "warmup at infinity" true (warmup.Engine.temperature = infinity);
    (* temperatures decrease monotonically over the cooling phase *)
    let cooling = List.filter (fun ts -> ts.Engine.temperature > 0.0 && ts.Engine.temperature < infinity) rest in
    let rec decreasing = function
      | a :: (b :: _ as rest) -> a.Engine.temperature >= b.Engine.temperature && decreasing rest
      | [ _ ] | [] -> true
    in
    Alcotest.(check bool) "monotone cooling" true (decreasing cooling)
  | [] -> Alcotest.fail "no warmup");
  Alcotest.(check int) "report temperature count consistent" report.Engine.n_temperatures
    (List.length temps - 1)

let test_engine_quench_only_improves () =
  (* With max_temperatures = 0 the engine goes straight from warmup to the
     quench; quench must never accept an uphill move, so the cost at the
     end cannot exceed the cost right after warmup. Run it twice to check
     determinism of the path too. *)
  let _, cost, propose, undo, pending = toy_problem 13 18 in
  let cfg =
    { (Engine.default_config ~n:18) with Engine.max_temperatures = 0; quench_temperatures = 3 }
  in
  let after_warmup = ref nan in
  let seen_warmup = ref false in
  let _report =
    Engine.run ~config:cfg
      ~on_temperature:(fun ts ->
        if not !seen_warmup then begin
          seen_warmup := true;
          after_warmup := ts.Engine.mean_cost
        end)
      ~rng:(Rng.create 2) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:18 ()
  in
  Alcotest.(check bool) "cost after quench <= typical warmup cost" true
    (cost () <= !after_warmup +. 1e-9)

let test_engine_no_moves () =
  (* propose always fails: engine terminates with zero moves *)
  let report =
    Engine.run
      ~rng:(Rng.create 1)
      ~cost:(fun () -> 1.0)
      ~propose:(fun _ -> false)
      ~accept:(fun () -> Alcotest.fail "no move to accept")
      ~reject:(fun () -> Alcotest.fail "no move to reject")
      ~n:4 ()
  in
  Alcotest.(check int) "zero moves" 0 report.Engine.n_moves

(* --- Weights --- *)

let test_weights_cost () =
  let w = Weights.create ~g_per_net:0.5 ~d_per_net:0.25 ~t_emphasis:2.0 ~initial_delay:10.0 () in
  Alcotest.(check (float 1e-9)) "wg" 0.5 (Weights.wg w);
  Alcotest.(check (float 1e-9)) "wd" 0.25 (Weights.wd w);
  Alcotest.(check (float 1e-9)) "wt = emphasis / base" 0.2 (Weights.wt w);
  Alcotest.(check (float 1e-9)) "combined" ((0.5 *. 3.0) +. (0.25 *. 2.0) +. (0.2 *. 15.0))
    (Weights.cost w ~g:3 ~d:2 ~delay:15.0)

let test_weights_adapt () =
  let w = Weights.create ~initial_delay:10.0 () in
  let wt0 = Weights.wt w in
  Weights.observe w ~delay:20.0;
  Weights.observe w ~delay:20.0;
  Alcotest.(check (float 1e-12)) "no change before adapt" wt0 (Weights.wt w);
  Weights.adapt w;
  Alcotest.(check (float 1e-9)) "baseline moved to 20" (wt0 /. 2.0) (Weights.wt w);
  (* adapt with no samples is a no-op *)
  let wt1 = Weights.wt w in
  Weights.adapt w;
  Alcotest.(check (float 1e-12)) "no-op adapt" wt1 (Weights.wt w)

let test_weights_validation () =
  Alcotest.check_raises "non-positive delay"
    (Invalid_argument "Weights.create: initial_delay must be positive") (fun () ->
      ignore (Weights.create ~initial_delay:0.0 ()))

let test_weights_normalized_invariant =
  QCheck.Test.make ~name:"wt * baseline = emphasis after adapt" ~count:100
    QCheck.(pair (float_range 0.5 500.0) (float_range 0.5 500.0))
    (fun (d0, d1) ->
      let w = Weights.create ~t_emphasis:1.0 ~initial_delay:d0 () in
      Weights.observe w ~delay:d1;
      Weights.adapt w;
      Float.abs ((Weights.wt w *. d1) -. 1.0) < 1e-9)

(* --- Portfolio coordination (synthetic workers) --- *)

module Portfolio = Spr_anneal.Portfolio

let test_exchange_strings () =
  List.iter
    (fun x ->
      match Portfolio.exchange_of_string (Portfolio.exchange_to_string x) with
      | Ok x' when x' = x -> ()
      | _ -> Alcotest.failf "round trip failed for %s" (Portfolio.exchange_to_string x))
    [ Portfolio.Independent; Portfolio.Best_exchange 1; Portfolio.Best_exchange 7 ];
  List.iter
    (fun s ->
      match Portfolio.exchange_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "best"; "best:"; "best:0"; "best:-2"; "best:x"; "worst:3" ]

let test_round_of () =
  let indep = Portfolio.create ~replicas:2 ~exchange:Portfolio.Independent () in
  Alcotest.(check (option int)) "independent never" None (Portfolio.round_of indep ~temp_index:4);
  let t = Portfolio.create ~replicas:2 ~exchange:(Portfolio.Best_exchange 2) () in
  Alcotest.(check (option int)) "boundary 0" None (Portfolio.round_of t ~temp_index:0);
  Alcotest.(check (option int)) "boundary 1" None (Portfolio.round_of t ~temp_index:1);
  Alcotest.(check (option int)) "boundary 2" (Some 1) (Portfolio.round_of t ~temp_index:2);
  Alcotest.(check (option int)) "boundary 3" None (Portfolio.round_of t ~temp_index:3);
  Alcotest.(check (option int)) "boundary 6" (Some 3) (Portfolio.round_of t ~temp_index:6)

(* Each synthetic replica walks six temperature boundaries with a fixed
   metric table; the barrier must pick the same winner on every run, no
   matter how the domains are scheduled. *)
let synthetic_metric ~replica ~round = float_of_int (((replica * 7) + (round * 3)) mod 5)

let run_synthetic_portfolio () =
  let t = Portfolio.create ~replicas:3 ~exchange:(Portfolio.Best_exchange 2) () in
  let adoptions = Array.make 3 [] in
  let worker k =
    for temp_index = 1 to 6 do
      match Portfolio.round_of t ~temp_index with
      | None -> ()
      | Some round -> (
        match
          Portfolio.sync t ~replica:k ~temp_index
            ~metric:(synthetic_metric ~replica:k ~round)
            ~capture:(fun () -> Printf.sprintf "layout-%d-%d" k round)
        with
        | None -> ()
        | Some r ->
          adoptions.(k) <- (round, r.Portfolio.xr_best_replica) :: adoptions.(k))
    done;
    Portfolio.finished t ~replica:k
  in
  let outcomes = Portfolio.run_replicas ~replicas:3 worker in
  Array.iter (function Error e -> raise e | Ok () -> ()) outcomes;
  (Portfolio.history t, adoptions)

let test_portfolio_barrier_deterministic () =
  let history, adoptions = run_synthetic_portfolio () in
  Alcotest.(check int) "three rounds tripped" 3 (List.length history);
  List.iter
    (fun (r : Portfolio.round_result) ->
      (* The recorded winner is the true minimum (ties to the lowest
         replica index), with its own layout as payload. *)
      let metrics = List.init 3 (fun k -> synthetic_metric ~replica:k ~round:r.Portfolio.xr_round) in
      let best = List.fold_left min infinity metrics in
      Alcotest.(check (float 0.0)) "winner metric" best r.Portfolio.xr_best_metric;
      Alcotest.(check int) "winner index"
        (fst (List.fold_left
                (fun (bi, i) m -> if m = best && bi < 0 then (i, i + 1) else (bi, i + 1))
                (-1, 0) metrics))
        r.Portfolio.xr_best_replica;
      Alcotest.(check string) "payload is winner's"
        (Printf.sprintf "layout-%d-%d" r.Portfolio.xr_best_replica r.Portfolio.xr_round)
        r.Portfolio.xr_payload;
      (* Exactly the strictly-worse replicas adopted. *)
      for k = 0 to 2 do
        let adopted = List.mem_assoc r.Portfolio.xr_round adoptions.(k) in
        let should = synthetic_metric ~replica:k ~round:r.Portfolio.xr_round > best in
        if adopted <> should then
          Alcotest.failf "replica %d round %d: adopted=%b expected %b" k r.Portfolio.xr_round
            adopted should
      done)
    history;
  (* Scheduling independence: a second run reproduces everything. *)
  let history2, adoptions2 = run_synthetic_portfolio () in
  Alcotest.(check bool) "history reproducible" true (history = history2);
  Alcotest.(check bool) "adoptions reproducible" true (adoptions = adoptions2)

let test_portfolio_history_replay () =
  let history, _ = run_synthetic_portfolio () in
  (* A resumed coordinator serves recorded rounds immediately: one
     replica alone (the other two never arrive) cannot deadlock. *)
  let t = Portfolio.create ~replicas:3 ~exchange:(Portfolio.Best_exchange 2) ~history () in
  for temp_index = 1 to 6 do
    match Portfolio.round_of t ~temp_index with
    | None -> ()
    | Some round -> (
      let metric = synthetic_metric ~replica:2 ~round in
      match
        Portfolio.sync t ~replica:2 ~temp_index ~metric ~capture:(fun () -> "fresh")
      with
      | Some r when r.Portfolio.xr_best_metric < metric -> ()
      | Some r ->
        Alcotest.failf "round %d: served a non-improving result (%g)" round
          r.Portfolio.xr_best_metric
      | None ->
        let recorded = List.find (fun r -> r.Portfolio.xr_round = round) history in
        if recorded.Portfolio.xr_best_replica <> 2
           && recorded.Portfolio.xr_best_metric < metric
        then Alcotest.failf "round %d: improving record not served" round)
  done;
  Portfolio.finished t ~replica:2;
  Alcotest.(check bool) "history preserved" true (Portfolio.history t = history)

let test_portfolio_finished_unblocks () =
  let persisted = ref [] in
  let t =
    Portfolio.create ~replicas:2 ~exchange:(Portfolio.Best_exchange 1)
      ~persist:(fun r -> persisted := r :: !persisted)
      ()
  in
  (* Replica 1 never reaches a boundary; once it is done, replica 0 must
     trip rounds alone instead of waiting forever. *)
  Portfolio.finished t ~replica:1;
  (match Portfolio.sync t ~replica:0 ~temp_index:1 ~metric:3.0 ~capture:(fun () -> "solo") with
  | None -> ()
  | Some _ -> Alcotest.fail "sole participant adopted its own layout");
  Alcotest.(check int) "round recorded" 1 (List.length (Portfolio.history t));
  Alcotest.(check int) "round persisted" 1 (List.length !persisted)

let test_portfolio_frozen () =
  let persisted = ref [] in
  let t =
    Portfolio.create ~replicas:2 ~exchange:(Portfolio.Best_exchange 1)
      ~persist:(fun r -> persisted := r :: !persisted)
      ~frozen:(fun () -> true)
      ()
  in
  (match Portfolio.sync t ~replica:0 ~temp_index:1 ~metric:1.0 ~capture:(fun () -> "x") with
  | None -> ()
  | Some _ -> Alcotest.fail "frozen coordinator served a round");
  Alcotest.(check int) "nothing recorded" 0 (List.length (Portfolio.history t));
  Alcotest.(check int) "nothing persisted" 0 (List.length !persisted)

let test_run_replicas () =
  let outcomes =
    Portfolio.run_replicas ~replicas:4 (fun k ->
        if k = 2 then failwith "boom" else k * 10)
  in
  Alcotest.(check int) "four outcomes" 4 (Array.length outcomes);
  Array.iteri
    (fun k o ->
      match o, k with
      | Error (Failure m), 2 -> Alcotest.(check string) "error captured" "boom" m
      | Ok v, _ when k <> 2 -> Alcotest.(check int) "in order" (k * 10) v
      | _ -> Alcotest.failf "unexpected outcome at %d" k)
    outcomes

let () =
  Alcotest.run "spr_anneal"
    [
      ( "engine",
        [
          Alcotest.test_case "optimizes toy problem" `Quick test_engine_optimizes;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "temperature callbacks" `Quick test_engine_temperature_callbacks;
          Alcotest.test_case "quench only improves" `Quick test_engine_quench_only_improves;
          Alcotest.test_case "no moves" `Quick test_engine_no_moves;
        ] );
      ( "weights",
        [
          Alcotest.test_case "cost formula" `Quick test_weights_cost;
          Alcotest.test_case "adaptation" `Quick test_weights_adapt;
          Alcotest.test_case "validation" `Quick test_weights_validation;
          qtest test_weights_normalized_invariant;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "exchange strings" `Quick test_exchange_strings;
          Alcotest.test_case "round schedule" `Quick test_round_of;
          Alcotest.test_case "barrier deterministic" `Quick
            test_portfolio_barrier_deterministic;
          Alcotest.test_case "history replay" `Quick test_portfolio_history_replay;
          Alcotest.test_case "finished unblocks" `Quick test_portfolio_finished_unblocks;
          Alcotest.test_case "frozen coordination" `Quick test_portfolio_frozen;
          Alcotest.test_case "run_replicas" `Quick test_run_replicas;
        ] );
    ]
