module Engine = Spr_anneal.Engine
module Weights = Spr_anneal.Weights
module Rng = Spr_util.Rng

let qtest = QCheck_alcotest.to_alcotest

(* Toy problem: order an array by random adjacent swaps; cost = number of
   inversions. Annealing should sort it (or nearly). *)
let toy_problem seed n =
  let rng_init = Rng.create seed in
  let arr = Array.init n Fun.id in
  Rng.shuffle_in_place rng_init arr;
  let inversions () =
    let c = ref 0 in
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        if arr.(i) > arr.(k) then incr c
      done
    done;
    float_of_int !c
  in
  let pending = ref None in
  let propose rng =
    let i = Rng.int rng (n - 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(i + 1);
    arr.(i + 1) <- tmp;
    pending := Some i;
    true
  in
  let undo () =
    match !pending with
    | None -> ()
    | Some i ->
      let tmp = arr.(i) in
      arr.(i) <- arr.(i + 1);
      arr.(i + 1) <- tmp;
      pending := None
  in
  (arr, inversions, propose, undo, pending)

let test_engine_optimizes () =
  let arr, cost, propose, undo, pending = toy_problem 3 24 in
  let report =
    Engine.run ~rng:(Rng.create 42) ~cost
      ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:24 ()
  in
  Alcotest.(check bool) "cost improved" true (report.Engine.final_cost < report.Engine.initial_cost);
  Alcotest.(check bool) "nearly sorted" true (report.Engine.final_cost < 8.0);
  Alcotest.(check bool) "moves counted" true (report.Engine.n_moves > 0);
  Alcotest.(check bool) "acceptances bounded" true
    (report.Engine.n_accepted <= report.Engine.n_moves);
  ignore arr

let test_engine_deterministic () =
  let run seed =
    let _, cost, propose, undo, pending = toy_problem 7 20 in
    Engine.run ~rng:(Rng.create seed) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:20 ()
  in
  let a = run 5 and b = run 5 in
  Alcotest.(check (float 1e-9)) "same final cost" a.Engine.final_cost b.Engine.final_cost;
  Alcotest.(check int) "same move count" a.Engine.n_moves b.Engine.n_moves

let test_engine_temperature_callbacks () =
  let temps = ref [] in
  let _, cost, propose, undo, pending = toy_problem 11 16 in
  let report =
    Engine.run
      ~on_temperature:(fun ts -> temps := ts :: !temps)
      ~rng:(Rng.create 1) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:16 ()
  in
  let temps = List.rev !temps in
  Alcotest.(check bool) "got callbacks" true (List.length temps >= 3);
  (match temps with
  | warmup :: rest ->
    Alcotest.(check int) "warmup is index 0" 0 warmup.Engine.temp_index;
    Alcotest.(check bool) "warmup at infinity" true (warmup.Engine.temperature = infinity);
    (* temperatures decrease monotonically over the cooling phase *)
    let cooling = List.filter (fun ts -> ts.Engine.temperature > 0.0 && ts.Engine.temperature < infinity) rest in
    let rec decreasing = function
      | a :: (b :: _ as rest) -> a.Engine.temperature >= b.Engine.temperature && decreasing rest
      | [ _ ] | [] -> true
    in
    Alcotest.(check bool) "monotone cooling" true (decreasing cooling)
  | [] -> Alcotest.fail "no warmup");
  Alcotest.(check int) "report temperature count consistent" report.Engine.n_temperatures
    (List.length temps - 1)

let test_engine_quench_only_improves () =
  (* With max_temperatures = 0 the engine goes straight from warmup to the
     quench; quench must never accept an uphill move, so the cost at the
     end cannot exceed the cost right after warmup. Run it twice to check
     determinism of the path too. *)
  let _, cost, propose, undo, pending = toy_problem 13 18 in
  let cfg =
    { (Engine.default_config ~n:18) with Engine.max_temperatures = 0; quench_temperatures = 3 }
  in
  let after_warmup = ref nan in
  let seen_warmup = ref false in
  let _report =
    Engine.run ~config:cfg
      ~on_temperature:(fun ts ->
        if not !seen_warmup then begin
          seen_warmup := true;
          after_warmup := ts.Engine.mean_cost
        end)
      ~rng:(Rng.create 2) ~cost ~propose
      ~accept:(fun () -> pending := None)
      ~reject:undo ~n:18 ()
  in
  Alcotest.(check bool) "cost after quench <= typical warmup cost" true
    (cost () <= !after_warmup +. 1e-9)

let test_engine_no_moves () =
  (* propose always fails: engine terminates with zero moves *)
  let report =
    Engine.run
      ~rng:(Rng.create 1)
      ~cost:(fun () -> 1.0)
      ~propose:(fun _ -> false)
      ~accept:(fun () -> Alcotest.fail "no move to accept")
      ~reject:(fun () -> Alcotest.fail "no move to reject")
      ~n:4 ()
  in
  Alcotest.(check int) "zero moves" 0 report.Engine.n_moves

(* --- Weights --- *)

let test_weights_cost () =
  let w = Weights.create ~g_per_net:0.5 ~d_per_net:0.25 ~t_emphasis:2.0 ~initial_delay:10.0 () in
  Alcotest.(check (float 1e-9)) "wg" 0.5 (Weights.wg w);
  Alcotest.(check (float 1e-9)) "wd" 0.25 (Weights.wd w);
  Alcotest.(check (float 1e-9)) "wt = emphasis / base" 0.2 (Weights.wt w);
  Alcotest.(check (float 1e-9)) "combined" ((0.5 *. 3.0) +. (0.25 *. 2.0) +. (0.2 *. 15.0))
    (Weights.cost w ~g:3 ~d:2 ~delay:15.0)

let test_weights_adapt () =
  let w = Weights.create ~initial_delay:10.0 () in
  let wt0 = Weights.wt w in
  Weights.observe w ~delay:20.0;
  Weights.observe w ~delay:20.0;
  Alcotest.(check (float 1e-12)) "no change before adapt" wt0 (Weights.wt w);
  Weights.adapt w;
  Alcotest.(check (float 1e-9)) "baseline moved to 20" (wt0 /. 2.0) (Weights.wt w);
  (* adapt with no samples is a no-op *)
  let wt1 = Weights.wt w in
  Weights.adapt w;
  Alcotest.(check (float 1e-12)) "no-op adapt" wt1 (Weights.wt w)

let test_weights_validation () =
  Alcotest.check_raises "non-positive delay"
    (Invalid_argument "Weights.create: initial_delay must be positive") (fun () ->
      ignore (Weights.create ~initial_delay:0.0 ()))

let test_weights_normalized_invariant =
  QCheck.Test.make ~name:"wt * baseline = emphasis after adapt" ~count:100
    QCheck.(pair (float_range 0.5 500.0) (float_range 0.5 500.0))
    (fun (d0, d1) ->
      let w = Weights.create ~t_emphasis:1.0 ~initial_delay:d0 () in
      Weights.observe w ~delay:d1;
      Weights.adapt w;
      Float.abs ((Weights.wt w *. d1) -. 1.0) < 1e-9)

(* --- Portfolio coordination (synthetic workers) --- *)

module Portfolio = Spr_anneal.Portfolio

let test_exchange_strings () =
  List.iter
    (fun x ->
      match Portfolio.exchange_of_string (Portfolio.exchange_to_string x) with
      | Ok x' when x' = x -> ()
      | _ -> Alcotest.failf "round trip failed for %s" (Portfolio.exchange_to_string x))
    [ Portfolio.Independent; Portfolio.Best_exchange 1; Portfolio.Best_exchange 7 ];
  List.iter
    (fun s ->
      match Portfolio.exchange_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "best"; "best:"; "best:0"; "best:-2"; "best:x"; "worst:3" ]

let test_round_of () =
  let indep = Portfolio.create ~replicas:2 ~exchange:Portfolio.Independent () in
  Alcotest.(check (option int)) "independent never" None (Portfolio.round_of indep ~temp_index:4);
  let t = Portfolio.create ~replicas:2 ~exchange:(Portfolio.Best_exchange 2) () in
  Alcotest.(check (option int)) "boundary 0" None (Portfolio.round_of t ~temp_index:0);
  Alcotest.(check (option int)) "boundary 1" None (Portfolio.round_of t ~temp_index:1);
  Alcotest.(check (option int)) "boundary 2" (Some 1) (Portfolio.round_of t ~temp_index:2);
  Alcotest.(check (option int)) "boundary 3" None (Portfolio.round_of t ~temp_index:3);
  Alcotest.(check (option int)) "boundary 6" (Some 3) (Portfolio.round_of t ~temp_index:6)

(* Each synthetic replica walks six temperature boundaries with a fixed
   metric table; the barrier must pick the same winner on every run, no
   matter how the domains are scheduled. *)
let synthetic_metric ~replica ~round = float_of_int (((replica * 7) + (round * 3)) mod 5)

let run_synthetic_portfolio () =
  let t = Portfolio.create ~replicas:3 ~exchange:(Portfolio.Best_exchange 2) () in
  let adoptions = Array.make 3 [] in
  let worker k =
    for temp_index = 1 to 6 do
      match Portfolio.round_of t ~temp_index with
      | None -> ()
      | Some round -> (
        match
          Portfolio.sync t ~replica:k ~temp_index
            ~metric:(synthetic_metric ~replica:k ~round)
            ~capture:(fun () -> Printf.sprintf "layout-%d-%d" k round)
        with
        | None -> ()
        | Some r ->
          adoptions.(k) <- (round, r.Portfolio.xr_best_replica) :: adoptions.(k))
    done;
    Portfolio.finished t ~replica:k
  in
  let outcomes = Portfolio.run_replicas ~replicas:3 worker in
  Array.iter (function Error e -> raise e | Ok () -> ()) outcomes;
  (Portfolio.history t, adoptions)

let test_portfolio_barrier_deterministic () =
  let history, adoptions = run_synthetic_portfolio () in
  Alcotest.(check int) "three rounds tripped" 3 (List.length history);
  List.iter
    (fun (r : Portfolio.round_result) ->
      (* The recorded winner is the true minimum (ties to the lowest
         replica index), with its own layout as payload. *)
      let metrics = List.init 3 (fun k -> synthetic_metric ~replica:k ~round:r.Portfolio.xr_round) in
      let best = List.fold_left min infinity metrics in
      Alcotest.(check (float 0.0)) "winner metric" best r.Portfolio.xr_best_metric;
      Alcotest.(check int) "winner index"
        (fst (List.fold_left
                (fun (bi, i) m -> if m = best && bi < 0 then (i, i + 1) else (bi, i + 1))
                (-1, 0) metrics))
        r.Portfolio.xr_best_replica;
      Alcotest.(check string) "payload is winner's"
        (Printf.sprintf "layout-%d-%d" r.Portfolio.xr_best_replica r.Portfolio.xr_round)
        r.Portfolio.xr_payload;
      (* Exactly the strictly-worse replicas adopted. *)
      for k = 0 to 2 do
        let adopted = List.mem_assoc r.Portfolio.xr_round adoptions.(k) in
        let should = synthetic_metric ~replica:k ~round:r.Portfolio.xr_round > best in
        if adopted <> should then
          Alcotest.failf "replica %d round %d: adopted=%b expected %b" k r.Portfolio.xr_round
            adopted should
      done)
    history;
  (* Scheduling independence: a second run reproduces everything. *)
  let history2, adoptions2 = run_synthetic_portfolio () in
  Alcotest.(check bool) "history reproducible" true (history = history2);
  Alcotest.(check bool) "adoptions reproducible" true (adoptions = adoptions2)

let test_portfolio_history_replay () =
  let history, _ = run_synthetic_portfolio () in
  (* A resumed coordinator serves recorded rounds immediately: one
     replica alone (the other two never arrive) cannot deadlock. *)
  let t = Portfolio.create ~replicas:3 ~exchange:(Portfolio.Best_exchange 2) ~history () in
  for temp_index = 1 to 6 do
    match Portfolio.round_of t ~temp_index with
    | None -> ()
    | Some round -> (
      let metric = synthetic_metric ~replica:2 ~round in
      match
        Portfolio.sync t ~replica:2 ~temp_index ~metric ~capture:(fun () -> "fresh")
      with
      | Some r when r.Portfolio.xr_best_metric < metric -> ()
      | Some r ->
        Alcotest.failf "round %d: served a non-improving result (%g)" round
          r.Portfolio.xr_best_metric
      | None ->
        let recorded = List.find (fun r -> r.Portfolio.xr_round = round) history in
        if recorded.Portfolio.xr_best_replica <> 2
           && recorded.Portfolio.xr_best_metric < metric
        then Alcotest.failf "round %d: improving record not served" round)
  done;
  Portfolio.finished t ~replica:2;
  Alcotest.(check bool) "history preserved" true (Portfolio.history t = history)

let test_portfolio_finished_unblocks () =
  let persisted = ref [] in
  let t =
    Portfolio.create ~replicas:2 ~exchange:(Portfolio.Best_exchange 1)
      ~persist:(fun r -> persisted := r :: !persisted)
      ()
  in
  (* Replica 1 never reaches a boundary; once it is done, replica 0 must
     trip rounds alone instead of waiting forever. *)
  Portfolio.finished t ~replica:1;
  (match Portfolio.sync t ~replica:0 ~temp_index:1 ~metric:3.0 ~capture:(fun () -> "solo") with
  | None -> ()
  | Some _ -> Alcotest.fail "sole participant adopted its own layout");
  Alcotest.(check int) "round recorded" 1 (List.length (Portfolio.history t));
  Alcotest.(check int) "round persisted" 1 (List.length !persisted)

let test_portfolio_frozen () =
  let persisted = ref [] in
  let t =
    Portfolio.create ~replicas:2 ~exchange:(Portfolio.Best_exchange 1)
      ~persist:(fun r -> persisted := r :: !persisted)
      ~frozen:(fun () -> true)
      ()
  in
  (match Portfolio.sync t ~replica:0 ~temp_index:1 ~metric:1.0 ~capture:(fun () -> "x") with
  | None -> ()
  | Some _ -> Alcotest.fail "frozen coordinator served a round");
  Alcotest.(check int) "nothing recorded" 0 (List.length (Portfolio.history t));
  Alcotest.(check int) "nothing persisted" 0 (List.length !persisted)

let test_run_replicas () =
  let outcomes =
    Portfolio.run_replicas ~replicas:4 (fun k ->
        if k = 2 then failwith "boom" else k * 10)
  in
  Alcotest.(check int) "four outcomes" 4 (Array.length outcomes);
  Array.iteri
    (fun k o ->
      match o, k with
      | Error (Failure m), 2 -> Alcotest.(check string) "error captured" "boom" m
      | Ok v, _ when k <> 2 -> Alcotest.(check int) "in order" (k * 10) v
      | _ -> Alcotest.failf "unexpected outcome at %d" k)
    outcomes

(* --- scheduler --- *)

module Scheduler = Spr_anneal.Scheduler

let test_predictor_fit () =
  (* monotone: an exact line fits with zero residual and extrapolates *)
  (match Scheduler.Predictor.fit [ (1, 10.0); (2, 8.0); (3, 6.0); (4, 4.0) ] with
  | None -> Alcotest.fail "monotone series did not fit"
  | Some f ->
    Alcotest.(check (float 1e-9)) "slope" (-2.0) f.Scheduler.Predictor.slope;
    Alcotest.(check (float 1e-9)) "sigma" 0.0 f.Scheduler.Predictor.sigma;
    Alcotest.(check (float 1e-9)) "extrapolation" (-8.0)
      (Scheduler.Predictor.predict f ~at:10));
  (* plateau: zero slope, the prediction stays put arbitrarily far out *)
  (match Scheduler.Predictor.fit [ (1, 5.0); (2, 5.0); (3, 5.0) ] with
  | None -> Alcotest.fail "plateau did not fit"
  | Some f ->
    Alcotest.(check (float 1e-9)) "flat slope" 0.0 f.Scheduler.Predictor.slope;
    Alcotest.(check (float 1e-9)) "flat prediction" 5.0
      (Scheduler.Predictor.predict f ~at:100));
  (* noise raises sigma but the trend survives *)
  (match Scheduler.Predictor.fit [ (1, 10.0); (2, 9.2); (3, 8.9); (4, 8.0); (5, 7.6) ] with
  | None -> Alcotest.fail "noisy series did not fit"
  | Some f ->
    Alcotest.(check bool) "downward trend" true (f.Scheduler.Predictor.slope < 0.0);
    Alcotest.(check bool) "nonzero residual" true (f.Scheduler.Predictor.sigma > 0.0));
  (* under three points, or three points on one boundary: no fit *)
  Alcotest.(check bool) "two points" true
    (Scheduler.Predictor.fit [ (1, 1.0); (2, 2.0) ] = None);
  Alcotest.(check bool) "degenerate x" true
    (Scheduler.Predictor.fit [ (3, 1.0); (3, 2.0); (3, 5.0) ] = None)

let racing_cfg =
  { Scheduler.replicas = 2; warmup = 2; every = 2; margin = 0.5; horizon = 4; sync = true }

(* Replica 0 improves ten times faster than replica 1, and both run
   cold (acceptance 0.2), so nothing shields the trailing replica from
   the predictor. *)
let slow_fast_metric ~replica ~temp_index =
  if replica = 0 then 100.0 -. (10.0 *. float_of_int temp_index)
  else 100.0 -. float_of_int temp_index

let run_synthetic_racing ?history ?persist () =
  let t = Scheduler.racing racing_cfg ?history ?persist () in
  let decisions = Array.make 2 [] in
  let worker k =
    for temp_index = 1 to 8 do
      match
        Scheduler.observe t ~replica:k ~temp_index
          ~metric:(slow_fast_metric ~replica:k ~temp_index)
          ~acceptance:0.2
          ~capture:(fun () -> Printf.sprintf "layout-%d-%d" k temp_index)
      with
      | Scheduler.Continue -> ()
      | d -> decisions.(k) <- (temp_index, d) :: decisions.(k)
    done;
    Scheduler.finished t ~replica:k
  in
  let outcomes = Portfolio.run_replicas ~replicas:2 worker in
  Array.iter (function Error e -> raise e | Ok () -> ()) outcomes;
  (Scheduler.rounds t, decisions)

(* The trailing replica is killed at boundary 4 (round 2, the first
   decision round past warmup with three fitted points) onto the first
   fresh stream, and — its fork fed the same slow trajectory — again at
   boundary 8 once the fork re-accumulates a fittable series. Boundary
   6 trips a round too, but the fork has only two post-kill samples, so
   it survives: no fit, no verdict. *)
let test_racing_kills_trailing () =
  let persisted = ref [] in
  let rounds, decisions =
    run_synthetic_racing ~persist:(fun r -> persisted := r :: !persisted) ()
  in
  Alcotest.(check int) "leader undisturbed" 0 (List.length decisions.(0));
  (match List.rev decisions.(1) with
  | [
   (4, Scheduler.Kill { round = 2; from_replica = 0; metric = m1; payload = p1; stream = 2 });
   (8, Scheduler.Kill { round = 4; from_replica = 0; payload = p2; stream = 3; _ });
  ] ->
    Alcotest.(check (float 1e-9)) "leader metric at the first kill" 60.0 m1;
    Alcotest.(check string) "leader layout adopted" "layout-0-4" p1;
    Alcotest.(check string) "fresh leader layout at the second kill" "layout-0-8" p2
  | _ -> Alcotest.fail "replica 1 was not killed at boundaries 4 and 8");
  (* Only killing rounds are reported and persisted, in round order. *)
  Alcotest.(check (list int)) "killing rounds" [ 2; 4 ]
    (List.map (fun r -> r.Scheduler.sr_round) rounds);
  List.iter
    (fun (r : Scheduler.round_record) ->
      Alcotest.(check int) "leader recorded" 0 r.sr_leader;
      match r.sr_kills with
      | [ { Scheduler.k_replica = 1; k_stream } ] ->
        Alcotest.(check int) "streams allocated past the fleet" (r.sr_round / 2 + 1) k_stream
      | _ -> Alcotest.failf "round %d: unexpected kill set" r.sr_round)
    rounds;
  Alcotest.(check bool) "persisted exactly the killing rounds" true
    (List.rev !persisted = rounds);
  (* Scheduling independence: a second fleet reproduces everything. *)
  let rounds2, decisions2 = run_synthetic_racing () in
  Alcotest.(check bool) "rounds reproducible" true (rounds = rounds2);
  Alcotest.(check bool) "decisions reproducible" true (decisions = decisions2)

(* Resume: recorded rounds serve their verdicts without a rendezvous,
   unrecorded (no-kill) rounds re-trip live against the shrunken fleet,
   and the solo survivor never deadlocks. *)
let test_racing_replay () =
  let history, _ = run_synthetic_racing () in
  let t = Scheduler.racing racing_cfg ~history () in
  Scheduler.finished t ~replica:0;
  let kills = ref [] in
  for temp_index = 1 to 8 do
    match
      Scheduler.observe t ~replica:1 ~temp_index
        ~metric:(slow_fast_metric ~replica:1 ~temp_index)
        ~acceptance:0.2
        ~capture:(fun () -> "fresh")
    with
    | Scheduler.Kill { round; stream; payload; _ } ->
      kills := (temp_index, round, stream, payload) :: !kills
    | Scheduler.Continue -> ()
    | Scheduler.Adopt _ -> Alcotest.fail "racing never adopts"
  done;
  Scheduler.finished t ~replica:1;
  Alcotest.(check bool) "recorded verdicts replayed" true
    ([ (4, 2, 2, "layout-0-4"); (8, 4, 3, "layout-0-8") ] = List.rev !kills);
  Alcotest.(check bool) "history preserved" true (Scheduler.rounds t = history)

(* Barrier mode is the untouched portfolio: same adoptions, exchange
   history exposed, and no racing rounds ever. *)
let test_scheduler_barrier_wraps_portfolio () =
  let p = Portfolio.create ~replicas:3 ~exchange:(Portfolio.Best_exchange 2) () in
  let t = Scheduler.barrier p in
  let adoptions = Array.make 3 [] in
  let worker k =
    for temp_index = 1 to 6 do
      let round = Option.value (Portfolio.round_of p ~temp_index) ~default:0 in
      match
        Scheduler.observe t ~replica:k ~temp_index
          ~metric:(synthetic_metric ~replica:k ~round)
          ~acceptance:0.0
          ~capture:(fun () -> Printf.sprintf "layout-%d-%d" k round)
      with
      | Scheduler.Continue -> ()
      | Scheduler.Adopt { round; from_replica; _ } ->
        adoptions.(k) <- (round, from_replica) :: adoptions.(k)
      | Scheduler.Kill _ -> Alcotest.fail "barrier never kills"
    done;
    Scheduler.finished t ~replica:k
  in
  let outcomes = Portfolio.run_replicas ~replicas:3 worker in
  Array.iter (function Error e -> raise e | Ok () -> ()) outcomes;
  let _, direct = run_synthetic_portfolio () in
  Alcotest.(check bool) "adoptions identical to the bare barrier" true (adoptions = direct);
  Alcotest.(check int) "exchange history exposed" 3 (List.length (Scheduler.exchanges t));
  Alcotest.(check bool) "no racing rounds" true (Scheduler.rounds t = [])

(* A resumed replica preloads its checkpointed dynamics series, so the
   first post-resume decision round fits exactly the series the
   uninterrupted run would have: the kill still happens at boundary 4
   even though only the last sample arrives live. *)
let test_racing_preload () =
  let t = Scheduler.racing racing_cfg () in
  for k = 0 to 1 do
    Scheduler.preload t ~replica:k
      (List.init 3 (fun i ->
           let ti = i + 1 in
           (ti, slow_fast_metric ~replica:k ~temp_index:ti, 0.2)))
  done;
  let decisions = Array.make 2 [] in
  let worker k =
    (match
       Scheduler.observe t ~replica:k ~temp_index:4
         ~metric:(slow_fast_metric ~replica:k ~temp_index:4)
         ~acceptance:0.2
         ~capture:(fun () -> Printf.sprintf "layout-%d-4" k)
     with
    | Scheduler.Continue -> ()
    | d -> decisions.(k) <- d :: decisions.(k));
    Scheduler.finished t ~replica:k
  in
  let outcomes = Portfolio.run_replicas ~replicas:2 worker in
  Array.iter (function Error e -> raise e | Ok () -> ()) outcomes;
  (match decisions.(1) with
  | [ Scheduler.Kill { round = 2; from_replica = 0; stream = 2; _ } ] -> ()
  | _ -> Alcotest.fail "preloaded series did not reproduce the uninterrupted kill");
  Alcotest.(check int) "leader undisturbed" 0 (List.length decisions.(0))

let () =
  Alcotest.run "spr_anneal"
    [
      ( "engine",
        [
          Alcotest.test_case "optimizes toy problem" `Quick test_engine_optimizes;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "temperature callbacks" `Quick test_engine_temperature_callbacks;
          Alcotest.test_case "quench only improves" `Quick test_engine_quench_only_improves;
          Alcotest.test_case "no moves" `Quick test_engine_no_moves;
        ] );
      ( "weights",
        [
          Alcotest.test_case "cost formula" `Quick test_weights_cost;
          Alcotest.test_case "adaptation" `Quick test_weights_adapt;
          Alcotest.test_case "validation" `Quick test_weights_validation;
          qtest test_weights_normalized_invariant;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "exchange strings" `Quick test_exchange_strings;
          Alcotest.test_case "round schedule" `Quick test_round_of;
          Alcotest.test_case "barrier deterministic" `Quick
            test_portfolio_barrier_deterministic;
          Alcotest.test_case "history replay" `Quick test_portfolio_history_replay;
          Alcotest.test_case "finished unblocks" `Quick test_portfolio_finished_unblocks;
          Alcotest.test_case "frozen coordination" `Quick test_portfolio_frozen;
          Alcotest.test_case "run_replicas" `Quick test_run_replicas;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "predictor fit" `Quick test_predictor_fit;
          Alcotest.test_case "racing kills the trailing replica" `Quick
            test_racing_kills_trailing;
          Alcotest.test_case "recorded rounds replay" `Quick test_racing_replay;
          Alcotest.test_case "barrier wraps the portfolio" `Quick
            test_scheduler_barrier_wraps_portfolio;
          Alcotest.test_case "preloaded series resumes the fit" `Quick test_racing_preload;
        ] );
    ]
